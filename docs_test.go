package parimg_test

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// godocPackages are the packages whose exported identifiers must all carry
// doc comments — the public API and the packages this PR series owns the
// documentation bar for.
var godocPackages = []string{".", "internal/par", "internal/obs", "internal/cli", "internal/serve", "internal/stream"}

// TestGodocCoverage fails on any exported top-level identifier — function,
// method on an exported type, type, constant or variable — that has no doc
// comment. A doc comment on a grouped const/var/type block covers the whole
// block. This is the CI gate behind the godoc satellite: undocumented
// exports cannot land.
func TestGodocCoverage(t *testing.T) {
	var missing []string
	fset := token.NewFileSet()
	for _, dir := range godocPackages {
		pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for _, pkg := range pkgs {
			for _, f := range pkg.Files {
				for _, decl := range f.Decls {
					missing = append(missing, undocumented(fset, decl)...)
				}
			}
		}
	}
	for _, m := range missing {
		t.Errorf("undocumented export: %s", m)
	}
}

// undocumented returns the exported, doc-comment-free identifiers of one
// top-level declaration, as "file:line name" strings.
func undocumented(fset *token.FileSet, decl ast.Decl) []string {
	var out []string
	at := func(pos token.Pos, name string) string {
		p := fset.Position(pos)
		return fmt.Sprintf("%s:%d %s", p.Filename, p.Line, name)
	}
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || !receiverExported(d) {
			return nil
		}
		if d.Doc == nil {
			name := d.Name.Name
			if r := receiverName(d); r != "" {
				name = r + "." + name
			}
			out = append(out, at(d.Pos(), name))
		}
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
					out = append(out, at(s.Pos(), s.Name.Name))
				}
			case *ast.ValueSpec:
				for _, n := range s.Names {
					if n.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
						out = append(out, at(n.Pos(), n.Name))
					}
				}
			}
		}
	}
	return out
}

// receiverName returns the bare type name of a method receiver, "" for
// plain functions.
func receiverName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return ""
	}
	typ := d.Recv.List[0].Type
	for {
		switch u := typ.(type) {
		case *ast.StarExpr:
			typ = u.X
		case *ast.IndexExpr:
			typ = u.X
		case *ast.Ident:
			return u.Name
		default:
			return ""
		}
	}
}

// receiverExported reports whether d is a plain function or a method on an
// exported type; methods on unexported types need no doc comments.
func receiverExported(d *ast.FuncDecl) bool {
	name := receiverName(d)
	return name == "" || ast.IsExported(name)
}

// TestMarkdownLinks checks every relative link target in the repo's main
// documents: the file a link names must exist. External http(s) links and
// same-document anchors are not fetched.
func TestMarkdownLinks(t *testing.T) {
	link := regexp.MustCompile(`\]\(([^)\s]+)\)`)
	for _, doc := range []string{"README.md", "DESIGN.md", "EXPERIMENTS.md", "ROADMAP.md"} {
		data, err := os.ReadFile(doc)
		if err != nil {
			t.Fatalf("%s: %v", doc, err)
		}
		for _, m := range link.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") ||
				strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "#") {
				continue
			}
			path, _, _ := strings.Cut(target, "#")
			if _, err := os.Stat(filepath.FromSlash(path)); err != nil {
				t.Errorf("%s links to missing file %q", doc, target)
			}
		}
	}
}

// TestExperimentsPhasereportSection pins that the committed EXPERIMENTS.md
// still contains a generated phasereport section covering every catalog
// pattern plus the DARPA scene — the tables go stale silently otherwise.
func TestExperimentsPhasereportSection(t *testing.T) {
	data, err := os.ReadFile("EXPERIMENTS.md")
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	b := strings.Index(text, "<!-- phasereport:begin -->")
	e := strings.Index(text, "<!-- phasereport:end -->")
	if b < 0 || e < 0 || e < b {
		t.Fatal("EXPERIMENTS.md lost its phasereport markers")
	}
	section := text[b:e]
	for _, want := range []string{
		"horizontal-bars", "vertical-bars", "forward-diagonal-bars",
		"back-diagonal-bars", "cross", "filled-disc", "concentric-circles",
		"four-squares", "dual-spiral", "darpa",
		"Modeled", "Measured", "strip label", "border merge",
	} {
		if !strings.Contains(section, want) {
			t.Errorf("phasereport section is missing %q; rerun make experiments", want)
		}
	}
}
