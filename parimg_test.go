package parimg

import (
	"testing"
)

func TestPublicQuickstartFlow(t *testing.T) {
	im := GeneratePattern(DualSpiral, 128)
	sim, err := NewSimulator(16, CM5)
	if err != nil {
		t.Fatal(err)
	}
	h, err := sim.Histogram(im, 2)
	if err != nil {
		t.Fatal(err)
	}
	if h.H[0]+h.H[1] != int64(128*128) {
		t.Errorf("histogram sums to %d", h.H[0]+h.H[1])
	}
	res, err := sim.Label(im, LabelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := LabelSequential(im, Conn8, Binary)
	for i := range want.Lab {
		if res.Labels.Lab[i] != want.Lab[i] {
			t.Fatalf("labels differ from sequential at %d", i)
		}
	}
	if res.Report.SimTime <= 0 {
		t.Error("no simulated time reported")
	}
	if res.MergePhases != 4 {
		t.Errorf("MergePhases = %d, want 4 for p=16", res.MergePhases)
	}
}

func TestNewSimulatorValidation(t *testing.T) {
	for _, p := range []int{0, -1, 3, 12} {
		if _, err := NewSimulator(p, CM5); err == nil {
			t.Errorf("NewSimulator(%d): want error", p)
		}
	}
}

func TestMachineByName(t *testing.T) {
	for _, name := range []string{"cm5", "CM5", " sp2 ", "paragon", "ideal"} {
		if _, err := MachineByName(name); err != nil {
			t.Errorf("MachineByName(%q): %v", name, err)
		}
	}
	if _, err := MachineByName("cray"); err == nil {
		t.Error("unknown machine: want error")
	}
	if len(Machines()) != 5 {
		t.Errorf("Machines() has %d entries, want 5", len(Machines()))
	}
}

func TestLabelOptionsVariants(t *testing.T) {
	im := RandomBinary(64, 0.55, 21)
	sim, err := NewSimulator(16, SP2)
	if err != nil {
		t.Fatal(err)
	}
	base, err := sim.Label(im, LabelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, opt := range []LabelOptions{
		{DirectDistribution: true},
		{NoShadowManager: true},
		{FullRelabel: true},
		{Conn: Conn4},
		{Mode: Grey},
	} {
		res, err := sim.Label(im, opt)
		if err != nil {
			t.Fatalf("%+v: %v", opt, err)
		}
		if opt.Conn == 0 && opt.Mode == Binary {
			// Same semantics, different execution strategy: the
			// labeling must be identical.
			for i := range base.Labels.Lab {
				if res.Labels.Lab[i] != base.Labels.Lab[i] {
					t.Fatalf("%+v: labeling differs at %d", opt, i)
				}
			}
		}
	}
}

func TestDARPAImageUsable(t *testing.T) {
	im := DARPAImage()
	sim, err := NewSimulator(16, CM5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Label(im, LabelOptions{Mode: Grey})
	if err != nil {
		t.Fatal(err)
	}
	if res.Components < 100 {
		t.Errorf("DARPA scene has only %d components; expected a rich census", res.Components)
	}
	if _, err := sim.Histogram(im, 256); err != nil {
		t.Fatal(err)
	}
}

func TestAllPatternsExported(t *testing.T) {
	if len(AllPatterns()) != 9 {
		t.Errorf("AllPatterns: %d, want 9", len(AllPatterns()))
	}
	for _, id := range AllPatterns() {
		if im := GeneratePattern(id, 32); im.N != 32 {
			t.Errorf("pattern %v: wrong side", id)
		}
	}
}
