package parimg

import (
	"bytes"
	"testing"
)

// TestFullPipelineIntegration drives every module end to end: scene
// generation -> parallel equalization -> automatic threshold -> parallel
// binary labeling -> census -> shape classification, cross-checking each
// stage against its sequential counterpart.
func TestFullPipelineIntegration(t *testing.T) {
	im := DARPAImage()
	// Compress the dynamic range so equalization has work to do.
	for i, v := range im.Pix {
		if v != 0 {
			im.Pix[i] = 100 + v/4
		}
	}

	sim, err := NewSimulator(32, CM5)
	if err != nil {
		t.Fatal(err)
	}

	// Parallel equalization == sequential equalization.
	eq, err := sim.Equalize(im, 256)
	if err != nil {
		t.Fatal(err)
	}
	hseq, err := HistogramSequential(im, 256)
	if err != nil {
		t.Fatal(err)
	}
	want := Equalize(im, hseq)
	for i := range want.Pix {
		if eq.Image.Pix[i] != want.Pix[i] {
			t.Fatalf("equalization differs at %d", i)
		}
	}

	// Threshold and label; parallel == sequential.
	tval := OtsuThreshold(eq.H)
	if tval <= 0 || tval >= 256 {
		t.Fatalf("threshold %d out of range", tval)
	}
	bin := Threshold(eq.Image, uint32(tval))
	res, err := sim.Label(bin, LabelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	wantLab := LabelSequential(bin, Conn8, Binary)
	for i := range wantLab.Lab {
		if res.Labels.Lab[i] != wantLab.Lab[i] {
			t.Fatalf("labels differ at %d", i)
		}
	}

	// Census totals must cover exactly the thresholded foreground, and
	// the parallel census must equal the host-side one.
	stats := Census(res.Labels, eq.Image)
	total := 0
	for _, s := range stats {
		total += s.Size
	}
	if total != bin.CountForeground() {
		t.Fatalf("census covers %d pixels, foreground is %d", total, bin.CountForeground())
	}
	pc, err := sim.Census(eq.Image, res.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if len(pc.Stats) != len(stats) {
		t.Fatalf("parallel census %d entries, host %d", len(pc.Stats), len(stats))
	}
	for i := range stats {
		if pc.Stats[i] != stats[i] {
			t.Fatalf("parallel census differs at %d", i)
		}
	}

	// Classification covers every component.
	objs := ClassifyObjects(res.Labels, eq.Image)
	if len(objs) != len(stats) {
		t.Fatalf("%d objects classified, %d components", len(objs), len(stats))
	}
}

// TestResultsIndependentOfMachineProfile: the machine profile changes only
// the simulated costs, never the computed results.
func TestResultsIndependentOfMachineProfile(t *testing.T) {
	im := RandomGrey(64, 16, 99)
	var firstH []int64
	var firstLab []uint32
	for _, spec := range Machines() {
		sim, err := NewSimulator(16, spec)
		if err != nil {
			t.Fatal(err)
		}
		h, err := sim.Histogram(im, 16)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Label(im, LabelOptions{Mode: Grey})
		if err != nil {
			t.Fatal(err)
		}
		if firstH == nil {
			firstH = h.H
			firstLab = res.Labels.Lab
			continue
		}
		for g := range firstH {
			if h.H[g] != firstH[g] {
				t.Fatalf("%s: histogram differs at %d", spec.Name, g)
			}
		}
		for i := range firstLab {
			if res.Labels.Lab[i] != firstLab[i] {
				t.Fatalf("%s: labels differ at %d", spec.Name, i)
			}
		}
	}
}

// TestMachineRankingStable: for a fixed compute-heavy workload, the
// machines order by their calibrated per-op speed (CS-2 fastest, CM-5
// slowest of the five), matching EXPERIMENTS.md.
func TestMachineRankingStable(t *testing.T) {
	im := RandomGrey(256, 256, 3)
	times := map[string]float64{}
	for _, spec := range Machines() {
		sim, err := NewSimulator(16, spec)
		if err != nil {
			t.Fatal(err)
		}
		h, err := sim.Histogram(im, 256)
		if err != nil {
			t.Fatal(err)
		}
		times[spec.Name] = h.Report.SimTime
	}
	if !(times["Meiko CS-2"] < times["IBM SP-2"] && times["IBM SP-2"] < times["IBM SP-1"]) {
		t.Errorf("per-op ranking violated: %v", times)
	}
	if !(times["IBM SP-1"] < times["TMC CM-5"]) {
		t.Errorf("SP-1 should beat CM-5: %v", times)
	}
}

// TestPGMRoundTripThroughPublicAPI ties the image I/O into the pipeline.
func TestPGMRoundTripThroughPublicAPI(t *testing.T) {
	im := GeneratePattern(ConcentricCircles, 64)
	var buf bytes.Buffer
	if err := WritePGM(&buf, im, 1); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPGM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSimulator(4, Ideal)
	if err != nil {
		t.Fatal(err)
	}
	a, err := sim.Label(im, LabelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := sim.Label(back, LabelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Labels.Lab {
		if a.Labels.Lab[i] != b.Labels.Lab[i] {
			t.Fatal("labels differ after PGM round trip")
		}
	}
}

// TestAllThreeParallelAlgorithmsAgreePublic exercises the public baseline
// entry points on one input.
func TestAllThreeParallelAlgorithmsAgreePublic(t *testing.T) {
	im := RandomBinary(64, 0.55, 12345)
	sim, err := NewSimulator(16, SP2)
	if err != nil {
		t.Fatal(err)
	}
	a, err := sim.Label(im, LabelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := sim.LabelByPropagation(im, LabelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := sim.LabelByPointerJumping(im, LabelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Labels.Lab {
		if a.Labels.Lab[i] != b.Labels.Lab[i] || a.Labels.Lab[i] != c.Labels.Lab[i] {
			t.Fatalf("algorithms disagree at %d", i)
		}
	}
	if a.Components != b.Components || a.Components != c.Components {
		t.Error("component counts disagree")
	}
}
