package image

import (
	"sync"
	"testing"
)

// TestByteplanePackingRoundTrips checks that every pixel of a packed image
// reads back through Get and through the raw words of Row, across widths
// on both sides of the 8-pixel word boundary.
func TestByteplanePackingRoundTrips(t *testing.T) {
	for _, n := range []int{1, 2, 7, 8, 9, 15, 16, 17, 64, 100} {
		im := RandomGrey(n, 256, uint64(n)+11)
		bp, wide := NewByteplane(im)
		if wide {
			t.Fatalf("n=%d: 8-bit image reported wide", n)
		}
		if bp.N != n || bp.WPR != (n+7)/8 || len(bp.Words) != n*bp.WPR {
			t.Fatalf("n=%d: shape N=%d WPR=%d words=%d", n, bp.N, bp.WPR, len(bp.Words))
		}
		for i := 0; i < n; i++ {
			row := bp.Row(i)
			for j := 0; j < n; j++ {
				want := byte(im.Pix[i*n+j])
				if got := bp.Get(i, j); got != want {
					t.Fatalf("n=%d Get(%d,%d) = %d, want %d", n, i, j, got, want)
				}
				if got := byte(row[j/8] >> (uint(j) % 8 * 8)); got != want {
					t.Fatalf("n=%d Row(%d) byte %d = %d, want %d", n, i, j, got, want)
				}
			}
		}
	}
}

// TestByteplanePadsTailBytesZero checks the invariant the run extractor's
// word scan relies on: bytes at column >= N in a row's last word are zero,
// even when packed over a dirty reused backing array.
func TestByteplanePadsTailBytesZero(t *testing.T) {
	var bp Byteplane
	// Dirty the backing array with an all-ones plane first.
	big := New(16)
	for i := range big.Pix {
		big.Pix[i] = 255
	}
	bp.Reset(16)
	bp.SetRows(big, 0, 16)

	// Repack a smaller all-foreground image whose width is mid-word.
	im := New(11)
	for i := range im.Pix {
		im.Pix[i] = 9
	}
	bp.Reset(11)
	if bp.SetRows(im, 0, 11) {
		t.Fatal("8-bit image reported wide")
	}
	for i := 0; i < 11; i++ {
		last := bp.Row(i)[bp.WPR-1]
		for j := 11 % 8; j < 8; j++ {
			if b := byte(last >> (uint(j) * 8)); b != 0 {
				t.Fatalf("row %d pad byte %d = %d, want 0", i, j, b)
			}
		}
	}
}

// TestByteplaneWideDetection checks that SetRows reports truncation exactly
// when a pixel exceeds a byte, and that only the strips containing such
// pixels report it.
func TestByteplaneWideDetection(t *testing.T) {
	im := New(8)
	im.Set(6, 3, 256) // truncates to 0
	var bp Byteplane
	bp.Reset(8)
	if bp.SetRows(im, 0, 4) {
		t.Fatal("rows [0,4) have no wide pixels but reported wide")
	}
	if !bp.SetRows(im, 4, 8) {
		t.Fatal("rows [4,8) contain a wide pixel but reported narrow")
	}
	if _, wide := NewByteplane(im); !wide {
		t.Fatal("NewByteplane missed the wide pixel")
	}
	if got := bp.Get(6, 3); got != 0 {
		t.Fatalf("truncated pixel packs to %d, want low byte 0", got)
	}
}

// TestByteplaneResetReuse checks that shrinking and regrowing reuses the
// backing array (no per-call allocation at steady state) and keeps packed
// contents correct.
func TestByteplaneResetReuse(t *testing.T) {
	var bp Byteplane
	bp.Reset(64)
	base := &bp.Words[:cap(bp.Words)][0]
	for _, n := range []int{64, 16, 33, 64} {
		im := RandomGrey(n, 200, uint64(n))
		bp.Reset(n)
		if &bp.Words[:cap(bp.Words)][0] != base {
			t.Fatalf("Reset(%d) reallocated", n)
		}
		bp.SetRows(im, 0, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if got, want := bp.Get(i, j), byte(im.Pix[i*n+j]); got != want {
					t.Fatalf("n=%d (%d,%d) = %d, want %d", n, i, j, got, want)
				}
			}
		}
	}
}

// TestByteplaneConcurrentSetRows packs disjoint strips from several
// goroutines, as the parallel engine's phase 1 does, and verifies the
// result — run with -race this doubles as the data-race check.
func TestByteplaneConcurrentSetRows(t *testing.T) {
	const n, W = 67, 5
	im := RandomGrey(n, 256, 99)
	var bp Byteplane
	bp.Reset(n)
	var wg sync.WaitGroup
	for w := 0; w < W; w++ {
		r0, r1 := w*n/W, (w+1)*n/W
		wg.Add(1)
		go func() {
			defer wg.Done()
			bp.SetRows(im, r0, r1)
		}()
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if got, want := bp.Get(i, j), byte(im.Pix[i*n+j]); got != want {
				t.Fatalf("(%d,%d) = %d, want %d", i, j, got, want)
			}
		}
	}
}
