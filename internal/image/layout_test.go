package image

import (
	"testing"
	"testing/quick"
)

func TestGridShape(t *testing.T) {
	cases := []struct{ p, v, w int }{
		{1, 1, 1}, {2, 1, 2}, {4, 2, 2}, {8, 2, 4},
		{16, 4, 4}, {32, 4, 8}, {64, 8, 8}, {128, 8, 16},
	}
	for _, c := range cases {
		v, w, err := GridShape(c.p)
		if err != nil {
			t.Fatalf("GridShape(%d): %v", c.p, err)
		}
		if v != c.v || w != c.w {
			t.Errorf("GridShape(%d) = %dx%d, want %dx%d", c.p, v, w, c.v, c.w)
		}
		if v*w != c.p {
			t.Errorf("GridShape(%d): v*w = %d", c.p, v*w)
		}
	}
	for _, p := range []int{0, -4, 3, 12, 100} {
		if _, _, err := GridShape(p); err == nil {
			t.Errorf("GridShape(%d): want error", p)
		}
	}
}

func TestNewLayoutPaperExample(t *testing.T) {
	// Figure 4: a 512x512 image on p=32 is a 4x8 grid of 128x64 tiles.
	lay, err := NewLayout(512, 32)
	if err != nil {
		t.Fatal(err)
	}
	if lay.V != 4 || lay.W != 8 || lay.Q != 128 || lay.R != 64 {
		t.Errorf("layout = %+v, want 4x8 grid of 128x64 tiles", lay)
	}
}

func TestNewLayoutRejectsUneven(t *testing.T) {
	if _, err := NewLayout(50, 16); err == nil {
		t.Error("50x50 on 4x4: want error (not divisible)")
	}
	if _, err := NewLayout(64, 12); err == nil {
		t.Error("p=12: want error (not a power of two)")
	}
}

func TestGridPosRoundTrip(t *testing.T) {
	lay, err := NewLayout(64, 32)
	if err != nil {
		t.Fatal(err)
	}
	for rank := 0; rank < 32; rank++ {
		gi, gj := lay.GridPos(rank)
		if gi < 0 || gi >= lay.V || gj < 0 || gj >= lay.W {
			t.Fatalf("rank %d: grid pos (%d,%d) out of range", rank, gi, gj)
		}
		if lay.Rank(gi, gj) != rank {
			t.Fatalf("rank %d: round trip gave %d", rank, lay.Rank(gi, gj))
		}
	}
}

func TestInitialLabelIsGlobalIndexPlusOne(t *testing.T) {
	lay, err := NewLayout(16, 8)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint32]bool{}
	for rank := 0; rank < 8; rank++ {
		for i := 0; i < lay.Q; i++ {
			for j := 0; j < lay.R; j++ {
				l := lay.InitialLabel(rank, i, j)
				if l == 0 {
					t.Fatal("initial label 0")
				}
				if seen[l] {
					t.Fatalf("duplicate initial label %d", l)
				}
				seen[l] = true
				if int(l) != lay.GlobalIndex(rank, i, j)+1 {
					t.Fatalf("label %d != global index %d + 1", l, lay.GlobalIndex(rank, i, j))
				}
			}
		}
	}
	if len(seen) != 16*16 {
		t.Fatalf("labels cover %d pixels, want 256", len(seen))
	}
}

func TestScatterGatherRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		im := RandomGrey(32, 8, seed)
		lay, err := NewLayout(32, 16)
		if err != nil {
			return false
		}
		out := NewLabels(32)
		for rank := 0; rank < 16; rank++ {
			tile := make([]uint32, lay.Q*lay.R)
			lay.Scatter(im, rank, tile)
			lay.GatherLabels(out, rank, tile)
		}
		for i := range im.Pix {
			if out.Lab[i] != im.Pix[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestScatterPanicsOnWrongSize(t *testing.T) {
	im := New(16)
	lay, _ := NewLayout(16, 4)
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	lay.Scatter(im, 0, make([]uint32, 3))
}

func TestTileOriginsTileThePlane(t *testing.T) {
	lay, err := NewLayout(64, 8)
	if err != nil {
		t.Fatal(err)
	}
	covered := make([]int, 64*64)
	for rank := 0; rank < 8; rank++ {
		r0, c0 := lay.TileOrigin(rank)
		for i := 0; i < lay.Q; i++ {
			for j := 0; j < lay.R; j++ {
				covered[(r0+i)*64+c0+j]++
			}
		}
	}
	for idx, c := range covered {
		if c != 1 {
			t.Fatalf("pixel %d covered %d times", idx, c)
		}
	}
}
