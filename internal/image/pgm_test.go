package image

import (
	"bytes"
	"strings"
	"testing"
)

func TestPGMRoundTrip(t *testing.T) {
	im := RandomGrey(32, 256, 9)
	var buf bytes.Buffer
	if err := im.WritePGM(&buf, 255); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPGM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != im.N {
		t.Fatalf("side %d, want %d", got.N, im.N)
	}
	for i := range im.Pix {
		if got.Pix[i] != im.Pix[i] {
			t.Fatalf("pixel %d: %d, want %d", i, got.Pix[i], im.Pix[i])
		}
	}
}

func TestWritePGMClampsPixels(t *testing.T) {
	im := New(2)
	im.Set(0, 0, 300)
	var buf bytes.Buffer
	if err := im.WritePGM(&buf, 255); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPGM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.At(0, 0) != 255 {
		t.Errorf("clamped pixel = %d, want 255", got.At(0, 0))
	}
}

func TestWritePGMRejectsBadMaxVal(t *testing.T) {
	im := New(2)
	var buf bytes.Buffer
	for _, mv := range []int{0, -1, 256, 1000} {
		if err := im.WritePGM(&buf, mv); err == nil {
			t.Errorf("maxval %d: want error", mv)
		}
	}
}

func TestReadPGMHeader(t *testing.T) {
	if _, err := ReadPGM(strings.NewReader("P6\n2 2\n255\n....")); err == nil {
		t.Error("P6 magic should be rejected")
	}
	if _, err := ReadPGM(strings.NewReader("P5\n2 3\n255\n......")); err == nil {
		t.Error("non-square image should be rejected")
	}
	if _, err := ReadPGM(strings.NewReader("P5\n2 2\n999\n....")); err == nil {
		t.Error("maxval over 255 should be rejected")
	}
	if _, err := ReadPGM(strings.NewReader("P5\n2 2\n255\nab")); err == nil {
		t.Error("truncated pixel data should be rejected")
	}
	if _, err := ReadPGM(strings.NewReader("")); err == nil {
		t.Error("empty input should be rejected")
	}
}

func TestReadPGMWhitespaceHandling(t *testing.T) {
	// Header fields separated by newlines and spaces, single separator
	// byte before data.
	data := "P5 2\n2 255\n" + string([]byte{1, 2, 3, 4})
	im, err := ReadPGM(strings.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if im.At(0, 0) != 1 || im.At(1, 1) != 4 {
		t.Errorf("pixels %v", im.Pix)
	}
}
