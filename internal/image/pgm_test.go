package image

import (
	"bytes"
	"errors"
	"math"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"parimg/internal/errs"
)

func TestPGMRoundTrip(t *testing.T) {
	im := RandomGrey(32, 256, 9)
	var buf bytes.Buffer
	if err := im.WritePGM(&buf, 255); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPGM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != im.N {
		t.Fatalf("side %d, want %d", got.N, im.N)
	}
	for i := range im.Pix {
		if got.Pix[i] != im.Pix[i] {
			t.Fatalf("pixel %d: %d, want %d", i, got.Pix[i], im.Pix[i])
		}
	}
}

func TestWritePGMClampsPixels(t *testing.T) {
	im := New(2)
	im.Set(0, 0, 300)
	var buf bytes.Buffer
	if err := im.WritePGM(&buf, 255); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPGM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.At(0, 0) != 255 {
		t.Errorf("clamped pixel = %d, want 255", got.At(0, 0))
	}
}

func TestWritePGMRejectsBadMaxVal(t *testing.T) {
	im := New(2)
	var buf bytes.Buffer
	for _, mv := range []int{0, -1, 256, 1000} {
		if err := im.WritePGM(&buf, mv); err == nil {
			t.Errorf("maxval %d: want error", mv)
		}
	}
}

func TestReadPGMHeader(t *testing.T) {
	if _, err := ReadPGM(strings.NewReader("P6\n2 2\n255\n....")); err == nil {
		t.Error("P6 magic should be rejected")
	}
	if _, err := ReadPGM(strings.NewReader("P5\n2 3\n255\n......")); err == nil {
		t.Error("non-square image should be rejected")
	}
	if _, err := ReadPGM(strings.NewReader("P5\n2 2\n65536\n........")); err == nil {
		t.Error("maxval over 65535 should be rejected")
	}
	if _, err := ReadPGM(strings.NewReader("P5\n2 2\n999\n......")); err == nil {
		t.Error("truncated 16-bit pixel data should be rejected")
	}
	if _, err := ReadPGM(strings.NewReader("P5\n2 2\n255\nab")); err == nil {
		t.Error("truncated pixel data should be rejected")
	}
	if _, err := ReadPGM(strings.NewReader("")); err == nil {
		t.Error("empty input should be rejected")
	}
}

func TestReadPGMWhitespaceHandling(t *testing.T) {
	// Header fields separated by newlines and spaces, single separator
	// byte before data.
	data := "P5 2\n2 255\n" + string([]byte{1, 2, 3, 4})
	im, err := ReadPGM(strings.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if im.At(0, 0) != 1 || im.At(1, 1) != 4 {
		t.Errorf("pixels %v", im.Pix)
	}
}

func TestReadPGMCommentLines(t *testing.T) {
	// '#' comments may appear anywhere between header tokens (standard
	// PGM); this used to be a hard parse failure.
	data := "P5\n# created by an image editor\n2 2\n# maxval next\n255\n" +
		string([]byte{10, 20, 30, 40})
	im, err := ReadPGM(strings.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if im.N != 2 || im.At(0, 1) != 20 || im.At(1, 1) != 40 {
		t.Errorf("side %d pixels %v", im.N, im.Pix)
	}
}

func TestReadPGMHostileHeaders(t *testing.T) {
	cases := []struct {
		name, data string
		kind       error
	}{
		{"zero side", "P5\n0 0\n255\n", errs.ErrGeometry},
		{"negative width", "P5\n-2 -2\n255\n....", errs.ErrBadInput},
		{"oversized side", "P5\n999999999 999999999\n255\n", errs.ErrLabelOverflow},
		{"overflow side", "P5\n4294967296 4294967296\n255\n", errs.ErrBadInput},
		{"non-numeric width", "P5\nxx 2\n255\n....", errs.ErrBadInput},
		{"maxval zero", "P5\n2 2\n0\n....", errs.ErrBadInput},
		{"header-only", "P5\n2 2\n255\n", errs.ErrBadInput},
		{"comment to EOF", "P5\n# never ends", errs.ErrBadInput},
		{"huge token", "P5\n" + strings.Repeat("1", 64) + " 2\n255\n", errs.ErrBadInput},
	}
	for _, c := range cases {
		im, err := ReadPGM(strings.NewReader(c.data))
		if err == nil {
			t.Errorf("%s: got image %dx%d, want error", c.name, im.N, im.N)
			continue
		}
		if !errors.Is(err, c.kind) {
			t.Errorf("%s: error %v is not %v", c.name, err, c.kind)
		}
		if !errors.Is(err, errs.ErrBadInput) {
			t.Errorf("%s: error %v is outside the taxonomy", c.name, err)
		}
	}
}

func TestReadPGMDoesNotPreallocateFromHeader(t *testing.T) {
	// A header declaring the maximum side followed by no pixel data must
	// fail fast without committing the declared w*h words.
	data := "P5\n65535 65535\n255\n"
	before := allocatedBytes()
	_, err := ReadPGM(strings.NewReader(data))
	after := allocatedBytes()
	if err == nil {
		t.Fatal("want error for missing pixel data")
	}
	// The declared image would be ~17 GB; the failed parse must stay far
	// below that (one row buffer + one append chunk).
	if grown := after - before; grown > 64<<20 {
		t.Errorf("failed parse grew the heap by %d bytes", grown)
	}
}

func allocatedBytes() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.TotalAlloc
}

func TestCheckedConstructors(t *testing.T) {
	if _, err := NewChecked(0); !errors.Is(err, errs.ErrGeometry) {
		t.Errorf("NewChecked(0): %v", err)
	}
	if _, err := NewChecked(MaxSide + 1); !errors.Is(err, errs.ErrLabelOverflow) {
		t.Errorf("NewChecked(MaxSide+1): %v", err)
	}
	if im, err := NewChecked(4); err != nil || im.N != 4 {
		t.Errorf("NewChecked(4): %v, %v", im, err)
	}
	if _, err := RandomBinaryChecked(8, 1.5, 1); !errors.Is(err, errs.ErrBadInput) {
		t.Errorf("RandomBinaryChecked density 1.5: %v", err)
	}
	if _, err := RandomBinaryChecked(8, math.NaN(), 1); !errors.Is(err, errs.ErrBadInput) {
		t.Errorf("RandomBinaryChecked NaN density: %v", err)
	}
	if _, err := RandomGreyChecked(8, 1, 1); !errors.Is(err, errs.ErrGreyRange) {
		t.Errorf("RandomGreyChecked k=1: %v", err)
	}
	if _, err := RandomGreyChecked(-3, 8, 1); !errors.Is(err, errs.ErrGeometry) {
		t.Errorf("RandomGreyChecked n=-3: %v", err)
	}
	if _, err := GenerateChecked(PatternID(99), 32); !errors.Is(err, errs.ErrBadInput) {
		t.Errorf("GenerateChecked bad id: %v", err)
	}
	if _, err := GenerateChecked(Cross, -1); !errors.Is(err, errs.ErrGeometry) {
		t.Errorf("GenerateChecked bad side: %v", err)
	}
	if im, err := GenerateChecked(Cross, 32); err != nil || im.CountForeground() == 0 {
		t.Errorf("GenerateChecked(Cross, 32): %v", err)
	}
}

func TestImageAndLabelsCheck(t *testing.T) {
	cases := []struct {
		name string
		im   *Image
		kind error
	}{
		{"nil", nil, errs.ErrBadInput},
		{"zero side", &Image{N: 0}, errs.ErrGeometry},
		{"negative side", &Image{N: -4, Pix: nil}, errs.ErrGeometry},
		{"short buffer", &Image{N: 4, Pix: make([]uint32, 3)}, errs.ErrGeometry},
		{"long buffer", &Image{N: 2, Pix: make([]uint32, 9)}, errs.ErrGeometry},
		{"oversized side", &Image{N: MaxSide + 1, Pix: nil}, errs.ErrLabelOverflow},
	}
	for _, c := range cases {
		if err := c.im.Check(); !errors.Is(err, c.kind) {
			t.Errorf("Image %s: Check = %v, want %v", c.name, err, c.kind)
		}
	}
	if err := New(8).Check(); err != nil {
		t.Errorf("valid image: %v", err)
	}
	if err := (&Labels{N: 4, Lab: make([]uint32, 5)}).Check(); !errors.Is(err, errs.ErrGeometry) {
		t.Error("short labels passed Check")
	}
	var nilLabels *Labels
	if err := nilLabels.Check(); !errors.Is(err, errs.ErrBadInput) {
		t.Error("nil labels passed Check")
	}
	if err := NewLabels(4).Check(); err != nil {
		t.Errorf("valid labels: %v", err)
	}
}

func TestCensusChecked(t *testing.T) {
	im := New(4)
	if _, err := NewLabels(5).CensusChecked(im); !errors.Is(err, errs.ErrGeometry) {
		t.Error("size mismatch passed CensusChecked")
	}
	if _, err := NewLabels(4).CensusChecked(&Image{N: 4, Pix: nil}); !errors.Is(err, errs.ErrGeometry) {
		t.Error("malformed image passed CensusChecked")
	}
	if stats, err := NewLabels(4).CensusChecked(im); err != nil || len(stats) != 0 {
		t.Errorf("empty census: %v, %v", stats, err)
	}
}

// TestReadPGM16Bit decodes the two-byte big-endian sample form the P5
// spec prescribes for maxval above 255 — the form the labeling service's
// 16-bit label PGMs take, which ReadPGM used to reject outright.
func TestReadPGM16Bit(t *testing.T) {
	data := "P5\n2 2\n65535\n" + string([]byte{
		0x01, 0x00, // 256
		0x00, 0x02, // 2
		0xff, 0xff, // 65535
		0x00, 0x00, // 0
	})
	im, err := ReadPGM(strings.NewReader(data))
	if err != nil {
		t.Fatalf("ReadPGM 16-bit: %v", err)
	}
	want := []uint32{256, 2, 65535, 0}
	for i, w := range want {
		if im.Pix[i] != w {
			t.Errorf("pixel %d = %d, want %d", i, im.Pix[i], w)
		}
	}
}

// TestStreamHeaderMatchesReadPGM pins the streaming header probe and row
// reader against the resident reader on both sample widths.
func TestStreamHeaderMatchesReadPGM(t *testing.T) {
	for _, maxVal := range []int{255, 65535} {
		n := 4
		raw := make([]byte, 0, 64)
		raw = append(raw, []byte("P5\n# c\n4 4\n")...)
		raw = append(raw, []byte(strconv.Itoa(maxVal))...)
		raw = append(raw, '\n')
		for i := 0; i < n*n; i++ {
			v := (i * 977) % (maxVal + 1)
			if maxVal > 255 {
				raw = append(raw, byte(v>>8))
			}
			raw = append(raw, byte(v))
		}
		im, err := ReadPGM(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("maxval %d: ReadPGM: %v", maxVal, err)
		}
		hdr, err := ReadPGMHeader(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("maxval %d: ReadPGMHeader: %v", maxVal, err)
		}
		if hdr.Width != n || hdr.Height != n || hdr.MaxVal != maxVal {
			t.Fatalf("maxval %d: header %+v", maxVal, hdr)
		}
		for y := 0; y < n; y++ {
			dst := make([]uint32, n)
			if _, err := hdr.ReadRows(bytes.NewReader(raw), y, 1, dst, nil); err != nil {
				t.Fatalf("maxval %d: ReadRows(%d): %v", maxVal, y, err)
			}
			for x := 0; x < n; x++ {
				if dst[x] != im.Pix[y*n+x] {
					t.Fatalf("maxval %d: pixel (%d,%d): stream %d, resident %d",
						maxVal, y, x, dst[x], im.Pix[y*n+x])
				}
			}
		}
	}
}
