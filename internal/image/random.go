package image

import (
	"fmt"

	"parimg/internal/errs"
)

// rng is a small deterministic xorshift64* generator so that test images
// are reproducible across Go releases (math/rand's stream is not part of
// its compatibility promise).
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &rng{s: seed}
}

func (r *rng) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545f4914f6cdd1d
}

// Float64 returns a uniform value in [0, 1).
func (r *rng) Float64() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}

// Intn returns a uniform value in [0, n).
func (r *rng) Intn(n int) int {
	return int(r.next() % uint64(n))
}

// RandomBinary returns an n x n image where each pixel is foreground with
// probability density, deterministically from seed. Densities near the site
// percolation threshold (~0.593 for 4-connectivity) give the richest
// component structure.
func RandomBinary(n int, density float64, seed uint64) *Image {
	im, err := RandomBinaryChecked(n, density, seed)
	if err != nil {
		// Invariant panic: trusted callers validate n and density first;
		// hostile inputs go through RandomBinaryChecked.
		panic(fmt.Sprintf("image: %v", err))
	}
	return im
}

// RandomBinaryChecked is RandomBinary with typed errors instead of panics:
// ErrGeometry/ErrLabelOverflow for a bad side, ErrBadInput for a density
// outside [0, 1] (NaN included).
func RandomBinaryChecked(n int, density float64, seed uint64) (*Image, error) {
	if !(density >= 0 && density <= 1) {
		return nil, errs.Bad("image.RandomBinary", "density %v outside [0,1]", density)
	}
	im, err := NewChecked(n)
	if err != nil {
		return nil, err
	}
	r := newRNG(seed)
	for i := range im.Pix {
		if r.Float64() < density {
			im.Pix[i] = 1
		}
	}
	return im, nil
}

// RandomGrey returns an n x n image with k grey levels where each pixel is
// drawn uniformly from [0, k), deterministically from seed.
func RandomGrey(n, k int, seed uint64) *Image {
	im, err := RandomGreyChecked(n, k, seed)
	if err != nil {
		// Invariant panic: trusted callers validate n and k first; hostile
		// inputs go through RandomGreyChecked.
		panic(fmt.Sprintf("image: %v", err))
	}
	return im
}

// RandomGreyChecked is RandomGrey with typed errors instead of panics:
// ErrGreyRange for k < 2, ErrGeometry/ErrLabelOverflow for a bad side.
func RandomGreyChecked(n, k int, seed uint64) (*Image, error) {
	if k < 2 {
		return nil, errs.GreyRange("image.RandomGrey", k, "need at least 2 grey levels, got %d", k)
	}
	im, err := NewChecked(n)
	if err != nil {
		return nil, err
	}
	r := newRNG(seed)
	for i := range im.Pix {
		im.Pix[i] = uint32(r.Intn(k))
	}
	return im, nil
}

// RandomBlobs returns an n x n binary image of count random axis-aligned
// rectangles and discs, useful for generating component censuses of
// controlled richness.
func RandomBlobs(n, count int, seed uint64) *Image {
	if n < 8 {
		// Invariant panic: internal test-image generator; blob sizing needs
		// room for the 2-pixel minimum feature.
		panic(fmt.Sprintf("image: RandomBlobs needs n >= 8, got %d", n))
	}
	im := New(n)
	r := newRNG(seed)
	for b := 0; b < count; b++ {
		h := 2 + r.Intn(n/4)
		w := 2 + r.Intn(n/4)
		r0 := r.Intn(n - h)
		c0 := r.Intn(n - w)
		for i := r0; i < r0+h; i++ {
			for j := c0; j < c0+w; j++ {
				im.Pix[i*n+j] = 1
			}
		}
	}
	return im
}
