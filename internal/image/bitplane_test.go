package image

import (
	"fmt"
	"testing"
)

// TestBitplanePacking cross-checks every bit of the packed plane against
// the pixel array, across sides around and on word boundaries.
func TestBitplanePacking(t *testing.T) {
	for _, n := range []int{1, 2, 63, 64, 65, 100, 127, 128, 130} {
		im := RandomBinary(n, 0.5, uint64(n))
		b := NewBitplane(im)
		if b.WPR != (n+63)/64 {
			t.Fatalf("n=%d: WPR=%d, want %d", n, b.WPR, (n+63)/64)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if got, want := b.Get(i, j), im.At(i, j) != 0; got != want {
					t.Fatalf("n=%d: bit (%d,%d)=%v, want %v", n, i, j, got, want)
				}
			}
		}
		if got, want := b.OnesCount(), im.CountForeground(); got != want {
			t.Fatalf("n=%d: OnesCount=%d, CountForeground=%d", n, got, want)
		}
	}
}

// TestBitplaneTrailingBitsZero checks the invariant word-at-a-time run
// extraction relies on: bits at column >= N of a row's last word are zero,
// even for an all-foreground image.
func TestBitplaneTrailingBitsZero(t *testing.T) {
	for _, n := range []int{1, 63, 65, 100} {
		im := New(n)
		for i := range im.Pix {
			im.Pix[i] = 1
		}
		b := NewBitplane(im)
		for i := 0; i < n; i++ {
			last := b.Row(i)[b.WPR-1]
			hi := n - (b.WPR-1)*64
			if hi < 64 && last>>uint(hi) != 0 {
				t.Fatalf("n=%d row %d: bits beyond column %d set: %#x", n, i, n, last)
			}
		}
	}
}

// TestBitplaneSetRowsReuse packs two different images through one bitplane
// and checks the second packing fully overwrites the first.
func TestBitplaneSetRowsReuse(t *testing.T) {
	full := New(70)
	for i := range full.Pix {
		full.Pix[i] = 1
	}
	empty := New(70)
	var b Bitplane
	b.Reset(70)
	b.SetRows(full, 0, 70)
	b.Reset(70)
	b.SetRows(empty, 0, 70)
	if got := b.OnesCount(); got != 0 {
		t.Fatalf("after repacking empty image: %d bits set", got)
	}
}

// TestBitplaneStripedSetRows packs disjoint row ranges separately (the
// parallel engine's per-strip packing) and checks the union is complete.
func TestBitplaneStripedSetRows(t *testing.T) {
	im := RandomBinary(97, 0.4, 7)
	var b Bitplane
	b.Reset(97)
	for _, r := range [][2]int{{0, 31}, {31, 64}, {64, 97}} {
		b.SetRows(im, r[0], r[1])
	}
	want := NewBitplane(im)
	for i, w := range b.Words {
		if w != want.Words[i] {
			t.Fatalf("word %d: %#x, want %#x", i, w, want.Words[i])
		}
	}
}

func BenchmarkBitplaneSetRows(b *testing.B) {
	for _, n := range []int{512, 1024} {
		im := RandomBinary(n, 0.5, 3)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var bp Bitplane
			bp.Reset(n)
			b.SetBytes(int64(n * n))
			for i := 0; i < b.N; i++ {
				bp.SetRows(im, 0, n)
			}
		})
	}
}
