package image

import (
	"fmt"

	"parimg/internal/errs"
)

// Layout is the data layout of Section 3: the p processors form a logical
// v x w grid (v rows, w columns) with p = v*w, assigned in row-major order,
// and each processor owns a q x r tile of the n x n image with q = n/v and
// r = n/w.
type Layout struct {
	N int // image side
	P int // processors
	V int // rows in the logical processor grid
	W int // columns in the logical processor grid
	Q int // tile rows per processor (n/v)
	R int // tile columns per processor (n/w)
}

// GridShape returns the logical processor grid for p = 2^d processors:
// v = 2^floor(d/2) rows and w = 2^ceil(d/2) columns, per Section 3.
func GridShape(p int) (v, w int, err error) {
	if p <= 0 || p&(p-1) != 0 {
		return 0, 0, errs.Geometry("image.GridShape", 0, p, "p must be a positive power of two, got %d", p)
	}
	d := 0
	for 1<<d < p {
		d++
	}
	v = 1 << (d / 2)
	w = 1 << ((d + 1) / 2)
	return v, w, nil
}

// NewLayout builds the tile layout for an n x n image on p processors.
// It requires p to be a power of two with v | n and w | n (the paper's
// p <= n^2 assumption with even tiling).
func NewLayout(n, p int) (Layout, error) {
	v, w, err := GridShape(p)
	if err != nil {
		return Layout{}, err
	}
	if err := checkSide("image.NewLayout", n); err != nil {
		return Layout{}, err
	}
	if n%v != 0 || n%w != 0 {
		return Layout{}, errs.Geometry("image.NewLayout", n, p,
			"%d x %d image does not tile evenly on a %d x %d processor grid", n, n, v, w)
	}
	return Layout{N: n, P: p, V: v, W: w, Q: n / v, R: n / w}, nil
}

// GridPos returns the logical grid position (I, J) of processor rank
// (row-major assignment).
func (l Layout) GridPos(rank int) (gi, gj int) {
	return rank / l.W, rank % l.W
}

// Rank returns the processor at logical grid position (I, J).
func (l Layout) Rank(gi, gj int) int { return gi*l.W + gj }

// TileOrigin returns the global coordinates of the top-left pixel of
// processor rank's tile.
func (l Layout) TileOrigin(rank int) (row, col int) {
	gi, gj := l.GridPos(rank)
	return gi * l.Q, gj * l.R
}

// GlobalIndex returns the row-major global index of the pixel at local
// offset (i, j) in processor rank's tile.
func (l Layout) GlobalIndex(rank, i, j int) int {
	r0, c0 := l.TileOrigin(rank)
	return (r0+i)*l.N + (c0 + j)
}

// InitialLabel is the paper's globally unique initial label for the pixel
// at local offset (i, j) of the processor at grid position (I, J):
// (I*q + i)*n + (J*r + j) + 1 (Section 5.1). It equals the pixel's global
// row-major index plus one, which guarantees unique labels across tiles
// without any communication.
func (l Layout) InitialLabel(rank, i, j int) uint32 {
	return uint32(l.GlobalIndex(rank, i, j) + 1)
}

// Scatter copies the tile of processor rank out of a full image into dst,
// which must have length q*r; the tile is stored row-major.
func (l Layout) Scatter(im *Image, rank int, dst []uint32) {
	if len(dst) != l.Q*l.R {
		// Invariant panic: dst is always sized from the same Layout by the
		// simulator backends; a mismatch is a bug, not caller input.
		panic(fmt.Sprintf("image: Scatter dst has %d elements, want %d", len(dst), l.Q*l.R))
	}
	r0, c0 := l.TileOrigin(rank)
	for i := 0; i < l.Q; i++ {
		copy(dst[i*l.R:(i+1)*l.R], im.Pix[(r0+i)*l.N+c0:(r0+i)*l.N+c0+l.R])
	}
}

// GatherLabels copies processor rank's tile of labels (row-major, length
// q*r) back into the global labeling.
func (l Layout) GatherLabels(out *Labels, rank int, src []uint32) {
	if len(src) != l.Q*l.R {
		// Invariant panic: src is always sized from the same Layout by the
		// simulator backends; a mismatch is a bug, not caller input.
		panic(fmt.Sprintf("image: GatherLabels src has %d elements, want %d", len(src), l.Q*l.R))
	}
	r0, c0 := l.TileOrigin(rank)
	for i := 0; i < l.Q; i++ {
		copy(out.Lab[(r0+i)*l.N+c0:(r0+i)*l.N+c0+l.R], src[i*l.R:(i+1)*l.R])
	}
}
