package image

// DARPASynthetic is a deterministic 512 x 512, 256 grey-level stand-in for
// the Second DARPA Image Understanding Benchmark image of Figure 2 (a
// "2.5-D mobile": shapes suspended from link bars), which is not
// redistributable. The scene is a recursive mobile: a trunk bar splits into
// hanging arms ending in rectangles and discs, each piece at its own grey
// level, over many scattered small distractor objects — giving a component
// census (hundreds of components at widely varying sizes and many distinct
// grey levels) of the same order as the benchmark image, which is what
// drives the cost of grey-scale connected components.
func DARPASynthetic() *Image {
	return DARPAScene(512, 256, 1994)
}

// DARPAScene renders the synthetic mobile scene at side n with k grey
// levels, deterministically from seed.
func DARPAScene(n, k int, seed uint64) *Image {
	im := New(n)
	r := newRNG(seed)
	grey := func() uint32 {
		// Avoid 0 (background); spread across the full range.
		return uint32(1 + r.Intn(k-1))
	}

	// Scattered distractor objects first, so the mobile overwrites them
	// where they overlap (the benchmark scene has occlusion).
	nBlobs := n * n / 2048
	for b := 0; b < nBlobs; b++ {
		g := grey()
		h := 2 + r.Intn(n/32)
		w := 2 + r.Intn(n/32)
		r0 := r.Intn(n - h)
		c0 := r.Intn(n - w)
		if r.Intn(2) == 0 {
			im.fillRect(r0, c0, h, w, g)
		} else {
			rad := (h + w) / 4
			if rad < 1 {
				rad = 1
			}
			im.fillDisc(r0+h/2, c0+w/2, rad, g)
		}
	}

	// The mobile: recursive arms from a top anchor.
	var mobile func(row, col, span, depth int)
	mobile = func(row, col, span, depth int) {
		if depth == 0 || span < n/32 {
			// Leaf: a hanging rectangle or disc.
			g := grey()
			sz := n/24 + r.Intn(n/24)
			if r.Intn(2) == 0 {
				im.fillRect(row, col-sz/2, sz, sz, g)
			} else {
				im.fillDisc(row+sz/2, col, sz/2, g)
			}
			return
		}
		// Crossbar with two hanging strings.
		bar := grey()
		im.fillRect(row, col-span/2, n/128+1, span, bar)
		drop := n/16 + r.Intn(n/16)
		str := grey()
		im.fillRect(row, col-span/2, drop, n/128+1, str)
		im.fillRect(row, col+span/2-(n/128+1), drop, n/128+1, str)
		mobile(row+drop, col-span/2, span/2, depth-1)
		mobile(row+drop, col+span/2, span/2, depth-1)
	}
	mobile(n/16, n/2, n/2, 4)
	return im
}

func (im *Image) fillRect(r0, c0, h, w int, g uint32) {
	for i := r0; i < r0+h; i++ {
		if i < 0 || i >= im.N {
			continue
		}
		for j := c0; j < c0+w; j++ {
			if j < 0 || j >= im.N {
				continue
			}
			im.Pix[i*im.N+j] = g
		}
	}
}

func (im *Image) fillDisc(ci, cj, rad int, g uint32) {
	for i := ci - rad; i <= ci+rad; i++ {
		if i < 0 || i >= im.N {
			continue
		}
		for j := cj - rad; j <= cj+rad; j++ {
			if j < 0 || j >= im.N {
				continue
			}
			di, dj := i-ci, j-cj
			if di*di+dj*dj <= rad*rad {
				im.Pix[i*im.N+j] = g
			}
		}
	}
}
