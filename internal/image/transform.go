package image

// Geometric transforms used by the test suite's invariance properties and
// by downstream users augmenting workloads: connected component structure
// is invariant under them (rotations and reflections preserve both 4- and
// 8-adjacency), so labelers must report identical component censuses on
// transformed images.

// Rotate90 returns the image rotated 90 degrees clockwise: pixel (i, j)
// moves to (j, n-1-i).
func (im *Image) Rotate90() *Image {
	n := im.N
	out := New(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			out.Pix[j*n+(n-1-i)] = im.Pix[i*n+j]
		}
	}
	return out
}

// FlipH returns the image mirrored horizontally (columns reversed).
func (im *Image) FlipH() *Image {
	n := im.N
	out := New(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			out.Pix[i*n+(n-1-j)] = im.Pix[i*n+j]
		}
	}
	return out
}

// FlipV returns the image mirrored vertically (rows reversed).
func (im *Image) FlipV() *Image {
	n := im.N
	out := New(n)
	for i := 0; i < n; i++ {
		copy(out.Pix[(n-1-i)*n:(n-i)*n], im.Pix[i*n:(i+1)*n])
	}
	return out
}

// Transpose returns the image mirrored across the main diagonal.
func (im *Image) Transpose() *Image {
	n := im.N
	out := New(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			out.Pix[j*n+i] = im.Pix[i*n+j]
		}
	}
	return out
}
