// Package image provides the n x n grey-level images, the logical processor
// grid and tile layout of Section 3 of the paper, the catalog of nine
// scalable binary test patterns of Figure 1, random images, and a synthetic
// stand-in for the DARPA Image Understanding Benchmark image of Figure 2.
package image

import (
	"fmt"

	"parimg/internal/errs"
)

// MaxSide is the largest supported image side; see errs.MaxSide for the
// uint32 seed-label derivation.
const MaxSide = errs.MaxSide

// Image is an n x n image of k grey levels stored row-major. Grey level 0
// is background; grey levels > 0 are foreground objects.
type Image struct {
	// N is the side length; the image has N*N pixels.
	N int
	// Pix holds the pixels row-major: Pix[i*N+j] is row i, column j.
	Pix []uint32
}

// New returns an all-background n x n image. It is the trusted-caller
// constructor: callers must have validated n (the generators do, the
// checked public constructors go through NewChecked instead).
func New(n int) *Image {
	if n <= 0 || n > MaxSide {
		// Invariant panic: callers validate n before constructing; hostile
		// sides reach NewChecked and return errors instead.
		panic(fmt.Sprintf("image: invalid side %d", n))
	}
	return &Image{N: n, Pix: make([]uint32, n*n)}
}

// NewChecked returns an all-background n x n image, rejecting invalid
// sides with a typed error instead of panicking: ErrGeometry for
// non-positive n, ErrLabelOverflow for n > MaxSide.
func NewChecked(n int) (*Image, error) {
	if err := checkSide("image.NewChecked", n); err != nil {
		return nil, err
	}
	return &Image{N: n, Pix: make([]uint32, n*n)}, nil
}

// checkSide validates an image side: 0 < n <= MaxSide.
func checkSide(op string, n int) error {
	if n <= 0 {
		return errs.Geometry(op, n, 0, "image side %d is not positive", n)
	}
	if n > MaxSide {
		return errs.LabelOverflow(op, n)
	}
	return nil
}

// Check validates the image structure itself — the defense against
// hand-crafted Image values reaching the algorithms: the side must be in
// (0, MaxSide] and the pixel buffer must hold exactly N*N elements. The
// side limit is checked first so an oversized declared side reports
// ErrLabelOverflow even when the buffer is (necessarily) short.
func (im *Image) Check() error {
	if im == nil {
		return errs.Bad("image.Check", "nil image")
	}
	if err := checkSide("image.Check", im.N); err != nil {
		return err
	}
	if len(im.Pix) != im.N*im.N {
		return errs.Geometry("image.Check", im.N, 0,
			"pixel buffer holds %d elements, want %d", len(im.Pix), im.N*im.N)
	}
	return nil
}

// At returns the pixel at row i, column j.
func (im *Image) At(i, j int) uint32 { return im.Pix[i*im.N+j] }

// Set sets the pixel at row i, column j.
func (im *Image) Set(i, j int, v uint32) { im.Pix[i*im.N+j] = v }

// Clone returns a deep copy.
func (im *Image) Clone() *Image {
	out := New(im.N)
	copy(out.Pix, im.Pix)
	return out
}

// MaxGrey returns the maximum grey level present.
func (im *Image) MaxGrey() uint32 {
	var m uint32
	for _, v := range im.Pix {
		if v > m {
			m = v
		}
	}
	return m
}

// CountForeground returns the number of pixels with grey level > 0.
func (im *Image) CountForeground() int {
	n := 0
	for _, v := range im.Pix {
		if v != 0 {
			n++
		}
	}
	return n
}

// Histogram tallies the image into a k-bucket histogram. k must be
// positive; pixels with grey level >= k are an ErrGreyRange error (the
// image does not fit in k grey levels).
func (im *Image) Histogram(k int) ([]int64, error) {
	if k < 1 {
		return nil, errs.GreyRange("image.Histogram", k, "histogram needs at least 1 bucket, got %d", k)
	}
	if err := im.Check(); err != nil {
		return nil, err
	}
	h := make([]int64, k)
	for _, v := range im.Pix {
		if int(v) >= k {
			return nil, errs.GreyRange("image.Histogram", k, "grey level %d outside [0,%d)", v, k)
		}
		h[v]++
	}
	return h, nil
}

// Labels is a per-pixel component labeling of an image: Lab[i*N+j] is the
// positive label of the component containing pixel (i, j), or 0 for
// background pixels.
type Labels struct {
	N   int
	Lab []uint32
}

// NewLabels returns an all-zero labeling for an n x n image. Like New it
// trusts its caller to pass a validated side.
func NewLabels(n int) *Labels {
	if n <= 0 || n > MaxSide {
		// Invariant panic: callers validate n before constructing.
		panic(fmt.Sprintf("image: invalid labeling side %d", n))
	}
	return &Labels{N: n, Lab: make([]uint32, n*n)}
}

// Check validates the labeling structure the way Image.Check validates an
// image: side in (0, MaxSide], exactly N*N labels.
func (l *Labels) Check() error {
	if l == nil {
		return errs.Bad("labels.Check", "nil labeling")
	}
	if err := checkSide("labels.Check", l.N); err != nil {
		return err
	}
	if len(l.Lab) != l.N*l.N {
		return errs.Geometry("labels.Check", l.N, 0,
			"label buffer holds %d elements, want %d", len(l.Lab), l.N*l.N)
	}
	return nil
}

// At returns the label at row i, column j.
func (l *Labels) At(i, j int) uint32 { return l.Lab[i*l.N+j] }

// Components returns the number of distinct nonzero labels.
func (l *Labels) Components() int {
	seen := make(map[uint32]struct{})
	for _, v := range l.Lab {
		if v != 0 {
			seen[v] = struct{}{}
		}
	}
	return len(seen)
}

// ComponentSizes returns the size of each component keyed by label.
func (l *Labels) ComponentSizes() map[uint32]int {
	sizes := make(map[uint32]int)
	for _, v := range l.Lab {
		if v != 0 {
			sizes[v]++
		}
	}
	return sizes
}

// EquivalentTo reports whether two labelings denote the same partition of
// pixels into components (i.e. they agree up to a bijective renaming of
// nonzero labels, and exactly on background). If not, it returns a
// description of the first disagreement.
func (l *Labels) EquivalentTo(o *Labels) (bool, string) {
	if l.N != o.N {
		return false, fmt.Sprintf("size mismatch: %d vs %d", l.N, o.N)
	}
	fwd := make(map[uint32]uint32)
	rev := make(map[uint32]uint32)
	for idx := range l.Lab {
		a, b := l.Lab[idx], o.Lab[idx]
		if (a == 0) != (b == 0) {
			return false, fmt.Sprintf("pixel %d: background mismatch (%d vs %d)", idx, a, b)
		}
		if a == 0 {
			continue
		}
		if want, ok := fwd[a]; ok {
			if want != b {
				return false, fmt.Sprintf("pixel %d: label %d maps to both %d and %d", idx, a, want, b)
			}
		} else {
			fwd[a] = b
		}
		if want, ok := rev[b]; ok {
			if want != a {
				return false, fmt.Sprintf("pixel %d: label %d mapped from both %d and %d", idx, b, want, a)
			}
		} else {
			rev[b] = a
		}
	}
	return true, ""
}

// Connectivity selects 4- or 8-connectivity (Section 1: two pixels are
// adjacent under 8-connectivity if one lies in any of the eight positions
// surrounding the other; under 4-connectivity only the north, east, south
// and west neighbors are adjacent).
type Connectivity int

const (
	// Conn4 is 4-connectivity (N, E, S, W neighbors).
	Conn4 Connectivity = 4
	// Conn8 is 8-connectivity (all eight surrounding positions).
	Conn8 Connectivity = 8
)

func (c Connectivity) String() string {
	switch c {
	case Conn4:
		return "4-connectivity"
	case Conn8:
		return "8-connectivity"
	}
	return fmt.Sprintf("Connectivity(%d)", int(c))
}

// Valid reports whether c is one of the two supported connectivities.
func (c Connectivity) Valid() bool { return c == Conn4 || c == Conn8 }

// Offsets returns the neighbor offsets (di, dj) of the connectivity, in
// scanning order.
func (c Connectivity) Offsets() [][2]int {
	if c == Conn4 {
		return [][2]int{{-1, 0}, {0, -1}, {0, 1}, {1, 0}}
	}
	return [][2]int{
		{-1, -1}, {-1, 0}, {-1, 1},
		{0, -1}, {0, 1},
		{1, -1}, {1, 0}, {1, 1},
	}
}
