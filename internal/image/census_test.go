package image

import (
	"math"
	"testing"
)

// labelsFor builds a labeling directly for test setups.
func labelsFor(n int, lab []uint32) *Labels {
	l := NewLabels(n)
	copy(l.Lab, lab)
	return l
}

func TestCensusBasic(t *testing.T) {
	im := New(4)
	// A 2x2 square of grey 5 at (0,0) and a single pixel of grey 9 at (3,3).
	im.Set(0, 0, 5)
	im.Set(0, 1, 5)
	im.Set(1, 0, 5)
	im.Set(1, 1, 5)
	im.Set(3, 3, 9)
	l := labelsFor(4, []uint32{
		1, 1, 0, 0,
		1, 1, 0, 0,
		0, 0, 0, 0,
		0, 0, 0, 16,
	})
	stats := l.Census(im)
	if len(stats) != 2 {
		t.Fatalf("census has %d components, want 2", len(stats))
	}
	sq := stats[0]
	if sq.Label != 1 || sq.Size != 4 {
		t.Fatalf("largest component %+v", sq)
	}
	if sq.MinRow != 0 || sq.MinCol != 0 || sq.MaxRow != 1 || sq.MaxCol != 1 {
		t.Errorf("square bbox %+v", sq)
	}
	if math.Abs(sq.CentroidRow-0.5) > 1e-12 || math.Abs(sq.CentroidCol-0.5) > 1e-12 {
		t.Errorf("square centroid (%g,%g), want (0.5,0.5)", sq.CentroidRow, sq.CentroidCol)
	}
	if sq.Grey != 5 {
		t.Errorf("square grey %d, want 5", sq.Grey)
	}
	dot := stats[1]
	if dot.Size != 1 || dot.Grey != 9 || dot.MinRow != 3 || dot.MaxCol != 3 {
		t.Errorf("dot stats %+v", dot)
	}
}

func TestCensusSizesMatchComponentSizes(t *testing.T) {
	im := RandomBinary(32, 0.55, 3)
	// Use any labeling; here a trivial one keyed by value runs.
	l := NewLabels(32)
	next := uint32(1)
	for i, v := range im.Pix {
		if v != 0 {
			l.Lab[i] = 1 + next%7 // arbitrary multi-component labeling
			next++
		}
	}
	stats := l.Census(im)
	sizes := l.ComponentSizes()
	if len(stats) != len(sizes) {
		t.Fatalf("census %d entries, sizes %d", len(stats), len(sizes))
	}
	total := 0
	for _, s := range stats {
		if sizes[s.Label] != s.Size {
			t.Errorf("label %d: census size %d, map size %d", s.Label, s.Size, sizes[s.Label])
		}
		total += s.Size
	}
	if total != im.CountForeground() {
		t.Errorf("census covers %d pixels, foreground is %d", total, im.CountForeground())
	}
	// Sorted by decreasing size.
	for i := 1; i < len(stats); i++ {
		if stats[i].Size > stats[i-1].Size {
			t.Fatal("census not sorted by size")
		}
	}
}

func TestCensusEmpty(t *testing.T) {
	im := New(8)
	if got := NewLabels(8).Census(im); len(got) != 0 {
		t.Errorf("empty census has %d entries", len(got))
	}
}

func TestCensusPanicsOnSizeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	NewLabels(4).Census(New(8))
}

func TestEqualizeFlattens(t *testing.T) {
	// Squeeze greys into a narrow band, equalize, verify the span
	// stretches and the CDF gets closer to uniform.
	k := 256
	im := RandomGrey(64, 64, 9)
	for i, v := range im.Pix {
		if v != 0 {
			im.Pix[i] = 100 + v/2 // band 100..131
		}
	}
	h, err := im.Histogram(k)
	if err != nil {
		t.Fatal(err)
	}
	out := Equalize(im, h)
	h2, err := out.Histogram(k)
	if err != nil {
		t.Fatal(err)
	}
	span := func(h []int64) int {
		loG, hiG := -1, -1
		for g := 1; g < len(h); g++ {
			if h[g] > 0 {
				if loG < 0 {
					loG = g
				}
				hiG = g
			}
		}
		return hiG - loG
	}
	if span(h2) <= span(h) {
		t.Errorf("span did not stretch: before %d, after %d", span(h), span(h2))
	}
	// Background must be preserved exactly.
	for i := range im.Pix {
		if (im.Pix[i] == 0) != (out.Pix[i] == 0) {
			t.Fatal("background not preserved")
		}
	}
	// Pixel count conserved per remapping (total foreground unchanged).
	if out.CountForeground() != im.CountForeground() {
		t.Error("foreground count changed")
	}
}

func TestEqualizeMonotone(t *testing.T) {
	// Equalization must preserve grey-level ordering: if g1 < g2 then
	// lut(g1) <= lut(g2). Check via pixel pairs.
	im := RandomGrey(32, 256, 4)
	h, err := im.Histogram(256)
	if err != nil {
		t.Fatal(err)
	}
	out := Equalize(im, h)
	for i := range im.Pix {
		for j := range im.Pix {
			if im.Pix[i] != 0 && im.Pix[j] != 0 && im.Pix[i] < im.Pix[j] && out.Pix[i] > out.Pix[j] {
				t.Fatalf("ordering violated: %d->%d but %d->%d",
					im.Pix[i], out.Pix[i], im.Pix[j], out.Pix[j])
			}
		}
		if i > 64 {
			break // quadratic check on a prefix is enough
		}
	}
}

func TestEqualizeAllBackground(t *testing.T) {
	im := New(8)
	h, _ := im.Histogram(16)
	out := Equalize(im, h)
	for _, v := range out.Pix {
		if v != 0 {
			t.Fatal("background image should stay background")
		}
	}
}
