package image

import (
	"bufio"
	"io"

	"parimg/internal/errs"
)

// This file is the out-of-core half of the PGM support: a header probe and a
// row-window reader over an io.ReaderAt, so the streaming pipeline of
// internal/stream can label images far beyond the resident MaxSide ceiling
// while holding only one band of rows in memory. Unlike ReadPGM, the
// streaming form accepts rectangular images: a satellite scan is usually a
// long strip, and the band decomposition never relies on squareness.

const (
	// MaxStreamHeaderBytes bounds how deep into the file the header probe
	// will look for the three P5 header fields (comments included). The
	// spec's tokens are tiny; a header that has not terminated within 64
	// KiB is hostile or corrupt.
	MaxStreamHeaderBytes = 64 << 10
	// MaxStreamDim bounds each PGM dimension the streaming reader accepts.
	// Row and column indices must fit int32 (the run tables of the band
	// labeler store columns as int32), and the bound keeps every byte-count
	// computation comfortably inside int64: 2^31 x 2^31 x 2 bytes < 2^63.
	MaxStreamDim = 1<<31 - 1
)

// PGMHeader describes an on-disk binary (P5) PGM for windowed row access:
// the dimensions, the sample range, and the byte offset where pixel data
// begins. It is the handle the streaming pipeline carries instead of a
// resident *Image.
type PGMHeader struct {
	// Width and Height are the image dimensions in pixels. The streaming
	// reader accepts rectangular images.
	Width, Height int
	// MaxVal is the declared maximum grey value, in [1, MaxPGMVal].
	MaxVal int
	// DataOffset is the byte offset of the first pixel sample.
	DataOffset int64
}

// SampleBytes returns the per-sample width of the pixel data: one byte for
// maxval up to 255, two big-endian bytes beyond (the P5 16-bit form).
func (h *PGMHeader) SampleBytes() int { return pgmSampleBytes(h.MaxVal) }

// Pixels returns the total pixel count as an int64 (it may exceed 2^32 —
// that is the point of the streaming path).
func (h *PGMHeader) Pixels() int64 { return int64(h.Width) * int64(h.Height) }

// countingReaderAt adapts an io.ReaderAt into the sequential io.Reader the
// header tokenizer wants, counting consumed bytes so the pixel-data offset
// can be recovered from the tokenizer's buffered lookahead.
type countingReaderAt struct {
	r   io.ReaderAt
	off int64
}

func (c *countingReaderAt) Read(p []byte) (int, error) {
	n, err := c.r.ReadAt(p, c.off)
	c.off += int64(n)
	return n, err
}

// ReadPGMHeader probes the header of an on-disk binary PGM: magic, width,
// height, maxval (both sample widths), '#' comments included. It validates
// the geometry for streaming use — positive rectangular dimensions up to
// MaxStreamDim per axis, no squareness or MaxSide requirement — and returns
// the header with the pixel-data offset resolved, reading at most
// MaxStreamHeaderBytes. It does not verify the pixel data's presence;
// ReadRows reports truncation when a window is actually fetched.
func ReadPGMHeader(r io.ReaderAt) (PGMHeader, error) {
	const op = "image.ReadPGMHeader"
	cr := &countingReaderAt{r: io.NewSectionReader(r, 0, MaxStreamHeaderBytes)}
	br := bufio.NewReader(cr)
	w, h, maxVal, err := readPGMHeader(br, op)
	if err != nil {
		return PGMHeader{}, err
	}
	if w <= 0 || h <= 0 {
		return PGMHeader{}, errs.Geometry(op, w, 0, "PGM is %dx%d; both dimensions must be positive", w, h)
	}
	if w > MaxStreamDim || h > MaxStreamDim {
		return PGMHeader{}, errs.Geometry(op, w, 0,
			"PGM is %dx%d; the streaming reader caps each dimension at %d", w, h, MaxStreamDim)
	}
	return PGMHeader{
		Width:      w,
		Height:     h,
		MaxVal:     maxVal,
		DataOffset: cr.off - int64(br.Buffered()),
	}, nil
}

// ReadRows decodes the band window of rows [y0, y0+rows) into dst, which
// must hold exactly rows*Width elements. scratch is the reusable raw-byte
// buffer (grown as needed and returned), so steady-state banding allocates
// nothing: the caller's memory stays O(band) regardless of image height.
// Samples above the one-byte range arrive as the spec's two big-endian
// bytes. A window that runs past the file reports a typed truncation error.
func (h *PGMHeader) ReadRows(r io.ReaderAt, y0, rows int, dst []uint32, scratch []byte) ([]byte, error) {
	const op = "image.PGMHeader.ReadRows"
	if y0 < 0 || rows <= 0 || y0+rows > h.Height {
		return scratch, errs.Geometry(op, h.Width, 0,
			"row window [%d,%d) outside image height %d", y0, y0+rows, h.Height)
	}
	if len(dst) != rows*h.Width {
		return scratch, errs.Geometry(op, h.Width, 0,
			"destination holds %d elements, want %d", len(dst), rows*h.Width)
	}
	sb := h.SampleBytes()
	need := rows * h.Width * sb
	if cap(scratch) < need {
		scratch = make([]byte, need)
	}
	scratch = scratch[:need]
	off := h.DataOffset + int64(y0)*int64(h.Width)*int64(sb)
	if _, err := r.ReadAt(scratch, off); err != nil {
		return scratch, errs.Bad(op, "reading rows [%d,%d) of %d: %v", y0, y0+rows, h.Height, err)
	}
	if sb == 1 {
		for i, b := range scratch {
			dst[i] = uint32(b)
		}
	} else {
		for i := range dst {
			dst[i] = uint32(scratch[2*i])<<8 | uint32(scratch[2*i+1])
		}
	}
	return scratch, nil
}
