package image

// Byteplane is a byte-packed grey view of an image: one byte per pixel,
// eight pixels per word, rows padded to a whole number of words so every
// row starts word-aligned. Byte j%8 of Words[i*WPR + j/8] holds the grey
// level of pixel (i, j), and bytes at column >= N of a row's last word are
// always zero, so a word-at-a-time scan terminates any open run exactly at
// column N without end-of-row clipping.
//
// The byteplane is the grey analogue of Bitplane and the substrate of the
// grey run extractor: a whole word equal to the current run's value
// splatted into every byte extends the run by eight pixels in one compare,
// and an all-zero word skips eight background pixels, so the coarse scan
// touches uniform imagery (the common case on the DARPA scene) at one
// comparison per eight pixels and drops to a per-byte fine scan only
// inside words that contain a boundary.
//
// A byte cannot represent grey levels above 255. SetRows reports whether
// any packed pixel was truncated; callers with such "wide" strips must
// take a full-width extraction path over Image.Pix instead (the run
// labeler's LabelGreyStrip does exactly that).
type Byteplane struct {
	// N is the image side length.
	N int
	// WPR is the number of words per row: (N + 7) / 8.
	WPR int
	// Words holds the N*WPR row-major packed words.
	Words []uint64
}

// NewByteplane packs im into a fresh byteplane, reporting whether any grey
// level exceeded 255 (in which case the packed bytes are truncated and a
// caller must not use them for value comparisons).
func NewByteplane(im *Image) (*Byteplane, bool) {
	var b Byteplane
	b.Reset(im.N)
	wide := b.SetRows(im, 0, im.N)
	return &b, wide
}

// Reset sizes the byteplane for an n x n image, reusing the backing array
// when large enough. Word contents are unspecified until SetRows covers
// them; only growth allocates.
func (b *Byteplane) Reset(n int) { b.ResetRect(n, n) }

// ResetRect sizes the byteplane for a rectangular rows x cols tile (the
// band windows of the streaming pipeline are rarely square), reusing the
// backing array when large enough. Word contents are unspecified until
// SetRowsPix covers them; only growth allocates.
func (b *Byteplane) ResetRect(rows, cols int) {
	b.N = cols
	b.WPR = (cols + 7) / 8
	words := rows * b.WPR
	if cap(b.Words) < words {
		b.Words = make([]uint64, words)
		return
	}
	b.Words = b.Words[:words]
}

// SetRows packs rows [r0, r1) of im into the byteplane, overwriting every
// word of those rows (no prior clear needed), and reports whether any
// pixel's grey level exceeded 255 — such pixels are truncated to their low
// byte, so on a true return the packed rows must not be used for grey
// value comparisons. Disjoint row ranges may be packed from different
// goroutines concurrently.
func (b *Byteplane) SetRows(im *Image, r0, r1 int) (wide bool) {
	return b.SetRowsPix(im.Pix, r0, r1)
}

// SetRowsPix is SetRows over a raw row-major pixel buffer with the plane's
// own width as its stride — the form the streaming pipeline holds band
// windows in, where no resident *Image exists.
func (b *Byteplane) SetRowsPix(pix []uint32, r0, r1 int) (wide bool) {
	n := b.N
	for i := r0; i < r1; i++ {
		row := pix[i*n : (i+1)*n]
		out := b.Words[i*b.WPR : (i+1)*b.WPR]
		for wi := range out {
			j0 := wi * 8
			j1 := j0 + 8
			if j1 > n {
				j1 = n
			}
			var w uint64
			for j := j0; j < j1; j++ {
				v := row[j]
				if v > 255 {
					wide = true
				}
				w |= uint64(byte(v)) << (uint(j-j0) * 8)
			}
			out[wi] = w
		}
	}
	return wide
}

// Row returns the packed words of row i.
func (b *Byteplane) Row(i int) []uint64 { return b.Words[i*b.WPR : (i+1)*b.WPR] }

// Get returns the packed (possibly truncated) grey level of pixel (i, j).
func (b *Byteplane) Get(i, j int) byte {
	return byte(b.Words[i*b.WPR+j/8] >> (uint(j) % 8 * 8))
}
