package image

import (
	"fmt"
	"math"

	"parimg/internal/errs"
)

// The nine scalable binary test patterns of Figure 1, "the most widely used
// patterns for binary images": horizontal, vertical, and forward- and
// back-slanting diagonal bars, a cross, a filled disc, concentric circles
// with thickness, four squares inset from the four corners, and a
// dual-spiral pattern (a "difficult" image in the sense of Stout).
//
// Each generator accepts any side n >= 8 and produces a deterministic image
// with grey levels {0, 1}.

// PatternID identifies one of the nine catalog images.
type PatternID int

const (
	HorizontalBars PatternID = iota + 1
	VerticalBars
	ForwardDiagonalBars
	BackDiagonalBars
	Cross
	FilledDisc
	ConcentricCircles
	FourSquares
	DualSpiral
)

// AllPatterns lists the nine catalog patterns in Figure 1 order.
func AllPatterns() []PatternID {
	return []PatternID{
		HorizontalBars, VerticalBars, ForwardDiagonalBars, BackDiagonalBars,
		Cross, FilledDisc, ConcentricCircles, FourSquares, DualSpiral,
	}
}

func (id PatternID) String() string {
	switch id {
	case HorizontalBars:
		return "horizontal-bars"
	case VerticalBars:
		return "vertical-bars"
	case ForwardDiagonalBars:
		return "forward-diagonal-bars"
	case BackDiagonalBars:
		return "back-diagonal-bars"
	case Cross:
		return "cross"
	case FilledDisc:
		return "filled-disc"
	case ConcentricCircles:
		return "concentric-circles"
	case FourSquares:
		return "four-squares"
	case DualSpiral:
		return "dual-spiral"
	}
	return fmt.Sprintf("pattern-%d", int(id))
}

// GenerateChecked renders catalog image id at side n, rejecting unknown
// pattern ids and invalid sides with typed errors instead of panicking.
func GenerateChecked(id PatternID, n int) (*Image, error) {
	if id < HorizontalBars || id > DualSpiral {
		return nil, errs.Bad("image.Generate", "unknown pattern %d", int(id))
	}
	if err := checkSide("image.Generate", n); err != nil {
		return nil, err
	}
	return Generate(id, n), nil
}

// Generate renders catalog image id at side n.
func Generate(id PatternID, n int) *Image {
	switch id {
	case HorizontalBars:
		return GenHorizontalBars(n)
	case VerticalBars:
		return GenVerticalBars(n)
	case ForwardDiagonalBars:
		return GenForwardDiagonalBars(n)
	case BackDiagonalBars:
		return GenBackDiagonalBars(n)
	case Cross:
		return GenCross(n)
	case FilledDisc:
		return GenFilledDisc(n)
	case ConcentricCircles:
		return GenConcentricCircles(n)
	case FourSquares:
		return GenFourSquares(n)
	case DualSpiral:
		return GenDualSpiral(n)
	}
	// Invariant panic: trusted callers pass catalog ids; hostile ids go
	// through GenerateChecked.
	panic(fmt.Sprintf("image: unknown pattern %d", int(id)))
}

// PatternThickness is the stripe/ring width of the augmented patterns
// (images 1-4, 7 and 9). Per Section 3, those images are "augmented to the
// needed image size" rather than scaled: the feature size stays fixed (8
// pixels) and larger images simply contain more features. Below n = 64 the
// thickness shrinks so small test images still hold several features.
func PatternThickness(n int) int {
	if n >= 64 {
		return 8
	}
	t := n / 8
	if t < 1 {
		t = 1
	}
	return t
}

func barThickness(n int) int { return PatternThickness(n) }

// GenHorizontalBars draws alternating full-width horizontal stripes
// (Image 1).
func GenHorizontalBars(n int) *Image {
	im := New(n)
	t := barThickness(n)
	for i := 0; i < n; i++ {
		if (i/t)%2 == 0 {
			row := im.Pix[i*n : (i+1)*n]
			for j := range row {
				row[j] = 1
			}
		}
	}
	return im
}

// GenVerticalBars draws alternating full-height vertical stripes (Image 2).
func GenVerticalBars(n int) *Image {
	im := New(n)
	t := barThickness(n)
	for j := 0; j < n; j++ {
		if (j/t)%2 == 0 {
			for i := 0; i < n; i++ {
				im.Pix[i*n+j] = 1
			}
		}
	}
	return im
}

// GenForwardDiagonalBars draws bars slanting like "/" (Image 3).
func GenForwardDiagonalBars(n int) *Image {
	im := New(n)
	t := barThickness(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if ((i+j)/t)%2 == 0 {
				im.Pix[i*n+j] = 1
			}
		}
	}
	return im
}

// GenBackDiagonalBars draws bars slanting like "\" (Image 4).
func GenBackDiagonalBars(n int) *Image {
	im := New(n)
	t := barThickness(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if ((i-j+n)/t)%2 == 0 {
				im.Pix[i*n+j] = 1
			}
		}
	}
	return im
}

// GenCross draws one centered cross: a horizontal and a vertical bar of
// thickness n/8 spanning the full image (Image 5).
func GenCross(n int) *Image {
	im := New(n)
	t := n / 8
	if t < 2 {
		t = 2
	}
	lo := (n - t) / 2
	hi := lo + t
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if (i >= lo && i < hi) || (j >= lo && j < hi) {
				im.Pix[i*n+j] = 1
			}
		}
	}
	return im
}

// GenFilledDisc draws one filled disc of radius 3n/8 centered in the image
// (Image 6).
func GenFilledDisc(n int) *Image {
	im := New(n)
	c := float64(n-1) / 2
	r := 3 * float64(n) / 8
	r2 := r * r
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			di, dj := float64(i)-c, float64(j)-c
			if di*di+dj*dj <= r2 {
				im.Pix[i*n+j] = 1
			}
		}
	}
	return im
}

// GenConcentricCircles draws concentric rings with thickness: annuli of
// width n/16 alternating foreground/background out to radius n/2 (Image 7).
func GenConcentricCircles(n int) *Image {
	im := New(n)
	t := float64(barThickness(n))
	c := float64(n-1) / 2
	rmax := float64(n) / 2
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			di, dj := float64(i)-c, float64(j)-c
			d := math.Sqrt(di*di + dj*dj)
			if d < rmax && int(d/t)%2 == 0 {
				im.Pix[i*n+j] = 1
			}
		}
	}
	return im
}

// GenFourSquares draws four squares of side n/4 inset n/8 from the four
// corners (Image 8).
func GenFourSquares(n int) *Image {
	im := New(n)
	side := n / 4
	inset := n / 8
	fill := func(r0, c0 int) {
		for i := r0; i < r0+side; i++ {
			for j := c0; j < c0+side; j++ {
				im.Pix[i*n+j] = 1
			}
		}
	}
	fill(inset, inset)
	fill(inset, n-inset-side)
	fill(n-inset-side, inset)
	fill(n-inset-side, n-inset-side)
	return im
}

// GenDualSpiral draws two interlocked spiral arms, the "difficult" image of
// the catalog (Image 9): components snake across every tile boundary many
// times, defeating local-window labeling heuristics.
func GenDualSpiral(n int) *Image {
	im := New(n)
	t := float64(barThickness(n))
	c := float64(n-1) / 2
	rmax := float64(n) / 2
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			di, dj := float64(i)-c, float64(j)-c
			d := math.Sqrt(di*di + dj*dj)
			if d >= rmax || d < t {
				continue
			}
			theta := math.Atan2(di, dj) // -pi..pi
			// An Archimedean band index: as theta wraps, the band
			// advances by one, producing two interleaved arms for
			// the parity test below.
			band := int(math.Floor(d/t - theta/math.Pi))
			if band%2 == 0 {
				im.Pix[i*n+j] = 1
			}
		}
	}
	return im
}
