package image

import (
	"bufio"
	"fmt"
	"io"
	"strconv"

	"parimg/internal/errs"
)

// WritePGM writes the image as a binary (P5) portable greymap with the
// given maximum grey value (pixels are clamped). Useful for eyeballing the
// generated test images and the outputs of the example programs.
func (im *Image) WritePGM(w io.Writer, maxVal int) error {
	if maxVal < 1 || maxVal > 255 {
		return errs.Bad("image.WritePGM", "PGM maxval %d outside [1,255]", maxVal)
	}
	if err := im.Check(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P5\n%d %d\n%d\n", im.N, im.N, maxVal); err != nil {
		return err
	}
	for _, v := range im.Pix {
		b := v
		if b > uint32(maxVal) {
			b = uint32(maxVal)
		}
		if err := bw.WriteByte(byte(b)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// pgmToken reads the next header token: whitespace is skipped, and a '#'
// starts a comment running to the end of the line (the standard PGM comment
// syntax). The whitespace byte terminating the token is consumed, which for
// the final header token (maxval) is exactly the single separator byte the
// format requires before the pixel data.
func pgmToken(br *bufio.Reader) (string, error) {
	// Skip whitespace and comment lines.
	for {
		b, err := br.ReadByte()
		if err != nil {
			return "", err
		}
		if b == '#' {
			if _, err := br.ReadString('\n'); err != nil {
				return "", err
			}
			continue
		}
		if !isPGMSpace(b) {
			if err := br.UnreadByte(); err != nil {
				return "", err
			}
			break
		}
	}
	// Accumulate the token up to (and consuming) the next whitespace byte.
	var tok []byte
	for {
		b, err := br.ReadByte()
		if err == io.EOF {
			break
		}
		if err != nil {
			return "", err
		}
		if isPGMSpace(b) {
			break
		}
		tok = append(tok, b)
		if len(tok) > 32 {
			return "", errs.Bad("image.ReadPGM", "header token longer than 32 bytes")
		}
	}
	return string(tok), nil
}

// isPGMSpace reports whether b is PGM header whitespace.
func isPGMSpace(b byte) bool {
	return b == ' ' || b == '\t' || b == '\n' || b == '\r' || b == '\v' || b == '\f'
}

// pgmInt reads one non-negative decimal header field.
func pgmInt(br *bufio.Reader, field string) (int, error) {
	tok, err := pgmToken(br)
	if err != nil {
		return 0, errs.Bad("image.ReadPGM", "reading %s: %v", field, err)
	}
	v, err := strconv.Atoi(tok)
	if err != nil || v < 0 {
		return 0, errs.Bad("image.ReadPGM", "%s %q is not a non-negative integer", field, tok)
	}
	return v, nil
}

// MaxPGMVal is the largest maxval the P5 format can express: samples above
// 255 are stored as two big-endian bytes, and the spec caps maxval at two
// bytes' worth.
const MaxPGMVal = 65535

// ReadPGM reads a binary (P5) portable greymap, including headers with '#'
// comment lines. The image must be square with side in (0, MaxSide]. Both
// sample widths of the format are supported: one byte per pixel for maxval
// in [1,255] and — per the spec — two big-endian bytes per pixel for maxval
// in [256,65535], which is the form the labeling service's own 16-bit label
// PGMs take, so service output round-trips back through this reader. All
// failures — a bad magic, a malformed or truncated header, non-square or
// oversized dimensions, a maxval outside [1,65535], or missing pixel data —
// return typed errors (never a panic), and pixel storage is allocated
// incrementally as rows arrive, so a crafted header cannot force an
// allocation larger than the actual input.
func ReadPGM(r io.Reader) (*Image, error) {
	br := bufio.NewReader(r)
	w, h, maxVal, err := readPGMHeader(br, "image.ReadPGM")
	if err != nil {
		return nil, err
	}
	if w != h {
		return nil, errs.Geometry("image.ReadPGM", w, 0,
			"PGM is %dx%d; only square images are supported", w, h)
	}
	if err := checkSide("image.ReadPGM", w); err != nil {
		return nil, err
	}
	// The pixel area is bounded (w == h <= MaxSide), but grow the pixel
	// array row by row anyway: a short stream then fails after buffering at
	// most one row, instead of committing w*h words up front on the word of
	// a 20-byte header.
	sampleBytes := pgmSampleBytes(maxVal)
	im := &Image{N: w, Pix: make([]uint32, 0, min(w*h, 1<<20))}
	row := make([]byte, w*sampleBytes)
	for y := 0; y < h; y++ {
		if _, err := io.ReadFull(br, row); err != nil {
			return nil, errs.Bad("image.ReadPGM", "reading pixel row %d of %d: %v", y, h, err)
		}
		if sampleBytes == 1 {
			for _, b := range row {
				im.Pix = append(im.Pix, uint32(b))
			}
		} else {
			for j := 0; j < len(row); j += 2 {
				im.Pix = append(im.Pix, uint32(row[j])<<8|uint32(row[j+1]))
			}
		}
	}
	return im, nil
}

// readPGMHeader parses the P5 magic and the three header fields, validating
// the maxval range shared by the resident and streaming readers. The
// dimension checks differ per reader (square+MaxSide here, rectangular
// bounds for the streaming decoder) and stay with the callers.
func readPGMHeader(br *bufio.Reader, op string) (w, h, maxVal int, err error) {
	magic, err := pgmToken(br)
	if err != nil {
		return 0, 0, 0, errs.Bad(op, "reading magic: %v", err)
	}
	if magic != "P5" {
		return 0, 0, 0, errs.Bad(op, "unsupported PGM magic %q", magic)
	}
	if w, err = pgmInt(br, "width"); err != nil {
		return 0, 0, 0, err
	}
	if h, err = pgmInt(br, "height"); err != nil {
		return 0, 0, 0, err
	}
	if maxVal, err = pgmInt(br, "maxval"); err != nil {
		return 0, 0, 0, err
	}
	if maxVal < 1 || maxVal > MaxPGMVal {
		return 0, 0, 0, errs.Bad(op, "PGM maxval %d outside [1,%d]", maxVal, MaxPGMVal)
	}
	return w, h, maxVal, nil
}

// pgmSampleBytes returns the per-sample byte width the P5 format prescribes
// for a maxval: one byte up to 255, two big-endian bytes beyond.
func pgmSampleBytes(maxVal int) int {
	if maxVal > 255 {
		return 2
	}
	return 1
}
