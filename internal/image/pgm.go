package image

import (
	"bufio"
	"fmt"
	"io"
)

// WritePGM writes the image as a binary (P5) portable greymap with the
// given maximum grey value (pixels are clamped). Useful for eyeballing the
// generated test images and the outputs of the example programs.
func (im *Image) WritePGM(w io.Writer, maxVal int) error {
	if maxVal < 1 || maxVal > 255 {
		return fmt.Errorf("image: PGM maxval %d outside [1,255]", maxVal)
	}
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P5\n%d %d\n%d\n", im.N, im.N, maxVal); err != nil {
		return err
	}
	for _, v := range im.Pix {
		b := v
		if b > uint32(maxVal) {
			b = uint32(maxVal)
		}
		if err := bw.WriteByte(byte(b)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadPGM reads a binary (P5) portable greymap. The image must be square.
func ReadPGM(r io.Reader) (*Image, error) {
	br := bufio.NewReader(r)
	var magic string
	if _, err := fmt.Fscan(br, &magic); err != nil {
		return nil, fmt.Errorf("image: reading PGM magic: %w", err)
	}
	if magic != "P5" {
		return nil, fmt.Errorf("image: unsupported PGM magic %q", magic)
	}
	var w, h, maxVal int
	if _, err := fmt.Fscan(br, &w, &h, &maxVal); err != nil {
		return nil, fmt.Errorf("image: reading PGM header: %w", err)
	}
	if w != h {
		return nil, fmt.Errorf("image: PGM is %dx%d; only square images are supported", w, h)
	}
	if maxVal < 1 || maxVal > 255 {
		return nil, fmt.Errorf("image: PGM maxval %d outside [1,255]", maxVal)
	}
	// Exactly one whitespace byte separates the header from pixel data.
	if _, err := br.ReadByte(); err != nil {
		return nil, fmt.Errorf("image: reading PGM separator: %w", err)
	}
	im := New(w)
	buf := make([]byte, w*h)
	if _, err := io.ReadFull(br, buf); err != nil {
		return nil, fmt.Errorf("image: reading PGM pixels: %w", err)
	}
	for i, b := range buf {
		im.Pix[i] = uint32(b)
	}
	return im, nil
}
