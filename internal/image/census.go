package image

import (
	"sort"

	"parimg/internal/errs"
)

// ComponentStat summarizes one connected component of a labeling: the
// per-object measurements (area, bounding box, centroid, grey level) that
// object-recognition pipelines — the DARPA benchmark task the paper cites —
// compute after labeling.
type ComponentStat struct {
	// Label is the component's label.
	Label uint32
	// Size is the number of pixels.
	Size int
	// MinRow, MinCol, MaxRow, MaxCol are the inclusive bounding box.
	MinRow, MinCol, MaxRow, MaxCol int
	// CentroidRow, CentroidCol are the mean pixel coordinates.
	CentroidRow, CentroidCol float64
	// Grey is the component's grey level under grey-scale semantics; for
	// binary labelings of multi-grey images it is the minimum grey level
	// in the component (an order-independent representative, so the
	// sequential and parallel census agree exactly).
	Grey uint32
}

// Census computes per-component statistics of a labeling over its source
// image, sorted by decreasing size (ties by increasing label). The labeling
// and image must have the same side.
func (l *Labels) Census(im *Image) []ComponentStat {
	stats, err := l.CensusChecked(im)
	if err != nil {
		// Invariant panic: trusted callers pair a labeling with its source
		// image; hostile pairs go through CensusChecked.
		panic("image: " + err.Error())
	}
	return stats
}

// CensusChecked is Census with typed errors instead of panics: the image
// and labeling must each be structurally valid (Check) and share one side.
func (l *Labels) CensusChecked(im *Image) ([]ComponentStat, error) {
	if err := l.Check(); err != nil {
		return nil, err
	}
	if err := im.Check(); err != nil {
		return nil, err
	}
	if im.N != l.N {
		return nil, errs.Geometry("image.Census", l.N, 0,
			"labeling side %d does not match image side %d", l.N, im.N)
	}
	return l.census(im), nil
}

// census is the validated body of Census.
func (l *Labels) census(im *Image) []ComponentStat {
	idx := make(map[uint32]int)
	var stats []ComponentStat
	var sumR, sumC []int64
	for i := 0; i < l.N; i++ {
		for j := 0; j < l.N; j++ {
			lab := l.Lab[i*l.N+j]
			if lab == 0 {
				continue
			}
			k, ok := idx[lab]
			if !ok {
				k = len(stats)
				idx[lab] = k
				stats = append(stats, ComponentStat{
					Label:  lab,
					MinRow: i, MinCol: j, MaxRow: i, MaxCol: j,
					Grey: im.Pix[i*l.N+j],
				})
				sumR = append(sumR, 0)
				sumC = append(sumC, 0)
			}
			s := &stats[k]
			s.Size++
			if g := im.Pix[i*l.N+j]; g < s.Grey {
				s.Grey = g
			}
			if i < s.MinRow {
				s.MinRow = i
			}
			if i > s.MaxRow {
				s.MaxRow = i
			}
			if j < s.MinCol {
				s.MinCol = j
			}
			if j > s.MaxCol {
				s.MaxCol = j
			}
			sumR[k] += int64(i)
			sumC[k] += int64(j)
		}
	}
	for k := range stats {
		stats[k].CentroidRow = float64(sumR[k]) / float64(stats[k].Size)
		stats[k].CentroidCol = float64(sumC[k]) / float64(stats[k].Size)
	}
	sort.Slice(stats, func(a, b int) bool {
		if stats[a].Size != stats[b].Size {
			return stats[a].Size > stats[b].Size
		}
		return stats[a].Label < stats[b].Label
	})
	return stats
}

// Equalize builds the histogram-equalized version of an image from its
// k-bucket histogram (Section 4's motivating application). Background
// (grey 0) is preserved; the foreground grey levels are remapped so their
// cumulative distribution is as flat as the bucketing allows, spreading
// out colors "too clumped together for human visual distinction".
func Equalize(im *Image, h []int64) *Image {
	k := len(h)
	var fg int64
	for g := 1; g < k; g++ {
		fg += h[g]
	}
	out := New(im.N)
	if fg == 0 {
		copy(out.Pix, im.Pix)
		return out
	}
	lut := make([]uint32, k)
	var cum int64
	for g := 1; g < k; g++ {
		cum += h[g]
		lut[g] = uint32(1 + (int64(k-2)*cum+fg/2)/fg)
	}
	for i, v := range im.Pix {
		out.Pix[i] = lut[v]
	}
	return out
}
