package image

import (
	"testing"
	"testing/quick"
)

func TestNewAndAccessors(t *testing.T) {
	im := New(4)
	if im.N != 4 || len(im.Pix) != 16 {
		t.Fatalf("New(4): N=%d len=%d", im.N, len(im.Pix))
	}
	im.Set(1, 2, 9)
	if im.At(1, 2) != 9 {
		t.Errorf("At(1,2) = %d", im.At(1, 2))
	}
	if im.Pix[1*4+2] != 9 {
		t.Error("Set did not write row-major")
	}
}

func TestNewPanicsOnBadSide(t *testing.T) {
	for _, n := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d): want panic", n)
				}
			}()
			New(n)
		}()
	}
}

func TestCloneIsDeep(t *testing.T) {
	im := New(2)
	im.Set(0, 0, 5)
	c := im.Clone()
	c.Set(0, 0, 7)
	if im.At(0, 0) != 5 {
		t.Error("Clone shares storage")
	}
}

func TestMaxGreyAndCountForeground(t *testing.T) {
	im := New(3)
	if im.MaxGrey() != 0 || im.CountForeground() != 0 {
		t.Error("empty image stats wrong")
	}
	im.Set(0, 0, 3)
	im.Set(2, 2, 250)
	if im.MaxGrey() != 250 {
		t.Errorf("MaxGrey = %d", im.MaxGrey())
	}
	if im.CountForeground() != 2 {
		t.Errorf("CountForeground = %d", im.CountForeground())
	}
}

func TestHistogramSumsToN2(t *testing.T) {
	for _, gen := range []*Image{
		RandomGrey(32, 16, 1),
		RandomBinary(32, 0.5, 2),
		DARPAScene(64, 256, 3),
	} {
		h, err := gen.Histogram(256)
		if err != nil {
			t.Fatal(err)
		}
		var sum int64
		for _, v := range h {
			sum += v
		}
		if sum != int64(gen.N)*int64(gen.N) {
			t.Errorf("histogram sums to %d, want %d", sum, gen.N*gen.N)
		}
	}
}

func TestHistogramRejectsOverflow(t *testing.T) {
	im := New(2)
	im.Set(0, 0, 4)
	if _, err := im.Histogram(4); err == nil {
		t.Error("want error for grey >= k")
	}
}

func TestPatternAreas(t *testing.T) {
	// For regular patterns the foreground area is analytically known
	// ("for regular patterns it is easy to verify that each H[i]/n^2
	// equals the percentage of area that grey level i covers").
	n := 256
	// Horizontal bars with thickness t alternate fg/bg from row 0:
	// rows with (i/t)%2==0 are foreground.
	tthick := PatternThickness(n)
	wantRows := 0
	for i := 0; i < n; i++ {
		if (i/tthick)%2 == 0 {
			wantRows++
		}
	}
	if got := GenHorizontalBars(n).CountForeground(); got != wantRows*n {
		t.Errorf("horizontal bars area = %d, want %d", got, wantRows*n)
	}
	if got := GenVerticalBars(n).CountForeground(); got != wantRows*n {
		t.Errorf("vertical bars area = %d, want %d", got, wantRows*n)
	}
	// The four squares cover exactly 4*(n/4)^2 pixels.
	if got := GenFourSquares(n).CountForeground(); got != 4*(n/4)*(n/4) {
		t.Errorf("four squares area = %d, want %d", got, 4*(n/4)*(n/4))
	}
	// The filled disc approximates pi*r^2 within 2%.
	r := 3.0 * float64(n) / 8.0
	want := 3.14159265 * r * r
	got := float64(GenFilledDisc(n).CountForeground())
	if got < 0.98*want || got > 1.02*want {
		t.Errorf("disc area = %g, want ~%g", got, want)
	}
}

func TestPatternsAreBinaryAndNonTrivial(t *testing.T) {
	for _, id := range AllPatterns() {
		for _, n := range []int{8, 64, 128} {
			im := Generate(id, n)
			if im.N != n {
				t.Fatalf("%v: side %d", id, im.N)
			}
			fg := 0
			for _, v := range im.Pix {
				if v > 1 {
					t.Fatalf("%v: non-binary pixel %d", id, v)
				}
				if v == 1 {
					fg++
				}
			}
			if fg == 0 || fg == n*n {
				t.Errorf("%v at n=%d: degenerate foreground count %d", id, n, fg)
			}
		}
	}
}

func TestAugmentedVsScaledSemantics(t *testing.T) {
	// Section 3: images 1-4, 7 and 9 are augmented (fixed feature size,
	// so doubling n doubles the number of stripes), while 5, 6 and 8
	// are scaled (component structure independent of n).
	countStripes := func(n int) int {
		im := GenHorizontalBars(n)
		stripes := 0
		prev := uint32(0)
		for i := 0; i < n; i++ {
			v := im.At(i, 0)
			if v == 1 && prev == 0 {
				stripes++
			}
			prev = v
		}
		return stripes
	}
	s256, s512 := countStripes(256), countStripes(512)
	if s512 != 2*s256 {
		t.Errorf("augmented bars: %d stripes at 256, %d at 512; want doubling", s256, s512)
	}
	// Scaled images: same structure at every size.
	for _, n := range []int{64, 128, 256} {
		if got := GenFourSquares(n).CountForeground(); got != 4*(n/4)*(n/4) {
			t.Errorf("four squares at n=%d: %d foreground", n, got)
		}
	}
}

func TestPatternsDeterministic(t *testing.T) {
	for _, id := range AllPatterns() {
		a, b := Generate(id, 64), Generate(id, 64)
		for i := range a.Pix {
			if a.Pix[i] != b.Pix[i] {
				t.Fatalf("%v not deterministic", id)
			}
		}
	}
}

func TestPatternStrings(t *testing.T) {
	seen := map[string]bool{}
	for _, id := range AllPatterns() {
		s := id.String()
		if s == "" || seen[s] {
			t.Errorf("pattern %d: bad or duplicate name %q", int(id), s)
		}
		seen[s] = true
	}
	if PatternID(99).String() != "pattern-99" {
		t.Error("unknown pattern string")
	}
}

func TestRandomBinaryDensity(t *testing.T) {
	im := RandomBinary(128, 0.3, 7)
	got := float64(im.CountForeground()) / float64(128*128)
	if got < 0.27 || got > 0.33 {
		t.Errorf("density %.3f, want ~0.3", got)
	}
	// Deterministic per seed.
	im2 := RandomBinary(128, 0.3, 7)
	for i := range im.Pix {
		if im.Pix[i] != im2.Pix[i] {
			t.Fatal("RandomBinary not deterministic")
		}
	}
	im3 := RandomBinary(128, 0.3, 8)
	same := 0
	for i := range im.Pix {
		if im.Pix[i] == im3.Pix[i] {
			same++
		}
	}
	if same == len(im.Pix) {
		t.Error("different seeds gave identical images")
	}
}

func TestRandomGreyRange(t *testing.T) {
	im := RandomGrey(64, 16, 5)
	if im.MaxGrey() >= 16 {
		t.Errorf("grey level %d out of range", im.MaxGrey())
	}
	h, err := im.Histogram(16)
	if err != nil {
		t.Fatal(err)
	}
	for g, c := range h {
		if c == 0 {
			t.Errorf("grey level %d never drawn", g)
		}
	}
}

func TestDARPASceneProperties(t *testing.T) {
	im := DARPASynthetic()
	if im.N != 512 {
		t.Fatalf("side %d", im.N)
	}
	if im.MaxGrey() > 255 {
		t.Errorf("max grey %d", im.MaxGrey())
	}
	fg := im.CountForeground()
	if fg < 512*512/20 || fg > 512*512*9/10 {
		t.Errorf("foreground fraction %.3f implausible", float64(fg)/(512*512))
	}
	// Many distinct grey levels, as in a 256-grey-level benchmark scene.
	h, _ := im.Histogram(256)
	distinct := 0
	for g := 1; g < 256; g++ {
		if h[g] > 0 {
			distinct++
		}
	}
	if distinct < 50 {
		t.Errorf("only %d distinct foreground greys", distinct)
	}
	// Deterministic.
	im2 := DARPASynthetic()
	for i := range im.Pix {
		if im.Pix[i] != im2.Pix[i] {
			t.Fatal("DARPASynthetic not deterministic")
		}
	}
}

func TestEquivalentTo(t *testing.T) {
	a := NewLabels(2)
	b := NewLabels(2)
	copy(a.Lab, []uint32{1, 1, 0, 2})
	copy(b.Lab, []uint32{7, 7, 0, 9})
	if ok, why := a.EquivalentTo(b); !ok {
		t.Errorf("renamed labels should be equivalent: %s", why)
	}
	// Splitting a component breaks equivalence.
	copy(b.Lab, []uint32{7, 8, 0, 9})
	if ok, _ := a.EquivalentTo(b); ok {
		t.Error("split component reported equivalent")
	}
	// Merging two components breaks equivalence (non-injective map).
	copy(a.Lab, []uint32{1, 0, 0, 2})
	copy(b.Lab, []uint32{7, 0, 0, 7})
	if ok, _ := a.EquivalentTo(b); ok {
		t.Error("merged components reported equivalent")
	}
	// Background mismatch.
	copy(a.Lab, []uint32{0, 1, 1, 1})
	copy(b.Lab, []uint32{5, 5, 5, 5})
	if ok, _ := a.EquivalentTo(b); ok {
		t.Error("background mismatch reported equivalent")
	}
	// Size mismatch.
	c := NewLabels(3)
	if ok, _ := a.EquivalentTo(c); ok {
		t.Error("size mismatch reported equivalent")
	}
}

func TestEquivalentToIsEquivalenceRelation(t *testing.T) {
	f := func(seed uint64) bool {
		im := RandomBinary(16, 0.5, seed)
		l := NewLabels(16)
		// Build a labeling: label = pixel value * (index+1).
		for i, v := range im.Pix {
			if v != 0 {
				l.Lab[i] = uint32(i%5) + 1 // arbitrary partition
			}
		}
		// Reflexive.
		if ok, _ := l.EquivalentTo(l); !ok {
			return false
		}
		// Symmetric with a renamed copy.
		r := NewLabels(16)
		for i, v := range l.Lab {
			if v != 0 {
				r.Lab[i] = v + 100
			}
		}
		ok1, _ := l.EquivalentTo(r)
		ok2, _ := r.EquivalentTo(l)
		return ok1 && ok2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestComponentsAndSizes(t *testing.T) {
	l := NewLabels(2)
	copy(l.Lab, []uint32{3, 3, 0, 8})
	if l.Components() != 2 {
		t.Errorf("Components = %d", l.Components())
	}
	sizes := l.ComponentSizes()
	if sizes[3] != 2 || sizes[8] != 1 {
		t.Errorf("sizes = %v", sizes)
	}
	if _, ok := sizes[0]; ok {
		t.Error("background counted as component")
	}
}

func TestConnectivity(t *testing.T) {
	if !Conn4.Valid() || !Conn8.Valid() || Connectivity(5).Valid() {
		t.Error("Valid() wrong")
	}
	if len(Conn4.Offsets()) != 4 || len(Conn8.Offsets()) != 8 {
		t.Error("offset counts wrong")
	}
	if Conn4.String() != "4-connectivity" || Conn8.String() != "8-connectivity" {
		t.Error("String() wrong")
	}
}
