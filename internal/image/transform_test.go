package image

import (
	"testing"
	"testing/quick"
)

func TestRotate90FourTimesIsIdentity(t *testing.T) {
	f := func(seed uint64) bool {
		im := RandomGrey(16, 8, seed)
		r := im.Rotate90().Rotate90().Rotate90().Rotate90()
		for i := range im.Pix {
			if r.Pix[i] != im.Pix[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestFlipsAreInvolutions(t *testing.T) {
	f := func(seed uint64) bool {
		im := RandomGrey(16, 8, seed)
		for _, tr := range []func(*Image) *Image{
			(*Image).FlipH, (*Image).FlipV, (*Image).Transpose,
		} {
			r := tr(tr(im))
			for i := range im.Pix {
				if r.Pix[i] != im.Pix[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestRotate90MovesCorner(t *testing.T) {
	im := New(4)
	im.Set(0, 0, 7) // top-left -> top-right under clockwise rotation
	r := im.Rotate90()
	if r.At(0, 3) != 7 {
		t.Errorf("corner went to the wrong place: %v", r.Pix)
	}
}

func TestTransformsPreserveHistogram(t *testing.T) {
	im := RandomGrey(32, 16, 5)
	h0, _ := im.Histogram(16)
	for name, tr := range map[string]func(*Image) *Image{
		"rot": (*Image).Rotate90, "fliph": (*Image).FlipH,
		"flipv": (*Image).FlipV, "transpose": (*Image).Transpose,
	} {
		h1, _ := tr(im).Histogram(16)
		for g := range h0 {
			if h0[g] != h1[g] {
				t.Errorf("%s: histogram changed at grey %d", name, g)
			}
		}
	}
}
