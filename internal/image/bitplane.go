package image

import "math/bits"

// Bitplane is a bit-packed binary view of an image: one bit per pixel, 64
// pixels per word, rows padded to a whole number of words so every row
// starts word-aligned. Bit j%64 of Words[i*WPR + j/64] is set exactly when
// pixel (i, j) is foreground (grey level > 0). Bits at column >= N of a
// row's last word are always zero, so word-at-a-time scans never need an
// end-of-row mask.
//
// The bitplane is the substrate of the run-based labeler: foreground runs
// fall out of bits.TrailingZeros64 on whole words instead of a byte-per-
// pixel loop, turning the scan phase from one branch per pixel into a
// couple of bit operations per 64 pixels.
type Bitplane struct {
	// N is the image side length.
	N int
	// WPR is the number of words per row: (N + 63) / 64.
	WPR int
	// Words holds the N*WPR row-major packed words.
	Words []uint64
}

// NewBitplane packs im into a fresh bitplane.
func NewBitplane(im *Image) *Bitplane {
	var b Bitplane
	b.Reset(im.N)
	b.SetRows(im, 0, im.N)
	return &b
}

// Reset sizes the bitplane for an n x n image, reusing the backing array
// when large enough. Word contents are unspecified until SetRows covers
// them; only growth allocates.
func (b *Bitplane) Reset(n int) { b.ResetRect(n, n) }

// ResetRect sizes the bitplane for a rectangular rows x cols tile (the
// band windows of the streaming pipeline are rarely square), reusing the
// backing array when large enough. Word contents are unspecified until
// SetRowsPix covers them; only growth allocates.
func (b *Bitplane) ResetRect(rows, cols int) {
	b.N = cols
	b.WPR = (cols + 63) / 64
	words := rows * b.WPR
	if cap(b.Words) < words {
		b.Words = make([]uint64, words)
		return
	}
	b.Words = b.Words[:words]
}

// SetRows packs rows [r0, r1) of im into the bitplane, overwriting every
// word of those rows (no prior clear needed). Disjoint row ranges may be
// packed from different goroutines concurrently.
func (b *Bitplane) SetRows(im *Image, r0, r1 int) { b.SetRowsPix(im.Pix, r0, r1) }

// SetRowsPix is SetRows over a raw row-major pixel buffer with the plane's
// own width as its stride — the form the streaming pipeline holds band
// windows in, where no resident *Image exists.
func (b *Bitplane) SetRowsPix(pix []uint32, r0, r1 int) {
	n := b.N
	for i := r0; i < r1; i++ {
		row := pix[i*n : (i+1)*n]
		out := b.Words[i*b.WPR : (i+1)*b.WPR]
		for wi := range out {
			j0 := wi * 64
			j1 := j0 + 64
			if j1 > n {
				j1 = n
			}
			var w uint64
			for j := j0; j < j1; j++ {
				if row[j] != 0 {
					w |= 1 << uint(j-j0)
				}
			}
			out[wi] = w
		}
	}
}

// Row returns the packed words of row i.
func (b *Bitplane) Row(i int) []uint64 { return b.Words[i*b.WPR : (i+1)*b.WPR] }

// Get reports whether pixel (i, j) is foreground.
func (b *Bitplane) Get(i, j int) bool {
	return b.Words[i*b.WPR+j/64]>>(uint(j)%64)&1 != 0
}

// OnesCount returns the number of foreground pixels, a word-at-a-time
// equivalent of Image.CountForeground for cross-checking the packing.
func (b *Bitplane) OnesCount() int {
	n := 0
	for _, w := range b.Words {
		n += bits.OnesCount64(w)
	}
	return n
}
