package fault

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestDecideIsDeterministic(t *testing.T) {
	a := New(42, Panic, 0.3)
	b := New(42, Panic, 0.3)
	for rank := 0; rank < 8; rank++ {
		for round := 1; round <= 50; round++ {
			s := Site{Name: "sync", Rank: rank, Round: round}
			if a.Decide(s).Class != b.Decide(s).Class {
				t.Fatalf("same seed, site %v: decisions differ", s)
			}
		}
	}
	if a.Injections() != b.Injections() {
		t.Fatalf("hit counts differ: %d vs %d", a.Injections(), b.Injections())
	}
	if a.Injections() == 0 {
		t.Fatal("prob 0.3 over 400 sites injected nothing")
	}
}

func TestDecideSeedChangesDraws(t *testing.T) {
	a := New(1, Panic, 0.5)
	b := New(2, Panic, 0.5)
	same := 0
	const total = 400
	for round := 1; round <= total; round++ {
		s := Site{Name: "sync", Rank: 0, Round: round}
		if (a.Decide(s).Class != None) == (b.Decide(s).Class != None) {
			same++
		}
	}
	if same == total {
		t.Fatal("different seeds made identical decisions at every site")
	}
}

func TestProbabilityRate(t *testing.T) {
	const prob = 0.25
	in := New(7, Delay, prob)
	const total = 4000
	for round := 1; round <= total; round++ {
		in.Decide(Site{Name: "tally", Rank: round % 16, Round: round})
	}
	got := float64(in.Injections()) / total
	if math.Abs(got-prob) > 0.05 {
		t.Fatalf("injection rate %.3f, want ~%.2f", got, prob)
	}
}

func TestSiteFilters(t *testing.T) {
	in := New(3, Panic, 1).At("barrier").OnRank(2).OnRound(5)
	cases := []struct {
		s    Site
		want Class
	}{
		{Site{"barrier", 2, 5}, Panic},
		{Site{"sync", 2, 5}, None},
		{Site{"barrier", 1, 5}, None},
		{Site{"barrier", 2, 4}, None},
	}
	for _, c := range cases {
		if got := in.Decide(c.s).Class; got != c.want {
			t.Errorf("Decide(%v) = %v, want %v", c.s, got, c.want)
		}
	}
	if n := in.Injections(); n != 1 {
		t.Errorf("Injections() = %d, want 1", n)
	}
}

func TestNilAndZeroInjectorsAreInert(t *testing.T) {
	var nilIn *Injector
	if got := nilIn.Decide(Site{"sync", 0, 1}); got.Class != None {
		t.Errorf("nil injector decided %v", got.Class)
	}
	if nilIn.Injections() != 0 {
		t.Error("nil injector counted injections")
	}
	var zero Injector
	if got := zero.Decide(Site{"sync", 0, 1}); got.Class != None {
		t.Errorf("zero injector decided %v", got.Class)
	}
}

func TestDelayConfiguration(t *testing.T) {
	in := New(1, Delay, 1).WithDelay(42 * time.Millisecond)
	act := in.Decide(Site{"sync", 0, 1})
	if act.Class != Delay || act.Delay != 42*time.Millisecond {
		t.Fatalf("got %+v, want Delay of 42ms", act)
	}
}

func TestInjectedErrorNamesSite(t *testing.T) {
	err := &Injected{Site: Site{Name: "sync", Rank: 3, Round: 7}}
	msg := err.Error()
	for _, want := range []string{"injected panic", "sync", "rank 3", "round 7"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q does not mention %q", msg, want)
		}
	}
}

func TestClassString(t *testing.T) {
	for c, want := range map[Class]string{
		None: "none", Panic: "panic", Delay: "delay", NoShow: "no-show",
		Crash: "crash",
	} {
		if got := c.String(); got != want {
			t.Errorf("Class(%d).String() = %q, want %q", int(c), got, want)
		}
	}
	if got := Class(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown class string %q", got)
	}
}

func TestSiteUniformIsUniformish(t *testing.T) {
	// Coarse sanity: mean of the site hash over many sites is near 0.5.
	var sum float64
	const total = 8192
	for i := 0; i < total; i++ {
		sum += siteUniform(99, Site{Name: "x", Rank: i & 7, Round: i})
	}
	if mean := sum / total; math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("mean site hash %.4f, want ~0.5", mean)
	}
}
