// Package leakcheck asserts that a test leaves no goroutines behind. Every
// abort/cancel path in the runtime promises "typed error, zero leaked
// goroutines"; wiring Check into a test turns that promise into a failure
// with a stack dump when a worker survives its Machine or Engine.
package leakcheck

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// Check snapshots the live goroutines and registers a cleanup that fails t
// if, after a grace period, goroutines created during the test are still
// running. Call it first thing in the test, before creating machines or
// engines, and make sure the test Closes what it creates.
//
// Goroutines are compared by stack identity, not by count, so unrelated
// tests running in parallel do not trip the check; still, avoid t.Parallel
// in tests that use it, since a sibling's transient goroutines can be
// indistinguishable from a leak.
func Check(t testing.TB) {
	t.Helper()
	before := stacks()
	t.Cleanup(func() {
		// Finalizer-driven pool shutdown and context monitors need a
		// moment to drain; poll instead of failing on the first look.
		deadline := time.Now().Add(5 * time.Second)
		var leaked []string
		for {
			leaked = leakedSince(before)
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Errorf("leakcheck: %d goroutine(s) leaked:\n%s", len(leaked), strings.Join(leaked, "\n"))
	})
}

// stacks returns the header line of every live goroutine's stack, keyed by
// goroutine ID line, as a set.
func stacks() map[string]bool {
	set := make(map[string]bool)
	for _, g := range dump() {
		set[head(g)] = true
	}
	return set
}

// leakedSince returns the stacks of goroutines not present in before,
// excluding runtime-internal helpers that the test framework itself spawns.
func leakedSince(before map[string]bool) []string {
	var leaked []string
	for _, g := range dump() {
		if before[head(g)] {
			continue
		}
		if ignorable(g) {
			continue
		}
		leaked = append(leaked, g)
	}
	return leaked
}

// dump splits a full goroutine profile into one string per goroutine.
func dump() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	var gs []string
	for _, g := range strings.Split(string(buf), "\n\n") {
		if strings.TrimSpace(g) != "" {
			gs = append(gs, g)
		}
	}
	return gs
}

// head returns the goroutine's identity for set membership: its ID (never
// reused within a process) with the state stripped — the header's state
// annotation includes a growing wait duration ("[chan receive, 2 minutes]"),
// so keeping it would make a long-parked worker look new at cleanup time.
func head(g string) string {
	line, _, _ := strings.Cut(g, "\n")
	if id, _, ok := strings.Cut(line, " ["); ok {
		return id
	}
	return line
}

// ignorable reports goroutines the check must not blame on the test: the
// testing framework's own machinery and runtime-internal service goroutines.
func ignorable(g string) bool {
	for _, pat := range []string{
		"testing.(*T).Run",   // the test runner itself
		"testing.tRunner",    // sibling tests
		"testing.runFuzzing", // fuzz workers
		"testing.(*F).Fuzz",  // fuzz harness
		"runtime.gc",         // GC helpers
		"runtime.ReadTrace",  // execution tracer
		"created by runtime", // runtime-internal service goroutines
		"signal.signal_recv", // signal handler
		"runtime_mcall",      // scheduler internals
		"GetProfile",         // pprof collectors
		"os/signal.loop",     // signal loop
		"runtime/pprof.readProfile",
	} {
		if strings.Contains(g, pat) {
			return true
		}
	}
	return false
}
