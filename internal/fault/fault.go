// Package fault is a deterministic fault-injection layer for the SPMD
// simulator (internal/bdm) and the host-parallel engine (internal/par).
//
// An Injector decides, at every instrumented checkpoint (a "site"), whether
// to inject one of three fault classes:
//
//   - Panic: the checkpoint panics with an *Injected payload, exercising
//     the runtime's abort/unwind path exactly like a real bug would.
//   - Delay: the checkpoint sleeps, exercising watchdogs and deadlines.
//   - NoShow: the checkpoint never reaches its barrier (it parks until the
//     run is torn down), exercising the barrier stall watchdog.
//
// Decisions are pure functions of (seed, site name, rank, round): rerunning
// the same program with the same injector reproduces the same fault at the
// same place, which is what makes chaos tests debuggable. There is no
// global state and no time- or scheduler-dependent randomness.
package fault

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Class enumerates the injectable fault classes.
type Class int

// The fault classes an Injector can produce. None means "no fault here".
const (
	None Class = iota
	// Panic makes the checkpoint panic with an *Injected payload.
	Panic
	// Delay makes the checkpoint sleep for the injector's delay.
	Delay
	// NoShow makes the checkpoint park instead of proceeding to its
	// barrier, until the run is aborted. It requires a watchdog or a
	// context deadline to tear the run down; the runtime degrades it to a
	// panic when neither can ever fire.
	NoShow
	// Crash makes the checkpoint abandon the run immediately with an
	// injected-crash error, simulating process death at that exact point:
	// no later phase runs, no pending durable state is flushed, and any
	// in-memory progress is lost exactly as a kill -9 would lose it. Only
	// sites that document crash support honor it — today the streaming
	// pipeline's band-commit checkpoint, where it drives the
	// checkpoint/resume chaos tests.
	Crash
)

// String names the class for diagnostics.
func (c Class) String() string {
	switch c {
	case None:
		return "none"
	case Panic:
		return "panic"
	case Delay:
		return "delay"
	case NoShow:
		return "no-show"
	case Crash:
		return "crash"
	default:
		return fmt.Sprintf("fault.Class(%d)", int(c))
	}
}

// Site identifies one checkpoint execution: the instrumented location's
// name (e.g. "sync", "barrier", "strip_label"), the rank of the processor
// or worker executing it, and a per-rank monotone round counter so the
// "third Sync of rank 2" is addressable independently of scheduling.
type Site struct {
	Name string
	Rank int
	// Round is the per-rank sequence number of this checkpoint execution
	// within the current run, starting at 1.
	Round int
}

// String formats the site as name[rank r, round n].
func (s Site) String() string {
	return fmt.Sprintf("%s[rank %d round %d]", s.Name, s.Rank, s.Round)
}

// Action is the injector's decision for one site execution.
type Action struct {
	Class Class
	// Delay is the sleep duration when Class == Delay.
	Delay time.Duration
}

// Injected is the panic payload of an injected panic fault. It implements
// error so the runtime's recover path wraps it like any other panic cause,
// and chaos tests can assert the fault they planted is the one reported.
type Injected struct {
	Site Site
}

// Error describes the injected fault and where it fired.
func (e *Injected) Error() string {
	return "fault: injected panic at " + e.Site.String()
}

// Injector decides deterministically which site executions fault. The zero
// value injects nothing; build real injectors with New and narrow them with
// the chainable At/OnRank/OnRound setters. Configure before the run starts;
// Decide is safe for concurrent use once configured.
type Injector struct {
	seed  uint64
	class Class
	prob  float64
	delay time.Duration
	site  string // restrict to this site name; "" matches every site
	rank  int    // restrict to this rank; -1 matches every rank
	round int    // restrict to this round; -1 matches every round
	hits  atomic.Int64
}

// New returns an injector that fires class with the given probability in
// [0, 1] at every site execution (narrow it with At/OnRank/OnRound). The
// seed makes the probabilistic decisions reproducible. Delay faults default
// to 1ms; override with WithDelay.
func New(seed uint64, class Class, prob float64) *Injector {
	return &Injector{seed: seed, class: class, prob: prob, delay: time.Millisecond, rank: -1, round: -1}
}

// At restricts the injector to sites with the given name and returns it.
func (in *Injector) At(name string) *Injector {
	in.site = name
	return in
}

// OnRank restricts the injector to one rank and returns it.
func (in *Injector) OnRank(r int) *Injector {
	in.rank = r
	return in
}

// OnRound restricts the injector to one per-rank round and returns it.
func (in *Injector) OnRound(r int) *Injector {
	in.round = r
	return in
}

// WithDelay sets the sleep duration for Delay faults and returns the
// injector.
func (in *Injector) WithDelay(d time.Duration) *Injector {
	in.delay = d
	return in
}

// Decide returns the action for one site execution. It is deterministic in
// (seed, s) and safe for concurrent use.
func (in *Injector) Decide(s Site) Action {
	if in == nil || in.class == None || in.prob <= 0 {
		return Action{}
	}
	if in.site != "" && in.site != s.Name {
		return Action{}
	}
	if in.rank >= 0 && in.rank != s.Rank {
		return Action{}
	}
	if in.round >= 0 && in.round != s.Round {
		return Action{}
	}
	if in.prob < 1 && siteUniform(in.seed, s) >= in.prob {
		return Action{}
	}
	in.hits.Add(1)
	return Action{Class: in.class, Delay: in.delay}
}

// Injections returns how many site executions have faulted so far.
func (in *Injector) Injections() int64 {
	if in == nil {
		return 0
	}
	return in.hits.Load()
}

// siteUniform hashes (seed, site) to a uniform float64 in [0, 1).
func siteUniform(seed uint64, s Site) float64 {
	h := seed
	for i := 0; i < len(s.Name); i++ {
		h = mix64(h ^ uint64(s.Name[i]))
	}
	h = mix64(h ^ uint64(s.Rank))
	h = mix64(h ^ uint64(s.Round))
	// 53 high bits give a uniform double in [0, 1).
	return float64(h>>11) / (1 << 53)
}

// mix64 is the splitmix64 finalizer: a cheap, well-distributed bijection on
// uint64, good enough to turn structured site coordinates into independent
// uniform draws.
func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
