package comm

import (
	"math"
	"testing"

	"parimg/internal/bdm"
)

var testCost = bdm.CostParams{
	Name:       "test",
	Tau:        1e-5,
	SecPerWord: 1e-6,
	SecPerOp:   1e-8,
}

func mustMachine(t testing.TB, p int) *bdm.Machine {
	t.Helper()
	m, err := bdm.NewMachine(p, testCost)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// fillMatrix stores A[c][e] = c*10000 + e for column c held by processor c.
func fillMatrix(s *bdm.Spread[uint32], p, q int) {
	for c := 0; c < p; c++ {
		for e := 0; e < q; e++ {
			s.Row(c)[e] = uint32(c*10000 + e)
		}
	}
}

func TestTransposeCorrect(t *testing.T) {
	for _, tc := range []struct{ p, q int }{{2, 2}, {2, 8}, {4, 4}, {4, 16}, {8, 64}, {16, 64}} {
		m := mustMachine(t, tc.p)
		in := bdm.NewSpread[uint32](m, tc.q)
		out := bdm.NewSpread[uint32](m, tc.q)
		fillMatrix(in, tc.p, tc.q)
		if _, err := m.Run(func(pr *bdm.Proc) {
			Transpose(pr, out, in, tc.q)
		}); err != nil {
			t.Fatalf("p=%d q=%d: %v", tc.p, tc.q, err)
		}
		b := tc.q / tc.p
		for i := 0; i < tc.p; i++ {
			for r := 0; r < tc.p; r++ {
				for e := 0; e < b; e++ {
					got := out.Row(i)[r*b+e]
					want := uint32(r*10000 + i*b + e)
					if got != want {
						t.Fatalf("p=%d q=%d: out[%d][%d*b+%d] = %d, want %d",
							tc.p, tc.q, i, r, e, got, want)
					}
				}
			}
		}
	}
}

func TestTransposeTwiceIsIdentity(t *testing.T) {
	p, q := 8, 64
	m := mustMachine(t, p)
	in := bdm.NewSpread[uint32](m, q)
	mid := bdm.NewSpread[uint32](m, q)
	out := bdm.NewSpread[uint32](m, q)
	fillMatrix(in, p, q)
	if _, err := m.Run(func(pr *bdm.Proc) {
		Transpose(pr, mid, in, q)
		Transpose(pr, out, mid, q)
	}); err != nil {
		t.Fatal(err)
	}
	// Transposing a q x p matrix twice returns the original only when
	// the layout is square in blocks; with the paper's block layout the
	// double transpose restores the original column distribution.
	for c := 0; c < p; c++ {
		for e := 0; e < q; e++ {
			if out.Row(c)[e] != in.Row(c)[e] {
				t.Fatalf("double transpose not identity at [%d][%d]: %d vs %d",
					c, e, out.Row(c)[e], in.Row(c)[e])
			}
		}
	}
}

func TestTransposeCost(t *testing.T) {
	// Eq. (1): Tcomm = tau + (q - q/p) word-times per processor.
	p, q := 8, 512
	m := mustMachine(t, p)
	in := bdm.NewSpread[uint32](m, q)
	out := bdm.NewSpread[uint32](m, q)
	rep, err := m.Run(func(pr *bdm.Proc) {
		Transpose(pr, out, in, q)
	})
	if err != nil {
		t.Fatal(err)
	}
	want := testCost.Tau + float64(q-q/p)*testCost.SecPerWord
	if math.Abs(rep.CommTime-want) > 1e-12 {
		t.Errorf("CommTime = %g, want %g", rep.CommTime, want)
	}
}

func TestTransposePanicsOnBadSize(t *testing.T) {
	m := mustMachine(t, 4)
	in := bdm.NewSpread[uint32](m, 6)
	out := bdm.NewSpread[uint32](m, 6)
	_, err := m.Run(func(pr *bdm.Proc) {
		Transpose(pr, out, in, 6) // 4 does not divide 6
	})
	if err == nil {
		t.Fatal("want abort error for q not divisible by p")
	}
}

func TestBroadcastCorrect(t *testing.T) {
	for _, tc := range []struct{ p, q, root int }{
		{2, 4, 0}, {4, 16, 0}, {8, 64, 0}, {8, 64, 5}, {16, 16, 3},
	} {
		m := mustMachine(t, tc.p)
		buf := bdm.NewSpread[uint32](m, tc.q)
		scratch := bdm.NewSpread[uint32](m, tc.q)
		for e := 0; e < tc.q; e++ {
			buf.Row(tc.root)[e] = uint32(7000 + e)
		}
		if _, err := m.Run(func(pr *bdm.Proc) {
			Broadcast(pr, buf, scratch, tc.q, tc.root)
		}); err != nil {
			t.Fatalf("p=%d q=%d root=%d: %v", tc.p, tc.q, tc.root, err)
		}
		for r := 0; r < tc.p; r++ {
			for e := 0; e < tc.q; e++ {
				if buf.Row(r)[e] != uint32(7000+e) {
					t.Fatalf("p=%d q=%d root=%d: proc %d elem %d = %d",
						tc.p, tc.q, tc.root, r, e, buf.Row(r)[e])
				}
			}
		}
	}
}

func TestBroadcastRoughlyTwiceTranspose(t *testing.T) {
	// Section 2.4: "the Split-C broadcasting algorithm takes roughly
	// twice the time of the Split-C matrix transpose algorithm."
	p, q := 8, 4096
	m := mustMachine(t, p)
	in := bdm.NewSpread[uint32](m, q)
	out := bdm.NewSpread[uint32](m, q)
	repT, err := m.Run(func(pr *bdm.Proc) { Transpose(pr, out, in, q) })
	if err != nil {
		t.Fatal(err)
	}
	m.Reset()
	scratch := bdm.NewSpread[uint32](m, q)
	repB, err := m.Run(func(pr *bdm.Proc) { Broadcast(pr, out, scratch, q, 0) })
	if err != nil {
		t.Fatal(err)
	}
	ratio := repB.CommTime / repT.CommTime
	if ratio < 1.5 || ratio > 2.5 {
		t.Errorf("broadcast/transpose comm ratio = %.2f, want ~2", ratio)
	}
}

func TestBroadcastNaiveCorrectAndCongested(t *testing.T) {
	p, q := 8, 4096
	m := mustMachine(t, p)
	buf := bdm.NewSpread[uint32](m, q)
	for e := 0; e < q; e++ {
		buf.Row(0)[e] = uint32(e + 5)
	}
	repN, err := m.Run(func(pr *bdm.Proc) { BroadcastNaive(pr, buf, q, 0) })
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < p; r++ {
		for e := 0; e < q; e++ {
			if buf.Row(r)[e] != uint32(e+5) {
				t.Fatalf("proc %d elem %d = %d", r, e, buf.Row(r)[e])
			}
		}
	}
	// The root's fan-out congestion makes the naive broadcast slower
	// than Algorithm 2 for large payloads.
	m2 := mustMachine(t, p)
	buf2 := bdm.NewSpread[uint32](m2, q)
	scratch := bdm.NewSpread[uint32](m2, q)
	repA, err := m2.Run(func(pr *bdm.Proc) { Broadcast(pr, buf2, scratch, q, 0) })
	if err != nil {
		t.Fatal(err)
	}
	if repN.SimTime < 2*repA.SimTime {
		t.Errorf("naive broadcast %.4g not clearly slower than Algorithm 2 %.4g",
			repN.SimTime, repA.SimTime)
	}
}

func TestTruncatedTranspose(t *testing.T) {
	p, k := 8, 4
	m := mustMachine(t, p)
	in := bdm.NewSpread[uint32](m, k)
	out := bdm.NewSpread[uint32](m, p)
	// in.Row(j)[i] = element (i, j) of the k x p matrix.
	for j := 0; j < p; j++ {
		for i := 0; i < k; i++ {
			in.Row(j)[i] = uint32(i*100 + j)
		}
	}
	if _, err := m.Run(func(pr *bdm.Proc) {
		TruncatedTranspose(pr, out, in, k)
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < k; i++ {
		for j := 0; j < p; j++ {
			if out.Row(i)[j] != uint32(i*100+j) {
				t.Fatalf("row %d elem %d = %d, want %d", i, j, out.Row(i)[j], i*100+j)
			}
		}
	}
}

func TestCollectToZero(t *testing.T) {
	p, mlen := 8, 5
	m := mustMachine(t, p)
	in := bdm.NewSpread[uint32](m, mlen)
	out := bdm.NewSpread[uint32](m, p*mlen)
	for r := 0; r < p; r++ {
		for e := 0; e < mlen; e++ {
			in.Row(r)[e] = uint32(r*1000 + e)
		}
	}
	if _, err := m.Run(func(pr *bdm.Proc) {
		CollectToZero(pr, out, in, mlen)
	}); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < p; r++ {
		for e := 0; e < mlen; e++ {
			if out.Row(0)[r*mlen+e] != uint32(r*1000+e) {
				t.Fatalf("collected[%d][%d] = %d", r, e, out.Row(0)[r*mlen+e])
			}
		}
	}
}

func TestAllGather(t *testing.T) {
	p, mlen := 4, 3
	m := mustMachine(t, p)
	in := bdm.NewSpread[uint32](m, mlen)
	out := bdm.NewSpread[uint32](m, p*mlen)
	for r := 0; r < p; r++ {
		for e := 0; e < mlen; e++ {
			in.Row(r)[e] = uint32(r*10 + e)
		}
	}
	if _, err := m.Run(func(pr *bdm.Proc) {
		AllGather(pr, out, in, mlen)
	}); err != nil {
		t.Fatal(err)
	}
	for dst := 0; dst < p; dst++ {
		for r := 0; r < p; r++ {
			for e := 0; e < mlen; e++ {
				if out.Row(dst)[r*mlen+e] != uint32(r*10+e) {
					t.Fatalf("proc %d gathered[%d][%d] = %d", dst, r, e, out.Row(dst)[r*mlen+e])
				}
			}
		}
	}
}

func TestReduceSumToZero(t *testing.T) {
	p, mlen := 8, 4
	m := mustMachine(t, p)
	in := bdm.NewSpread[uint32](m, mlen)
	scratch := bdm.NewSpread[uint32](m, p*mlen)
	out := bdm.NewSpread[uint32](m, mlen)
	for r := 0; r < p; r++ {
		for e := 0; e < mlen; e++ {
			in.Row(r)[e] = uint32(r + e)
		}
	}
	if _, err := m.Run(func(pr *bdm.Proc) {
		ReduceSumToZero(pr, out, scratch, in, mlen)
	}); err != nil {
		t.Fatal(err)
	}
	for e := 0; e < mlen; e++ {
		want := uint32(0)
		for r := 0; r < p; r++ {
			want += uint32(r + e)
		}
		if out.Row(0)[e] != want {
			t.Fatalf("sum[%d] = %d, want %d", e, out.Row(0)[e], want)
		}
	}
}

func TestBandwidthApproachesCeiling(t *testing.T) {
	// Figures 6-9: for large blocks the attained per-processor
	// bandwidth approaches 4 bytes / SecPerWord.
	p := 8
	for _, q := range []int{64, 4096, 262144} {
		m := mustMachine(t, p)
		in := bdm.NewSpread[uint32](m, q)
		out := bdm.NewSpread[uint32](m, q)
		rep, err := m.Run(func(pr *bdm.Proc) { Transpose(pr, out, in, q) })
		if err != nil {
			t.Fatal(err)
		}
		bytes := float64(q-q/p) * 4
		bw := bytes / rep.CommTime / 1e6
		ceiling := testCost.BandwidthMBps()
		if bw > ceiling {
			t.Errorf("q=%d: bandwidth %.2f exceeds ceiling %.2f", q, bw, ceiling)
		}
		if q == 262144 && bw < 0.95*ceiling {
			t.Errorf("q=%d: bandwidth %.2f too far below ceiling %.2f", q, bw, ceiling)
		}
	}
}
