package comm

import (
	"fmt"

	"parimg/internal/bdm"
)

// Scatter distributes p consecutive blocks of m elements from root's block
// of in to every processor's block of out (processor i receives block i).
// Each non-root processor prefetches its block directly from root, so the
// root's outgoing traffic is (p-1)*m words, settled as passive congestion;
// receivers pay tau + m.
func Scatter(p *bdm.Proc, out, in *bdm.Spread[uint32], m, root int) {
	np := p.P()
	if m < 0 || np*m > in.PerProc() || m > out.PerProc() {
		// Invariant panic: sizes are fixed by the calling algorithm.
		panic(fmt.Sprintf("comm: Scatter m=%d out of range", m))
	}
	defer label(p, "scatter")()
	i := p.Rank()
	bdm.Get(p, out.Local(p)[:m], in, root, i*m)
	p.Work(m)
	p.Barrier()
}

// Gather collects m elements from every processor's block of in into
// root's block of out (p*m elements ordered by rank), the inverse of
// Scatter, using the circular schedule so the result generalizes
// CollectToZero to any root.
func Gather(p *bdm.Proc, out, in *bdm.Spread[uint32], m, root int) {
	np := p.P()
	if m < 0 || m > in.PerProc() || np*m > out.PerProc() {
		// Invariant panic: sizes are fixed by the calling algorithm.
		panic(fmt.Sprintf("comm: Gather m=%d out of range", m))
	}
	defer label(p, "gather")()
	if p.Rank() == root {
		local := out.Local(p)
		for loop := 0; loop < np; loop++ {
			p.Checkpoint()
			r := (root + loop) % np
			bdm.Get(p, local[r*m:(r+1)*m], in, r, 0)
		}
		p.Work(np * m)
	}
	p.Barrier()
}

// AllToAll performs the general personalized all-to-all exchange: block j
// of processor i's block of in (m elements at offset j*m) ends up as block
// i of processor j's block of out. The matrix transpose of Algorithm 1 is
// exactly this pattern with m = q/p; AllToAll exposes it for arbitrary
// block payloads. The circular schedule keeps every processor busy with a
// distinct partner each round, costing tau + (p-1)*m word-times.
func AllToAll(p *bdm.Proc, out, in *bdm.Spread[uint32], m int) {
	np := p.P()
	if m < 0 || np*m > in.PerProc() || np*m > out.PerProc() {
		// Invariant panic: sizes are fixed by the calling algorithm.
		panic(fmt.Sprintf("comm: AllToAll m=%d out of range", m))
	}
	defer label(p, "alltoall")()
	i := p.Rank()
	local := out.Local(p)
	for loop := 0; loop < np; loop++ {
		p.Checkpoint()
		r := (i + loop) % np
		bdm.Get(p, local[r*m:(r+1)*m], in, r, i*m)
	}
	p.Work(np * m)
	p.Barrier()
}

// PrefixSums leaves, in every processor's block of out, the element-wise
// inclusive prefix sums over processor ranks of the first m elements of
// in: out on processor i equals the sum of in over processors 0..i. It is
// built from an allgather followed by a local partial sum, costing
// tau + (p-1)*m word-times and O(p*m) local work — the BDM-friendly way to
// implement scan for small m (the paper's algorithms use scans of
// histogram-bar and change-array sizes).
func PrefixSums(p *bdm.Proc, out, scratch, in *bdm.Spread[uint32], m int) {
	np := p.P()
	if m < 0 || m > in.PerProc() || np*m > scratch.PerProc() || m > out.PerProc() {
		// Invariant panic: sizes are fixed by the calling algorithm.
		panic(fmt.Sprintf("comm: PrefixSums m=%d out of range", m))
	}
	defer label(p, "prefix_sums")()
	AllGather(p, scratch, in, m)
	local := out.Local(p)
	gathered := scratch.Local(p)
	i := p.Rank()
	for j := 0; j < m; j++ {
		var s uint32
		for r := 0; r <= i; r++ {
			s += gathered[r*m+j]
		}
		local[j] = s
	}
	p.Work((i + 1) * m)
	p.Barrier()
}
