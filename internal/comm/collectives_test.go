package comm

import (
	"math"
	"testing"

	"parimg/internal/bdm"
)

func TestScatter(t *testing.T) {
	for _, root := range []int{0, 3} {
		p, m := 4, 3
		mach := mustMachine(t, p)
		in := bdm.NewSpread[uint32](mach, p*m)
		out := bdm.NewSpread[uint32](mach, m)
		for b := 0; b < p; b++ {
			for e := 0; e < m; e++ {
				in.Row(root)[b*m+e] = uint32(b*100 + e)
			}
		}
		if _, err := mach.Run(func(pr *bdm.Proc) {
			Scatter(pr, out, in, m, root)
		}); err != nil {
			t.Fatal(err)
		}
		for r := 0; r < p; r++ {
			for e := 0; e < m; e++ {
				if out.Row(r)[e] != uint32(r*100+e) {
					t.Fatalf("root=%d: proc %d elem %d = %d", root, r, e, out.Row(r)[e])
				}
			}
		}
	}
}

func TestGatherAnyRoot(t *testing.T) {
	p, m := 8, 2
	for _, root := range []int{0, 5} {
		mach := mustMachine(t, p)
		in := bdm.NewSpread[uint32](mach, m)
		out := bdm.NewSpread[uint32](mach, p*m)
		for r := 0; r < p; r++ {
			for e := 0; e < m; e++ {
				in.Row(r)[e] = uint32(r*10 + e)
			}
		}
		if _, err := mach.Run(func(pr *bdm.Proc) {
			Gather(pr, out, in, m, root)
		}); err != nil {
			t.Fatal(err)
		}
		for r := 0; r < p; r++ {
			for e := 0; e < m; e++ {
				if out.Row(root)[r*m+e] != uint32(r*10+e) {
					t.Fatalf("root=%d: gathered[%d][%d] = %d", root, r, e, out.Row(root)[r*m+e])
				}
			}
		}
	}
}

func TestScatterGatherInverse(t *testing.T) {
	p, m := 4, 5
	mach := mustMachine(t, p)
	src := bdm.NewSpread[uint32](mach, p*m)
	mid := bdm.NewSpread[uint32](mach, m)
	dst := bdm.NewSpread[uint32](mach, p*m)
	for e := 0; e < p*m; e++ {
		src.Row(2)[e] = uint32(e * 7)
	}
	if _, err := mach.Run(func(pr *bdm.Proc) {
		Scatter(pr, mid, src, m, 2)
		Gather(pr, dst, mid, m, 2)
	}); err != nil {
		t.Fatal(err)
	}
	for e := 0; e < p*m; e++ {
		if dst.Row(2)[e] != src.Row(2)[e] {
			t.Fatalf("scatter+gather not identity at %d", e)
		}
	}
}

func TestAllToAll(t *testing.T) {
	p, m := 4, 2
	mach := mustMachine(t, p)
	in := bdm.NewSpread[uint32](mach, p*m)
	out := bdm.NewSpread[uint32](mach, p*m)
	// in.Row(i)[j*m+e] = i*1000 + j*10 + e.
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			for e := 0; e < m; e++ {
				in.Row(i)[j*m+e] = uint32(i*1000 + j*10 + e)
			}
		}
	}
	if _, err := mach.Run(func(pr *bdm.Proc) {
		AllToAll(pr, out, in, m)
	}); err != nil {
		t.Fatal(err)
	}
	// out.Row(j)[i*m+e] must be in.Row(i)[j*m+e].
	for j := 0; j < p; j++ {
		for i := 0; i < p; i++ {
			for e := 0; e < m; e++ {
				want := uint32(i*1000 + j*10 + e)
				if out.Row(j)[i*m+e] != want {
					t.Fatalf("out[%d][%d*m+%d] = %d, want %d", j, i, e, out.Row(j)[i*m+e], want)
				}
			}
		}
	}
}

func TestAllToAllMatchesTranspose(t *testing.T) {
	// With q = p*m, Transpose of a q x p matrix is AllToAll with blocks
	// of m = q/p.
	p, q := 4, 16
	m := q / p
	mach := mustMachine(t, p)
	in := bdm.NewSpread[uint32](mach, q)
	outT := bdm.NewSpread[uint32](mach, q)
	outA := bdm.NewSpread[uint32](mach, q)
	fillMatrix(in, p, q)
	if _, err := mach.Run(func(pr *bdm.Proc) {
		Transpose(pr, outT, in, q)
		AllToAll(pr, outA, in, m)
	}); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < p; r++ {
		for e := 0; e < q; e++ {
			if outT.Row(r)[e] != outA.Row(r)[e] {
				t.Fatalf("transpose and all-to-all differ at [%d][%d]: %d vs %d",
					r, e, outT.Row(r)[e], outA.Row(r)[e])
			}
		}
	}
}

func TestPrefixSums(t *testing.T) {
	p, m := 8, 3
	mach := mustMachine(t, p)
	in := bdm.NewSpread[uint32](mach, m)
	scratch := bdm.NewSpread[uint32](mach, p*m)
	out := bdm.NewSpread[uint32](mach, m)
	for r := 0; r < p; r++ {
		for e := 0; e < m; e++ {
			in.Row(r)[e] = uint32(r + e + 1)
		}
	}
	if _, err := mach.Run(func(pr *bdm.Proc) {
		PrefixSums(pr, out, scratch, in, m)
	}); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < p; r++ {
		for e := 0; e < m; e++ {
			var want uint32
			for k := 0; k <= r; k++ {
				want += uint32(k + e + 1)
			}
			if out.Row(r)[e] != want {
				t.Fatalf("prefix[%d][%d] = %d, want %d", r, e, out.Row(r)[e], want)
			}
		}
	}
}

func TestScatterCost(t *testing.T) {
	// Each receiver pays tau + m; the root's outgoing (p-1)*m words are
	// settled as passive excess at the barrier.
	p, m := 4, 100
	mach := mustMachine(t, p)
	in := bdm.NewSpread[uint32](mach, p*m)
	out := bdm.NewSpread[uint32](mach, m)
	rep, err := mach.Run(func(pr *bdm.Proc) {
		Scatter(pr, out, in, m, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	recv := testCost.Tau + float64(m)*testCost.SecPerWord
	if math.Abs(rep.Procs[1].Comm-recv) > 1e-12 {
		t.Errorf("receiver comm = %g, want %g", rep.Procs[1].Comm, recv)
	}
	// Root: passive (p-1)*m minus its own active 0 (local access free).
	rootExtra := float64((p-1)*m) * testCost.SecPerWord
	if math.Abs(rep.Procs[0].Comm-rootExtra) > 1e-12 {
		t.Errorf("root comm = %g, want %g (congestion)", rep.Procs[0].Comm, rootExtra)
	}
}

func TestCollectivePanicsOnBadSizes(t *testing.T) {
	mach := mustMachine(t, 4)
	small := bdm.NewSpread[uint32](mach, 2)
	if _, err := mach.Run(func(pr *bdm.Proc) {
		Scatter(pr, small, small, 2, 0) // needs p*m = 8 in root's block
	}); err == nil {
		t.Error("Scatter with undersized source should abort")
	}
	mach.Reset()
	if _, err := mach.Run(func(pr *bdm.Proc) {
		AllToAll(pr, small, small, 2)
	}); err == nil {
		t.Error("AllToAll with undersized spreads should abort")
	}
}
