// Package comm implements the paper's BDM data-movement primitives on the
// bdm runtime: the circular-schedule matrix transpose (Algorithm 1), the
// two-transpose broadcast (Algorithm 2), the truncated transpose used by
// histogramming when k < p, and the circular collection onto processor 0.
//
// All functions are SPMD: every processor of the machine must call them
// collectively with identical size arguments. They leave the machine at a
// barrier, so callers may immediately read the results.
//
// Size arguments are internal invariants established by the algorithm
// packages (cc, hist) before entering the SPMD region, so violations panic
// rather than return errors; bdm.Machine.Run recovers any such panic into
// an error wrapping bdm.ErrAborted.
package comm

import (
	"fmt"

	"parimg/internal/bdm"
)

// label scopes the machine observer's per-primitive communication
// accounting (tau count + words moved, see bdm.Machine.SetObserver) to one
// primitive: every Sync until the returned restore function runs is
// attributed to name. Nested primitives attribute to the innermost label.
// Usage: defer label(p, "transpose")().
func label(p *bdm.Proc, name string) func() {
	prev := p.SetCommLabel(name)
	return func() { p.SetCommLabel(prev) }
}

// Transpose performs the q x p matrix transposition of Algorithm 1.
//
// The matrix A is stored with column i (q elements) in processor i's block
// of in. On return, processor i's block of out holds rows i*q/p .. (i+1)*q/p
// of A laid out as p consecutive sub-blocks of q/p elements: sub-block r of
// processor i is A[r][i*b .. (i+1)*b) with b = q/p.
//
// q must be a positive multiple of p. Following Eq. (1), the communication
// cost per processor is tau + (q - q/p) word-times; the local cost is O(q).
func Transpose(p *bdm.Proc, out, in *bdm.Spread[uint32], q int) {
	np := p.P()
	if q <= 0 || q%np != 0 {
		// Invariant panic: sizes are fixed by the calling algorithm.
		panic(fmt.Sprintf("comm: Transpose requires p | q, got q=%d p=%d", q, np))
	}
	defer label(p, "transpose")()
	b := q / np
	i := p.Rank()
	local := out.Local(p)
	// Circular schedule: during iteration loop, processor i prefetches
	// its block from processor (i+loop) mod p, so no processor is hit by
	// more than one request per round. Each round is a cancellation and
	// fault-injection checkpoint (attributed to the comm label).
	for loop := 0; loop < np; loop++ {
		p.Checkpoint()
		r := (i + loop) % np
		bdm.Get(p, local[r*b:(r+1)*b], in, r, i*b)
	}
	p.Work(q) // local placement of q elements
	p.Barrier()
}

// Broadcast implements Algorithm 2: processor root holds q elements at the
// start of its block of buf; on return every processor's block of buf holds
// a copy of all q elements, in order. scratch must be a distinct spread with
// at least q elements per processor; its contents are clobbered.
//
// q must be a positive multiple of p. Per Eq. (2) the cost is two
// transpositions: Tcomm <= 2(tau + q - q/p).
func Broadcast(p *bdm.Proc, buf, scratch *bdm.Spread[uint32], q, root int) {
	np := p.P()
	if q <= 0 || q%np != 0 {
		// Invariant panic: sizes are fixed by the calling algorithm.
		panic(fmt.Sprintf("comm: Broadcast requires p | q, got q=%d p=%d", q, np))
	}
	if root < 0 || root >= np {
		// Invariant panic: callers pass a valid rank.
		panic(fmt.Sprintf("comm: Broadcast root %d out of range", root))
	}
	defer label(p, "broadcast")()
	b := q / np
	i := p.Rank()

	// First transposition, specialized: only column `root` of the
	// conceptual q x p matrix holds valid data, so each processor
	// prefetches just its q/p sub-block from root.
	bdm.Get(p, scratch.Local(p)[:b], buf, root, i*b)
	p.Work(b)
	p.Barrier()

	// Second transposition, specialized to the first valid slot of every
	// remote block (the paper's Step 3): processor i gathers sub-block r
	// from processor r's first slot, reconstructing the full q elements.
	local := buf.Local(p)
	for loop := 0; loop < np; loop++ {
		p.Checkpoint()
		r := (i + loop) % np
		bdm.Get(p, local[r*b:(r+1)*b], scratch, r, 0)
	}
	p.Work(q)
	p.Barrier()
}

// BroadcastNaive broadcasts q elements from root's block of buf by having
// every other processor pull the whole payload directly from root. Each
// receiver pays tau + q, but the root serves (p-1)*q words and becomes the
// bottleneck — the congestion the two-transposition Broadcast (Algorithm 2)
// exists to avoid. Kept for the ablation benchmarks.
func BroadcastNaive(p *bdm.Proc, buf *bdm.Spread[uint32], q, root int) {
	np := p.P()
	if q <= 0 || q > buf.PerProc() {
		// Invariant panic: sizes are fixed by the calling algorithm.
		panic(fmt.Sprintf("comm: BroadcastNaive q=%d out of range", q))
	}
	if root < 0 || root >= np {
		// Invariant panic: callers pass a valid rank.
		panic(fmt.Sprintf("comm: BroadcastNaive root %d out of range", root))
	}
	defer label(p, "broadcast_naive")()
	if p.Rank() != root {
		bdm.Get(p, buf.Local(p)[:q], buf, root, 0)
		p.Work(q)
	}
	p.Barrier()
}

// TruncatedTranspose moves row i of a k x p matrix (k <= p, row elements
// spread one per processor) onto processor i, for i < k. Processor j's
// block of in holds the j-th element of every row, i.e. in.Row(j)[i] is
// element (i, j). On return processor i < k holds row i (p elements) in its
// block of out; processors i >= k receive nothing.
//
// This is the "truncated transpose to put each row into a processor" used
// by histogramming when the number of grey levels is smaller than p.
func TruncatedTranspose(p *bdm.Proc, out, in *bdm.Spread[uint32], k int) {
	np := p.P()
	if k <= 0 || k > np {
		// Invariant panic: hist only truncates when k < p.
		panic(fmt.Sprintf("comm: TruncatedTranspose requires 0 < k <= p, got k=%d p=%d", k, np))
	}
	defer label(p, "truncated_transpose")()
	i := p.Rank()
	if i < k {
		local := out.Local(p)
		for loop := 0; loop < np; loop++ {
			p.Checkpoint()
			r := (i + loop) % np
			local[r] = bdm.GetScalar(p, in, r, i)
		}
		p.Work(np)
	}
	p.Barrier()
}

// CollectToZero gathers m elements from every processor's block of in onto
// processor 0's block of out (p*m elements, ordered by rank) using the
// circular data movement of Section 2. Its cost at processor 0 is
// tau + (p-1)*m word-times, matching the histogram collection bound
// Tcomm <= tau + k - max(k/p, 1).
func CollectToZero(p *bdm.Proc, out, in *bdm.Spread[uint32], m int) {
	np := p.P()
	if m < 0 || m > in.PerProc() {
		// Invariant panic: sizes are fixed by the calling algorithm.
		panic(fmt.Sprintf("comm: CollectToZero m=%d out of range", m))
	}
	defer label(p, "collect")()
	if p.Rank() == 0 {
		local := out.Local(p)
		for loop := 0; loop < np; loop++ {
			p.Checkpoint()
			r := loop % np
			bdm.Get(p, local[r*m:(r+1)*m], in, r, 0)
		}
		p.Work(np * m)
	}
	p.Barrier()
}

// AllGather makes every processor hold the concatenation (ordered by rank)
// of the first m elements of every processor's block of in, placed in its
// block of out (p*m elements). It uses a circular schedule, costing
// tau + (p-1)*m word-times per processor.
func AllGather(p *bdm.Proc, out, in *bdm.Spread[uint32], m int) {
	defer label(p, "allgather")()
	np := p.P()
	i := p.Rank()
	local := out.Local(p)
	for loop := 0; loop < np; loop++ {
		p.Checkpoint()
		r := (i + loop) % np
		bdm.Get(p, local[r*m:(r+1)*m], in, r, 0)
	}
	p.Work(np * m)
	p.Barrier()
}

// ReduceSumToZero leaves, in processor 0's block of out, the element-wise
// sum over all processors of the first m elements of in. It is implemented
// as a direct circular collection followed by a local sum at processor 0,
// which is the structure the histogramming algorithm uses for its final
// combine when k >= p.
func ReduceSumToZero(p *bdm.Proc, out, scratch, in *bdm.Spread[uint32], m int) {
	defer label(p, "reduce")()
	np := p.P()
	CollectToZero(p, scratch, in, m)
	if p.Rank() == 0 {
		local := out.Local(p)
		gathered := scratch.Local(p)
		for j := 0; j < m; j++ {
			var s uint32
			for r := 0; r < np; r++ {
				s += gathered[r*m+j]
			}
			local[j] = s
		}
		p.Work(np * m)
	}
	p.Barrier()
}
