// Package recognize implements a small shape classifier over labeled
// components — the step the DARPA Image Understanding benchmark's
// "recognition of a 2.5-D mobile" task performs after connected component
// labeling (the paper's Section 1 motivation). Components are classified
// from region features that are cheap to derive from a labeling: bounding
// box, fill ratio, aspect ratio, and the occupancy of the box center.
package recognize

import (
	"fmt"

	"parimg/internal/image"
)

// Class is a coarse shape class.
type Class int

const (
	// Blob is the fallback class.
	Blob Class = iota
	// Bar is an elongated filled shape (the mobile's links and strings).
	Bar
	// Rectangle is a filled box.
	Rectangle
	// Disc is a filled circle.
	Disc
	// Ring is a hollow circular shape.
	Ring
	// Speck is a component too small to classify (under 9 pixels).
	Speck
)

func (c Class) String() string {
	switch c {
	case Bar:
		return "bar"
	case Rectangle:
		return "rectangle"
	case Disc:
		return "disc"
	case Ring:
		return "ring"
	case Speck:
		return "speck"
	}
	return "blob"
}

// Object is a classified component.
type Object struct {
	image.ComponentStat
	Class Class
	// Fill is Size divided by the bounding-box area.
	Fill float64
	// Aspect is the bounding box's long side over its short side.
	Aspect float64
}

func (o Object) String() string {
	return fmt.Sprintf("%v label=%d size=%d fill=%.2f aspect=%.1f",
		o.Class, o.Label, o.Size, o.Fill, o.Aspect)
}

// Classify classifies every component of a labeling over its source image,
// in census order (decreasing size).
func Classify(l *image.Labels, im *image.Image) []Object {
	stats := l.Census(im)
	out := make([]Object, len(stats))
	for i, s := range stats {
		out[i] = classifyOne(l, s)
	}
	return out
}

func classifyOne(l *image.Labels, s image.ComponentStat) Object {
	h := s.MaxRow - s.MinRow + 1
	w := s.MaxCol - s.MinCol + 1
	fill := float64(s.Size) / float64(h*w)
	aspect := float64(h) / float64(w)
	if aspect < 1 {
		aspect = 1 / aspect
	}
	o := Object{ComponentStat: s, Fill: fill, Aspect: aspect}

	// Center-of-box occupancy distinguishes hollow shapes: take a
	// small probe around the box center and count pixels of this
	// component.
	ci := (s.MinRow + s.MaxRow) / 2
	cj := (s.MinCol + s.MaxCol) / 2
	centerHits := 0
	probe := 0
	for di := -1; di <= 1; di++ {
		for dj := -1; dj <= 1; dj++ {
			i, j := ci+di, cj+dj
			if i < 0 || i >= l.N || j < 0 || j >= l.N {
				continue
			}
			probe++
			if l.At(i, j) == s.Label {
				centerHits++
			}
		}
	}
	centerFilled := probe > 0 && centerHits*2 > probe

	switch {
	case s.Size < 9:
		o.Class = Speck
	case aspect >= 4 && fill >= 0.6:
		o.Class = Bar
	case fill >= 0.92 && aspect < 4:
		o.Class = Rectangle
	case fill >= 0.65 && aspect < 1.4 && centerFilled:
		o.Class = Disc
	case fill < 0.65 && aspect < 1.4 && !centerFilled:
		o.Class = Ring
	default:
		o.Class = Blob
	}
	return o
}

// Summary counts objects per class.
func Summary(objs []Object) map[Class]int {
	m := make(map[Class]int)
	for _, o := range objs {
		m[o.Class]++
	}
	return m
}
