package recognize

import (
	"testing"

	"parimg/internal/image"
	"parimg/internal/seq"
)

func classifyImage(t *testing.T, im *image.Image) []Object {
	t.Helper()
	l := seq.LabelBFS(im, image.Conn8, seq.Binary)
	return Classify(l, im)
}

func TestClassifyDisc(t *testing.T) {
	im := image.GenFilledDisc(64)
	objs := classifyImage(t, im)
	if len(objs) != 1 {
		t.Fatalf("disc image: %d objects", len(objs))
	}
	if objs[0].Class != Disc {
		t.Errorf("filled disc classified as %v (%s)", objs[0].Class, objs[0])
	}
}

func TestClassifyFourSquares(t *testing.T) {
	im := image.GenFourSquares(64)
	objs := classifyImage(t, im)
	if len(objs) != 4 {
		t.Fatalf("four squares: %d objects", len(objs))
	}
	for _, o := range objs {
		if o.Class != Rectangle {
			t.Errorf("square classified as %v (%s)", o.Class, o)
		}
	}
}

func TestClassifyBars(t *testing.T) {
	im := image.GenHorizontalBars(64)
	objs := classifyImage(t, im)
	if len(objs) == 0 {
		t.Fatal("no bars found")
	}
	for _, o := range objs {
		if o.Class != Bar {
			t.Errorf("stripe classified as %v (%s)", o.Class, o)
		}
	}
}

func TestClassifyRings(t *testing.T) {
	im := image.GenConcentricCircles(128)
	objs := classifyImage(t, im)
	rings := 0
	for _, o := range objs {
		switch o.Class {
		case Ring:
			rings++
		case Disc:
			// The innermost band is a filled disc; fine.
		default:
			t.Errorf("concentric band classified as %v (%s)", o.Class, o)
		}
	}
	if rings < 2 {
		t.Errorf("found only %d rings", rings)
	}
}

func TestClassifySingleDot(t *testing.T) {
	im := image.New(16)
	im.Set(8, 8, 1)
	objs := classifyImage(t, im)
	if len(objs) != 1 || objs[0].Class != Speck {
		t.Errorf("dot: %v", objs)
	}
}

func TestClassifyGreyScene(t *testing.T) {
	// The synthetic mobile scene under grey components: the classifier
	// must find bars (links/strings), rectangles and discs.
	im := image.DARPASynthetic()
	l := seq.LabelBFS(im, image.Conn8, seq.Grey)
	objs := Classify(l, im)
	sum := Summary(objs)
	if sum[Bar] == 0 {
		t.Error("no bars found in the mobile scene")
	}
	if sum[Rectangle] == 0 {
		t.Error("no rectangles found in the mobile scene")
	}
	if sum[Disc] == 0 {
		t.Error("no discs found in the mobile scene")
	}
	total := 0
	for _, c := range sum {
		total += c
	}
	if total != len(objs) {
		t.Errorf("summary covers %d of %d objects", total, len(objs))
	}
}

func TestClassStrings(t *testing.T) {
	want := map[Class]string{
		Blob: "blob", Bar: "bar", Rectangle: "rectangle",
		Disc: "disc", Ring: "ring", Speck: "speck",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(c), c.String(), s)
		}
	}
}

func TestObjectString(t *testing.T) {
	o := Object{Class: Disc, Fill: 0.78, Aspect: 1.0}
	o.Label = 5
	o.Size = 100
	if s := o.String(); s == "" {
		t.Error("empty object string")
	}
}
