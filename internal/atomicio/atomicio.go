// Package atomicio writes files crash-atomically: content goes to a
// temporary sibling first and appears at the target path only through a
// final rename, after an fsync has pushed the bytes to stable storage. A
// reader (or a process resuming after a crash) therefore sees either the
// previous complete file or the new complete file — never a torn prefix —
// which is the property the streaming pipeline's checkpoint records and
// the imgcc -out / -census-json artifacts rely on: a run killed at any
// instant leaves no partial file at the target path.
//
// The temporary sibling has the deterministic name path+".partial", so an
// orphan left behind by a kill -9 is silently overwritten by the next
// attempt instead of accumulating. Two concurrent writers to the same
// target already race on the target itself; the shared temp name adds no
// new hazard.
package atomicio

import (
	"io"
	"os"
	"path/filepath"
)

// PartialSuffix is appended to the target path to form the temporary
// sibling's name while a write is in flight.
const PartialSuffix = ".partial"

// File is an os.File-backed writer whose contents appear at the target
// path only on Commit. Until then the bytes live in the ".partial"
// sibling; Abort (or a process crash) leaves the target untouched.
type File struct {
	target string
	tmp    string
	f      *os.File
	done   bool
}

// Create opens the temporary sibling of path for writing, truncating any
// orphan a previous crashed attempt left behind.
func Create(path string) (*File, error) {
	tmp := path + PartialSuffix
	f, err := os.Create(tmp)
	if err != nil {
		return nil, err
	}
	return &File{target: path, tmp: tmp, f: f}, nil
}

// Write appends to the in-flight temporary file.
func (a *File) Write(p []byte) (int, error) { return a.f.Write(p) }

// Commit makes the written content durable and visible at the target path:
// fsync, close, rename, and a best-effort fsync of the containing
// directory so the rename itself survives a crash. After Commit the File
// is spent; Abort becomes a no-op.
func (a *File) Commit() error {
	if a.done {
		return nil
	}
	a.done = true
	if err := a.f.Sync(); err != nil {
		a.f.Close()
		os.Remove(a.tmp)
		return err
	}
	if err := a.f.Close(); err != nil {
		os.Remove(a.tmp)
		return err
	}
	if err := os.Rename(a.tmp, a.target); err != nil {
		os.Remove(a.tmp)
		return err
	}
	syncDir(filepath.Dir(a.target))
	return nil
}

// Abort discards the in-flight write, removing the temporary sibling and
// leaving the target path exactly as it was. Safe to call repeatedly and
// after Commit (where it is a no-op), so callers can defer it.
func (a *File) Abort() {
	if a.done {
		return
	}
	a.done = true
	a.f.Close()
	os.Remove(a.tmp)
}

// WriteFile writes the output of write to path atomically: the callback
// streams into the temporary sibling, and the target is renamed into
// place only if the callback and every durability step succeed. On any
// failure the target is left exactly as it was.
func WriteFile(path string, write func(io.Writer) error) error {
	f, err := Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Abort()
		return err
	}
	return f.Commit()
}

// syncDir fsyncs a directory so a just-committed rename survives a
// crash. Best-effort: some platforms and filesystems reject directory
// syncs, and the rename is already atomic for concurrent readers.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}
