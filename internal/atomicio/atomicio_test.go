package atomicio

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestCommitPublishesContent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.bin")
	f, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello ")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("world")); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("target visible before Commit: %v", err)
	}
	if err := f.Commit(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello world" {
		t.Fatalf("content %q, want %q", got, "hello world")
	}
	if _, err := os.Stat(path + PartialSuffix); !os.IsNotExist(err) {
		t.Fatalf("partial sibling survived Commit: %v", err)
	}
	// Abort after Commit must not delete the published file.
	f.Abort()
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("Abort after Commit removed the target: %v", err)
	}
}

func TestAbortLeavesNoTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.bin")
	f, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("partial data")); err != nil {
		t.Fatal(err)
	}
	f.Abort()
	f.Abort() // idempotent
	for _, p := range []string{path, path + PartialSuffix} {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Fatalf("%s survived Abort: %v", p, err)
		}
	}
}

func TestAbortPreservesPreviousFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.bin")
	if err := os.WriteFile(path, []byte("previous"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("replacement that never lands"))
	f.Abort()
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "previous" {
		t.Fatalf("aborted write clobbered the previous file: %q", got)
	}
}

func TestWriteFileSuccessAndFailure(t *testing.T) {
	path := filepath.Join(t.TempDir(), "doc.json")
	if err := WriteFile(path, func(w io.Writer) error {
		_, err := fmt.Fprint(w, "v1")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	if err := WriteFile(path, func(w io.Writer) error {
		fmt.Fprint(w, "v2 torn prefix")
		return boom
	}); !errors.Is(err, boom) {
		t.Fatalf("WriteFile error = %v, want boom", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "v1" {
		t.Fatalf("failed WriteFile replaced the previous file: %q", got)
	}
	if _, err := os.Stat(path + PartialSuffix); !os.IsNotExist(err) {
		t.Fatalf("partial sibling survived a failed WriteFile: %v", err)
	}
}

func TestOrphanPartialIsOverwritten(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.bin")
	// A crashed writer left a large orphan behind.
	if err := os.WriteFile(path+PartialSuffix, []byte("orphaned torn write from a kill -9"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, func(w io.Writer) error {
		_, err := fmt.Fprint(w, "fresh")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "fresh" {
		t.Fatalf("content %q, want fresh", got)
	}
}

func TestCreateInMissingDirFails(t *testing.T) {
	if _, err := Create(filepath.Join(t.TempDir(), "no/such/dir/out")); err == nil {
		t.Fatal("Create in a missing directory did not fail")
	}
}
