// Package benchfmt holds the on-disk schema of the benchjson report
// (BENCH_runs.json) and the cell-by-cell comparison used by benchdiff, so
// the writer and the differ cannot drift apart.
package benchfmt

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Row is one measured configuration cell of the matrix.
type Row struct {
	Pattern      string  `json:"pattern"`
	N            int     `json:"n"`
	Backend      string  `json:"backend"`         // "seq" or "par"
	Algo         string  `json:"algo"`            // "bfs" or "runs"
	Mode         string  `json:"mode"`            // "binary" or "grey"
	Merge        string  `json:"merge,omitempty"` // "tree" or "sv" (par backend)
	Workers      int     `json:"workers"`
	NS           int64   `json:"ns"`
	MPixPerS     float64 `json:"mpix_per_s"`
	Components   int     `json:"components"`
	LabelsAgreed bool    `json:"labels_identical"`
}

// Key identifies a cell independent of its measurements. Reports written
// before the grey sweep carry no mode field, and reports written before
// the merge axis carry no merge field; an empty mode reads as "binary" and
// an empty merge as "tree" (the only behaviors that existed then), so old
// baselines still match their cells and a widened matrix only ever adds
// informational new cells, never spurious regressions.
func (r Row) Key() string {
	mode := r.Mode
	if mode == "" {
		mode = "binary"
	}
	merge := r.Merge
	if merge == "" {
		merge = "tree"
	}
	return fmt.Sprintf("%s/%d/%s/%s/%s/%s/w%d", r.Pattern, r.N, mode, r.Backend, r.Algo, merge, r.Workers)
}

// Report is the whole benchjson document.
type Report struct {
	Benchmark                    string  `json:"benchmark"`
	GoMaxProcs                   int     `json:"gomaxprocs"`
	NumCPU                       int     `json:"numcpu"`
	Conn                         string  `json:"connectivity"`
	Modes                        string  `json:"modes"`
	MinTimeMS                    int64   `json:"mintime_ms"`
	Rows                         []Row   `json:"rows"`
	GeomeanRunsOverBFS1W1024     float64 `json:"geomean_runs_over_bfs_1worker_1024"`
	GeomeanGreyRunsOverBFS1W1024 float64 `json:"geomean_grey_runs_over_bfs_1worker_1024"`
	// Tree-vs-sv summaries: the geometric-mean end-to-end speedup of the
	// Shiloach-Vishkin merge over the union-find tree for the runs engine
	// at the multi-worker count on the 1024^2 catalog patterns, per mode.
	// Zero in reports written before the merge axis existed.
	GeomeanSVOverTreeMW1024     float64 `json:"geomean_sv_over_tree_multiworker_1024,omitempty"`
	GeomeanGreySVOverTreeMW1024 float64 `json:"geomean_grey_sv_over_tree_multiworker_1024,omitempty"`
}

// ReadFile loads a benchjson report.
func ReadFile(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("benchfmt: %s: %w", path, err)
	}
	return &rep, nil
}

// Delta is the comparison of one cell present in both reports.
type Delta struct {
	Key     string
	BaseNS  int64
	NewNS   int64
	Ratio   float64 // NewNS / BaseNS; > 1 means slower
	Regress bool    // Ratio exceeded 1 + tolerance
}

// Diff compares every cell of base against cur with a per-cell relative
// tolerance (0.25 allows a 25% slowdown before a cell counts as a
// regression). It returns the matched deltas sorted worst-first, the keys
// only present in base (coverage lost), and the keys only present in cur
// (new cells — informational). Timing on shared hardware is noisy, so
// tolerances below ~0.2 will flag phantom regressions.
func Diff(base, cur *Report, tolerance float64) (deltas []Delta, onlyBase, onlyNew []string) {
	baseRows := make(map[string]Row, len(base.Rows))
	for _, r := range base.Rows {
		baseRows[r.Key()] = r
	}
	seen := make(map[string]bool, len(cur.Rows))
	for _, r := range cur.Rows {
		k := r.Key()
		seen[k] = true
		b, ok := baseRows[k]
		if !ok {
			onlyNew = append(onlyNew, k)
			continue
		}
		d := Delta{Key: k, BaseNS: b.NS, NewNS: r.NS}
		if b.NS > 0 {
			d.Ratio = float64(r.NS) / float64(b.NS)
			d.Regress = d.Ratio > 1+tolerance
		}
		deltas = append(deltas, d)
	}
	for k := range baseRows {
		if !seen[k] {
			onlyBase = append(onlyBase, k)
		}
	}
	sort.Slice(deltas, func(i, j int) bool {
		if deltas[i].Ratio != deltas[j].Ratio {
			return deltas[i].Ratio > deltas[j].Ratio
		}
		return deltas[i].Key < deltas[j].Key
	})
	sort.Strings(onlyBase)
	sort.Strings(onlyNew)
	return deltas, onlyBase, onlyNew
}

// Disagreements returns the keys of cells whose labeling did not match the
// sequential reference — a correctness failure regardless of timing.
func Disagreements(rep *Report) []string {
	var bad []string
	for _, r := range rep.Rows {
		if !r.LabelsAgreed {
			bad = append(bad, r.Key())
		}
	}
	sort.Strings(bad)
	return bad
}
