package benchfmt

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func row(pattern, mode, backend, algo string, w int, ns int64, agreed bool) Row {
	return Row{Pattern: pattern, N: 64, Backend: backend, Algo: algo,
		Mode: mode, Workers: w, NS: ns, LabelsAgreed: agreed}
}

func TestKeyDefaultsEmptyModeToBinary(t *testing.T) {
	a := row("cross", "", "par", "runs", 1, 100, true)
	b := row("cross", "binary", "par", "runs", 1, 200, true)
	if a.Key() != b.Key() {
		t.Fatalf("pre-grey key %q != %q", a.Key(), b.Key())
	}
	c := row("cross", "grey", "par", "runs", 1, 200, true)
	if a.Key() == c.Key() {
		t.Fatalf("grey key collides with binary: %q", c.Key())
	}
}

// mergeRow is row with an explicit merge column.
func mergeRow(pattern, mode, backend, algo, merge string, w int, ns int64) Row {
	r := row(pattern, mode, backend, algo, w, ns, true)
	r.Merge = merge
	return r
}

// TestKeyDefaultsEmptyMergeToTree pins the merge-axis back-compat rule: a
// pre-merge row keys identically to an explicit "tree" row, and "sv" gets
// its own cell.
func TestKeyDefaultsEmptyMergeToTree(t *testing.T) {
	old := row("cross", "binary", "par", "runs", 4, 100, true)
	tree := mergeRow("cross", "binary", "par", "runs", "tree", 4, 200)
	if old.Key() != tree.Key() {
		t.Fatalf("pre-merge key %q != tree key %q", old.Key(), tree.Key())
	}
	sv := mergeRow("cross", "binary", "par", "runs", "sv", 4, 200)
	if sv.Key() == tree.Key() {
		t.Fatalf("sv key collides with tree: %q", sv.Key())
	}
}

// TestDiffToleratesWidenedMergeMatrix is the baseline-compat contract of the
// merge axis end to end: diffing a new report that carries both merge
// backends against an old pre-merge baseline must match the tree cells
// against the old cells (so regressions still surface) and report the sv
// cells as informational new coverage — never as lost baseline cells.
func TestDiffToleratesWidenedMergeMatrix(t *testing.T) {
	base := &Report{Rows: []Row{
		row("cross", "binary", "par", "runs", 4, 1000, true), // pre-merge: no merge field
		row("spiral", "binary", "par", "runs", 4, 1000, true),
	}}
	cur := &Report{Rows: []Row{
		mergeRow("cross", "binary", "par", "runs", "tree", 4, 1050),
		mergeRow("cross", "binary", "par", "runs", "sv", 4, 700),
		mergeRow("spiral", "binary", "par", "runs", "tree", 4, 3000), // real regression
		mergeRow("spiral", "binary", "par", "runs", "sv", 4, 800),
	}}
	deltas, onlyBase, onlyNew := Diff(base, cur, 0.25)
	if len(onlyBase) != 0 {
		t.Fatalf("widened matrix lost baseline cells: %v", onlyBase)
	}
	if len(onlyNew) != 2 {
		t.Fatalf("onlyNew = %v, want the two sv cells", onlyNew)
	}
	for _, k := range onlyNew {
		if want := "sv"; !containsSegment(k, want) {
			t.Fatalf("unexpected new cell %q", k)
		}
	}
	if len(deltas) != 2 {
		t.Fatalf("deltas = %+v, want the two tree cells", deltas)
	}
	if !deltas[0].Regress || deltas[0].Ratio != 3.0 {
		t.Fatalf("worst delta = %+v, want the 3.0x tree regression", deltas[0])
	}
	if deltas[1].Regress {
		t.Fatalf("within-tolerance tree cell flagged: %+v", deltas[1])
	}
}

// containsSegment reports whether key contains seg as one "/"-separated
// component (plain substring would confuse "sv" with e.g. a pattern name).
func containsSegment(key, seg string) bool {
	start := 0
	for i := 0; i <= len(key); i++ {
		if i == len(key) || key[i] == '/' {
			if key[start:i] == seg {
				return true
			}
			start = i + 1
		}
	}
	return false
}

func TestDiffFlagsRegressionsWithinTolerance(t *testing.T) {
	base := &Report{Rows: []Row{
		row("cross", "binary", "par", "runs", 1, 1000, true),
		row("cross", "grey", "par", "runs", 1, 1000, true),
		row("gone", "binary", "seq", "bfs", 1, 500, true),
	}}
	cur := &Report{Rows: []Row{
		row("cross", "binary", "par", "runs", 1, 1200, true), // +20%: inside 25%
		row("cross", "grey", "par", "runs", 1, 2000, true),   // +100%: regression
		row("fresh", "grey", "par", "bfs", 4, 300, true),
	}}
	deltas, onlyBase, onlyNew := Diff(base, cur, 0.25)
	if len(deltas) != 2 {
		t.Fatalf("deltas = %+v, want 2", deltas)
	}
	// Worst first.
	if !deltas[0].Regress || deltas[0].Ratio != 2.0 {
		t.Fatalf("worst delta = %+v, want 2.0x regression", deltas[0])
	}
	if deltas[1].Regress {
		t.Fatalf("within-tolerance cell flagged: %+v", deltas[1])
	}
	if len(onlyBase) != 1 || onlyBase[0] != base.Rows[2].Key() {
		t.Fatalf("onlyBase = %v", onlyBase)
	}
	if len(onlyNew) != 1 || onlyNew[0] != cur.Rows[2].Key() {
		t.Fatalf("onlyNew = %v", onlyNew)
	}
}

func TestDisagreements(t *testing.T) {
	rep := &Report{Rows: []Row{
		row("a", "binary", "par", "runs", 1, 10, true),
		row("b", "grey", "par", "runs", 2, 10, false),
	}}
	bad := Disagreements(rep)
	if len(bad) != 1 || bad[0] != rep.Rows[1].Key() {
		t.Fatalf("disagreements = %v", bad)
	}
}

func TestReadFileRoundTripsAndReadsLegacy(t *testing.T) {
	dir := t.TempDir()
	rep := &Report{Benchmark: "m", Rows: []Row{row("x", "grey", "par", "runs", 2, 42, true)}}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "bench.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != 1 || got.Rows[0].NS != 42 || got.Rows[0].Mode != "grey" {
		t.Fatalf("round trip: %+v", got)
	}

	// A pre-grey document (no mode fields) still loads, and its rows key
	// as binary.
	legacy := []byte(`{"benchmark":"old","rows":[{"pattern":"cross","n":64,` +
		`"backend":"par","algo":"runs","workers":1,"ns":7,"labels_identical":true}]}`)
	lp := filepath.Join(dir, "legacy.json")
	if err := os.WriteFile(lp, legacy, 0o644); err != nil {
		t.Fatal(err)
	}
	old, err := ReadFile(lp)
	if err != nil {
		t.Fatal(err)
	}
	if old.Rows[0].Key() != row("cross", "binary", "par", "runs", 1, 0, true).Key() {
		t.Fatalf("legacy key = %q", old.Rows[0].Key())
	}

	if _, err := ReadFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file: want error")
	}
	if err := os.WriteFile(path, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil {
		t.Fatal("truncated JSON: want error")
	}
}
