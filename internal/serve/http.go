package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"time"

	"parimg/internal/errs"
	"parimg/internal/image"
	"parimg/internal/obs"
	"parimg/internal/par"
	"parimg/internal/seq"
)

// StatusClientClosedRequest is the non-standard 499 status (popularized by
// nginx) the handler returns when the client's own cancellation stopped the
// run: no 4xx/5xx standard code says "you hung up".
const StatusClientClosedRequest = 499

// LabelResponse is the JSON body of a successful POST /label with
// out=json (the default): the component count, the image side, and —
// when requested — the per-component census and the raw label plane
// (row-major, seq.LabelBFS-identical seed labels, 0 = background).
type LabelResponse struct {
	Components int                   `json:"components"`
	N          int                   `json:"n"`
	Census     []image.ComponentStat `json:"census,omitempty"`
	Labels     []uint32              `json:"labels,omitempty"`
}

// errorResponse is the JSON body of every failed request.
type errorResponse struct {
	Error string `json:"error"`
}

// Handler returns the server's HTTP interface:
//
//	POST /label    body: PGM (P5 or P2). Query: mode=binary|grey,
//	               conn=4|8, algo=auto|bfs|runs, merge=auto|tree|sv,
//	               census=1, labels=1, out=json|pgm, deadline_ms=N.
//	GET  /metrics  JSON array of parimg-metrics/v1 documents: the
//	               aggregate first, then recent per-request documents.
//	GET  /healthz  16×16 label round-trip through the scheduler path.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /label", s.handleLabel)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// statusOf maps the typed error taxonomy onto HTTP status codes. Input
// errors are the client's fault (400); runtime errors split by cause:
// saturation asks the client to back off (429), an expired deadline is a
// timeout (504), the client's own cancellation is 499, a closed server is
// 503, and an engine abort (a worker panic) is the only 500.
func statusOf(err error) int {
	switch {
	case errors.Is(err, ErrSaturated):
		return http.StatusTooManyRequests
	case errors.Is(err, errs.ErrDeadline):
		return http.StatusGatewayTimeout
	case errors.Is(err, errs.ErrCanceled):
		return StatusClientClosedRequest
	case errors.Is(err, errs.ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, errs.ErrBadInput):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

// writeError emits the JSON error body with the taxonomy-mapped status.
// Backpressure responses carry Retry-After so well-behaved clients pace
// themselves instead of hammering a saturated queue.
func writeError(w http.ResponseWriter, err error) {
	code := statusOf(err)
	if code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(errorResponse{Error: err.Error()})
}

// handleLabel decodes the posted PGM, runs it through Do, and encodes the
// result. The request's TotalNS spans handler entry to run completion —
// response encoding is excluded on purpose, so a slow reader cannot dilute
// the phase-coverage property of the metrics document.
func (s *Server) handleLabel(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	rec := obs.NewRecorder()
	q := r.URL.Query()

	job := Job{Rec: rec, Start: start, Name: "upload"}
	switch q.Get("mode") {
	case "", "binary":
		job.Mode = seq.Binary
	case "grey":
		job.Mode = seq.Grey
	default:
		writeError(w, errs.Bad("serve.label", "unknown mode %q (want binary or grey)", q.Get("mode")))
		return
	}
	switch q.Get("conn") {
	case "", "8":
		job.Conn = image.Conn8
	case "4":
		job.Conn = image.Conn4
	default:
		writeError(w, errs.Bad("serve.label", "unknown connectivity %q (want 4 or 8)", q.Get("conn")))
		return
	}
	algo, err := par.ParseAlgo(q.Get("algo"))
	if err != nil {
		writeError(w, errs.Bad("serve.label", "%v", err))
		return
	}
	job.Algo = algo
	merge, err := par.ParseMerge(q.Get("merge"))
	if err != nil {
		writeError(w, errs.Bad("serve.label", "%v", err))
		return
	}
	job.Merge = merge
	out := q.Get("out")
	if out == "" {
		out = "json"
	}
	if out != "json" && out != "pgm" {
		writeError(w, errs.Bad("serve.label", "unknown output %q (want json or pgm)", out))
		return
	}
	job.Census = q.Get("census") == "1"
	wantLabels := q.Get("labels") == "1"

	ctx := r.Context()
	deadline := s.cfg.DefaultDeadline
	if ms := q.Get("deadline_ms"); ms != "" {
		// Parse as int64 and bound before multiplying: a huge value like
		// 9300000000000000000 would overflow Duration(v)*Millisecond to a
		// negative duration, silently disabling the deadline entirely.
		v, err := strconv.ParseInt(ms, 10, 64)
		if err != nil || v <= 0 || v > math.MaxInt64/int64(time.Millisecond) {
			writeError(w, errs.Bad("serve.label", "bad deadline_ms %q", ms))
			return
		}
		deadline = time.Duration(v) * time.Millisecond
	}
	if deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, deadline)
		defer cancel()
	}

	t0 := rec.StartPhase()
	im, err := image.ReadPGM(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	rec.EndPhase("decode", "", t0)
	if err != nil {
		writeError(w, errs.Bad("serve.label", "decoding PGM body: %v", err))
		return
	}
	job.Image = im

	res, err := s.Do(ctx, job)
	if err != nil {
		writeError(w, err)
		return
	}

	if out == "pgm" {
		if err := writeLabelPGM(w, res.Labels, res.Components); err != nil {
			writeError(w, err)
		}
		return
	}
	resp := LabelResponse{Components: res.Components, N: im.N, Census: res.Census}
	if wantLabels {
		resp.Labels = res.Labels.Lab
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// writeLabelPGM renders the labeling as a P5 PGM: labels are renumbered
// densely 1..components in row-major first-seen order (background stays
// 0), so the output fits the format's 16-bit sample ceiling whenever the
// image has at most 65535 components; beyond that the request fails with
// 422 before any byte of the body is written. Both sample widths the
// renderer emits round-trip through image.ReadPGM (and the streaming
// reader), so a label PGM can be fed back to the service or pipeline.
func writeLabelPGM(w http.ResponseWriter, l *image.Labels, components int) error {
	if components > 65535 {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusUnprocessableEntity)
		json.NewEncoder(w).Encode(errorResponse{Error: fmt.Sprintf(
			"serve.label: %d components exceed the PGM 16-bit sample ceiling (65535); use out=json", components)})
		return nil
	}
	dense := make([]uint16, len(l.Lab))
	remap := make(map[uint32]uint16, components)
	var next uint16
	for i, lab := range l.Lab {
		if lab == 0 {
			continue
		}
		id, ok := remap[lab]
		if !ok {
			next++
			id = next
			remap[lab] = id
		}
		dense[i] = id
	}
	maxval := int(next)
	if maxval == 0 {
		maxval = 1 // PGM requires maxval >= 1 even for an all-background image
	}
	w.Header().Set("Content-Type", "image/x-portable-graymap")
	if _, err := fmt.Fprintf(w, "P5\n%d %d\n%d\n", l.N, l.N, maxval); err != nil {
		return nil // client gone; nothing sensible to report
	}
	var buf []byte
	if maxval < 256 {
		buf = make([]byte, len(dense))
		for i, v := range dense {
			buf[i] = byte(v)
		}
	} else {
		buf = make([]byte, 2*len(dense))
		for i, v := range dense {
			buf[2*i] = byte(v >> 8)
			buf[2*i+1] = byte(v)
		}
	}
	_, err := w.Write(buf)
	_ = err // headers are out; a write error just means the client left
	return nil
}

// handleMetrics emits the MetricsDocs array as indented JSON.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.MetricsDocs())
}

// handleHealthz runs the 16×16 round-trip; an unhealthy server answers
// 503 with the failure, so an orchestrator's probe sees why.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), 5*time.Second)
	defer cancel()
	w.Header().Set("Content-Type", "application/json")
	if err := s.Health(ctx); err != nil {
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]string{"status": "unhealthy", "error": err.Error()})
		return
	}
	io.WriteString(w, "{\"status\":\"ok\"}\n")
}
