package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"parimg/internal/errs"
	"parimg/internal/obs"
)

// task is one accepted request traveling through the scheduler: the
// submitting goroutine blocks on done, a runner fills res or err.
type task struct {
	ctx  context.Context
	job  Job
	enq  time.Time // when submit accepted the task; queue_wait = pop - enq
	res  *Result
	err  error
	done chan struct{}
}

// sched is the bounded work-stealing task queue: one FIFO deque per
// runner, round-robin submission, and idle runners stealing from the
// longest backlog. A single mutex + condvar serializes queue operations —
// task bodies (whole-image labelings, ~milliseconds) outweigh a queue op
// (~nanoseconds) by many orders of magnitude, so contention on the lock is
// not the bottleneck; the per-runner deques still preserve the submission
// spread and make stealing observable (the steals counter feeds /metrics).
// Lock-free deques à la Chase-Lev are the drop-in upgrade if queue ops
// ever show up in a profile.
type sched struct {
	run      func(*task)
	maxQueue int

	mu     sync.Mutex
	cond   *sync.Cond
	queues [][]*task // one FIFO per runner
	depth  int       // total queued (not yet running) tasks
	next   int       // round-robin submission cursor
	closed bool

	steals atomic.Int64
	wg     sync.WaitGroup
}

// newSched starts `runners` runner goroutines draining the queue into run.
func newSched(runners, maxQueue int, run func(*task)) *sched {
	s := &sched{run: run, maxQueue: maxQueue, queues: make([][]*task, runners)}
	s.cond = sync.NewCond(&s.mu)
	s.wg.Add(runners)
	for i := 0; i < runners; i++ {
		go s.runner(i)
	}
	return s
}

// submit enqueues t onto the next runner's deque, round-robin. Rejects
// with ErrSaturated when maxQueue tasks are already waiting, and with
// ErrClosed after close; in both cases the caller owns the task again and
// done is never closed.
func (s *sched) submit(t *task) error {
	t.enq = time.Now()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errs.Closed("serve.Do")
	}
	if s.depth >= s.maxQueue {
		s.mu.Unlock()
		return saturated()
	}
	s.queues[s.next] = append(s.queues[s.next], t)
	s.next = (s.next + 1) % len(s.queues)
	s.depth++
	s.mu.Unlock()
	// One Signal suffices: any idle runner can run any task (an awakened
	// runner with an empty deque steals it).
	s.cond.Signal()
	return nil
}

// runner is one scheduling loop: pop own work, steal otherwise, sleep on
// the condvar when the whole queue is empty, exit once closed.
func (s *sched) runner(i int) {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		var t *task
		for {
			if t = s.popLocked(i); t != nil || s.closed {
				break
			}
			s.cond.Wait()
		}
		s.mu.Unlock()
		if t == nil {
			return // closed and drained
		}
		s.run(t)
	}
}

// popLocked takes the head of runner i's own deque, or — when it is
// empty — steals the head of the longest other deque (the victim with the
// most backlog sheds load first). Returns nil when every deque is empty.
func (s *sched) popLocked(i int) *task {
	if t := popHead(&s.queues[i]); t != nil {
		s.depth--
		return t
	}
	victim, best := -1, 0
	for j := range s.queues {
		if j != i && len(s.queues[j]) > best {
			victim, best = j, len(s.queues[j])
		}
	}
	if victim < 0 {
		return nil
	}
	t := popHead(&s.queues[victim])
	s.depth--
	s.steals.Add(1)
	return t
}

// popHead removes and returns the queue's first task (nil when empty).
func popHead(q *[]*task) *task {
	if len(*q) == 0 {
		return nil
	}
	t := (*q)[0]
	(*q)[0] = nil
	*q = (*q)[1:]
	return t
}

// depthNow returns the current number of queued tasks.
func (s *sched) depthNow() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.depth
}

// close rejects future submissions, fails every queued-but-unstarted task
// with ErrClosed, and waits for all runners (including any mid-task) to
// exit.
func (s *sched) close() {
	s.mu.Lock()
	s.closed = true
	var orphans []*task
	for i := range s.queues {
		orphans = append(orphans, s.queues[i]...)
		s.queues[i] = nil
	}
	s.depth = 0
	s.mu.Unlock()
	s.cond.Broadcast()
	for _, t := range orphans {
		t.err = errs.Closed("serve.Do")
		close(t.done)
	}
	s.wg.Wait()
}

// history is a bounded ring of the most recent per-request metrics
// documents, for the /metrics endpoint's per-request tail.
type history struct {
	mu   sync.Mutex
	ring []*obs.Metrics
	next int
	full bool
}

func newHistory(size int) *history {
	return &history{ring: make([]*obs.Metrics, size)}
}

// add records one document, evicting the oldest when the ring is full.
func (h *history) add(m *obs.Metrics) {
	h.mu.Lock()
	h.ring[h.next] = m
	h.next = (h.next + 1) % len(h.ring)
	if h.next == 0 {
		h.full = true
	}
	h.mu.Unlock()
}

// recent returns the retained documents, oldest first.
func (h *history) recent() []*obs.Metrics {
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []*obs.Metrics
	if h.full {
		out = append(out, h.ring[h.next:]...)
	}
	out = append(out, h.ring[:h.next]...)
	return out
}
