package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"parimg/internal/fault/leakcheck"
	"parimg/internal/image"
	"parimg/internal/obs"
	"parimg/internal/seq"
)

// pgmBytes encodes im as a P5 PGM for posting.
func pgmBytes(t *testing.T, im *image.Image) []byte {
	t.Helper()
	maxVal := 1
	for _, v := range im.Pix {
		if int(v) > maxVal {
			maxVal = int(v)
		}
	}
	var buf bytes.Buffer
	if err := im.WritePGM(&buf, maxVal); err != nil {
		t.Fatalf("WritePGM: %v", err)
	}
	return buf.Bytes()
}

func startHTTP(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := newTestServer(t, cfg)
	ts := httptest.NewServer(s.Handler())
	return s, ts
}

func post(t *testing.T, url string, body []byte) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "image/x-portable-graymap", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	return resp
}

// TestHTTPLabelJSON posts a grey PGM and checks the JSON response carries
// the exact seq.LabelBFS labeling, the right component count, and a
// census consistent with the labels.
func TestHTTPLabelJSON(t *testing.T) {
	leakcheck.Check(t)
	s, ts := startHTTP(t, Config{Engines: 2, EngineWorkers: 1})
	defer ts.Close()
	defer s.Close()

	im := image.RandomGrey(64, 8, 3)
	want := seq.LabelBFS(im, image.Conn8, seq.Grey)
	resp := post(t, ts.URL+"/label?mode=grey&census=1&labels=1", pgmBytes(t, im))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	var lr LabelResponse
	if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	if lr.N != im.N {
		t.Fatalf("n = %d, want %d", lr.N, im.N)
	}
	if len(lr.Labels) != len(want.Lab) {
		t.Fatalf("got %d labels, want %d", len(lr.Labels), len(want.Lab))
	}
	for i := range want.Lab {
		if lr.Labels[i] != want.Lab[i] {
			t.Fatalf("pixel %d: got %d, want %d", i, lr.Labels[i], want.Lab[i])
		}
	}
	if lr.Components != len(lr.Census) {
		t.Fatalf("components=%d but census has %d entries", lr.Components, len(lr.Census))
	}
	var pixels int
	for _, c := range lr.Census {
		pixels += c.Size
	}
	if fg := im.CountForeground(); pixels != fg {
		t.Fatalf("census sizes sum to %d, want foreground count %d", pixels, fg)
	}
}

// TestHTTPLabelPGM posts a binary pattern asking for PGM output and
// checks the returned plane is the dense row-major renumbering of the
// reference labeling (same partition, first-seen order).
func TestHTTPLabelPGM(t *testing.T) {
	s, ts := startHTTP(t, Config{Engines: 1, EngineWorkers: 1})
	defer ts.Close()
	defer s.Close()

	im := image.Generate(image.FourSquares, 32)
	want := seq.LabelBFS(im, image.Conn8, seq.Binary)
	resp := post(t, ts.URL+"/label?out=pgm", pgmBytes(t, im))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading body: %v", err)
	}
	got, err := image.ReadPGM(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("response is not a valid PGM: %v", err)
	}
	// Build the expected dense renumbering from the reference labeling.
	remap := make(map[uint32]uint32)
	var next uint32
	for i, lab := range want.Lab {
		wantVal := uint32(0)
		if lab != 0 {
			id, ok := remap[lab]
			if !ok {
				next++
				id = next
				remap[lab] = id
			}
			wantVal = id
		}
		if got.Pix[i] != wantVal {
			t.Fatalf("pixel %d: got %d, want %d", i, got.Pix[i], wantVal)
		}
	}
}

// TestHTTP429Saturated saturates a one-runner, one-slot server and checks
// the over-capacity request is rejected with 429 and a Retry-After hint.
func TestHTTP429Saturated(t *testing.T) {
	s, ts := startHTTP(t, Config{Engines: 1, EngineWorkers: 2, QueueDepth: 1})
	defer ts.Close()
	defer s.Close()
	blocked := blockServer(t, s, 500*time.Millisecond)

	im := image.Generate(image.Cross, 32)
	body := pgmBytes(t, im)
	fillerDone := make(chan error, 1)
	go func() {
		_, err := s.Do(context.Background(), Job{Image: im, Name: "filler"})
		fillerDone <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.sched.depthNow() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("filler never queued")
		}
		time.Sleep(time.Millisecond)
	}

	resp := post(t, ts.URL+"/label", body)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if err := <-blocked; err != nil {
		t.Fatalf("blocker: %v", err)
	}
	if err := <-fillerDone; err != nil {
		t.Fatalf("filler: %v", err)
	}
}

// TestHTTP504Deadline queues a request with a deadline behind a blocked
// runner: the deadline expires in the queue and the response must be 504.
func TestHTTP504Deadline(t *testing.T) {
	s, ts := startHTTP(t, Config{Engines: 1, EngineWorkers: 2, QueueDepth: 4})
	defer ts.Close()
	defer s.Close()
	blocked := blockServer(t, s, 400*time.Millisecond)

	resp := post(t, ts.URL+"/label?deadline_ms=20", pgmBytes(t, image.Generate(image.Cross, 32)))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d, want 504 (%s)", resp.StatusCode, b)
	}
	var er errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil || er.Error == "" {
		t.Fatalf("504 body not a JSON error: %v %q", err, er.Error)
	}
	if err := <-blocked; err != nil {
		t.Fatalf("blocker: %v", err)
	}
}

// TestHTTPBadRequests walks the 400 paths: malformed body, bad params.
func TestHTTPBadRequests(t *testing.T) {
	s, ts := startHTTP(t, Config{Engines: 1, EngineWorkers: 1})
	defer ts.Close()
	defer s.Close()
	good := pgmBytes(t, image.Generate(image.Cross, 16))
	for _, tc := range []struct {
		name, url string
		body      []byte
	}{
		{"garbage body", "/label", []byte("not a pgm")},
		{"bad mode", "/label?mode=sepia", good},
		{"bad conn", "/label?conn=6", good},
		{"bad algo", "/label?algo=quantum", good},
		{"bad merge", "/label?merge=blend", good},
		{"bad out", "/label?out=bmp", good},
		{"bad deadline", "/label?deadline_ms=soon", good},
		{"negative deadline", "/label?deadline_ms=-1", good},
		// Regression: these used to pass the parse and overflow the
		// Duration multiply to a negative value, silently disabling the
		// deadline instead of rejecting the request.
		{"overflowing deadline", "/label?deadline_ms=9223372036854776", good},
		{"unparseable deadline", "/label?deadline_ms=9300000000000000000", good},
	} {
		resp := post(t, ts.URL+tc.url, tc.body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
	}
}

// TestHTTPHealthzAndMetrics checks the probe endpoint answers ok and that
// /metrics serves a JSON array whose every document passes the schema
// validator, aggregate first.
func TestHTTPHealthzAndMetrics(t *testing.T) {
	s, ts := startHTTP(t, Config{Engines: 2, EngineWorkers: 1})
	defer ts.Close()
	defer s.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d: %s", resp.StatusCode, b)
	}
	var hz map[string]string
	if err := json.Unmarshal(b, &hz); err != nil || hz["status"] != "ok" {
		t.Fatalf("healthz body %q (%v)", b, err)
	}

	post(t, ts.URL+"/label?census=1", pgmBytes(t, image.Generate(image.DualSpiral, 32))).Body.Close()

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	var docs []*obs.Metrics
	if err := json.NewDecoder(resp.Body).Decode(&docs); err != nil {
		t.Fatalf("metrics not a JSON array of documents: %v", err)
	}
	if len(docs) < 3 { // aggregate + healthz probe + the label request
		t.Fatalf("got %d docs, want >= 3", len(docs))
	}
	for i, m := range docs {
		if err := m.Validate(); err != nil {
			t.Fatalf("doc %d fails schema validation: %v", i, err)
		}
	}
	if docs[0].Image != "aggregate" {
		t.Fatalf("first doc is %q, want the aggregate", docs[0].Image)
	}
	if docs[0].Counters["runs"] < 2 {
		t.Fatalf("aggregate runs = %d, want >= 2", docs[0].Counters["runs"])
	}
	// The per-request tail must include the upload with its phase split.
	var sawUpload bool
	for _, m := range docs[1:] {
		if m.Image == "upload" && m.WallPhaseNS("queue_wait") >= 0 && len(m.Phases) > 0 {
			sawUpload = true
		}
	}
	if !sawUpload {
		t.Fatal("no per-request document for the upload")
	}
}

// TestHTTPMethodRouting checks the mux rejects wrong methods.
func TestHTTPMethodRouting(t *testing.T) {
	s, ts := startHTTP(t, Config{Engines: 1, EngineWorkers: 1})
	defer ts.Close()
	defer s.Close()
	resp, err := http.Get(ts.URL + "/label")
	if err != nil {
		t.Fatalf("GET /label: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /label status %d, want 405", resp.StatusCode)
	}
}

// TestHTTPLabelPGM16BitRoundTrip drives the renderer into its two-byte
// sample width (more than 255 components) and feeds the response back
// through image.ReadPGM — the reader used to reject maxval above 255, so
// the service's own 16-bit output could not be re-ingested.
func TestHTTPLabelPGM16BitRoundTrip(t *testing.T) {
	s, ts := startHTTP(t, Config{Engines: 1, EngineWorkers: 1})
	defer ts.Close()
	defer s.Close()

	const n = 32 // conn4 checkerboard: n*n/2 = 512 isolated components
	im := image.New(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if (i+j)%2 == 0 {
				im.Set(i, j, 1)
			}
		}
	}
	want := seq.LabelBFS(im, image.Conn4, seq.Binary)
	resp := post(t, ts.URL+"/label?conn=4&out=pgm", pgmBytes(t, im))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading body: %v", err)
	}
	if !bytes.HasPrefix(body, []byte("P5\n32 32\n512\n")) {
		t.Fatalf("16-bit label PGM header = %q", body[:min(len(body), 16)])
	}
	got, err := image.ReadPGM(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("16-bit label PGM does not round-trip through ReadPGM: %v", err)
	}
	remap := make(map[uint32]uint32)
	var next uint32
	for i, lab := range want.Lab {
		wantVal := uint32(0)
		if lab != 0 {
			id, ok := remap[lab]
			if !ok {
				next++
				id = next
				remap[lab] = id
			}
			wantVal = id
		}
		if got.Pix[i] != wantVal {
			t.Fatalf("pixel %d: got %d, want %d", i, got.Pix[i], wantVal)
		}
	}
}
