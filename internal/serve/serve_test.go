package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"parimg/internal/errs"
	"parimg/internal/fault"
	"parimg/internal/fault/leakcheck"
	"parimg/internal/image"
	"parimg/internal/seq"
)

// newTestServer builds a server sized for the test host: Oversubscribe is
// raised so the requested engines×workers always fit the core budget, even
// on a single-CPU container.
func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Oversubscribe == 0 {
		cfg.Oversubscribe = 64
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

// blockServer occupies the server's single runner with a labeling slowed
// by an injected delay (the delay site only exists on multi-worker
// engines, so callers configure EngineWorkers >= 2). It returns a channel
// carrying the blocker's error once it completes, after waiting until the
// runner has actually rented the engine — from that point the queue alone
// absorbs new requests.
func blockServer(t *testing.T, s *Server, d time.Duration) <-chan error {
	t.Helper()
	inj := fault.New(1, fault.Delay, 1).At("strip_label").OnRank(0).WithDelay(d)
	im := image.Generate(image.Cross, 64)
	done := make(chan error, 1)
	go func() {
		_, err := s.Do(context.Background(), Job{Image: im, Fault: inj, Name: "blocker"})
		done <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.pool.Idle() != 0 { // the pool starts with one idle engine; 0 = rented
		if time.Now().After(deadline) {
			t.Fatal("runner never picked up the blocking task")
		}
		time.Sleep(time.Millisecond)
	}
	return done
}

// TestConcurrentRequestsPixelIdentical drives 64 concurrent requests of
// mixed patterns, modes and connectivities through an 8-runner server and
// checks every labeling pixel-for-pixel against the sequential reference,
// with a goroutine-leak check over the whole server lifecycle.
func TestConcurrentRequestsPixelIdentical(t *testing.T) {
	leakcheck.Check(t)
	s := newTestServer(t, Config{Engines: 8, EngineWorkers: 1, QueueDepth: 64})
	defer s.Close()

	type testCase struct {
		im   *image.Image
		conn image.Connectivity
		mode seq.Mode
		want *image.Labels
		name string
	}
	patterns := image.AllPatterns()
	var cases []testCase
	for i := 0; i < 64; i++ {
		im := image.Generate(patterns[i%len(patterns)], 48)
		conn := image.Conn8
		if i%2 == 1 {
			conn = image.Conn4
		}
		mode := seq.Binary
		if i%3 == 0 {
			mode = seq.Grey
		}
		cases = append(cases, testCase{
			im: im, conn: conn, mode: mode,
			want: seq.LabelBFS(im, conn, mode),
			name: fmt.Sprintf("req%d/%v/%v", i, conn, mode),
		})
	}
	var wg sync.WaitGroup
	failures := make(chan string, len(cases))
	wg.Add(len(cases))
	for _, tc := range cases {
		go func(tc testCase) {
			defer wg.Done()
			res, err := s.Do(context.Background(), Job{
				Image: tc.im, Conn: tc.conn, Mode: tc.mode, Census: true, Name: tc.name,
			})
			if err != nil {
				failures <- fmt.Sprintf("%s: %v", tc.name, err)
				return
			}
			for i := range tc.want.Lab {
				if res.Labels.Lab[i] != tc.want.Lab[i] {
					failures <- fmt.Sprintf("%s: pixel %d: got %d, want %d",
						tc.name, i, res.Labels.Lab[i], tc.want.Lab[i])
					return
				}
			}
			if res.Metrics == nil || res.Metrics.Validate() != nil {
				failures <- fmt.Sprintf("%s: missing or invalid metrics", tc.name)
			}
		}(tc)
	}
	wg.Wait()
	close(failures)
	for f := range failures {
		t.Error(f)
	}
	if got := s.agg.Count(); got != 64 {
		t.Fatalf("aggregate observed %d runs, want 64", got)
	}
}

// TestSaturationRejects fills the single runner and the one-deep queue,
// then checks the next request is rejected with ErrSaturated (never
// queued) and that the rejection is counted — while the admitted requests
// still complete.
func TestSaturationRejects(t *testing.T) {
	leakcheck.Check(t)
	s := newTestServer(t, Config{Engines: 1, EngineWorkers: 2, QueueDepth: 1})
	defer s.Close()
	blocked := blockServer(t, s, 500*time.Millisecond)

	im := image.Generate(image.Cross, 32)
	fillerDone := make(chan error, 1)
	go func() {
		_, err := s.Do(context.Background(), Job{Image: im, Name: "filler"})
		fillerDone <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.sched.depthNow() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("filler never queued")
		}
		time.Sleep(time.Millisecond)
	}

	if _, err := s.Do(context.Background(), Job{Image: im, Name: "rejected"}); !errors.Is(err, ErrSaturated) {
		t.Fatalf("over-capacity Do: got %v, want ErrSaturated", err)
	}
	if err := <-blocked; err != nil {
		t.Fatalf("blocker failed: %v", err)
	}
	if err := <-fillerDone; err != nil {
		t.Fatalf("queued filler failed: %v", err)
	}
	agg := s.MetricsDocs()[0]
	if agg.Counters["rejected"] != 1 {
		t.Fatalf("rejected counter = %d, want 1", agg.Counters["rejected"])
	}
}

// TestDeadlineDuringRun gives a slowed run a deadline shorter than its
// injected delay: the engine must stop at its next checkpoint and the
// request must fail with the typed ErrDeadline.
func TestDeadlineDuringRun(t *testing.T) {
	leakcheck.Check(t)
	s := newTestServer(t, Config{Engines: 1, EngineWorkers: 2})
	defer s.Close()
	inj := fault.New(1, fault.Delay, 1).At("strip_label").OnRank(0).WithDelay(250 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 25*time.Millisecond)
	defer cancel()
	_, err := s.Do(ctx, Job{Image: image.Generate(image.Cross, 64), Fault: inj})
	if !errors.Is(err, errs.ErrDeadline) {
		t.Fatalf("got %v, want ErrDeadline", err)
	}
}

// TestDeadlineInQueue expires a request's deadline while it waits behind a
// blocked runner: the scheduler must fail it with ErrDeadline when it is
// finally popped, without renting an engine for it.
func TestDeadlineInQueue(t *testing.T) {
	leakcheck.Check(t)
	s := newTestServer(t, Config{Engines: 1, EngineWorkers: 2, QueueDepth: 4})
	defer s.Close()
	blocked := blockServer(t, s, 300*time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := s.Do(ctx, Job{Image: image.Generate(image.Cross, 32), Name: "queued"})
	if !errors.Is(err, errs.ErrDeadline) {
		t.Fatalf("queued request: got %v, want ErrDeadline", err)
	}
	if err := <-blocked; err != nil {
		t.Fatalf("blocker failed: %v", err)
	}
}

// TestCloseShutdown checks the shutdown contract: queued tasks fail with
// ErrClosed, the in-flight task completes, later Do calls fail typed, and
// no goroutine outlives Close (leakcheck covers the runners, the pool's
// engines and the context monitors).
func TestCloseShutdown(t *testing.T) {
	leakcheck.Check(t)
	s := newTestServer(t, Config{Engines: 1, EngineWorkers: 2, QueueDepth: 4})
	blocked := blockServer(t, s, 300*time.Millisecond)
	queued := make(chan error, 1)
	go func() {
		_, err := s.Do(context.Background(), Job{Image: image.Generate(image.Cross, 32)})
		queued <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.sched.depthNow() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("second task never queued")
		}
		time.Sleep(time.Millisecond)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := <-queued; !errors.Is(err, errs.ErrClosed) {
		t.Fatalf("queued task after Close: got %v, want ErrClosed", err)
	}
	if err := <-blocked; err != nil {
		t.Fatalf("in-flight task should complete through Close, got: %v", err)
	}
	if _, err := s.Do(context.Background(), Job{Image: image.Generate(image.Cross, 16)}); !errors.Is(err, errs.ErrClosed) {
		t.Fatalf("Do after Close: got %v, want ErrClosed", err)
	}
}

// TestHealth exercises the 16×16 round-trip probe.
func TestHealth(t *testing.T) {
	leakcheck.Check(t)
	s := newTestServer(t, Config{Engines: 2, EngineWorkers: 1})
	defer s.Close()
	if err := s.Health(context.Background()); err != nil {
		t.Fatalf("Health: %v", err)
	}
	s.Close()
	if err := s.Health(context.Background()); !errors.Is(err, errs.ErrClosed) {
		t.Fatalf("Health after Close: got %v, want ErrClosed", err)
	}
}

// TestMetricsCoverage checks the acceptance property that a request's
// measured phases (queue wait, the engine phases, census) cover at least
// 99% of its wall time. Timer granularity makes single samples noisy, so
// the best of five attempts must pass — the property is about the
// instrumentation having no structural gaps, not about scheduler jitter.
func TestMetricsCoverage(t *testing.T) {
	s := newTestServer(t, Config{Engines: 1, EngineWorkers: 1})
	defer s.Close()
	im := image.RandomGrey(512, 16, 7)
	best := 0.0
	for attempt := 0; attempt < 5; attempt++ {
		res, err := s.Do(context.Background(), Job{Image: im, Mode: seq.Grey, Census: true})
		if err != nil {
			t.Fatalf("Do: %v", err)
		}
		m := res.Metrics
		if m.TotalNS <= 0 {
			t.Fatalf("TotalNS = %d", m.TotalNS)
		}
		cov := float64(m.WallPhaseNS()) / float64(m.TotalNS)
		if cov > best {
			best = cov
		}
		if best >= 0.99 {
			return
		}
	}
	t.Fatalf("phase coverage %.4f < 0.99 in all attempts", best)
}

// TestMetricsDocsAllValid checks every document /metrics would serve —
// the aggregate and the per-request tail — against the schema validator,
// and spot-checks the aggregate counters.
func TestMetricsDocsAllValid(t *testing.T) {
	s := newTestServer(t, Config{Engines: 2, EngineWorkers: 1, History: 4})
	defer s.Close()
	im := image.Generate(image.DualSpiral, 32)
	for i := 0; i < 6; i++ { // more than History: the ring must evict
		if _, err := s.Do(context.Background(), Job{Image: im, Census: true}); err != nil {
			t.Fatalf("Do %d: %v", i, err)
		}
	}
	docs := s.MetricsDocs()
	if len(docs) != 1+4 {
		t.Fatalf("got %d docs, want aggregate + 4 history", len(docs))
	}
	for i, m := range docs {
		if err := m.Validate(); err != nil {
			t.Fatalf("doc %d invalid: %v", i, err)
		}
	}
	agg := docs[0]
	if agg.Image != "aggregate" || agg.Command != "imgccd" {
		t.Fatalf("aggregate doc mislabeled: %+v", agg)
	}
	if agg.Counters["runs"] != 6 {
		t.Fatalf("aggregate runs = %d, want 6", agg.Counters["runs"])
	}
	if agg.Counters["runners"] != 2 || agg.Counters["engine_workers"] != 1 {
		t.Fatalf("aggregate sizing counters wrong: %v", agg.Counters)
	}
}

// TestConfigPolicy checks the N×W core-budget policy: an explicit
// over-budget configuration is a typed input error, and defaults derive N
// from the budget.
func TestConfigPolicy(t *testing.T) {
	if _, err := New(Config{Engines: 1 << 20, EngineWorkers: 2, Oversubscribe: 1}); !errors.Is(err, errs.ErrBadInput) {
		t.Fatalf("over-budget config: got %v, want ErrBadInput", err)
	}
	s := newTestServer(t, Config{})
	defer s.Close()
	cfg := s.Config()
	if cfg.Engines < 1 || cfg.EngineWorkers != 1 || cfg.QueueDepth != 2*cfg.Engines {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
}

// TestNilAndBadInput checks the pre-queue validation path.
func TestNilAndBadInput(t *testing.T) {
	s := newTestServer(t, Config{Engines: 1, EngineWorkers: 1})
	defer s.Close()
	if _, err := s.Do(context.Background(), Job{}); !errors.Is(err, errs.ErrBadInput) {
		t.Fatalf("nil image: got %v, want ErrBadInput", err)
	}
	bad := &image.Image{N: 3, Pix: make([]uint32, 4)}
	if _, err := s.Do(context.Background(), Job{Image: bad}); !errors.Is(err, errs.ErrBadInput) {
		t.Fatalf("malformed image: got %v, want ErrBadInput", err)
	}
}

// TestWorkStealing routes a burst through a many-runner server and checks
// the steal counter moved: round-robin submission with a single hot
// submitter means idle runners can only drain the backlog by stealing.
func TestWorkStealing(t *testing.T) {
	s := newTestServer(t, Config{Engines: 4, EngineWorkers: 1, QueueDepth: 64})
	defer s.Close()
	im := image.Generate(image.Cross, 48)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.Do(context.Background(), Job{Image: im}); err != nil {
				t.Errorf("Do: %v", err)
			}
		}()
	}
	wg.Wait()
	// Steals are opportunistic, not guaranteed on every schedule; what is
	// guaranteed is the counter is wired and non-negative, and with 32
	// tasks round-robined over 4 deques at least one steal is
	// overwhelmingly likely — but do not flake on a perfect schedule.
	if s.sched.steals.Load() < 0 {
		t.Fatal("steal counter went negative")
	}
}
