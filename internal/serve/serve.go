// Package serve is the labeling-as-a-service runtime behind cmd/imgccd: it
// composes *inter*-image parallelism (one task per request, scheduled onto
// N runner goroutines by a bounded work-stealing queue) with the existing
// *intra*-image strip parallelism of internal/par (each runner drives a
// W-worker engine rented from a par.Pool).
//
// The two layers split the machine by policy, not by accident: N×W must
// stay within ceil(GOMAXPROCS × Oversubscribe), so a deployment chooses
// its point on the throughput/latency curve explicitly — many single-worker
// engines for request throughput, or a few wide engines for per-image
// latency — instead of oversubscribing the cores implicitly.
//
// Admission control is a bounded queue: a request that arrives with
// QueueDepth tasks already waiting is rejected with ErrSaturated (HTTP 429
// + Retry-After at the HTTP layer) rather than queued into unbounded
// latency. Accepted requests carry their context through
// Engine.LabelIntoContext, so a deadline or a disconnecting client stops
// the strip workers at their next cancellation checkpoint. Every request
// produces one parimg-metrics/v1 document (decode, queue_wait, the engine
// phases, census) that is folded into an obs.Agg for the /metrics
// aggregate and kept in a bounded history ring.
package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync/atomic"
	"time"

	"parimg/internal/errs"
	"parimg/internal/fault"
	"parimg/internal/image"
	"parimg/internal/obs"
	"parimg/internal/par"
	"parimg/internal/seq"
)

// ErrSaturated is returned by Do (and mapped to HTTP 429 by the handler)
// when the admission queue is at capacity: the request was never accepted,
// so retrying after a backoff is safe and expected.
var ErrSaturated = errors.New("server saturated")

// saturated wraps ErrSaturated with the rejecting operation.
func saturated() error {
	return fmt.Errorf("serve.Do: admission queue at capacity: %w", ErrSaturated)
}

// Config sizes a Server. The zero value is usable: every field has a
// documented default applied by New.
type Config struct {
	// Engines is N, the number of runner goroutines (each drives one
	// rented engine, so it is also the maximum number of images labeled
	// concurrently). <= 0 derives the largest N with N×EngineWorkers
	// inside the core budget (at least 1).
	Engines int
	// EngineWorkers is W, the strip-worker count of every engine; <= 0
	// selects 1 (the throughput-oriented default: intra-image parallelism
	// pays off per image, but under concurrent load independent requests
	// keep every core busy without barrier overhead).
	EngineWorkers int
	// Oversubscribe scales the core budget: N×W must stay within
	// ceil(GOMAXPROCS × Oversubscribe). <= 0 selects 1.0. Values above 1
	// deliberately oversubscribe the cores (useful when requests spend
	// time blocked, or to exercise scheduling in tests).
	Oversubscribe float64
	// QueueDepth bounds the number of accepted-but-not-yet-running tasks;
	// a request arriving beyond it is rejected with ErrSaturated. <= 0
	// selects 2×Engines.
	QueueDepth int
	// DefaultDeadline bounds each request's labeling work when the
	// request does not carry a tighter deadline of its own; 0 means no
	// server-imposed deadline.
	DefaultDeadline time.Duration
	// MaxBodyBytes bounds the request body the HTTP handler will read;
	// <= 0 selects 256 MiB (a 16384² PGM with room to spare).
	MaxBodyBytes int64
	// History is the number of recent per-request metrics documents the
	// /metrics endpoint returns alongside the aggregate; <= 0 selects 32.
	History int
}

// normalized applies the documented defaults and validates the N×W policy.
func (c Config) normalized() (Config, error) {
	if c.EngineWorkers <= 0 {
		c.EngineWorkers = 1
	}
	if c.Oversubscribe <= 0 {
		c.Oversubscribe = 1.0
	}
	budget := int(math.Ceil(float64(runtime.GOMAXPROCS(0)) * c.Oversubscribe))
	if budget < 1 {
		budget = 1
	}
	if c.Engines <= 0 {
		c.Engines = budget / c.EngineWorkers
		if c.Engines < 1 {
			c.Engines = 1
		}
	} else if c.Engines*c.EngineWorkers > budget {
		return c, errs.Bad("serve.New",
			"engines×workers %d×%d exceeds the core budget ceil(%d×%.2g)=%d; raise Oversubscribe to opt into oversubscription",
			c.Engines, c.EngineWorkers, runtime.GOMAXPROCS(0), c.Oversubscribe, budget)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 2 * c.Engines
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 256 << 20
	}
	if c.History <= 0 {
		c.History = 32
	}
	return c, nil
}

// Job is one labeling request. Image is required; zero values of the other
// fields select the engine defaults (Conn8, Binary, AlgoAuto, MergeAuto,
// no census).
type Job struct {
	Image *image.Image
	Conn  image.Connectivity
	Mode  seq.Mode
	Algo  par.Algo
	Merge par.Merge
	// Census also computes the per-component statistics (size, bounding
	// box, centroid) after labeling, timed as the "census" phase.
	Census bool
	// Fault, when non-nil, is installed on the rented engine for this job
	// only (the pool's Return scrubs it). Chaos testing: a production
	// request never sets it, and the HTTP layer cannot.
	Fault *fault.Injector
	// Name labels the request's metrics document (defaults to "upload").
	Name string
	// Rec, when non-nil, is the request's metrics recorder; the HTTP
	// handler pre-loads it with the "decode" phase before calling Do. Nil
	// makes Do allocate a fresh one.
	Rec *obs.Recorder
	// Start is the request's wall-clock origin for TotalNS; the HTTP
	// handler sets it at handler entry so queue wait and decode are
	// inside the measured total. Zero means Do entry.
	Start time.Time
}

// Result is a completed labeling: the raw engine labels (pixel-identical
// to seq.LabelBFS), the component count, the census when requested, and
// the request's metrics document.
type Result struct {
	Labels     *image.Labels
	Components int
	Census     []image.ComponentStat
	Metrics    *obs.Metrics
}

// Server is the pooled-engine labeling runtime. Create with New, serve
// over HTTP via Handler or call Do directly, shut down with Close.
type Server struct {
	cfg      Config
	pool     *par.Pool
	sched    *sched
	agg      *obs.Agg
	hist     *history
	rejected atomic.Int64
	closed   atomic.Bool
}

// New starts a server: Engines runner goroutines over a pool of
// EngineWorkers-wide engines. The only error is a typed ErrBadInput when
// the config violates the N×W core-budget policy.
func New(cfg Config) (*Server, error) {
	cfg, err := cfg.normalized()
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:  cfg,
		pool: par.NewPool(cfg.EngineWorkers),
		agg:  obs.NewAgg(),
		hist: newHistory(cfg.History),
	}
	s.sched = newSched(cfg.Engines, cfg.QueueDepth, s.run)
	return s, nil
}

// Config returns the server's configuration with all defaults resolved.
func (s *Server) Config() Config { return s.cfg }

// Close shuts the server down: queued-but-unstarted tasks fail with
// ErrClosed, in-flight tasks run to completion (their own deadlines bound
// them), the runner goroutines exit, and every pooled engine is closed.
// Idempotent; always returns nil.
func (s *Server) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	s.sched.close()
	s.pool.Close()
	return nil
}

// Do labels one image through the scheduler and blocks until the task
// completes (or is rejected). Errors are typed: ErrSaturated on a full
// queue, errs.ErrBadInput for invalid images, errs.ErrDeadline /
// errs.ErrCanceled when ctx stops an accepted run, errs.ErrClosed after
// Close. Safe for concurrent use from any number of goroutines.
func (s *Server) Do(ctx context.Context, job Job) (*Result, error) {
	if s.closed.Load() {
		return nil, errs.Closed("serve.Do")
	}
	if job.Image == nil {
		return nil, errs.Bad("serve.Do", "nil image")
	}
	if err := job.Image.Check(); err != nil {
		return nil, err
	}
	if job.Conn == 0 {
		job.Conn = image.Conn8
	}
	if job.Name == "" {
		job.Name = "upload"
	}
	if job.Rec == nil {
		job.Rec = obs.NewRecorder()
	}
	if job.Start.IsZero() {
		job.Start = time.Now()
	}
	if ctx == nil {
		ctx = context.Background()
	}
	t := &task{ctx: ctx, job: job, done: make(chan struct{})}
	if err := s.sched.submit(t); err != nil {
		if errors.Is(err, ErrSaturated) {
			s.rejected.Add(1)
		}
		return nil, err
	}
	<-t.done
	if t.err != nil {
		return nil, t.err
	}
	return t.res, nil
}

// run executes one dequeued task on a rented engine. It always completes
// the task (closes t.done) and always finalizes the request's metrics
// document, so aborted requests are visible in the aggregate too.
func (s *Server) run(t *task) {
	rec := t.job.Rec
	rec.EndPhase("queue_wait", "", t.enq)
	defer func() { s.finish(t, rec); close(t.done) }()
	if err := t.ctx.Err(); err != nil {
		// The deadline expired while the task sat in the queue; fail
		// without renting an engine.
		t.err = errs.FromContext("serve.Do", time.Since(t.job.Start), err)
		return
	}
	e, err := s.pool.Rent()
	if err != nil {
		t.err = err
		return
	}
	defer s.pool.Return(e)
	e.SetAlgo(t.job.Algo)
	e.SetMerge(t.job.Merge)
	e.SetObserver(rec)
	e.SetFaultInjector(t.job.Fault)
	labels := image.NewLabels(t.job.Image.N)
	comps, err := e.LabelIntoContext(t.ctx, t.job.Image, t.job.Conn, t.job.Mode, labels)
	if err != nil {
		t.err = err
		return
	}
	res := &Result{Labels: labels, Components: comps}
	if t.job.Census {
		t0 := rec.StartPhase()
		stats, err := labels.CensusChecked(t.job.Image)
		rec.EndPhase("census", "", t0)
		if err != nil {
			t.err = err
			return
		}
		res.Census = stats
	}
	t.res = res
}

// finish builds the request's metrics document, folds it into the
// aggregate and the history ring, and attaches it to the result.
func (s *Server) finish(t *task, rec *obs.Recorder) {
	if t.err != nil {
		rec.MarkAborted(t.err.Error()) // first mark wins; engine aborts keep their cause
	}
	m := rec.Snapshot()
	m.Command = "imgccd"
	m.Backend = "par"
	m.Algo = t.job.Algo.String()
	m.Merge = t.job.Merge.String()
	m.Workers = s.cfg.EngineWorkers
	m.Image = t.job.Name
	m.N = t.job.Image.N
	m.TotalNS = time.Since(t.job.Start).Nanoseconds()
	s.agg.Observe(m)
	s.hist.add(m)
	if t.res != nil {
		t.res.Metrics = m
	}
}

// Health labels a 16×16 pattern through the full scheduler path and
// checks the result pixel-for-pixel against the sequential reference: the
// liveness probe exercises exactly what a real request exercises.
func (s *Server) Health(ctx context.Context) error {
	im := image.Generate(image.DualSpiral, 16)
	res, err := s.Do(ctx, Job{Image: im, Conn: image.Conn8, Mode: seq.Binary, Name: "healthz"})
	if err != nil {
		return err
	}
	want := seq.LabelBFS(im, image.Conn8, seq.Binary)
	for i := range want.Lab {
		if res.Labels.Lab[i] != want.Lab[i] {
			return fmt.Errorf("serve: healthz labeling mismatch at pixel %d: got %d, want %d",
				i, res.Labels.Lab[i], want.Lab[i])
		}
	}
	return nil
}

// MetricsDocs assembles the /metrics payload: the aggregate document
// first (Image "aggregate", with the server counters merged in), then the
// most recent per-request documents, newest last. Every document is a
// valid parimg-metrics/v1.
func (s *Server) MetricsDocs() []*obs.Metrics {
	agg := s.agg.Snapshot()
	agg.Command = "imgccd"
	agg.Backend = "par"
	agg.Workers = s.cfg.EngineWorkers
	agg.Image = "aggregate"
	agg.Counters["queue_depth"] = int64(s.sched.depthNow())
	agg.Counters["queue_capacity"] = int64(s.cfg.QueueDepth)
	agg.Counters["rejected"] = s.rejected.Load()
	agg.Counters["steals"] = s.sched.steals.Load()
	agg.Counters["runners"] = int64(s.cfg.Engines)
	agg.Counters["engine_workers"] = int64(s.cfg.EngineWorkers)
	return append([]*obs.Metrics{agg}, s.hist.recent()...)
}
