package hist

import (
	"testing"

	"parimg/internal/image"
)

func TestEqualizeMatchesSequential(t *testing.T) {
	// The parallel pipeline must equal image.Equalize applied on the
	// host, pixel for pixel, across p and k.
	for _, p := range []int{1, 4, 16} {
		for _, k := range []int{4, 64, 256} {
			im := image.RandomGrey(64, k, uint64(p*1000+k))
			m := mustMachine(t, p)
			res, err := Equalize(m, im, k)
			if err != nil {
				t.Fatalf("p=%d k=%d: %v", p, k, err)
			}
			h, err := im.Histogram(k)
			if err != nil {
				t.Fatal(err)
			}
			want := image.Equalize(im, h)
			for i := range want.Pix {
				if res.Image.Pix[i] != want.Pix[i] {
					t.Fatalf("p=%d k=%d: pixel %d = %d, want %d",
						p, k, i, res.Image.Pix[i], want.Pix[i])
				}
			}
			for g := range h {
				if res.H[g] != h[g] {
					t.Fatalf("p=%d k=%d: histogram bar %d", p, k, g)
				}
			}
		}
	}
}

func TestEqualizeKSmallerThanP(t *testing.T) {
	// Exercises the LUT padding for the broadcast when k < p.
	im := image.RandomGrey(64, 4, 8)
	m := mustMachine(t, 16)
	res, err := Equalize(m, im, 4)
	if err != nil {
		t.Fatal(err)
	}
	h, _ := im.Histogram(4)
	want := image.Equalize(im, h)
	for i := range want.Pix {
		if res.Image.Pix[i] != want.Pix[i] {
			t.Fatalf("pixel %d", i)
		}
	}
}

func TestEqualizePreservesBackground(t *testing.T) {
	im := image.DARPAScene(64, 256, 7)
	m := mustMachine(t, 4)
	res, err := Equalize(m, im, 256)
	if err != nil {
		t.Fatal(err)
	}
	for i := range im.Pix {
		if (im.Pix[i] == 0) != (res.Image.Pix[i] == 0) {
			t.Fatalf("background changed at %d", i)
		}
	}
}

func TestEqualizeAllBackground(t *testing.T) {
	im := image.New(32)
	m := mustMachine(t, 4)
	res, err := Equalize(m, im, 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Image.Pix {
		if v != 0 {
			t.Fatal("all-background image must stay background")
		}
	}
}

func TestEqualizeRejectsBadInput(t *testing.T) {
	m := mustMachine(t, 4)
	if _, err := Equalize(m, image.RandomGrey(32, 4, 1), 3); err == nil {
		t.Error("non-power-of-two k: want error")
	}
	if _, err := Equalize(m, image.RandomGrey(32, 256, 1), 16); err == nil {
		t.Error("grey out of range: want error")
	}
}

func TestOtsuThresholdBimodal(t *testing.T) {
	// Two well-separated modes at greys ~40 and ~200: the threshold
	// must fall between them.
	h := make([]int64, 256)
	for g := 30; g < 50; g++ {
		h[g] = 100
	}
	for g := 190; g < 210; g++ {
		h[g] = 100
	}
	tt := OtsuThreshold(h)
	if tt < 50 || tt > 190 {
		t.Errorf("threshold %d outside the valley [50, 190]", tt)
	}
}

func TestOtsuThresholdWeighted(t *testing.T) {
	// A heavy low mode and a light high mode: the threshold still
	// separates them.
	h := make([]int64, 64)
	h[5] = 10000
	h[50] = 100
	tt := OtsuThreshold(h)
	if tt <= 5 || tt > 50 {
		t.Errorf("threshold %d does not separate 5 and 50", tt)
	}
}

func TestOtsuThresholdDegenerate(t *testing.T) {
	if got := OtsuThreshold(make([]int64, 16)); got != 1 {
		t.Errorf("empty histogram: %d, want 1", got)
	}
	h := make([]int64, 16)
	h[7] = 42
	if got := OtsuThreshold(h); got < 1 || got > 15 {
		t.Errorf("single-level histogram: %d out of range", got)
	}
	// Background-only histograms are degenerate too.
	h = make([]int64, 16)
	h[0] = 1000
	if got := OtsuThreshold(h); got != 1 {
		t.Errorf("background-only: %d, want 1", got)
	}
}
