package hist

import (
	"testing"
	"testing/quick"

	"parimg/internal/bdm"
	"parimg/internal/image"
	"parimg/internal/machine"
)

// quickCheck runs a property with a bounded iteration count.
func quickCheck(f interface{}) error {
	return quick.Check(f, &quick.Config{MaxCount: 40})
}

func mustMachine(t testing.TB, p int) *bdm.Machine {
	t.Helper()
	m, err := bdm.NewMachine(p, machine.CM5)
	if err != nil {
		t.Fatalf("NewMachine(%d): %v", p, err)
	}
	return m
}

func checkAgainstSequential(t *testing.T, im *image.Image, k, p int) {
	t.Helper()
	m := mustMachine(t, p)
	res, err := Run(m, im, k)
	if err != nil {
		t.Fatalf("Run(n=%d k=%d p=%d): %v", im.N, k, p, err)
	}
	want, err := im.Histogram(k)
	if err != nil {
		t.Fatalf("sequential histogram: %v", err)
	}
	var sum int64
	for i := range want {
		if res.H[i] != want[i] {
			t.Fatalf("n=%d k=%d p=%d: H[%d]=%d, want %d", im.N, k, p, i, res.H[i], want[i])
		}
		sum += res.H[i]
	}
	if sum != int64(im.N)*int64(im.N) {
		t.Fatalf("n=%d k=%d p=%d: histogram sums to %d, want n^2=%d", im.N, k, p, sum, im.N*im.N)
	}
}

func TestRunMatchesSequentialAcrossPandK(t *testing.T) {
	for _, n := range []int{16, 32, 64} {
		for _, p := range []int{1, 2, 4, 8, 16} {
			for _, k := range []int{2, 4, 32, 256} {
				im := image.RandomGrey(n, k, uint64(n*1000+p*10+k))
				checkAgainstSequential(t, im, k, p)
			}
		}
	}
}

func TestRunKSmallerThanP(t *testing.T) {
	// Exercises the truncated-transpose path specifically: k < p.
	im := image.RandomGrey(64, 4, 7)
	checkAgainstSequential(t, im, 4, 16)
	checkAgainstSequential(t, im, 8, 16)
}

func TestRunKEqualP(t *testing.T) {
	im := image.RandomGrey(64, 16, 9)
	checkAgainstSequential(t, im, 16, 16)
}

func TestRunPatternImages(t *testing.T) {
	for _, id := range image.AllPatterns() {
		im := image.Generate(id, 64)
		checkAgainstSequential(t, im, 2, 16)
	}
}

func TestRunDARPAScene(t *testing.T) {
	im := image.DARPAScene(128, 256, 42)
	checkAgainstSequential(t, im, 256, 16)
}

func TestRunRejectsBadK(t *testing.T) {
	im := image.RandomGrey(32, 4, 1)
	m := mustMachine(t, 4)
	for _, k := range []int{0, 1, 3, 12, 100} {
		if _, err := Run(m, im, k); err == nil {
			t.Errorf("Run with k=%d: want error, got nil", k)
		}
	}
}

func TestRunRejectsOutOfRangeGrey(t *testing.T) {
	im := image.RandomGrey(32, 256, 1)
	m := mustMachine(t, 4)
	if _, err := Run(m, im, 16); err == nil {
		t.Error("Run with grey levels above k: want error, got nil")
	}
}

func TestQuickHistogramMatchesSequential(t *testing.T) {
	f := func(seed uint64, pSel, kSel uint8) bool {
		ps := []int{1, 2, 4, 8, 16, 32}
		ks := []int{2, 8, 64, 256}
		p := ps[int(pSel)%len(ps)]
		k := ks[int(kSel)%len(ks)]
		im := image.RandomGrey(32, k, seed)
		m, err := bdm.NewMachine(p, machine.CM5)
		if err != nil {
			return false
		}
		res, err := Run(m, im, k)
		if err != nil {
			return false
		}
		want, err := im.Histogram(k)
		if err != nil {
			return false
		}
		for g := range want {
			if res.H[g] != want[g] {
				return false
			}
		}
		return true
	}
	if err := quickCheck(f); err != nil {
		t.Error(err)
	}
}

func TestCommIndependentOfN(t *testing.T) {
	// Eq. (3): for fixed p and k, Tcomm is independent of the problem
	// size. Communication time should not grow with n.
	k, p := 256, 16
	var prev float64
	for idx, n := range []int{64, 128, 256} {
		im := image.RandomGrey(n, k, uint64(n))
		m := mustMachine(t, p)
		res, err := Run(m, im, k)
		if err != nil {
			t.Fatal(err)
		}
		if idx > 0 && res.Report.CommTime > prev*1.01 {
			t.Errorf("comm time grew with n: n=%d comm=%g, previous %g", n, res.Report.CommTime, prev)
		}
		prev = res.Report.CommTime
	}
}

func TestCompScalesWithN2(t *testing.T) {
	// Tcomp = O(n^2/p + k): quadrupling the pixels should roughly
	// quadruple computation time for large n.
	k, p := 32, 16
	im1 := image.RandomGrey(128, k, 3)
	im2 := image.RandomGrey(256, k, 3)
	m := mustMachine(t, p)
	r1, err := Run(m, im1, k)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(m, im2, k)
	if err != nil {
		t.Fatal(err)
	}
	ratio := r2.Report.CompTime / r1.Report.CompTime
	if ratio < 3.5 || ratio > 4.5 {
		t.Errorf("comp time ratio for 4x pixels = %.2f, want ~4", ratio)
	}
}

func TestDoublingPHalvesTime(t *testing.T) {
	// Figure 3: when the number of processors doubles, the running time
	// approximately halves (large n).
	k := 256
	im := image.RandomGrey(512, k, 5)
	var prev float64
	for idx, p := range []int{4, 8, 16} {
		m := mustMachine(t, p)
		res, err := Run(m, im, k)
		if err != nil {
			t.Fatal(err)
		}
		if idx > 0 {
			ratio := prev / res.Report.SimTime
			if ratio < 1.6 || ratio > 2.4 {
				t.Errorf("p=%d: speedup over previous p = %.2f, want ~2", p, ratio)
			}
		}
		prev = res.Report.SimTime
	}
}
