package hist

import (
	"fmt"

	"parimg/internal/bdm"
	"parimg/internal/comm"
	"parimg/internal/image"
)

// EqualizeResult is the outcome of a parallel histogram equalization.
type EqualizeResult struct {
	// Image is the equalized image.
	Image *image.Image
	// H is the histogram of the input image.
	H []int64
	// Report carries the modeled execution costs of the whole pipeline
	// (histogram + map construction + broadcast + application).
	Report bdm.Report
}

// Equalize runs the paper's motivating application of Section 4 end to end
// on the simulated machine: histogram the image in parallel, build the
// equalization map on processor 0, broadcast it to all processors with the
// two-transposition broadcast of Algorithm 2, and remap every tile
// locally. Background (grey 0) is preserved. The total cost is
// Tcomm = O(tau + k) and Tcomp = O(n^2/p + k), the same shape as
// histogramming itself.
func Equalize(m *bdm.Machine, im *image.Image, k int) (*EqualizeResult, error) {
	if err := checkInput("hist.Equalize", im, k); err != nil {
		return nil, err
	}
	lay, err := image.NewLayout(im.N, m.P())
	if err != nil {
		return nil, fmt.Errorf("hist: %w", err)
	}

	p := m.P()
	tilePix := lay.Q * lay.R
	tiles := bdm.NewSpread[uint32](m, tilePix)
	outTiles := bdm.NewSpread[uint32](m, tilePix)
	for rank := 0; rank < p; rank++ {
		lay.Scatter(im, rank, tiles.Row(rank))
	}

	local := bdm.NewSpread[uint32](m, k)
	trans := bdm.NewSpread[uint32](m, max(k, p))
	combined := bdm.NewSpread[uint32](m, max(k/p, 1))
	hOut := bdm.NewSpread[uint32](m, max(k, p))

	// The broadcast payload must be a multiple of p; pad the LUT.
	lutLen := k
	if lutLen < p {
		lutLen = p
	}
	lut := bdm.NewSpread[uint32](m, lutLen)
	scratch := bdm.NewSpread[uint32](m, lutLen)

	m.Reset()
	report, err := m.Run(func(pr *bdm.Proc) {
		// Phase 1: the histogramming algorithm of Section 4.
		runProc(pr, lay, k, tiles, local, trans, combined, hOut)
		pr.Barrier()

		// Phase 2: processor 0 builds the equalization map in O(k).
		if pr.Rank() == 0 {
			h := hOut.Local(pr)[:k]
			var fg int64
			for g := 1; g < k; g++ {
				fg += int64(h[g])
			}
			l := lut.Local(pr)
			l[0] = 0
			var cum int64
			for g := 1; g < k; g++ {
				if fg == 0 {
					l[g] = uint32(g)
					continue
				}
				cum += int64(h[g])
				l[g] = uint32(1 + (int64(k-2)*cum+fg/2)/fg)
			}
			pr.Work(2 * k)
		}
		pr.Barrier()

		// Phase 3: broadcast the map with Algorithm 2.
		comm.Broadcast(pr, lut, scratch, lutLen, 0)

		// Phase 4: every processor remaps its tile locally.
		src := tiles.Local(pr)
		dst := outTiles.Local(pr)
		l := lut.Local(pr)
		for i, v := range src {
			dst[i] = l[v]
		}
		pr.Work(2 * len(src))
	})
	if err != nil {
		return nil, err
	}

	out := image.New(im.N)
	outLabels := &image.Labels{N: im.N, Lab: out.Pix}
	for rank := 0; rank < p; rank++ {
		lay.GatherLabels(outLabels, rank, outTiles.Row(rank))
	}
	h := make([]int64, k)
	for i, v := range hOut.Row(0)[:k] {
		h[i] = int64(v)
	}
	return &EqualizeResult{Image: out, H: h, Report: report}, nil
}

// OtsuThreshold returns the grey level t that maximizes the between-class
// variance of the histogram's foreground levels (1..k-1): pixels with grey
// level >= t form the bright class. Thresholding an image at t and running
// binary connected components is the classic segmentation front end the
// paper's recognition benchmarks build on. Returns 1 for degenerate
// histograms.
func OtsuThreshold(h []int64) int {
	k := len(h)
	var total, sum int64
	for g := 1; g < k; g++ {
		total += h[g]
		sum += int64(g) * h[g]
	}
	if total == 0 {
		return 1
	}
	var wB, sumB int64 // weight and grey-sum of the class below t
	best, bestT := -1.0, 1
	for t := 2; t < k; t++ {
		wB += h[t-1]
		sumB += int64(t-1) * h[t-1]
		wF := total - wB
		if wB == 0 || wF == 0 {
			continue
		}
		mB := float64(sumB) / float64(wB)
		mF := float64(sum-sumB) / float64(wF)
		between := float64(wB) * float64(wF) * (mB - mF) * (mB - mF)
		if between > best {
			best = between
			bestT = t
		}
	}
	return bestT
}
