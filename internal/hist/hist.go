// Package hist implements the parallel image histogramming algorithm of
// Section 4 of the paper on the bdm runtime.
//
// Given an n x n image with k grey levels on p processors, the algorithm
//
//  1. tallies each processor's q x r tile into a local array Hi[0..k-1],
//  2. rearranges the k x p array of tallies so all counts of a grey level
//     meet on one processor — a truncated transpose when k < p, a transpose
//     of k/p rows per processor when k >= p,
//  3. combines the tallies locally in O(k) operations, and
//  4. collects the k histogram bars onto processor 0 with the circular
//     data movement of Section 2.
//
// The complexities are Tcomm <= 2(tau + k) and Tcomp = O(n^2/p + k),
// Eq. (3): for fixed p and k the communication cost is independent of the
// problem size, so local computation dominates as n grows.
package hist

import (
	"context"
	"fmt"
	"sync"

	"parimg/internal/bdm"
	"parimg/internal/comm"
	"parimg/internal/errs"
	"parimg/internal/image"
	"parimg/internal/seq"
)

// checkInput validates the (image, k) pair every hist entry point shares:
// the image must be structurally valid (Check), k must be a power of two
// >= 2 (the paper's w.l.o.g. assumption), and every pixel must be a grey
// level in [0, k). All failures are typed via the errs taxonomy.
func checkInput(op string, im *image.Image, k int) error {
	if k < 2 || k&(k-1) != 0 {
		return errs.GreyRange(op, k, "k must be a power of two >= 2, got %d", k)
	}
	if err := im.Check(); err != nil {
		return fmt.Errorf("hist: %w", err)
	}
	if int(im.MaxGrey()) >= k {
		return errs.GreyRange(op, k, "image has grey level %d outside [0,%d)", im.MaxGrey(), k)
	}
	return nil
}

// opsPerPixelTally is the abstract operation count charged per pixel in the
// local tally loop (load pixel, index bucket, increment). Machine profiles
// are calibrated against Table 1 with this constant; see package machine.
const opsPerPixelTally = 3

// Result is the outcome of a parallel histogramming run.
type Result struct {
	// H is the k-bar histogram held by processor 0: H[i] is the number
	// of pixels with grey level i.
	H []int64
	// Report is the simulated-cost report of the run.
	Report bdm.Report
}

// histState is the set of spread arrays one histogram run needs; an Engine
// pools them by (image side, k).
type histState struct {
	tiles, local, trans, combined, out *bdm.Spread[uint32]
}

func newHistState(m *bdm.Machine, lay image.Layout, k int) *histState {
	p := m.P()
	return &histState{
		tiles: bdm.NewSpread[uint32](m, lay.Q*lay.R),
		local: bdm.NewSpread[uint32](m, k), // Hi: per-processor tallies
		// trans holds k/p rows of the k x p tally matrix when k >= p,
		// or one whole row (p elements) when k < p.
		trans:    bdm.NewSpread[uint32](m, max(k, p)),
		combined: bdm.NewSpread[uint32](m, max(k/p, 1)),
		// out row 0 receives the final histogram; the collection needs
		// max(k, p) slots because when k < p it reads one word from
		// every processor.
		out: bdm.NewSpread[uint32](m, max(k, p)),
	}
}

// Engine runs the histogramming algorithm repeatedly on one machine with a
// sync.Pool-backed arena of spread arrays keyed by (image side, k), so
// repeated runs do near-zero large allocations. Not safe for concurrent
// use, matching the underlying Machine.
type Engine struct {
	m     *bdm.Machine
	pools map[[2]int]*sync.Pool // {image side, k} -> pool of *histState
}

// NewEngine returns an engine over machine m with an empty arena.
func NewEngine(m *bdm.Machine) *Engine {
	return &Engine{m: m, pools: make(map[[2]int]*sync.Pool)}
}

// Run histograms im with k grey levels on the engine's machine. k must be a
// power of two (the paper's assumption, w.l.o.g.); the image must tile
// evenly on m.P() processors. The image distribution (each processor
// receiving its tile) is performed outside the timed region, as the paper
// assumes the image is already distributed.
func (e *Engine) Run(im *image.Image, k int) (*Result, error) {
	return e.RunContext(context.Background(), im, k)
}

// RunContext is Run with cooperative cancellation: when ctx is canceled or
// its deadline expires, every simulated processor unwinds at its next
// Sync/Barrier checkpoint and the call returns an error wrapping
// errs.ErrCanceled or errs.ErrDeadline.
func (e *Engine) RunContext(ctx context.Context, im *image.Image, k int) (*Result, error) {
	if err := checkInput("hist.Run", im, k); err != nil {
		return nil, err
	}
	m := e.m
	lay, err := image.NewLayout(im.N, m.P())
	if err != nil {
		return nil, fmt.Errorf("hist: %w", err)
	}

	key := [2]int{im.N, k}
	pool := e.pools[key]
	if pool == nil {
		pool = &sync.Pool{New: func() any { return newHistState(m, lay, k) }}
		e.pools[key] = pool
	}
	st := pool.Get().(*histState)
	for rank := 0; rank < m.P(); rank++ {
		lay.Scatter(im, rank, st.tiles.Row(rank))
	}

	m.Reset()
	report, err := m.RunContext(ctx, func(pr *bdm.Proc) {
		runProc(pr, lay, k, st.tiles, st.local, st.trans, st.combined, st.out)
	})
	if err != nil {
		// The state is not returned to the pool: an aborted run leaves the
		// spread arrays mid-rearrangement, and the pool must only hold
		// ready states.
		return nil, err
	}

	h := make([]int64, k)
	for i, v := range st.out.Row(0)[:k] {
		h[i] = int64(v)
	}
	pool.Put(st)
	return &Result{H: h, Report: report}, nil
}

// Run histograms im with k grey levels on machine m with a one-shot Engine.
// Callers that histogram repeatedly should hold an Engine to reuse its
// scratch arena.
func Run(m *bdm.Machine, im *image.Image, k int) (*Result, error) {
	return NewEngine(m).Run(im, k)
}

// markStage mirrors one modeled stage time into the machine's metrics
// recorder. Only rank 0 records, and only with deltas taken at barriers,
// where the equalized clocks make its marks machine-wide (the same
// technique as cc.Breakdown).
func markStage(pr *bdm.Proc, name string, seconds float64) {
	if pr.Rank() != 0 {
		return
	}
	if r := pr.Machine().Observer(); r != nil {
		r.AddModelPhase(name, "", seconds)
	}
}

// runProc is the SPMD body: the per-processor program of the algorithm.
func runProc(pr *bdm.Proc, lay image.Layout, k int,
	tiles, local, trans, combined, out *bdm.Spread[uint32]) {
	p := pr.P()

	// Step 1: local tally of the q x r subimage into Hi[0..k-1].
	hi := local.Local(pr)
	for i := range hi {
		hi[i] = 0
	}
	if err := seq.Histogram(tiles.Local(pr), hi); err != nil {
		// Invariant panic: checkInput verified every grey level fits in
		// k buckets before the SPMD region; Machine.Run's recover turns
		// any violation into bdm.ErrAborted.
		panic(err)
	}
	pr.Work(opsPerPixelTally * lay.Q * lay.R)
	pr.Barrier()
	mark := pr.Elapsed()
	markStage(pr, "tally", mark)

	// Step 2: rearrange so each grey level's tallies meet on one
	// processor.
	if k < p {
		// Truncated transpose: row i (all tallies of grey level i)
		// lands on processor i, for i < k.
		comm.TruncatedTranspose(pr, trans, local, k)
		if pr.Rank() < k {
			var s uint32
			for r := 0; r < p; r++ {
				s += trans.Local(pr)[r]
			}
			combined.Local(pr)[0] = s
			pr.Work(p)
		}
		pr.Barrier()
		markStage(pr, "rearrange_combine", pr.Elapsed()-mark)
		mark = pr.Elapsed()
		// Step 4: collect the k single bars onto processor 0. Only
		// the first k processors hold data; the circular collection
		// reads one word from everyone and processor 0 keeps the
		// first k.
		comm.CollectToZero(pr, out, combined, 1)
		markStage(pr, "collect", pr.Elapsed()-mark)
		return
	}

	// k >= p: transpose k/p rows of the local histograms into each
	// processor, so processor i holds all intermediate sums for grey
	// levels [i*k/p, (i+1)*k/p).
	b := k / p
	comm.Transpose(pr, trans, local, k)
	// Step 3: local combination in O(k) operations. After the
	// transpose, processor i's block holds p sub-blocks of b values;
	// sub-block r contains processor r's tallies of this processor's
	// grey-level range.
	cmb := combined.Local(pr)
	tr := trans.Local(pr)
	for t := 0; t < b; t++ {
		var s uint32
		for r := 0; r < p; r++ {
			s += tr[r*b+t]
		}
		cmb[t] = s
	}
	pr.Work(k)
	pr.Barrier()
	markStage(pr, "rearrange_combine", pr.Elapsed()-mark)
	mark = pr.Elapsed()

	// Step 4: processor 0 prefetches the combined bars with a circular
	// data movement; bars arrive ordered by rank, i.e. by grey level.
	comm.CollectToZero(pr, out, combined, b)
	markStage(pr, "collect", pr.Elapsed()-mark)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
