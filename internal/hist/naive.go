package hist

import (
	"fmt"

	"parimg/internal/bdm"
	"parimg/internal/comm"
	"parimg/internal/image"
	"parimg/internal/seq"
)

// RunNaive histograms im without the paper's transpose-based rearrangement:
// after the local tallies, processor 0 simply pulls every processor's whole
// k-bar array and sums them itself.
//
// The result is identical to Run's, but the communication is
// Tcomm = tau + (p-1)*k at processor 0 (serialized fan-in, growing with p)
// instead of the transpose algorithm's 2(tau + k) (independent of p), and
// the final combine is O(p*k) on one processor instead of O(k) spread over
// all. This is the ablation for the paper's "rearrange so the tallies of
// each grey level reside on the same processor" design (Section 4); see
// BenchmarkAblationHistCollect.
func RunNaive(m *bdm.Machine, im *image.Image, k int) (*Result, error) {
	if err := checkInput("hist.RunNaive", im, k); err != nil {
		return nil, err
	}
	lay, err := image.NewLayout(im.N, m.P())
	if err != nil {
		return nil, fmt.Errorf("hist: %w", err)
	}

	p := m.P()
	tiles := bdm.NewSpread[uint32](m, lay.Q*lay.R)
	for rank := 0; rank < p; rank++ {
		lay.Scatter(im, rank, tiles.Row(rank))
	}
	local := bdm.NewSpread[uint32](m, k)
	gathered := bdm.NewSpread[uint32](m, p*k)
	out := bdm.NewSpread[uint32](m, k)

	m.Reset()
	report, err := m.Run(func(pr *bdm.Proc) {
		hi := local.Local(pr)
		for i := range hi {
			hi[i] = 0
		}
		if err := seq.Histogram(tiles.Local(pr), hi); err != nil {
			// Invariant panic: checkInput verified every grey level
			// fits in k buckets before the SPMD region; Machine.Run's
			// recover turns any violation into bdm.ErrAborted.
			panic(err)
		}
		pr.Work(opsPerPixelTally * lay.Q * lay.R)
		pr.Barrier()

		// Processor 0 collects every whole histogram and combines.
		comm.ReduceSumToZero(pr, out, gathered, local, k)
	})
	if err != nil {
		return nil, err
	}

	h := make([]int64, k)
	for i, v := range out.Row(0)[:k] {
		h[i] = int64(v)
	}
	return &Result{H: h, Report: report}, nil
}
