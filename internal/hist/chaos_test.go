package hist

import (
	"context"
	"errors"
	"testing"
	"time"

	"parimg/internal/errs"
	"parimg/internal/fault"
	"parimg/internal/fault/leakcheck"
	"parimg/internal/image"
)

// requireMatchesSequential runs a fault-free histogram on e and checks it
// against the sequential reference — the "clean call after a fault" half of
// the chaos contract for the simulated backend.
func requireMatchesSequential(t *testing.T, e *Engine, im *image.Image, k int) {
	t.Helper()
	res, err := e.Run(im, k)
	if err != nil {
		t.Fatalf("clean run after fault: %v", err)
	}
	want, err := im.Histogram(k)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if res.H[i] != want[i] {
			t.Fatalf("bucket %d: got %d, want %d after aborted run", i, res.H[i], want[i])
		}
	}
}

// TestRunAbortedByInjectedPanic exercises the ErrAborted recover path of
// hist.Run: a panic inside the SPMD body (here injected at a sync
// checkpoint, the same recover that guards runProc's invariant panics) must
// come back as a typed abort, and the engine — whose pooled state is
// deliberately not returned after an abort — must produce a correct
// histogram on the next call.
func TestRunAbortedByInjectedPanic(t *testing.T) {
	leakcheck.Check(t)
	const k = 16
	im := image.RandomGrey(16, k, 1)
	m := mustMachine(t, 4)
	defer m.Close()
	e := NewEngine(m)
	in := fault.New(1, fault.Panic, 1).At("sync").OnRank(1)
	m.SetFaultInjector(in)
	_, err := e.Run(im, k)
	m.SetFaultInjector(nil)
	if !errors.Is(err, errs.ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted", err)
	}
	var inj *fault.Injected
	if !errors.As(err, &inj) {
		t.Fatalf("err %v does not wrap the injected fault", err)
	}
	if inj.Site.Rank != 1 {
		t.Errorf("fault fired at %v, want rank 1", inj.Site)
	}
	requireMatchesSequential(t, e, im, k)
}

// TestRunAbortedInEveryStage plants the panic at increasing rounds so the
// abort lands in different stages of the algorithm (tally barrier, the
// transpose rounds, the final collection) for both the k >= p and k < p
// layouts; every one must unwind to ErrAborted and leave the engine
// reusable.
func TestRunAbortedInEveryStage(t *testing.T) {
	leakcheck.Check(t)
	for _, k := range []int{2, 64} { // k < p and k >= p layouts
		im := image.RandomGrey(16, k, 2)
		m := mustMachine(t, 4)
		e := NewEngine(m)
		for round := 1; round <= 4; round++ {
			m.SetFaultInjector(fault.New(1, fault.Panic, 1).OnRank(2).OnRound(round))
			_, err := e.Run(im, k)
			m.SetFaultInjector(nil)
			if !errors.Is(err, errs.ErrAborted) {
				t.Fatalf("k=%d round %d: err = %v, want ErrAborted", k, round, err)
			}
			requireMatchesSequential(t, e, im, k)
		}
		m.Close()
	}
}

// TestRunNaiveAbortedByInjectedPanic covers the same recover path in the
// naive ablation, whose SPMD body has its own invariant panic.
func TestRunNaiveAbortedByInjectedPanic(t *testing.T) {
	leakcheck.Check(t)
	const k = 8
	im := image.RandomGrey(16, k, 3)
	m := mustMachine(t, 4)
	defer m.Close()
	m.SetFaultInjector(fault.New(1, fault.Panic, 1).At("barrier").OnRank(3))
	_, err := RunNaive(m, im, k)
	m.SetFaultInjector(nil)
	if !errors.Is(err, errs.ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted", err)
	}
	var inj *fault.Injected
	if !errors.As(err, &inj) {
		t.Fatalf("err %v does not wrap the injected fault", err)
	}
	// A clean naive run after the abort must still be exact.
	res, err := RunNaive(m, im, k)
	if err != nil {
		t.Fatalf("clean naive run after fault: %v", err)
	}
	want, err := im.Histogram(k)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if res.H[i] != want[i] {
			t.Fatalf("bucket %d: got %d, want %d", i, res.H[i], want[i])
		}
	}
}

// TestRunContextDeadlineMidRun forces the deadline to land inside the SPMD
// region with an injected delay longer than the context timeout.
func TestRunContextDeadlineMidRun(t *testing.T) {
	leakcheck.Check(t)
	const k = 16
	im := image.RandomGrey(32, k, 4)
	m := mustMachine(t, 4)
	defer m.Close()
	e := NewEngine(m)
	m.SetFaultInjector(fault.New(1, fault.Delay, 1).
		At("sync").OnRank(0).WithDelay(50 * time.Millisecond))
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, err := e.RunContext(ctx, im, k)
	m.SetFaultInjector(nil)
	if !errors.Is(err, errs.ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want to match context.DeadlineExceeded too", err)
	}
	requireMatchesSequential(t, e, im, k)
}

func TestRunContextPreCanceled(t *testing.T) {
	leakcheck.Check(t)
	const k = 4
	im := image.RandomGrey(16, k, 5)
	m := mustMachine(t, 2)
	defer m.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := NewEngine(m).RunContext(ctx, im, k); !errors.Is(err, errs.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}
