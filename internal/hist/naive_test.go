package hist

import (
	"testing"

	"parimg/internal/bdm"
	"parimg/internal/image"
	"parimg/internal/machine"
)

func TestRunNaiveMatchesRun(t *testing.T) {
	for _, p := range []int{1, 4, 16} {
		for _, k := range []int{4, 256} {
			im := image.RandomGrey(64, k, uint64(p+k))
			m := mustMachine(t, p)
			a, err := Run(m, im, k)
			if err != nil {
				t.Fatal(err)
			}
			b, err := RunNaive(m, im, k)
			if err != nil {
				t.Fatal(err)
			}
			for g := range a.H {
				if a.H[g] != b.H[g] {
					t.Fatalf("p=%d k=%d: bar %d differs: %d vs %d", p, k, g, a.H[g], b.H[g])
				}
			}
		}
	}
}

func TestNaiveCommGrowsWithP(t *testing.T) {
	// The ablation's point: the naive fan-in communication grows with p
	// while the transpose algorithm's stays flat (Eq. (3)).
	k := 256
	im := image.RandomGrey(256, k, 3)
	commAt := func(naive bool, p int) float64 {
		m, err := bdm.NewMachine(p, machine.CM5)
		if err != nil {
			t.Fatal(err)
		}
		var res *Result
		if naive {
			res, err = RunNaive(m, im, k)
		} else {
			res, err = Run(m, im, k)
		}
		if err != nil {
			t.Fatal(err)
		}
		return res.Report.CommTime
	}
	if r := commAt(true, 64) / commAt(true, 4); r < 4 {
		t.Errorf("naive comm grew only %.2fx from p=4 to p=64, want >4x", r)
	}
	if r := commAt(false, 64) / commAt(false, 4); r > 1.5 {
		t.Errorf("transpose-based comm grew %.2fx from p=4 to p=64, want ~flat", r)
	}
	if commAt(true, 64) < 2*commAt(false, 64) {
		t.Error("naive collection should cost much more than the transpose at p=64")
	}
}

func TestRunNaiveValidation(t *testing.T) {
	m := mustMachine(t, 4)
	if _, err := RunNaive(m, image.RandomGrey(32, 4, 1), 3); err == nil {
		t.Error("bad k: want error")
	}
	if _, err := RunNaive(m, image.RandomGrey(32, 256, 1), 16); err == nil {
		t.Error("grey out of range: want error")
	}
}
