package bdm

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGetWChargesWiderElements(t *testing.T) {
	m := mustMachine(t, 2, testCost)
	s := NewSpread[uint64](m, 10)
	for i := range s.Row(1) {
		s.Row(1)[i] = uint64(i) << 32
	}
	rep, err := m.Run(func(p *Proc) {
		if p.Rank() == 0 {
			dst := make([]uint64, 10)
			GetW(p, dst, s, 1, 0, 2) // 64-bit elements = 2 words each
			p.Sync()
			for i, v := range dst {
				if v != uint64(i)<<32 {
					t.Errorf("dst[%d] = %x", i, v)
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	want := testCost.Tau + 20*testCost.SecPerWord
	if math.Abs(rep.CommTime-want) > 1e-12 {
		t.Errorf("CommTime = %g, want %g", rep.CommTime, want)
	}
	if rep.Words != 20 {
		t.Errorf("Words = %d, want 20", rep.Words)
	}
}

func TestPendingAccounting(t *testing.T) {
	m := mustMachine(t, 2, testCost)
	s := NewSpread[uint32](m, 16)
	if _, err := m.Run(func(p *Proc) {
		if p.Rank() != 0 {
			return
		}
		gets, words := p.Pending()
		if gets != 0 || words != 0 {
			t.Errorf("fresh proc pending = (%d, %d)", gets, words)
		}
		dst := make([]uint32, 4)
		Get(p, dst, s, 1, 0)
		Get(p, dst, s, 1, 4)
		gets, words = p.Pending()
		if gets != 2 || words != 8 {
			t.Errorf("pending = (%d, %d), want (2, 8)", gets, words)
		}
		p.Sync()
		gets, words = p.Pending()
		if gets != 0 || words != 0 {
			t.Errorf("pending after Sync = (%d, %d)", gets, words)
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestElapsedAndMeterProgress(t *testing.T) {
	m := mustMachine(t, 1, testCost)
	if _, err := m.Run(func(p *Proc) {
		if p.Elapsed() != 0 {
			t.Errorf("initial Elapsed = %g", p.Elapsed())
		}
		p.Work(100)
		if got := p.Elapsed(); math.Abs(got-100*testCost.SecPerOp) > 1e-15 {
			t.Errorf("Elapsed after Work = %g", got)
		}
		meter := p.Meter()
		if meter.Ops != 100 {
			t.Errorf("Ops = %d", meter.Ops)
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestWorkIgnoresNonPositive(t *testing.T) {
	m := mustMachine(t, 1, testCost)
	rep, err := m.Run(func(p *Proc) {
		p.Work(0)
		p.Work(-5)
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.CompTime != 0 || rep.Ops != 0 {
		t.Errorf("non-positive Work charged: %+v", rep)
	}
}

func TestNewSpreadPanicsOnNegative(t *testing.T) {
	m := mustMachine(t, 2, testCost)
	defer func() {
		if recover() == nil {
			t.Error("want panic for negative size")
		}
	}()
	NewSpread[uint32](m, -1)
}

func TestSpreadZeroSize(t *testing.T) {
	m := mustMachine(t, 4, testCost)
	s := NewSpread[uint32](m, 0)
	if s.PerProc() != 0 {
		t.Errorf("PerProc = %d", s.PerProc())
	}
}

// TestQuickGetRoundTrip: any block written through Put is read back
// identically through Get, regardless of offsets, and the charge matches
// the element count.
func TestQuickGetRoundTrip(t *testing.T) {
	f := func(data []uint32, offSel uint8) bool {
		if len(data) > 64 {
			data = data[:64]
		}
		off := int(offSel) % 32
		m, err := NewMachine(2, testCost)
		if err != nil {
			return false
		}
		s := NewSpread[uint32](m, 128)
		ok := true
		if _, err := m.Run(func(p *Proc) {
			if p.Rank() == 0 {
				Put(p, s, 1, off, data)
			}
			p.Barrier()
			if p.Rank() == 1 {
				got := make([]uint32, len(data))
				Get(p, got, s, 1, off) // local read
				for i := range data {
					if got[i] != data[i] {
						ok = false
					}
				}
			}
		}); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
