package bdm

import (
	"sync/atomic"
	"time"

	"parimg/internal/fault"
)

// Proc is the per-processor handle passed to the SPMD body. All methods must
// be called only from the goroutine that owns the Proc, except the passive
// traffic counter, which other processors update atomically when they pull
// data from (or push data into) this processor's memory.
type Proc struct {
	m    *Machine
	rank int

	meter Meter

	// Outstanding split-phase traffic since the last Sync.
	pendingWords int64
	pendingGets  int

	// activeEpochWords counts words this processor actively moved (paid
	// for at Sync) since the last barrier. passiveWords counts words
	// other processors moved in or out of this processor's memory in
	// the same epoch. The model assumes full-duplex links: passive
	// traffic is free while it overlaps the processor's own transfers,
	// and only the excess max(0, passive-active) is charged at the next
	// barrier. This reproduces Eq. (1) (a balanced transpose costs one
	// side only) while still exposing fan-out congestion such as a
	// group manager serving its whole client set (Eq. (8) vs Eq. (10)).
	activeEpochWords int64
	passiveWords     atomic.Int64

	// spans holds the activity trace when the machine has tracing on.
	spans []Span

	// commLabel names the communication primitive or algorithm region in
	// flight; Sync attributes its tau and word charges to this label when
	// the machine has an observer installed.
	commLabel string

	// faultSeq counts checkpoint executions on this processor within the
	// current run, giving the fault injector its per-rank round number.
	// Only advanced while an injector is installed.
	faultSeq int
}

// Rank returns this processor's number in 0..P-1.
func (p *Proc) Rank() int { return p.rank }

// P returns the number of processors on the machine.
func (p *Proc) P() int { return p.m.p }

// Machine returns the machine this processor belongs to.
func (p *Proc) Machine() *Machine { return p.m }

// Work charges n abstract local RAM operations to this processor's
// computation meter. Algorithms call Work with the dominant term of their
// local loops, mirroring the Tcomp accounting of the paper. Negative or zero
// n is a no-op.
func (p *Proc) Work(n int) {
	if n <= 0 {
		return
	}
	dt := float64(n) * p.m.cost.SecPerOp
	p.recordSpan(p.meter.Now, p.meter.Now+dt, SpanComp)
	p.meter.Comp += dt
	p.meter.Now += dt
	p.meter.Ops += int64(n)
}

// checkpoint is the cooperative cancellation and fault-injection point,
// executed by every Sync, Barrier and explicit Checkpoint. When the machine
// has been aborted (panic elsewhere, context expiry, watchdog stall) it
// unwinds the processor with abortPanic; when a fault injector is installed
// it lets the injector panic, delay, or park this processor. Cost with no
// injector: one atomic load and one nil check.
func (p *Proc) checkpoint(site string) {
	m := p.m
	if m.stop.Load() {
		panic(abortPanic{})
	}
	if m.injector != nil {
		p.inject(site)
	}
}

// inject consults the machine's fault injector for this checkpoint
// execution and carries out its decision.
func (p *Proc) inject(site string) {
	p.faultSeq++
	act := p.m.injector.Decide(fault.Site{Name: site, Rank: p.rank, Round: p.faultSeq})
	switch act.Class {
	case fault.Panic:
		panic(&fault.Injected{Site: fault.Site{Name: site, Rank: p.rank, Round: p.faultSeq}})
	case fault.Delay:
		time.Sleep(act.Delay)
	case fault.NoShow:
		if !p.m.cancelable {
			// Nothing — no context, no watchdog — could ever tear this
			// run down; parking would deadlock the test instead of
			// exercising it. Degrade to a panic that names the problem.
			panic(&fault.Injected{Site: fault.Site{Name: site + " (no-show without watchdog or context)",
				Rank: p.rank, Round: p.faultSeq}})
		}
		p.m.bar.noShow()
	}
}

// Checkpoint is an explicit cooperative cancellation and fault-injection
// point. Long local loops that neither Sync nor Barrier (e.g. the rounds of
// a collective's prefetch schedule) call it so a canceled run unwinds
// promptly instead of at the next synchronization.
func (p *Proc) Checkpoint() {
	site := p.commLabel
	if site == "" {
		site = "checkpoint"
	}
	p.checkpoint(site)
}

// Sync completes all outstanding split-phase prefetches, charging the BDM
// cost tau + m word-times for the batch (m = words outstanding). A Sync with
// nothing outstanding is free, matching the model's treatment of pipelined
// prefetch reads. This is the analogue of Split-C's sync().
//
// Every Sync is also a cancellation checkpoint — including an empty one —
// so a canceled machine unwinds its processors at the next Sync no matter
// whether traffic is outstanding.
func (p *Proc) Sync() {
	p.checkpoint("sync")
	if p.pendingGets == 0 {
		return
	}
	dt := p.m.cost.Tau + float64(p.pendingWords)*p.m.cost.SecPerWord
	p.recordSpan(p.meter.Now, p.meter.Now+dt, SpanComm)
	p.meter.Comm += dt
	p.meter.Now += dt
	p.meter.Words += p.pendingWords
	p.meter.Syncs++
	p.activeEpochWords += p.pendingWords
	if r := p.m.observer; r != nil {
		r.AddComm(p.commLabel, 1, p.pendingWords)
	}
	p.pendingWords = 0
	p.pendingGets = 0
}

// SetCommLabel names the communication primitive or algorithm region the
// processor is about to perform (e.g. "transpose", "border_fetch") and
// returns the previous label so callers can restore it. The label scopes
// the machine observer's per-primitive tau/word accounting; with no
// observer installed it is a plain field write. Must be called from the
// processor's own goroutine, like every other Proc method.
func (p *Proc) SetCommLabel(label string) (prev string) {
	prev = p.commLabel
	p.commLabel = label
	return prev
}

// Pending returns the number of outstanding prefetch operations and the
// words they will move, for testing and instrumentation.
func (p *Proc) Pending() (gets int, words int64) {
	return p.pendingGets, int64(p.pendingWords)
}

// Barrier blocks until every processor on the machine has called Barrier,
// then equalizes all simulated clocks to the maximum and charges the
// machine's barrier cost. This is the analogue of Split-C's barrier().
//
// Outstanding prefetches are implicitly completed first (a barrier is a
// stronger synchronization than sync()).
func (p *Proc) Barrier() {
	p.Sync()
	m := p.m
	if m.injector != nil {
		// A distinct site from Sync's, so a no-show can be planted at
		// the barrier itself: the processor then parks before joining
		// the count and the stall watchdog reports it missing.
		p.inject("barrier")
	}
	m.bar.await(p.rank, func() {
		// Runs on the last arriver with everyone else parked inside
		// the barrier, so it may touch all meters.
		m.settleAndEqualize(true)
	})
}

// Meter returns a copy of this processor's cost meter.
func (p *Proc) Meter() Meter { return p.meter }

// Elapsed returns this processor's current simulated clock in seconds.
func (p *Proc) Elapsed() float64 { return p.meter.Now }

// ChargeTransfer records a split-phase transfer of the given number of
// 32-bit words from processor srcRank into this processor, completed at
// the next Sync/Barrier. It is the explicit-accounting escape hatch for
// payloads that travel through host memory rather than a Spread (e.g.
// variable-length record lists); srcRank is charged as the passive party.
// Charging a transfer from oneself is a no-op (local access is free).
func (p *Proc) ChargeTransfer(srcRank, words int) {
	if srcRank == p.rank || words <= 0 {
		return
	}
	p.chargeGet(words)
	p.m.procs[srcRank].passiveWords.Add(int64(words))
}

// chargeGet records a split-phase transfer of the given number of 32-bit
// words with a remote processor. Local accesses are free and never reach
// this method.
func (p *Proc) chargeGet(words int) {
	if words <= 0 {
		return
	}
	p.pendingWords += int64(words)
	p.pendingGets++
}
