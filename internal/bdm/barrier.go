package bdm

import "sync"

// barrier is a reusable counting barrier for n participants with abort
// support. The last arriver runs a critical action (clock equalization)
// while all other participants are parked, which gives that action exclusive
// access to their state with the necessary happens-before edges.
type barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	n       int
	count   int
	gen     uint64
	aborted bool
}

// abortPanic is the sentinel thrown through processor bodies when the SPMD
// program is aborted (e.g. another processor panicked). Run recovers it.
type abortPanic struct{}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// await blocks until all n participants have called await for the current
// generation. The last arriver runs onLast (with the barrier lock held and
// every other participant parked) before releasing everyone.
func (b *barrier) await(onLast func()) {
	b.mu.Lock()
	if b.aborted {
		b.mu.Unlock()
		panic(abortPanic{})
	}
	g := b.gen
	b.count++
	if b.count == b.n {
		if onLast != nil {
			onLast()
		}
		b.count = 0
		b.gen++
		b.mu.Unlock()
		b.cond.Broadcast()
		return
	}
	for b.gen == g && !b.aborted {
		b.cond.Wait()
	}
	aborted := b.aborted
	b.mu.Unlock()
	if aborted {
		panic(abortPanic{})
	}
}

// abort releases all parked participants; they panic with abortPanic, which
// unwinds their bodies back to Run.
func (b *barrier) abort() {
	b.mu.Lock()
	b.aborted = true
	b.mu.Unlock()
	b.cond.Broadcast()
}

// reset restores the barrier for reuse. It must only be called when no
// participant is inside await.
func (b *barrier) reset() {
	b.mu.Lock()
	b.count = 0
	b.gen++
	b.aborted = false
	b.mu.Unlock()
}
