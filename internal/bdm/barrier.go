package bdm

import (
	"sync"
	"time"
)

// barrier is a reusable counting barrier for n participants with abort
// support. The last arriver runs a critical action (clock equalization)
// while all other participants are parked, which gives that action exclusive
// access to their state with the necessary happens-before edges.
//
// With a stall deadline configured the barrier also runs a watchdog: a
// timer armed when the first participant of a generation arrives. If the
// generation does not complete before the deadline, the watchdog reports
// which ranks arrived and which did not through the onStall callback
// (which is expected to abort the machine) instead of letting the run
// deadlock on a processor that never shows up.
type barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	n       int
	count   int
	gen     uint64
	aborted bool

	// Watchdog state; inert (and allocation-free per await) when stall
	// is zero.
	stall   time.Duration
	arrived []bool
	timer   *time.Timer
	onStall func(arrived, missing []int)
}

// abortPanic is the sentinel thrown through processor bodies when the SPMD
// program is aborted (e.g. another processor panicked). Run recovers it.
type abortPanic struct{}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// setStall configures (or, with d == 0, disables) the stall watchdog. Must
// not be called while a run is in flight.
func (b *barrier) setStall(d time.Duration, onStall func(arrived, missing []int)) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.stall = d
	b.onStall = onStall
	if d > 0 && b.arrived == nil {
		b.arrived = make([]bool, b.n)
	}
}

// await blocks until all n participants have called await for the current
// generation. The last arriver runs onLast (with the barrier lock held and
// every other participant parked) before releasing everyone. rank is the
// caller's processor rank, used only by the stall watchdog's diagnostics.
func (b *barrier) await(rank int, onLast func()) {
	b.mu.Lock()
	if b.aborted {
		b.mu.Unlock()
		panic(abortPanic{})
	}
	g := b.gen
	if b.stall > 0 {
		if b.count == 0 {
			b.armWatchdog(g)
		}
		b.arrived[rank] = true
	}
	b.count++
	if b.count == b.n {
		b.disarmWatchdog()
		if onLast != nil {
			onLast()
		}
		b.count = 0
		b.gen++
		b.mu.Unlock()
		b.cond.Broadcast()
		return
	}
	for b.gen == g && !b.aborted {
		b.cond.Wait()
	}
	aborted := b.aborted
	b.mu.Unlock()
	if aborted {
		panic(abortPanic{})
	}
}

// armWatchdog starts the stall timer for generation g. Caller holds b.mu.
func (b *barrier) armWatchdog(g uint64) {
	b.timer = time.AfterFunc(b.stall, func() { b.stalled(g) })
}

// disarmWatchdog stops the pending stall timer and clears the arrival
// tracking for the next generation. Caller holds b.mu.
func (b *barrier) disarmWatchdog() {
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	if b.stall > 0 {
		for i := range b.arrived {
			b.arrived[i] = false
		}
	}
}

// stalled fires when generation g did not complete within the stall
// deadline. It snapshots the arrival sets and invokes onStall outside the
// lock (the callback aborts the machine, which re-enters b.abort).
func (b *barrier) stalled(g uint64) {
	b.mu.Lock()
	if b.gen != g || b.aborted || b.count == 0 {
		// The generation completed (or the run was torn down) between the
		// timer firing and this callback acquiring the lock.
		b.mu.Unlock()
		return
	}
	arrived := make([]int, 0, b.count)
	missing := make([]int, 0, b.n-b.count)
	for r, ok := range b.arrived {
		if ok {
			arrived = append(arrived, r)
		} else {
			missing = append(missing, r)
		}
	}
	cb := b.onStall
	b.mu.Unlock()
	if cb != nil {
		cb(arrived, missing)
	}
}

// abort releases all parked participants; they panic with abortPanic, which
// unwinds their bodies back to Run. noShow parkers are released the same
// way.
func (b *barrier) abort() {
	b.mu.Lock()
	b.aborted = true
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	b.mu.Unlock()
	b.cond.Broadcast()
}

// noShow parks the caller until the run is aborted, then unwinds it with
// abortPanic like any other released waiter. It deliberately does not join
// the barrier count: to the other participants this rank simply never
// arrives, which is the fault the stall watchdog exists to catch.
func (b *barrier) noShow() {
	b.mu.Lock()
	for !b.aborted {
		b.cond.Wait()
	}
	b.mu.Unlock()
	panic(abortPanic{})
}

// reset restores the barrier for reuse. It must only be called when no
// participant is inside await.
func (b *barrier) reset() {
	b.mu.Lock()
	b.count = 0
	b.gen++
	b.aborted = false
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	for i := range b.arrived {
		b.arrived[i] = false
	}
	b.mu.Unlock()
}
