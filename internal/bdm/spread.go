package bdm

import "fmt"

// Spread is a distributed array in the machine's single global address
// space: each processor owns one block (row) of perProc elements, the
// analogue of a Split-C spread array.
//
// A processor accesses its own row directly and for free through Local.
// Remote rows are reached with Get/Put, which copy immediately but charge
// the transfer as an outstanding split-phase operation completed at the next
// Sync or Barrier — exactly the ":=" prefetch discipline the paper's
// algorithms are written in. Programs are responsible for separating remote
// reads from conflicting writes with barriers, as on a real machine.
type Spread[T any] struct {
	m    *Machine
	rows [][]T
	flat []T
}

// NewSpread allocates a spread array with perProc elements per processor in
// one contiguous allocation.
func NewSpread[T any](m *Machine, perProc int) *Spread[T] {
	if perProc < 0 {
		// Invariant panic: spread sizes derive from validated layouts.
		panic(fmt.Sprintf("bdm: negative spread size %d", perProc))
	}
	flat := make([]T, m.p*perProc)
	rows := make([][]T, m.p)
	for i := range rows {
		rows[i] = flat[i*perProc : (i+1)*perProc : (i+1)*perProc]
	}
	return &Spread[T]{m: m, rows: rows, flat: flat}
}

// PerProc returns the number of elements owned by each processor.
func (s *Spread[T]) PerProc() int {
	if len(s.rows) == 0 {
		return 0
	}
	return len(s.rows[0])
}

// Row returns processor rank's block. Calling it for a remote rank bypasses
// cost accounting; SPMD algorithm code should use Local/Get/Put instead.
// It is intended for setup and verification code outside the simulated run.
func (s *Spread[T]) Row(rank int) []T { return s.rows[rank] }

// Local returns the calling processor's own block. Local access is free in
// the BDM model.
func (s *Spread[T]) Local(p *Proc) []T { return s.rows[p.rank] }

// Get prefetches len(dst) elements starting at srcOff in processor srcRank's
// block of s into dst. If srcRank is the caller the access is local and
// free; otherwise one word per element is charged to the outstanding
// split-phase batch (use GetW for wider elements). The data is available in
// dst immediately, but its cost is only incurred at the next Sync/Barrier,
// matching the BDM pipelined-prefetch rule.
func Get[T any](p *Proc, dst []T, s *Spread[T], srcRank, srcOff int) {
	copy(dst, s.rows[srcRank][srcOff:srcOff+len(dst)])
	if srcRank != p.rank {
		p.chargeGet(len(dst))
		s.m.procs[srcRank].passiveWords.Add(int64(len(dst)))
	}
}

// GetW is Get with an explicit words-per-element factor for element types
// wider than one 32-bit word.
func GetW[T any](p *Proc, dst []T, s *Spread[T], srcRank, srcOff, wordsPerElem int) {
	copy(dst, s.rows[srcRank][srcOff:srcOff+len(dst)])
	if srcRank != p.rank {
		p.chargeGet(len(dst) * wordsPerElem)
		s.m.procs[srcRank].passiveWords.Add(int64(len(dst) * wordsPerElem))
	}
}

// Put stores src into processor dstRank's block at dstOff. Remote stores are
// charged like prefetches (one word per element); they are split-phase and
// complete at the next Sync/Barrier.
func Put[T any](p *Proc, s *Spread[T], dstRank, dstOff int, src []T) {
	copy(s.rows[dstRank][dstOff:dstOff+len(src)], src)
	if dstRank != p.rank {
		p.chargeGet(len(src))
		s.m.procs[dstRank].passiveWords.Add(int64(len(src)))
	}
}

// GetScalar reads one element from a remote (or local) block.
func GetScalar[T any](p *Proc, s *Spread[T], srcRank, srcOff int) T {
	v := s.rows[srcRank][srcOff]
	if srcRank != p.rank {
		p.chargeGet(1)
		s.m.procs[srcRank].passiveWords.Add(1)
	}
	return v
}

// PutScalar writes one element into a remote (or local) block.
func PutScalar[T any](p *Proc, s *Spread[T], dstRank, dstOff int, v T) {
	s.rows[dstRank][dstOff] = v
	if dstRank != p.rank {
		p.chargeGet(1)
		s.m.procs[dstRank].passiveWords.Add(1)
	}
}
