package bdm

import (
	"errors"
	"math"
	"sync/atomic"
	"testing"
)

var testCost = CostParams{
	Name:        "test",
	Tau:         1e-5,
	SecPerWord:  1e-6,
	SecPerOp:    1e-7,
	BarrierCost: 1e-6,
}

func mustMachine(t testing.TB, p int, c CostParams) *Machine {
	t.Helper()
	m, err := NewMachine(p, c)
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	return m
}

func TestNewMachineValidation(t *testing.T) {
	if _, err := NewMachine(0, testCost); err == nil {
		t.Error("p=0: want error")
	}
	if _, err := NewMachine(-3, testCost); err == nil {
		t.Error("p=-3: want error")
	}
	bad := testCost
	bad.Tau = -1
	if _, err := NewMachine(4, bad); err == nil {
		t.Error("negative tau: want error")
	}
}

func TestRunExecutesEveryProcessorOnce(t *testing.T) {
	m := mustMachine(t, 8, testCost)
	var counts [8]atomic.Int32
	if _, err := m.Run(func(p *Proc) {
		counts[p.Rank()].Add(1)
		if p.P() != 8 {
			t.Errorf("P() = %d, want 8", p.P())
		}
	}); err != nil {
		t.Fatal(err)
	}
	for i := range counts {
		if got := counts[i].Load(); got != 1 {
			t.Errorf("processor %d ran %d times", i, got)
		}
	}
}

func TestWorkChargesComputation(t *testing.T) {
	m := mustMachine(t, 2, testCost)
	rep, err := m.Run(func(p *Proc) {
		if p.Rank() == 0 {
			p.Work(1000)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 1000 * testCost.SecPerOp
	if math.Abs(rep.CompTime-want) > 1e-12 {
		t.Errorf("CompTime = %g, want %g", rep.CompTime, want)
	}
	// SimTime equals the slowest processor (equalization at the end).
	if math.Abs(rep.SimTime-want) > 1e-12 {
		t.Errorf("SimTime = %g, want %g", rep.SimTime, want)
	}
	if rep.Ops != 1000 {
		t.Errorf("Ops = %d, want 1000", rep.Ops)
	}
}

func TestSyncChargesTauPlusWords(t *testing.T) {
	m := mustMachine(t, 2, testCost)
	s := NewSpread[uint32](m, 100)
	for i := range s.Row(1) {
		s.Row(1)[i] = uint32(i)
	}
	rep, err := m.Run(func(p *Proc) {
		if p.Rank() == 0 {
			dst := make([]uint32, 60)
			Get(p, dst[:30], s, 1, 0)
			Get(p, dst[30:], s, 1, 30)
			p.Sync()
			for i, v := range dst {
				if v != uint32(i) {
					t.Errorf("dst[%d] = %d", i, v)
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Two pipelined prefetches, one Sync: tau + 60 words.
	want := testCost.Tau + 60*testCost.SecPerWord
	if math.Abs(rep.CommTime-want) > 1e-12 {
		t.Errorf("CommTime = %g, want %g", rep.CommTime, want)
	}
	if rep.Words != 60 {
		t.Errorf("Words = %d, want 60", rep.Words)
	}
}

func TestLocalAccessIsFree(t *testing.T) {
	m := mustMachine(t, 2, testCost)
	s := NewSpread[uint32](m, 10)
	rep, err := m.Run(func(p *Proc) {
		dst := make([]uint32, 10)
		Get(p, dst, s, p.Rank(), 0)
		p.Sync()
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.CommTime != 0 {
		t.Errorf("CommTime = %g, want 0 for local access", rep.CommTime)
	}
}

func TestEmptySyncIsFree(t *testing.T) {
	m := mustMachine(t, 2, testCost)
	rep, err := m.Run(func(p *Proc) {
		p.Sync()
		p.Sync()
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.CommTime != 0 {
		t.Errorf("CommTime = %g, want 0", rep.CommTime)
	}
}

func TestBarrierEqualizesClocks(t *testing.T) {
	m := mustMachine(t, 4, testCost)
	rep, err := m.Run(func(p *Proc) {
		p.Work(100 * (p.Rank() + 1))
		p.Barrier()
		// After the barrier all clocks agree; everyone then adds the
		// same work, so the final times stay equal.
		p.Work(50)
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 400*testCost.SecPerOp + testCost.BarrierCost + 50*testCost.SecPerOp
	if math.Abs(rep.SimTime-want) > 1e-12 {
		t.Errorf("SimTime = %g, want %g", rep.SimTime, want)
	}
	for i, pm := range rep.Procs {
		if math.Abs(pm.Now-want) > 1e-12 {
			t.Errorf("proc %d clock = %g, want %g", i, pm.Now, want)
		}
		if pm.Bars != 1 {
			t.Errorf("proc %d barriers = %d, want 1", i, pm.Bars)
		}
	}
	// Fastest processor waited for the slowest.
	if w := rep.Procs[0].Wait; math.Abs(w-300*testCost.SecPerOp) > 1e-12 {
		t.Errorf("proc 0 wait = %g, want %g", w, 300*testCost.SecPerOp)
	}
}

func TestBarrierImpliesSync(t *testing.T) {
	m := mustMachine(t, 2, testCost)
	s := NewSpread[uint32](m, 8)
	rep, err := m.Run(func(p *Proc) {
		if p.Rank() == 0 {
			dst := make([]uint32, 8)
			Get(p, dst, s, 1, 0)
			p.Barrier() // no explicit Sync
		} else {
			p.Barrier()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	want := testCost.Tau + 8*testCost.SecPerWord
	if math.Abs(rep.CommTime-want) > 1e-12 {
		t.Errorf("CommTime = %g, want %g", rep.CommTime, want)
	}
}

func TestPassiveExcessCharged(t *testing.T) {
	// Processor 0 pulls 100 words from each of processors 1..3. Each
	// source is passive for 100 words with no active traffic of its
	// own, so each is charged 100 word-times at the barrier; processor
	// 0 pays tau + 300.
	m := mustMachine(t, 4, testCost)
	s := NewSpread[uint32](m, 100)
	rep, err := m.Run(func(p *Proc) {
		if p.Rank() == 0 {
			dst := make([]uint32, 100)
			for r := 1; r < 4; r++ {
				Get(p, dst, s, r, 0)
			}
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	p0 := testCost.Tau + 300*testCost.SecPerWord
	if math.Abs(rep.Procs[0].Comm-p0) > 1e-12 {
		t.Errorf("proc 0 comm = %g, want %g", rep.Procs[0].Comm, p0)
	}
	for r := 1; r < 4; r++ {
		want := 100 * testCost.SecPerWord
		if math.Abs(rep.Procs[r].Comm-want) > 1e-12 {
			t.Errorf("proc %d comm = %g, want %g (passive excess)", r, rep.Procs[r].Comm, want)
		}
	}
}

func TestPassiveOverlapsActive(t *testing.T) {
	// A balanced pairwise exchange: each processor pulls 50 words from
	// the other. Passive (50) <= active (50), so no excess is charged
	// and each pays exactly tau + 50 — the full-duplex assumption of
	// Eq. (1).
	m := mustMachine(t, 2, testCost)
	s := NewSpread[uint32](m, 50)
	rep, err := m.Run(func(p *Proc) {
		dst := make([]uint32, 50)
		Get(p, dst, s, 1-p.Rank(), 0)
		p.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	want := testCost.Tau + 50*testCost.SecPerWord
	for r := 0; r < 2; r++ {
		if math.Abs(rep.Procs[r].Comm-want) > 1e-12 {
			t.Errorf("proc %d comm = %g, want %g", r, rep.Procs[r].Comm, want)
		}
	}
}

func TestPutChargesSenderAndReceiver(t *testing.T) {
	m := mustMachine(t, 2, testCost)
	s := NewSpread[uint32](m, 10)
	rep, err := m.Run(func(p *Proc) {
		if p.Rank() == 0 {
			src := []uint32{1, 2, 3}
			Put(p, s, 1, 0, src)
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Row(1)[0:3]; got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("Put did not store: %v", got)
	}
	want0 := testCost.Tau + 3*testCost.SecPerWord
	if math.Abs(rep.Procs[0].Comm-want0) > 1e-12 {
		t.Errorf("sender comm = %g, want %g", rep.Procs[0].Comm, want0)
	}
	want1 := 3 * testCost.SecPerWord
	if math.Abs(rep.Procs[1].Comm-want1) > 1e-12 {
		t.Errorf("receiver comm = %g, want %g", rep.Procs[1].Comm, want1)
	}
}

func TestScalarAccessors(t *testing.T) {
	m := mustMachine(t, 2, testCost)
	s := NewSpread[uint32](m, 4)
	if _, err := m.Run(func(p *Proc) {
		if p.Rank() == 0 {
			PutScalar(p, s, 1, 2, 77)
		}
		p.Barrier()
		if p.Rank() == 1 {
			if v := GetScalar(p, s, 1, 2); v != 77 {
				t.Errorf("GetScalar = %d, want 77", v)
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestPanicAborts(t *testing.T) {
	m := mustMachine(t, 4, testCost)
	_, err := m.Run(func(p *Proc) {
		if p.Rank() == 2 {
			panic("boom")
		}
		p.Barrier() // would deadlock without abort propagation
	})
	if err == nil {
		t.Fatal("want error from panicking processor")
	}
	if !errors.Is(err, ErrAborted) {
		t.Errorf("error %v does not wrap ErrAborted", err)
	}
	// The machine is reusable after Reset.
	m.Reset()
	if _, err := m.Run(func(p *Proc) { p.Barrier() }); err != nil {
		t.Fatalf("Run after Reset: %v", err)
	}
}

func TestResetZeroesMeters(t *testing.T) {
	m := mustMachine(t, 2, testCost)
	if _, err := m.Run(func(p *Proc) { p.Work(100); p.Barrier() }); err != nil {
		t.Fatal(err)
	}
	m.Reset()
	rep, err := m.Run(func(p *Proc) {})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SimTime != 0 || rep.Ops != 0 || rep.Words != 0 {
		t.Errorf("after Reset: %+v", rep)
	}
}

func TestMultipleBarriers(t *testing.T) {
	m := mustMachine(t, 8, testCost)
	rep, err := m.Run(func(p *Proc) {
		for i := 0; i < 50; i++ {
			p.Barrier()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, pm := range rep.Procs {
		if pm.Bars != 50 {
			t.Errorf("proc %d barriers = %d, want 50", i, pm.Bars)
		}
	}
	want := 50 * testCost.BarrierCost
	if math.Abs(rep.SimTime-want) > 1e-12 {
		t.Errorf("SimTime = %g, want %g", rep.SimTime, want)
	}
}

func TestSpreadRowsDisjoint(t *testing.T) {
	m := mustMachine(t, 4, testCost)
	s := NewSpread[uint32](m, 3)
	if s.PerProc() != 3 {
		t.Fatalf("PerProc = %d", s.PerProc())
	}
	for r := 0; r < 4; r++ {
		for i := 0; i < 3; i++ {
			s.Row(r)[i] = uint32(10*r + i)
		}
	}
	for r := 0; r < 4; r++ {
		for i := 0; i < 3; i++ {
			if s.Row(r)[i] != uint32(10*r+i) {
				t.Fatalf("rows alias: Row(%d)[%d] = %d", r, i, s.Row(r)[i])
			}
		}
	}
	// Appending to one row must not bleed into the next (capacity is
	// clamped).
	row := s.Row(0)
	row = append(row, 999)
	_ = row
	if s.Row(1)[0] != 10 {
		t.Error("append to Row(0) overwrote Row(1)")
	}
}

func TestWorkPerPixel(t *testing.T) {
	r := Report{SimTime: 2.0, P: 16}
	if got := r.WorkPerPixel(32); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("WorkPerPixel = %g, want 1", got)
	}
	if got := r.WorkPerPixel(0); got != 0 {
		t.Errorf("WorkPerPixel(0) = %g, want 0", got)
	}
}

func TestBandwidthMBps(t *testing.T) {
	c := CostParams{SecPerWord: 4.0 / 12e6}
	if got := c.BandwidthMBps(); math.Abs(got-12) > 1e-9 {
		t.Errorf("BandwidthMBps = %g, want 12", got)
	}
	if (CostParams{}).BandwidthMBps() != 0 {
		t.Error("zero SecPerWord should report 0 bandwidth")
	}
}

func TestDeterministicClock(t *testing.T) {
	// The simulated time must be identical across runs regardless of
	// goroutine scheduling.
	var times []float64
	for trial := 0; trial < 5; trial++ {
		m := mustMachine(t, 8, testCost)
		s := NewSpread[uint32](m, 64)
		rep, err := m.Run(func(p *Proc) {
			p.Work(10 * (p.Rank() + 3))
			dst := make([]uint32, 64)
			Get(p, dst, s, (p.Rank()+1)%8, 0)
			p.Barrier()
			p.Work(7)
			p.Barrier()
		})
		if err != nil {
			t.Fatal(err)
		}
		times = append(times, rep.SimTime)
	}
	for i := 1; i < len(times); i++ {
		if times[i] != times[0] {
			t.Fatalf("nondeterministic SimTime: %v", times)
		}
	}
}
