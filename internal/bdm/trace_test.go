package bdm

import (
	"math"
	"testing"
)

func TestTracingDisabledByDefault(t *testing.T) {
	m := mustMachine(t, 2, testCost)
	if _, err := m.Run(func(p *Proc) { p.Work(10); p.Barrier() }); err != nil {
		t.Fatal(err)
	}
	for _, tr := range m.Traces() {
		if tr != nil {
			t.Fatal("spans recorded without tracing")
		}
	}
}

func TestTraceSpansCoverClock(t *testing.T) {
	m := mustMachine(t, 4, testCost)
	m.SetTracing(true)
	s := NewSpread[uint32](m, 64)
	rep, err := m.Run(func(p *Proc) {
		p.Work(100 * (p.Rank() + 1))
		dst := make([]uint32, 64)
		Get(p, dst, s, (p.Rank()+1)%4, 0)
		p.Barrier()
		p.Work(50)
		p.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	traces := m.Traces()
	for rank, tr := range traces {
		if len(tr) == 0 {
			t.Fatalf("proc %d has no spans", rank)
		}
		var comp, comm, wait float64
		prevEnd := 0.0
		for _, sp := range tr {
			if sp.End <= sp.Start {
				t.Fatalf("proc %d: empty span %+v", rank, sp)
			}
			if sp.Start < prevEnd {
				t.Fatalf("proc %d: overlapping spans", rank)
			}
			prevEnd = sp.End
			switch sp.Kind {
			case SpanComp:
				comp += sp.End - sp.Start
			case SpanComm:
				comm += sp.End - sp.Start
			case SpanWait:
				wait += sp.End - sp.Start
			}
		}
		pm := rep.Procs[rank]
		if math.Abs(comp-pm.Comp) > 1e-12 {
			t.Errorf("proc %d: traced comp %g, meter %g", rank, comp, pm.Comp)
		}
		if math.Abs(comm-pm.Comm) > 1e-12 {
			t.Errorf("proc %d: traced comm %g, meter %g", rank, comm, pm.Comm)
		}
		if math.Abs(wait-pm.Wait) > 1e-12 {
			t.Errorf("proc %d: traced wait %g, meter %g", rank, wait, pm.Wait)
		}
	}
	// The slowest processor (rank 3) did the most comp; the fastest
	// (rank 0) must show wait spans.
	hasWait := false
	for _, sp := range traces[0] {
		if sp.Kind == SpanWait {
			hasWait = true
		}
	}
	if !hasWait {
		t.Error("fastest processor has no wait span")
	}
}

func TestTraceCoalescesAdjacentSameKind(t *testing.T) {
	m := mustMachine(t, 1, testCost)
	m.SetTracing(true)
	if _, err := m.Run(func(p *Proc) {
		p.Work(10)
		p.Work(20) // contiguous, same kind: must coalesce
	}); err != nil {
		t.Fatal(err)
	}
	tr := m.Traces()[0]
	if len(tr) != 1 {
		t.Fatalf("spans = %v, want one coalesced span", tr)
	}
	want := 30 * testCost.SecPerOp
	if math.Abs((tr[0].End-tr[0].Start)-want) > 1e-15 {
		t.Errorf("coalesced span length %g, want %g", tr[0].End-tr[0].Start, want)
	}
}

func TestSetTracingClears(t *testing.T) {
	m := mustMachine(t, 1, testCost)
	m.SetTracing(true)
	if _, err := m.Run(func(p *Proc) { p.Work(5) }); err != nil {
		t.Fatal(err)
	}
	if len(m.Traces()[0]) == 0 {
		t.Fatal("no spans recorded")
	}
	m.SetTracing(true)
	if len(m.Traces()[0]) != 0 {
		t.Error("SetTracing did not clear old spans")
	}
}

func TestSpanKindStrings(t *testing.T) {
	if SpanComp.String() != "comp" || SpanComm.String() != "comm" || SpanWait.String() != "wait" {
		t.Error("span kind strings")
	}
	if SpanKind(9).String() != "?" {
		t.Error("unknown span kind string")
	}
}
