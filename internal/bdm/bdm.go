// Package bdm implements a Split-C-like SPMD runtime over the Block
// Distributed Memory (BDM) model of JaJa and Ryu, the computation model the
// paper uses to design and analyze its algorithms.
//
// A Machine consists of p logical processors executing the same program
// (SPMD), each as its own goroutine with private local state. Processors
// interact only through
//
//   - Spread arrays (a single global address space, one block per processor),
//   - split-phase prefetches (Get/Put, the analogue of Split-C's ":="
//     assignment) completed by Sync, and
//   - barriers.
//
// The runtime keeps a deterministic simulated clock per processor. Local
// computation is charged explicitly through (*Proc).Work; communication is
// charged at Sync time following the BDM rule that l pipelined prefetch
// operations moving m words in total cost tau + m word-times, where tau is
// the normalized maximum network latency. A barrier equalizes all clocks to
// the maximum (processors wait for the slowest). The resulting end-to-end
// simulated time reproduces the Tcomm/Tcomp analysis of the paper on any
// machine profile, independent of the host the simulation runs on.
package bdm

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"parimg/internal/errs"
	"parimg/internal/fault"
	"parimg/internal/obs"
)

// CostParams describes one target machine in BDM terms. The profiles for the
// machines used in the paper (CM-5, SP-1, SP-2, CS-2, Paragon) live in
// package machine.
type CostParams struct {
	// Name identifies the machine, e.g. "TMC CM-5".
	Name string

	// Tau is the normalized maximum latency of any message in the
	// communication network, in seconds. Each Sync that completes at
	// least one outstanding prefetch is charged one Tau.
	Tau float64

	// SecPerWord is the time for one 32-bit word to enter or leave a
	// processor, in seconds (the reciprocal of the per-processor
	// bandwidth). No processor can send or receive more than one word
	// at a time, so a prefetch batch of m words costs Tau + m*SecPerWord.
	SecPerWord float64

	// SecPerOp is the time of one abstract local RAM operation, in
	// seconds. (*Proc).Work(n) charges n*SecPerOp of computation.
	SecPerOp float64

	// BarrierCost is the time charged to every processor at each global
	// barrier, after clock equalization, in seconds.
	BarrierCost float64
}

// Validate reports whether the parameters are usable.
func (c CostParams) Validate() error {
	if c.Tau < 0 || c.SecPerWord < 0 || c.SecPerOp < 0 || c.BarrierCost < 0 {
		return fmt.Errorf("bdm: negative cost parameter in profile %q", c.Name)
	}
	return nil
}

// BandwidthMBps returns the per-processor data bandwidth implied by
// SecPerWord, in units of 1e6 bytes per second (the paper's "MB/s").
func (c CostParams) BandwidthMBps() float64 {
	if c.SecPerWord == 0 {
		return 0
	}
	return 4.0 / c.SecPerWord / 1e6
}

// Machine is a simulated p-processor distributed-memory machine.
type Machine struct {
	p    int
	cost CostParams

	bar   *barrier
	procs []*Proc

	// jobs feeds the persistent worker pool: p goroutines, started
	// lazily on the first Run and reused across Run calls, so repeated
	// simulations do not respawn p goroutines each time.
	jobs      chan func()
	workersOn sync.Once
	closeOnce sync.Once

	// tracing enables span recording on every processor (see trace.go).
	tracing bool

	// observer receives per-primitive modeled communication volume (tau
	// count and words moved, attributed to each processor's current
	// communication label at Sync time). nil disables the accounting.
	observer *obs.Recorder

	// stop is the cooperative cancellation flag: set by abort (and hence
	// by context cancellation and the barrier watchdog), observed by the
	// checkpoint in every Sync/Barrier, which unwinds the processor with
	// abortPanic. One atomic load per checkpoint when no fault is active.
	stop atomic.Bool

	// injector is the active fault injector (nil disables injection, the
	// production state). cancelable reports whether the current run has
	// any teardown path for a no-show fault (context or watchdog); when
	// it does not, no-show degrades to a panic instead of deadlocking.
	injector   *fault.Injector
	cancelable bool

	// stall is the barrier watchdog deadline; zero disables the watchdog.
	stall time.Duration

	mu     sync.Mutex
	broken error // first abort cause observed (panic, cancel, stall)
}

// NewMachine creates a machine with p processors and the given cost model.
// p must be at least 1.
func NewMachine(p int, cost CostParams) (*Machine, error) {
	if p < 1 {
		return nil, fmt.Errorf("bdm: machine needs at least 1 processor, got %d", p)
	}
	if err := cost.Validate(); err != nil {
		return nil, err
	}
	m := &Machine{p: p, cost: cost, bar: newBarrier(p), jobs: make(chan func(), p)}
	m.procs = make([]*Proc, p)
	for i := range m.procs {
		m.procs[i] = &Proc{m: m, rank: i}
	}
	// The pool workers hold only the jobs channel (never the Machine), so
	// an unreachable Machine can be finalized to shut them down.
	runtime.SetFinalizer(m, (*Machine).Close)
	return m, nil
}

// poolWorker is one persistent worker goroutine. It deliberately references
// only the jobs channel: per-Run closures carry the Proc and Machine, so an
// idle pool does not keep its Machine reachable.
func poolWorker(jobs <-chan func()) {
	for {
		job, ok := <-jobs
		if !ok {
			return
		}
		job()
		job = nil // drop the closure so an idle pool pins nothing
	}
}

// Close shuts down the worker pool. It must not be called while Run is in
// flight; it is also installed as a finalizer so abandoned machines do not
// leak their p goroutines.
func (m *Machine) Close() {
	m.closeOnce.Do(func() { close(m.jobs) })
}

// P returns the number of processors.
func (m *Machine) P() int { return m.p }

// SetObserver installs (or, with nil, removes) the metrics recorder that
// accumulates the machine's modeled communication volume per primitive:
// every Sync that completes at least one prefetch adds one tau and the
// batch's word count under the calling processor's current communication
// label (see Proc.SetCommLabel). Must not be called while Run is in
// flight; the recorder itself is safe for the concurrent processor
// goroutines.
func (m *Machine) SetObserver(r *obs.Recorder) { m.observer = r }

// Observer returns the installed metrics recorder (nil when disabled).
func (m *Machine) Observer() *obs.Recorder { return m.observer }

// Cost returns the machine's cost parameters.
func (m *Machine) Cost() CostParams { return m.cost }

// ErrAborted is returned (wrapped) by Run when a processor body panics; the
// remaining processors are released from any barrier they are blocked on.
// It is the errs.ErrAborted runtime sentinel, so errors.Is matches through
// either name.
var ErrAborted = errs.ErrAborted

// SetStallDeadline configures (or, with 0, disables) the barrier watchdog:
// if some processors reach a barrier and the rest do not arrive within d,
// the machine aborts the run with an ErrDeadline error naming the ranks
// that arrived and the ranks that did not, instead of deadlocking. Must not
// be called while Run is in flight. The watchdog costs nothing when
// disabled: no timer is armed and no arrival tracking is done.
func (m *Machine) SetStallDeadline(d time.Duration) {
	m.stall = d
	if d <= 0 {
		m.bar.setStall(0, nil)
		return
	}
	m.bar.setStall(d, func(arrived, missing []int) {
		m.abort(errs.Deadline("bdm.Barrier", d, nil,
			"barrier stalled: ranks %v arrived, ranks %v missing", arrived, missing))
	})
}

// SetFaultInjector installs (or, with nil, removes) a fault injector that
// every checkpoint (Sync, Barrier, Checkpoint) consults. Testing only; must
// not be called while Run is in flight.
func (m *Machine) SetFaultInjector(in *fault.Injector) { m.injector = in }

// Run executes body once per processor, concurrently, and returns the
// aggregated execution report. It may be called several times on the same
// machine; the simulated clocks continue from where the previous Run left
// them (use Reset to zero them). The p processor bodies run on a persistent
// pool of p goroutines, started on the first Run and reused by every
// subsequent one. A Run after an aborted Run starts from a clean barrier
// generation; only the clocks persist.
//
// If any body panics, Run releases the other processors and returns an error
// wrapping ErrAborted together with the panic value.
func (m *Machine) Run(body func(*Proc)) (Report, error) {
	return m.RunContext(context.Background(), body)
}

// RunContext is Run with cooperative cancellation: when ctx is canceled or
// its deadline expires, every processor unwinds at its next checkpoint
// (Sync, Barrier, or explicit Checkpoint) and RunContext returns an error
// wrapping ErrCanceled or ErrDeadline. Cancellation is cooperative — a body
// that never reaches a checkpoint is not preempted (that is what the
// barrier watchdog is for).
func (m *Machine) RunContext(ctx context.Context, body func(*Proc)) (Report, error) {
	m.workersOn.Do(func() {
		for i := 0; i < m.p; i++ {
			go poolWorker(m.jobs)
		}
	})
	// Start clean even if a previous Run on this machine was aborted: the
	// abort poisoned the barrier and the broken/stop flags, and leaving
	// them set would fail this run before it does any work.
	m.mu.Lock()
	m.broken = nil
	m.mu.Unlock()
	m.stop.Store(false)
	m.bar.reset()
	for _, p := range m.procs {
		p.faultSeq = 0
	}
	if err := ctx.Err(); err != nil {
		return Report{}, errs.FromContext("bdm.Run", 0, err)
	}
	start := time.Now()
	m.cancelable = ctx.Done() != nil || m.stall > 0
	var monitorDone, monitorGone chan struct{}
	if ctx.Done() != nil {
		// The monitor translates context expiry into an abort. The run
		// retires it before returning and waits for it to exit, so no
		// goroutine outlives RunContext and a late abort cannot poison
		// the machine's next run.
		monitorDone = make(chan struct{})
		monitorGone = make(chan struct{})
		go func() {
			defer close(monitorGone)
			select {
			case <-ctx.Done():
				m.abort(errs.FromContext("bdm.Run", time.Since(start), ctx.Err()))
			case <-monitorDone:
			}
		}()
	}
	var wg sync.WaitGroup
	wg.Add(m.p)
	for i := 0; i < m.p; i++ {
		p := m.procs[i]
		m.jobs <- func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(abortPanic); ok {
						return // secondary unwind; original error already recorded
					}
					cause, ok := r.(error)
					if !ok {
						cause = fmt.Errorf("panic: %v", r)
					}
					m.abort(errs.Aborted("bdm.Run", cause, "processor %d panicked: %v", p.rank, r))
				}
			}()
			body(p)
		}
	}
	wg.Wait()
	wall := time.Since(start)
	if monitorDone != nil {
		close(monitorDone)
		<-monitorGone
	}

	m.mu.Lock()
	err := m.broken
	m.mu.Unlock()
	if err != nil {
		return Report{}, err
	}
	// Final settlement and equalization so SimTime reflects the slowest
	// processor even when the program does not end with a barrier.
	m.settleAndEqualize(false)
	return m.report(wall), nil
}

// Reset zeroes all simulated clocks and meters, keeping the machine and its
// cost model. It must not be called while Run is in flight.
func (m *Machine) Reset() {
	for _, p := range m.procs {
		p.meter = Meter{}
		p.pendingWords = 0
		p.pendingGets = 0
		p.activeEpochWords = 0
		p.passiveWords.Store(0)
		p.commLabel = ""
		p.faultSeq = 0
	}
	m.mu.Lock()
	m.broken = nil
	m.mu.Unlock()
	m.stop.Store(false)
	m.bar.reset()
}

// abort records the first teardown cause, raises the cooperative stop flag
// (checkpoints unwind at their next execution), wakes every parked barrier
// waiter, and marks the observer's metrics as aborted so a failed run still
// produces a valid, honest metrics document.
func (m *Machine) abort(err error) {
	m.mu.Lock()
	first := m.broken == nil
	if first {
		m.broken = err
	}
	m.mu.Unlock()
	m.stop.Store(true)
	if first {
		if r := m.observer; r != nil {
			r.MarkAborted(err.Error())
		}
	}
	m.bar.abort()
}

// settleAndEqualize first settles passive-traffic excess (words moved by
// other processors in or out of each processor's memory beyond what that
// processor actively transferred itself, charged at full-duplex overlap)
// and then advances every clock to the global maximum, charging the
// difference as wait time. When isBarrier is set, the machine's barrier
// cost is added and barrier counters advance. Callers must ensure no
// processor body is running (barrier onLast, or after Run).
func (m *Machine) settleAndEqualize(isBarrier bool) {
	for _, q := range m.procs {
		passive := q.passiveWords.Swap(0)
		if excess := passive - q.activeEpochWords; excess > 0 {
			dt := float64(excess) * m.cost.SecPerWord
			q.recordSpan(q.meter.Now, q.meter.Now+dt, SpanComm)
			q.meter.Comm += dt
			q.meter.Now += dt
		}
		q.activeEpochWords = 0
	}
	var max float64
	for _, q := range m.procs {
		if q.meter.Now > max {
			max = q.meter.Now
		}
	}
	for _, q := range m.procs {
		q.recordSpan(q.meter.Now, max, SpanWait)
		q.meter.Wait += max - q.meter.Now
		q.meter.Now = max
		if isBarrier {
			q.meter.Now += m.cost.BarrierCost
			q.meter.Bars++
		}
	}
}

func (m *Machine) report(wall time.Duration) Report {
	r := Report{
		P:     m.p,
		Cost:  m.cost,
		Wall:  wall,
		Procs: make([]Meter, m.p),
	}
	for i, p := range m.procs {
		r.Procs[i] = p.meter
		if p.meter.Now > r.SimTime {
			r.SimTime = p.meter.Now
		}
		if p.meter.Comp > r.CompTime {
			r.CompTime = p.meter.Comp
		}
		if p.meter.Comm > r.CommTime {
			r.CommTime = p.meter.Comm
		}
		r.Words += p.meter.Words
		r.Ops += p.meter.Ops
	}
	return r
}

// Meter accumulates the simulated cost of one processor.
type Meter struct {
	Comp  float64 // seconds of charged local computation
	Comm  float64 // seconds of charged communication (latency + transfer)
	Wait  float64 // seconds spent waiting at barriers (clock equalization)
	Now   float64 // current local clock: Comp + Comm + Wait + barrier costs
	Ops   int64   // abstract operations charged
	Words int64   // words transferred to or from this processor
	Syncs int64   // number of Syncs that completed at least one prefetch
	Bars  int64   // number of barriers passed
}

// Report summarizes one SPMD execution.
type Report struct {
	P        int
	Cost     CostParams
	SimTime  float64 // simulated end-to-end seconds (max over processors)
	CompTime float64 // max over processors of charged computation seconds
	CommTime float64 // max over processors of charged communication seconds
	Wall     time.Duration
	Words    int64 // total words moved by all processors
	Ops      int64 // total abstract operations
	Procs    []Meter
}

// WorkPerPixel returns SimTime*P/pixels, the paper's normalized
// "work per pixel" measure, in seconds.
func (r Report) WorkPerPixel(pixels int) float64 {
	if pixels == 0 {
		return 0
	}
	return r.SimTime * float64(r.P) / float64(pixels)
}

func (r Report) String() string {
	return fmt.Sprintf("%s p=%d: sim=%.6gs (comp=%.6gs comm=%.6gs) wall=%v words=%d",
		r.Cost.Name, r.P, r.SimTime, r.CompTime, r.CommTime, r.Wall, r.Words)
}
