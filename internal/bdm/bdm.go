// Package bdm implements a Split-C-like SPMD runtime over the Block
// Distributed Memory (BDM) model of JaJa and Ryu, the computation model the
// paper uses to design and analyze its algorithms.
//
// A Machine consists of p logical processors executing the same program
// (SPMD), each as its own goroutine with private local state. Processors
// interact only through
//
//   - Spread arrays (a single global address space, one block per processor),
//   - split-phase prefetches (Get/Put, the analogue of Split-C's ":="
//     assignment) completed by Sync, and
//   - barriers.
//
// The runtime keeps a deterministic simulated clock per processor. Local
// computation is charged explicitly through (*Proc).Work; communication is
// charged at Sync time following the BDM rule that l pipelined prefetch
// operations moving m words in total cost tau + m word-times, where tau is
// the normalized maximum network latency. A barrier equalizes all clocks to
// the maximum (processors wait for the slowest). The resulting end-to-end
// simulated time reproduces the Tcomm/Tcomp analysis of the paper on any
// machine profile, independent of the host the simulation runs on.
package bdm

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"parimg/internal/obs"
)

// CostParams describes one target machine in BDM terms. The profiles for the
// machines used in the paper (CM-5, SP-1, SP-2, CS-2, Paragon) live in
// package machine.
type CostParams struct {
	// Name identifies the machine, e.g. "TMC CM-5".
	Name string

	// Tau is the normalized maximum latency of any message in the
	// communication network, in seconds. Each Sync that completes at
	// least one outstanding prefetch is charged one Tau.
	Tau float64

	// SecPerWord is the time for one 32-bit word to enter or leave a
	// processor, in seconds (the reciprocal of the per-processor
	// bandwidth). No processor can send or receive more than one word
	// at a time, so a prefetch batch of m words costs Tau + m*SecPerWord.
	SecPerWord float64

	// SecPerOp is the time of one abstract local RAM operation, in
	// seconds. (*Proc).Work(n) charges n*SecPerOp of computation.
	SecPerOp float64

	// BarrierCost is the time charged to every processor at each global
	// barrier, after clock equalization, in seconds.
	BarrierCost float64
}

// Validate reports whether the parameters are usable.
func (c CostParams) Validate() error {
	if c.Tau < 0 || c.SecPerWord < 0 || c.SecPerOp < 0 || c.BarrierCost < 0 {
		return fmt.Errorf("bdm: negative cost parameter in profile %q", c.Name)
	}
	return nil
}

// BandwidthMBps returns the per-processor data bandwidth implied by
// SecPerWord, in units of 1e6 bytes per second (the paper's "MB/s").
func (c CostParams) BandwidthMBps() float64 {
	if c.SecPerWord == 0 {
		return 0
	}
	return 4.0 / c.SecPerWord / 1e6
}

// Machine is a simulated p-processor distributed-memory machine.
type Machine struct {
	p    int
	cost CostParams

	bar   *barrier
	procs []*Proc

	// jobs feeds the persistent worker pool: p goroutines, started
	// lazily on the first Run and reused across Run calls, so repeated
	// simulations do not respawn p goroutines each time.
	jobs      chan func()
	workersOn sync.Once
	closeOnce sync.Once

	// tracing enables span recording on every processor (see trace.go).
	tracing bool

	// observer receives per-primitive modeled communication volume (tau
	// count and words moved, attributed to each processor's current
	// communication label at Sync time). nil disables the accounting.
	observer *obs.Recorder

	mu     sync.Mutex
	broken error // first panic observed, wrapped
}

// NewMachine creates a machine with p processors and the given cost model.
// p must be at least 1.
func NewMachine(p int, cost CostParams) (*Machine, error) {
	if p < 1 {
		return nil, fmt.Errorf("bdm: machine needs at least 1 processor, got %d", p)
	}
	if err := cost.Validate(); err != nil {
		return nil, err
	}
	m := &Machine{p: p, cost: cost, bar: newBarrier(p), jobs: make(chan func(), p)}
	m.procs = make([]*Proc, p)
	for i := range m.procs {
		m.procs[i] = &Proc{m: m, rank: i}
	}
	// The pool workers hold only the jobs channel (never the Machine), so
	// an unreachable Machine can be finalized to shut them down.
	runtime.SetFinalizer(m, (*Machine).Close)
	return m, nil
}

// poolWorker is one persistent worker goroutine. It deliberately references
// only the jobs channel: per-Run closures carry the Proc and Machine, so an
// idle pool does not keep its Machine reachable.
func poolWorker(jobs <-chan func()) {
	for {
		job, ok := <-jobs
		if !ok {
			return
		}
		job()
		job = nil // drop the closure so an idle pool pins nothing
	}
}

// Close shuts down the worker pool. It must not be called while Run is in
// flight; it is also installed as a finalizer so abandoned machines do not
// leak their p goroutines.
func (m *Machine) Close() {
	m.closeOnce.Do(func() { close(m.jobs) })
}

// P returns the number of processors.
func (m *Machine) P() int { return m.p }

// SetObserver installs (or, with nil, removes) the metrics recorder that
// accumulates the machine's modeled communication volume per primitive:
// every Sync that completes at least one prefetch adds one tau and the
// batch's word count under the calling processor's current communication
// label (see Proc.SetCommLabel). Must not be called while Run is in
// flight; the recorder itself is safe for the concurrent processor
// goroutines.
func (m *Machine) SetObserver(r *obs.Recorder) { m.observer = r }

// Observer returns the installed metrics recorder (nil when disabled).
func (m *Machine) Observer() *obs.Recorder { return m.observer }

// Cost returns the machine's cost parameters.
func (m *Machine) Cost() CostParams { return m.cost }

// ErrAborted is returned (wrapped) by Run when a processor body panics; the
// remaining processors are released from any barrier they are blocked on.
var ErrAborted = fmt.Errorf("bdm: SPMD program aborted")

// Run executes body once per processor, concurrently, and returns the
// aggregated execution report. It may be called several times on the same
// machine; the simulated clocks continue from where the previous Run left
// them (use Reset to zero them). The p processor bodies run on a persistent
// pool of p goroutines, started on the first Run and reused by every
// subsequent one.
//
// If any body panics, Run releases the other processors and returns an error
// wrapping ErrAborted together with the panic value.
func (m *Machine) Run(body func(*Proc)) (Report, error) {
	m.workersOn.Do(func() {
		for i := 0; i < m.p; i++ {
			go poolWorker(m.jobs)
		}
	})
	start := time.Now()
	var wg sync.WaitGroup
	wg.Add(m.p)
	for i := 0; i < m.p; i++ {
		p := m.procs[i]
		m.jobs <- func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(abortPanic); ok {
						return // secondary unwind; original error already recorded
					}
					m.abort(fmt.Errorf("%w: processor %d panicked: %v", ErrAborted, p.rank, r))
				}
			}()
			body(p)
		}
	}
	wg.Wait()
	wall := time.Since(start)

	m.mu.Lock()
	err := m.broken
	m.mu.Unlock()
	if err != nil {
		return Report{}, err
	}
	// Final settlement and equalization so SimTime reflects the slowest
	// processor even when the program does not end with a barrier.
	m.settleAndEqualize(false)
	return m.report(wall), nil
}

// Reset zeroes all simulated clocks and meters, keeping the machine and its
// cost model. It must not be called while Run is in flight.
func (m *Machine) Reset() {
	for _, p := range m.procs {
		p.meter = Meter{}
		p.pendingWords = 0
		p.pendingGets = 0
		p.activeEpochWords = 0
		p.passiveWords.Store(0)
		p.commLabel = ""
	}
	m.mu.Lock()
	m.broken = nil
	m.mu.Unlock()
	m.bar.reset()
}

func (m *Machine) abort(err error) {
	m.mu.Lock()
	if m.broken == nil {
		m.broken = err
	}
	m.mu.Unlock()
	m.bar.abort()
}

// settleAndEqualize first settles passive-traffic excess (words moved by
// other processors in or out of each processor's memory beyond what that
// processor actively transferred itself, charged at full-duplex overlap)
// and then advances every clock to the global maximum, charging the
// difference as wait time. When isBarrier is set, the machine's barrier
// cost is added and barrier counters advance. Callers must ensure no
// processor body is running (barrier onLast, or after Run).
func (m *Machine) settleAndEqualize(isBarrier bool) {
	for _, q := range m.procs {
		passive := q.passiveWords.Swap(0)
		if excess := passive - q.activeEpochWords; excess > 0 {
			dt := float64(excess) * m.cost.SecPerWord
			q.recordSpan(q.meter.Now, q.meter.Now+dt, SpanComm)
			q.meter.Comm += dt
			q.meter.Now += dt
		}
		q.activeEpochWords = 0
	}
	var max float64
	for _, q := range m.procs {
		if q.meter.Now > max {
			max = q.meter.Now
		}
	}
	for _, q := range m.procs {
		q.recordSpan(q.meter.Now, max, SpanWait)
		q.meter.Wait += max - q.meter.Now
		q.meter.Now = max
		if isBarrier {
			q.meter.Now += m.cost.BarrierCost
			q.meter.Bars++
		}
	}
}

func (m *Machine) report(wall time.Duration) Report {
	r := Report{
		P:     m.p,
		Cost:  m.cost,
		Wall:  wall,
		Procs: make([]Meter, m.p),
	}
	for i, p := range m.procs {
		r.Procs[i] = p.meter
		if p.meter.Now > r.SimTime {
			r.SimTime = p.meter.Now
		}
		if p.meter.Comp > r.CompTime {
			r.CompTime = p.meter.Comp
		}
		if p.meter.Comm > r.CommTime {
			r.CommTime = p.meter.Comm
		}
		r.Words += p.meter.Words
		r.Ops += p.meter.Ops
	}
	return r
}

// Meter accumulates the simulated cost of one processor.
type Meter struct {
	Comp  float64 // seconds of charged local computation
	Comm  float64 // seconds of charged communication (latency + transfer)
	Wait  float64 // seconds spent waiting at barriers (clock equalization)
	Now   float64 // current local clock: Comp + Comm + Wait + barrier costs
	Ops   int64   // abstract operations charged
	Words int64   // words transferred to or from this processor
	Syncs int64   // number of Syncs that completed at least one prefetch
	Bars  int64   // number of barriers passed
}

// Report summarizes one SPMD execution.
type Report struct {
	P        int
	Cost     CostParams
	SimTime  float64 // simulated end-to-end seconds (max over processors)
	CompTime float64 // max over processors of charged computation seconds
	CommTime float64 // max over processors of charged communication seconds
	Wall     time.Duration
	Words    int64 // total words moved by all processors
	Ops      int64 // total abstract operations
	Procs    []Meter
}

// WorkPerPixel returns SimTime*P/pixels, the paper's normalized
// "work per pixel" measure, in seconds.
func (r Report) WorkPerPixel(pixels int) float64 {
	if pixels == 0 {
		return 0
	}
	return r.SimTime * float64(r.P) / float64(pixels)
}

func (r Report) String() string {
	return fmt.Sprintf("%s p=%d: sim=%.6gs (comp=%.6gs comm=%.6gs) wall=%v words=%d",
		r.Cost.Name, r.P, r.SimTime, r.CompTime, r.CommTime, r.Wall, r.Words)
}
