package bdm

// Execution tracing: when enabled, every processor records its activity
// as (start, end, kind) spans on the simulated clock — computation, the
// communication charged at each Sync, and barrier waits. The spans power
// the text Gantt chart of `experiments gantt` and give tests visibility
// into the shape of an SPMD schedule. Tracing is off by default and costs
// nothing when disabled.

// SpanKind classifies a trace span.
type SpanKind int

const (
	// SpanComp is charged local computation.
	SpanComp SpanKind = iota
	// SpanComm is charged communication (latency + transfer at a Sync).
	SpanComm
	// SpanWait is idle time at a barrier (clock equalization).
	SpanWait
)

func (k SpanKind) String() string {
	switch k {
	case SpanComp:
		return "comp"
	case SpanComm:
		return "comm"
	case SpanWait:
		return "wait"
	}
	return "?"
}

// Span is one activity interval on a processor's simulated clock.
type Span struct {
	Start, End float64
	Kind       SpanKind
}

// SetTracing enables or disables span recording; it also clears previously
// recorded spans. Must not be called while Run is in flight.
func (m *Machine) SetTracing(on bool) {
	m.tracing = on
	for _, p := range m.procs {
		p.spans = nil
	}
}

// Traces returns each processor's recorded spans (nil when tracing is
// disabled). The slices are live; callers must not mutate them.
func (m *Machine) Traces() [][]Span {
	out := make([][]Span, m.p)
	for i, p := range m.procs {
		out[i] = p.spans
	}
	return out
}

// recordSpan appends a span to the processor's trace when tracing is on.
// Zero-length spans are skipped.
func (p *Proc) recordSpan(start, end float64, kind SpanKind) {
	if !p.m.tracing || end <= start {
		return
	}
	// Coalesce with the previous span when contiguous and same kind.
	if n := len(p.spans); n > 0 {
		last := &p.spans[n-1]
		if last.Kind == kind && last.End == start {
			last.End = end
			return
		}
	}
	p.spans = append(p.spans, Span{Start: start, End: end, Kind: kind})
}
