package bdm

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"parimg/internal/errs"
	"parimg/internal/fault"
	"parimg/internal/fault/leakcheck"
)

// TestAbortWakesAllBarrierWaiters is the barrier.await abort-path regression
// test: when one processor panics, every processor parked at the barrier must
// be released (the test would otherwise hang), and the run must report the
// panicking processor's error, not a secondary unwind.
func TestAbortWakesAllBarrierWaiters(t *testing.T) {
	leakcheck.Check(t)
	m := mustMachine(t, 8, testCost)
	defer m.Close()
	_, err := m.Run(func(p *Proc) {
		if p.Rank() == 3 {
			panic("rank 3 exploded")
		}
		// The other seven park here until the abort releases them.
		p.Barrier()
	})
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted", err)
	}
	if !strings.Contains(err.Error(), "processor 3") {
		t.Errorf("error %q does not blame processor 3", err)
	}
}

// TestRunAfterAbortStartsClean verifies that repeated Machine.Run after an
// abort starts from a clean barrier generation: no stale aborted flag, no
// stale stop flag, and a correct result from the clean run.
func TestRunAfterAbortStartsClean(t *testing.T) {
	leakcheck.Check(t)
	m := mustMachine(t, 4, testCost)
	defer m.Close()
	for i := 0; i < 3; i++ {
		_, err := m.Run(func(p *Proc) {
			p.Barrier()
			if p.Rank() == 0 {
				panic("boom")
			}
			p.Barrier()
		})
		if !errors.Is(err, ErrAborted) {
			t.Fatalf("aborted run %d: err = %v, want ErrAborted", i, err)
		}
		m.Reset() // zero the meters so the assertion sees this run alone
		rep, err := m.Run(func(p *Proc) {
			p.Work(10)
			p.Barrier()
		})
		if err != nil {
			t.Fatalf("clean run %d after abort: %v", i, err)
		}
		if rep.Ops != 40 {
			t.Fatalf("clean run %d: Ops = %d, want 40", i, rep.Ops)
		}
	}
}

func TestRunContextCancelUnwinds(t *testing.T) {
	leakcheck.Check(t)
	m := mustMachine(t, 4, testCost)
	defer m.Close()
	ctx, cancel := context.WithCancel(context.Background())
	_, err := m.RunContext(ctx, func(p *Proc) {
		if p.Rank() == 0 {
			cancel()
		}
		// Spin on checkpoints until the abort lands; bounded so a broken
		// stop flag fails the test instead of hanging it.
		for i := 0; i < 1_000_000; i++ {
			p.Checkpoint()
			time.Sleep(time.Microsecond)
		}
		t.Error("checkpoint never observed the cancellation")
	})
	if !errors.Is(err, errs.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want to match context.Canceled too", err)
	}
	var re *errs.RunError
	if !errors.As(err, &re) {
		t.Fatalf("err %T is not a *errs.RunError", err)
	}
}

func TestRunContextDeadlineUnwinds(t *testing.T) {
	leakcheck.Check(t)
	m := mustMachine(t, 2, testCost)
	defer m.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := m.RunContext(ctx, func(p *Proc) {
		for i := 0; i < 1_000_000; i++ {
			p.Sync()
			time.Sleep(time.Microsecond)
		}
		t.Error("Sync never observed the deadline")
	})
	if !errors.Is(err, errs.ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want to match context.DeadlineExceeded too", err)
	}
}

func TestRunContextPreCanceled(t *testing.T) {
	leakcheck.Check(t)
	m := mustMachine(t, 2, testCost)
	defer m.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	_, err := m.RunContext(ctx, func(p *Proc) { ran = true })
	if !errors.Is(err, errs.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if ran {
		t.Error("body ran despite pre-canceled context")
	}
}

// TestWatchdogNamesMissingRank is the acceptance test for the barrier
// watchdog: a rank that deliberately never reaches the barrier must not hang
// the run; within the stall deadline the machine aborts with an ErrDeadline
// error naming the ranks that arrived and the one that did not.
func TestWatchdogNamesMissingRank(t *testing.T) {
	leakcheck.Check(t)
	m := mustMachine(t, 4, testCost)
	defer m.Close()
	m.SetStallDeadline(50 * time.Millisecond)
	defer m.SetStallDeadline(0)
	start := time.Now()
	_, err := m.Run(func(p *Proc) {
		if p.Rank() == 2 {
			return // never reaches the barrier
		}
		p.Barrier()
	})
	elapsed := time.Since(start)
	if !errors.Is(err, errs.ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	msg := err.Error()
	if !strings.Contains(msg, "[0 1 3] arrived") || !strings.Contains(msg, "[2] missing") {
		t.Errorf("diagnostic %q does not name arrived [0 1 3] and missing [2]", msg)
	}
	// "Completes within the configured stall deadline": generous slack for
	// a loaded CI host, but nowhere near a hang.
	if elapsed > 5*time.Second {
		t.Errorf("watchdog took %v to fire a 50ms deadline", elapsed)
	}
	// The machine must be reusable after a watchdog abort.
	if _, err := m.Run(func(p *Proc) { p.Barrier() }); err != nil {
		t.Fatalf("clean run after watchdog abort: %v", err)
	}
}

func TestWatchdogDoesNotFireOnHealthyRuns(t *testing.T) {
	leakcheck.Check(t)
	m := mustMachine(t, 4, testCost)
	defer m.Close()
	m.SetStallDeadline(30 * time.Second)
	defer m.SetStallDeadline(0)
	for i := 0; i < 5; i++ {
		if _, err := m.Run(func(p *Proc) {
			p.Barrier()
			p.Work(1)
			p.Barrier()
		}); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
}

func TestInjectedPanicAbortsWithTypedError(t *testing.T) {
	leakcheck.Check(t)
	m := mustMachine(t, 4, testCost)
	defer m.Close()
	in := fault.New(1, fault.Panic, 1).At("sync").OnRank(1).OnRound(1)
	m.SetFaultInjector(in)
	defer m.SetFaultInjector(nil)
	_, err := m.Run(func(p *Proc) {
		p.Sync()
		p.Barrier()
	})
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted", err)
	}
	var inj *fault.Injected
	if !errors.As(err, &inj) {
		t.Fatalf("err %v does not wrap the injected fault", err)
	}
	if inj.Site.Rank != 1 || inj.Site.Name != "sync" {
		t.Errorf("fault fired at %v, want sync on rank 1", inj.Site)
	}
	if in.Injections() != 1 {
		t.Errorf("Injections() = %d, want 1", in.Injections())
	}
	// Clean run after removing the injector.
	m.SetFaultInjector(nil)
	if _, err := m.Run(func(p *Proc) { p.Barrier() }); err != nil {
		t.Fatalf("clean run after injected panic: %v", err)
	}
}

func TestInjectedDelayCompletesRun(t *testing.T) {
	leakcheck.Check(t)
	m := mustMachine(t, 2, testCost)
	defer m.Close()
	in := fault.New(1, fault.Delay, 1).At("sync").WithDelay(5 * time.Millisecond)
	m.SetFaultInjector(in)
	defer m.SetFaultInjector(nil)
	if _, err := m.Run(func(p *Proc) {
		p.Sync()
		p.Barrier()
	}); err != nil {
		t.Fatalf("delay fault must not fail the run: %v", err)
	}
	if in.Injections() == 0 {
		t.Error("delay fault never fired")
	}
}

// TestInjectedNoShowCaughtByWatchdog plants a no-show at the barrier of one
// rank: the processor parks without joining the barrier count, the other
// ranks stall, and the watchdog must report exactly that rank missing.
func TestInjectedNoShowCaughtByWatchdog(t *testing.T) {
	leakcheck.Check(t)
	m := mustMachine(t, 4, testCost)
	defer m.Close()
	m.SetStallDeadline(50 * time.Millisecond)
	defer m.SetStallDeadline(0)
	in := fault.New(1, fault.NoShow, 1).At("barrier").OnRank(1)
	m.SetFaultInjector(in)
	defer m.SetFaultInjector(nil)
	_, err := m.Run(func(p *Proc) { p.Barrier() })
	if !errors.Is(err, errs.ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline from the watchdog", err)
	}
	if !strings.Contains(err.Error(), "[1] missing") {
		t.Errorf("diagnostic %q does not name rank 1 missing", err)
	}
}

// TestInjectedNoShowWithoutTeardownDegradesToPanic: with no watchdog and no
// context nothing could ever tear a parked processor down, so the injector
// must degrade the no-show to a labeled panic instead of deadlocking.
func TestInjectedNoShowWithoutTeardownDegradesToPanic(t *testing.T) {
	leakcheck.Check(t)
	m := mustMachine(t, 2, testCost)
	defer m.Close()
	in := fault.New(1, fault.NoShow, 1).At("barrier").OnRank(0)
	m.SetFaultInjector(in)
	defer m.SetFaultInjector(nil)
	_, err := m.Run(func(p *Proc) { p.Barrier() })
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted", err)
	}
	if !strings.Contains(err.Error(), "no-show without watchdog or context") {
		t.Errorf("error %q does not explain the degraded no-show", err)
	}
}

// TestCheckpointCostWhenIdle pins the zero-overhead claim: with no injector,
// no observer and no watchdog, a checkpoint is one atomic load and one nil
// check — in particular it must not allocate.
func TestCheckpointCostWhenIdle(t *testing.T) {
	m := mustMachine(t, 1, testCost)
	defer m.Close()
	if _, err := m.Run(func(p *Proc) {
		allocs := testing.AllocsPerRun(100, func() {
			for i := 0; i < 100; i++ {
				p.Checkpoint()
			}
		})
		if allocs != 0 {
			t.Errorf("idle checkpoints allocated %.1f times per run", allocs)
		}
	}); err != nil {
		t.Fatal(err)
	}
}
