package sortutil

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// The crossover benchmark behind RadixCutoff: compare the radix sorts
// against the comparison sorts across sizes, mirroring the paper's
// footnote 3 ("using whichever sorting method is fastest for the given
// input size" — quicker-sort for smaller sorts, radix sort for larger).
//
//	go test -bench Crossover ./internal/sortutil/

func randKeys(n int, rng *rand.Rand) []uint32 {
	keys := make([]uint32, n)
	for i := range keys {
		keys[i] = rng.Uint32()
	}
	return keys
}

func BenchmarkSortCrossover(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{32, 128, 256, 1024, 16384} {
		src := randKeys(n, rng)
		buf := make([]uint32, n)
		b.Run(fmt.Sprintf("radix/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				copy(buf, src)
				RadixSortUint32(buf)
			}
		})
		b.Run(fmt.Sprintf("comparison/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				copy(buf, src)
				sort.Slice(buf, func(a, c int) bool { return buf[a] < buf[c] })
			}
		})
	}
}

func BenchmarkSortPairs(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{256, 16384} {
		src := make([]Pair, n)
		for i := range src {
			src[i] = Pair{Key: rng.Uint32(), Value: uint32(i)}
		}
		buf := make([]Pair, n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				copy(buf, src)
				SortPairs(buf)
			}
		})
	}
}

func BenchmarkSearchPairs(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	n := 4096
	pairs := make([]Pair, n)
	for i := range pairs {
		pairs[i] = Pair{Key: rng.Uint32(), Value: uint32(i)}
	}
	SortPairs(pairs)
	pairs = UniquePairs(pairs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SearchPairs(pairs, uint32(i))
	}
}
