package sortutil

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func isSortedU32(s []uint32) bool {
	return sort.SliceIsSorted(s, func(a, b int) bool { return s[a] < s[b] })
}

func TestRadixSortUint32Basic(t *testing.T) {
	cases := [][]uint32{
		nil,
		{},
		{5},
		{2, 1},
		{1, 2, 3},
		{3, 2, 1},
		{7, 7, 7},
		{0, ^uint32(0), 1 << 31, 255, 256, 65535, 65536},
	}
	for _, c := range cases {
		got := append([]uint32(nil), c...)
		RadixSortUint32(got)
		want := append([]uint32(nil), c...)
		sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("RadixSortUint32(%v) = %v, want %v", c, got, want)
			}
		}
	}
}

func TestRadixSortUint32PropertySorted(t *testing.T) {
	f := func(keys []uint32) bool {
		RadixSortUint32(keys)
		return isSortedU32(keys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRadixSortUint32PropertyPermutation(t *testing.T) {
	f := func(keys []uint32) bool {
		counts := map[uint32]int{}
		for _, k := range keys {
			counts[k]++
		}
		RadixSortUint32(keys)
		for _, k := range keys {
			counts[k]--
		}
		for _, c := range counts {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSortUint32BothPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 10, RadixCutoff - 1, RadixCutoff, RadixCutoff + 1, 10000} {
		keys := make([]uint32, n)
		for i := range keys {
			keys[i] = rng.Uint32()
		}
		SortUint32(keys)
		if !isSortedU32(keys) {
			t.Fatalf("SortUint32 failed at n=%d", n)
		}
	}
}

func TestRadixSortPairsStable(t *testing.T) {
	// Equal keys must keep their input order (stability), which the
	// connected components merge relies on only for determinism, but we
	// guarantee it anyway.
	n := 5000
	pairs := make([]Pair, n)
	rng := rand.New(rand.NewSource(2))
	for i := range pairs {
		pairs[i] = Pair{Key: uint32(rng.Intn(50)), Value: uint32(i)}
	}
	RadixSortPairs(pairs)
	for i := 1; i < n; i++ {
		if pairs[i].Key < pairs[i-1].Key {
			t.Fatal("pairs not sorted by key")
		}
		if pairs[i].Key == pairs[i-1].Key && pairs[i].Value < pairs[i-1].Value {
			t.Fatal("radix sort not stable")
		}
	}
}

func TestSortPairsProperty(t *testing.T) {
	f := func(keys []uint32) bool {
		pairs := make([]Pair, len(keys))
		for i, k := range keys {
			pairs[i] = Pair{Key: k, Value: uint32(i)}
		}
		SortPairs(pairs)
		for i := 1; i < len(pairs); i++ {
			if pairs[i].Key < pairs[i-1].Key {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestUniquePairs(t *testing.T) {
	cases := []struct {
		in   []Pair
		want []Pair
	}{
		{nil, nil},
		{[]Pair{{1, 10}}, []Pair{{1, 10}}},
		{[]Pair{{1, 10}, {1, 11}, {2, 20}}, []Pair{{1, 10}, {2, 20}}},
		{[]Pair{{3, 1}, {3, 1}, {3, 1}}, []Pair{{3, 1}}},
		{[]Pair{{1, 1}, {2, 2}, {3, 3}}, []Pair{{1, 1}, {2, 2}, {3, 3}}},
	}
	for _, c := range cases {
		got := UniquePairs(append([]Pair(nil), c.in...))
		if len(got) != len(c.want) {
			t.Fatalf("UniquePairs(%v) = %v, want %v", c.in, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("UniquePairs(%v) = %v, want %v", c.in, got, c.want)
			}
		}
	}
}

func TestSearchPairs(t *testing.T) {
	pairs := []Pair{{2, 20}, {5, 50}, {9, 90}, {100, 1}}
	for _, tc := range []struct {
		key  uint32
		want uint32
		ok   bool
	}{
		{2, 20, true}, {5, 50, true}, {9, 90, true}, {100, 1, true},
		{0, 0, false}, {3, 0, false}, {99, 0, false}, {101, 0, false},
	} {
		got, ok := SearchPairs(pairs, tc.key)
		if ok != tc.ok || got != tc.want {
			t.Errorf("SearchPairs(%d) = (%d, %v), want (%d, %v)", tc.key, got, ok, tc.want, tc.ok)
		}
	}
	if _, ok := SearchPairs(nil, 5); ok {
		t.Error("SearchPairs(nil) should miss")
	}
}

func TestSearchPairsPropertyFindsAll(t *testing.T) {
	f := func(keys []uint32) bool {
		pairs := make([]Pair, len(keys))
		for i, k := range keys {
			pairs[i] = Pair{Key: k, Value: k ^ 0xdeadbeef}
		}
		SortPairs(pairs)
		pairs = UniquePairs(pairs)
		for _, k := range keys {
			v, ok := SearchPairs(pairs, k)
			if !ok || v != k^0xdeadbeef {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
