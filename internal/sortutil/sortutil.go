// Package sortutil implements the paper's hybrid sorting strategy: a
// four-pass byte-wise radix sort (256 buckets per pass, footnote 4) for
// large inputs, falling back to "the standard UNIX quicker-sort" for small
// ones (footnote 3) — whichever is fastest for the given input size.
package sortutil

import "sort"

// RadixCutoff is the input size below which the hybrid sorts use
// comparison sorting instead of radix passes. Chosen empirically on the
// benchmark in sortutil_bench_test.go; the paper likewise selects
// "whichever sorting method is fastest for the given input size".
const RadixCutoff = 256

// SortUint32 sorts keys ascending using the hybrid strategy.
func SortUint32(keys []uint32) {
	if len(keys) < RadixCutoff {
		sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
		return
	}
	RadixSortUint32(keys)
}

// RadixSortUint32 is the four-pass byte-wise LSD radix sort on 32-bit keys:
// each pass sorts on one byte of the key using 256 buckets, so the total
// work is O(4(n + 256)) regardless of key distribution.
func RadixSortUint32(keys []uint32) {
	n := len(keys)
	if n < 2 {
		return
	}
	tmp := make([]uint32, n)
	var count [256]int
	src, dst := keys, tmp
	for pass := 0; pass < 4; pass++ {
		shift := uint(pass * 8)
		for i := range count {
			count[i] = 0
		}
		for _, k := range src {
			count[(k>>shift)&0xff]++
		}
		if count[int((src[0]>>shift)&0xff)] == n {
			// Every key has the same byte in this position; the
			// pass would be the identity permutation.
			continue
		}
		pos := 0
		for i := range count {
			c := count[i]
			count[i] = pos
			pos += c
		}
		for _, k := range src {
			b := (k >> shift) & 0xff
			dst[count[b]] = k
			count[b]++
		}
		src, dst = dst, src
	}
	if &src[0] != &keys[0] {
		copy(keys, src)
	}
}

// Pair is a (key, value) record sorted by Key. The connected components
// algorithm sorts border pixels by label (value = pixel position) and
// change arrays by old label (value = new label).
type Pair struct {
	Key   uint32
	Value uint32
}

// SortPairs sorts pairs ascending by Key (stable across equal keys for the
// radix path; the comparison path breaks ties by Value to stay
// deterministic).
func SortPairs(pairs []Pair) {
	if len(pairs) < RadixCutoff {
		sort.Slice(pairs, func(a, b int) bool {
			if pairs[a].Key != pairs[b].Key {
				return pairs[a].Key < pairs[b].Key
			}
			return pairs[a].Value < pairs[b].Value
		})
		return
	}
	RadixSortPairs(pairs)
}

// RadixSortPairs is the four-pass byte-wise LSD radix sort on Pair.Key.
// It is stable.
func RadixSortPairs(pairs []Pair) {
	n := len(pairs)
	if n < 2 {
		return
	}
	tmp := make([]Pair, n)
	var count [256]int
	src, dst := pairs, tmp
	for pass := 0; pass < 4; pass++ {
		shift := uint(pass * 8)
		for i := range count {
			count[i] = 0
		}
		for _, p := range src {
			count[(p.Key>>shift)&0xff]++
		}
		if count[int((src[0].Key>>shift)&0xff)] == n {
			continue
		}
		pos := 0
		for i := range count {
			c := count[i]
			count[i] = pos
			pos += c
		}
		for _, p := range src {
			b := (p.Key >> shift) & 0xff
			dst[count[b]] = p
			count[b]++
		}
		src, dst = dst, src
	}
	if &src[0] != &pairs[0] {
		copy(pairs, src)
	}
}

// UniquePairs compacts a Key-sorted pair slice to its first occurrence per
// Key, in place, returning the shortened slice (Step 3 of Procedure 1:
// "scan down the sorted array, copying all unique pairs into a new array").
func UniquePairs(pairs []Pair) []Pair {
	if len(pairs) == 0 {
		return pairs
	}
	out := 1
	for i := 1; i < len(pairs); i++ {
		if pairs[i].Key != pairs[out-1].Key {
			pairs[out] = pairs[i]
			out++
		}
	}
	return pairs[:out]
}

// SearchPairs returns the Value for key in a Key-sorted, deduplicated pair
// slice, or (0, false) if absent. This is the binary search the label
// update step performs per border pixel.
func SearchPairs(pairs []Pair, key uint32) (uint32, bool) {
	lo, hi := 0, len(pairs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if pairs[mid].Key < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(pairs) && pairs[lo].Key == key {
		return pairs[lo].Value, true
	}
	return 0, false
}
