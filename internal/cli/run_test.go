package cli

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"parimg"
	"parimg/internal/errs"
)

func runCapture(t *testing.T, name string, fn func() error) (int, string) {
	t.Helper()
	var buf bytes.Buffer
	code := runTo(&buf, name, fn)
	return code, buf.String()
}

func TestRunSuccess(t *testing.T) {
	code, out := runCapture(t, "imgcc", func() error { return nil })
	if code != 0 || out != "" {
		t.Fatalf("code %d, stderr %q", code, out)
	}
}

func TestRunErrorContract(t *testing.T) {
	code, out := runCapture(t, "imgcc", func() error { return errors.New("boom") })
	if code != 1 {
		t.Fatalf("code %d, want 1", code)
	}
	if out != "imgcc: boom\n" {
		t.Fatalf("stderr %q", out)
	}
}

func TestRunRecoversPanicsWithoutTrace(t *testing.T) {
	code, out := runCapture(t, "imghist", func() error { panic("index out of range") })
	if code != 1 {
		t.Fatalf("code %d, want 1", code)
	}
	if strings.Count(out, "\n") != 1 || !strings.HasPrefix(out, "imghist: internal error:") {
		t.Fatalf("want one-line internal error, got %q", out)
	}
	if strings.Contains(out, "goroutine") {
		t.Fatalf("stack trace leaked: %q", out)
	}
}

// TestRunCommandFailureModes drives each of the commands' real failure
// modes through the Run contract: every one must yield exit code 1 and a
// single "name: ..." stderr line, never a panic trace.
func TestRunCommandFailureModes(t *testing.T) {
	cases := []struct {
		name string
		fn   func() error
		kind error // optional errs sentinel the failure must match
	}{
		{"hostile PGM header", func() error {
			_, err := parimg.ReadPGM(strings.NewReader("P5\n0 0\n255\n"))
			return err
		}, errs.ErrGeometry},
		{"truncated PGM", func() error {
			_, err := parimg.ReadPGM(strings.NewReader("P5\n4 4\n255\nab"))
			return err
		}, errs.ErrBadInput},
		{"bad -algo", func() error {
			_, err := parimg.ParseAlgo("zig")
			return err
		}, nil},
		{"bad -p", func() error {
			_, err := parimg.NewSimulator(3, parimg.CM5)
			return err
		}, errs.ErrGeometry},
		{"bad -machine", func() error {
			_, err := parimg.MachineByName("pdp11")
			return err
		}, nil},
		{"bad -k on simulator", func() error {
			sim, err := parimg.NewSimulator(4, parimg.CM5)
			if err != nil {
				return err
			}
			_, err = sim.Histogram(parimg.GeneratePattern(parimg.Cross, 64), 3)
			return err
		}, errs.ErrGreyRange},
		{"grey pixel over k", func() error {
			_, err := parimg.HistogramSequential(parimg.RandomGrey(32, 16, 1), 4)
			return err
		}, errs.ErrGreyRange},
		{"bad -random density", func() error {
			_, err := parimg.RandomBinaryErr(64, 1.5, 1)
			return err
		}, errs.ErrBadInput},
		{"bad -n", func() error {
			_, err := parimg.GeneratePatternErr(parimg.Cross, -1)
			return err
		}, errs.ErrGeometry},
		{"label overflow", func() error {
			_, err := parimg.LabelParallelErr(&parimg.Image{N: parimg.MaxSide + 1}, parimg.LabelOptions{})
			return err
		}, errs.ErrLabelOverflow},
	}
	for _, c := range cases {
		var seen error
		code, out := runCapture(t, "imgcc", func() error {
			seen = c.fn()
			return seen
		})
		if seen == nil {
			t.Errorf("%s: failure mode did not fail", c.name)
			continue
		}
		if c.kind != nil && !errors.Is(seen, c.kind) {
			t.Errorf("%s: error %v is not %v", c.name, seen, c.kind)
		}
		if code != 1 {
			t.Errorf("%s: exit code %d, want 1", c.name, code)
		}
		if strings.Count(out, "\n") != 1 || !strings.HasPrefix(out, "imgcc: ") {
			t.Errorf("%s: want one-line imgcc stderr message, got %q", c.name, out)
		}
	}
}

// TestRunTimeoutExitCode pins the third leg of the exit-code contract:
// deadline and cancellation failures exit with code 2 and a one-line
// human-readable message, distinguishable (for scripts) from the input and
// internal errors that exit 1.
func TestRunTimeoutExitCode(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want string
	}{
		{"deadline", errs.Deadline("imgcc.label", 1500*time.Millisecond, context.DeadlineExceeded, "run exceeded the -timeout"),
			"imgcc: timed out after 1.5s\n"},
		{"canceled", errs.Canceled("imgcc.label", 2*time.Second, "interrupted"),
			"imgcc: canceled after 2s\n"},
		{"bare deadline sentinel", errs.ErrDeadline, "imgcc: timed out\n"},
	}
	for _, c := range cases {
		code, out := runCapture(t, "imgcc", func() error { return c.err })
		if code != 2 {
			t.Errorf("%s: exit code %d, want 2", c.name, code)
		}
		if out != c.want {
			t.Errorf("%s: stderr %q, want %q", c.name, out, c.want)
		}
	}
	// A real expired context routed through the public API must take the
	// same path.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	code, out := runCapture(t, "imgcc", func() error {
		_, err := parimg.LabelContext(ctx, parimg.GeneratePattern(parimg.Cross, 64), parimg.LabelOptions{})
		return err
	})
	if code != 2 {
		t.Errorf("public-API cancellation: exit code %d, want 2", code)
	}
	if !strings.HasPrefix(out, "imgcc: canceled") {
		t.Errorf("public-API cancellation: stderr %q", out)
	}
}
