// Package cli holds the flag conventions shared by the repo's commands, so
// imgcc, imghist and benchjson agree on flag names, defaults and semantics
// instead of re-implementing them with drift.
package cli

import (
	"flag"
	"runtime"
)

// WorkersUsage is the shared help text of the -workers flag.
const WorkersUsage = "worker goroutines for the host-parallel engine (<= 0 selects GOMAXPROCS)"

// WorkersFlag registers the canonical -workers flag on fs: name "workers",
// default 0 (meaning GOMAXPROCS at use time). Pass flag.CommandLine from a
// command's main.
func WorkersFlag(fs *flag.FlagSet) *int {
	return fs.Int("workers", 0, WorkersUsage)
}

// Workers normalizes a parsed -workers value: n <= 0 selects
// runtime.GOMAXPROCS(0), anything positive is taken as-is.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}
