// Package cli holds the flag conventions shared by the repo's commands, so
// imgcc, imghist and benchjson agree on flag names, defaults, help text and
// semantics instead of re-implementing them with drift. Every shared flag
// has one usage constant and one constructor here; a command that needs the
// flag calls the constructor and gets identical help output to its
// siblings (pinned by the help-consistency test).
package cli

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"parimg/internal/errs"
	"parimg/internal/obs"
)

// Run executes a command body under the commands' failure contract: a
// returned error prints as a single "name: error" line on stderr and yields
// exit code 1; a run stopped by -timeout or cancellation (an error wrapping
// errs.ErrDeadline or errs.ErrCanceled) prints a one-line "timed out after
// Xs" / "canceled after Xs" message and yields exit code 2, so scripts can
// tell "the input was bad" from "the work was cut short"; a panic escaping
// fn is recovered into the same one-line form (no goroutine stack trace
// reaches the user) and yields 1; success yields 0. Command mains are
// expected to be exactly
//
//	func main() { os.Exit(cli.Run("imgcc", run)) }
//
// so every failure mode, including bugs, exits identically.
func Run(name string, fn func() error) int {
	return runTo(os.Stderr, name, fn)
}

// runTo is Run writing to an explicit stderr, for tests.
func runTo(stderr io.Writer, name string, fn func() error) (code int) {
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintf(stderr, "%s: internal error: %v\n", name, r)
			code = 1
		}
	}()
	if err := fn(); err != nil {
		if msg, ok := cutShortMessage(err); ok {
			fmt.Fprintf(stderr, "%s: %s\n", name, msg)
			return 2
		}
		fmt.Fprintf(stderr, "%s: %v\n", name, err)
		return 1
	}
	return 0
}

// cutShortMessage maps a deadline/cancellation error to the one-line exit-2
// message, dropping the internal operation and cause detail: the user asked
// for the run to be bounded and it was — how far it got is all that matters.
func cutShortMessage(err error) (string, bool) {
	var verb string
	switch {
	case errors.Is(err, errs.ErrDeadline):
		verb = "timed out"
	case errors.Is(err, errs.ErrCanceled):
		verb = "canceled"
	default:
		return "", false
	}
	var re *errs.RunError
	if errors.As(err, &re) && re.After > 0 {
		return fmt.Sprintf("%s after %s", verb, re.After.Round(time.Millisecond)), true
	}
	return verb, true
}

// Shared usage strings. Commands must not restate these inline.
const (
	// WorkersUsage is the help text of the -workers flag.
	WorkersUsage = "worker goroutines for the host-parallel engine (<= 0 selects GOMAXPROCS)"
	// BackendUsage is the help text of the -backend flag.
	BackendUsage = "execution backend: sim (BDM simulator), par (host-parallel), seq (sequential)"
	// AlgoUsage is the help text of the -algo flag.
	AlgoUsage = "strip labeling algorithm for -backend par: auto (runs for binary and grey), bfs or runs"
	// MergeUsage is the help text of the -merge flag.
	MergeUsage = "border-merge backend for -backend par: auto (pick by boundary-edge density), tree (concurrent union-find) or sv (Shiloach-Vishkin rounds)"
	// MetricsUsage is the help text of the -metrics flag.
	MetricsUsage = "write a " + obs.Schema + " JSON metrics document (phase times, counters, comm volume) to this file"
	// PatternUsage is the help text of the -pattern flag.
	PatternUsage = "catalog test image name (e.g. dual-spiral, filled-disc, cross)"
	// RandomUsage is the help text of the -random flag.
	RandomUsage = "random binary image with this foreground density"
	// DarpaUsage is the help text of the -darpa flag.
	DarpaUsage = "use the synthetic DARPA benchmark scene (512x512, 256 greys)"
	// InUsage is the help text of the -in flag.
	InUsage = "read a PGM image from this file"
	// NUsage is the help text of the -n flag.
	NUsage = "image side for generated images"
	// PUsage is the help text of the -p flag.
	PUsage = "number of simulated processors (power of two)"
	// MachineUsage is the help text of the -machine flag.
	MachineUsage = "machine profile: cm5, sp1, sp2, cs2, paragon, ideal"
	// SeedUsage is the help text of the -seed flag.
	SeedUsage = "seed for random images"
	// TimeoutUsage is the help text of the -timeout flag.
	TimeoutUsage = "abort the run after this duration (e.g. 30s; 0 disables) and exit with code 2"
	// StreamUsage is the help text of imgcc's -stream flag.
	StreamUsage = "label the -in PGM out of core in band windows (rectangular and taller-than-65535 images allowed)"
	// BandRowsUsage is the help text of the -band-rows flag.
	BandRowsUsage = "rows per band window for -stream (<= 0 derives from a 4Mi-pixel budget)"
	// OutUsage is the help text of the -out flag.
	OutUsage = "write the dense-renumbered label PGM to this file (-stream only; written atomically, no partial file on failure)"
	// CheckpointUsage is the help text of the -checkpoint flag.
	CheckpointUsage = "durable checkpoint file for -stream: rewritten crash-atomically every -checkpoint-every bands so -resume can continue a killed run"
	// CheckpointEveryUsage is the help text of the -checkpoint-every flag.
	CheckpointEveryUsage = "bands between -checkpoint records (<= 0 selects the default cadence)"
	// ResumeUsage is the help text of the -resume flag.
	ResumeUsage = "resume -stream from the -checkpoint record; output is byte-identical to an uninterrupted run"
	// CensusJSONUsage is the help text of the -census-json flag.
	CensusJSONUsage = "write the -stream census as deterministic JSON to this file (written atomically)"

	// AddrUsage is the help text of imgccd's -addr flag.
	AddrUsage = "listen address for the HTTP server"
	// EnginesUsage is the help text of imgccd's -engines flag.
	EnginesUsage = "concurrent label tasks (runner goroutines, one rented engine each; <= 0 derives from the core budget)"
	// EngineWorkersUsage is the help text of imgccd's -engine-workers flag.
	EngineWorkersUsage = "strip workers per engine (<= 0 selects 1); engines x engine-workers must fit ceil(GOMAXPROCS x oversub)"
	// OversubUsage is the help text of imgccd's -oversub flag.
	OversubUsage = "core budget multiplier: engines x engine-workers may use up to ceil(GOMAXPROCS x this)"
	// QueueUsage is the help text of imgccd's -queue flag.
	QueueUsage = "admission queue depth; requests beyond it are rejected with 429 (<= 0 selects 2 x engines)"
	// RequestDeadlineUsage is the help text of imgccd's -request-deadline flag.
	RequestDeadlineUsage = "default per-request labeling deadline (e.g. 30s; 0 disables); requests may set a tighter deadline_ms"
)

// WorkersFlag registers the canonical -workers flag on fs: name "workers",
// default 0 (meaning GOMAXPROCS at use time). Pass flag.CommandLine from a
// command's main.
func WorkersFlag(fs *flag.FlagSet) *int {
	return fs.Int("workers", 0, WorkersUsage)
}

// BackendFlag registers the canonical -backend flag (default "sim").
func BackendFlag(fs *flag.FlagSet) *string {
	return fs.String("backend", "sim", BackendUsage)
}

// AlgoFlag registers the canonical -algo flag (default "auto").
func AlgoFlag(fs *flag.FlagSet) *string {
	return fs.String("algo", "auto", AlgoUsage)
}

// MergeFlag registers the canonical -merge flag (default "auto").
func MergeFlag(fs *flag.FlagSet) *string {
	return fs.String("merge", "auto", MergeUsage)
}

// MetricsFlag registers the canonical -metrics flag (default "", disabled).
func MetricsFlag(fs *flag.FlagSet) *string {
	return fs.String("metrics", "", MetricsUsage)
}

// PatternFlag registers the canonical -pattern flag (default "", none).
func PatternFlag(fs *flag.FlagSet) *string {
	return fs.String("pattern", "", PatternUsage)
}

// RandomFlag registers the canonical -random flag (default -1, disabled).
func RandomFlag(fs *flag.FlagSet) *float64 {
	return fs.Float64("random", -1, RandomUsage)
}

// DarpaFlag registers the canonical -darpa flag (default false).
func DarpaFlag(fs *flag.FlagSet) *bool {
	return fs.Bool("darpa", false, DarpaUsage)
}

// InFlag registers the canonical -in flag (default "", none).
func InFlag(fs *flag.FlagSet) *string {
	return fs.String("in", "", InUsage)
}

// NFlag registers the canonical -n flag (default 512).
func NFlag(fs *flag.FlagSet) *int {
	return fs.Int("n", 512, NUsage)
}

// PFlag registers the canonical -p flag (default 32).
func PFlag(fs *flag.FlagSet) *int {
	return fs.Int("p", 32, PUsage)
}

// MachineFlag registers the canonical -machine flag (default "cm5").
func MachineFlag(fs *flag.FlagSet) *string {
	return fs.String("machine", "cm5", MachineUsage)
}

// SeedFlag registers the canonical -seed flag (default 1).
func SeedFlag(fs *flag.FlagSet) *uint64 {
	return fs.Uint64("seed", 1, SeedUsage)
}

// TimeoutFlag registers the canonical -timeout flag (default 0, disabled).
func TimeoutFlag(fs *flag.FlagSet) *time.Duration {
	return fs.Duration("timeout", 0, TimeoutUsage)
}

// StreamFlag registers the canonical -stream flag (default false).
func StreamFlag(fs *flag.FlagSet) *bool {
	return fs.Bool("stream", false, StreamUsage)
}

// BandRowsFlag registers the canonical -band-rows flag (default 0, derived).
func BandRowsFlag(fs *flag.FlagSet) *int {
	return fs.Int("band-rows", 0, BandRowsUsage)
}

// OutFlag registers the canonical -out flag (default "", none).
func OutFlag(fs *flag.FlagSet) *string {
	return fs.String("out", "", OutUsage)
}

// CheckpointFlag registers the canonical -checkpoint flag (default "",
// disabled).
func CheckpointFlag(fs *flag.FlagSet) *string {
	return fs.String("checkpoint", "", CheckpointUsage)
}

// CheckpointEveryFlag registers the canonical -checkpoint-every flag
// (default 0, meaning the stream package's default cadence).
func CheckpointEveryFlag(fs *flag.FlagSet) *int {
	return fs.Int("checkpoint-every", 0, CheckpointEveryUsage)
}

// ResumeFlag registers the canonical -resume flag (default false).
func ResumeFlag(fs *flag.FlagSet) *bool {
	return fs.Bool("resume", false, ResumeUsage)
}

// CensusJSONFlag registers the canonical -census-json flag (default "",
// disabled).
func CensusJSONFlag(fs *flag.FlagSet) *string {
	return fs.String("census-json", "", CensusJSONUsage)
}

// AddrFlag registers the canonical -addr flag (default ":8080").
func AddrFlag(fs *flag.FlagSet) *string {
	return fs.String("addr", ":8080", AddrUsage)
}

// EnginesFlag registers the canonical -engines flag (default 0, derived).
func EnginesFlag(fs *flag.FlagSet) *int {
	return fs.Int("engines", 0, EnginesUsage)
}

// EngineWorkersFlag registers the canonical -engine-workers flag (default
// 0, meaning 1). The name is deliberately distinct from -workers: the
// batch commands' -workers sizes one engine, while the server splits the
// machine across engines.
func EngineWorkersFlag(fs *flag.FlagSet) *int {
	return fs.Int("engine-workers", 0, EngineWorkersUsage)
}

// OversubFlag registers the canonical -oversub flag (default 1.0).
func OversubFlag(fs *flag.FlagSet) *float64 {
	return fs.Float64("oversub", 1.0, OversubUsage)
}

// QueueFlag registers the canonical -queue flag (default 0, derived).
func QueueFlag(fs *flag.FlagSet) *int {
	return fs.Int("queue", 0, QueueUsage)
}

// RequestDeadlineFlag registers the canonical -request-deadline flag
// (default 0, disabled).
func RequestDeadlineFlag(fs *flag.FlagSet) *time.Duration {
	return fs.Duration("request-deadline", 0, RequestDeadlineUsage)
}

// TimeoutContext resolves a parsed -timeout value into the context bounding
// the command's runs: a background context when d <= 0 (the flag default),
// else a context that expires after d. The caller must defer cancel.
func TimeoutContext(d time.Duration) (context.Context, context.CancelFunc) {
	if d <= 0 {
		return context.Background(), func() {}
	}
	return context.WithTimeout(context.Background(), d)
}

// Workers normalizes a parsed -workers value: n <= 0 selects
// runtime.GOMAXPROCS(0), anything positive is taken as-is.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ImageName returns the metrics-document name of the input the standard
// image-selection flags resolve to, mirroring the precedence of the
// commands' loadImage helpers: an input file beats -darpa beats -pattern
// beats the random fallback.
func ImageName(pattern string, darpa bool, inFile string) string {
	switch {
	case inFile != "":
		return inFile
	case darpa:
		return "darpa"
	case pattern != "":
		return pattern
	}
	return "random"
}

// WriteMetrics validates m and writes it to path as indented JSON. A no-op
// when path is empty (the -metrics flag default), so commands call it
// unconditionally.
func WriteMetrics(path string, m *obs.Metrics) error {
	if path == "" {
		return nil
	}
	if err := m.Validate(); err != nil {
		return fmt.Errorf("cli: refusing to write invalid metrics: %w", err)
	}
	return obs.WriteFile(path, m)
}

// WriteMetricsList validates every document and writes the list to path as
// one indented JSON array — the multi-configuration form benchjson emits. A
// no-op when path is empty.
func WriteMetricsList(path string, ms []*obs.Metrics) error {
	if path == "" {
		return nil
	}
	for i, m := range ms {
		if err := m.Validate(); err != nil {
			return fmt.Errorf("cli: refusing to write invalid metrics (entry %d): %w", i, err)
		}
	}
	return obs.WriteFileList(path, ms)
}
