package cli

import (
	"flag"
	"runtime"
	"testing"
)

func TestWorkersNormalization(t *testing.T) {
	p := runtime.GOMAXPROCS(0)
	cases := []struct{ in, want int }{
		{0, p}, {-1, p}, {-100, p}, {1, 1}, {7, 7}, {p, p},
	}
	for _, c := range cases {
		if got := Workers(c.in); got != c.want {
			t.Errorf("Workers(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestWorkersFlag(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	w := WorkersFlag(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if *w != 0 {
		t.Fatalf("default -workers = %d, want 0", *w)
	}
	if got := Workers(*w); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("normalized default = %d, want GOMAXPROCS", got)
	}

	fs2 := flag.NewFlagSet("y", flag.ContinueOnError)
	w2 := WorkersFlag(fs2)
	if err := fs2.Parse([]string{"-workers", "5"}); err != nil {
		t.Fatal(err)
	}
	if Workers(*w2) != 5 {
		t.Fatalf("parsed -workers 5 -> %d", Workers(*w2))
	}
}
