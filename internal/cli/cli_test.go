package cli

import (
	"flag"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"parimg/internal/obs"
)

func TestWorkersNormalization(t *testing.T) {
	p := runtime.GOMAXPROCS(0)
	cases := []struct{ in, want int }{
		{0, p}, {-1, p}, {-100, p}, {1, 1}, {7, 7}, {p, p},
	}
	for _, c := range cases {
		if got := Workers(c.in); got != c.want {
			t.Errorf("Workers(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestWorkersFlag(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	w := WorkersFlag(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if *w != 0 {
		t.Fatalf("default -workers = %d, want 0", *w)
	}
	if got := Workers(*w); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("normalized default = %d, want GOMAXPROCS", got)
	}

	fs2 := flag.NewFlagSet("y", flag.ContinueOnError)
	w2 := WorkersFlag(fs2)
	if err := fs2.Parse([]string{"-workers", "5"}); err != nil {
		t.Fatal(err)
	}
	if Workers(*w2) != 5 {
		t.Fatalf("parsed -workers 5 -> %d", Workers(*w2))
	}
}

func TestFlagConstructorsRegisterCanonicalNames(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	WorkersFlag(fs)
	BackendFlag(fs)
	AlgoFlag(fs)
	MetricsFlag(fs)
	PatternFlag(fs)
	RandomFlag(fs)
	DarpaFlag(fs)
	InFlag(fs)
	NFlag(fs)
	PFlag(fs)
	MachineFlag(fs)
	SeedFlag(fs)
	for _, name := range []string{
		"workers", "backend", "algo", "metrics", "pattern", "random",
		"darpa", "in", "n", "p", "machine", "seed",
	} {
		if fs.Lookup(name) == nil {
			t.Errorf("constructor did not register -%s", name)
		}
	}
	if f := fs.Lookup("backend"); f != nil && f.DefValue != "sim" {
		t.Errorf("-backend default = %q, want sim", f.DefValue)
	}
	if f := fs.Lookup("algo"); f != nil && f.DefValue != "auto" {
		t.Errorf("-algo default = %q, want auto", f.DefValue)
	}
}

func TestImageName(t *testing.T) {
	cases := []struct {
		pattern, in string
		darpa       bool
		want        string
	}{
		{"", "", false, "random"},
		{"dual-spiral", "", false, "dual-spiral"},
		{"", "", true, "darpa"},
		{"dual-spiral", "", true, "darpa"},
		{"dual-spiral", "scene.pgm", true, "scene.pgm"},
	}
	for _, c := range cases {
		if got := ImageName(c.pattern, c.darpa, c.in); got != c.want {
			t.Errorf("ImageName(%q, %v, %q) = %q, want %q",
				c.pattern, c.darpa, c.in, got, c.want)
		}
	}
}

func TestWriteMetrics(t *testing.T) {
	// Empty path is a silent no-op.
	if err := WriteMetrics("", &obs.Metrics{}); err != nil {
		t.Fatalf("WriteMetrics(\"\") = %v, want nil", err)
	}

	r := obs.NewRecorder()
	t0 := r.StartPhase()
	r.EndPhase("work", "", t0)
	m := r.Snapshot()
	m.Command, m.Backend = "test", "par"

	path := filepath.Join(t.TempDir(), "m.json")
	if err := WriteMetrics(path, m); err != nil {
		t.Fatal(err)
	}
	back, err := obs.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Schema != obs.Schema || back.Command != "test" || len(back.Phases) != 1 {
		t.Errorf("round trip mismatch: %+v", back)
	}

	// An invalid document (phase with unknown parent) must be rejected
	// before anything is written.
	bad := &obs.Metrics{Schema: obs.Schema,
		Phases: []obs.Phase{{Name: "child", Parent: "absent"}}}
	badPath := filepath.Join(t.TempDir(), "bad.json")
	if err := WriteMetrics(badPath, bad); err == nil {
		t.Error("WriteMetrics accepted a document with a dangling parent")
	}
	if _, statErr := os.Stat(badPath); !os.IsNotExist(statErr) {
		t.Error("invalid document was written to disk")
	}
}

func TestWriteMetricsList(t *testing.T) {
	if err := WriteMetricsList("", nil); err != nil {
		t.Fatalf("WriteMetricsList(\"\") = %v, want nil", err)
	}
	r := obs.NewRecorder()
	t0 := r.StartPhase()
	r.EndPhase("a", "", t0)
	m1 := r.Snapshot()
	r.Reset()
	t0 = r.StartPhase()
	r.EndPhase("b", "", t0)
	m2 := r.Snapshot()

	path := filepath.Join(t.TempDir(), "list.json")
	if err := WriteMetricsList(path, []*obs.Metrics{m1, m2}); err != nil {
		t.Fatal(err)
	}
	back, err := obs.ReadFileList(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[0].Phases[0].Name != "a" || back[1].Phases[0].Name != "b" {
		t.Errorf("round trip mismatch: %d docs", len(back))
	}
}
