package cli

import (
	"bytes"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// helpFlags runs `go run ./cmd/<name> -h` from the module root and parses
// the usage output into a flag-name -> usage-text map. The flag package
// prints each flag as "  -name type\n    \tusage..." (or "  -name\n" for
// booleans).
func helpFlags(t *testing.T, name string) map[string]string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", "run", "./cmd/"+name, "-h")
	cmd.Dir = root
	var out bytes.Buffer
	cmd.Stderr = &out
	cmd.Stdout = &out
	_ = cmd.Run() // -h exits 2; the usage text is what matters

	flags := make(map[string]string)
	var cur string
	for _, line := range strings.Split(out.String(), "\n") {
		switch {
		case strings.HasPrefix(line, "  -"):
			cur = strings.Fields(line)[0][1:]
		case strings.HasPrefix(line, "    \t") && cur != "":
			flags[cur] += strings.TrimPrefix(line, "    \t")
		}
	}
	if len(flags) == 0 {
		t.Fatalf("no flags parsed from %s -h output:\n%s", name, out.String())
	}
	return flags
}

// TestSharedFlagHelpIsIdentical pins the satellite guarantee that the
// commands agree on the help text of every flag they share: any flag name
// registered by more than one command must print the same usage string in
// each, so the centralized constants in this package cannot drift apart
// again.
func TestSharedFlagHelpIsIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("builds four commands; skipped in -short mode")
	}
	commands := []string{"imgcc", "imghist", "benchjson", "imgccd"}
	perCmd := make(map[string]map[string]string, len(commands))
	for _, c := range commands {
		perCmd[c] = helpFlags(t, c)
	}
	seen := make(map[string]string) // flag -> "cmd\x00usage" of first sighting
	for _, c := range commands {
		for f, usage := range perCmd[c] {
			if prev, ok := seen[f]; ok {
				firstCmd, firstUsage, _ := strings.Cut(prev, "\x00")
				if usage != firstUsage {
					t.Errorf("flag -%s help drifted:\n  %s: %q\n  %s: %q",
						f, firstCmd, firstUsage, c, usage)
				}
			} else {
				seen[f] = c + "\x00" + usage
			}
		}
	}

	// The canonical shared flags must actually be present where expected.
	// The server registers its own flag family (-addr, -engines, ...) and
	// deliberately not -workers, whose batch semantics it splits across
	// engines; only the batch commands are held to the batch set.
	for _, c := range []string{"imgcc", "imghist", "benchjson"} {
		for _, f := range []string{"workers", "metrics"} {
			if _, ok := perCmd[c][f]; !ok {
				t.Errorf("%s does not register the shared -%s flag", c, f)
			}
		}
	}
	for _, f := range []string{"addr", "engines", "engine-workers", "oversub", "queue", "request-deadline"} {
		if _, ok := perCmd["imgccd"][f]; !ok {
			t.Errorf("imgccd does not register the -%s flag", f)
		}
	}
	for _, c := range []string{"imgcc", "imghist"} {
		for _, f := range []string{"backend", "pattern", "machine", "n", "p", "in", "darpa", "random", "seed"} {
			if _, ok := perCmd[c][f]; !ok {
				t.Errorf("%s does not register the shared -%s flag", c, f)
			}
		}
	}
	// The out-of-core streaming family is imgcc-only.
	for _, f := range []string{"stream", "band-rows", "out",
		"checkpoint", "checkpoint-every", "resume", "census-json"} {
		if _, ok := perCmd["imgcc"][f]; !ok {
			t.Errorf("imgcc does not register the -%s flag", f)
		}
	}
}
