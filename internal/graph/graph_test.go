package graph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"parimg/internal/seq"
)

func TestEmptyGraph(t *testing.T) {
	g := New(0)
	ids, c := g.Components()
	if len(ids) != 0 || c != 0 {
		t.Errorf("empty graph: ids=%v c=%d", ids, c)
	}
}

func TestIsolatedVertices(t *testing.T) {
	g := New(5)
	ids, c := g.Components()
	if c != 5 {
		t.Fatalf("5 isolated vertices: %d components", c)
	}
	seen := map[int32]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatal("two isolated vertices share a component")
		}
		seen[id] = true
	}
}

func TestPathAndCycle(t *testing.T) {
	g := New(6)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(3, 4)
	g.AddEdge(4, 5)
	g.AddEdge(5, 3) // cycle
	ids, c := g.Components()
	if c != 2 {
		t.Fatalf("want 2 components, got %d", c)
	}
	if ids[0] != ids[1] || ids[1] != ids[2] {
		t.Error("path not one component")
	}
	if ids[3] != ids[4] || ids[4] != ids[5] {
		t.Error("cycle not one component")
	}
	if ids[0] == ids[3] {
		t.Error("distinct components merged")
	}
}

func TestSelfLoopIgnored(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 0)
	if g.Degree(0) != 0 {
		t.Error("self-loop added to adjacency")
	}
	_, c := g.Components()
	if c != 2 {
		t.Errorf("want 2 components, got %d", c)
	}
}

func TestParallelEdgesTolerated(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	_, c := g.Components()
	if c != 1 {
		t.Errorf("want 1 component, got %d", c)
	}
}

func TestReset(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.Reset(2)
	if g.N() != 2 || g.Degree(0) != 0 {
		t.Error("Reset did not clear")
	}
	g.Reset(10)
	if g.N() != 10 {
		t.Errorf("Reset(10): N=%d", g.N())
	}
	_, c := g.Components()
	if c != 10 {
		t.Errorf("after Reset: %d components", c)
	}
}

func TestMinLabelPerComponent(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	ids, c := g.Components()
	labels := []uint32{40, 10, 5, 99}
	reps := MinLabelPerComponent(ids, c, labels)
	if reps[ids[0]] != 10 {
		t.Errorf("component of 0: rep %d, want 10", reps[ids[0]])
	}
	if reps[ids[2]] != 5 {
		t.Errorf("component of 2: rep %d, want 5", reps[ids[2]])
	}
}

// TestComponentsMatchUnionFind checks BFS components against an independent
// union-find on random graphs (property test).
func TestComponentsMatchUnionFind(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		g := New(n)
		d := seq.NewDisjointSet(n)
		for e := 0; e < rng.Intn(400); e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			g.AddEdge(u, v)
			if u != v {
				d.Union(int32(u), int32(v))
			}
		}
		ids, _ := g.Components()
		for u := 1; u < n; u++ {
			same := ids[u] == ids[0]
			ufSame := d.Find(int32(u)) == d.Find(0)
			if same != ufSame {
				return false
			}
		}
		// Full pairwise agreement via canonical maps.
		rep := map[int32]int32{}
		for u := 0; u < n; u++ {
			r := d.Find(int32(u))
			if prev, ok := rep[ids[u]]; ok {
				if prev != r {
					return false
				}
			} else {
				rep[ids[u]] = r
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
