// Package graph provides the adjacency-list graph and the sequential
// breadth-first-search connected components solver that the merge phase of
// the paper's algorithm runs on border pixels (Section 5.3: "The merging
// problem is converted into finding the connected components of a graph
// represented by the border pixels").
package graph

// Graph is a simple undirected graph on vertices 0..N-1 using adjacency
// lists. The maximum degree in the merge graphs is five (two same-label
// list edges plus up to three cross-border edges), so lists stay tiny.
type Graph struct {
	adj [][]int32
}

// New returns an empty graph on n vertices.
func New(n int) *Graph {
	return &Graph{adj: make([][]int32, n)}
}

// Reset resizes the graph to n vertices, reusing storage.
func (g *Graph) Reset(n int) {
	if cap(g.adj) >= n {
		g.adj = g.adj[:n]
		for i := range g.adj {
			g.adj[i] = g.adj[i][:0]
		}
		return
	}
	g.adj = make([][]int32, n)
}

// N returns the vertex count.
func (g *Graph) N() int { return len(g.adj) }

// AddEdge inserts the undirected edge (u, v). Self-loops are ignored;
// parallel edges are permitted (BFS tolerates them).
func (g *Graph) AddEdge(u, v int) {
	if u == v {
		return
	}
	g.adj[u] = append(g.adj[u], int32(v))
	g.adj[v] = append(g.adj[v], int32(u))
}

// Degree returns the degree of vertex u (counting parallel edges).
func (g *Graph) Degree(u int) int { return len(g.adj[u]) }

// Components labels each vertex with a component id in 0..c-1 using
// breadth-first search and returns (ids, c). Runs in O(|V| + |E|).
func (g *Graph) Components() ([]int32, int) {
	n := len(g.adj)
	comp := make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	queue := make([]int32, 0, n)
	c := 0
	for s := 0; s < n; s++ {
		if comp[s] >= 0 {
			continue
		}
		comp[s] = int32(c)
		queue = append(queue[:0], int32(s))
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range g.adj[u] {
				if comp[v] < 0 {
					comp[v] = int32(c)
					queue = append(queue, v)
				}
			}
		}
		c++
	}
	return comp, c
}

// MinLabelPerComponent returns, for a labeling of the vertices, the minimum
// vertex label within each component: reps[c] = min over vertices v in
// component c of labels[v]. ids and count must come from Components.
func MinLabelPerComponent(ids []int32, count int, labels []uint32) []uint32 {
	reps := make([]uint32, count)
	for i := range reps {
		reps[i] = ^uint32(0)
	}
	for v, c := range ids {
		if labels[v] < reps[c] {
			reps[c] = labels[v]
		}
	}
	return reps
}
