package stream

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"io"
	"os"

	"parimg/internal/atomicio"
	"parimg/internal/errs"
	"parimg/internal/image"
	"parimg/internal/seq"
)

// The durable checkpoint record of the streaming census pass (DESIGN.md
// §15). One record captures everything pass 1 needs to continue from the
// next band as if it had never stopped:
//
//   - a fingerprint of the run: the input's raw header bytes, its
//     geometry (width, height, maxval, data offset), and the options that
//     shape the band decomposition and the labeling (connectivity, mode,
//     band rows) — resume refuses a checkpoint whose fingerprint drifted,
//     because band-local labels would no longer line up;
//   - the resume point: the index of the next uncommitted band;
//   - the census state at that point: the sparse union-find forest, the
//     per-fragment size map, the running strip-component/link/pair/edge
//     tallies, and the previous band's bottom pixel and lifted-label rows
//     against which the next band's seam is re-extracted.
//
// The on-disk form is little-endian binary: an 8-byte magic, a version
// word, the fields above, and a trailing CRC-32C over every preceding
// byte. Records are written crash-atomically (temp sibling + fsync +
// rename via internal/atomicio), so the path always holds either the
// previous complete record or the new one — a torn write is impossible to
// observe, and any bit flip that survives the filesystem fails the
// checksum and surfaces as ErrCheckpointCorrupt rather than wrong pixels.

// ckptMagic opens every checkpoint record.
var ckptMagic = [8]byte{'P', 'I', 'M', 'G', 'C', 'K', 'P', 'T'}

// ckptVersion is the current record version; readers reject others.
const ckptVersion = 1

// checkpoint is the in-memory form of one record.
type checkpoint struct {
	// Fingerprint.
	conn       image.Connectivity
	mode       seq.Mode
	bandRows   int
	width      int
	height     int
	maxVal     int
	dataOffset int64
	header     []byte // the input's raw bytes [0, dataOffset)

	// Resume point: the census pass continues at band index nextBand
	// (0-based); bands [0, nextBand) are committed below.
	nextBand int

	// Census state after band nextBand-1.
	stripComps int64
	links      int64
	pairs      int64
	edges      int64
	prevPix    []uint32 // bottom pixel row of band nextBand-1
	prevLab    []uint64 // bottom lifted-label row of band nextBand-1
	parent     map[uint64]uint64
	sizes      map[uint64]int64
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ckptEncoder writes little-endian fields, latching the first error.
type ckptEncoder struct {
	w   io.Writer
	buf [8]byte
	err error
}

func (e *ckptEncoder) raw(b []byte) {
	if e.err == nil {
		_, e.err = e.w.Write(b)
	}
}

func (e *ckptEncoder) u32(v uint32) {
	binary.LittleEndian.PutUint32(e.buf[:4], v)
	e.raw(e.buf[:4])
}

func (e *ckptEncoder) u64(v uint64) {
	binary.LittleEndian.PutUint64(e.buf[:], v)
	e.raw(e.buf[:])
}

// writeFile commits the record to path crash-atomically.
func (c *checkpoint) writeFile(path string) error {
	return atomicio.WriteFile(path, func(w io.Writer) error {
		bw := bufio.NewWriterSize(w, 1<<16)
		crc := crc32.New(crcTable)
		e := &ckptEncoder{w: io.MultiWriter(bw, crc)}
		e.raw(ckptMagic[:])
		e.u32(ckptVersion)
		e.u32(uint32(c.conn))
		e.u32(uint32(c.mode))
		e.u64(uint64(c.bandRows))
		e.u64(uint64(c.width))
		e.u64(uint64(c.height))
		e.u64(uint64(c.maxVal))
		e.u64(uint64(c.dataOffset))
		e.u64(uint64(len(c.header)))
		e.raw(c.header)
		e.u64(uint64(c.nextBand))
		e.u64(uint64(c.stripComps))
		e.u64(uint64(c.links))
		e.u64(uint64(c.pairs))
		e.u64(uint64(c.edges))
		e.u64(uint64(len(c.prevPix)))
		for _, v := range c.prevPix {
			e.u32(v)
		}
		e.u64(uint64(len(c.prevLab)))
		for _, v := range c.prevLab {
			e.u64(v)
		}
		e.u64(uint64(len(c.parent)))
		for child, par := range c.parent {
			e.u64(child)
			e.u64(par)
		}
		e.u64(uint64(len(c.sizes)))
		for lab, size := range c.sizes {
			e.u64(lab)
			e.u64(uint64(size))
		}
		if e.err != nil {
			return e.err
		}
		var tail [4]byte
		binary.LittleEndian.PutUint32(tail[:], crc.Sum32())
		if _, err := bw.Write(tail[:]); err != nil {
			return err
		}
		return bw.Flush()
	})
}

// ckptDecoder reads little-endian fields from a byte slice, latching
// truncation; callers check bad once at the end.
type ckptDecoder struct {
	data []byte
	off  int
	bad  bool
}

func (d *ckptDecoder) raw(n int) []byte {
	if d.bad || n < 0 || n > len(d.data)-d.off {
		d.bad = true
		return nil
	}
	b := d.data[d.off : d.off+n]
	d.off += n
	return b
}

func (d *ckptDecoder) u32() uint32 {
	b := d.raw(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *ckptDecoder) u64() uint64 {
	b := d.raw(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// remaining returns the unread byte count, for pre-allocation bounds.
func (d *ckptDecoder) remaining() int { return len(d.data) - d.off }

// loadCheckpoint reads and structurally validates a checkpoint record:
// magic, version, checksum, and field plausibility. Every failure is an
// ErrCheckpointCorrupt; fingerprint comparison against the live run is
// the caller's job (checkpoint.matches).
func loadCheckpoint(path string) (*checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, errs.Bad(op, "reading checkpoint: %v", err)
	}
	if len(data) < len(ckptMagic)+8 {
		return nil, errs.CheckpointCorrupt(op, "checkpoint %s holds %d bytes, too short for a record", path, len(data))
	}
	if !bytes.Equal(data[:len(ckptMagic)], ckptMagic[:]) {
		return nil, errs.CheckpointCorrupt(op, "checkpoint %s does not start with the record magic", path)
	}
	if v := binary.LittleEndian.Uint32(data[8:12]); v != ckptVersion {
		return nil, errs.CheckpointCorrupt(op, "checkpoint %s is record version %d; this build reads version %d", path, v, ckptVersion)
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if got, want := crc32.Checksum(body, crcTable), binary.LittleEndian.Uint32(tail); got != want {
		return nil, errs.CheckpointCorrupt(op, "checkpoint %s fails its checksum (stored %08x, computed %08x)", path, want, got)
	}

	d := &ckptDecoder{data: body, off: len(ckptMagic) + 4}
	c := &checkpoint{
		conn:       image.Connectivity(d.u32()),
		mode:       seq.Mode(d.u32()),
		bandRows:   int(d.u64()),
		width:      int(d.u64()),
		height:     int(d.u64()),
		maxVal:     int(d.u64()),
		dataOffset: int64(d.u64()),
	}
	hlen := int(d.u64())
	if hlen < 0 || hlen > image.MaxStreamHeaderBytes {
		return nil, errs.CheckpointCorrupt(op, "checkpoint %s declares a %d-byte input header", path, hlen)
	}
	c.header = append([]byte(nil), d.raw(hlen)...)
	c.nextBand = int(d.u64())
	c.stripComps = int64(d.u64())
	c.links = int64(d.u64())
	c.pairs = int64(d.u64())
	c.edges = int64(d.u64())

	npix := int(d.u64())
	if npix < 0 || npix > d.remaining()/4 {
		return nil, errs.CheckpointCorrupt(op, "checkpoint %s declares %d boundary pixels past its own size", path, npix)
	}
	c.prevPix = make([]uint32, npix)
	for i := range c.prevPix {
		c.prevPix[i] = d.u32()
	}
	nlab := int(d.u64())
	if nlab < 0 || nlab > d.remaining()/8 {
		return nil, errs.CheckpointCorrupt(op, "checkpoint %s declares %d boundary labels past its own size", path, nlab)
	}
	c.prevLab = make([]uint64, nlab)
	for i := range c.prevLab {
		c.prevLab[i] = d.u64()
	}
	nuf := int(d.u64())
	if nuf < 0 || nuf > d.remaining()/16 {
		return nil, errs.CheckpointCorrupt(op, "checkpoint %s declares %d forest links past its own size", path, nuf)
	}
	c.parent = make(map[uint64]uint64, nuf)
	for i := 0; i < nuf; i++ {
		child, par := d.u64(), d.u64()
		c.parent[child] = par
	}
	nsz := int(d.u64())
	if nsz < 0 || nsz > d.remaining()/16 {
		return nil, errs.CheckpointCorrupt(op, "checkpoint %s declares %d fragment sizes past its own size", path, nsz)
	}
	c.sizes = make(map[uint64]int64, nsz)
	for i := 0; i < nsz; i++ {
		lab, size := d.u64(), int64(d.u64())
		c.sizes[lab] = size
	}
	if d.bad || d.remaining() != 0 {
		return nil, errs.CheckpointCorrupt(op, "checkpoint %s record is truncated or carries trailing bytes", path)
	}

	// Field plausibility: the checksum says the bytes are intact, but a
	// crafted record must still fail typed instead of driving the pipeline
	// into impossible state.
	if c.width < 1 || c.height < 1 || c.bandRows < 1 || c.dataOffset < 0 ||
		c.stripComps < 0 || c.links < 0 || c.pairs < 0 || c.edges < 0 {
		return nil, errs.CheckpointCorrupt(op, "checkpoint %s carries impossible geometry or tallies", path)
	}
	totalBands := (c.height + c.bandRows - 1) / c.bandRows
	if c.nextBand < 1 || c.nextBand > totalBands {
		return nil, errs.CheckpointCorrupt(op, "checkpoint %s resumes at band %d of %d", path, c.nextBand, totalBands)
	}
	if len(c.prevPix) != c.width || len(c.prevLab) != c.width {
		return nil, errs.CheckpointCorrupt(op, "checkpoint %s boundary rows hold %d/%d entries for width %d",
			path, len(c.prevPix), len(c.prevLab), c.width)
	}
	return c, nil
}

// matches compares the checkpoint's fingerprint against the live run:
// the freshly read input header bytes and geometry, and the resume
// options that shape the labeling. Any drift is an ErrCheckpointMismatch —
// resuming would replay seams against the wrong rows and silently emit
// wrong pixels, which is exactly what the typed refusal prevents.
func (c *checkpoint) matches(hdr image.PGMHeader, header []byte,
	conn image.Connectivity, mode seq.Mode, bandRows int) error {
	if c.width != hdr.Width || c.height != hdr.Height || c.maxVal != hdr.MaxVal || c.dataOffset != hdr.DataOffset {
		return errs.CheckpointMismatch(op,
			"checkpoint is for a %dx%d maxval-%d input (data at %d); this input is %dx%d maxval-%d (data at %d)",
			c.width, c.height, c.maxVal, c.dataOffset, hdr.Width, hdr.Height, hdr.MaxVal, hdr.DataOffset)
	}
	if !bytes.Equal(c.header, header) {
		return errs.CheckpointMismatch(op, "checkpoint was written for an input with different header bytes")
	}
	if c.conn != conn {
		return errs.CheckpointMismatch(op, "checkpoint was written with %v, resume asks for %v", c.conn, conn)
	}
	if c.mode != mode {
		return errs.CheckpointMismatch(op, "checkpoint was written in %v mode, resume asks for %v", c.mode, mode)
	}
	if c.bandRows != bandRows {
		return errs.CheckpointMismatch(op, "checkpoint was written with %d-row bands, resume asks for %d", c.bandRows, bandRows)
	}
	return nil
}

// readHeaderBytes fetches the input's raw header region [0, DataOffset) —
// the strongest practical fingerprint of "the same file": any edit to the
// header (dimensions, maxval, even a comment) changes these bytes.
func readHeaderBytes(r io.ReaderAt, hdr image.PGMHeader) ([]byte, error) {
	b := make([]byte, hdr.DataOffset)
	if _, err := r.ReadAt(b, 0); err != nil {
		return nil, errs.Bad(op, "re-reading the PGM header for the checkpoint fingerprint: %v", err)
	}
	return b, nil
}

// saveCheckpoint captures the pipeline's census state after band
// nextBand-1 committed and writes it durably; timed by the caller under
// the checkpoint_write phase.
func (p *pipeline) saveCheckpoint(nextBand int) error {
	c := &checkpoint{
		conn:       p.conn,
		mode:       p.mode,
		bandRows:   p.bandRows,
		width:      p.hdr.Width,
		height:     p.hdr.Height,
		maxVal:     p.hdr.MaxVal,
		dataOffset: p.hdr.DataOffset,
		header:     p.hdrBytes,
		nextBand:   nextBand,
		stripComps: p.stripComps,
		links:      p.links,
		pairs:      p.pairs,
		edges:      p.edges,
		prevPix:    p.prevPix,
		prevLab:    p.prevLab,
		parent:     p.uf.parent,
		sizes:      p.sizes,
	}
	if err := c.writeFile(p.ckptPath); err != nil {
		return errs.Bad(op, "writing checkpoint %s: %v", p.ckptPath, err)
	}
	return nil
}

// restore installs a validated checkpoint's state into the pipeline and
// returns the band index the census pass continues at.
func (p *pipeline) restore(c *checkpoint) int {
	p.stripComps = c.stripComps
	p.links = c.links
	p.pairs = c.pairs
	p.edges = c.edges
	p.prevPix = c.prevPix
	p.prevLab = c.prevLab
	p.uf.parent = c.parent
	p.sizes = c.sizes
	return c.nextBand
}
