// Package stream labels the connected components of images too large to
// hold in memory: an out-of-core pipeline that reads horizontal band
// windows of an on-disk PGM through image.PGMHeader, labels each band with
// the run-based sequential engine, and merges adjacent bands across their
// shared boundary row through the same slab-merge seam the host-parallel
// engine uses for its strip boundaries. Labels live in a 64-bit global
// space — the pixel's global row-major index plus one — so the total pixel
// count may exceed 2^32 and the resident MaxSide ceiling does not apply;
// memory stays O(band) plus the sparse merge state.
package stream

import (
	"sync/atomic"

	"parimg/internal/image"
	"parimg/internal/par"
	"parimg/internal/seq"
)

// UnionFind64 is a sparse union-find over the 64-bit global label space:
// parents live in a map, and a label with no entry is its own root, so
// only labels that actually reach a band boundary cost memory — the
// resident engine's flat parent array would need one word per pixel,
// which is exactly what an out-of-core run cannot afford. Linking is
// unite-by-minimum with path halving, the same discipline as the
// resident concurrent structure, so the root of every merged set is the
// set's minimum global seed label — the label the (hypothetical) resident
// sequential labeler would paint. Not safe for concurrent use; the band
// merge is sequential.
type UnionFind64 struct {
	parent map[uint64]uint64
}

// NewUnionFind64 returns an empty structure (every label its own root).
func NewUnionFind64() *UnionFind64 {
	return &UnionFind64{parent: make(map[uint64]uint64)}
}

// Find returns the root of x's set, halving the path as it walks.
func (u *UnionFind64) Find(x uint64) uint64 {
	for {
		p, ok := u.parent[x]
		if !ok {
			return x
		}
		gp, ok := u.parent[p]
		if !ok {
			return p
		}
		// Path halving: gp < p < x by unite-by-minimum, so the rewrite
		// only ever lowers the entry.
		u.parent[x] = gp
		x = gp
	}
}

// Unite merges the sets of a and b, linking the larger root under the
// smaller, and returns true when the call performed the link (false if
// they were already one set). It implements par.Uniter[uint64], so
// par.ResolveBoundary drives it directly.
func (u *UnionFind64) Unite(a, b uint64) bool {
	ra, rb := u.Find(a), u.Find(b)
	if ra == rb {
		return false
	}
	if ra > rb {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	return true
}

// Len returns the number of non-root labels — the memory the merge state
// actually holds, bounded by the number of cross-band links.
func (u *UnionFind64) Len() int { return len(u.parent) }

// Labels64 is one band's labeling lifted into the global space: the
// band-local uint32 labels (band-row-major seed index + 1, as the band
// labeler assigns) plus the band's global base offset. A pixel's global
// label is Base + its band-local label, which equals its component's
// minimum global row-major seed index + 1 within the band.
type Labels64 struct {
	// Base is the global seed offset of the band: r0 * cols for a band
	// starting at absolute row r0.
	Base uint64
	// Rows and Cols are the band dimensions.
	Rows, Cols int
	// Lab holds the Rows*Cols band-local labels (0 = background).
	Lab []uint32
}

// LiftRow writes row i's labels lifted into the global 64-bit space into
// dst (grown as needed and returned): background stays 0, foreground
// becomes Base + the band-local label.
func (l *Labels64) LiftRow(i int, dst []uint64) []uint64 {
	if cap(dst) < l.Cols {
		dst = make([]uint64, l.Cols)
	}
	dst = dst[:l.Cols]
	row := l.Lab[i*l.Cols : (i+1)*l.Cols]
	for j, v := range row {
		if v == 0 {
			dst[j] = 0
			continue
		}
		dst[j] = l.Base + uint64(v)
	}
	return dst
}

// MergeAdjacent resolves the boundary between two vertically adjacent
// label slabs: topPix/topLab are the bottom pixel and lifted-label rows of
// the upper slab, botPix/botLab the top rows of the lower slab, all of one
// width. Edges are extracted into edgeBuf (reused across calls) and fed to
// the union-find through the shared par seam — the identical extraction
// and resolution the resident engine runs on its strip boundaries, so the
// two paths produce the same forest. Returns the grown edge buffer, the
// raw adjacency count, and the number of links (unions of previously
// distinct sets). A non-nil stop is polled cooperatively.
func MergeAdjacent(uf *UnionFind64, topPix, botPix []uint32,
	topLab, botLab []uint64, conn image.Connectivity, mode seq.Mode,
	stop *atomic.Bool, edgeBuf []uint64) (edges []uint64, pairs int64, links int) {
	edges, pairs = par.AppendBoundaryEdges(edgeBuf[:0], topPix, botPix,
		topLab, botLab, conn, mode, stop)
	links = par.ResolveBoundary(edges, uf, stop)
	return edges, pairs, links
}
