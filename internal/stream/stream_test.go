package stream

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"sync/atomic"
	"testing"
	"time"

	"parimg/internal/errs"
	"parimg/internal/fault/leakcheck"
	"parimg/internal/image"
	"parimg/internal/obs"
	"parimg/internal/par"
	"parimg/internal/seq"
)

// encodePGM renders a rows x cols pixel buffer as a binary P5 PGM with the
// given maxval, using the format's one- or two-byte sample width. It is
// the test-side writer for arbitrary (including rectangular and 16-bit)
// inputs.
func encodePGM(pix []uint32, rows, cols, maxval int) []byte {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "P5\n%d %d\n%d\n", cols, rows, maxval)
	for _, v := range pix {
		if int(v) > maxval {
			v = uint32(maxval)
		}
		if maxval > 255 {
			buf.WriteByte(byte(v >> 8))
		}
		buf.WriteByte(byte(v))
	}
	return buf.Bytes()
}

// residentLabels labels a rows x cols buffer entirely in memory with the
// rectangular-native tile labeler, seeding labels with the global
// row-major index + 1 — the exact label space the streaming pipeline
// reproduces out of core.
func residentLabels(pix []uint32, rows, cols int, conn image.Connectivity,
	mode seq.Mode) ([]uint32, int) {
	lab := make([]uint32, rows*cols)
	comps, _ := seq.TileLabeler(pix, rows, cols, conn, mode,
		func(i, j int) uint32 { return uint32(i*cols+j) + 1 }, lab, nil, nil)
	return lab, comps
}

// renderDense renders a labeling the way the streaming writer does: labels
// densely renumbered 1..components in row-major first-seen order as a P5
// PGM with maxval = components (floor 1).
func renderDense(lab []uint32, rows, cols, comps int) []byte {
	maxval := comps
	if maxval == 0 {
		maxval = 1
	}
	remap := make(map[uint32]uint32, comps)
	var next uint32
	dense := make([]uint32, len(lab))
	for i, l := range lab {
		if l == 0 {
			continue
		}
		id, ok := remap[l]
		if !ok {
			next++
			id = next
			remap[l] = id
		}
		dense[i] = id
	}
	return encodePGM(dense, rows, cols, maxval)
}

// streamLabel runs the out-of-core pipeline over an in-memory PGM and
// returns the result and the emitted label PGM bytes.
func streamLabel(t *testing.T, pgm []byte, opt Options) (*Result, []byte) {
	t.Helper()
	var out bytes.Buffer
	res, err := Label(bytes.NewReader(pgm), &out, opt)
	if err != nil {
		t.Fatalf("stream.Label: %v", err)
	}
	return res, out.Bytes()
}

// TestStreamMatchesResident is the pixel-identity sweep: every catalog
// pattern plus binary and grey DARPA scenes, both connectivities, several
// band heights (including one-row bands and bands taller than the image),
// all compared byte for byte against the dense rendering of the resident
// reference labeling.
func TestStreamMatchesResident(t *testing.T) {
	type input struct {
		name string
		im   *image.Image
		mode seq.Mode
	}
	inputs := []input{
		{"darpa-binary", image.DARPAScene(64, 16, 1), seq.Binary},
		{"darpa-grey", image.DARPAScene(64, 16, 2), seq.Grey},
		{"random-grey", image.RandomGrey(48, 8, 3), seq.Grey},
	}
	for _, id := range image.AllPatterns() {
		inputs = append(inputs, input{id.String(), image.Generate(id, 64), seq.Binary})
	}
	for _, in := range inputs {
		n := in.im.N
		pgm := encodePGM(in.im.Pix, n, n, 255)
		refConn := map[image.Connectivity][]uint32{}
		for _, conn := range []image.Connectivity{image.Conn4, image.Conn8} {
			lab, comps := residentLabels(in.im.Pix, n, n, conn, in.mode)
			refConn[conn] = lab
			want := renderDense(lab, n, n, comps)
			for _, bandRows := range []int{1, 5, n, n + 37} {
				name := fmt.Sprintf("%s/conn%d/band%d", in.name, int(conn), bandRows)
				res, got := streamLabel(t, pgm, Options{
					Conn: conn, Mode: in.mode, BandRows: bandRows, TopK: 5,
				})
				if res.Components != int64(comps) {
					t.Errorf("%s: %d components, want %d", name, res.Components, comps)
				}
				if !bytes.Equal(got, want) {
					t.Errorf("%s: label PGM differs from resident rendering", name)
				}
				wantBands := (n + bandRows - 1) / bandRows
				if bandRows > n {
					wantBands = 1
				}
				if res.Bands != wantBands {
					t.Errorf("%s: %d bands, want %d", name, res.Bands, wantBands)
				}
				checkCensus(t, name, res, in.im.Pix, refConn[conn])
			}
		}
	}
}

// checkCensus verifies the foreground count and the top-K entries against
// sizes computed from the resident labeling.
func checkCensus(t *testing.T, name string, res *Result, pix, lab []uint32) {
	t.Helper()
	var fg int64
	sizes := map[uint32]int64{}
	for i, l := range lab {
		if pix[i] != 0 {
			fg++
		}
		if l != 0 {
			sizes[l]++
		}
	}
	if res.Foreground != fg {
		t.Errorf("%s: foreground %d, want %d", name, res.Foreground, fg)
	}
	for _, c := range res.Top {
		if want := sizes[uint32(c.Label)]; c.Size != want {
			t.Errorf("%s: census label %d size %d, want %d", name, c.Label, c.Size, want)
		}
	}
	for i := 1; i < len(res.Top); i++ {
		if res.Top[i].Size > res.Top[i-1].Size {
			t.Errorf("%s: census not sorted by size at %d", name, i)
		}
	}
}

// TestStreamAgreesWithParEngine pins the refactored slab-merge seam from
// both sides: the host-parallel engine (both border-merge backends) and
// the streaming pipeline must produce the same components and the same
// dense rendering on the same image.
func TestStreamAgreesWithParEngine(t *testing.T) {
	im := image.Generate(image.DualSpiral, 96)
	pgm := encodePGM(im.Pix, im.N, im.N, 255)
	refLab, comps := residentLabels(im.Pix, im.N, im.N, image.Conn8, seq.Binary)
	want := renderDense(refLab, im.N, im.N, comps)
	for _, merge := range []par.Merge{par.MergeTree, par.MergeSV} {
		e := par.NewEngine(4)
		e.SetMerge(merge)
		got, err := e.LabelErr(im, image.Conn8, seq.Binary)
		if err != nil {
			t.Fatalf("merge=%v: %v", merge, err)
		}
		if got.Components() != comps {
			t.Errorf("merge=%v: engine found %d components, want %d", merge, got.Components(), comps)
		}
		if pr := renderDense(got.Lab, im.N, im.N, got.Components()); !bytes.Equal(pr, want) {
			t.Errorf("merge=%v: engine rendering differs from resident reference", merge)
		}
	}
	res, got := streamLabel(t, pgm, Options{Conn: image.Conn8, BandRows: 17})
	if res.Components != int64(comps) {
		t.Errorf("stream found %d components, want %d", res.Components, comps)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("stream rendering differs from resident reference")
	}
}

// TestStreamRectangular exercises the path resident labeling cannot take
// at all: a non-square image, legal on the streaming path.
func TestStreamRectangular(t *testing.T) {
	const rows, cols = 101, 13
	pix := make([]uint32, rows*cols)
	for r := 0; r < rows; r++ {
		if (r+1)%7 == 0 {
			continue // background row cuts every stripe
		}
		for c := 0; c < cols; c += 2 {
			pix[r*cols+c] = 1
		}
	}
	pgm := encodePGM(pix, rows, cols, 255)
	for _, conn := range []image.Connectivity{image.Conn4, image.Conn8} {
		lab, comps := residentLabels(pix, rows, cols, conn, seq.Binary)
		want := renderDense(lab, rows, cols, comps)
		res, got := streamLabel(t, pgm, Options{Conn: conn, BandRows: 6})
		if res.Components != int64(comps) {
			t.Errorf("conn%d: %d components, want %d", int(conn), res.Components, comps)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("conn%d: rendering differs from resident reference", int(conn))
		}
	}
}

// TestStream16BitInput runs the pipeline over a two-byte-per-sample P5 —
// the width the labeling service's own 16-bit label PGMs use, so service
// output can be re-streamed.
func TestStream16BitInput(t *testing.T) {
	const n = 32
	pix := make([]uint32, n*n)
	for i := range pix {
		if (i/n+i%n)%3 != 0 {
			pix[i] = uint32(300 + 1000*((i/n)/4)) // grey levels beyond one byte
		}
	}
	pgm := encodePGM(pix, n, n, 65535)
	lab, comps := residentLabels(pix, n, n, image.Conn4, seq.Grey)
	want := renderDense(lab, n, n, comps)
	res, got := streamLabel(t, pgm, Options{Conn: image.Conn4, Mode: seq.Grey, BandRows: 5})
	if res.Components != int64(comps) {
		t.Fatalf("%d components, want %d", res.Components, comps)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("16-bit rendering differs from resident reference")
	}
	// The resident reader must agree on the pixels it decodes from the
	// same bytes (it gained the two-byte path alongside this pipeline).
	im, err := image.ReadPGM(bytes.NewReader(pgm))
	if err != nil {
		t.Fatalf("resident ReadPGM of 16-bit input: %v", err)
	}
	for i := range pix {
		if im.Pix[i] != pix[i] {
			t.Fatalf("resident ReadPGM pixel %d = %d, want %d", i, im.Pix[i], pix[i])
		}
	}
}

// TestStreamAllBackground pins the degenerate image: zero components, a
// legal maxval-1 all-zero label PGM.
func TestStreamAllBackground(t *testing.T) {
	const rows, cols = 9, 4
	pgm := encodePGM(make([]uint32, rows*cols), rows, cols, 255)
	res, got := streamLabel(t, pgm, Options{BandRows: 2, TopK: 3})
	if res.Components != 0 || res.Foreground != 0 || len(res.Top) != 0 {
		t.Fatalf("all-background result: %+v", res)
	}
	want := renderDense(make([]uint32, rows*cols), rows, cols, 0)
	if !bytes.Equal(got, want) {
		t.Fatalf("all-background rendering differs")
	}
}

// TestStreamComponentOverflow: more components than the PGM sample space
// can name must fail the label pass without writing a byte, while the
// census-only run still answers.
func TestStreamComponentOverflow(t *testing.T) {
	const n = 400 // conn4 checkerboard: 80000 isolated pixels > 65535
	pix := make([]uint32, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if (i+j)%2 == 0 {
				pix[i*n+j] = 1
			}
		}
	}
	pgm := encodePGM(pix, n, n, 255)
	res, err := Label(bytes.NewReader(pgm), nil, Options{Conn: image.Conn4, BandRows: 64})
	if err != nil {
		t.Fatalf("census-only: %v", err)
	}
	if res.Components != n*n/2 {
		t.Fatalf("census-only found %d components, want %d", res.Components, n*n/2)
	}
	var out bytes.Buffer
	if _, err := Label(bytes.NewReader(pgm), &out, Options{Conn: image.Conn4, BandRows: 64}); err == nil {
		t.Fatalf("label output of %d components did not fail", n*n/2)
	} else if !errors.Is(err, errs.ErrBadInput) {
		t.Fatalf("overflow error = %v, want ErrBadInput", err)
	}
	if out.Len() != 0 {
		t.Fatalf("overflowing label pass wrote %d bytes before failing", out.Len())
	}
}

// TestStreamTruncated: a header promising more pixel data than the file
// holds fails with a typed error before any band buffer is allocated.
func TestStreamTruncated(t *testing.T) {
	pgm := []byte("P5\n100000 100000\n255\nshort")
	if _, err := Label(bytes.NewReader(pgm), nil, Options{}); !errors.Is(err, errs.ErrBadInput) {
		t.Fatalf("truncated input error = %v, want ErrBadInput", err)
	}
}

// TestStreamMetrics checks the observability wiring: per-band phases, the
// bands counter, and a document that passes the schema validator.
func TestStreamMetrics(t *testing.T) {
	im := image.Generate(image.FourSquares, 64)
	pgm := encodePGM(im.Pix, im.N, im.N, 255)
	rec := obs.NewRecorder()
	res, _ := streamLabel(t, pgm, Options{BandRows: 16, Obs: rec})
	m := rec.Snapshot()
	m.Schema = obs.Schema
	if err := m.Validate(); err != nil {
		t.Fatalf("metrics do not validate: %v", err)
	}
	// Both passes stream all bands: census + label = 2x.
	if got := rec.Counter(obs.CtrBands); got != int64(2*res.Bands) {
		t.Errorf("bands counter = %d, want %d", got, 2*res.Bands)
	}
	for _, phase := range []string{"band_decode", "band_label", "band_merge", "band_write"} {
		found := false
		for _, ph := range m.Phases {
			if ph.Name == phase {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("phase %q not recorded", phase)
		}
	}
	if rec.Counter(obs.CtrStripComponents) == 0 || rec.Counter(obs.CtrRuns) == 0 {
		t.Errorf("strip components / runs counters not recorded")
	}
}

// cancelAfterReader cancels a context after a fixed number of ReadAt
// calls, then keeps serving — the pipeline must notice cooperatively.
type cancelAfterReader struct {
	r      io.ReaderAt
	calls  atomic.Int64
	after  int64
	cancel context.CancelFunc
}

func (c *cancelAfterReader) ReadAt(p []byte, off int64) (int, error) {
	if c.calls.Add(1) == c.after {
		c.cancel()
	}
	return c.r.ReadAt(p, off)
}

// TestStreamCancellation: context cancellation mid-run surfaces as a typed
// ErrCanceled, pre-canceled contexts never start, and no goroutine (the
// stall monitor included) outlives the call.
func TestStreamCancellation(t *testing.T) {
	leakcheck.Check(t)
	im := image.Generate(image.DualSpiral, 96)
	pgm := encodePGM(im.Pix, im.N, im.N, 255)

	pre, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Label(bytes.NewReader(pgm), nil, Options{Context: pre}); !errors.Is(err, errs.ErrCanceled) {
		t.Fatalf("pre-canceled error = %v, want ErrCanceled", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Cancel after the third band decode; plenty of bands remain.
	r := &cancelAfterReader{r: bytes.NewReader(pgm), after: 4, cancel: cancel}
	_, err := Label(r, io.Discard, Options{Context: ctx, BandRows: 8, StallTimeout: time.Minute})
	if !errors.Is(err, errs.ErrCanceled) {
		t.Fatalf("mid-run cancellation error = %v, want ErrCanceled", err)
	}
}

// slowReader sleeps on every ReadAt, longer than the stall window.
type slowReader struct {
	r     io.ReaderAt
	delay time.Duration
}

func (s *slowReader) ReadAt(p []byte, off int64) (int, error) {
	time.Sleep(s.delay)
	return s.r.ReadAt(p, off)
}

// TestStreamStallWatchdog: a reader that stops making progress trips the
// stall timeout with a typed ErrDeadline, and the monitor goroutine is
// reaped.
func TestStreamStallWatchdog(t *testing.T) {
	leakcheck.Check(t)
	im := image.Generate(image.HorizontalBars, 64)
	pgm := encodePGM(im.Pix, im.N, im.N, 255)
	r := &slowReader{r: bytes.NewReader(pgm), delay: 120 * time.Millisecond}
	_, err := Label(r, nil, Options{BandRows: 4, StallTimeout: 25 * time.Millisecond})
	if !errors.Is(err, errs.ErrDeadline) {
		t.Fatalf("stalled run error = %v, want ErrDeadline", err)
	}
}

// TestUnionFind64 pins the sparse structure's unite-by-minimum contract
// over labels beyond the 32-bit space.
func TestUnionFind64(t *testing.T) {
	u := NewUnionFind64()
	const big = uint64(1) << 40
	if !u.Unite(big+5, big+9) || !u.Unite(big+9, 3) {
		t.Fatalf("fresh unites reported no link")
	}
	if u.Unite(big+5, 3) {
		t.Fatalf("re-unite of one set reported a link")
	}
	for _, x := range []uint64{3, big + 5, big + 9} {
		if r := u.Find(x); r != 3 {
			t.Fatalf("Find(%d) = %d, want the set minimum 3", x, r)
		}
	}
	if r := u.Find(42); r != 42 {
		t.Fatalf("untouched label root = %d, want itself", r)
	}
	if u.Len() == 0 {
		t.Fatalf("merge state empty after links")
	}
}
