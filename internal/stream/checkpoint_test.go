package stream

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"parimg/internal/errs"
	"parimg/internal/fault"
	"parimg/internal/fault/leakcheck"
	"parimg/internal/image"
	"parimg/internal/obs"
	"parimg/internal/seq"
)

// crashAt returns an injector that crashes the pipeline at the band_commit
// site of the given 0-based band index.
func crashAt(band int) *fault.Injector {
	return fault.New(1, fault.Crash, 1).At("band_commit").OnRound(band + 1)
}

// censusKey flattens the resume-invariant part of a Result for equality
// checks: everything except ResumedFrom must match an uninterrupted run.
func censusKey(r *Result) string {
	return fmt.Sprintf("%dx%d c=%d fg=%d bands=%d rows=%d links=%d top=%v",
		r.Width, r.Height, r.Components, r.Foreground, r.Bands, r.BandRows, r.Links, r.Top)
}

// TestResumeByteIdentical is the core crash/resume sweep: kill the census
// pass at every band boundary, resume from the latest durable checkpoint,
// and demand the census and the label PGM come out byte-identical to an
// uninterrupted run — at more than one checkpoint cadence, so resumes
// both at a checkpointed band and several bands past one are covered.
func TestResumeByteIdentical(t *testing.T) {
	leakcheck.Check(t)
	im := image.DARPAScene(60, 12, 7)
	const bandRows = 7
	pgm := encodePGM(im.Pix, im.N, im.N, 255)
	totalBands := (im.N + bandRows - 1) / bandRows

	base := Options{Conn: image.Conn8, BandRows: bandRows, TopK: 4}
	wantRes, wantPGM := streamLabel(t, pgm, base)

	for _, every := range []int{1, 3} {
		for band := 0; band < totalBands; band++ {
			t.Run(fmt.Sprintf("every%d/crash-band%d", every, band), func(t *testing.T) {
				ckpt := filepath.Join(t.TempDir(), "run.ckpt")

				crash := base
				crash.Checkpoint = ckpt
				crash.CheckpointEvery = every
				crash.Fault = crashAt(band)
				var out bytes.Buffer
				_, err := Label(bytes.NewReader(pgm), &out, crash)
				if !errors.Is(err, errs.ErrAborted) {
					t.Fatalf("crashed run error = %v, want ErrAborted", err)
				}
				var inj *fault.Injected
				if !errors.As(err, &inj) || inj.Site.Name != "band_commit" {
					t.Fatalf("crashed run cause = %v, want injected band_commit fault", err)
				}
				if out.Len() != 0 {
					t.Fatalf("crashed census pass emitted %d output bytes", out.Len())
				}

				resume := base
				resume.Checkpoint = ckpt
				resume.CheckpointEvery = every
				if _, err := os.Stat(ckpt); err != nil {
					// The crash fired before the first record landed: nothing
					// durable exists, so recovery is a fresh checkpointed run.
					if band >= every {
						t.Fatalf("no checkpoint after surviving band %d at cadence %d", band, every)
					}
				} else {
					resume.Resume = true
				}
				rec := obs.NewRecorder()
				resume.Obs = rec
				out.Reset()
				res, err := Label(bytes.NewReader(pgm), &out, resume)
				if err != nil {
					t.Fatalf("resumed run: %v", err)
				}
				if resume.Resume {
					if res.ResumedFrom < 1 || res.ResumedFrom > band {
						t.Fatalf("ResumedFrom = %d, want in [1, %d]", res.ResumedFrom, band)
					}
					if rec.Counter(obs.CtrResumeBand) != int64(res.ResumedFrom) {
						t.Fatalf("resume_band counter = %d, want %d",
							rec.Counter(obs.CtrResumeBand), res.ResumedFrom)
					}
				}
				if got, want := censusKey(res), censusKey(wantRes); got != want {
					t.Fatalf("resumed census\n %s\nwant\n %s", got, want)
				}
				if !bytes.Equal(out.Bytes(), wantPGM) {
					t.Fatalf("resumed label PGM differs from the uninterrupted run")
				}
			})
		}
	}
}

// TestResumePastFinalCheckpoint covers a crash after the census pass
// finished (e.g. during the write pass): the final checkpoint records
// nextBand = total bands, so resuming redoes no census work and still
// writes the identical labeling.
func TestResumePastFinalCheckpoint(t *testing.T) {
	leakcheck.Check(t)
	im := image.Generate(image.DualSpiral, 48)
	pgm := encodePGM(im.Pix, im.N, im.N, 255)
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	opt := Options{Conn: image.Conn4, BandRows: 5, TopK: 3, Checkpoint: ckpt, CheckpointEvery: 4}
	totalBands := (im.N + 4) / 5

	wantRes, wantPGM := streamLabel(t, pgm, Options{Conn: image.Conn4, BandRows: 5, TopK: 3})

	// Census-only run writes the final record; its "crash" is simply never
	// having reached the write pass.
	if _, err := Label(bytes.NewReader(pgm), nil, opt); err != nil {
		t.Fatalf("census run: %v", err)
	}

	rec := obs.NewRecorder()
	opt.Resume = true
	opt.Obs = rec
	var out bytes.Buffer
	res, err := Label(bytes.NewReader(pgm), &out, opt)
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if res.ResumedFrom != totalBands {
		t.Fatalf("ResumedFrom = %d, want %d (past the last band)", res.ResumedFrom, totalBands)
	}
	// Only the write pass decodes bands on this resume.
	if got := rec.Counter(obs.CtrBands); got != int64(totalBands) {
		t.Fatalf("resumed run decoded %d bands, want %d", got, totalBands)
	}
	if got, want := censusKey(res), censusKey(wantRes); got != want {
		t.Fatalf("resumed census\n %s\nwant\n %s", got, want)
	}
	if !bytes.Equal(out.Bytes(), wantPGM) {
		t.Fatalf("resumed label PGM differs from the uninterrupted run")
	}
}

// TestCheckpointCadence pins down how many records a run writes: one per
// full cadence window plus the guaranteed final record.
func TestCheckpointCadence(t *testing.T) {
	im := image.Generate(image.HorizontalBars, 40) // 8 bands of 5 rows
	pgm := encodePGM(im.Pix, im.N, im.N, 255)
	for _, tc := range []struct {
		every, want int
	}{
		{1, 8},   // every band
		{3, 3},   // after the 3rd and 6th bands, plus the final record
		{8, 1},   // the 8th band is also the final one
		{100, 1}, // cadence never fires; only the final record
	} {
		rec := obs.NewRecorder()
		ckpt := filepath.Join(t.TempDir(), "run.ckpt")
		_, err := Label(bytes.NewReader(pgm), nil, Options{
			BandRows: 5, Checkpoint: ckpt, CheckpointEvery: tc.every, Obs: rec})
		if err != nil {
			t.Fatalf("every=%d: %v", tc.every, err)
		}
		if got := rec.Counter(obs.CtrCheckpoints); got != int64(tc.want) {
			t.Fatalf("every=%d wrote %d checkpoints, want %d", tc.every, got, tc.want)
		}
	}
}

// TestCheckpointOptionValidation covers the argument contract: a negative
// cadence and resume-without-a-path are refused before any IO happens.
func TestCheckpointOptionValidation(t *testing.T) {
	im := image.Generate(image.Cross, 16)
	pgm := encodePGM(im.Pix, im.N, im.N, 255)
	if _, err := Label(bytes.NewReader(pgm), nil, Options{CheckpointEvery: -1}); !errors.Is(err, errs.ErrBadInput) {
		t.Fatalf("negative cadence error = %v, want ErrBadInput", err)
	}
	if _, err := Label(bytes.NewReader(pgm), nil, Options{Resume: true}); !errors.Is(err, errs.ErrBadInput) {
		t.Fatalf("resume without path error = %v, want ErrBadInput", err)
	}
	if _, err := Label(bytes.NewReader(pgm), nil, Options{
		Resume: true, Checkpoint: filepath.Join(t.TempDir(), "absent.ckpt")}); !errors.Is(err, errs.ErrBadInput) {
		t.Fatalf("resume from missing file error = %v, want ErrBadInput", err)
	}
}

// writeCheckpointFor runs a checkpointed census to completion and returns
// the record bytes and the path they live at.
func writeCheckpointFor(t *testing.T, pgm []byte, opt Options) (string, []byte) {
	t.Helper()
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	opt.Checkpoint = ckpt
	if _, err := Label(bytes.NewReader(pgm), nil, opt); err != nil {
		t.Fatalf("checkpointed census: %v", err)
	}
	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	return ckpt, data
}

// TestCorruptCheckpointRejected is the corruption table: every structural
// violation — truncation, bit flips in header and payload, a foreign
// version, an empty file — fails with ErrCheckpointCorrupt. A checkpoint
// is never trusted on faith: resuming from a damaged record must be
// impossible, not merely unlikely.
func TestCorruptCheckpointRejected(t *testing.T) {
	im := image.Generate(image.ConcentricCircles, 32)
	pgm := encodePGM(im.Pix, im.N, im.N, 255)
	opt := Options{BandRows: 5, CheckpointEvery: 2}
	_, valid := writeCheckpointFor(t, pgm, opt)

	corrupt := func(mutate func([]byte) []byte) []byte {
		return mutate(append([]byte(nil), valid...))
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"only-magic", corrupt(func(b []byte) []byte { return b[:8] })},
		{"truncated-half", corrupt(func(b []byte) []byte { return b[:len(b)/2] })},
		{"truncated-one-byte", corrupt(func(b []byte) []byte { return b[:len(b)-1] })},
		{"magic-flip", corrupt(func(b []byte) []byte { b[0] ^= 0x40; return b })},
		{"version-flip", corrupt(func(b []byte) []byte { b[8] ^= 0xFF; return b })},
		{"payload-flip", corrupt(func(b []byte) []byte { b[len(b)/2] ^= 0x01; return b })},
		{"checksum-flip", corrupt(func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b })},
		{"trailing-garbage", corrupt(func(b []byte) []byte { return append(b, 0xEE) })},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "bad.ckpt")
			if err := os.WriteFile(path, tc.data, 0o644); err != nil {
				t.Fatal(err)
			}
			res, err := Label(bytes.NewReader(pgm), nil, Options{
				BandRows: 5, Checkpoint: path, Resume: true})
			if !errors.Is(err, errs.ErrCheckpointCorrupt) {
				t.Fatalf("error = %v, want ErrCheckpointCorrupt", err)
			}
			if res != nil {
				t.Fatal("a corrupt checkpoint still produced a result")
			}
		})
	}
}

// TestMismatchedCheckpointRejected is the fingerprint table: a structurally
// pristine record resumed against a different input or different labeling
// options fails with ErrCheckpointMismatch — silently mixing two runs'
// state would produce plausible-looking wrong labels, the worst failure
// mode a recovery path can have.
func TestMismatchedCheckpointRejected(t *testing.T) {
	im := image.Generate(image.ConcentricCircles, 32)
	pgm := encodePGM(im.Pix, im.N, im.N, 255)
	opt := Options{Conn: image.Conn8, BandRows: 5, CheckpointEvery: 2}
	ckpt, _ := writeCheckpointFor(t, pgm, opt)

	other := image.Generate(image.ConcentricCircles, 40)
	otherPGM := encodePGM(other.Pix, other.N, other.N, 255)
	grey := image.DARPAScene(32, 8, 2)
	greyPGM := encodePGM(grey.Pix, grey.N, grey.N, 255)

	cases := []struct {
		name string
		pgm  []byte
		opt  Options
	}{
		{"different-geometry", otherPGM, Options{Conn: image.Conn8, BandRows: 5}},
		{"different-conn", pgm, Options{Conn: image.Conn4, BandRows: 5}},
		{"different-mode", greyPGM, Options{Conn: image.Conn8, Mode: seq.Grey, BandRows: 5}},
		{"different-band-rows", pgm, Options{Conn: image.Conn8, BandRows: 6}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := tc.opt
			o.Checkpoint = ckpt
			o.Resume = true
			if _, err := Label(bytes.NewReader(tc.pgm), nil, o); !errors.Is(err, errs.ErrCheckpointMismatch) {
				t.Fatalf("error = %v, want ErrCheckpointMismatch", err)
			}
		})
	}
}

// TestCheckpointWriteIsAtomic simulates a kill during the checkpoint
// rewrite itself: the in-flight ".partial" sibling never becomes the
// record, so a resume still reads the previous complete record.
func TestCheckpointWriteIsAtomic(t *testing.T) {
	im := image.Generate(image.HorizontalBars, 40)
	pgm := encodePGM(im.Pix, im.N, im.N, 255)
	opt := Options{BandRows: 5, CheckpointEvery: 2}
	ckpt, valid := writeCheckpointFor(t, pgm, opt)

	// A torn in-flight write left a garbage sibling behind.
	if err := os.WriteFile(ckpt+".partial", valid[:len(valid)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	o := opt
	o.Checkpoint = ckpt
	o.Resume = true
	want, wantPGM := streamLabel(t, pgm, Options{BandRows: 5})
	var out bytes.Buffer
	res, err := Label(bytes.NewReader(pgm), &out, o)
	if err != nil {
		t.Fatalf("resume beside a torn partial: %v", err)
	}
	if got := censusKey(res); got != censusKey(want) {
		t.Fatalf("census\n %s\nwant\n %s", got, censusKey(want))
	}
	if !bytes.Equal(out.Bytes(), wantPGM) {
		t.Fatal("label PGM differs after resuming beside a torn partial")
	}
}
