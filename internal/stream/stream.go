package stream

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"sort"
	"sync/atomic"
	"time"

	"parimg/internal/errs"
	"parimg/internal/fault"
	"parimg/internal/image"
	"parimg/internal/obs"
	"parimg/internal/seq"
)

const op = "stream.Label"

// DefaultMaxBandPixels is the band budget when Options leaves both band
// knobs zero: bands are sized to at most this many resident pixels (4 Mi
// pixels = 16 MiB of decoded uint32s), small enough to stay cache-friendly
// and large enough that the per-band overhead (one ReadAt, one boundary
// merge) is noise.
const DefaultMaxBandPixels = 4 << 20

// DefaultCheckpointEvery is the checkpoint cadence when Options.Checkpoint
// is set but CheckpointEvery is zero: a record is written after every this
// many committed bands (and always after the final band). Sixteen bands
// amortizes the fsync+rename to noise while bounding the redone work after
// a crash to at most sixteen bands of census.
const DefaultCheckpointEvery = 16

// Options configures an out-of-core labeling run. The zero value labels
// 8-connected binary components with the default band budget, no census,
// no observer, and no cancellation.
type Options struct {
	// Conn is the connectivity (0 means Conn8).
	Conn image.Connectivity
	// Mode selects binary or grey-scale components.
	Mode seq.Mode
	// BandRows fixes the band height in rows. 0 derives it from
	// MaxBandPixels. Bands taller than the image are clamped.
	BandRows int
	// MaxBandPixels caps the resident pixels per band when BandRows is 0
	// (0 means DefaultMaxBandPixels). A single row is always resident, so
	// the effective floor is one row.
	MaxBandPixels int
	// TopK asks for the sizes of the K largest components (0 = none).
	TopK int
	// Context, when non-nil, cancels the run cooperatively: the pipeline
	// observes cancellation at band granularity and inside the band
	// labeler's row loops, and returns the context's typed error.
	Context context.Context
	// StallTimeout, when positive, aborts the run if no band completes a
	// phase for this long — the out-of-core analogue of the engine's
	// barrier watchdog, guarding against a reader that hangs.
	StallTimeout time.Duration
	// Obs, when non-nil, receives per-band phase timings (band_decode,
	// band_label, band_merge, band_write, checkpoint_write, resume_replay)
	// and the merge counters.
	Obs *obs.Recorder
	// Checkpoint, when non-empty, is the path of the durable checkpoint
	// record: after every CheckpointEvery committed census bands (and after
	// the final one) the pipeline crash-atomically rewrites this file with
	// everything needed to continue the run (DESIGN.md §15). A crash at any
	// instant leaves either the previous complete record or the new one.
	Checkpoint string
	// CheckpointEvery is the checkpoint cadence in committed bands (0 means
	// DefaultCheckpointEvery; negative is rejected).
	CheckpointEvery int
	// Resume restarts a run from the record at Checkpoint (which must be
	// set): the census pass seeks to the checkpointed band, replays the
	// seam against the stored boundary rows, and continues. The result —
	// census, metrics schema, and label output — is byte-identical to an
	// uninterrupted run. A structurally broken record fails with
	// ErrCheckpointCorrupt; a record whose input or options fingerprint
	// drifted fails with ErrCheckpointMismatch. Never silently wrong output.
	Resume bool
	// Fault, when non-nil, is consulted at the streaming pipeline's
	// band_commit site (rank 0, round = band index + 1, after the band's
	// census state commits and before any checkpoint write): Delay sleeps
	// there, Crash abandons the run with ErrAborted wrapping
	// *fault.Injected — the hook the crash chaos tests and the kill-window
	// pacing in imgcc use.
	Fault *fault.Injector
}

// Component is one census entry: a component's global minimum seed label
// (row-major pixel index + 1, as a 64-bit value) and its pixel count.
type Component struct {
	Label uint64 `json:"label"`
	Size  int64  `json:"size"`
}

// Result summarizes an out-of-core labeling run.
type Result struct {
	// Width and Height are the image dimensions.
	Width, Height int
	// Components is the number of connected components.
	Components int64
	// Foreground is the number of foreground pixels.
	Foreground int64
	// Bands is the number of band windows in the decomposition
	// (ceil(Height/BandRows)) — a property of the run's geometry, so a
	// resumed run reports the same value as an uninterrupted one even
	// though it decoded fewer bands.
	Bands int
	// BandRows is the band height actually used (the last band may be
	// shorter).
	BandRows int
	// ResumedFrom is the band index the census pass continued at when the
	// run was resumed from a checkpoint, 0 for a fresh run.
	ResumedFrom int
	// Links is the number of cross-band unions performed.
	Links int64
	// Top holds the TopK largest components, largest first (ties broken
	// by smaller label).
	Top []Component `json:"top,omitempty"`
}

// Label labels the connected components of the on-disk binary PGM behind
// r, holding only one band of rows in memory at a time. The image may be
// rectangular, either P5 sample width, and arbitrarily tall — total
// pixels may exceed 2^32, which the resident path's uint32 label space
// cannot represent.
//
// Pass 1 streams bands top to bottom: decode, run-label band-locally,
// merge each band with its predecessor's bottom row through the shared
// slab-merge seam into a sparse 64-bit union-find, and accumulate
// per-fragment sizes. When out is nil the run ends there with the census.
//
// With a non-nil out, a second pass streams the bands again and writes
// the labeling as a P5 PGM: labels densely renumbered 1..components in
// row-major first-seen order (background 0), one byte per sample up to
// 255 components, two big-endian bytes up to 65535 — the same rendering
// the labeling service emits, and re-ingestible by both PGM readers.
// Beyond 65535 components the label output cannot exist in this format
// and the call fails without writing a byte (the census in Result is
// still the complete answer when the error is inspected — but callers
// should re-run without out).
//
// The output is pixel-identical to dense-renumbering the resident
// sequential labeling: band-local seeds lifted by the band's base offset
// are exactly the global row-major seeds, and unite-by-minimum makes
// every root the component's global minimum seed, so the row-major
// first-seen order of roots — hence every dense id — matches.
//
// With Options.Checkpoint set, pass 1 additionally writes a durable
// checkpoint record on its cadence; with Options.Resume, pass 1 restarts
// from that record instead of band 0 and the run's outputs are
// byte-identical to an uninterrupted run (see Options and DESIGN.md §15).
func Label(r io.ReaderAt, out io.Writer, opt Options) (*Result, error) {
	conn := opt.Conn
	if conn == 0 {
		conn = image.Conn8
	}
	if !conn.Valid() {
		return nil, errs.Bad(op, "connectivity %d is not 4 or 8", int(conn))
	}
	hdr, err := image.ReadPGMHeader(r)
	if err != nil {
		return nil, err
	}
	bandRows, err := resolveBandRows(&hdr, opt)
	if err != nil {
		return nil, err
	}
	// Probe the final pixel byte before allocating band buffers: a crafted
	// header declaring giant dimensions over a short file must fail with a
	// typed error here, not force a band-sized allocation first.
	var probe [1]byte
	last := hdr.DataOffset + hdr.Pixels()*int64(hdr.SampleBytes()) - 1
	if _, err := r.ReadAt(probe[:], last); err != nil {
		return nil, errs.Bad(op, "PGM pixel data truncated: %dx%d at %d byte(s)/sample needs %d data bytes: %v",
			hdr.Width, hdr.Height, hdr.SampleBytes(), hdr.Pixels()*int64(hdr.SampleBytes()), err)
	}

	ckptEvery := opt.CheckpointEvery
	if ckptEvery < 0 {
		return nil, errs.Bad(op, "checkpoint cadence %d is negative", ckptEvery)
	}
	if ckptEvery == 0 {
		ckptEvery = DefaultCheckpointEvery
	}
	if opt.Resume && opt.Checkpoint == "" {
		return nil, errs.Bad(op, "resume requested without a checkpoint path")
	}

	wd := newWatchdog(opt.Context, opt.StallTimeout)
	if err := wd.start(); err != nil {
		return nil, err
	}
	defer wd.join()

	p := &pipeline{
		hdr:       hdr,
		r:         r,
		conn:      conn,
		mode:      opt.Mode,
		bandRows:  bandRows,
		rec:       opt.Obs,
		wd:        wd,
		uf:        NewUnionFind64(),
		sizes:     make(map[uint64]int64),
		ckptPath:  opt.Checkpoint,
		ckptEvery: ckptEvery,
		fault:     opt.Fault,
	}
	p.bl.SetStop(&wd.stop)

	if p.ckptPath != "" {
		// The raw header bytes are the checkpoint's input fingerprint,
		// captured once whether this run writes records or validates one.
		if p.hdrBytes, err = readHeaderBytes(r, hdr); err != nil {
			return nil, err
		}
	}
	if opt.Resume {
		t := p.rec.StartPhase()
		c, err := loadCheckpoint(p.ckptPath)
		if err == nil {
			err = c.matches(hdr, p.hdrBytes, conn, p.mode, bandRows)
		}
		if err != nil {
			p.rec.EndPhase("resume_replay", "", t)
			return nil, err
		}
		p.startBand = p.restore(c)
		p.rec.EndPhase("resume_replay", "", t)
		p.rec.Add(obs.CtrResumeBand, int64(p.startBand))
	}

	res, err := p.census(opt.TopK)
	if err != nil {
		return nil, err
	}
	res.ResumedFrom = p.startBand
	if out != nil {
		if err := p.writeLabels(out, res.Components); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// resolveBandRows turns the Options band knobs into a concrete band
// height in [1, Height], rejecting bands whose pixel count would not fit
// the band-local uint32 label space.
func resolveBandRows(hdr *image.PGMHeader, opt Options) (int, error) {
	rows := opt.BandRows
	if rows <= 0 {
		budget := opt.MaxBandPixels
		if budget <= 0 {
			budget = DefaultMaxBandPixels
		}
		rows = budget / hdr.Width
		if rows < 1 {
			rows = 1 // one row must be resident no matter the budget
		}
	}
	if rows > hdr.Height {
		rows = hdr.Height
	}
	// Band-local seeds are band-row-major index + 1 in uint32; keep the
	// band area clear of the ceiling (the resident MaxSide bound squared).
	if int64(rows)*int64(hdr.Width) >= int64(errs.MaxSide)*int64(errs.MaxSide) {
		return 0, errs.Bad(op,
			"band of %d x %d pixels exceeds the band-local uint32 label space; lower -band-rows",
			rows, hdr.Width)
	}
	return rows, nil
}

// pipeline carries the per-run state shared by the census and label
// passes: the band labeler and its reusable buffers, the sparse 64-bit
// merge state, and the accumulated statistics.
type pipeline struct {
	hdr      image.PGMHeader
	r        io.ReaderAt
	conn     image.Connectivity
	mode     seq.Mode
	bandRows int
	rec      *obs.Recorder
	wd       *watchdog

	bl      seq.BandLabeler
	pix     []uint32 // current band pixels
	lab     []uint32 // current band band-local labels
	scratch []byte   // raw sample bytes for ReadRows

	uf      *UnionFind64
	sizes   map[uint64]int64 // fragment sizes by lifted band-local label
	edgeBuf []uint64
	prevPix []uint32 // previous band's bottom pixel row
	prevLab []uint64 // previous band's bottom label row, lifted
	botLab  []uint64 // current band's top label row, lifted (scratch)

	ckptPath  string // checkpoint record path ("" = no checkpointing)
	ckptEvery int    // checkpoint cadence in committed bands
	hdrBytes  []byte // raw input bytes [0, DataOffset): the fingerprint
	startBand int    // census pass starts here (0 fresh, >0 resumed)
	fault     *fault.Injector

	stripComps int64
	links      int64
	pairs      int64
	edges      int64
}

// forEachBand streams the image top to bottom starting at band index
// from, decoding and band-labeling each window and then handing it to fn
// with its absolute start row and the band's component count. It owns the
// band_decode and band_label phases and the cooperative stop polling
// between phases; fn runs whatever per-band work the pass needs. A
// resumed census pass starts past the checkpointed bands; the write pass
// always starts at 0.
func (p *pipeline) forEachBand(from int, fn func(r0, rows, comps int) error) error {
	W := p.hdr.Width
	want := p.bandRows * W
	if cap(p.pix) < want {
		p.pix = make([]uint32, want)
		p.lab = make([]uint32, want)
	}
	for r0 := from * p.bandRows; r0 < p.hdr.Height; r0 += p.bandRows {
		if err := p.wd.interrupted(); err != nil {
			return err
		}
		rows := p.bandRows
		if r0+rows > p.hdr.Height {
			rows = p.hdr.Height - r0
		}
		pix, lab := p.pix[:rows*W], p.lab[:rows*W]

		t := p.rec.StartPhase()
		var err error
		p.scratch, err = p.hdr.ReadRows(p.r, r0, rows, pix, p.scratch)
		p.rec.EndPhase("band_decode", "", t)
		if err != nil {
			return err
		}
		p.wd.progressed()

		t = p.rec.StartPhase()
		comps := p.bl.Label(pix, rows, W, p.conn, p.mode, lab)
		p.rec.EndPhase("band_label", "", t)
		if err := p.wd.interrupted(); err != nil {
			return err
		}
		p.wd.progressed()

		p.rec.Add(obs.CtrBands, 1)
		if err := fn(r0, rows, comps); err != nil {
			return err
		}
		p.wd.progressed()
	}
	return nil
}

// census is pass 1: stream every band from the start band (0 fresh,
// checkpointed band when resuming), merge adjacent bands, and accumulate
// fragment sizes, producing the component count, foreground count and
// top-K census. Counters: strip components and run counts per band,
// boundary pairs/edges/links per merge, checkpoint records written.
//
// On resume the normal merge path IS the seam replay: the restored
// prevPix/prevLab rows are exactly what the uninterrupted run would hold
// entering this band, band labeling is deterministic, and
// unite-by-minimum is idempotent, so the forest and size map evolve
// identically from here on.
func (p *pipeline) census(topK int) (*Result, error) {
	W := p.hdr.Width
	err := p.forEachBand(p.startBand, func(r0, rows, comps int) error {
		p.stripComps += int64(comps)
		p.rec.Add(obs.CtrStripComponents, int64(comps))
		base := uint64(r0) * uint64(W)
		cur := Labels64{Base: base, Rows: rows, Cols: W, Lab: p.lab[:rows*W]}
		if p.mode == seq.Grey {
			p.rec.Add(obs.CtrGreyRuns, int64(len(p.bl.Runs())/2))
		} else {
			p.rec.Add(obs.CtrRuns, int64(len(p.bl.Runs())/2))
		}

		if r0 > 0 {
			t := p.rec.StartPhase()
			p.botLab = cur.LiftRow(0, p.botLab)
			var pairs int64
			var links int
			p.edgeBuf, pairs, links = MergeAdjacent(p.uf,
				p.prevPix, p.pix[:W], p.prevLab, p.botLab,
				p.conn, p.mode, &p.wd.stop, p.edgeBuf)
			p.rec.EndPhase("band_merge", "", t)
			p.rec.Add(obs.CtrBorderPairs, pairs)
			p.rec.Add(obs.CtrBorderEdges, int64(len(p.edgeBuf)/2))
			p.rec.Add(obs.CtrBorderLinks, int64(links))
			p.pairs += pairs
			p.edges += int64(len(p.edgeBuf) / 2)
			p.links += int64(links)
		}

		// Fragment sizes: run-length over the band's label plane, one map
		// update per run. Each band-local component contributes one sizes
		// entry (its fragments' runs share the lifted label), so the map
		// holds one entry per band-level fragment over the whole run —
		// components + links entries in total, not one per pixel.
		lab := p.lab[:rows*W]
		var curLab uint32
		var cnt int64
		for _, l := range lab {
			if l == curLab {
				cnt++
				continue
			}
			if curLab != 0 {
				p.sizes[base+uint64(curLab)] += cnt
			}
			curLab, cnt = l, 1
		}
		if curLab != 0 {
			p.sizes[base+uint64(curLab)] += cnt
		}

		// Save the band's bottom boundary for the next merge.
		if cap(p.prevPix) < W {
			p.prevPix = make([]uint32, W)
		}
		p.prevPix = p.prevPix[:W]
		copy(p.prevPix, p.pix[(rows-1)*W:rows*W])
		p.prevLab = cur.LiftRow(rows-1, p.prevLab)

		// The band's census state is now fully committed: fault site, then
		// the checkpoint cadence.
		return p.bandCommitted(r0/p.bandRows, r0+rows == p.hdr.Height)
	})
	if err != nil {
		return nil, err
	}
	if err := p.wd.interrupted(); err != nil {
		return nil, err
	}

	// Fold fragment sizes through the final forest.
	final := make(map[uint64]int64, len(p.sizes))
	var fg int64
	for l, s := range p.sizes {
		final[p.uf.Find(l)] += s
		fg += s
	}
	res := &Result{
		Width:      p.hdr.Width,
		Height:     p.hdr.Height,
		Components: p.stripComps - p.links,
		Foreground: fg,
		Bands:      (p.hdr.Height + p.bandRows - 1) / p.bandRows,
		BandRows:   p.bandRows,
		Links:      p.links,
	}
	if int64(len(final)) != res.Components {
		// Cross-check: the size fold sees exactly one root per component.
		return nil, errs.Bad(op, "component accounting mismatch: %d roots, %d by links",
			len(final), res.Components)
	}
	if topK > 0 {
		all := make([]Component, 0, len(final))
		for l, s := range final {
			all = append(all, Component{Label: l, Size: s})
		}
		sort.Slice(all, func(a, b int) bool {
			if all[a].Size != all[b].Size {
				return all[a].Size > all[b].Size
			}
			return all[a].Label < all[b].Label
		})
		if len(all) > topK {
			all = all[:topK]
		}
		res.Top = all
	}
	return res, nil
}

// writeLabels is pass 2: stream the bands again (the band decomposition
// and band-local labelings are deterministic, so the labels reappear
// exactly) and write the dense-renumbered label PGM. Dense ids are
// assigned in row-major first-seen order of each pixel's 64-bit root, so
// the output matches the resident renderer's byte for byte.
func (p *pipeline) writeLabels(out io.Writer, components int64) error {
	if components > image.MaxPGMVal {
		return errs.Bad(op,
			"%d components exceed the PGM 16-bit sample ceiling (%d); rerun without the label output",
			components, image.MaxPGMVal)
	}
	W := p.hdr.Width
	maxval := int(components)
	if maxval == 0 {
		maxval = 1 // PGM requires maxval >= 1 even for an all-background image
	}
	sb := 1
	if maxval > 255 {
		sb = 2
	}
	bw := bufio.NewWriterSize(out, 1<<16)
	if _, err := fmt.Fprintf(bw, "P5\n%d %d\n%d\n", W, p.hdr.Height, maxval); err != nil {
		return errs.Bad(op, "writing label PGM header: %v", err)
	}
	remap := make(map[uint64]uint32, components)
	var next uint32
	var rowBuf []byte
	err := p.forEachBand(0, func(r0, rows, _ int) error {
		t := p.rec.StartPhase()
		defer p.rec.EndPhase("band_write", "", t)
		base := uint64(r0) * uint64(W)
		if cap(rowBuf) < rows*W*sb {
			rowBuf = make([]byte, rows*W*sb)
		}
		buf := rowBuf[:rows*W*sb]
		lab := p.lab[:rows*W]
		// One find+map lookup per run of equal labels, not per pixel.
		var lastLab, lastID uint32
		for i, l := range lab {
			id := lastID
			if l != lastLab {
				if l == 0 {
					id = 0
				} else {
					root := p.uf.Find(base + uint64(l))
					var ok bool
					if id, ok = remap[root]; !ok {
						next++
						id = next
						remap[root] = id
					}
				}
				lastLab, lastID = l, id
			}
			if sb == 1 {
				buf[i] = byte(id)
			} else {
				buf[2*i] = byte(id >> 8)
				buf[2*i+1] = byte(id)
			}
		}
		if _, err := bw.Write(buf); err != nil {
			return errs.Bad(op, "writing label rows [%d,%d): %v", r0, r0+rows, err)
		}
		return nil
	})
	if err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return errs.Bad(op, "flushing label PGM: %v", err)
	}
	return nil
}

// bandCommitted runs after band (0-based index) has fully committed its
// census state — merge done, fragment sizes folded in, boundary rows
// saved. It first polls the band_commit fault site (rank 0, round =
// band+1): Delay sleeps in place, Crash abandons the run exactly as a
// process death here would, and Panic raises the injected payload. Then,
// when checkpointing is on, it rewrites the checkpoint record on the
// cadence — and always after the last band, so a crash during the write
// pass resumes without redoing any census work.
func (p *pipeline) bandCommitted(band int, last bool) error {
	site := fault.Site{Name: "band_commit", Rank: 0, Round: band + 1}
	switch act := p.fault.Decide(site); act.Class {
	case fault.None:
	case fault.Delay:
		time.Sleep(act.Delay)
	case fault.Panic:
		panic(&fault.Injected{Site: site})
	default: // Crash (and NoShow, degraded): abandon the run right here.
		return errs.Aborted(op, &fault.Injected{Site: site},
			"injected crash after band %d committed", band)
	}
	if p.ckptPath == "" || ((band+1)%p.ckptEvery != 0 && !last) {
		return nil
	}
	t := p.rec.StartPhase()
	err := p.saveCheckpoint(band + 1)
	p.rec.EndPhase("checkpoint_write", "", t)
	if err != nil {
		return err
	}
	p.rec.Add(obs.CtrCheckpoints, 1)
	p.wd.progressed()
	return nil
}

// watchdog is the pipeline's cancellation state: a cooperative stop flag
// the band loops poll, set by a monitor goroutine when the context fires
// or no phase completes within the stall timeout. join always reaps the
// monitor, so a canceled run leaks nothing.
type watchdog struct {
	stop     atomic.Bool
	progress atomic.Int64
	ctx      context.Context
	stall    time.Duration
	started  time.Time
	quit     chan struct{}
	done     chan struct{}
	cause    error // written by the monitor before done closes
}

func newWatchdog(ctx context.Context, stall time.Duration) *watchdog {
	return &watchdog{ctx: ctx, stall: stall}
}

// start checks for pre-canceled contexts and launches the monitor when
// there is anything to watch; otherwise the watchdog is inert and free.
func (wd *watchdog) start() error {
	if wd.ctx != nil {
		if err := wd.ctx.Err(); err != nil {
			return errs.FromContext(op, 0, err)
		}
	}
	wd.started = time.Now()
	if (wd.ctx == nil || wd.ctx.Done() == nil) && wd.stall <= 0 {
		return nil
	}
	wd.quit = make(chan struct{})
	wd.done = make(chan struct{})
	go wd.run()
	return nil
}

func (wd *watchdog) run() {
	defer close(wd.done)
	var ctxDone <-chan struct{}
	if wd.ctx != nil {
		ctxDone = wd.ctx.Done()
	}
	var tickC <-chan time.Time
	if wd.stall > 0 {
		tick := time.NewTicker(wd.stall/4 + time.Millisecond)
		defer tick.Stop()
		tickC = tick.C
	}
	last := wd.progress.Load()
	lastChange := time.Now()
	for {
		select {
		case <-wd.quit:
			return
		case <-ctxDone:
			wd.cause = errs.FromContext(op, time.Since(wd.started), wd.ctx.Err())
			wd.stop.Store(true)
			return
		case now := <-tickC:
			if p := wd.progress.Load(); p != last {
				last, lastChange = p, now
				continue
			}
			if now.Sub(lastChange) >= wd.stall {
				wd.cause = errs.Deadline(op, time.Since(wd.started), nil,
					"no band phase completed for %v", wd.stall)
				wd.stop.Store(true)
				return
			}
		}
	}
}

// progressed bumps the liveness counter the stall monitor watches.
func (wd *watchdog) progressed() { wd.progress.Add(1) }

// interrupted returns the abort cause once the run is canceled, nil while
// it is live. The stop flag (raised by the monitor for stalls and for
// cancellation noticed mid-phase) and the context itself are both
// checked, so a checkpoint observes cancellation deterministically even
// if the monitor goroutine has not been scheduled yet; the monitor is
// joined before its recorded cause is read.
func (wd *watchdog) interrupted() error {
	if !wd.stop.Load() {
		if wd.ctx == nil || wd.ctx.Err() == nil {
			return nil
		}
		wd.stop.Store(true)
	}
	wd.join()
	if wd.cause != nil {
		return wd.cause
	}
	if wd.ctx != nil && wd.ctx.Err() != nil {
		return errs.FromContext(op, time.Since(wd.started), wd.ctx.Err())
	}
	return errs.Canceled(op, time.Since(wd.started), "labeling interrupted")
}

// join stops and reaps the monitor goroutine; safe to call repeatedly.
func (wd *watchdog) join() {
	if wd.done == nil {
		return
	}
	select {
	case <-wd.quit:
	default:
		close(wd.quit)
	}
	<-wd.done
}
