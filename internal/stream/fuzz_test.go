package stream

import (
	"bytes"
	"testing"

	"parimg/internal/image"
)

// FuzzStreamPGM throws arbitrary bytes at the full out-of-core pipeline:
// header probe, band decoding (both sample widths), labeling, merging and
// label-PGM emission. Beyond "no panics, typed errors only", every input
// the pipeline accepts is cross-checked against the resident tile labeler
// — the streaming result must be pixel-identical however the fuzzer
// shapes the geometry. The committed corpus pins the two bug classes this
// package's PR fixed: a two-byte-per-sample P5 (which the resident reader
// used to reject) and a giant-dimension header over a short body (the
// allocate-before-validate overflow class).
func FuzzStreamPGM(f *testing.F) {
	f.Add([]byte("P5\n3 2\n255\nabcdef"))
	f.Add([]byte("P5\n2 2\n65535\n\x01\x00\x00\x02\xff\xff\x00\x00"))
	f.Add([]byte("P5\n# comment\n1 7\n1\n\x00\x01\x00\x01\x01\x00\x01"))
	f.Add([]byte("P5\n2147483647 2147483647\n255\nx"))
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		hdr, err := image.ReadPGMHeader(r)
		if err != nil {
			return // malformed header: rejected with a typed error
		}
		if hdr.Pixels() > 1<<18 {
			return // data cannot back it (probe rejects); keep iterations fast
		}
		var out bytes.Buffer
		res, err := Label(r, &out, Options{Conn: image.Conn4, BandRows: 3, TopK: 3})
		if err != nil {
			return // truncated or overflowing input: typed error, no output
		}
		pix := make([]uint32, hdr.Pixels())
		if _, err := hdr.ReadRows(r, 0, hdr.Height, pix, nil); err != nil {
			t.Fatalf("accepted input failed a full decode: %v", err)
		}
		lab, comps := residentLabels(pix, hdr.Height, hdr.Width, image.Conn4, 0)
		if res.Components != int64(comps) {
			t.Fatalf("stream found %d components, resident found %d", res.Components, comps)
		}
		if want := renderDense(lab, hdr.Height, hdr.Width, comps); !bytes.Equal(out.Bytes(), want) {
			t.Fatalf("stream label PGM differs from resident rendering")
		}
	})
}
