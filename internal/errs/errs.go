// Package errs is the typed error taxonomy of the repository's public
// boundary. Every validation failure that a caller can provoke with bad
// input — a malformed image, an impossible processor count, an out-of-range
// grey level, an image too large for the 32-bit label space — is reported
// as an *InputError carrying one of the sentinel kinds below, so callers
// can dispatch with errors.Is on either the specific kind or the ErrBadInput
// root without parsing message strings.
//
// The contract, repo-wide: invalid *caller input* returns an error; a
// violated *internal invariant* (a precondition already validated by the
// layer above) panics, and every such panic site carries an
// "Invariant panic:" comment. The bdm runtime additionally converts any
// panic escaping an SPMD processor body into an error wrapping ErrAborted,
// so no panic crosses the public API even if an invariant is wrong.
//
// A second family of sentinels — ErrAborted, ErrCanceled, ErrDeadline —
// describes how an accepted run *ended* rather than what the caller passed
// in. They are carried by *RunError and deliberately sit outside the
// ErrBadInput subtree: the same input may succeed on retry.
package errs

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"
)

// MaxSide is the largest supported image side. Initial labels are the
// pixel's global row-major index plus one, stored in a uint32: the last
// pixel of an n x n image gets label n*n - 1 + 1 = n^2, so n^2 must fit in
// a uint32. 65535^2 = 4294836225 < 2^32, while 65536^2 = 2^32 wraps to 0 —
// hence n <= 65535.
const MaxSide = 65535

// Taxonomy sentinels. Every *InputError wraps ErrBadInput plus at most one
// of the more specific kinds, so errors.Is(err, ErrBadInput) matches any
// input-validation failure.
var (
	// ErrBadInput is the root of the taxonomy: some caller-supplied input
	// was invalid. All other sentinels imply it.
	ErrBadInput = errors.New("bad input")
	// ErrGeometry marks impossible image/processor-grid geometry: a
	// non-positive or oversized image side, a pixel buffer whose length
	// disagrees with the declared side, a processor count that is not a
	// positive power of two, or an image that does not tile evenly on the
	// processor grid.
	ErrGeometry = errors.New("invalid geometry")
	// ErrGreyRange marks grey-level domain violations: a pixel with grey
	// level outside [0, k) for the requested k-bucket histogram.
	ErrGreyRange = errors.New("grey level out of range")
	// ErrLabelOverflow marks images whose side exceeds MaxSide, so the
	// row-major seed labels would wrap the uint32 label space and collide
	// (or reach the reserved background value 0).
	ErrLabelOverflow = errors.New("label space overflow")
	// ErrCheckpointCorrupt marks a streaming checkpoint file that failed
	// structural validation: wrong magic or version, truncation, or a
	// checksum mismatch (a bit flip anywhere in the record). The file
	// cannot be trusted for resume; rerun from scratch.
	ErrCheckpointCorrupt = errors.New("checkpoint corrupt")
	// ErrCheckpointMismatch marks a structurally valid streaming checkpoint
	// that was recorded for a different run: the input's header bytes or
	// geometry drifted, or the resume options (connectivity, mode, band
	// height) disagree with the ones the checkpoint was written under.
	// Resuming it would silently produce wrong pixels, so it is refused.
	ErrCheckpointMismatch = errors.New("checkpoint mismatch")
)

// Runtime sentinels. Unlike the input taxonomy above these describe how an
// accepted run *ended*, not what the caller passed in: they are carried by
// *RunError and are deliberately not under ErrBadInput, because retrying the
// same input may well succeed.
var (
	// ErrAborted marks a run torn down by the runtime itself: a processor
	// body panicked (or a fault injector made one panic) and the remaining
	// processors were released from their barriers.
	ErrAborted = errors.New("execution aborted")
	// ErrCanceled marks a run stopped because the caller's context was
	// canceled. errors.Is also matches context.Canceled when the run was
	// stopped by a canceled context.
	ErrCanceled = errors.New("execution canceled")
	// ErrDeadline marks a run stopped by a deadline: either the caller's
	// context deadline expired (errors.Is also matches
	// context.DeadlineExceeded) or the barrier watchdog declared the run
	// stalled.
	ErrDeadline = errors.New("deadline exceeded")
	// ErrClosed marks a call made after Close: the engine, pool or server
	// the caller is holding has been shut down and accepts no further runs.
	// Like the other runtime sentinels it sits outside ErrBadInput — the
	// same call would have succeeded on a live instance.
	ErrClosed = errors.New("closed")
)

// InputError is a structured input-validation failure: the operation that
// rejected the input, the taxonomy kind, the offending geometry context
// (n, p, k; zero when not applicable), and a human-readable detail line.
type InputError struct {
	// Op is the rejecting operation, e.g. "parimg.Histogram".
	Op string
	// Kind is the taxonomy sentinel: ErrGeometry, ErrGreyRange,
	// ErrLabelOverflow, or ErrBadInput for failures with no finer kind.
	Kind error
	// N, P, K are the image side, processor count and grey-level count in
	// play when the input was rejected; fields are zero when not relevant.
	N, P, K int
	// Detail describes the specific violation.
	Detail string
}

// Error formats the failure as "op: detail (kind; n=.. p=.. k=..)".
func (e *InputError) Error() string {
	var b strings.Builder
	if e.Op != "" {
		b.WriteString(e.Op)
		b.WriteString(": ")
	}
	b.WriteString(e.Detail)
	var ctx []string
	if e.Kind != nil && e.Kind != ErrBadInput {
		ctx = append(ctx, e.Kind.Error())
	}
	if e.N != 0 {
		ctx = append(ctx, fmt.Sprintf("n=%d", e.N))
	}
	if e.P != 0 {
		ctx = append(ctx, fmt.Sprintf("p=%d", e.P))
	}
	if e.K != 0 {
		ctx = append(ctx, fmt.Sprintf("k=%d", e.K))
	}
	if len(ctx) > 0 {
		b.WriteString(" (")
		b.WriteString(strings.Join(ctx, "; "))
		b.WriteString(")")
	}
	return b.String()
}

// Unwrap exposes the taxonomy: the specific kind plus the ErrBadInput root,
// so errors.Is matches both.
func (e *InputError) Unwrap() []error {
	if e.Kind == nil || e.Kind == ErrBadInput {
		return []error{ErrBadInput}
	}
	return []error{e.Kind, ErrBadInput}
}

// Geometry returns an ErrGeometry input error. n and p carry the geometry
// context (pass 0 when not applicable).
func Geometry(op string, n, p int, format string, args ...any) error {
	return &InputError{Op: op, Kind: ErrGeometry, N: n, P: p, Detail: fmt.Sprintf(format, args...)}
}

// GreyRange returns an ErrGreyRange input error with grey-level context k.
func GreyRange(op string, k int, format string, args ...any) error {
	return &InputError{Op: op, Kind: ErrGreyRange, K: k, Detail: fmt.Sprintf(format, args...)}
}

// LabelOverflow returns an ErrLabelOverflow input error for an n-sided
// image exceeding MaxSide.
func LabelOverflow(op string, n int) error {
	return &InputError{Op: op, Kind: ErrLabelOverflow, N: n,
		Detail: fmt.Sprintf("image side %d exceeds the uint32 label space (max %d)", n, MaxSide)}
}

// Bad returns a plain ErrBadInput input error for failures with no finer
// taxonomy kind (an unknown flag value, a malformed file, a bad option).
func Bad(op, format string, args ...any) error {
	return &InputError{Op: op, Kind: ErrBadInput, Detail: fmt.Sprintf(format, args...)}
}

// CheckpointCorrupt returns an ErrCheckpointCorrupt input error for a
// checkpoint file that failed structural validation (truncation, checksum,
// magic/version).
func CheckpointCorrupt(op, format string, args ...any) error {
	return &InputError{Op: op, Kind: ErrCheckpointCorrupt, Detail: fmt.Sprintf(format, args...)}
}

// CheckpointMismatch returns an ErrCheckpointMismatch input error for a
// valid checkpoint recorded under a different input or different resume
// options.
func CheckpointMismatch(op, format string, args ...any) error {
	return &InputError{Op: op, Kind: ErrCheckpointMismatch, Detail: fmt.Sprintf(format, args...)}
}

// RunError is a structured runtime failure: the operation that was running,
// the runtime sentinel describing how it ended, how long it had been running
// when it was stopped (zero when unknown), a human-readable detail line, and
// the underlying cause (a recovered panic value wrapped as an error, or the
// context error that triggered the stop).
type RunError struct {
	// Op is the interrupted operation, e.g. "parimg.LabelContext".
	Op string
	// Kind is the runtime sentinel: ErrAborted, ErrCanceled or ErrDeadline.
	Kind error
	// After is the elapsed wall time when the run was stopped; zero when
	// the caller did not track it.
	After time.Duration
	// Detail describes the specific failure (which rank panicked, which
	// ranks missed the stalled barrier, ...).
	Detail string
	// Cause is the underlying error: context.Canceled,
	// context.DeadlineExceeded, or the recovered panic value. May be nil.
	Cause error
}

// Error formats the failure as "op: detail (kind; after=..)".
func (e *RunError) Error() string {
	var b strings.Builder
	if e.Op != "" {
		b.WriteString(e.Op)
		b.WriteString(": ")
	}
	b.WriteString(e.Detail)
	var ctx []string
	if e.Kind != nil {
		ctx = append(ctx, e.Kind.Error())
	}
	if e.After > 0 {
		ctx = append(ctx, fmt.Sprintf("after=%v", e.After.Round(time.Millisecond)))
	}
	if len(ctx) > 0 {
		b.WriteString(" (")
		b.WriteString(strings.Join(ctx, "; "))
		b.WriteString(")")
	}
	return b.String()
}

// Unwrap exposes both the runtime sentinel and the underlying cause, so
// errors.Is(err, ErrCanceled) and errors.Is(err, context.Canceled) both
// match a context-canceled run.
func (e *RunError) Unwrap() []error {
	if e.Cause == nil {
		return []error{e.Kind}
	}
	return []error{e.Kind, e.Cause}
}

// Aborted returns an ErrAborted run error. cause carries the recovered
// panic value when there is one (pass nil otherwise).
func Aborted(op string, cause error, format string, args ...any) error {
	return &RunError{Op: op, Kind: ErrAborted, Cause: cause, Detail: fmt.Sprintf(format, args...)}
}

// Canceled returns an ErrCanceled run error for a run stopped after the
// given elapsed time by a canceled context.
func Canceled(op string, after time.Duration, format string, args ...any) error {
	return &RunError{Op: op, Kind: ErrCanceled, After: after, Cause: context.Canceled,
		Detail: fmt.Sprintf(format, args...)}
}

// Deadline returns an ErrDeadline run error for a run stopped after the
// given elapsed time by an expired deadline or a stall watchdog. cause is
// context.DeadlineExceeded for context deadlines, nil for watchdog stalls.
func Deadline(op string, after time.Duration, cause error, format string, args ...any) error {
	return &RunError{Op: op, Kind: ErrDeadline, After: after, Cause: cause,
		Detail: fmt.Sprintf(format, args...)}
}

// Closed returns an ErrClosed run error for a call made on an instance that
// has been shut down.
func Closed(op string) error {
	return &RunError{Op: op, Kind: ErrClosed, Detail: "called after Close"}
}

// FromContext maps a non-nil context error to the matching run error:
// context.Canceled to ErrCanceled, context.DeadlineExceeded to ErrDeadline.
// after is the elapsed run time when the stop was observed.
func FromContext(op string, after time.Duration, err error) error {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return Deadline(op, after, err, "context deadline exceeded")
	case errors.Is(err, context.Canceled):
		return Canceled(op, after, "context canceled")
	default:
		// Custom context implementations may return other errors; keep
		// them under ErrCanceled so callers still get a typed sentinel.
		return &RunError{Op: op, Kind: ErrCanceled, After: after, Cause: err,
			Detail: "context done: " + err.Error()}
	}
}
