// Package errs is the typed error taxonomy of the repository's public
// boundary. Every validation failure that a caller can provoke with bad
// input — a malformed image, an impossible processor count, an out-of-range
// grey level, an image too large for the 32-bit label space — is reported
// as an *InputError carrying one of the sentinel kinds below, so callers
// can dispatch with errors.Is on either the specific kind or the ErrBadInput
// root without parsing message strings.
//
// The contract, repo-wide: invalid *caller input* returns an error; a
// violated *internal invariant* (a precondition already validated by the
// layer above) panics, and every such panic site carries an
// "Invariant panic:" comment. The bdm runtime additionally converts any
// panic escaping an SPMD processor body into an error wrapping
// bdm.ErrAborted, so no panic crosses the public API even if an invariant
// is wrong.
package errs

import (
	"errors"
	"fmt"
	"strings"
)

// MaxSide is the largest supported image side. Initial labels are the
// pixel's global row-major index plus one, stored in a uint32: the last
// pixel of an n x n image gets label n*n - 1 + 1 = n^2, so n^2 must fit in
// a uint32. 65535^2 = 4294836225 < 2^32, while 65536^2 = 2^32 wraps to 0 —
// hence n <= 65535.
const MaxSide = 65535

// Taxonomy sentinels. Every *InputError wraps ErrBadInput plus at most one
// of the more specific kinds, so errors.Is(err, ErrBadInput) matches any
// input-validation failure.
var (
	// ErrBadInput is the root of the taxonomy: some caller-supplied input
	// was invalid. All other sentinels imply it.
	ErrBadInput = errors.New("bad input")
	// ErrGeometry marks impossible image/processor-grid geometry: a
	// non-positive or oversized image side, a pixel buffer whose length
	// disagrees with the declared side, a processor count that is not a
	// positive power of two, or an image that does not tile evenly on the
	// processor grid.
	ErrGeometry = errors.New("invalid geometry")
	// ErrGreyRange marks grey-level domain violations: a pixel with grey
	// level outside [0, k) for the requested k-bucket histogram.
	ErrGreyRange = errors.New("grey level out of range")
	// ErrLabelOverflow marks images whose side exceeds MaxSide, so the
	// row-major seed labels would wrap the uint32 label space and collide
	// (or reach the reserved background value 0).
	ErrLabelOverflow = errors.New("label space overflow")
)

// InputError is a structured input-validation failure: the operation that
// rejected the input, the taxonomy kind, the offending geometry context
// (n, p, k; zero when not applicable), and a human-readable detail line.
type InputError struct {
	// Op is the rejecting operation, e.g. "parimg.Histogram".
	Op string
	// Kind is the taxonomy sentinel: ErrGeometry, ErrGreyRange,
	// ErrLabelOverflow, or ErrBadInput for failures with no finer kind.
	Kind error
	// N, P, K are the image side, processor count and grey-level count in
	// play when the input was rejected; fields are zero when not relevant.
	N, P, K int
	// Detail describes the specific violation.
	Detail string
}

// Error formats the failure as "op: detail (kind; n=.. p=.. k=..)".
func (e *InputError) Error() string {
	var b strings.Builder
	if e.Op != "" {
		b.WriteString(e.Op)
		b.WriteString(": ")
	}
	b.WriteString(e.Detail)
	var ctx []string
	if e.Kind != nil && e.Kind != ErrBadInput {
		ctx = append(ctx, e.Kind.Error())
	}
	if e.N != 0 {
		ctx = append(ctx, fmt.Sprintf("n=%d", e.N))
	}
	if e.P != 0 {
		ctx = append(ctx, fmt.Sprintf("p=%d", e.P))
	}
	if e.K != 0 {
		ctx = append(ctx, fmt.Sprintf("k=%d", e.K))
	}
	if len(ctx) > 0 {
		b.WriteString(" (")
		b.WriteString(strings.Join(ctx, "; "))
		b.WriteString(")")
	}
	return b.String()
}

// Unwrap exposes the taxonomy: the specific kind plus the ErrBadInput root,
// so errors.Is matches both.
func (e *InputError) Unwrap() []error {
	if e.Kind == nil || e.Kind == ErrBadInput {
		return []error{ErrBadInput}
	}
	return []error{e.Kind, ErrBadInput}
}

// Geometry returns an ErrGeometry input error. n and p carry the geometry
// context (pass 0 when not applicable).
func Geometry(op string, n, p int, format string, args ...any) error {
	return &InputError{Op: op, Kind: ErrGeometry, N: n, P: p, Detail: fmt.Sprintf(format, args...)}
}

// GreyRange returns an ErrGreyRange input error with grey-level context k.
func GreyRange(op string, k int, format string, args ...any) error {
	return &InputError{Op: op, Kind: ErrGreyRange, K: k, Detail: fmt.Sprintf(format, args...)}
}

// LabelOverflow returns an ErrLabelOverflow input error for an n-sided
// image exceeding MaxSide.
func LabelOverflow(op string, n int) error {
	return &InputError{Op: op, Kind: ErrLabelOverflow, N: n,
		Detail: fmt.Sprintf("image side %d exceeds the uint32 label space (max %d)", n, MaxSide)}
}

// Bad returns a plain ErrBadInput input error for failures with no finer
// taxonomy kind (an unknown flag value, a malformed file, a bad option).
func Bad(op, format string, args ...any) error {
	return &InputError{Op: op, Kind: ErrBadInput, Detail: fmt.Sprintf(format, args...)}
}
