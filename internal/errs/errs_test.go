package errs

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestTaxonomyUnwrap(t *testing.T) {
	cases := []struct {
		err  error
		kind error
	}{
		{Geometry("op", 7, 3, "bad tiling"), ErrGeometry},
		{GreyRange("op", 16, "grey 99"), ErrGreyRange},
		{LabelOverflow("op", 70000), ErrLabelOverflow},
		{Bad("op", "unknown mode"), ErrBadInput},
		{CheckpointCorrupt("op", "bad checksum"), ErrCheckpointCorrupt},
		{CheckpointMismatch("op", "different geometry"), ErrCheckpointMismatch},
	}
	for _, c := range cases {
		if !errors.Is(c.err, c.kind) {
			t.Errorf("%v: not errors.Is its kind %v", c.err, c.kind)
		}
		if !errors.Is(c.err, ErrBadInput) {
			t.Errorf("%v: not errors.Is(ErrBadInput)", c.err)
		}
		var ie *InputError
		if !errors.As(c.err, &ie) {
			t.Errorf("%v: not errors.As(*InputError)", c.err)
		}
	}
	// Kinds stay distinct.
	if errors.Is(Geometry("op", 1, 2, "x"), ErrGreyRange) {
		t.Error("geometry error matched ErrGreyRange")
	}
	if errors.Is(Bad("op", "x"), ErrGeometry) {
		t.Error("plain bad-input error matched ErrGeometry")
	}
	if errors.Is(CheckpointCorrupt("op", "x"), ErrCheckpointMismatch) {
		t.Error("corrupt-checkpoint error matched ErrCheckpointMismatch")
	}
	if errors.Is(CheckpointMismatch("op", "x"), ErrCheckpointCorrupt) {
		t.Error("mismatched-checkpoint error matched ErrCheckpointCorrupt")
	}
}

func TestInputErrorMessage(t *testing.T) {
	err := Geometry("parimg.Histogram", 100, 32, "image does not tile evenly")
	msg := err.Error()
	for _, want := range []string{"parimg.Histogram:", "image does not tile evenly", "n=100", "p=32", "invalid geometry"} {
		if !strings.Contains(msg, want) {
			t.Errorf("message %q is missing %q", msg, want)
		}
	}
	// Wrapping via %w keeps the taxonomy intact.
	wrapped := fmt.Errorf("cc: %w", err)
	if !errors.Is(wrapped, ErrGeometry) || !errors.Is(wrapped, ErrBadInput) {
		t.Errorf("wrapped error lost its taxonomy: %v", wrapped)
	}
}

func TestMaxSideDerivation(t *testing.T) {
	// MaxSide^2 must fit a uint32 seed label; (MaxSide+1)^2 must not.
	if uint64(MaxSide)*uint64(MaxSide) >= 1<<32 {
		t.Fatalf("MaxSide %d overflows the uint32 label space", MaxSide)
	}
	if uint64(MaxSide+1)*uint64(MaxSide+1) < 1<<32 {
		t.Fatalf("MaxSide %d is not tight", MaxSide)
	}
}
