package bench

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"parimg/internal/cc"
	"parimg/internal/image"
	"parimg/internal/machine"
	"parimg/internal/seq"
)

func TestWriteTableAlignment(t *testing.T) {
	var buf bytes.Buffer
	WriteTable(&buf, []string{"a", "long-header"}, [][]string{
		{"xxxxxx", "1"},
		{"y", "2"},
	})
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "a     ") {
		t.Errorf("header not padded: %q", lines[0])
	}
	if !strings.Contains(lines[1], "------") {
		t.Errorf("no rule line: %q", lines[1])
	}
}

func TestWriteTableCSVStyle(t *testing.T) {
	old := Style
	Style = StyleCSV
	defer func() { Style = old }()
	var buf bytes.Buffer
	WriteTable(&buf, []string{"a", "b"}, [][]string{{"1", "x,y"}, {"2", `q"uote`}})
	got := buf.String()
	want := "a,b\n1,\"x,y\"\n2,\"q\"\"uote\"\n"
	if got != want {
		t.Errorf("CSV output:\n%q\nwant:\n%q", got, want)
	}
}

func TestHistRunAndCCRun(t *testing.T) {
	rep, err := HistRun(machine.CM5, 4, 64, 16)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SimTime <= 0 {
		t.Error("HistRun reported no time")
	}
	im := image.Generate(image.Cross, 64)
	rep, err = CCRun(machine.SP2, 4, im, cc.Options{Conn: image.Conn8, Mode: seq.Binary})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SimTime <= 0 {
		t.Error("CCRun reported no time")
	}
}

func TestCCMeanOverCatalog(t *testing.T) {
	mean, err := CCMeanOverCatalog(machine.CM5, 4, 64)
	if err != nil {
		t.Fatal(err)
	}
	if mean <= 0 {
		t.Error("mean time not positive")
	}
}

// The experiment generators must run cleanly end to end (small sizes where
// selectable); this guards cmd/experiments against bit-rot.
func TestExperimentGeneratorsProduceOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment regeneration is slow")
	}
	checks := []struct {
		name string
		run  func() (string, error)
	}{
		{"table1", func() (string, error) {
			var b bytes.Buffer
			err := Table1(&b)
			return b.String(), err
		}},
		{"figtranspose", func() (string, error) {
			var b bytes.Buffer
			err := FigTranspose(&b, machine.Paragon, 8)
			return b.String(), err
		}},
		{"fig11", func() (string, error) {
			var b bytes.Buffer
			err := Fig11(&b)
			return b.String(), err
		}},
		{"histdetail", func() (string, error) {
			var b bytes.Buffer
			err := FigHistDetail(&b, machine.SP1, 16)
			return b.String(), err
		}},
		{"ccdetail", func() (string, error) {
			var b bytes.Buffer
			err := FigCCDetail(&b, machine.CM5, 16, []int{128})
			return b.String(), err
		}},
	}
	for _, c := range checks {
		out, err := c.run()
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		if len(out) < 100 {
			t.Errorf("%s: suspiciously short output (%d bytes)", c.name, len(out))
		}
		if !strings.Contains(out, "--") {
			t.Errorf("%s: no table rule in output", c.name)
		}
	}
}

// TestAllExperimentsRun exercises every exhibit generator end to end, as
// cmd/experiments would; guarded by -short because the full set simulates
// every figure of the paper (~10-30 s).
func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment regeneration is slow")
	}
	exhibits := map[string]func(io.Writer) error{
		"table1":      Table1,
		"table2":      Table2,
		"fig3":        Fig3,
		"fig6":        func(w io.Writer) error { return FigTranspose(w, machine.CM5, 32) },
		"fig9":        func(w io.Writer) error { return FigTranspose(w, machine.Paragon, 8) },
		"fig10":       Fig10,
		"fig11":       Fig11,
		"fig13":       func(w io.Writer) error { return FigHistDetail(w, machine.CM5, 32) },
		"fig16":       func(w io.Writer) error { return FigCCDetail(w, machine.CM5, 32, []int{512}) },
		"fig21":       func(w io.Writer) error { return FigCCDetail(w, machine.SP2, 32, []int{128, 256}) },
		"baseline":    Baseline,
		"efficiency":  Efficiency,
		"phases":      Phases,
		"utilization": Utilization,
		"ablations":   Ablations,
		"gantt":       Gantt,
	}
	for name, run := range exhibits {
		name, run := name, run
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := run(&buf); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if buf.Len() < 80 {
				t.Errorf("%s: output too short (%d bytes)", name, buf.Len())
			}
		})
	}
}

func TestGanttShowsAllKinds(t *testing.T) {
	var buf bytes.Buffer
	if err := Gantt(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, ch := range []string{"#", "~", "."} {
		if !strings.Contains(out, ch) {
			t.Errorf("gantt missing %q activity", ch)
		}
	}
	if !strings.Contains(out, "P0") || !strings.Contains(out, "P7") {
		t.Error("gantt missing processor rows")
	}
}

func TestTable1ContainsReproductions(t *testing.T) {
	var b bytes.Buffer
	if err := Table1(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, needle := range []string{"Bader and JaJa", "TMC CM-5", "IBM SP-2", "Intel Paragon", "work/pixel"} {
		if !strings.Contains(out, needle) {
			t.Errorf("Table1 output missing %q", needle)
		}
	}
	// Every this-paper row must carry a reproduced value: count data
	// cells in the last column by checking each Bader line has >= 8
	// fields.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "Bader and JaJa") && !strings.Contains(strings.TrimSpace(line), "ms") {
			t.Errorf("Bader row without a time: %q", line)
		}
	}
}
