package bench

import (
	"fmt"
	"io"

	"parimg/internal/bdm"
	"parimg/internal/cc"
	"parimg/internal/comm"
	"parimg/internal/hist"
	"parimg/internal/image"
	"parimg/internal/machine"
	"parimg/internal/priorwork"
	"parimg/internal/seq"
)

// histOn runs parallel histogramming of im with k grey levels on p
// processors of spec.
func histOn(spec bdm.CostParams, p int, im *image.Image, k int) (bdm.Report, error) {
	m, err := bdm.NewMachine(p, spec)
	if err != nil {
		return bdm.Report{}, err
	}
	res, err := hist.Run(m, im, k)
	if err != nil {
		return bdm.Report{}, err
	}
	return res.Report, nil
}

// Table1 regenerates the histogramming survey: every row of the paper's
// Table 1 plus, for each of this paper's rows, our simulated reproduction
// of the same configuration (512 x 512 image, 256 grey levels).
func Table1(w io.Writer) error {
	fmt.Fprintln(w, "Table 1: Implementation Results of Parallel Histogramming Algorithms")
	fmt.Fprintln(w, "(reproduced rows simulate a 512x512, 256 grey-level image)")
	fmt.Fprintln(w)
	headers := []string{"Year", "Researcher(s)", "Machine", "PEs", "Image", "Time", "work/pixel", "Reproduced", "w/p repro"}
	var rows [][]string
	for _, r := range priorwork.Table1() {
		row := []string{
			fmt.Sprint(r.Year), r.Researchers, r.Machine, fmt.Sprint(r.PEs),
			fmt.Sprintf("%dx%d", r.ImageSize, r.ImageSize),
			Secs(r.Seconds), Secs(r.WorkPerPixel()), "", "",
		}
		if r.ThisPaper {
			spec, err := specForMachine(r.Machine)
			if err != nil {
				return err
			}
			im := image.RandomGrey(r.ImageSize, 256, 1994)
			rep, err := histOn(spec, r.PEs, im, 256)
			if err != nil {
				return err
			}
			row[7] = Secs(rep.SimTime)
			row[8] = Secs(rep.WorkPerPixel(r.ImageSize * r.ImageSize))
		}
		rows = append(rows, row)
	}
	WriteTable(w, headers, rows)
	return nil
}

// Table2 regenerates the connected components survey: the cross-checked
// prior rows plus, for each of this paper's rows, our simulated
// reproduction (synthetic DARPA scene for "DARPA II Image" rows, mean over
// the nine-image catalog for "mean of test images" rows).
func Table2(w io.Writer) error {
	fmt.Fprintln(w, "Table 2: Implementation Results of Parallel Connected Components of Images")
	fmt.Fprintln(w, "(representative prior rows; all of this paper's rows, with reproductions)")
	fmt.Fprintln(w)
	headers := []string{"Year", "Researcher(s)", "Machine", "PEs", "Image", "Time", "work/pix", "Notes", "Reproduced"}
	var rows [][]string
	darpa := image.DARPASynthetic()
	for _, r := range priorwork.Table2() {
		row := []string{
			fmt.Sprint(r.Year), r.Researchers, r.Machine, fmt.Sprint(r.PEs),
			fmt.Sprintf("%dx%d", r.ImageSize, r.ImageSize),
			Secs(r.Seconds), Secs(r.WorkPerPixel()), r.Notes, "",
		}
		if r.ThisPaper {
			spec, err := specForMachine(r.Machine)
			if err != nil {
				return err
			}
			var sim float64
			if r.Notes == "mean of test images" {
				sim, err = CCMeanOverCatalog(spec, r.PEs, r.ImageSize)
				if err != nil {
					return err
				}
			} else {
				rep, err := CCRun(spec, r.PEs, darpa, cc.Options{Conn: image.Conn8, Mode: seq.Grey})
				if err != nil {
					return err
				}
				sim = rep.SimTime
			}
			row[8] = Secs(sim)
		}
		rows = append(rows, row)
	}
	WriteTable(w, headers, rows)
	return nil
}

func specForMachine(name string) (bdm.CostParams, error) {
	switch name {
	case "TMC CM-5":
		return machine.CM5, nil
	case "IBM SP-1":
		return machine.SP1, nil
	case "IBM SP-2":
		return machine.SP2, nil
	case "Meiko CS-2":
		return machine.CS2, nil
	case "Intel Paragon":
		return machine.Paragon, nil
	}
	return bdm.CostParams{}, fmt.Errorf("bench: no profile for machine %q", name)
}

// Fig3 regenerates the CM-5 scalability summary: histogramming time versus
// n^2 for p = 16..128 (k = 256), and connected components time (mean over
// the catalog) for p = 16..128.
func Fig3(w io.Writer) error {
	fmt.Fprintln(w, "Figure 3 (left): Histogramming scalability on the CM-5, k=256")
	fmt.Fprintln(w)
	ps := []int{16, 32, 64, 128}
	headers := []string{"n", "n^2"}
	for _, p := range ps {
		headers = append(headers, fmt.Sprintf("p=%d", p))
	}
	var rows [][]string
	for _, n := range []int{128, 256, 512, 1024, 2048, 4096} {
		im := image.RandomGrey(n, 256, uint64(n))
		row := []string{fmt.Sprint(n), fmt.Sprint(n * n)}
		for _, p := range ps {
			rep, err := histOn(machine.CM5, p, im, 256)
			if err != nil {
				return err
			}
			row = append(row, Secs(rep.SimTime))
		}
		rows = append(rows, row)
	}
	WriteTable(w, headers, rows)

	fmt.Fprintln(w)
	fmt.Fprintln(w, "Figure 3 (right): Connected components scalability on the CM-5")
	fmt.Fprintln(w, "(mean over the nine binary test images)")
	fmt.Fprintln(w)
	rows = nil
	for _, n := range []int{128, 256, 512, 1024} {
		row := []string{fmt.Sprint(n), fmt.Sprint(n * n)}
		for _, p := range ps {
			mean, err := CCMeanOverCatalog(machine.CM5, p, n)
			if err != nil {
				return err
			}
			row = append(row, Secs(mean))
		}
		rows = append(rows, row)
	}
	WriteTable(w, headers, rows)
	return nil
}

// FigTranspose regenerates one of Figures 6-9: matrix transpose and
// broadcast execution time and attained per-processor bandwidth on the
// given machine with p processors, over a sweep of block sizes.
func FigTranspose(w io.Writer, spec bdm.CostParams, p int) error {
	fmt.Fprintf(w, "Transpose and broadcast on the %s (p=%d)\n\n", spec.Name, p)
	headers := []string{"q elems/proc", "bytes/proc", "transpose", "T bw MB/s", "broadcast", "B bw MB/s"}
	var rows [][]string
	for q := 1 << 10; q <= 1<<20; q <<= 2 {
		m, err := bdm.NewMachine(p, spec)
		if err != nil {
			return err
		}
		in := bdm.NewSpread[uint32](m, q)
		out := bdm.NewSpread[uint32](m, q)
		repT, err := m.Run(func(pr *bdm.Proc) { comm.Transpose(pr, out, in, q) })
		if err != nil {
			return err
		}
		m.Reset()
		scratch := bdm.NewSpread[uint32](m, q)
		repB, err := m.Run(func(pr *bdm.Proc) { comm.Broadcast(pr, out, scratch, q, 0) })
		if err != nil {
			return err
		}
		moved := float64(q-q/p) * 4 // bytes through each processor
		rows = append(rows, []string{
			fmt.Sprint(q), fmt.Sprint(q * 4),
			Secs(repT.SimTime), fmt.Sprintf("%.2f", moved/repT.CommTime/1e6),
			Secs(repB.SimTime), fmt.Sprintf("%.2f", 2*moved/repB.CommTime/1e6),
		})
	}
	WriteTable(w, headers, rows)
	fmt.Fprintf(w, "\nprofile bandwidth ceiling: %.2f MB/s per processor\n", spec.BandwidthMBps())
	return nil
}

// Fig10 regenerates the cross-machine DARPA benchmark figure: grey-scale
// connected components of the 512x512 synthetic DARPA scene on every
// machine of the study for p = 16..128.
func Fig10(w io.Writer) error {
	fmt.Fprintln(w, "Figure 10: Connected components of the 512x512 DARPA benchmark scene")
	fmt.Fprintln(w, "(synthetic stand-in; grey-scale components, 8-connectivity)")
	fmt.Fprintln(w)
	ps := []int{16, 32, 64, 128}
	headers := []string{"Machine"}
	for _, p := range ps {
		headers = append(headers, fmt.Sprintf("p=%d", p))
	}
	darpa := image.DARPASynthetic()
	var rows [][]string
	for _, spec := range machine.All() {
		row := []string{spec.Name}
		for _, p := range ps {
			rep, err := CCRun(spec, p, darpa, cc.Options{Conn: image.Conn8, Mode: seq.Grey})
			if err != nil {
				return err
			}
			row = append(row, Secs(rep.SimTime))
		}
		rows = append(rows, row)
	}
	WriteTable(w, headers, rows)
	return nil
}

// Fig11 regenerates the computation/communication split of histogramming
// for 32 and 256 grey levels (CM-5, p=32): communication is flat in n while
// computation grows as n^2/p.
func Fig11(w io.Writer) error {
	fmt.Fprintln(w, "Figure 11: Histogramming computation vs communication time (CM-5, p=32)")
	fmt.Fprintln(w)
	for _, k := range []int{32, 256} {
		fmt.Fprintf(w, "k = %d grey levels\n", k)
		headers := []string{"n", "computation", "communication", "total"}
		var rows [][]string
		for _, n := range []int{128, 256, 512, 1024, 2048} {
			im := image.RandomGrey(n, k, uint64(n+k))
			rep, err := histOn(machine.CM5, 32, im, k)
			if err != nil {
				return err
			}
			rows = append(rows, []string{
				fmt.Sprint(n), Secs(rep.CompTime), Secs(rep.CommTime), Secs(rep.SimTime),
			})
		}
		WriteTable(w, headers, rows)
		fmt.Fprintln(w)
	}
	return nil
}

// FigHistDetail regenerates one of the per-machine histogramming detail
// figures (Figures 12-14, 18, 20): time versus number of grey levels for
// image sizes 128..1024 on the given machine and processor count.
func FigHistDetail(w io.Writer, spec bdm.CostParams, p int) error {
	fmt.Fprintf(w, "Histogramming on the %s (p=%d): time vs grey levels\n\n", spec.Name, p)
	ns := []int{128, 256, 512, 1024}
	headers := []string{"k"}
	for _, n := range ns {
		headers = append(headers, fmt.Sprintf("%dx%d", n, n))
	}
	var rows [][]string
	for _, k := range []int{2, 4, 8, 16, 32, 64, 128, 256} {
		row := []string{fmt.Sprint(k)}
		for _, n := range ns {
			im := image.RandomGrey(n, k, uint64(n*3+k))
			rep, err := histOn(spec, p, im, k)
			if err != nil {
				return err
			}
			row = append(row, Secs(rep.SimTime))
		}
		rows = append(rows, row)
	}
	WriteTable(w, headers, rows)
	return nil
}

// Phases prints the per-stage breakdown of the connected components run on
// the dual spiral: initialization, each of the log p merge iterations, and
// the final total-consistency update. Merge iteration costs grow as border
// lengths double, matching the Section 5.3 analysis of the prefetch volume
// per phase (4q*2^(t/2) pixels), while the one-time init and final stages
// carry the O(n^2/p) terms.
func Phases(w io.Writer) error {
	fmt.Fprintln(w, "Per-stage breakdown of connected components (CM-5, 512x512 dual spiral)")
	fmt.Fprintln(w)
	ps := []int{16, 64}
	im := image.Generate(image.DualSpiral, 512)
	for _, p := range ps {
		m, err := bdm.NewMachine(p, machine.CM5)
		if err != nil {
			return err
		}
		res, err := cc.Run(m, im, cc.Options{Conn: image.Conn8, Mode: seq.Binary})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "p = %d (total %s):\n", p, Secs(res.Report.SimTime))
		headers := []string{"stage", "sim time", "share"}
		rows := [][]string{{"init (tile BFS + hooks)", Secs(res.Stages.Init),
			fmt.Sprintf("%.1f%%", 100*res.Stages.Init/res.Report.SimTime)}}
		for i, ph := range res.Stages.Merge {
			rows = append(rows, []string{fmt.Sprintf("merge %d", i+1), Secs(ph),
				fmt.Sprintf("%.1f%%", 100*ph/res.Report.SimTime)})
		}
		rows = append(rows, []string{"final update", Secs(res.Stages.Final),
			fmt.Sprintf("%.1f%%", 100*res.Stages.Final/res.Report.SimTime)})
		WriteTable(w, headers, rows)
		fmt.Fprintln(w)
	}
	return nil
}

// Gantt renders a text timeline of every processor's activity during a
// connected components run (p=8, 128x128 dual spiral): '#' computation,
// '~' communication, '.' barrier wait. The initialization block, the three
// merge iterations with their manager-concentrated activity, and the final
// update are all visible.
func Gantt(w io.Writer) error {
	p := 8
	m, err := bdm.NewMachine(p, machine.CM5)
	if err != nil {
		return err
	}
	m.SetTracing(true)
	im := image.Generate(image.DualSpiral, 128)
	res, err := cc.Run(m, im, cc.Options{Conn: image.Conn8, Mode: seq.Binary})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Activity timeline: connected components of the 128x128 dual spiral\n")
	fmt.Fprintf(w, "(CM-5, p=%d, total %s; '#' comp, '~' comm, '.' wait)\n\n", p, Secs(res.Report.SimTime))

	const cols = 100
	total := res.Report.SimTime
	for rank, spans := range m.Traces() {
		line := make([]byte, cols)
		for i := range line {
			line[i] = ' '
		}
		for _, sp := range spans {
			lo := int(sp.Start / total * cols)
			hi := int(sp.End / total * cols)
			if hi >= cols {
				hi = cols - 1
			}
			ch := byte('#')
			switch sp.Kind {
			case bdm.SpanComm:
				ch = '~'
			case bdm.SpanWait:
				ch = '.'
			}
			for i := lo; i <= hi; i++ {
				// Communication and waits may be shorter than a
				// column; never let them overwrite computation.
				if line[i] == '#' && ch == '.' {
					continue
				}
				line[i] = ch
			}
		}
		fmt.Fprintf(w, "P%-2d |%s|\n", rank, line)
	}
	fmt.Fprintf(w, "\nstage boundaries: init %s, merges %s, final %s\n",
		Secs(res.Stages.Init), Secs(res.Report.SimTime-res.Stages.Init-res.Stages.Final),
		Secs(res.Stages.Final))
	return nil
}

// Ablations consolidates the design-choice ablations of DESIGN.md into one
// exhibit: limited updating vs full relabeling, shadow managers on/off,
// transpose-based vs direct change distribution, the transpose-based
// histogram rearrangement vs naive fan-in collection, and Algorithm 2
// broadcast vs naive fan-out.
func Ablations(w io.Writer) error {
	fmt.Fprintln(w, "Design-choice ablations (CM-5 profile, simulated times)")
	fmt.Fprintln(w)

	// Connected components variants on the 512x512 dual spiral.
	im := image.Generate(image.DualSpiral, 512)
	ccCase := func(p int, opt cc.Options) (float64, error) {
		m, err := bdm.NewMachine(p, machine.CM5)
		if err != nil {
			return 0, err
		}
		res, err := cc.Run(m, im, opt)
		if err != nil {
			return 0, err
		}
		return res.Report.SimTime, err
	}
	fmt.Fprintln(w, "Connected components (512x512 dual spiral):")
	headers := []string{"variant", "p=16", "p=64"}
	var rows [][]string
	for _, v := range []struct {
		name string
		opt  cc.Options
	}{
		{"paper configuration", cc.Options{}},
		{"full relabel every merge", cc.Options{FullRelabel: true}},
		{"no shadow managers", cc.Options{NoShadow: true}},
		{"direct change distribution", cc.Options{ChangeDist: cc.DistDirect}},
	} {
		row := []string{v.name}
		for _, p := range []int{16, 64} {
			opt := v.opt
			opt.Conn = image.Conn8
			opt.Mode = seq.Binary
			tm, err := ccCase(p, opt)
			if err != nil {
				return err
			}
			row = append(row, Secs(tm))
		}
		rows = append(rows, row)
	}
	WriteTable(w, headers, rows)

	// Histogram collection strategy.
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Histogram rearrangement (512x512, k=256) - communication time only:")
	him := image.RandomGrey(512, 256, 77)
	headers = []string{"variant", "p=4", "p=16", "p=64"}
	rows = nil
	for _, naive := range []bool{false, true} {
		name := "transpose + collect (Section 4)"
		if naive {
			name = "naive fan-in to processor 0"
		}
		row := []string{name}
		for _, p := range []int{4, 16, 64} {
			m, err := bdm.NewMachine(p, machine.CM5)
			if err != nil {
				return err
			}
			var res *hist.Result
			if naive {
				res, err = hist.RunNaive(m, him, 256)
			} else {
				res, err = hist.Run(m, him, 256)
			}
			if err != nil {
				return err
			}
			row = append(row, Secs(res.Report.CommTime))
		}
		rows = append(rows, row)
	}
	WriteTable(w, headers, rows)

	// Broadcast strategy.
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Broadcast of q words (p=32):")
	headers = []string{"variant", "q=4096", "q=65536", "q=1048576"}
	rows = nil
	for _, naive := range []bool{false, true} {
		name := "two transpositions (Algorithm 2)"
		if naive {
			name = "naive fan-out from root"
		}
		row := []string{name}
		for _, q := range []int{4096, 65536, 1048576} {
			m, err := bdm.NewMachine(32, machine.CM5)
			if err != nil {
				return err
			}
			buf := bdm.NewSpread[uint32](m, q)
			var rep bdm.Report
			if naive {
				rep, err = m.Run(func(pr *bdm.Proc) { comm.BroadcastNaive(pr, buf, q, 0) })
			} else {
				scratch := bdm.NewSpread[uint32](m, q)
				rep, err = m.Run(func(pr *bdm.Proc) { comm.Broadcast(pr, buf, scratch, q, 0) })
			}
			if err != nil {
				return err
			}
			row = append(row, Secs(rep.SimTime))
		}
		rows = append(rows, row)
	}
	WriteTable(w, headers, rows)
	return nil
}

// Utilization prints the per-processor cost split (computation,
// communication, barrier wait) of a connected components run. The
// manager-centric merging concentrates merge work on a few processors;
// the wait column quantifies how much the clients idle — the load-balance
// consideration behind the paper's shadow managers and its choice to keep
// merge work proportional to borders only.
func Utilization(w io.Writer) error {
	p := 16
	im := image.Generate(image.DualSpiral, 512)
	m, err := bdm.NewMachine(p, machine.CM5)
	if err != nil {
		return err
	}
	res, err := cc.Run(m, im, cc.Options{Conn: image.Conn8, Mode: seq.Binary})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Per-processor cost split, connected components of the 512x512 dual\n")
	fmt.Fprintf(w, "spiral (CM-5, p=%d, total %s)\n\n", p, Secs(res.Report.SimTime))
	headers := []string{"proc", "computation", "communication", "wait", "busy share"}
	var rows [][]string
	for rank, pm := range res.Report.Procs {
		rows = append(rows, []string{
			fmt.Sprint(rank),
			Secs(pm.Comp), Secs(pm.Comm), Secs(pm.Wait),
			fmt.Sprintf("%.1f%%", 100*(pm.Comp+pm.Comm)/pm.Now),
		})
	}
	WriteTable(w, headers, rows)
	return nil
}

// Efficiency regenerates the paper's headline efficiency claim (Section 1:
// "an algorithm with an efficiency near one runs approximately p times
// faster on p processors than the same algorithm on a single processor"):
// speedup and efficiency of both primitives versus the p = 1 run on the
// same machine profile.
func Efficiency(w io.Writer) error {
	fmt.Fprintln(w, "Efficiency on the CM-5 profile: T(1) / (p * T(p))")
	fmt.Fprintln(w)
	ps := []int{1, 4, 16, 64}

	fmt.Fprintln(w, "Histogramming, 1024x1024, k=256:")
	im := image.RandomGrey(1024, 256, 11)
	var t1 float64
	headers := []string{"p", "time", "speedup", "efficiency"}
	var rows [][]string
	for _, p := range ps {
		rep, err := histOn(machine.CM5, p, im, 256)
		if err != nil {
			return err
		}
		if p == 1 {
			t1 = rep.SimTime
		}
		rows = append(rows, []string{
			fmt.Sprint(p), Secs(rep.SimTime),
			fmt.Sprintf("%.2f", t1/rep.SimTime),
			fmt.Sprintf("%.2f", t1/rep.SimTime/float64(p)),
		})
	}
	WriteTable(w, headers, rows)

	fmt.Fprintln(w)
	fmt.Fprintln(w, "Connected components, 512x512 concentric circles:")
	cim := image.Generate(image.ConcentricCircles, 512)
	rows = nil
	for _, p := range ps {
		rep, err := CCRun(machine.CM5, p, cim, cc.Options{Conn: image.Conn8, Mode: seq.Binary})
		if err != nil {
			return err
		}
		if p == 1 {
			t1 = rep.SimTime
		}
		rows = append(rows, []string{
			fmt.Sprint(p), Secs(rep.SimTime),
			fmt.Sprintf("%.2f", t1/rep.SimTime),
			fmt.Sprintf("%.2f", t1/rep.SimTime/float64(p)),
		})
	}
	WriteTable(w, headers, rows)
	return nil
}

// Baseline compares the paper's log p merge algorithm against the
// iterative label-diffusion baseline on every catalog test image (CM-5,
// p=64): simulated times and round counts. The spiral-shaped images show
// why bounded-round merging matters.
func Baseline(w io.Writer) error {
	fmt.Fprintln(w, "Baseline comparison: paper's log p merging vs iterative label diffusion")
	fmt.Fprintln(w, "(CM-5, p=64, 512x512 binary test images, 8-connectivity)")
	fmt.Fprintln(w, "The diffusion baseline keeps tile-component indirection and so skips the")
	fmt.Fprintln(w, "final interior relabel; even with that advantage its data-dependent round")
	fmt.Fprintln(w, "count loses on adversarial images, and the gap widens with p (below).")
	fmt.Fprintln(w)
	headers := []string{"Test image", "merge time", "merge rounds", "diffusion time", "diffusion rounds", "speedup"}
	var rows [][]string
	for _, id := range image.AllPatterns() {
		im := image.Generate(id, 512)
		m, err := bdm.NewMachine(64, machine.CM5)
		if err != nil {
			return err
		}
		merge, err := cc.Run(m, im, cc.Options{Conn: image.Conn8, Mode: seq.Binary})
		if err != nil {
			return err
		}
		m2, err := bdm.NewMachine(64, machine.CM5)
		if err != nil {
			return err
		}
		diff, err := cc.RunPropagation(m2, im, cc.Options{Conn: image.Conn8, Mode: seq.Binary})
		if err != nil {
			return err
		}
		rows = append(rows, []string{
			id.String(),
			Secs(merge.Report.SimTime), fmt.Sprint(merge.Phases),
			Secs(diff.Report.SimTime), fmt.Sprint(diff.Phases),
			fmt.Sprintf("%.2fx", diff.Report.SimTime/merge.Report.SimTime),
		})
	}
	WriteTable(w, headers, rows)

	fmt.Fprintln(w)
	fmt.Fprintln(w, "Scaling with p on the dual spiral (the \"difficult\" image):")
	fmt.Fprintln(w)
	spiral := image.Generate(image.DualSpiral, 512)
	headers = []string{"p", "merge time", "merge rounds", "diffusion time", "diffusion rounds", "speedup"}
	rows = nil
	for _, p := range []int{16, 64, 256} {
		m, err := bdm.NewMachine(p, machine.CM5)
		if err != nil {
			return err
		}
		merge, err := cc.Run(m, spiral, cc.Options{Conn: image.Conn8, Mode: seq.Binary})
		if err != nil {
			return err
		}
		m2, err := bdm.NewMachine(p, machine.CM5)
		if err != nil {
			return err
		}
		diff, err := cc.RunPropagation(m2, spiral, cc.Options{Conn: image.Conn8, Mode: seq.Binary})
		if err != nil {
			return err
		}
		rows = append(rows, []string{
			fmt.Sprint(p),
			Secs(merge.Report.SimTime), fmt.Sprint(merge.Phases),
			Secs(diff.Report.SimTime), fmt.Sprint(diff.Phases),
			fmt.Sprintf("%.2fx", diff.Report.SimTime/merge.Report.SimTime),
		})
	}
	WriteTable(w, headers, rows)

	fmt.Fprintln(w)
	fmt.Fprintln(w, "PRAM-style pointer jumping (Shiloach-Vishkin family) on the same input")
	fmt.Fprintln(w, "(256x256 dual spiral; per-iteration data-dependent remote reads dominate):")
	fmt.Fprintln(w)
	spiral256 := image.Generate(image.DualSpiral, 256)
	headers = []string{"p", "algorithm", "sim time", "rounds", "words moved"}
	rows = nil
	for _, p := range []int{16, 64} {
		m, err := bdm.NewMachine(p, machine.CM5)
		if err != nil {
			return err
		}
		merge, err := cc.Run(m, spiral256, cc.Options{Conn: image.Conn8, Mode: seq.Binary})
		if err != nil {
			return err
		}
		m2, err := bdm.NewMachine(p, machine.CM5)
		if err != nil {
			return err
		}
		sv, err := cc.RunShiloachVishkin(m2, spiral256, cc.Options{Conn: image.Conn8, Mode: seq.Binary})
		if err != nil {
			return err
		}
		rows = append(rows,
			[]string{fmt.Sprint(p), "merge (this paper)", Secs(merge.Report.SimTime),
				fmt.Sprint(merge.Phases), fmt.Sprint(merge.Report.Words)},
			[]string{fmt.Sprint(p), "pointer jumping", Secs(sv.Report.SimTime),
				fmt.Sprint(sv.Phases), fmt.Sprint(sv.Report.Words)})
	}
	WriteTable(w, headers, rows)
	return nil
}

// FigCCDetail regenerates one of the per-machine connected components
// detail figures (Figures 15-17, 19, 21): time per catalog test image for
// the given sizes, machine and processor count.
func FigCCDetail(w io.Writer, spec bdm.CostParams, p int, ns []int) error {
	fmt.Fprintf(w, "Connected components on the %s (p=%d): per test image\n\n", spec.Name, p)
	headers := []string{"Test image"}
	for _, n := range ns {
		headers = append(headers, fmt.Sprintf("%dx%d", n, n))
	}
	var rows [][]string
	for _, id := range image.AllPatterns() {
		row := []string{id.String()}
		for _, n := range ns {
			im := image.Generate(id, n)
			rep, err := CCRun(spec, p, im, cc.Options{Conn: image.Conn8, Mode: seq.Binary})
			if err != nil {
				return err
			}
			row = append(row, Secs(rep.SimTime))
		}
		rows = append(rows, row)
	}
	WriteTable(w, headers, rows)
	return nil
}
