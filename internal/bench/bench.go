// Package bench implements the experiment harness that regenerates every
// table and figure of the paper's evaluation: workload generation,
// parameter sweeps over machines, processor counts, image sizes and grey
// levels, and plain-text rendering of the resulting series. It is shared by
// cmd/experiments and the benchmarks in the repository root.
package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"

	"parimg/internal/bdm"
	"parimg/internal/cc"
	"parimg/internal/hist"
	"parimg/internal/image"
	"parimg/internal/priorwork"
	"parimg/internal/seq"
)

// Style selects the output format of WriteTable: aligned text (default) or
// CSV (for plotting the figure series with external tools). It is set once
// by cmd/experiments before any experiment runs.
type TableStyle int

const (
	// StyleText renders aligned plain-text tables.
	StyleText TableStyle = iota
	// StyleCSV renders RFC-4180 CSV rows.
	StyleCSV
)

// Style is the active table style.
var Style = StyleText

// WriteTable renders rows under headers in the active Style.
func WriteTable(w io.Writer, headers []string, rows [][]string) {
	if Style == StyleCSV {
		cw := csv.NewWriter(w)
		_ = cw.Write(headers)
		_ = cw.WriteAll(rows)
		cw.Flush()
		return
	}
	writeTextTable(w, headers, rows)
}

// writeTextTable renders rows under headers with aligned columns.
func writeTextTable(w io.Writer, headers []string, rows [][]string) {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cols []string) {
		parts := make([]string, len(cols))
		for i, c := range cols {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(headers)
	rule := make([]string, len(headers))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	line(rule)
	for _, r := range rows {
		line(r)
	}
}

// Secs formats a duration in seconds the way the paper's tables do.
func Secs(s float64) string { return priorwork.FormatSeconds(s) }

// HistRun runs the parallel histogramming of an n x n, k grey-level random
// image on p processors of the given machine and returns the report.
func HistRun(spec bdm.CostParams, p, n, k int) (bdm.Report, error) {
	m, err := bdm.NewMachine(p, spec)
	if err != nil {
		return bdm.Report{}, err
	}
	im := image.RandomGrey(n, k, uint64(n)*31+uint64(k))
	res, err := hist.Run(m, im, k)
	if err != nil {
		return bdm.Report{}, err
	}
	return res.Report, nil
}

// CCRun runs the parallel connected components of im on p processors of
// the given machine and returns the report.
func CCRun(spec bdm.CostParams, p int, im *image.Image, opt cc.Options) (bdm.Report, error) {
	m, err := bdm.NewMachine(p, spec)
	if err != nil {
		return bdm.Report{}, err
	}
	res, err := cc.Run(m, im, opt)
	if err != nil {
		return bdm.Report{}, err
	}
	return res.Report, nil
}

// CCMeanOverCatalog runs connected components on all nine catalog test
// images of side n and returns the mean simulated time, mirroring the
// paper's "mean of test images" rows.
func CCMeanOverCatalog(spec bdm.CostParams, p, n int) (float64, error) {
	var sum float64
	for _, id := range image.AllPatterns() {
		im := image.Generate(id, n)
		rep, err := CCRun(spec, p, im, cc.Options{Conn: image.Conn8, Mode: seq.Binary})
		if err != nil {
			return 0, fmt.Errorf("%v: %w", id, err)
		}
		sum += rep.SimTime
	}
	return sum / float64(len(image.AllPatterns())), nil
}
