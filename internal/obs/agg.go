package obs

import "sync"

// Agg accumulates many Metrics documents into one aggregate document — the
// fleet view a long-lived server exports at its /metrics endpoint, where
// per-request documents answer "what did this run do" and the aggregate
// answers "where has the service's time gone overall". Aggregation is by
// name: top-level wall phases are summed into one phase per name (kept in
// first-observed order, so the aggregate reads in pipeline order), counters
// are summed by key, and TotalNS accumulates end-to-end run time. Two
// synthetic counters are added: "runs" (documents observed) and
// "aborted_runs" (documents whose Aborted field was set).
//
// An Agg is safe for concurrent use; Observe is designed to sit on a
// server's per-request completion path.
type Agg struct {
	mu       sync.Mutex
	runs     int64
	aborted  int64
	totalNS  int64
	order    []string // first-observed top-level phase names
	wall     map[string]int64
	counters map[string]int64
}

// NewAgg returns an empty aggregator.
func NewAgg() *Agg {
	return &Agg{wall: make(map[string]int64), counters: make(map[string]int64)}
}

// Observe folds one document into the aggregate: top-level wall phases and
// counters are summed by name, TotalNS accumulates, and the runs/aborted
// tallies advance. Child phases (Parent set) are skipped — their parents
// already cover their time. A nil document is ignored.
func (a *Agg) Observe(m *Metrics) {
	if m == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.runs++
	if m.Aborted != "" {
		a.aborted++
	}
	a.totalNS += m.TotalNS
	for _, ph := range m.Phases {
		if ph.Parent != "" {
			continue
		}
		if _, seen := a.wall[ph.Name]; !seen {
			a.order = append(a.order, ph.Name)
		}
		a.wall[ph.Name] += ph.WallNS
	}
	for name, v := range m.Counters {
		a.counters[name] += v
	}
}

// Count returns the number of documents observed so far.
func (a *Agg) Count() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.runs
}

// Snapshot returns the aggregate as a fresh, Valid Metrics document:
// summed top-level phases in first-observed order, summed counters plus
// the synthetic "runs" and "aborted_runs", and the accumulated TotalNS.
// Context fields (Command, Image, ...) are left for the caller to fill;
// the caller also owns the returned document and may extend its Counters
// map. Snapshotting an empty aggregate yields a valid document with
// runs=0.
func (a *Agg) Snapshot() *Metrics {
	a.mu.Lock()
	defer a.mu.Unlock()
	m := &Metrics{
		Schema:   Schema,
		TotalNS:  a.totalNS,
		Phases:   make([]Phase, 0, len(a.order)),
		Counters: make(map[string]int64, len(a.counters)+2),
	}
	for _, name := range a.order {
		m.Phases = append(m.Phases, Phase{Name: name, WallNS: a.wall[name]})
	}
	for name, v := range a.counters {
		m.Counters[name] = v
	}
	m.Counters["runs"] = a.runs
	m.Counters["aborted_runs"] = a.aborted
	return m
}
