// Package obs is the phase-level observability layer of the repository: a
// zero-dependency metrics recorder that the execution engines (the BDM
// simulator of internal/bdm + internal/cc + internal/hist and the
// host-parallel engine of internal/par) thread their per-phase timings,
// operation counters and modeled communication volumes through.
//
// The paper's experimental contribution is a per-phase breakdown of
// histogramming and connected components against the BDM cost model
// Tcomm(n,p) = tau + m: where the time goes (local labeling vs border merge
// rounds vs relabeling) and how measured times track the model. A Recorder
// captures exactly that split for one run:
//
//   - wall-clock phases, measured with monotonic timers around each engine
//     phase of a host-parallel run (strip labeling, border merge, final
//     relabel, cleanup);
//   - modeled phases, the simulated seconds of each stage of a BDM run
//     (initialization, each merge iteration, the final update);
//   - modeled communication volume per primitive: the number of charged
//     latencies (tau count, one per completed Sync batch) and the words
//     moved, attributed to the communication label active at Sync time
//     (transpose, broadcast, collect, border fetch, change distribution);
//   - operation counters (union-find finds and unites, border pairs,
//     extracted runs, relabeled pixels), accumulated atomically.
//
// The disabled path is allocation-free and near-free in time: a nil
// *Recorder is a valid recorder whose methods are no-ops, so engine code
// calls them unconditionally and the alloc regression budgets of
// internal/par hold with metrics off. Snapshot converts a Recorder into a
// Metrics document, the stable JSON schema behind the -metrics flag of the
// imgcc, imghist and benchjson commands and the cmd/phasereport tables.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Schema is the identifier every Metrics document carries in its "schema"
// field; readers reject documents with a different value.
const Schema = "parimg-metrics/v1"

// Counter identifies one of the fixed operation counters a Recorder
// accumulates. The fixed enumeration keeps the hot-path Add a single atomic
// increment with no map lookups or allocation.
type Counter int

// The operation counters of the labeling engines.
const (
	// CtrStripComponents counts components found by strip-local labeling
	// before the border merge (the sum of per-strip component counts).
	CtrStripComponents Counter = iota
	// CtrBorderPairs counts raw adjacencies examined across strip
	// boundaries during the border merge's edge extraction: like-colored
	// pixel pairs on the per-pixel path, adjacent run pairs on the
	// run-aware path.
	CtrBorderPairs
	// CtrBorderEdges counts deduplicated boundary union edges the border
	// merge's extraction pass collected (the length of the edge list the
	// resolution backend actually processes); CtrBorderPairs minus
	// CtrBorderEdges is the work the dedup saved.
	CtrBorderEdges
	// CtrSVRounds counts the hook-and-compress rounds the Shiloach-Vishkin
	// merge backend ran until convergence; 0 when the tree backend
	// resolved the boundary edges instead.
	CtrSVRounds
	// CtrBorderLinks counts border unions that actually linked two
	// distinct sets (strip components minus links = final components).
	CtrBorderLinks
	// CtrUFFinds counts union-find find operations (border merge and
	// final relabel together).
	CtrUFFinds
	// CtrRuns counts maximal foreground runs extracted by the run-based
	// strip engine in binary mode.
	CtrRuns
	// CtrGreyRuns counts maximal equal-grey-level runs (segments)
	// extracted by the run-based strip engine in grey mode.
	CtrGreyRuns
	// CtrRelabeledPixels counts pixels whose label the final update
	// rewrote (pixels whose strip-local label was not already the root).
	CtrRelabeledPixels
	// CtrBands counts band windows the out-of-core streaming pipeline
	// decoded and labeled (each pass over the image counts its own bands).
	CtrBands
	// CtrCheckpoints counts durable checkpoint records the streaming
	// pipeline committed (temp-file + fsync + rename each).
	CtrCheckpoints
	// CtrResumeBand is the resumed-from-band gauge: the band index the
	// streaming census pass restarted at after restoring a checkpoint
	// (recorded once per resumed run; absent for fresh runs).
	CtrResumeBand

	numCounters
)

// String returns the counter's stable JSON key.
func (c Counter) String() string {
	switch c {
	case CtrStripComponents:
		return "strip_components"
	case CtrBorderPairs:
		return "border_pairs"
	case CtrBorderEdges:
		return "border_edges"
	case CtrSVRounds:
		return "sv_rounds"
	case CtrBorderLinks:
		return "border_links"
	case CtrUFFinds:
		return "uf_finds"
	case CtrRuns:
		return "runs"
	case CtrGreyRuns:
		return "grey_runs"
	case CtrRelabeledPixels:
		return "relabeled_pixels"
	case CtrBands:
		return "bands"
	case CtrCheckpoints:
		return "checkpoints"
	case CtrResumeBand:
		return "resume_band"
	}
	return fmt.Sprintf("counter(%d)", int(c))
}

// Phase is one recorded span of a run: either a measured wall-clock phase
// of the host-parallel engine (WallNS set) or a modeled phase of a
// simulated run (ModelS set, in simulated seconds). Parent names the
// enclosing phase for hierarchical spans (e.g. each merge iteration of a
// simulated labeling is a child of "merge"); top-level phases leave it
// empty. Summing the top-level spans of one kind reconstructs the run's
// end-to-end time of that kind.
type Phase struct {
	// Name identifies the phase (e.g. "strip_label", "border_merge",
	// "init", "merge[1]", "final_update").
	Name string `json:"name"`
	// Parent is the enclosing phase's name, empty for top-level phases.
	Parent string `json:"parent,omitempty"`
	// WallNS is the measured wall-clock duration in nanoseconds
	// (host-parallel runs).
	WallNS int64 `json:"wall_ns,omitempty"`
	// ModelS is the modeled duration in simulated seconds (BDM runs).
	ModelS float64 `json:"model_s,omitempty"`
}

// CommStat is the modeled communication volume attributed to one
// primitive or labeled region of a simulated run.
type CommStat struct {
	// Name is the communication label (e.g. "transpose", "broadcast",
	// "collect", "border_fetch", "change_dist").
	Name string `json:"name"`
	// Taus is the number of charged message latencies: each Sync that
	// completed at least one outstanding prefetch costs one tau, summed
	// over all processors.
	Taus int64 `json:"taus"`
	// Words is the total number of 32-bit words the primitive moved,
	// summed over all processors (active transfers only; passive
	// full-duplex overlap is not double-counted).
	Words int64 `json:"words"`
}

// Metrics is the observability document of one run: the JSON written by
// the -metrics flag of imgcc, imghist and benchjson and consumed by
// cmd/phasereport. Context fields (Command through K) are filled by the
// caller; measurement fields come from Recorder.Snapshot and the run's
// report.
type Metrics struct {
	// Schema identifies the document format; always the Schema constant.
	Schema string `json:"schema"`
	// Command is the emitting command ("imgcc", "imghist", "benchjson").
	Command string `json:"command,omitempty"`
	// Backend is the execution backend ("sim", "par", "seq" or "stream").
	Backend string `json:"backend,omitempty"`
	// Algo is the host-parallel strip algorithm ("auto", "bfs", "runs").
	Algo string `json:"algo,omitempty"`
	// Merge is the host-parallel border-merge backend ("auto", "tree",
	// "sv"), as configured; with "auto" the sv_rounds counter tells which
	// backend the density heuristic actually picked.
	Merge string `json:"merge,omitempty"`
	// Machine is the simulated machine profile name (sim backend only).
	Machine string `json:"machine,omitempty"`
	// Workers is the host-parallel worker count (par backend only).
	Workers int `json:"workers,omitempty"`
	// Procs is the simulated processor count (sim backend only).
	Procs int `json:"procs,omitempty"`
	// Image names the input (pattern name, "darpa", "random", a file).
	Image string `json:"image,omitempty"`
	// N is the image side in pixels.
	N int `json:"n,omitempty"`
	// K is the number of grey levels (histogram runs only).
	K int `json:"k,omitempty"`
	// TotalNS is the measured end-to-end wall time in nanoseconds; the
	// top-level wall phases sum to within a few percent of it.
	TotalNS int64 `json:"total_ns,omitempty"`
	// SimTimeS, CompTimeS and CommTimeS are the modeled end-to-end,
	// computation and communication seconds of a simulated run.
	SimTimeS  float64 `json:"sim_time_s,omitempty"`
	CompTimeS float64 `json:"comp_time_s,omitempty"`
	CommTimeS float64 `json:"comm_time_s,omitempty"`
	// Aborted carries the teardown cause when the run ended early (a
	// processor panic, a canceled context, a barrier watchdog stall);
	// empty for runs that completed. An aborted document is still valid:
	// the phases recorded before the abort are kept, closed by a
	// zero-length "aborted" span.
	Aborted string `json:"aborted,omitempty"`
	// Phases are the recorded spans, in record order.
	Phases []Phase `json:"phases,omitempty"`
	// Counters maps counter names to accumulated values; zero counters
	// are omitted.
	Counters map[string]int64 `json:"counters,omitempty"`
	// Comm is the modeled per-primitive communication volume, in first-
	// recorded order.
	Comm []CommStat `json:"comm,omitempty"`
}

// Validate checks the structural invariants of a Metrics document: the
// schema tag, non-negative measurements, named phases whose parents exist,
// and named communication entries. It is the schema check behind the CI
// -metrics smoke test.
func (m *Metrics) Validate() error {
	if m == nil {
		return fmt.Errorf("obs: nil metrics")
	}
	if m.Schema != Schema {
		return fmt.Errorf("obs: schema %q, want %q", m.Schema, Schema)
	}
	if m.TotalNS < 0 || m.SimTimeS < 0 || m.CompTimeS < 0 || m.CommTimeS < 0 {
		return fmt.Errorf("obs: negative total time")
	}
	names := make(map[string]bool, len(m.Phases))
	for _, ph := range m.Phases {
		if ph.Name == "" {
			return fmt.Errorf("obs: unnamed phase")
		}
		if ph.WallNS < 0 || ph.ModelS < 0 {
			return fmt.Errorf("obs: phase %q has a negative duration", ph.Name)
		}
		names[ph.Name] = true
	}
	for _, ph := range m.Phases {
		if ph.Parent != "" && !names[ph.Parent] {
			return fmt.Errorf("obs: phase %q names unknown parent %q", ph.Name, ph.Parent)
		}
	}
	for name, v := range m.Counters {
		if name == "" {
			return fmt.Errorf("obs: unnamed counter")
		}
		if v < 0 {
			return fmt.Errorf("obs: counter %q is negative", name)
		}
	}
	for _, c := range m.Comm {
		if c.Name == "" {
			return fmt.Errorf("obs: unnamed comm entry")
		}
		if c.Taus < 0 || c.Words < 0 {
			return fmt.Errorf("obs: comm entry %q has negative volume", c.Name)
		}
	}
	return nil
}

// WallPhaseNS returns the summed wall time of the top-level phases named
// (all top-level phases when no names are given).
func (m *Metrics) WallPhaseNS(names ...string) int64 {
	var sum int64
	for _, ph := range m.Phases {
		if ph.Parent != "" {
			continue
		}
		if len(names) == 0 {
			sum += ph.WallNS
			continue
		}
		for _, n := range names {
			if ph.Name == n {
				sum += ph.WallNS
			}
		}
	}
	return sum
}

// ModelPhaseS returns the summed modeled seconds of the top-level phases
// named (all top-level phases when no names are given).
func (m *Metrics) ModelPhaseS(names ...string) float64 {
	var sum float64
	for _, ph := range m.Phases {
		if ph.Parent != "" {
			continue
		}
		if len(names) == 0 {
			sum += ph.ModelS
			continue
		}
		for _, n := range names {
			if ph.Name == n {
				sum += ph.ModelS
			}
		}
	}
	return sum
}

// Write encodes m as indented JSON onto w.
func Write(w io.Writer, m *Metrics) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// WriteFile writes m as indented JSON to the named file.
func WriteFile(path string, m *Metrics) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, m); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// WriteFileList writes a list of documents to the named file as one
// indented JSON array (the multi-configuration form benchjson emits).
func WriteFileList(path string, ms []*Metrics) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(ms); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFileList reads and validates a JSON array of Metrics documents from
// the named file (the multi-configuration form benchjson emits).
func ReadFileList(path string) ([]*Metrics, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var ms []*Metrics
	if err := json.Unmarshal(data, &ms); err != nil {
		return nil, fmt.Errorf("obs: %s: %w", path, err)
	}
	for i, m := range ms {
		if err := m.Validate(); err != nil {
			return nil, fmt.Errorf("obs: %s[%d]: %w", path, i, err)
		}
	}
	return ms, nil
}

// ReadFile reads and validates a Metrics document from the named file.
func ReadFile(path string) (*Metrics, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Metrics
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("obs: %s: %w", path, err)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("obs: %s: %w", path, err)
	}
	return &m, nil
}

// commCell accumulates one communication label's volume; updates happen
// under the Recorder's mutex (Sync events are rare relative to the mutex
// cost, and a mutex keeps the map simple).
type commCell struct {
	taus, words int64
}

// Recorder collects the observability record of one or more runs. The nil
// *Recorder is the disabled recorder: every method is a no-op that
// performs no allocation and reads no clock, so engines call the recorder
// unconditionally. A non-nil Recorder is safe for concurrent use by the
// worker goroutines of one engine; epoch handling is by Reset (the
// engines accumulate, the caller snapshots and resets between runs).
type Recorder struct {
	counters [numCounters]atomic.Int64

	mu        sync.Mutex
	phases    []Phase
	comm      map[string]*commCell
	commOrder []string
	aborted   string
}

// NewRecorder returns an empty, enabled recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Enabled reports whether the recorder records anything (false for nil).
func (r *Recorder) Enabled() bool { return r != nil }

// Reset clears all recorded phases, counters and communication volumes,
// starting a new accumulation epoch. Atomic counter stores (rather than a
// fresh Recorder) keep long-lived engines pointing at the same recorder
// across runs.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	for i := range r.counters {
		r.counters[i].Store(0)
	}
	r.mu.Lock()
	r.phases = r.phases[:0]
	r.comm = nil
	r.commOrder = r.commOrder[:0]
	r.aborted = ""
	r.mu.Unlock()
}

// MarkAborted records that the observed run was torn down early and why
// (reason is the teardown error's message). The first mark wins — later
// secondary unwinds do not overwrite the original cause — and a zero-length
// "aborted" span closes the phase stream so readers can see where the run
// stopped. A no-op on the nil recorder.
func (r *Recorder) MarkAborted(reason string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.aborted == "" {
		if reason == "" {
			reason = "aborted"
		}
		r.aborted = reason
		r.phases = append(r.phases, Phase{Name: "aborted"})
	}
	r.mu.Unlock()
}

// Aborted returns the recorded teardown cause, empty when the observed run
// completed (always empty on the nil recorder).
func (r *Recorder) Aborted() string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.aborted
}

// Add accumulates n onto counter c. Safe for concurrent use; a no-op on
// the nil recorder and for n <= 0.
func (r *Recorder) Add(c Counter, n int64) {
	if r == nil || n <= 0 || c < 0 || c >= numCounters {
		return
	}
	r.counters[c].Add(n)
}

// Counter returns the accumulated value of c (0 on the nil recorder).
func (r *Recorder) Counter(c Counter) int64 {
	if r == nil || c < 0 || c >= numCounters {
		return 0
	}
	return r.counters[c].Load()
}

// StartPhase begins timing a wall-clock phase. On the nil recorder it
// returns the zero time without reading the clock, so the disabled path
// costs one nil check.
func (r *Recorder) StartPhase() time.Time {
	if r == nil {
		return time.Time{}
	}
	return time.Now()
}

// EndPhase records the wall-clock phase named name as having started at
// start (a StartPhase result) and ended now. Parent "" makes it a
// top-level phase. A no-op on the nil recorder.
func (r *Recorder) EndPhase(name, parent string, start time.Time) {
	if r == nil {
		return
	}
	d := time.Since(start)
	if d < 0 {
		d = 0
	}
	r.mu.Lock()
	r.phases = append(r.phases, Phase{Name: name, Parent: parent, WallNS: d.Nanoseconds()})
	r.mu.Unlock()
}

// AddModelPhase records a modeled phase of seconds simulated seconds. A
// no-op on the nil recorder and for negative durations.
func (r *Recorder) AddModelPhase(name, parent string, seconds float64) {
	if r == nil || seconds < 0 {
		return
	}
	r.mu.Lock()
	r.phases = append(r.phases, Phase{Name: name, Parent: parent, ModelS: seconds})
	r.mu.Unlock()
}

// AddComm accumulates taus charged latencies and words moved words under
// the communication label. A no-op on the nil recorder.
func (r *Recorder) AddComm(label string, taus, words int64) {
	if r == nil {
		return
	}
	if label == "" {
		label = "unlabeled"
	}
	r.mu.Lock()
	cell := r.comm[label]
	if cell == nil {
		if r.comm == nil {
			r.comm = make(map[string]*commCell)
		}
		cell = &commCell{}
		r.comm[label] = cell
		r.commOrder = append(r.commOrder, label)
	}
	cell.taus += taus
	cell.words += words
	r.mu.Unlock()
}

// Snapshot returns the recorder's current contents as a Metrics document
// with the schema tag set; context fields are left for the caller. The nil
// recorder snapshots to an empty valid document. The recorder keeps
// accumulating; use Reset to start a new epoch.
func (r *Recorder) Snapshot() *Metrics {
	m := &Metrics{Schema: Schema}
	if r == nil {
		return m
	}
	r.mu.Lock()
	m.Aborted = r.aborted
	m.Phases = append([]Phase(nil), r.phases...)
	for _, label := range r.commOrder {
		cell := r.comm[label]
		m.Comm = append(m.Comm, CommStat{Name: label, Taus: cell.taus, Words: cell.words})
	}
	r.mu.Unlock()
	for c := Counter(0); c < numCounters; c++ {
		if v := r.counters[c].Load(); v != 0 {
			if m.Counters == nil {
				m.Counters = make(map[string]int64, int(numCounters))
			}
			m.Counters[c.String()] = v
		}
	}
	return m
}

// CounterNames returns the stable JSON keys of every counter, sorted, for
// schema checks and documentation.
func CounterNames() []string {
	names := make([]string, 0, int(numCounters))
	for c := Counter(0); c < numCounters; c++ {
		names = append(names, c.String())
	}
	sort.Strings(names)
	return names
}
