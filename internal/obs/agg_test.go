package obs

import (
	"sync"
	"testing"
)

// TestAggObserve checks the by-name summation contract: top-level phases
// merge in first-observed order, child phases are skipped, counters sum,
// and the synthetic runs/aborted_runs counters track documents.
func TestAggObserve(t *testing.T) {
	a := NewAgg()
	a.Observe(&Metrics{
		Schema: Schema, TotalNS: 100,
		Phases: []Phase{
			{Name: "decode", WallNS: 10},
			{Name: "label", WallNS: 80},
			{Name: "strip_label", Parent: "label", WallNS: 70}, // child: skipped
		},
		Counters: map[string]int64{"runs_extracted": 5},
	})
	a.Observe(&Metrics{
		Schema: Schema, TotalNS: 50, Aborted: "deadline",
		Phases: []Phase{
			{Name: "label", WallNS: 30}, // merges into the existing entry
			{Name: "census", WallNS: 5}, // new name appends
		},
		Counters: map[string]int64{"runs_extracted": 2, "components": 7},
	})
	a.Observe(nil) // ignored

	if got := a.Count(); got != 2 {
		t.Fatalf("Count() = %d, want 2", got)
	}
	m := a.Snapshot()
	if err := m.Validate(); err != nil {
		t.Fatalf("aggregate document invalid: %v", err)
	}
	if m.TotalNS != 150 {
		t.Fatalf("TotalNS = %d, want 150", m.TotalNS)
	}
	wantPhases := []Phase{{Name: "decode", WallNS: 10}, {Name: "label", WallNS: 110}, {Name: "census", WallNS: 5}}
	if len(m.Phases) != len(wantPhases) {
		t.Fatalf("got %d phases %v, want %d", len(m.Phases), m.Phases, len(wantPhases))
	}
	for i, want := range wantPhases {
		if m.Phases[i] != want {
			t.Fatalf("phase %d = %+v, want %+v", i, m.Phases[i], want)
		}
	}
	for key, want := range map[string]int64{
		"runs_extracted": 7, "components": 7, "runs": 2, "aborted_runs": 1,
	} {
		if m.Counters[key] != want {
			t.Fatalf("counter %q = %d, want %d", key, m.Counters[key], want)
		}
	}
}

// TestAggSnapshotIsolated checks the caller owns the snapshot: mutating a
// returned document must not leak into later snapshots, and an empty
// aggregate snapshots to a valid zero document.
func TestAggSnapshotIsolated(t *testing.T) {
	a := NewAgg()
	empty := a.Snapshot()
	if err := empty.Validate(); err != nil {
		t.Fatalf("empty aggregate invalid: %v", err)
	}
	if empty.Counters["runs"] != 0 {
		t.Fatalf("empty aggregate runs = %d, want 0", empty.Counters["runs"])
	}
	empty.Counters["queue_depth"] = 42 // caller extends its copy...
	if m := a.Snapshot(); m.Counters["queue_depth"] != 0 {
		t.Fatal("caller mutation leaked into the aggregator")
	}
}

// TestAggConcurrent hammers Observe from many goroutines under the race
// detector and checks nothing is lost.
func TestAggConcurrent(t *testing.T) {
	a := NewAgg()
	const G, per = 8, 50
	var wg sync.WaitGroup
	wg.Add(G)
	for g := 0; g < G; g++ {
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				a.Observe(&Metrics{
					Schema: Schema, TotalNS: 1,
					Phases:   []Phase{{Name: "label", WallNS: 1}},
					Counters: map[string]int64{"c": 1},
				})
			}
		}()
	}
	wg.Wait()
	m := a.Snapshot()
	if m.Counters["runs"] != G*per || m.Counters["c"] != G*per || m.TotalNS != G*per {
		t.Fatalf("lost updates: %+v", m.Counters)
	}
}
