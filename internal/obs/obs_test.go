package obs

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	r.Add(CtrUFFinds, 5)
	r.AddComm("transpose", 1, 10)
	r.AddModelPhase("init", "", 1.0)
	r.EndPhase("strip_label", "", r.StartPhase())
	r.Reset()
	if got := r.Counter(CtrUFFinds); got != 0 {
		t.Fatalf("nil recorder counter = %d", got)
	}
	m := r.Snapshot()
	if err := m.Validate(); err != nil {
		t.Fatalf("nil snapshot invalid: %v", err)
	}
	if len(m.Phases) != 0 || len(m.Comm) != 0 || len(m.Counters) != 0 {
		t.Fatalf("nil snapshot not empty: %+v", m)
	}
}

func TestNilRecorderAllocFree(t *testing.T) {
	var r *Recorder
	avg := testing.AllocsPerRun(100, func() {
		t0 := r.StartPhase()
		r.Add(CtrBorderLinks, 3)
		r.AddComm("x", 1, 1)
		r.EndPhase("p", "", t0)
		r.AddModelPhase("m", "", 0.5)
	})
	if avg != 0 {
		t.Fatalf("disabled recorder path allocates %.1f/op, want 0", avg)
	}
}

func TestNilStartPhaseIsZeroTime(t *testing.T) {
	var r *Recorder
	if !r.StartPhase().IsZero() {
		t.Fatal("nil StartPhase read the clock")
	}
}

func TestCountersAccumulateConcurrently(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Add(CtrUFFinds, 1)
				r.AddComm("transpose", 1, 4)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter(CtrUFFinds); got != 8000 {
		t.Fatalf("uf_finds = %d, want 8000", got)
	}
	m := r.Snapshot()
	if len(m.Comm) != 1 || m.Comm[0].Taus != 8000 || m.Comm[0].Words != 32000 {
		t.Fatalf("comm = %+v", m.Comm)
	}
}

func TestPhaseRecording(t *testing.T) {
	r := NewRecorder()
	t0 := r.StartPhase()
	time.Sleep(time.Millisecond)
	r.EndPhase("strip_label", "", t0)
	r.AddModelPhase("merge[1]", "merge", 0.25)
	r.AddModelPhase("merge", "", 0.25)
	m := r.Snapshot()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(m.Phases) != 3 {
		t.Fatalf("phases = %d, want 3", len(m.Phases))
	}
	if m.Phases[0].WallNS < int64(time.Millisecond) {
		t.Fatalf("strip_label = %dns, want >= 1ms", m.Phases[0].WallNS)
	}
	// Child phases do not contribute to the top-level sums.
	if got := m.ModelPhaseS(); got != 0.25 {
		t.Fatalf("top-level model sum = %v, want 0.25", got)
	}
	if got := m.WallPhaseNS("strip_label"); got != m.Phases[0].WallNS {
		t.Fatalf("WallPhaseNS(strip_label) = %d", got)
	}
}

func TestResetStartsNewEpoch(t *testing.T) {
	r := NewRecorder()
	r.Add(CtrRuns, 7)
	r.AddComm("collect", 2, 64)
	r.AddModelPhase("init", "", 1)
	r.Reset()
	m := r.Snapshot()
	if len(m.Phases) != 0 || len(m.Comm) != 0 || len(m.Counters) != 0 {
		t.Fatalf("reset left state: %+v", m)
	}
	// The recorder keeps working after a reset.
	r.Add(CtrRuns, 1)
	if got := r.Counter(CtrRuns); got != 1 {
		t.Fatalf("post-reset counter = %d", got)
	}
}

func TestValidateRejectsBadDocuments(t *testing.T) {
	cases := []struct {
		name string
		m    Metrics
	}{
		{"bad schema", Metrics{Schema: "nope"}},
		{"unnamed phase", Metrics{Schema: Schema, Phases: []Phase{{}}}},
		{"negative wall", Metrics{Schema: Schema, Phases: []Phase{{Name: "x", WallNS: -1}}}},
		{"unknown parent", Metrics{Schema: Schema, Phases: []Phase{{Name: "x", Parent: "y"}}}},
		{"negative counter", Metrics{Schema: Schema, Counters: map[string]int64{"c": -1}}},
		{"unnamed comm", Metrics{Schema: Schema, Comm: []CommStat{{}}}},
		{"negative comm", Metrics{Schema: Schema, Comm: []CommStat{{Name: "t", Words: -1}}}},
		{"negative total", Metrics{Schema: Schema, TotalNS: -1}},
	}
	for _, c := range cases {
		if err := c.m.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", c.name, c.m)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	r := NewRecorder()
	r.Add(CtrBorderPairs, 12)
	r.AddComm("border_fetch", 3, 96)
	t0 := r.StartPhase()
	r.EndPhase("border_merge", "", t0)
	m := r.Snapshot()
	m.Command, m.Backend, m.Algo = "imgcc", "par", "runs"
	m.Workers, m.Image, m.N = 4, "cross", 64
	m.TotalNS = 12345

	path := filepath.Join(t.TempDir(), "metrics.json")
	if err := WriteFile(path, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Backend != "par" || got.Counters["border_pairs"] != 12 ||
		got.Comm[0].Name != "border_fetch" || got.Comm[0].Words != 96 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestSnapshotIsIndependentCopy(t *testing.T) {
	r := NewRecorder()
	r.AddModelPhase("init", "", 1)
	m := r.Snapshot()
	r.AddModelPhase("final_update", "", 2)
	if len(m.Phases) != 1 {
		t.Fatalf("snapshot aliased live state: %d phases", len(m.Phases))
	}
}

func TestCounterNamesAreStable(t *testing.T) {
	names := CounterNames()
	want := []string{"bands", "border_edges", "border_links", "border_pairs",
		"checkpoints", "grey_runs", "relabeled_pixels", "resume_band", "runs",
		"strip_components", "sv_rounds", "uf_finds"}
	if len(names) != len(want) {
		t.Fatalf("counter names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("counter names = %v, want %v", names, want)
		}
	}
	for _, n := range names {
		if strings.Contains(n, "(") {
			t.Fatalf("counter %q has no stable name", n)
		}
	}
}

func TestSchemaFieldNamesAreStable(t *testing.T) {
	m := Metrics{
		Schema: Schema, Command: "imgcc", Backend: "par", TotalNS: 1,
		Phases:   []Phase{{Name: "p", WallNS: 1}},
		Counters: map[string]int64{"uf_finds": 1},
		Comm:     []CommStat{{Name: "transpose", Taus: 1, Words: 2}},
	}
	data, err := json.Marshal(&m)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"schema"`, `"command"`, `"backend"`, `"total_ns"`,
		`"phases"`, `"name"`, `"wall_ns"`, `"counters"`, `"comm"`, `"taus"`, `"words"`} {
		if !strings.Contains(string(data), key) {
			t.Errorf("JSON missing key %s: %s", key, data)
		}
	}
}
