package cc

import (
	"testing"

	"parimg/internal/bdm"
	"parimg/internal/image"
	"parimg/internal/machine"
	"parimg/internal/seq"
	"parimg/internal/sortutil"
)

// TestSolveMergeTwoTiles drives the manager/shadow machinery directly on a
// two-processor machine and inspects the produced change array.
//
// Image (4x4, two 4x2 tiles):
//
//	1 1 | 1 0
//	0 0 | 0 0
//	1 0 | 0 1
//	0 0 | 1 0
//
// The top row is one component crossing the border: the left part gets
// label 1 (pixel (0,0)), the right part label 3 (pixel (0,2)); the merge
// must rename 3 -> 1. Under 8-connectivity the bottom-left pixel (2,0) has
// no cross-border contact; (2,3) and (3,2) connect diagonally across
// nothing (both on the right tile) — so exactly one change pair results.
func TestSolveMergeTwoTiles(t *testing.T) {
	im := image.New(4)
	im.Set(0, 0, 1)
	im.Set(0, 1, 1)
	im.Set(0, 2, 1)
	im.Set(2, 0, 1)
	im.Set(2, 3, 1)
	im.Set(3, 2, 1)

	m, err := bdm.NewMachine(2, machine.Ideal)
	if err != nil {
		t.Fatal(err)
	}
	lay, err := image.NewLayout(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{}
	if err := opt.normalize(); err != nil {
		t.Fatal(err)
	}
	st := newSharedState(m, lay)
	st.prepare(im, opt)
	ph := st.phases[0]
	if ph.Orient != Horizontal {
		t.Fatalf("first phase %v, want horizontal", ph.Orient)
	}

	var changes []sortutil.Pair
	_, err = m.Run(func(pr *bdm.Proc) {
		rank := pr.Rank()
		loc := &st.locals[rank]
		pix := st.tilePix.Local(pr)
		lab := st.tileLab.Local(pr)
		seq.TileLabeler(pix, lay.Q, lay.R, opt.Conn, opt.Mode,
			func(i, j int) uint32 { return lay.InitialLabel(rank, i, j) }, lab, nil, nil)
		// Publish color and label edges.
		copy(st.pixN.Local(pr), pix[:lay.R])
		copy(st.pixS.Local(pr), pix[(lay.Q-1)*lay.R:])
		pe, pw := st.pixE.Local(pr), st.pixW.Local(pr)
		for i := 0; i < lay.Q; i++ {
			pw[i] = pix[i*lay.R]
			pe[i] = pix[i*lay.R+lay.R-1]
		}
		st.refreshLabelEdges(pr, lab)
		pr.Barrier()

		grp := GroupOf(st.lay, ph, rank)
		if rank == grp.Manager {
			st.loadSide(pr, loc, grp, 0)
			st.sortSide(pr, loc, 0, grp.Side)
		}
		if rank == grp.Shadow {
			st.loadSide(pr, loc, grp, 1)
			st.sortSide(pr, loc, 1, grp.Side)
			st.shCnt.Local(pr)[0] = uint32(len(loc.pairs[1]))
			sl, sp := st.shSortLab.Local(pr), st.shSortPos.Local(pr)
			for i, pa := range loc.pairs[1] {
				sl[i] = pa.Key
				sp[i] = pa.Value
			}
			copy(st.shPixPos.Local(pr)[:grp.Side], loc.sidePix[1])
		}
		pr.Barrier()
		if rank == grp.Manager {
			st.fetchShadowSide(pr, loc, grp)
			changes = st.solveMerge(pr, loc, grp)
		}
		pr.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}

	if len(changes) != 1 {
		t.Fatalf("changes = %v, want exactly one pair", changes)
	}
	// Pixel (0,2) has global index 2, so its tile label is 3; the
	// component minimum is pixel (0,0) with label 1.
	if changes[0].Key != 3 || changes[0].Value != 1 {
		t.Errorf("change = (%d -> %d), want (3 -> 1)", changes[0].Key, changes[0].Value)
	}
}

// TestHooksTrackFinalLabels verifies the tile-hook invariant after a full
// run: each hook's current label equals the final label of the pixel it
// points to, and its component was flooded consistently.
func TestHooksTrackFinalLabels(t *testing.T) {
	im := image.RandomBinary(64, 0.6, 17)
	m, err := bdm.NewMachine(16, machine.CM5)
	if err != nil {
		t.Fatal(err)
	}
	lay, err := image.NewLayout(64, 16)
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{}
	if err := opt.normalize(); err != nil {
		t.Fatal(err)
	}
	st := newSharedState(m, lay)
	st.prepare(im, opt)
	if _, err := m.Run(st.procMain); err != nil {
		t.Fatal(err)
	}
	for rank := 0; rank < 16; rank++ {
		lab := st.tileLab.Row(rank)
		for _, h := range st.locals[rank].hooks {
			if lab[h.off] != h.cur {
				t.Fatalf("rank %d: hook at %d has cur=%d but pixel label %d",
					rank, h.off, h.cur, lab[h.off])
			}
		}
	}
}

// TestSortSideSkipsBackground ensures only colored pixels enter the sorted
// border pairs.
func TestSortSideSkipsBackground(t *testing.T) {
	m, err := bdm.NewMachine(1, machine.Ideal)
	if err != nil {
		t.Fatal(err)
	}
	loc := &procLocal{}
	loc.sidePix[0] = []uint32{0, 1, 0, 1, 1}
	loc.sideLab[0] = []uint32{0, 42, 0, 7, 7}
	st := &sharedState{}
	if _, err := m.Run(func(pr *bdm.Proc) {
		st.sortSide(pr, loc, 0, 5)
	}); err != nil {
		t.Fatal(err)
	}
	if len(loc.pairs[0]) != 3 {
		t.Fatalf("pairs = %v, want 3 colored entries", loc.pairs[0])
	}
	// Sorted by label: 7, 7, 42.
	if loc.pairs[0][0].Key != 7 || loc.pairs[0][1].Key != 7 || loc.pairs[0][2].Key != 42 {
		t.Errorf("pairs not label-sorted: %v", loc.pairs[0])
	}
}
