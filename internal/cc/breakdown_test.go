package cc

import (
	"math"
	"testing"

	"parimg/internal/image"
)

func TestStageBreakdownSumsToSimTime(t *testing.T) {
	im := image.Generate(image.DualSpiral, 64)
	for _, p := range []int{4, 16, 64} {
		m := mustMachine(t, p)
		res, err := Run(m, im, Options{})
		if err != nil {
			t.Fatal(err)
		}
		logp := 0
		for 1<<logp < p {
			logp++
		}
		if len(res.Stages.Merge) != logp {
			t.Fatalf("p=%d: %d merge stages, want %d", p, len(res.Stages.Merge), logp)
		}
		sum := res.Stages.Init + res.Stages.Final
		for _, ph := range res.Stages.Merge {
			if ph <= 0 {
				t.Errorf("p=%d: non-positive merge stage time %g", p, ph)
			}
			sum += ph
		}
		if res.Stages.Init <= 0 {
			t.Errorf("p=%d: non-positive init time", p)
		}
		if math.Abs(sum-res.Report.SimTime) > 1e-9*math.Max(1, res.Report.SimTime) {
			t.Errorf("p=%d: stages sum to %g, SimTime %g", p, sum, res.Report.SimTime)
		}
	}
}

func TestStageBreakdownInitDominatesAtSmallP(t *testing.T) {
	// At p=4 the per-tile sequential labeling is by far the largest
	// stage (the paper's Tcomp = O(n^2/p) with merges touching only
	// borders).
	im := image.Generate(image.ConcentricCircles, 128)
	m := mustMachine(t, 4)
	res, err := Run(m, im, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var mergeTotal float64
	for _, ph := range res.Stages.Merge {
		mergeTotal += ph
	}
	if res.Stages.Init < mergeTotal {
		t.Errorf("init %g should dominate merges %g at p=4", res.Stages.Init, mergeTotal)
	}
}

func TestStageBreakdownFullRelabelInflatesMerges(t *testing.T) {
	im := image.Generate(image.DualSpiral, 128)
	m1 := mustMachine(t, 16)
	limited, err := Run(m1, im, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m2 := mustMachine(t, 16)
	full, err := Run(m2, im, Options{FullRelabel: true})
	if err != nil {
		t.Fatal(err)
	}
	var lm, fm float64
	for _, ph := range limited.Stages.Merge {
		lm += ph
	}
	for _, ph := range full.Stages.Merge {
		fm += ph
	}
	if fm <= lm {
		t.Errorf("full relabel merge time %g not above limited updating %g", fm, lm)
	}
	if full.Stages.Final >= limited.Stages.Final {
		t.Errorf("full relabel should have a cheaper final stage: %g vs %g",
			full.Stages.Final, limited.Stages.Final)
	}
}
