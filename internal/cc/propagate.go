package cc

import (
	"fmt"

	"parimg/internal/bdm"
	"parimg/internal/image"
	"parimg/internal/seq"
)

// RunPropagation labels connected components with the classic iterative
// label-diffusion scheme that many of the Table 2 competitors use (local
// relabel + neighbor exchange until a global fixed point): each processor
// labels its tile once, then repeatedly exchanges border labels with its
// grid neighbors, adopting the minimum label across every connected border
// pair, until no label changes anywhere.
//
// The algorithm is simple and has cheap iterations, but needs a number of
// iterations proportional to the diameter of the largest component measured
// in tiles — O(v + w) in the worst case against the paper's fixed log p
// merges. The dual-spiral catalog image is the adversarial case: its
// components snake through nearly every tile, so diffusion pays hundreds of
// iterations where the paper's algorithm pays log p. This is the baseline
// the benchmark harness compares against (BenchmarkBaselinePropagation).
//
// The final labeling is canonical (minimum initial label per component),
// identical to Run's and to seq.LabelBFS's.
func RunPropagation(m *bdm.Machine, im *image.Image, opt Options) (*Result, error) {
	if err := opt.normalize(); err != nil {
		return nil, err
	}
	if err := im.Check(); err != nil {
		return nil, fmt.Errorf("cc: %w", err)
	}
	lay, err := image.NewLayout(im.N, m.P())
	if err != nil {
		return nil, err
	}

	st := newPropState(m, lay, im, opt)
	m.Reset()
	report, err := m.Run(st.procMain)
	if err != nil {
		return nil, err
	}

	out := image.NewLabels(im.N)
	for rank := 0; rank < m.P(); rank++ {
		lay.GatherLabels(out, rank, st.tileLab.Row(rank))
	}
	return &Result{
		Labels:     out,
		Components: out.Components(),
		Report:     report,
		Phases:     st.iterations,
	}, nil
}

// propState is the shared state of the propagation baseline.
type propState struct {
	lay image.Layout
	opt Options

	tilePix *bdm.Spread[uint32]
	tileLab *bdm.Spread[uint32]

	pixN, pixS, labN, labS *bdm.Spread[uint32] // length r
	pixE, pixW, labE, labW *bdm.Spread[uint32] // length q

	changed *bdm.Spread[uint32] // 1 per processor

	comps      [][]int32  // per rank: tile-component id per pixel, -1 bg
	compLabels [][]uint32 // per rank: current label per tile component

	iterations int
}

func newPropState(m *bdm.Machine, lay image.Layout, im *image.Image, opt Options) *propState {
	q, r := lay.Q, lay.R
	st := &propState{
		lay:     lay,
		opt:     opt,
		tilePix: bdm.NewSpread[uint32](m, q*r),
		tileLab: bdm.NewSpread[uint32](m, q*r),
		pixN:    bdm.NewSpread[uint32](m, r),
		pixS:    bdm.NewSpread[uint32](m, r),
		labN:    bdm.NewSpread[uint32](m, r),
		labS:    bdm.NewSpread[uint32](m, r),
		pixE:    bdm.NewSpread[uint32](m, q),
		pixW:    bdm.NewSpread[uint32](m, q),
		labE:    bdm.NewSpread[uint32](m, q),
		labW:    bdm.NewSpread[uint32](m, q),
		changed: bdm.NewSpread[uint32](m, 1),

		comps:      make([][]int32, m.P()),
		compLabels: make([][]uint32, m.P()),
	}
	for rank := 0; rank < m.P(); rank++ {
		lay.Scatter(im, rank, st.tilePix.Row(rank))
	}
	return st
}

func (st *propState) procMain(pr *bdm.Proc) {
	rank := pr.Rank()
	lay := st.lay
	q, r := lay.Q, lay.R
	pix := st.tilePix.Local(pr)
	lab := st.tileLab.Local(pr)

	// Initialization: tile components once; component c's label starts
	// at the globally unique initial label of its seed pixel.
	comp := make([]int32, q*r)
	var compLabels []uint32
	{
		for i := range lab {
			lab[i] = 0
		}
		seq.TileLabeler(pix, q, r, st.opt.Conn, st.opt.Mode,
			func(i, j int) uint32 {
				compLabels = append(compLabels, lay.InitialLabel(rank, i, j))
				return uint32(len(compLabels)) // 1-based component id
			}, lab, nil, nil)
		for i := range comp {
			if lab[i] == 0 {
				comp[i] = -1
			} else {
				comp[i] = int32(lab[i]) - 1
			}
		}
		pr.Work(opsPerPixelBFS * q * r)
	}
	st.comps[rank] = comp
	st.compLabels[rank] = compLabels

	// Static color edges.
	copy(st.pixN.Local(pr), pix[:r])
	copy(st.pixS.Local(pr), pix[(q-1)*r:])
	pe, pw := st.pixE.Local(pr), st.pixW.Local(pr)
	for i := 0; i < q; i++ {
		pw[i] = pix[i*r]
		pe[i] = pix[i*r+r-1]
	}
	pr.Work(opsPerBorderPixel * 2 * (q + r))
	pr.Barrier()

	gi, gj := lay.GridPos(rank)
	neighbor := func(di, dj int) int {
		ni, nj := gi+di, gj+dj
		if ni < 0 || ni >= lay.V || nj < 0 || nj >= lay.W {
			return -1
		}
		return lay.Rank(ni, nj)
	}
	up, down := neighbor(-1, 0), neighbor(1, 0)
	left, right := neighbor(0, -1), neighbor(0, 1)

	// Prefetch buffers for the four facing edges and, for
	// 8-connectivity, the four diagonal corner pixels.
	nPix := make([]uint32, r)
	nLab := make([]uint32, r)
	sPix := make([]uint32, r)
	sLab := make([]uint32, r)
	ePix := make([]uint32, q)
	eLab := make([]uint32, q)
	wPix := make([]uint32, q)
	wLab := make([]uint32, q)

	iter := 0
	for {
		iter++
		// Publish current border labels.
		ln, ls := st.labN.Local(pr), st.labS.Local(pr)
		le, lw := st.labE.Local(pr), st.labW.Local(pr)
		for j := 0; j < r; j++ {
			if c := comp[j]; c >= 0 {
				ln[j] = compLabels[c]
			} else {
				ln[j] = 0
			}
			if c := comp[(q-1)*r+j]; c >= 0 {
				ls[j] = compLabels[c]
			} else {
				ls[j] = 0
			}
		}
		for i := 0; i < q; i++ {
			if c := comp[i*r]; c >= 0 {
				lw[i] = compLabels[c]
			} else {
				lw[i] = 0
			}
			if c := comp[i*r+r-1]; c >= 0 {
				le[i] = compLabels[c]
			} else {
				le[i] = 0
			}
		}
		pr.Work(2 * (q + r))
		pr.Barrier()

		// Exchange with the four neighbors.
		if up >= 0 {
			bdm.Get(pr, nPix, st.pixS, up, 0)
			bdm.Get(pr, nLab, st.labS, up, 0)
		}
		if down >= 0 {
			bdm.Get(pr, sPix, st.pixN, down, 0)
			bdm.Get(pr, sLab, st.labN, down, 0)
		}
		if left >= 0 {
			bdm.Get(pr, wPix, st.pixE, left, 0)
			bdm.Get(pr, wLab, st.labE, left, 0)
		}
		if right >= 0 {
			bdm.Get(pr, ePix, st.pixW, right, 0)
			bdm.Get(pr, eLab, st.labW, right, 0)
		}
		pr.Sync()

		changed := false
		adopt := func(myOff int, theirPix, theirLab uint32) {
			c := comp[myOff]
			if c < 0 || theirPix == 0 {
				return
			}
			if !st.opt.Mode.Connected(pix[myOff], theirPix) {
				return
			}
			if theirLab != 0 && theirLab < compLabels[c] {
				compLabels[c] = theirLab
				changed = true
			}
		}
		diag := st.opt.Conn == image.Conn8
		// North edge vs the upper neighbor's south edge.
		if up >= 0 {
			for j := 0; j < r; j++ {
				adopt(j, nPix[j], nLab[j])
				if diag {
					if j > 0 {
						adopt(j, nPix[j-1], nLab[j-1])
					}
					if j < r-1 {
						adopt(j, nPix[j+1], nLab[j+1])
					}
				}
			}
		}
		if down >= 0 {
			for j := 0; j < r; j++ {
				adopt((q-1)*r+j, sPix[j], sLab[j])
				if diag {
					if j > 0 {
						adopt((q-1)*r+j, sPix[j-1], sLab[j-1])
					}
					if j < r-1 {
						adopt((q-1)*r+j, sPix[j+1], sLab[j+1])
					}
				}
			}
		}
		if left >= 0 {
			for i := 0; i < q; i++ {
				adopt(i*r, wPix[i], wLab[i])
				if diag {
					if i > 0 {
						adopt(i*r, wPix[i-1], wLab[i-1])
					}
					if i < q-1 {
						adopt(i*r, wPix[i+1], wLab[i+1])
					}
				}
			}
		}
		if right >= 0 {
			for i := 0; i < q; i++ {
				adopt(i*r+r-1, ePix[i], eLab[i])
				if diag {
					if i > 0 {
						adopt(i*r+r-1, ePix[i-1], eLab[i-1])
					}
					if i < q-1 {
						adopt(i*r+r-1, ePix[i+1], eLab[i+1])
					}
				}
			}
		}
		// Diagonal corner neighbors under 8-connectivity.
		if diag {
			if nw := neighbor(-1, -1); nw >= 0 {
				adopt(0, bdm.GetScalar(pr, st.pixS, nw, r-1), bdm.GetScalar(pr, st.labS, nw, r-1))
			}
			if ne := neighbor(-1, 1); ne >= 0 {
				adopt(r-1, bdm.GetScalar(pr, st.pixS, ne, 0), bdm.GetScalar(pr, st.labS, ne, 0))
			}
			if sw := neighbor(1, -1); sw >= 0 {
				adopt((q-1)*r, bdm.GetScalar(pr, st.pixN, sw, r-1), bdm.GetScalar(pr, st.labN, sw, r-1))
			}
			if se := neighbor(1, 1); se >= 0 {
				adopt((q-1)*r+r-1, bdm.GetScalar(pr, st.pixN, se, 0), bdm.GetScalar(pr, st.labN, se, 0))
			}
			pr.Sync()
		}
		pr.Work(opsPerBorderPixel * 2 * (q + r) * 3)

		// Global convergence: every processor publishes its change
		// flag and scans everyone's.
		if changed {
			st.changed.Local(pr)[0] = 1
		} else {
			st.changed.Local(pr)[0] = 0
		}
		pr.Barrier()
		any := false
		for rnk := 0; rnk < pr.P(); rnk++ {
			if bdm.GetScalar(pr, st.changed, rnk, 0) != 0 {
				any = true
			}
		}
		pr.Sync()
		pr.Work(pr.P())
		pr.Barrier()
		if !any {
			break
		}
	}
	if rank == 0 {
		st.iterations = iter
	}

	// Materialize the final per-pixel labels.
	for i := range lab {
		if c := comp[i]; c >= 0 {
			lab[i] = compLabels[c]
		} else {
			lab[i] = 0
		}
	}
	pr.Work(2 * q * r)
	pr.Barrier()
}
