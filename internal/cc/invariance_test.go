package cc

import (
	"testing"
	"testing/quick"

	"parimg/internal/image"
	"parimg/internal/seq"
)

// TestComponentCountInvariantUnderSymmetries: rotations and reflections
// preserve adjacency, so the parallel labeler must find the same number of
// components (and the same multiset of component sizes) on the transformed
// image.
func TestComponentCountInvariantUnderSymmetries(t *testing.T) {
	f := func(seed uint64, connSel uint8) bool {
		conn := image.Conn8
		if connSel%2 == 0 {
			conn = image.Conn4
		}
		im := image.RandomBinary(32, 0.55, seed)
		base := run(t, im, conn)
		for _, tr := range []func(*image.Image) *image.Image{
			(*image.Image).Rotate90,
			(*image.Image).FlipH,
			(*image.Image).FlipV,
			(*image.Image).Transpose,
		} {
			got := run(t, tr(im), conn)
			if !sameSizeMultiset(base, got) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func run(t *testing.T, im *image.Image, conn image.Connectivity) *image.Labels {
	t.Helper()
	m := mustMachine(t, 16)
	res, err := Run(m, im, Options{Conn: conn, Mode: seq.Binary})
	if err != nil {
		t.Fatal(err)
	}
	return res.Labels
}

func sameSizeMultiset(a, b *image.Labels) bool {
	sa, sb := a.ComponentSizes(), b.ComponentSizes()
	if len(sa) != len(sb) {
		return false
	}
	counts := map[int]int{}
	for _, s := range sa {
		counts[s]++
	}
	for _, s := range sb {
		counts[s]--
	}
	for _, c := range counts {
		if c != 0 {
			return false
		}
	}
	return true
}

// TestPatternComponentCounts pins the analytically known component counts
// of the catalog at a fixed size, as a regression anchor for both the
// generators and the labeler.
func TestPatternComponentCounts(t *testing.T) {
	n := 128
	thick := image.PatternThickness(n) // 8: the augmented feature size
	// Horizontal bars: stripes of height 8 alternating from row 0:
	// foreground stripes at rows 0-7, 16-23, ... -> n/(2*thick) = 8.
	wantBars := n / (2 * thick)
	cases := []struct {
		id   image.PatternID
		conn image.Connectivity
		want int
	}{
		{image.HorizontalBars, image.Conn8, wantBars},
		{image.VerticalBars, image.Conn8, wantBars},
		{image.Cross, image.Conn8, 1},
		{image.FilledDisc, image.Conn8, 1},
		{image.FourSquares, image.Conn8, 4},
	}
	for _, c := range cases {
		im := image.Generate(c.id, n)
		m := mustMachine(t, 16)
		res, err := Run(m, im, Options{Conn: c.conn})
		if err != nil {
			t.Fatal(err)
		}
		if res.Components != c.want {
			t.Errorf("%v at n=%d: %d components, want %d", c.id, n, res.Components, c.want)
		}
	}
}

// TestStress exercises large images and processor counts; skipped in
// -short mode.
func TestStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	for _, tc := range []struct {
		n, p int
	}{
		{256, 128}, {512, 256}, {256, 4},
	} {
		im := image.RandomBinary(tc.n, 0.593, uint64(tc.n*tc.p))
		m := mustMachine(t, tc.p)
		res, err := Run(m, im, Options{})
		if err != nil {
			t.Fatalf("n=%d p=%d: %v", tc.n, tc.p, err)
		}
		want := seq.LabelBFS(im, image.Conn8, seq.Binary)
		for i := range want.Lab {
			if res.Labels.Lab[i] != want.Lab[i] {
				t.Fatalf("n=%d p=%d: mismatch at %d", tc.n, tc.p, i)
			}
		}
		// The dual spiral at scale, all three parallel algorithms.
		sp := image.Generate(image.DualSpiral, tc.n)
		m2 := mustMachine(t, tc.p)
		a, err := Run(m2, sp, Options{})
		if err != nil {
			t.Fatal(err)
		}
		m3 := mustMachine(t, tc.p)
		b, err := RunPropagation(m3, sp, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if ok, why := a.Labels.EquivalentTo(b.Labels); !ok {
			t.Fatalf("n=%d p=%d: merge vs diffusion: %s", tc.n, tc.p, why)
		}
	}
}
