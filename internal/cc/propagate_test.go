package cc

import (
	"fmt"
	"testing"

	"parimg/internal/image"
	"parimg/internal/seq"
)

func checkPropagationExact(t *testing.T, im *image.Image, p int, opt Options) *Result {
	t.Helper()
	m := mustMachine(t, p)
	res, err := RunPropagation(m, im, opt)
	if err != nil {
		t.Fatalf("RunPropagation(n=%d p=%d): %v", im.N, p, err)
	}
	o := opt
	if err := o.normalize(); err != nil {
		t.Fatal(err)
	}
	want := seq.LabelBFS(im, o.Conn, o.Mode)
	for idx := range want.Lab {
		if res.Labels.Lab[idx] != want.Lab[idx] {
			t.Fatalf("n=%d p=%d: pixel %d: label %d, want %d",
				im.N, p, idx, res.Labels.Lab[idx], want.Lab[idx])
		}
	}
	return res
}

func TestPropagationPatterns(t *testing.T) {
	for _, id := range image.AllPatterns() {
		for _, p := range []int{4, 16, 32} {
			id, p := id, p
			t.Run(fmt.Sprintf("%v/p=%d", id, p), func(t *testing.T) {
				im := image.Generate(id, 64)
				checkPropagationExact(t, im, p, Options{Conn: image.Conn8})
				checkPropagationExact(t, im, p, Options{Conn: image.Conn4})
			})
		}
	}
}

func TestPropagationRandomAndGrey(t *testing.T) {
	im := image.RandomBinary(64, 0.593, 31)
	checkPropagationExact(t, im, 16, Options{})
	grey := image.RandomGrey(64, 8, 32)
	checkPropagationExact(t, grey, 16, Options{Mode: seq.Grey})
	checkPropagationExact(t, grey, 16, Options{Mode: seq.Grey, Conn: image.Conn4})
}

func TestPropagationDegenerateImages(t *testing.T) {
	bg := image.New(32)
	res := checkPropagationExact(t, bg, 16, Options{})
	if res.Components != 0 {
		t.Errorf("background image: %d components", res.Components)
	}
	fg := image.New(32)
	for i := range fg.Pix {
		fg.Pix[i] = 1
	}
	res = checkPropagationExact(t, fg, 16, Options{})
	if res.Components != 1 {
		t.Errorf("solid image: %d components", res.Components)
	}
}

// TestPropagationNeedsMoreIterationsOnSpiral demonstrates the baseline's
// weakness that motivates the paper's log p merging: on the dual spiral the
// diffusion iteration count grows with the component's tile diameter, while
// the paper's algorithm always uses exactly log p merge phases.
func TestPropagationNeedsMoreIterationsOnSpiral(t *testing.T) {
	spiral := image.Generate(image.DualSpiral, 128)
	squares := image.Generate(image.FourSquares, 128)
	p := 64

	mSpiral := mustMachine(t, p)
	rs, err := RunPropagation(mSpiral, spiral, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mSq := mustMachine(t, p)
	rq, err := RunPropagation(mSq, squares, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Phases <= rq.Phases {
		t.Errorf("spiral took %d iterations, four-squares %d; expected spiral to need more",
			rs.Phases, rq.Phases)
	}
	mMerge := mustMachine(t, p)
	rm, err := Run(mMerge, spiral, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rm.Phases != 6 { // log2(64)
		t.Errorf("merge algorithm used %d phases, want 6", rm.Phases)
	}
	if rs.Phases <= rm.Phases {
		t.Errorf("diffusion (%d iters) should exceed merge phases (%d) on the spiral",
			rs.Phases, rm.Phases)
	}
	// And the simulated time should favor the paper's algorithm.
	if rm.Report.SimTime >= rs.Report.SimTime {
		t.Errorf("merge sim time %.4g s not better than diffusion %.4g s",
			rm.Report.SimTime, rs.Report.SimTime)
	}
}

func TestPropagationInvalidOptions(t *testing.T) {
	m := mustMachine(t, 4)
	if _, err := RunPropagation(m, image.New(32), Options{Conn: image.Connectivity(3)}); err == nil {
		t.Error("want error for invalid connectivity")
	}
}
