// Package cc implements the paper's parallel connected components algorithm
// for binary (Section 5) and grey-scale (Section 6) images on the bdm
// runtime.
//
// The algorithm is divide and conquer with trivial splitting and worked
// merging:
//
//  1. Initialization (Section 5.1): each processor labels its q x r tile
//     with a sequential row-major BFS; the label of each tile component is
//     the globally unique (I*q+i)*n + (J*r+j) + 1 of its seed pixel, so no
//     communication is needed for uniqueness. Each processor then builds
//     its sorted array of tile hooks (Procedure 2), one per component
//     touching the tile border.
//
//  2. log p merge iterations (Sections 5.2-5.4), alternating horizontal
//     merges of vertical borders and vertical merges of horizontal
//     borders. In each iteration a subset of processors act as group
//     managers, assisted by shadow managers directly across the border:
//     they prefetch the border pixels and labels, sort each side by label
//     (hybrid radix sort), convert the merge into connected components of a
//     border graph (at most five edges per vertex), solve it with
//     sequential BFS, and produce the sorted array of unique label changes
//     (Procedure 1). Clients retrieve the change array — either directly
//     or with the transpose-based distribution of Section 5.4 — and update
//     only their tile-border pixel labels and their hooks, by binary
//     search. This "drastically limited updating" is the paper's novelty.
//
//  3. A total consistency update at the final step: every processor
//     compares each hook's current label with the hook component's
//     original label and, where they differ, floods the tile component
//     (BFS by color) with the final label.
//
// Complexities (Eq. (11)): Tcomm <= (4 log p) tau + O(n^2/p) and
// Tcomp = O(n^2/p) for p <= n — computationally optimal, with the latency
// factor (log p) tau intuitively necessary, one per merge operation.
package cc

import (
	"context"
	"fmt"
	"sync"

	"parimg/internal/bdm"
	"parimg/internal/errs"
	"parimg/internal/image"
	"parimg/internal/seq"
)

// Dist selects how a group manager distributes its change array to the
// clients.
type Dist int

const (
	// DistTranspose is the improved transpose-based distribution of
	// Section 5.4: the manager sends one c/f block to each of the f
	// group members, which then exchange blocks in a circular schedule;
	// Tcomm <= 2 tau + c - c/f per member (Eq. (9)).
	DistTranspose Dist = iota
	// DistDirect has every client prefetch the full change array from
	// the manager, serializing at the manager (the unimproved Eq. (8));
	// kept for the ablation benchmarks.
	DistDirect
)

func (d Dist) String() string {
	if d == DistDirect {
		return "direct"
	}
	return "transpose"
}

// Options configure a connected components run. The zero value is the
// paper's configuration: 8-connectivity, binary mode, shadow managers on,
// transpose-based change distribution, limited updating.
type Options struct {
	// Conn is the pixel adjacency; defaults to 8-connectivity.
	Conn image.Connectivity
	// Mode selects binary (any nonzero pixels connect) or grey
	// (like-colored pixels connect) components; defaults to Binary.
	Mode seq.Mode
	// ChangeDist selects the change-array distribution strategy.
	ChangeDist Dist
	// NoShadow disables the shadow manager: the group manager prefetches
	// and sorts both sides of the border itself (ablation).
	NoShadow bool
	// FullRelabel disables the paper's limited updating: every processor
	// relabels its entire tile after every merge step instead of only
	// border pixels and hooks (ablation for the paper's novelty claim).
	FullRelabel bool
}

func (o *Options) normalize() error {
	if o.Conn == 0 {
		o.Conn = image.Conn8
	}
	if !o.Conn.Valid() {
		return errs.Bad("cc", "invalid connectivity %d (want 4 or 8)", int(o.Conn))
	}
	if o.Mode != seq.Binary && o.Mode != seq.Grey {
		return errs.Bad("cc", "invalid mode %d", int(o.Mode))
	}
	return nil
}

// Breakdown is the simulated wall time of each stage of a run: the tile
// initialization (sequential labeling, edges, hooks), each merge
// iteration, and the final interior update. Because barriers equalize the
// clocks, these are machine-wide stage times; they sum to the report's
// SimTime.
type Breakdown struct {
	// Init is the initialization time (Section 5.1 + Procedure 2).
	Init float64
	// Merge holds one entry per merge iteration (Sections 5.2-5.4).
	Merge []float64
	// Final is the total consistency update at the last step.
	Final float64
}

// Result is the outcome of a parallel connected components run.
type Result struct {
	// Labels is the global labeling: positive labels on foreground,
	// 0 on background; equal labels iff same component. Labels are
	// canonical: each component is labeled with the global row-major
	// index of its first pixel plus one, identical to seq.LabelBFS.
	Labels *image.Labels
	// Components is the number of connected components found.
	Components int
	// Report is the simulated-cost report of the run.
	Report bdm.Report
	// Phases is the number of merge iterations performed (log p).
	Phases int
	// Stages is the per-stage simulated time breakdown.
	Stages Breakdown
}

// Abstract operation counts charged to the cost meters, stated per unit of
// the dominant loops. See package machine for how profiles are calibrated.
const (
	opsPerPixelBFS    = 30 // initialization: scan + BFS per tile pixel
	opsPerBorderPixel = 6  // hook collection / edge copy per border pixel
	opsPerSortItem    = 10 // hybrid radix sort per record (4 passes)
	opsPerGraphVertex = 25 // border-graph build + BFS per vertex (degree <= 5)
	opsPerChangePair  = 8  // change-array creation per pair
	opsPerPixelFlood  = 30 // final interior BFS relabel per flooded pixel
)

// searchOps is the charged cost of one binary search in a change array of c
// pairs: ~2 ops per probe plus loop overhead.
func searchOps(c int) int {
	bits := 1
	for 1<<bits <= c {
		bits++
	}
	return 2*bits + 2
}

// Engine runs the parallel algorithm repeatedly on one machine with reused
// scratch: the ~15 spread arrays and all per-processor buffers of a run are
// kept in a sync.Pool-backed arena keyed by image side (the processor count
// is fixed by the machine), so repeated runs of same-sized images do
// near-zero large allocations. An Engine is not safe for concurrent use,
// matching the underlying Machine.
type Engine struct {
	m     *bdm.Machine
	pools map[int]*sync.Pool // image side -> pool of *sharedState
}

// NewEngine returns an engine over machine m with an empty arena.
func NewEngine(m *bdm.Machine) *Engine {
	return &Engine{m: m, pools: make(map[int]*sync.Pool)}
}

// Run labels the connected components of im on the engine's machine. The
// image must tile evenly on m.P() processors (power of two). The image
// distribution happens outside the timed region; the returned report covers
// initialization, merging and the final update, as in the paper.
func (e *Engine) Run(im *image.Image, opt Options) (*Result, error) {
	return e.RunContext(context.Background(), im, opt)
}

// RunContext is Run with cooperative cancellation: when ctx is canceled or
// its deadline expires, every simulated processor unwinds at its next
// Sync/Barrier checkpoint — merge iterations are bracketed by barriers, so
// cancellation lands on a merge-round boundary — and the call returns an
// error wrapping errs.ErrCanceled or errs.ErrDeadline.
func (e *Engine) RunContext(ctx context.Context, im *image.Image, opt Options) (*Result, error) {
	if err := opt.normalize(); err != nil {
		return nil, err
	}
	// Image.Check enforces the structural invariants, including the
	// n <= MaxSide label-space bound: labels are 32-bit (initial label =
	// global index + 1), so the image must have fewer than 2^32 pixels.
	if err := im.Check(); err != nil {
		return nil, fmt.Errorf("cc: %w", err)
	}
	m := e.m
	lay, err := image.NewLayout(im.N, m.P())
	if err != nil {
		return nil, fmt.Errorf("cc: %w", err)
	}

	pool := e.pools[im.N]
	if pool == nil {
		pool = &sync.Pool{New: func() any { return newSharedState(m, lay) }}
		e.pools[im.N] = pool
	}
	st := pool.Get().(*sharedState)
	st.prepare(im, opt)

	m.Reset()
	report, err := m.RunContext(ctx, func(pr *bdm.Proc) {
		st.procMain(pr)
	})
	if err != nil {
		// The state is not returned to the pool: an aborted run leaves
		// its scratch (labels, hooks, change arrays) in an unknown
		// intermediate state, and the pool must only hold ready states.
		return nil, err
	}

	// Mirror the stage breakdown into the machine's metrics recorder as
	// modeled phases: merge iterations are children of one top-level
	// "merge" phase so top-level sums still equal SimTime.
	if r := m.Observer(); r != nil {
		r.AddModelPhase("init", "", st.stages.Init)
		var mergeTotal float64
		for _, t := range st.stages.Merge {
			mergeTotal += t
		}
		r.AddModelPhase("merge", "", mergeTotal)
		for i, t := range st.stages.Merge {
			r.AddModelPhase(fmt.Sprintf("merge[%d]", i), "merge", t)
		}
		r.AddModelPhase("final_update", "", st.stages.Final)
	}

	out := image.NewLabels(im.N)
	for rank := 0; rank < m.P(); rank++ {
		lay.GatherLabels(out, rank, st.tileLab.Row(rank))
	}
	res := &Result{
		Labels:     out,
		Components: out.Components(),
		Report:     report,
		Phases:     len(st.phases),
		Stages:     st.stages,
	}
	pool.Put(st)
	return res, nil
}

// Run labels the connected components of im on machine m with a one-shot
// Engine. Callers that label repeatedly should hold an Engine to reuse its
// scratch arena.
func Run(m *bdm.Machine, im *image.Image, opt Options) (*Result, error) {
	return NewEngine(m).Run(im, opt)
}
