package cc

import (
	"fmt"
	"testing"

	"parimg/internal/bdm"
	"parimg/internal/image"
	"parimg/internal/machine"
	"parimg/internal/seq"
)

func mustMachine(t testing.TB, p int) *bdm.Machine {
	t.Helper()
	m, err := bdm.NewMachine(p, machine.CM5)
	if err != nil {
		t.Fatalf("NewMachine(%d): %v", p, err)
	}
	return m
}

// checkExact verifies that the parallel labeling equals the sequential
// row-major BFS labeling exactly (min-representative merging keeps labels
// canonical), and cross-checks the partition against union-find.
func checkExact(t *testing.T, im *image.Image, p int, opt Options) {
	t.Helper()
	m := mustMachine(t, p)
	res, err := Run(m, im, opt)
	if err != nil {
		t.Fatalf("Run(n=%d p=%d %v %v): %v", im.N, p, opt.Conn, opt.Mode, err)
	}
	o := opt
	if err := o.normalize(); err != nil {
		t.Fatal(err)
	}
	want := seq.LabelBFS(im, o.Conn, o.Mode)
	for idx := range want.Lab {
		if res.Labels.Lab[idx] != want.Lab[idx] {
			t.Fatalf("n=%d p=%d %v %v: pixel (%d,%d): label %d, want %d",
				im.N, p, o.Conn, o.Mode, idx/im.N, idx%im.N,
				res.Labels.Lab[idx], want.Lab[idx])
		}
	}
	uf := seq.LabelUnionFind(im, o.Conn, o.Mode)
	if ok, why := res.Labels.EquivalentTo(uf); !ok {
		t.Fatalf("n=%d p=%d: union-find cross-check failed: %s", im.N, p, why)
	}
}

func TestBinaryPatternsAllP(t *testing.T) {
	for _, id := range image.AllPatterns() {
		for _, p := range []int{1, 2, 4, 8, 16, 32} {
			id, p := id, p
			t.Run(fmt.Sprintf("%v/p=%d", id, p), func(t *testing.T) {
				im := image.Generate(id, 64)
				checkExact(t, im, p, Options{Conn: image.Conn8, Mode: seq.Binary})
				checkExact(t, im, p, Options{Conn: image.Conn4, Mode: seq.Binary})
			})
		}
	}
}

func TestRandomBinaryImages(t *testing.T) {
	for _, density := range []float64{0.1, 0.4, 0.593, 0.8} {
		for _, p := range []int{4, 16, 64} {
			im := image.RandomBinary(64, density, uint64(1000*density)+uint64(p))
			checkExact(t, im, p, Options{Conn: image.Conn8, Mode: seq.Binary})
			checkExact(t, im, p, Options{Conn: image.Conn4, Mode: seq.Binary})
		}
	}
}

func TestGreyImages(t *testing.T) {
	for _, k := range []int{4, 16} {
		for _, p := range []int{4, 16} {
			im := image.RandomGrey(64, k, uint64(k+p))
			checkExact(t, im, p, Options{Conn: image.Conn8, Mode: seq.Grey})
			checkExact(t, im, p, Options{Conn: image.Conn4, Mode: seq.Grey})
		}
	}
}

func TestDARPAScene(t *testing.T) {
	im := image.DARPAScene(128, 256, 42)
	for _, p := range []int{4, 16} {
		checkExact(t, im, p, Options{Conn: image.Conn8, Mode: seq.Grey})
	}
}

func TestAllForegroundAndAllBackground(t *testing.T) {
	n := 32
	bg := image.New(n)
	checkExact(t, bg, 16, Options{})
	fg := image.New(n)
	for i := range fg.Pix {
		fg.Pix[i] = 1
	}
	checkExact(t, fg, 16, Options{})
}

func TestSinglePixelComponents(t *testing.T) {
	// A checkerboard: under 4-connectivity every foreground pixel is its
	// own component; under 8-connectivity they all join.
	n := 32
	im := image.New(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if (i+j)%2 == 0 {
				im.Set(i, j, 1)
			}
		}
	}
	checkExact(t, im, 16, Options{Conn: image.Conn4})
	checkExact(t, im, 16, Options{Conn: image.Conn8})

	m := mustMachine(t, 16)
	r4, err := Run(m, im, Options{Conn: image.Conn4})
	if err != nil {
		t.Fatal(err)
	}
	if want := n * n / 2; r4.Components != want {
		t.Errorf("checkerboard 4-conn: %d components, want %d", r4.Components, want)
	}
	r8, err := Run(m, im, Options{Conn: image.Conn8})
	if err != nil {
		t.Fatal(err)
	}
	if r8.Components != 1 {
		t.Errorf("checkerboard 8-conn: %d components, want 1", r8.Components)
	}
}

func TestNonSquareGrid(t *testing.T) {
	// p=8 and p=32 exercise the v != w grid (odd log p) and therefore
	// the unbalanced merge schedule.
	for _, p := range []int{2, 8, 32} {
		im := image.RandomBinary(64, 0.55, uint64(p))
		checkExact(t, im, p, Options{})
	}
}

func TestDistDirectMatches(t *testing.T) {
	im := image.RandomBinary(64, 0.5, 11)
	checkExact(t, im, 16, Options{ChangeDist: DistDirect})
}

func TestNoShadowMatches(t *testing.T) {
	im := image.RandomBinary(64, 0.5, 12)
	checkExact(t, im, 16, Options{NoShadow: true})
}

func TestFullRelabelMatches(t *testing.T) {
	im := image.RandomBinary(64, 0.5, 13)
	checkExact(t, im, 16, Options{FullRelabel: true})
}

func TestAllOptionCombinations(t *testing.T) {
	im := image.RandomBinary(32, 0.55, 99)
	for _, dist := range []Dist{DistTranspose, DistDirect} {
		for _, noShadow := range []bool{false, true} {
			for _, full := range []bool{false, true} {
				opt := Options{ChangeDist: dist, NoShadow: noShadow, FullRelabel: full}
				checkExact(t, im, 16, opt)
			}
		}
	}
}

func TestComponentsCountMatchesCensus(t *testing.T) {
	im := image.RandomBlobs(64, 12, 5)
	m := mustMachine(t, 16)
	res, err := Run(m, im, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := seq.LabelBFS(im, image.Conn8, seq.Binary).Components()
	if res.Components != want {
		t.Errorf("Components=%d, want %d", res.Components, want)
	}
}

func TestInvalidOptions(t *testing.T) {
	im := image.RandomBinary(32, 0.5, 1)
	m := mustMachine(t, 4)
	if _, err := Run(m, im, Options{Conn: image.Connectivity(5)}); err == nil {
		t.Error("invalid connectivity: want error")
	}
	if _, err := Run(m, im, Options{Mode: seq.Mode(7)}); err == nil {
		t.Error("invalid mode: want error")
	}
}

func TestTinyTiles(t *testing.T) {
	// 1 x 1 tiles: n = 8, p = 64 — every pixel is a border pixel and
	// every merge border is maximal.
	im := image.RandomBinary(8, 0.6, 3)
	checkExact(t, im, 64, Options{})
	// 1 x 2 tiles: n = 8, p = 32.
	checkExact(t, im, 32, Options{})
}
