package cc

import (
	"parimg/internal/bdm"
	"parimg/internal/graph"
	"parimg/internal/image"
	"parimg/internal/seq"
	"parimg/internal/sortutil"
)

// hook is the tile-hook data structure of Figure 5: one entry per tile
// component that touches the tile border.
type hook struct {
	orig uint32 // label from the tile initializer; interior pixels keep it
	cur  uint32 // current consistent label, updated each merge iteration
	off  int32  // tile offset of one pixel of the component
}

// procLocal is the per-processor private state (hooks, scratch buffers).
type procLocal struct {
	hooks   []hook
	queue   []int32
	visited seq.Visited

	// Manager/shadow scratch: positional colors and labels for the two
	// border sides, and the label-sorted pair views.
	sidePix [2][]uint32
	sideLab [2][]uint32
	pairs   [2][]sortutil.Pair
	skeys   []uint32 // sorted keys fetched from the shadow
	svals   []uint32 // sorted positions fetched from the shadow
	g       *graph.Graph
	vlab    []uint32
	changes []sortutil.Pair
}

// sharedState carries the spread arrays and immutable parameters shared by
// the SPMD body across all processors.
type sharedState struct {
	m      *bdm.Machine
	lay    image.Layout
	opt    Options
	phases []Phase

	tilePix *bdm.Spread[uint32]
	tileLab *bdm.Spread[uint32]

	// Tile edge copies: colors are static; labels are refreshed at the
	// start of every merge iteration.
	pixN, pixS *bdm.Spread[uint32] // length r rows
	pixE, pixW *bdm.Spread[uint32] // length q columns
	labN, labS *bdm.Spread[uint32]
	labE, labW *bdm.Spread[uint32]

	// Shadow manager publication area (sorted second border side).
	shCnt     *bdm.Spread[uint32]
	shSortLab *bdm.Spread[uint32]
	shSortPos *bdm.Spread[uint32]
	shPixPos  *bdm.Spread[uint32]

	// Change arrays: the manager publishes; every group member ends the
	// iteration with its own copy of the first chN pairs.
	chN *bdm.Spread[uint32]
	chA *bdm.Spread[uint32] // alphas (sorted ascending, unique)
	chB *bdm.Spread[uint32] // betas

	locals []procLocal

	// stages is the per-stage time breakdown, recorded by processor 0
	// (the barriers equalize the clocks, so its marks are machine-wide).
	stages Breakdown
}

func newSharedState(m *bdm.Machine, lay image.Layout) *sharedState {
	p := m.P()
	q, r := lay.Q, lay.R
	n := lay.N
	maxSide := n // a border side spans at most v*q = w*r = n pixels
	maxCh := 2*n + 1

	st := &sharedState{
		m:      m,
		lay:    lay,
		phases: Phases(lay.V, lay.W),

		tilePix: bdm.NewSpread[uint32](m, q*r),
		tileLab: bdm.NewSpread[uint32](m, q*r),

		pixN: bdm.NewSpread[uint32](m, r),
		pixS: bdm.NewSpread[uint32](m, r),
		pixE: bdm.NewSpread[uint32](m, q),
		pixW: bdm.NewSpread[uint32](m, q),
		labN: bdm.NewSpread[uint32](m, r),
		labS: bdm.NewSpread[uint32](m, r),
		labE: bdm.NewSpread[uint32](m, q),
		labW: bdm.NewSpread[uint32](m, q),

		shCnt:     bdm.NewSpread[uint32](m, 1),
		shSortLab: bdm.NewSpread[uint32](m, maxSide),
		shSortPos: bdm.NewSpread[uint32](m, maxSide),
		shPixPos:  bdm.NewSpread[uint32](m, maxSide),

		chN: bdm.NewSpread[uint32](m, 1),
		chA: bdm.NewSpread[uint32](m, maxCh),
		chB: bdm.NewSpread[uint32](m, maxCh),

		locals: make([]procLocal, p),
	}
	return st
}

// prepare loads a run's inputs into an allocated (possibly reused) shared
// state: the image is scattered into the tile spreads and the per-run
// options and stage marks are reset. Per-processor scratch keeps its grown
// capacity across runs.
func (st *sharedState) prepare(im *image.Image, opt Options) {
	st.opt = opt
	st.stages = Breakdown{}
	for rank := 0; rank < st.m.P(); rank++ {
		st.lay.Scatter(im, rank, st.tilePix.Row(rank))
	}
}

// procMain is the SPMD program: Sections 5.1-5.4 (and 6, via Options.Mode).
func (st *sharedState) procMain(pr *bdm.Proc) {
	rank := pr.Rank()
	loc := &st.locals[rank]
	q, r := st.lay.Q, st.lay.R

	// --- Initialization (Section 5.1): local sequential connected
	// components by row-major BFS with globally unique initial labels.
	pix := st.tilePix.Local(pr)
	lab := st.tileLab.Local(pr)
	for i := range lab {
		lab[i] = 0
	}
	_, queue := seq.TileLabeler(pix, q, r, st.opt.Conn, st.opt.Mode,
		func(i, j int) uint32 { return st.lay.InitialLabel(rank, i, j) },
		lab, loc.queue, nil)
	loc.queue = queue
	pr.Work(opsPerPixelBFS * q * r)

	// Static color edges, copied once.
	copy(st.pixN.Local(pr), pix[:r])
	copy(st.pixS.Local(pr), pix[(q-1)*r:])
	pe, pw := st.pixE.Local(pr), st.pixW.Local(pr)
	for i := 0; i < q; i++ {
		pw[i] = pix[i*r]
		pe[i] = pix[i*r+r-1]
	}
	pr.Work(opsPerBorderPixel * 2 * (q + r))

	// Tile hooks (Procedure 2), unless the full-relabel ablation is on
	// (it relabels whole tiles every iteration and needs no hooks).
	if !st.opt.FullRelabel {
		st.buildHooks(pr, loc, pix, lab)
	}
	pr.Barrier()
	mark := pr.Elapsed()
	if rank == 0 {
		st.stages.Init = mark
		st.stages.Merge = make([]float64, 0, len(st.phases))
	}

	// --- log p merge iterations (Sections 5.2-5.4).
	for _, ph := range st.phases {
		st.runPhase(pr, loc, ph)
		if rank == 0 {
			now := pr.Elapsed()
			st.stages.Merge = append(st.stages.Merge, now-mark)
			mark = now
		} else {
			mark = pr.Elapsed()
		}
	}

	// --- Final total consistency update (end of Section 5.3): flood
	// each tile component whose hook label changed.
	if !st.opt.FullRelabel {
		loc.visited.Reset(q * r)
		flooded := 0
		for i := range loc.hooks {
			h := &loc.hooks[i]
			if h.cur == h.orig {
				continue
			}
			loc.queue = seq.FloodRelabel(pix, lab, q, r, st.opt.Conn, st.opt.Mode,
				h.off, h.cur, &loc.visited, loc.queue)
			flooded += len(loc.queue)
		}
		pr.Work(opsPerPixelFlood*flooded + len(loc.hooks))
	}
	pr.Barrier()
	if rank == 0 {
		st.stages.Final = pr.Elapsed() - mark
	}
}

// forEachBorderOffset enumerates each tile-border pixel offset exactly once
// for a q x r tile, in row-major order of the border scan.
func forEachBorderOffset(q, r int, fn func(o int)) {
	for j := 0; j < r; j++ {
		fn(j)
	}
	for i := 1; i < q-1; i++ {
		fn(i * r)
		if r > 1 {
			fn(i*r + r - 1)
		}
	}
	if q > 1 {
		for j := 0; j < r; j++ {
			fn((q-1)*r + j)
		}
	}
}

// buildHooks creates the sorted array of tile hooks: one per component with
// a border pixel, holding that component's label and the offset of one of
// its pixels (Procedure 2).
func (st *sharedState) buildHooks(pr *bdm.Proc, loc *procLocal, pix, lab []uint32) {
	q, r := st.lay.Q, st.lay.R
	pairs := loc.pairs[0][:0]
	count := 0
	forEachBorderOffset(q, r, func(o int) {
		count++
		if pix[o] != 0 {
			pairs = append(pairs, sortutil.Pair{Key: lab[o], Value: uint32(o)})
		}
	})
	m := len(pairs)
	sortutil.SortPairs(pairs)
	pairs = sortutil.UniquePairs(pairs)
	loc.hooks = loc.hooks[:0]
	for _, pa := range pairs {
		loc.hooks = append(loc.hooks, hook{orig: pa.Key, cur: pa.Key, off: int32(pa.Value)})
	}
	loc.pairs[0] = pairs[:0]
	pr.Work(opsPerBorderPixel*count + opsPerSortItem*m + len(pairs))
}

// refreshLabelEdges copies the tile's current border labels into the edge
// spreads so managers of this iteration can prefetch them.
func (st *sharedState) refreshLabelEdges(pr *bdm.Proc, lab []uint32) {
	q, r := st.lay.Q, st.lay.R
	copy(st.labN.Local(pr), lab[:r])
	copy(st.labS.Local(pr), lab[(q-1)*r:])
	le, lw := st.labE.Local(pr), st.labW.Local(pr)
	for i := 0; i < q; i++ {
		lw[i] = lab[i*r]
		le[i] = lab[i*r+r-1]
	}
	pr.Work(2 * (q + r))
}

// runPhase executes one merge iteration. Every processor passes the same
// fixed sequence of barriers (B0..B3 plus the end-of-phase barrier),
// whatever its role, so the machine-wide barriers always match up.
func (st *sharedState) runPhase(pr *bdm.Proc, loc *procLocal, ph Phase) {
	rank := pr.Rank()
	grp := GroupOf(st.lay, ph, rank)
	lab := st.tileLab.Local(pr)

	// B0: publish current border labels.
	st.refreshLabelEdges(pr, lab)
	pr.Barrier()

	// Load + sort border sides.
	isMgr := rank == grp.Manager
	isShadow := !st.opt.NoShadow && rank == grp.Shadow
	if isMgr {
		st.loadSide(pr, loc, grp, 0)
		st.sortSide(pr, loc, 0, grp.Side)
		if st.opt.NoShadow {
			st.loadSide(pr, loc, grp, 1)
			st.sortSide(pr, loc, 1, grp.Side)
		}
	}
	if isShadow {
		st.loadSide(pr, loc, grp, 1)
		st.sortSide(pr, loc, 1, grp.Side)
		// Publish count, sorted (label, position) pairs, and the
		// positional colors for the manager to prefetch.
		st.shCnt.Local(pr)[0] = uint32(len(loc.pairs[1]))
		sl, sp := st.shSortLab.Local(pr), st.shSortPos.Local(pr)
		for i, pa := range loc.pairs[1] {
			sl[i] = pa.Key
			sp[i] = pa.Value
		}
		copy(st.shPixPos.Local(pr)[:grp.Side], loc.sidePix[1])
		pr.Work(2*len(loc.pairs[1]) + grp.Side)
	}
	pr.Barrier() // B1

	// Manager solves the merge and publishes the change array.
	if isMgr {
		if !st.opt.NoShadow {
			st.fetchShadowSide(pr, loc, grp)
		}
		changes := st.solveMerge(pr, loc, grp)
		st.chN.Local(pr)[0] = uint32(len(changes))
		a, b := st.chA.Local(pr), st.chB.Local(pr)
		for i, c := range changes {
			a[i] = c.Key
			b[i] = c.Value
		}
		pr.Work(2 * len(changes))
	}
	pr.Barrier() // B2

	// Distribute the change array to the group (Section 5.4).
	prevLabel := pr.SetCommLabel("change_dist")
	c := int(bdm.GetScalar(pr, st.chN, grp.Manager, 0))
	pr.Sync()
	switch st.opt.ChangeDist {
	case DistDirect:
		if c > 0 && rank != grp.Manager {
			bdm.Get(pr, st.chA.Local(pr)[:c], st.chA, grp.Manager, 0)
			bdm.Get(pr, st.chB.Local(pr)[:c], st.chB, grp.Manager, 0)
			pr.Sync()
		}
		pr.Barrier() // B3 (alignment only)
	case DistTranspose:
		gidx := grp.GroupIndex(st.lay, rank)
		bsz := (c + grp.F - 1) / grp.F
		if c > 0 && rank != grp.Manager {
			lo, hi := blockRange(gidx, bsz, c)
			if hi > lo {
				bdm.Get(pr, st.chA.Local(pr)[lo:hi], st.chA, grp.Manager, lo)
				bdm.Get(pr, st.chB.Local(pr)[lo:hi], st.chB, grp.Manager, lo)
				pr.Sync()
			}
		}
		pr.Barrier() // B3: everyone's own block is published
		if c > 0 && rank != grp.Manager {
			for loop := 1; loop < grp.F; loop++ {
				sidx := (gidx + loop) % grp.F
				src := grp.MemberAt(st.lay, sidx)
				lo, hi := blockRange(sidx, bsz, c)
				if hi > lo {
					bdm.Get(pr, st.chA.Local(pr)[lo:hi], st.chA, src, lo)
					bdm.Get(pr, st.chB.Local(pr)[lo:hi], st.chB, src, lo)
				}
			}
			pr.Sync()
		}
	}
	pr.SetCommLabel(prevLabel)

	// Apply the changes: the paper's limited updating touches only the
	// tile-border pixels and the hooks; the ablation relabels the whole
	// tile.
	if c > 0 {
		alphas := st.chA.Local(pr)[:c]
		betas := st.chB.Local(pr)[:c]
		cost := searchOps(c)
		if st.opt.FullRelabel {
			for i, l := range lab {
				if l == 0 {
					continue
				}
				if nb, ok := searchChange(alphas, betas, l); ok {
					lab[i] = nb
				}
			}
			pr.Work(len(lab) * cost)
		} else {
			q, r := st.lay.Q, st.lay.R
			touched := 0
			forEachBorderOffset(q, r, func(o int) {
				touched++
				l := lab[o]
				if l == 0 {
					return
				}
				if nb, ok := searchChange(alphas, betas, l); ok {
					lab[o] = nb
				}
			})
			for i := range loc.hooks {
				if nb, ok := searchChange(alphas, betas, loc.hooks[i].cur); ok {
					loc.hooks[i].cur = nb
				}
			}
			pr.Work((touched + len(loc.hooks)) * cost)
		}
	}
	pr.Barrier() // end of iteration
}

// blockRange returns block idx's half-open range of a c-element list split
// into blocks of bsz.
func blockRange(idx, bsz, c int) (lo, hi int) {
	lo = idx * bsz
	hi = lo + bsz
	if lo > c {
		lo = c
	}
	if hi > c {
		hi = c
	}
	return lo, hi
}

// searchChange binary-searches the sorted unique alphas for key and returns
// the corresponding beta.
func searchChange(alphas, betas []uint32, key uint32) (uint32, bool) {
	lo, hi := 0, len(alphas)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if alphas[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(alphas) && alphas[lo] == key {
		return betas[lo], true
	}
	return 0, false
}
