package cc

import (
	"fmt"

	"parimg/internal/bdm"
	"parimg/internal/errs"
	"parimg/internal/image"
)

// RunShiloachVishkin labels connected components with a PRAM-style
// pointer-jumping algorithm in the Shiloach-Vishkin/Awerbuch-Shiloach
// family, the approach behind Table 2's "Shiloach/Vishkin alg." row
// (Hummel 1986 on the NYU Ultracomputer).
//
// Pixels are the vertices, distributed in row strips; D[v] is the parent
// pointer, initialized to v. Iterations alternate
//
//  1. neighborhood hooking: D'[v] = min(D[v], D[u] over edges (u, v)), and
//  2. pointer jumping: D'[v] = D[D[v]],
//
// until a global fixed point, at which D is constant per component and
// equal to the component's minimum vertex id — so the final labeling is
// canonical, identical to Run and seq.LabelBFS.
//
// On a PRAM this family runs in O(log n) iterations of O(n^2) work. On a
// distributed-memory machine, however, the pointer-jumping step performs a
// *data-dependent remote read per vertex* (D[v] may point into any strip),
// so every iteration moves O(n^2/p) words per processor — the paper's
// motivation for avoiding PRAM ports in favor of its O(log p)-round merge
// with O(border) communication. The benchmark harness quantifies the gap
// (BenchmarkBaselineSV, `experiments svbaseline`).
//
// Only Conn and Mode of the options are honored. The machine's p must not
// exceed the image side n (row-strip distribution).
func RunShiloachVishkin(m *bdm.Machine, im *image.Image, opt Options) (*Result, error) {
	if err := opt.normalize(); err != nil {
		return nil, err
	}
	if err := im.Check(); err != nil {
		return nil, fmt.Errorf("cc: %w", err)
	}
	// Row strips need p | n for even distribution; reuse the layout
	// validation for the power-of-two requirement.
	if _, err := image.NewLayout(im.N, m.P()); err != nil {
		return nil, err
	}
	if m.P() > im.N || im.N%m.P() != 0 {
		return nil, errs.Geometry("cc.RunShiloachVishkin", im.N, m.P(),
			"Shiloach-Vishkin row strips require p to divide n, got p=%d n=%d", m.P(), im.N)
	}

	st := newSVState(m, im, opt)
	m.Reset()
	report, err := m.Run(st.procMain)
	if err != nil {
		return nil, err
	}

	out := image.NewLabels(im.N)
	for rank := 0; rank < m.P(); rank++ {
		copy(out.Lab[rank*st.perProc:(rank+1)*st.perProc], st.dcur.Row(rank))
	}
	return &Result{
		Labels:     out,
		Components: out.Components(),
		Report:     report,
		Phases:     st.iterations,
	}, nil
}

// svState carries the distributed parent array and per-processor adjacency.
type svState struct {
	n       int
	perProc int // vertices per processor (n^2/p)
	rows    int // strip height (n/p)
	opt     Options

	// dcur holds the current parent pointers (label values: vertex id +
	// 1 for foreground, 0 for background); dnext is the write buffer of
	// the current phase.
	dcur    *bdm.Spread[uint32]
	dnext   *bdm.Spread[uint32]
	changed *bdm.Spread[uint32]

	// Static adjacency, built at setup: for each local vertex,
	// nbrs[nbrStart[i]:nbrStart[i+1]] lists the global ids of its
	// connected neighbors.
	nbrStart [][]int32
	nbrs     [][]int32

	iterations int
}

func newSVState(m *bdm.Machine, im *image.Image, opt Options) *svState {
	p := m.P()
	n := im.N
	st := &svState{
		n:       n,
		perProc: n * n / p,
		rows:    n / p,
		opt:     opt,
		dcur:    bdm.NewSpread[uint32](m, n*n/p),
		dnext:   bdm.NewSpread[uint32](m, n*n/p),
		changed: bdm.NewSpread[uint32](m, 1),

		nbrStart: make([][]int32, p),
		nbrs:     make([][]int32, p),
	}
	offs := opt.Conn.Offsets()
	for rank := 0; rank < p; rank++ {
		start := make([]int32, st.perProc+1)
		var adj []int32
		r0 := rank * st.rows
		for i := 0; i < st.rows; i++ {
			for j := 0; j < n; j++ {
				gi := r0 + i
				v := gi*n + j
				local := i*n + j
				start[local] = int32(len(adj))
				if im.Pix[v] != 0 {
					for _, d := range offs {
						ni, nj := gi+d[0], j+d[1]
						if ni < 0 || ni >= n || nj < 0 || nj >= n {
							continue
						}
						u := ni*n + nj
						if opt.Mode.Connected(im.Pix[v], im.Pix[u]) {
							adj = append(adj, int32(u))
						}
					}
				}
			}
		}
		start[st.perProc] = int32(len(adj))
		st.nbrStart[rank] = start
		st.nbrs[rank] = adj

		// D[v] = v+1 for foreground (labels are vertex id + 1, so the
		// converged value is the canonical label), 0 for background.
		d := st.dcur.Row(rank)
		for local := 0; local < st.perProc; local++ {
			if im.Pix[r0*n+local] != 0 {
				d[local] = uint32(r0*n+local) + 1
			}
		}
	}
	return st
}

// svGet reads D[v] for a global vertex id, charging a remote word when v
// lives on another processor.
func (st *svState) svGet(pr *bdm.Proc, d *bdm.Spread[uint32], v int32) uint32 {
	owner := int(v) / st.perProc
	return bdm.GetScalar(pr, d, owner, int(v)%st.perProc)
}

func (st *svState) procMain(pr *bdm.Proc) {
	rank := pr.Rank()
	cur := st.dcur.Local(pr)
	next := st.dnext.Local(pr)
	start := st.nbrStart[rank]
	adj := st.nbrs[rank]

	pr.Work(opsPerPixelBFS * st.perProc / 3) // adjacency scan amortization
	pr.Barrier()

	iter := 0
	for {
		iter++
		// Phase 1: neighborhood hooking (read everyone's cur, write
		// own next).
		changed := false
		for v := 0; v < st.perProc; v++ {
			dv := cur[v]
			if dv == 0 {
				next[v] = 0
				continue
			}
			for _, u := range adj[start[v]:start[v+1]] {
				if du := st.svGet(pr, st.dcur, u); du != 0 && du < dv {
					dv = du
				}
			}
			if dv != cur[v] {
				changed = true
			}
			next[v] = dv
		}
		pr.Sync()
		pr.Work(2*len(adj) + 2*st.perProc)
		pr.Barrier()
		copy(cur, next)
		pr.Work(st.perProc)
		pr.Barrier()

		// Phase 2: pointer jumping, D[v] = D[D[v]] (a data-dependent,
		// possibly remote read per foreground vertex).
		for v := 0; v < st.perProc; v++ {
			dv := cur[v]
			if dv == 0 {
				next[v] = 0
				continue
			}
			dd := st.svGet(pr, st.dcur, int32(dv-1))
			if dd != 0 && dd != dv {
				changed = true
				next[v] = dd
			} else {
				next[v] = dv
			}
		}
		pr.Sync()
		pr.Work(4 * st.perProc)
		pr.Barrier()
		copy(cur, next)
		pr.Work(st.perProc)

		// Global convergence check.
		if changed {
			st.changed.Local(pr)[0] = 1
		} else {
			st.changed.Local(pr)[0] = 0
		}
		pr.Barrier()
		any := false
		for rnk := 0; rnk < pr.P(); rnk++ {
			if bdm.GetScalar(pr, st.changed, rnk, 0) != 0 {
				any = true
			}
		}
		pr.Sync()
		pr.Work(pr.P())
		pr.Barrier()
		if !any {
			break
		}
	}
	if rank == 0 {
		st.iterations = iter
	}
}
