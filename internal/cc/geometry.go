package cc

import (
	"fmt"

	"parimg/internal/image"
)

// Orientation of one merge phase.
type Orientation int

const (
	// Horizontal merges combine two subgrids side by side along a
	// vertical border (the paper's odd phases).
	Horizontal Orientation = iota
	// Vertical merges combine two subgrids stacked along a horizontal
	// border (the paper's even phases).
	Vertical
)

func (o Orientation) String() string {
	if o == Horizontal {
		return "horizontal"
	}
	return "vertical"
}

// Phase describes the group structure of merge iteration t (1-based).
// After the phase, merged subgrids measure GroupH x GroupW processors.
type Phase struct {
	T      int
	Orient Orientation
	// GroupH, GroupW are the processor-grid dimensions of each merged
	// group at the END of this phase.
	GroupH, GroupW int
}

// Phases returns the paper's merge schedule for a v x w logical processor
// grid: log p = log v + log w iterations, alternating between horizontal
// merges of vertical borders and vertical merges of horizontal borders,
// starting horizontally, with the wider dimension absorbing the surplus
// iterations once the shorter one is exhausted (Section 5.2).
func Phases(v, w int) []Phase {
	logv := log2(v)
	logw := log2(w)
	out := make([]Phase, 0, logv+logw)
	hDone, vDone := 0, 0
	for t := 1; t <= logv+logw; t++ {
		horizontal := false
		switch {
		case hDone == logw:
			horizontal = false
		case vDone == logv:
			horizontal = true
		default:
			horizontal = t%2 == 1
		}
		if horizontal {
			hDone++
			out = append(out, Phase{T: t, Orient: Horizontal, GroupH: 1 << vDone, GroupW: 1 << hDone})
		} else {
			vDone++
			out = append(out, Phase{T: t, Orient: Vertical, GroupH: 1 << vDone, GroupW: 1 << hDone})
		}
	}
	return out
}

func log2(x int) int {
	d := 0
	for 1<<d < x {
		d++
	}
	if 1<<d != x {
		// Invariant panic: processor-grid dimensions come from
		// image.NewLayout, which only produces power-of-two factors.
		panic(fmt.Sprintf("cc: %d is not a power of two", x))
	}
	return d
}

// Group is the merge group a processor belongs to in one phase, together
// with the distinguished roles.
//
// The group manager is the processor adjacent to the border being merged at
// the border's low end on the first side; the shadow manager sits directly
// across the border (Section 5.3). The manager's logical-grid coordinates
// therefore end in a 0 followed by ones in the merge direction and in
// zeroes in the other direction, which is the intent of the paper's
// bit-pattern description. (The extended abstract's literal patterns select
// no manager in half the groups of later phases; see DESIGN.md.)
type Group struct {
	Phase Phase
	// R0, C0 are the logical-grid coordinates of the group's top-left
	// processor; the group spans GroupH x GroupW processors.
	R0, C0 int
	// Manager and Shadow are processor ranks.
	Manager, Shadow int
	// Side is the number of pixels on each side of the merged border:
	// GroupH*q for a horizontal merge, GroupW*r for a vertical merge.
	Side int
	// F is the group size in processors (GroupH*GroupW).
	F int
}

// GroupOf computes the merge group of processor rank in the given phase.
func GroupOf(lay image.Layout, ph Phase, rank int) Group {
	gi, gj := lay.GridPos(rank)
	r0 := gi &^ (ph.GroupH - 1)
	c0 := gj &^ (ph.GroupW - 1)
	g := Group{Phase: ph, R0: r0, C0: c0, F: ph.GroupH * ph.GroupW}
	if ph.Orient == Horizontal {
		cb := c0 + ph.GroupW/2 // first grid column right of the border
		g.Manager = lay.Rank(r0, cb-1)
		g.Shadow = lay.Rank(r0, cb)
		g.Side = ph.GroupH * lay.Q
	} else {
		rb := r0 + ph.GroupH/2 // first grid row below the border
		g.Manager = lay.Rank(rb-1, c0)
		g.Shadow = lay.Rank(rb, c0)
		g.Side = ph.GroupW * lay.R
	}
	return g
}

// GroupIndex returns rank's row-major index within its group, used by the
// transpose-based change distribution.
func (g Group) GroupIndex(lay image.Layout, rank int) int {
	gi, gj := lay.GridPos(rank)
	return (gi-g.R0)*g.Phase.GroupW + (gj - g.C0)
}

// MemberAt returns the rank of the group member with the given row-major
// group index.
func (g Group) MemberAt(lay image.Layout, idx int) int {
	return lay.Rank(g.R0+idx/g.Phase.GroupW, g.C0+idx%g.Phase.GroupW)
}

// borderSources returns, for the manager side (left/up when first is true)
// or the shadow side, the ranks owning successive stretches of the merged
// border, in border order, together with which tile edge to read.
func (g Group) borderSources(lay image.Layout, first bool) []int {
	ph := g.Phase
	var ranks []int
	if ph.Orient == Horizontal {
		col := g.C0 + ph.GroupW/2 - 1
		if !first {
			col = g.C0 + ph.GroupW/2
		}
		for r := g.R0; r < g.R0+ph.GroupH; r++ {
			ranks = append(ranks, lay.Rank(r, col))
		}
	} else {
		row := g.R0 + ph.GroupH/2 - 1
		if !first {
			row = g.R0 + ph.GroupH/2
		}
		for c := g.C0; c < g.C0+ph.GroupW; c++ {
			ranks = append(ranks, lay.Rank(row, c))
		}
	}
	return ranks
}
