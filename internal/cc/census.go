package cc

import (
	"fmt"
	"sort"

	"parimg/internal/bdm"
	"parimg/internal/errs"
	"parimg/internal/image"
)

// CensusResult is the outcome of a parallel component census.
type CensusResult struct {
	// Stats holds one entry per component, sorted by decreasing size
	// (ties by increasing label) — identical to Labels.Census.
	Stats []image.ComponentStat
	// Report carries the modeled execution costs.
	Report bdm.Report
}

// censusRec is the mergeable per-tile partial statistic of one component.
// Centroid sums are kept as integer accumulators so merging is exact.
type censusRec struct {
	label                          uint32
	size                           int64
	minRow, minCol, maxRow, maxCol int32
	sumRow, sumCol                 int64
	grey                           uint32
}

func (r *censusRec) merge(o censusRec) {
	r.size += o.size
	if o.minRow < r.minRow {
		r.minRow = o.minRow
	}
	if o.minCol < r.minCol {
		r.minCol = o.minCol
	}
	if o.maxRow > r.maxRow {
		r.maxRow = o.maxRow
	}
	if o.maxCol > r.maxCol {
		r.maxCol = o.maxCol
	}
	r.sumRow += o.sumRow
	r.sumCol += o.sumCol
	// The representative grey is the minimum over the component, which
	// is order-independent and therefore mergeable.
	if o.grey < r.grey {
		r.grey = o.grey
	}
}

// censusRecWords is the number of 32-bit words a censusRec occupies on the
// wire (label, size, 4 bbox fields, 2x2 centroid words, grey ~ 10 words).
const censusRecWords = 10

// Census computes the per-component statistics of a labeling in parallel
// (the measurement step of the recognition task the paper cites): every
// processor scans its q x r tile of the labeled image, building partial
// records for the components present there; processor 0 then prefetches
// all partial record lists and merges them by label. Component statistics
// (size, bounding box, centroid sums, representative grey) are all
// mergeable, so the result is exactly Labels.Census run on the host.
//
// Complexities: Tcomp = O(n^2/p + C log C) where C is the total number of
// (tile, component) partials, and Tcomm <= tau + O(C) words to processor 0.
func Census(m *bdm.Machine, im *image.Image, labels *image.Labels) (*CensusResult, error) {
	if err := im.Check(); err != nil {
		return nil, fmt.Errorf("cc: %w", err)
	}
	if err := labels.Check(); err != nil {
		return nil, fmt.Errorf("cc: %w", err)
	}
	if im.N != labels.N {
		return nil, errs.Geometry("cc.Census", im.N, m.P(),
			"census size mismatch: image %d, labels %d", im.N, labels.N)
	}
	lay, err := image.NewLayout(im.N, m.P())
	if err != nil {
		return nil, fmt.Errorf("cc: %w", err)
	}

	p := m.P()
	tilePix := bdm.NewSpread[uint32](m, lay.Q*lay.R)
	tileLab := bdm.NewSpread[uint32](m, lay.Q*lay.R)
	for rank := 0; rank < p; rank++ {
		lay.Scatter(im, rank, tilePix.Row(rank))
		scatterLabels(lay, labels, rank, tileLab.Row(rank))
	}

	partials := make([][]censusRec, p) // written by each proc, read by P0
	counts := bdm.NewSpread[uint32](m, 1)
	var merged []censusRec

	m.Reset()
	report, err := m.Run(func(pr *bdm.Proc) {
		rank := pr.Rank()
		q, r := lay.Q, lay.R
		pix := tilePix.Local(pr)
		lab := tileLab.Local(pr)
		r0, c0 := lay.TileOrigin(rank)

		idx := make(map[uint32]int)
		var recs []censusRec
		for i := 0; i < q; i++ {
			for j := 0; j < r; j++ {
				l := lab[i*r+j]
				if l == 0 {
					continue
				}
				k, ok := idx[l]
				if !ok {
					k = len(recs)
					idx[l] = k
					recs = append(recs, censusRec{
						label:  l,
						minRow: int32(r0 + i), minCol: int32(c0 + j),
						maxRow: int32(r0 + i), maxCol: int32(c0 + j),
						grey: pix[i*r+j],
					})
				}
				rec := &recs[k]
				rec.size++
				gi, gj := int32(r0+i), int32(c0+j)
				if gi > rec.maxRow {
					rec.maxRow = gi
				}
				if gj < rec.minCol {
					rec.minCol = gj
				}
				if gj > rec.maxCol {
					rec.maxCol = gj
				}
				rec.sumRow += int64(gi)
				rec.sumCol += int64(gj)
				if pix[i*r+j] < rec.grey {
					rec.grey = pix[i*r+j]
				}
			}
		}
		partials[rank] = recs
		counts.Local(pr)[0] = uint32(len(recs))
		pr.Work(4 * q * r)
		pr.Barrier()

		// Processor 0 prefetches every partial list and merges by
		// label. The records live in host memory; the transfer is
		// charged explicitly at censusRecWords per record.
		if rank == 0 {
			total := make(map[uint32]int)
			var out []censusRec
			for src := 0; src < p; src++ {
				cnt := int(bdm.GetScalar(pr, counts, src, 0))
				if src != 0 {
					// Charge the record payload transfer.
					pr.ChargeTransfer(src, cnt*censusRecWords)
				}
				for _, rec := range partials[src][:cnt] {
					if k, ok := total[rec.label]; ok {
						out[k].merge(rec)
					} else {
						total[rec.label] = len(out)
						out = append(out, rec)
					}
				}
			}
			pr.Sync()
			pr.Work(censusRecWords * len(out))
			sort.Slice(out, func(a, b int) bool {
				if out[a].size != out[b].size {
					return out[a].size > out[b].size
				}
				return out[a].label < out[b].label
			})
			pr.Work(opsPerSortItem * len(out))
			merged = out
		}
		pr.Barrier()
	})
	if err != nil {
		return nil, err
	}

	stats := make([]image.ComponentStat, len(merged))
	for i, rec := range merged {
		stats[i] = image.ComponentStat{
			Label:  rec.label,
			Size:   int(rec.size),
			MinRow: int(rec.minRow), MinCol: int(rec.minCol),
			MaxRow: int(rec.maxRow), MaxCol: int(rec.maxCol),
			CentroidRow: float64(rec.sumRow) / float64(rec.size),
			CentroidCol: float64(rec.sumCol) / float64(rec.size),
			Grey:        rec.grey,
		}
	}
	return &CensusResult{Stats: stats, Report: report}, nil
}

// scatterLabels copies rank's tile of a labeling into dst, row-major.
func scatterLabels(lay image.Layout, l *image.Labels, rank int, dst []uint32) {
	r0, c0 := lay.TileOrigin(rank)
	for i := 0; i < lay.Q; i++ {
		copy(dst[i*lay.R:(i+1)*lay.R], l.Lab[(r0+i)*l.N+c0:(r0+i)*l.N+c0+lay.R])
	}
}
