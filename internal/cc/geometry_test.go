package cc

import (
	"fmt"
	"testing"

	"parimg/internal/image"
)

func TestPhasesSquareGrid(t *testing.T) {
	// 4x4 grid (p=16): h,v,h,v.
	ph := Phases(4, 4)
	if len(ph) != 4 {
		t.Fatalf("p=16: %d phases, want 4", len(ph))
	}
	wantOrient := []Orientation{Horizontal, Vertical, Horizontal, Vertical}
	wantH := []int{1, 2, 2, 4}
	wantW := []int{2, 2, 4, 4}
	for i, p := range ph {
		if p.T != i+1 {
			t.Errorf("phase %d: T=%d", i, p.T)
		}
		if p.Orient != wantOrient[i] {
			t.Errorf("phase %d: orient %v, want %v", i, p.Orient, wantOrient[i])
		}
		if p.GroupH != wantH[i] || p.GroupW != wantW[i] {
			t.Errorf("phase %d: group %dx%d, want %dx%d", i, p.GroupH, p.GroupW, wantH[i], wantW[i])
		}
	}
}

func TestPhasesRectGrid(t *testing.T) {
	// 4x8 grid (p=32, the Figure 4 layout): h,v,h,v,h.
	ph := Phases(4, 8)
	if len(ph) != 5 {
		t.Fatalf("p=32: %d phases, want 5", len(ph))
	}
	want := []Orientation{Horizontal, Vertical, Horizontal, Vertical, Horizontal}
	for i, p := range ph {
		if p.Orient != want[i] {
			t.Errorf("phase %d: %v, want %v", i, p.Orient, want[i])
		}
	}
	last := ph[4]
	if last.GroupH != 4 || last.GroupW != 8 {
		t.Errorf("final group %dx%d, want 4x8", last.GroupH, last.GroupW)
	}
}

func TestPhasesDegenerateGrids(t *testing.T) {
	if got := Phases(1, 1); len(got) != 0 {
		t.Errorf("1x1 grid: %d phases, want 0", len(got))
	}
	ph := Phases(1, 2)
	if len(ph) != 1 || ph[0].Orient != Horizontal {
		t.Errorf("1x2 grid: %+v", ph)
	}
	// 1xW grids are all horizontal merges.
	for _, p := range Phases(1, 8) {
		if p.Orient != Horizontal {
			t.Errorf("1x8 grid: phase %d is %v", p.T, p.Orient)
		}
	}
}

func TestPhasesGroupsDouble(t *testing.T) {
	for _, pp := range []int{2, 4, 8, 16, 32, 64, 128} {
		v, w, err := image.GridShape(pp)
		if err != nil {
			t.Fatal(err)
		}
		ph := Phases(v, w)
		area := 1
		for i, p := range ph {
			got := p.GroupH * p.GroupW
			if got != area*2 {
				t.Errorf("p=%d phase %d: group area %d, want %d", pp, i, got, area*2)
			}
			area = got
		}
		if area != pp {
			t.Errorf("p=%d: final group area %d", pp, area)
		}
	}
}

func TestGroupOfFigure4Example(t *testing.T) {
	// The paper's Figure 4: a 512x512 image on 32 processors (4x8 grid,
	// 128x64 tiles), merge phase t=2 (vertical). Group managers sit at
	// even row, even column positions of the logical grid, with the
	// shadow directly below (across the border).
	lay, err := image.NewLayout(512, 32)
	if err != nil {
		t.Fatal(err)
	}
	ph := Phases(lay.V, lay.W)[1] // t=2
	if ph.Orient != Vertical {
		t.Fatalf("t=2 should be vertical, got %v", ph.Orient)
	}
	for rank := 0; rank < 32; rank++ {
		grp := GroupOf(lay, ph, rank)
		mi, mj := lay.GridPos(grp.Manager)
		if mi%2 != 0 || mj%2 != 0 {
			t.Errorf("rank %d: manager at (%d,%d), want even/even", rank, mi, mj)
		}
		si, sj := lay.GridPos(grp.Shadow)
		if si != mi+1 || sj != mj {
			t.Errorf("rank %d: shadow at (%d,%d), want directly below manager (%d,%d)",
				rank, si, sj, mi, mj)
		}
		if grp.Side != 2*lay.R { // GroupW=2 tiles wide, r=64 each
			t.Errorf("rank %d: side %d, want %d", rank, grp.Side, 2*lay.R)
		}
		if grp.F != 4 {
			t.Errorf("rank %d: group size %d, want 4", rank, grp.F)
		}
	}
}

func TestGroupPartitionsProcessors(t *testing.T) {
	// In every phase, the groups partition the processor set, all
	// members of a group agree on the group, and manager and shadow are
	// distinct members of it.
	for _, pp := range []int{4, 16, 32, 64} {
		lay, err := image.NewLayout(256, pp)
		if err != nil {
			t.Fatal(err)
		}
		for _, ph := range Phases(lay.V, lay.W) {
			seen := map[string][]int{}
			for rank := 0; rank < pp; rank++ {
				grp := GroupOf(lay, ph, rank)
				key := fmt.Sprintf("%d,%d", grp.R0, grp.C0)
				seen[key] = append(seen[key], rank)
				ref := GroupOf(lay, ph, grp.Manager)
				if ref != grp {
					t.Fatalf("p=%d t=%d rank=%d: manager disagrees about the group", pp, ph.T, rank)
				}
				if grp.Manager == grp.Shadow {
					t.Fatalf("p=%d t=%d: manager == shadow", pp, ph.T)
				}
				if grp.GroupIndex(lay, rank) < 0 || grp.GroupIndex(lay, rank) >= grp.F {
					t.Fatalf("p=%d t=%d rank=%d: group index out of range", pp, ph.T, rank)
				}
				if grp.MemberAt(lay, grp.GroupIndex(lay, rank)) != rank {
					t.Fatalf("p=%d t=%d rank=%d: MemberAt/GroupIndex not inverse", pp, ph.T, rank)
				}
			}
			for key, members := range seen {
				if len(members) != ph.GroupH*ph.GroupW {
					t.Errorf("p=%d t=%d group %s has %d members, want %d",
						pp, ph.T, key, len(members), ph.GroupH*ph.GroupW)
				}
			}
		}
	}
}

func TestBorderSourcesAdjacent(t *testing.T) {
	// The two sides of each group's border must be owned by grid-
	// adjacent processors, pairwise across the border, and belong to
	// the group.
	lay, err := image.NewLayout(256, 32)
	if err != nil {
		t.Fatal(err)
	}
	for _, ph := range Phases(lay.V, lay.W) {
		done := map[int]bool{}
		for rank := 0; rank < 32; rank++ {
			grp := GroupOf(lay, ph, rank)
			if done[grp.Manager] {
				continue
			}
			done[grp.Manager] = true
			left := grp.borderSources(lay, true)
			right := grp.borderSources(lay, false)
			if len(left) != len(right) {
				t.Fatalf("t=%d: side counts differ", ph.T)
			}
			for i := range left {
				li, lj := lay.GridPos(left[i])
				ri, rj := lay.GridPos(right[i])
				if ph.Orient == Horizontal {
					if ri != li || rj != lj+1 {
						t.Errorf("t=%d: horizontal border pair (%d,%d)-(%d,%d) not adjacent",
							ph.T, li, lj, ri, rj)
					}
				} else {
					if rj != lj || ri != li+1 {
						t.Errorf("t=%d: vertical border pair (%d,%d)-(%d,%d) not adjacent",
							ph.T, li, lj, ri, rj)
					}
				}
				for _, r := range []int{left[i], right[i]} {
					g2 := GroupOf(lay, ph, r)
					if g2.Manager != grp.Manager {
						t.Errorf("t=%d: border source %d not in group", ph.T, r)
					}
				}
			}
			if left[0] != grp.Manager {
				t.Errorf("t=%d: manager %d is not the first left source %d", ph.T, grp.Manager, left[0])
			}
			if right[0] != grp.Shadow {
				t.Errorf("t=%d: shadow %d is not the first right source %d", ph.T, grp.Shadow, right[0])
			}
		}
	}
}

func TestForEachBorderOffset(t *testing.T) {
	cases := []struct {
		q, r, want int
	}{
		{1, 1, 1}, {1, 5, 5}, {5, 1, 5}, {2, 2, 4}, {3, 3, 8}, {4, 6, 16},
	}
	for _, c := range cases {
		seen := map[int]int{}
		count := 0
		forEachBorderOffset(c.q, c.r, func(o int) {
			seen[o]++
			count++
		})
		if count != c.want {
			t.Errorf("q=%d r=%d: %d border offsets, want %d", c.q, c.r, count, c.want)
		}
		for o, k := range seen {
			if k != 1 {
				t.Errorf("q=%d r=%d: offset %d visited %d times", c.q, c.r, o, k)
			}
			i, j := o/c.r, o%c.r
			if i != 0 && i != c.q-1 && j != 0 && j != c.r-1 {
				t.Errorf("q=%d r=%d: offset %d (%d,%d) is interior", c.q, c.r, o, i, j)
			}
		}
	}
}

func TestBlockRange(t *testing.T) {
	cases := []struct {
		idx, bsz, c, lo, hi int
	}{
		{0, 3, 10, 0, 3},
		{3, 3, 10, 9, 10},
		{4, 3, 10, 10, 10}, // past the end: empty
		{0, 1, 0, 0, 0},
		{2, 5, 7, 7, 7},
	}
	for _, c := range cases {
		lo, hi := blockRange(c.idx, c.bsz, c.c)
		if lo != c.lo || hi != c.hi {
			t.Errorf("blockRange(%d,%d,%d) = (%d,%d), want (%d,%d)",
				c.idx, c.bsz, c.c, lo, hi, c.lo, c.hi)
		}
	}
}

func TestSearchChange(t *testing.T) {
	alphas := []uint32{3, 7, 20}
	betas := []uint32{1, 2, 5}
	for _, tc := range []struct {
		key  uint32
		want uint32
		ok   bool
	}{
		{3, 1, true}, {7, 2, true}, {20, 5, true},
		{1, 0, false}, {5, 0, false}, {21, 0, false},
	} {
		got, ok := searchChange(alphas, betas, tc.key)
		if got != tc.want || ok != tc.ok {
			t.Errorf("searchChange(%d) = (%d,%v), want (%d,%v)", tc.key, got, ok, tc.want, tc.ok)
		}
	}
	if _, ok := searchChange(nil, nil, 5); ok {
		t.Error("empty change list should miss")
	}
}

func TestSearchOpsMonotone(t *testing.T) {
	prev := 0
	for _, c := range []int{0, 1, 2, 10, 100, 10000} {
		got := searchOps(c)
		if got < prev {
			t.Errorf("searchOps(%d) = %d decreased", c, got)
		}
		prev = got
	}
}

func TestLog2PanicsOnNonPower(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic for non-power of two")
		}
	}()
	log2(12)
}

func TestOrientationAndDistStrings(t *testing.T) {
	if Horizontal.String() != "horizontal" || Vertical.String() != "vertical" {
		t.Error("orientation strings")
	}
	if DistTranspose.String() != "transpose" || DistDirect.String() != "direct" {
		t.Error("dist strings")
	}
}
