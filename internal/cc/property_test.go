package cc

import (
	"testing"
	"testing/quick"

	"parimg/internal/bdm"
	"parimg/internal/image"
	"parimg/internal/machine"
	"parimg/internal/seq"
)

// TestQuickParallelEqualsSequential is the main property test: for random
// images, processor counts, connectivities and modes, the parallel labeling
// must equal the sequential one bit for bit.
func TestQuickParallelEqualsSequential(t *testing.T) {
	f := func(seed uint64, pSel, connSel, modeSel, densitySel uint8) bool {
		ps := []int{2, 4, 8, 16, 32, 64}
		p := ps[int(pSel)%len(ps)]
		n := 32
		conn := image.Conn8
		if connSel%2 == 0 {
			conn = image.Conn4
		}
		mode := seq.Binary
		var im *image.Image
		density := []float64{0.2, 0.45, 0.593, 0.75}[int(densitySel)%4]
		if modeSel%2 == 0 {
			mode = seq.Grey
			im = image.RandomGrey(n, 4, seed)
		} else {
			im = image.RandomBinary(n, density, seed)
		}
		m, err := bdm.NewMachine(p, machine.CM5)
		if err != nil {
			return false
		}
		res, err := Run(m, im, Options{Conn: conn, Mode: mode})
		if err != nil {
			t.Logf("Run failed: %v", err)
			return false
		}
		want := seq.LabelBFS(im, conn, mode)
		for i := range want.Lab {
			if res.Labels.Lab[i] != want.Lab[i] {
				t.Logf("seed=%d p=%d conn=%v mode=%v: mismatch at %d", seed, p, conn, mode, i)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickPropagationEqualsMerge cross-checks the two parallel algorithms
// against each other on random inputs.
func TestQuickPropagationEqualsMerge(t *testing.T) {
	f := func(seed uint64, pSel uint8) bool {
		ps := []int{4, 16, 32}
		p := ps[int(pSel)%len(ps)]
		im := image.RandomBinary(32, 0.55, seed)
		m1, err := bdm.NewMachine(p, machine.SP2)
		if err != nil {
			return false
		}
		a, err := Run(m1, im, Options{})
		if err != nil {
			return false
		}
		m2, err := bdm.NewMachine(p, machine.SP2)
		if err != nil {
			return false
		}
		b, err := RunPropagation(m2, im, Options{})
		if err != nil {
			return false
		}
		for i := range a.Labels.Lab {
			if a.Labels.Lab[i] != b.Labels.Lab[i] {
				return false
			}
		}
		return a.Components == b.Components
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestQuickLabelsAreCanonical checks the canonical-label invariant on the
// parallel output directly: every component's label is exactly the minimum
// global row-major index among its pixels, plus one.
func TestQuickLabelsAreCanonical(t *testing.T) {
	f := func(seed uint64) bool {
		im := image.RandomBinary(32, 0.6, seed)
		m, err := bdm.NewMachine(16, machine.CM5)
		if err != nil {
			return false
		}
		res, err := Run(m, im, Options{})
		if err != nil {
			return false
		}
		min := map[uint32]int{}
		for idx, l := range res.Labels.Lab {
			if l == 0 {
				continue
			}
			if _, ok := min[l]; !ok {
				min[l] = idx // first occurrence in row-major order
			}
		}
		for l, idx := range min {
			if int(l) != idx+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestDeterministicSimTime verifies that repeated runs produce identical
// simulated costs (the clock must not depend on goroutine scheduling).
func TestDeterministicSimTime(t *testing.T) {
	im := image.Generate(image.DualSpiral, 64)
	var times []float64
	for trial := 0; trial < 4; trial++ {
		m := mustMachine(t, 16)
		res, err := Run(m, im, Options{})
		if err != nil {
			t.Fatal(err)
		}
		times = append(times, res.Report.SimTime)
	}
	for i := 1; i < len(times); i++ {
		if times[i] != times[0] {
			t.Fatalf("nondeterministic simulated time: %v", times)
		}
	}
}

// TestCCScalesWithP checks the Figure 3 claim on the simulated clock: for
// a large enough image, doubling p keeps improving the runtime.
func TestCCScalesWithP(t *testing.T) {
	im := image.Generate(image.ConcentricCircles, 256)
	var prev float64
	for idx, p := range []int{4, 16, 64} {
		m := mustMachine(t, p)
		res, err := Run(m, im, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if idx > 0 && res.Report.SimTime >= prev {
			t.Errorf("p=%d: sim time %.4g did not improve on %.4g", p, res.Report.SimTime, prev)
		}
		prev = res.Report.SimTime
	}
}

// TestCommHasLogPLatencyTerm checks Eq. (11)'s latency structure: on a
// latency-dominated machine, CC communication time grows with log p, not
// with p.
func TestCommHasLogPLatencyTerm(t *testing.T) {
	im := image.RandomBinary(64, 0.5, 5)
	get := func(p int) float64 {
		m, err := bdm.NewMachine(p, machine.LatencyBound)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(m, im, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return res.Report.CommTime
	}
	c4, c16, c64 := get(4), get(16), get(64)
	// log p doubles from 4 to 16 and triples from 4 to 64; allow slack
	// for the per-phase constant but reject linear-in-p growth (which
	// would give 4x and 16x).
	if r := c16 / c4; r < 1.5 || r > 3 {
		t.Errorf("comm(16)/comm(4) = %.2f, want ~2 (log-p growth)", r)
	}
	if r := c64 / c4; r < 2 || r > 5 {
		t.Errorf("comm(64)/comm(4) = %.2f, want ~3 (log-p growth)", r)
	}
}
