package cc

import (
	"testing"

	"parimg/internal/image"
	"parimg/internal/seq"
)

func TestParallelCensusMatchesSequential(t *testing.T) {
	for _, tc := range []struct {
		name string
		im   *image.Image
		mode seq.Mode
	}{
		{"blobs", image.RandomBlobs(64, 10, 3), seq.Binary},
		{"grey", image.RandomGrey(64, 8, 4), seq.Grey},
		{"darpa", image.DARPAScene(128, 256, 5), seq.Grey},
		{"spiral", image.Generate(image.DualSpiral, 64), seq.Binary},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			labels := seq.LabelBFS(tc.im, image.Conn8, tc.mode)
			want := labels.Census(tc.im)

			m := mustMachine(t, 16)
			got, err := Census(m, tc.im, labels)
			if err != nil {
				t.Fatal(err)
			}
			if len(got.Stats) != len(want) {
				t.Fatalf("%d components, want %d", len(got.Stats), len(want))
			}
			for i := range want {
				if got.Stats[i] != want[i] {
					t.Fatalf("stat %d:\n got %+v\nwant %+v", i, got.Stats[i], want[i])
				}
			}
			if got.Report.SimTime <= 0 {
				t.Error("no simulated time")
			}
		})
	}
}

func TestParallelCensusAcrossP(t *testing.T) {
	im := image.RandomBinary(64, 0.55, 9)
	labels := seq.LabelBFS(im, image.Conn8, seq.Binary)
	want := labels.Census(im)
	for _, p := range []int{1, 4, 64} {
		m := mustMachine(t, p)
		got, err := Census(m, im, labels)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if len(got.Stats) != len(want) {
			t.Fatalf("p=%d: %d components, want %d", p, len(got.Stats), len(want))
		}
		for i := range want {
			if got.Stats[i] != want[i] {
				t.Fatalf("p=%d: stat %d differs", p, i)
			}
		}
	}
}

func TestParallelCensusEmpty(t *testing.T) {
	im := image.New(32)
	labels := image.NewLabels(32)
	m := mustMachine(t, 4)
	got, err := Census(m, im, labels)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Stats) != 0 {
		t.Errorf("empty image census has %d entries", len(got.Stats))
	}
}

func TestParallelCensusValidation(t *testing.T) {
	m := mustMachine(t, 4)
	if _, err := Census(m, image.New(32), image.NewLabels(16)); err == nil {
		t.Error("size mismatch: want error")
	}
}
