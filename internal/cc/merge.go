package cc

import (
	"parimg/internal/bdm"
	"parimg/internal/graph"
	"parimg/internal/sortutil"
)

// loadSide prefetches one side of the merged border (positional colors and
// labels) into loc.sidePix/sideLab[side]. Side 0 is the left (horizontal
// merge) or upper (vertical merge) side; side 1 the right or lower side.
// The caller's own edge contributes a free local access; the rest are
// split-phase prefetches completed with one Sync (cost tau + words), as in
// Section 5.3.
func (st *sharedState) loadSide(pr *bdm.Proc, loc *procLocal, grp Group, side int) {
	ph := grp.Phase
	var pixS, labS *bdm.Spread[uint32]
	var chunk int
	if ph.Orient == Horizontal {
		chunk = st.lay.Q
		if side == 0 {
			pixS, labS = st.pixE, st.labE // east edges of the left column
		} else {
			pixS, labS = st.pixW, st.labW // west edges of the right column
		}
	} else {
		chunk = st.lay.R
		if side == 0 {
			pixS, labS = st.pixS, st.labS // south edges of the upper row
		} else {
			pixS, labS = st.pixN, st.labN // north edges of the lower row
		}
	}
	if cap(loc.sidePix[side]) < grp.Side {
		loc.sidePix[side] = make([]uint32, grp.Side)
		loc.sideLab[side] = make([]uint32, grp.Side)
	}
	loc.sidePix[side] = loc.sidePix[side][:grp.Side]
	loc.sideLab[side] = loc.sideLab[side][:grp.Side]
	prev := pr.SetCommLabel("border_fetch")
	for si, src := range grp.borderSources(st.lay, side == 0) {
		bdm.Get(pr, loc.sidePix[side][si*chunk:(si+1)*chunk], pixS, src, 0)
		bdm.Get(pr, loc.sideLab[side][si*chunk:(si+1)*chunk], labS, src, 0)
	}
	pr.Sync()
	pr.SetCommLabel(prev)
	pr.Work(2 * grp.Side)
}

// sortSide builds the (label, position) pairs of the colored pixels of one
// loaded side and sorts them by label with the hybrid radix sort, enabling
// the first-type graph edges between same-labeled border pixels.
func (st *sharedState) sortSide(pr *bdm.Proc, loc *procLocal, side, n int) {
	pairs := loc.pairs[side][:0]
	pix, lab := loc.sidePix[side], loc.sideLab[side]
	for i := 0; i < n; i++ {
		if pix[i] != 0 {
			pairs = append(pairs, sortutil.Pair{Key: lab[i], Value: uint32(i)})
		}
	}
	sortutil.SortPairs(pairs)
	loc.pairs[side] = pairs
	pr.Work(n + opsPerSortItem*len(pairs))
}

// fetchShadowSide prefetches the shadow manager's published sorted side
// (count, sorted labels and positions, positional colors) and reconstructs
// the positional label array locally.
func (st *sharedState) fetchShadowSide(pr *bdm.Proc, loc *procLocal, grp Group) {
	prev := pr.SetCommLabel("border_fetch")
	cnt := int(bdm.GetScalar(pr, st.shCnt, grp.Shadow, 0))
	pr.Sync()
	if cap(loc.skeys) < cnt {
		loc.skeys = make([]uint32, cnt)
		loc.svals = make([]uint32, cnt)
	}
	loc.skeys = loc.skeys[:cnt]
	loc.svals = loc.svals[:cnt]
	if cap(loc.sidePix[1]) < grp.Side {
		loc.sidePix[1] = make([]uint32, grp.Side)
		loc.sideLab[1] = make([]uint32, grp.Side)
	}
	loc.sidePix[1] = loc.sidePix[1][:grp.Side]
	loc.sideLab[1] = loc.sideLab[1][:grp.Side]
	bdm.Get(pr, loc.skeys, st.shSortLab, grp.Shadow, 0)
	bdm.Get(pr, loc.svals, st.shSortPos, grp.Shadow, 0)
	bdm.Get(pr, loc.sidePix[1], st.shPixPos, grp.Shadow, 0)
	pr.Sync()
	pr.SetCommLabel(prev)

	pairs := loc.pairs[1][:0]
	for i := range loc.sideLab[1] {
		loc.sideLab[1][i] = 0
	}
	for i := 0; i < cnt; i++ {
		pairs = append(pairs, sortutil.Pair{Key: loc.skeys[i], Value: loc.svals[i]})
		loc.sideLab[1][loc.svals[i]] = loc.skeys[i]
	}
	loc.pairs[1] = pairs
	pr.Work(grp.Side + 2*cnt)
}

// solveMerge converts the merge into connected components of the border
// graph (Section 5.3): vertices are the border pixels of both sides; edges
// of the first type string together same-labeled pixels down each side (in
// sorted order); edges of the second type join adjacent like-colored pixels
// across the border. A sequential BFS solves the graph, each component's
// new label is the minimum label it contains, and the sorted array of
// unique (alpha, beta) change pairs is returned (Procedure 1). Choosing the
// minimum keeps labels canonical: the final labeling equals the sequential
// row-major BFS labeling exactly, not merely up to renaming.
func (st *sharedState) solveMerge(pr *bdm.Proc, loc *procLocal, grp Group) []sortutil.Pair {
	side := grp.Side
	if loc.g == nil {
		loc.g = graph.New(2 * side)
	} else {
		loc.g.Reset(2 * side)
	}
	g := loc.g

	// First-type edges: consecutive entries of each side's label-sorted
	// pair array with equal labels.
	for s := 0; s < 2; s++ {
		pairs := loc.pairs[s]
		base := s * side
		for i := 1; i < len(pairs); i++ {
			if pairs[i].Key == pairs[i-1].Key {
				g.AddEdge(base+int(pairs[i-1].Value), base+int(pairs[i].Value))
			}
		}
	}

	// Second-type edges: adjacency across the border. Under
	// 8-connectivity a pixel at border position i faces positions i-1,
	// i and i+1 on the other side; under 4-connectivity only i.
	var djs []int
	if st.opt.Conn == 4 {
		djs = []int{0}
	} else {
		djs = []int{-1, 0, 1}
	}
	p0, p1 := loc.sidePix[0], loc.sidePix[1]
	for i := 0; i < side; i++ {
		a := p0[i]
		if a == 0 {
			continue
		}
		for _, dj := range djs {
			j := i + dj
			if j < 0 || j >= side {
				continue
			}
			b := p1[j]
			if b == 0 {
				continue
			}
			if st.opt.Mode.Connected(a, b) {
				g.AddEdge(i, side+j)
			}
		}
	}

	comp, ncomp := g.Components()

	// Vertex labels, then minimum label per component.
	if cap(loc.vlab) < 2*side {
		loc.vlab = make([]uint32, 2*side)
	}
	vlab := loc.vlab[:2*side]
	copy(vlab[:side], loc.sideLab[0])
	copy(vlab[side:], loc.sideLab[1])
	reps := graph.MinLabelPerComponent(comp, ncomp, vlab)

	// Change pairs for every border pixel whose label shrinks; sorted
	// and deduplicated per Procedure 1. (A label cannot map to two
	// different targets: all its occurrences on a side are linked by
	// first-type edges, and the two sides' label sets are disjoint.)
	changes := loc.changes[:0]
	for v := 0; v < 2*side; v++ {
		l := vlab[v]
		if l == 0 {
			continue // background vertex (isolated)
		}
		if rep := reps[comp[v]]; rep != l {
			changes = append(changes, sortutil.Pair{Key: l, Value: rep})
		}
	}
	m := len(changes)
	sortutil.SortPairs(changes)
	changes = sortutil.UniquePairs(changes)
	loc.changes = changes

	pr.Work(opsPerGraphVertex*2*side + opsPerSortItem*m + opsPerChangePair*len(changes))
	return changes
}
