package cc

import (
	"fmt"
	"testing"

	"parimg/internal/image"
	"parimg/internal/seq"
)

func checkSVExact(t *testing.T, im *image.Image, p int, opt Options) *Result {
	t.Helper()
	m := mustMachine(t, p)
	res, err := RunShiloachVishkin(m, im, opt)
	if err != nil {
		t.Fatalf("RunShiloachVishkin(n=%d p=%d): %v", im.N, p, err)
	}
	o := opt
	if err := o.normalize(); err != nil {
		t.Fatal(err)
	}
	want := seq.LabelBFS(im, o.Conn, o.Mode)
	for idx := range want.Lab {
		if res.Labels.Lab[idx] != want.Lab[idx] {
			t.Fatalf("n=%d p=%d: pixel %d: label %d, want %d",
				im.N, p, idx, res.Labels.Lab[idx], want.Lab[idx])
		}
	}
	return res
}

func TestSVPatterns(t *testing.T) {
	for _, id := range image.AllPatterns() {
		for _, p := range []int{1, 4, 16} {
			id, p := id, p
			t.Run(fmt.Sprintf("%v/p=%d", id, p), func(t *testing.T) {
				im := image.Generate(id, 32)
				checkSVExact(t, im, p, Options{Conn: image.Conn8})
				checkSVExact(t, im, p, Options{Conn: image.Conn4})
			})
		}
	}
}

func TestSVRandomAndGrey(t *testing.T) {
	im := image.RandomBinary(64, 0.593, 41)
	checkSVExact(t, im, 16, Options{})
	grey := image.RandomGrey(64, 8, 42)
	checkSVExact(t, grey, 16, Options{Mode: seq.Grey})
}

func TestSVDegenerate(t *testing.T) {
	bg := image.New(16)
	res := checkSVExact(t, bg, 4, Options{})
	if res.Components != 0 {
		t.Errorf("background: %d components", res.Components)
	}
	fg := image.New(16)
	for i := range fg.Pix {
		fg.Pix[i] = 1
	}
	res = checkSVExact(t, fg, 4, Options{})
	if res.Components != 1 {
		t.Errorf("solid: %d components", res.Components)
	}
}

func TestSVRejectsBadP(t *testing.T) {
	m := mustMachine(t, 64)
	if _, err := RunShiloachVishkin(m, image.New(32), Options{}); err == nil {
		t.Error("p > n should be rejected")
	}
}

// TestSVCommDominates captures the distributed-memory lesson: the
// pointer-jumping algorithm moves orders of magnitude more words than the
// paper's merge algorithm on the same input.
func TestSVCommDominates(t *testing.T) {
	im := image.Generate(image.DualSpiral, 64)
	p := 16
	m1 := mustMachine(t, p)
	merge, err := Run(m1, im, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m2 := mustMachine(t, p)
	sv, err := RunShiloachVishkin(m2, im, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sv.Report.Words < 10*merge.Report.Words {
		t.Errorf("SV moved %d words, merge %d; expected at least a 10x gap",
			sv.Report.Words, merge.Report.Words)
	}
	if sv.Report.SimTime < merge.Report.SimTime {
		t.Errorf("SV sim time %.4g beat merge %.4g on the CM-5 model",
			sv.Report.SimTime, merge.Report.SimTime)
	}
}

func TestSVConvergesQuickly(t *testing.T) {
	// Pointer jumping converges in far fewer rounds than the component
	// diameter in pixels: the spiral's arms are over a thousand pixels
	// long at n=64, yet hooking+jumping finishes in well under 150
	// rounds (each jump geometrically compresses the pointer chains
	// that hooking extends).
	im := image.Generate(image.DualSpiral, 64)
	m := mustMachine(t, 16)
	res, err := RunShiloachVishkin(m, im, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Phases > 150 {
		t.Errorf("SV took %d iterations on a 64x64 spiral; expected sublinear convergence", res.Phases)
	}
}
