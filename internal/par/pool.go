package par

import (
	"sync"

	"parimg/internal/errs"
)

// Pool is a free-list of same-sized Engines for callers that need many
// engines over time but only a few at once — the package-level Label and
// Histogram functions rent from one, and a serving runtime rents one per
// concurrent request. Renting an idle engine is a mutex acquire and a slice
// pop; only a rent that finds the free list empty constructs a new Engine
// (and with it the engine's per-worker scratch arenas, which then amortize
// across every later rental the way a single Engine's scratch amortizes
// across calls).
//
// Return scrubs all per-renter configuration — observer, fault injector,
// algorithm and merge backend — so a rented engine always starts from the
// documented defaults no matter what the previous renter set. Unlike a
// sync.Pool, a Pool is never drained by the garbage collector: a warm
// service keeps its arenas.
type Pool struct {
	workers int

	mu     sync.Mutex
	free   []*Engine
	closed bool
}

// NewPool returns a pool of engines with the given worker count each;
// workers <= 0 selects runtime.GOMAXPROCS(0) (resolved once, here, so every
// engine the pool ever makes has the same worker count). The pool starts
// empty: engines are constructed on demand by Rent.
func NewPool(workers int) *Pool {
	// Resolve through NewEngine so the default stays defined in one place.
	probe := NewEngine(workers)
	return &Pool{workers: probe.Workers(), free: []*Engine{probe}}
}

// Workers returns the worker count of the pool's engines.
func (p *Pool) Workers() int { return p.workers }

// Rent returns an idle engine, constructing one if the free list is empty.
// The engine is configured with the documented defaults (no observer, no
// fault injector, AlgoAuto, MergeAuto); the caller owns it until Return.
// After Close, Rent fails with an error wrapping errs.ErrClosed.
func (p *Pool) Rent() (*Engine, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, errs.Closed("par.Pool.Rent")
	}
	if n := len(p.free); n > 0 {
		e := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.mu.Unlock()
		return e, nil
	}
	p.mu.Unlock()
	return NewEngine(p.workers), nil
}

// rent is Rent for the package-level convenience functions, whose pool is
// never closed. Invariant panic: fails only on a closed pool.
func (p *Pool) rent() *Engine {
	e, err := p.Rent()
	if err != nil {
		panic("par: rent from closed default pool: " + err.Error())
	}
	return e
}

// Return puts a rented engine back on the free list after scrubbing its
// per-renter configuration. An engine that was closed while rented is not
// pooled (it can never run again); returning to a closed pool closes the
// engine instead of pooling it. Return(nil) is a no-op, so
// `defer pool.Return(e)` is safe alongside a Rent error check.
func (p *Pool) Return(e *Engine) {
	if e == nil || e.Closed() {
		return
	}
	e.SetObserver(nil)
	e.SetFaultInjector(nil)
	e.SetAlgo(AlgoAuto)
	e.SetMerge(MergeAuto)
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		e.Close()
		return
	}
	p.free = append(p.free, e)
	p.mu.Unlock()
}

// Idle returns the number of engines currently on the free list.
func (p *Pool) Idle() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.free)
}

// Close closes the pool and every idle engine. Subsequent Rent calls fail
// with an error wrapping errs.ErrClosed; engines still rented out keep
// working and are closed when Returned. Idempotent; always returns nil.
func (p *Pool) Close() error {
	p.mu.Lock()
	idle := p.free
	p.free, p.closed = nil, true
	p.mu.Unlock()
	for _, e := range idle {
		e.Close()
	}
	return nil
}
