package par

import (
	"sync/atomic"

	"parimg/internal/image"
	"parimg/internal/seq"
)

// This file is the slab-merge seam: the boundary extraction and resolution
// at the heart of Phase 2, factored out so it works over any pair of
// adjacent label slabs — the in-memory strips of the resident engine
// (uint32 labels) and the band windows of the out-of-core streaming
// pipeline (uint64 global labels, since a streamed image's pixel count may
// exceed 2^32). The engine's own extraction and tree-resolution passes
// delegate here, so the two paths cannot drift.

// BoundaryLabel is the label word of a slab: the resident engine's uint32
// strip labels or the streaming pipeline's uint64 global labels.
type BoundaryLabel interface{ ~uint32 | ~uint64 }

// Uniter merges label sets; Unite returns true when the call performed the
// link, i.e. the two labels were in distinct sets before. The resident
// engine's concurrent union-find and the streaming pipeline's sparse
// 64-bit union-find both satisfy it.
type Uniter[L BoundaryLabel] interface {
	Unite(a, b L) bool
}

// AppendBoundaryEdges appends to dst the union edges across the boundary
// between two vertically adjacent slabs, given the bottom pixel row and
// label row of the upper slab (topPix, topLab) and the top rows of the
// lower slab (botPix, botLab), all of one width. One edge (two appended
// labels: top then bottom) is emitted per adjacent like-pixel pair,
// deduplicating consecutive repeats — adjacent boundary pixels of one
// component fragment carry the same label, so a wide overlap emits one
// edge instead of one per pixel (plus up to three per label change under
// Conn8), without any lookup structure. Returns the grown slice and the
// raw adjacency count (pairs before dedup, the obs boundary-pairs
// counter's unit). A non-nil stop is polled every 1024 columns; on
// cancellation the partial slice is returned.
func AppendBoundaryEdges[L BoundaryLabel](dst []L, topPix, botPix []uint32,
	topLab, botLab []L, conn image.Connectivity, mode seq.Mode,
	stop *atomic.Bool) ([]L, int64) {
	n := len(topPix)
	var pairs int64
	var lastA, lastB L
	for j := 0; j < n; j++ {
		if j&1023 == 0 && stop != nil && stop.Load() {
			break
		}
		a := topPix[j]
		if a == 0 {
			continue
		}
		jlo, jhi := j, j
		if conn == image.Conn8 {
			jlo, jhi = j-1, j+1
			if jlo < 0 {
				jlo = 0
			}
			if jhi >= n {
				jhi = n - 1
			}
		}
		for jj := jlo; jj <= jhi; jj++ {
			b := botPix[jj]
			if b == 0 || !mode.Connected(a, b) {
				continue
			}
			pairs++
			la, lb := topLab[j], botLab[jj]
			if la == lastA && lb == lastB {
				continue
			}
			lastA, lastB = la, lb
			dst = append(dst, la, lb)
		}
	}
	return dst, pairs
}

// ResolveBoundary feeds a flat (top, bottom) edge list to the union-find,
// one Unite per edge, returning the number of links — unites that joined
// two previously distinct sets, the quantity "strip components minus
// links = total components" charges. A non-nil stop is polled every 8192
// edges. This is the tree backend's resolution loop, shared with the
// streaming pipeline's band merge.
func ResolveBoundary[L BoundaryLabel](edges []L, uf Uniter[L], stop *atomic.Bool) int {
	links := 0
	for k := 0; k+1 < len(edges); k += 2 {
		if k&8191 == 0 && stop != nil && stop.Load() {
			break
		}
		if uf.Unite(edges[k], edges[k+1]) {
			links++
		}
	}
	return links
}
