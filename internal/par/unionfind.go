package par

import "sync/atomic"

// cuf is a wait-free concurrent union-find in the style of Liu and Tarjan
// ("Simple Concurrent Connected Components Algorithms"): a flat parent
// array updated with compare-and-swap, unite-by-minimum linking, and path
// halving during finds. It resolves the tile-border merge graph: the nodes
// are the strip-local BFS labels (global row-major seed index + 1) and the
// convention parent[x] == 0 means x is a root, which makes an all-zero
// array the ready state — no O(n^2) re-initialization between runs.
//
// Because unite always links the larger root under the smaller, parents
// strictly decrease along every path, so finds terminate even while other
// workers are linking, and the root of a merged set is the set's minimum
// label — exactly the canonical label the sequential BFS labeler assigns.
type cuf struct {
	parent []uint32
}

// reset readies the structure for labels 1..size-1. The array is assumed
// already zeroed (the post-run cleanup restores this invariant); only
// growth allocates.
func (u *cuf) reset(size int) {
	if cap(u.parent) < size {
		u.parent = make([]uint32, size)
		return
	}
	u.parent = u.parent[:size]
}

// find returns the current root of x's set, halving the path as it walks.
// Safe to call concurrently with unite.
func (u *cuf) find(x uint32) uint32 {
	for {
		p := atomic.LoadUint32(&u.parent[x])
		if p == 0 {
			return x
		}
		gp := atomic.LoadUint32(&u.parent[p])
		if gp == 0 {
			return p
		}
		// Path halving: gp < p < x, so a racing better value is never
		// overwritten (CAS fails harmlessly).
		atomic.CompareAndSwapUint32(&u.parent[x], p, gp)
		x = gp
	}
}

// unite merges the sets of a and b, returning true when the call performed
// the link (false if they were already one set). Safe to call concurrently.
func (u *cuf) unite(a, b uint32) bool {
	for {
		ra, rb := u.find(a), u.find(b)
		if ra == rb {
			return false
		}
		if ra > rb {
			ra, rb = rb, ra
		}
		// Link the larger root under the smaller. A lost race means rb
		// gained a parent concurrently; retry from the new roots.
		if atomic.CompareAndSwapUint32(&u.parent[rb], 0, ra) {
			return true
		}
		a, b = ra, rb
	}
}

// clear zeroes the given entries, restoring the all-zero ready state. Each
// worker clears the labels it passed to unite; together the lists cover
// every written entry, since only unite arguments ever gain parents.
func (u *cuf) clear(labels []uint32) {
	for _, l := range labels {
		atomic.StoreUint32(&u.parent[l], 0)
	}
}
