package par

import "sync/atomic"

// cuf is a wait-free concurrent union-find in the style of Liu and Tarjan
// ("Simple Concurrent Connected Components Algorithms"): a flat parent
// array updated with compare-and-swap, unite-by-minimum linking, and path
// halving during finds. It resolves the tile-border merge graph: the nodes
// are the strip-local BFS labels (global row-major seed index + 1) and the
// convention parent[x] == 0 means x is a root, which makes an all-zero
// array the ready state — no O(n^2) re-initialization between runs.
//
// Because unite always links the larger root under the smaller, parents
// strictly decrease along every path, so finds terminate even while other
// workers are linking, and the root of a merged set is the set's minimum
// label — exactly the canonical label the sequential BFS labeler assigns.
type cuf struct {
	parent []uint32
}

// reset readies the structure for labels 1..size-1. The array is assumed
// already zeroed (the post-run cleanup restores this invariant); only
// growth allocates.
func (u *cuf) reset(size int) {
	if cap(u.parent) < size {
		u.parent = make([]uint32, size)
		return
	}
	u.parent = u.parent[:size]
}

// find returns the current root of x's set, halving the path as it walks.
// Safe to call concurrently with unite.
func (u *cuf) find(x uint32) uint32 {
	for {
		p := atomic.LoadUint32(&u.parent[x])
		if p == 0 {
			return x
		}
		gp := atomic.LoadUint32(&u.parent[p])
		if gp == 0 {
			return p
		}
		// Path halving: gp < p < x, so a racing better value is never
		// overwritten (CAS fails harmlessly).
		atomic.CompareAndSwapUint32(&u.parent[x], p, gp)
		x = gp
	}
}

// unite merges the sets of a and b, returning true when the call performed
// the link (false if they were already one set). Safe to call concurrently.
func (u *cuf) Unite(a, b uint32) bool {
	for {
		ra, rb := u.find(a), u.find(b)
		if ra == rb {
			return false
		}
		if ra > rb {
			ra, rb = rb, ra
		}
		// Link the larger root under the smaller. A lost race means rb
		// gained a parent concurrently; retry from the new roots.
		if atomic.CompareAndSwapUint32(&u.parent[rb], 0, ra) {
			return true
		}
		a, b = ra, rb
	}
}

// step returns x's effective one-hop parent: parent[x], or x itself when x
// is a root. It is the O(1) read the Shiloach-Vishkin rounds use in place
// of a full find — repeated rounds do the chasing that find does inline.
func (u *cuf) step(x uint32) uint32 {
	if p := atomic.LoadUint32(&u.parent[x]); p != 0 {
		return p
	}
	return x
}

// hookMin lowers x's effective parent toward target with a write-min CAS
// loop: the write happens only while target is strictly smaller than x's
// current effective parent, so the strictly-decreasing-parents invariant
// holds under any interleaving and a racing smaller value is never
// overwritten. It returns whether this call performed x's first hook (the
// root -> child transition, which happens at most once per node and is what
// the component count charges) and whether it wrote at all. The caller
// guarantees target and x are in the same component.
func (u *cuf) hookMin(x, target uint32) (first, changed bool) {
	for {
		cur := atomic.LoadUint32(&u.parent[x])
		eff := cur
		if eff == 0 {
			eff = x
		}
		if target >= eff {
			return false, false
		}
		if atomic.CompareAndSwapUint32(&u.parent[x], cur, target) {
			return cur == 0, true
		}
	}
}

// shortcut pointer-jumps x one level: parent[x] = parent[parent[x]], the
// compress half of a Shiloach-Vishkin round. The grandparent is always
// smaller than the parent, so the CAS is a write-min like hookMin's; a lost
// race means another worker lowered parent[x] even further, and that worker
// reports the change. Returns whether this call changed the entry.
func (u *cuf) shortcut(x uint32) bool {
	cur := atomic.LoadUint32(&u.parent[x])
	if cur == 0 {
		return false
	}
	g := atomic.LoadUint32(&u.parent[cur])
	if g == 0 {
		return false
	}
	return atomic.CompareAndSwapUint32(&u.parent[x], cur, g)
}

// clear zeroes the given entries, restoring the all-zero ready state. Each
// worker clears the labels it passed to unite (tree backend) or the edge
// endpoints in its slab (SV backend); together the lists cover every
// written entry: every written index and every written parent value is an
// edge endpoint (unite arguments, hook targets and shortcut jumps all
// resolve to prior parent values, which bottom out at the endpoints
// themselves), and every endpoint appears in some worker's list.
func (u *cuf) clear(labels []uint32) {
	for _, l := range labels {
		atomic.StoreUint32(&u.parent[l], 0)
	}
}
