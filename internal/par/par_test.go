package par

import (
	"fmt"
	"sync"
	"testing"

	"parimg/internal/image"
	"parimg/internal/seq"
)

// workerCounts exercises the sequential fast path, even and odd strip
// splits, and more workers than image rows.
var workerCounts = []int{1, 2, 3, 4, 7, 64}

func requireIdentical(t *testing.T, got, want *image.Labels, ctx string) {
	t.Helper()
	for i := range want.Lab {
		if got.Lab[i] != want.Lab[i] {
			t.Fatalf("%s: label mismatch at pixel %d: got %d, want %d",
				ctx, i, got.Lab[i], want.Lab[i])
		}
	}
}

// TestLabelMatchesSequentialCatalog checks the engine against the
// sequential reference on all nine Figure 1 patterns x {Conn4, Conn8} x
// {Binary, Grey} at several worker counts.
func TestLabelMatchesSequentialCatalog(t *testing.T) {
	for _, id := range image.AllPatterns() {
		im := image.Generate(id, 64)
		for _, conn := range []image.Connectivity{image.Conn4, image.Conn8} {
			for _, mode := range []seq.Mode{seq.Binary, seq.Grey} {
				want := seq.LabelBFS(im, conn, mode)
				for _, w := range workerCounts {
					e := NewEngine(w)
					got := e.Label(im, conn, mode)
					requireIdentical(t, got, want,
						fmt.Sprintf("%v/%v/%v/workers=%d", id, conn, mode, w))
				}
			}
		}
	}
}

// TestLabelMatchesSequentialDARPA checks the engine on the grey-scale
// benchmark scene.
func TestLabelMatchesSequentialDARPA(t *testing.T) {
	im := image.DARPASynthetic()
	for _, mode := range []seq.Mode{seq.Binary, seq.Grey} {
		want := seq.LabelBFS(im, image.Conn8, mode)
		e := NewEngine(4)
		got := e.Label(im, image.Conn8, mode)
		requireIdentical(t, got, want, fmt.Sprintf("darpa/%v", mode))
	}
}

// TestLabelRandomAndTiny sweeps random images, including sides smaller than
// the worker count and a 1x1 image.
func TestLabelRandomAndTiny(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 33, 128} {
		for _, density := range []float64{0.2, 0.5, 0.8} {
			im := image.RandomBinary(n, density, uint64(n*100)+uint64(density*10))
			want := seq.LabelBFS(im, image.Conn8, seq.Binary)
			for _, w := range workerCounts {
				got := NewEngine(w).Label(im, image.Conn8, seq.Binary)
				requireIdentical(t, got, want, fmt.Sprintf("n=%d/d=%g/w=%d", n, density, w))
			}
		}
	}
}

// TestEngineReuse runs one engine across differing sizes and modes to prove
// the scratch (union-find, queues, dirty lists) resets correctly.
func TestEngineReuse(t *testing.T) {
	e := NewEngine(4)
	cases := []struct {
		n    int
		mode seq.Mode
	}{{64, seq.Binary}, {32, seq.Grey}, {64, seq.Grey}, {16, seq.Binary}, {64, seq.Binary}}
	for i, c := range cases {
		im := image.RandomGrey(c.n, 8, uint64(i+1))
		want := seq.LabelBFS(im, image.Conn8, c.mode)
		got := e.Label(im, image.Conn8, c.mode)
		requireIdentical(t, got, want, fmt.Sprintf("reuse case %d", i))

		// LabelInto on a dirty output must clear it and report the
		// component count.
		out := image.NewLabels(c.n)
		for j := range out.Lab {
			out.Lab[j] = 12345
		}
		comps := e.LabelInto(im, image.Conn8, c.mode, out)
		requireIdentical(t, out, want, fmt.Sprintf("reuse into case %d", i))
		if comps != want.Components() {
			t.Fatalf("case %d: components = %d, want %d", i, comps, want.Components())
		}
	}
}

// TestLabelConcurrent labels from many goroutines at once through the
// pooled package API; run under -race this is the engine's data-race proof.
func TestLabelConcurrent(t *testing.T) {
	ims := []*image.Image{
		image.Generate(image.DualSpiral, 64),
		image.Generate(image.ConcentricCircles, 64),
		image.RandomBinary(96, 0.55, 7),
	}
	wants := make([]*image.Labels, len(ims))
	for i, im := range ims {
		wants[i] = seq.LabelBFS(im, image.Conn8, seq.Binary)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 5; iter++ {
				i := (g + iter) % len(ims)
				got := Label(ims[i], image.Conn8, seq.Binary)
				for j := range wants[i].Lab {
					if got.Lab[j] != wants[i].Lab[j] {
						t.Errorf("goroutine %d: mismatch at %d", g, j)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestHistogramMatchesSequential checks sharded+tree-merged histograms
// against the host baseline, at several worker counts and bucket counts.
func TestHistogramMatchesSequential(t *testing.T) {
	for _, n := range []int{1, 16, 64, 100} {
		for _, k := range []int{2, 16, 256} {
			im := image.RandomGrey(n, k, uint64(n*k))
			want, err := im.Histogram(k)
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range workerCounts {
				got, err := NewEngine(w).Histogram(im, k)
				if err != nil {
					t.Fatalf("n=%d k=%d w=%d: %v", n, k, w, err)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("n=%d k=%d w=%d: H[%d]=%d, want %d",
							n, k, w, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestHistogramOutOfRange checks that out-of-range grey levels error rather
// than corrupt the tally.
func TestHistogramOutOfRange(t *testing.T) {
	im := image.New(8)
	im.Set(3, 3, 9)
	if _, err := NewEngine(4).Histogram(im, 8); err == nil {
		t.Fatal("want error for grey level 9 with k=8")
	}
	if _, err := NewEngine(4).Histogram(im, 16); err != nil {
		t.Fatalf("k=16: %v", err)
	}
}

// TestHistogramConcurrent exercises the pooled package API under -race.
func TestHistogramConcurrent(t *testing.T) {
	im := image.RandomGrey(128, 64, 3)
	want, err := im.Histogram(64)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := Histogram(im, 64)
			if err != nil {
				t.Error(err)
				return
			}
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("H[%d]=%d, want %d", i, got[i], want[i])
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestUnionFind exercises the concurrent union-find directly: concurrent
// unites over a chain must produce one set rooted at the minimum.
func TestUnionFind(t *testing.T) {
	var u cuf
	u.reset(1 << 12)
	const chain = 1000
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := uint32(1); i < chain; i++ {
				u.Unite(i, i+1)
			}
		}(g)
	}
	wg.Wait()
	for i := uint32(1); i <= chain; i++ {
		if r := u.find(i); r != 1 {
			t.Fatalf("find(%d) = %d, want 1", i, r)
		}
	}
	// clear restores the ready state.
	dirty := make([]uint32, 0, 2*chain)
	for i := uint32(1); i <= chain; i++ {
		dirty = append(dirty, i)
	}
	u.clear(dirty)
	for i := uint32(1); i <= chain; i++ {
		if r := u.find(i); r != i {
			t.Fatalf("after clear: find(%d) = %d", i, r)
		}
	}
}
