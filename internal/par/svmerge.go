package par

import "fmt"

// Merge selects the backend that resolves the cross-strip boundary edges
// collected by Phase 2's extraction pass. Both backends produce the exact
// unite-by-minimum forest, so the final labeling is pixel-for-pixel
// identical to seq.LabelBFS either way; they differ only in how the edge
// list is turned into that forest.
type Merge int

const (
	// MergeAuto picks per run by measured boundary-edge density: boundaries
	// carrying at least one edge per svAutoDensity⁻¹ boundary pixels (dense,
	// high-component-count images like the spiral and checker patterns) take
	// the Shiloach-Vishkin rounds; sparse boundaries take the tree.
	MergeAuto Merge = iota
	// MergeTree forces the paper-shaped backend: each edge is fed to the
	// concurrent union-find's unite (find both roots, CAS-link larger under
	// smaller), one edge at a time per worker.
	MergeTree
	// MergeSV forces the Shiloach-Vishkin backend: concurrent hook-and-
	// compress rounds over the shared parent array, every worker sweeping
	// its own edge slab per round until no parent changes.
	MergeSV
)

// String returns the merge backend's flag spelling: "auto", "tree" or "sv".
func (m Merge) String() string {
	switch m {
	case MergeAuto:
		return "auto"
	case MergeTree:
		return "tree"
	case MergeSV:
		return "sv"
	}
	return fmt.Sprintf("Merge(%d)", int(m))
}

// ParseMerge resolves a -merge flag value: "auto" (pick by boundary-edge
// density), "tree" or "sv".
func ParseMerge(s string) (Merge, error) {
	switch s {
	case "auto", "":
		return MergeAuto, nil
	case "tree":
		return MergeTree, nil
	case "sv":
		return MergeSV, nil
	}
	return 0, fmt.Errorf("par: unknown merge backend %q (want auto, tree or sv)", s)
}

// svAutoDensity is MergeAuto's switch point, in boundary edges per boundary
// pixel. Below it the edge list is short and the tree backend's one-shot
// unites (no repeated rounds, no re-reads of settled edges) win; above it
// the unite loop serializes on long find chains through the shared parent
// array while the SV rounds stay embarrassingly parallel, converging in
// O(log chain) rounds. 1/8 — an edge every 8 boundary pixels — separates
// the blob-like catalog patterns (a handful of edges per boundary) from the
// component-dense ones (spiral walls, bar and checker grids: an edge every
// 2-4 pixels).
const svAutoDensity = 0.125

// resolveMerge returns the backend Phase 2 actually runs: an explicit
// SetMerge choice wins, MergeAuto measures the extracted edge count against
// the boundary area.
func (e *Engine) resolveMerge(n, W int) Merge {
	if e.merge != MergeAuto {
		return e.merge
	}
	var edges int
	for w := 0; w < W; w++ {
		edges += len(e.dirty[w]) / 2
	}
	if float64(edges) >= svAutoDensity*float64((W-1)*n) {
		return MergeSV
	}
	return MergeTree
}

// treeResolve is the paper-shaped Phase 2b: every worker feeds its edge
// slab to the concurrent union-find through the shared ResolveBoundary
// loop, one Unite per edge. Boundaries are independent, but a strip's
// labels can reach two boundaries, so the union-find must be (and is) safe
// for concurrent unites. Per-worker link counts (unites that joined two
// distinct sets) land in e.links.
func (e *Engine) treeResolve(W int) {
	e.parallelDo(W, func(w int) {
		e.checkFault("border_merge", w, 2)
		e.links[w] = ResolveBoundary(e.dirty[w], &e.uf, e.stopFlag())
	})
}

// svResolve is the Shiloach-Vishkin Phase 2b (SNIPPETS Snippet 1 shape,
// with the Liu-Tarjan write-min refinement): repeated rounds of
//
//	hook     — for every boundary edge, lower the larger endpoint's
//	           effective parent toward the smaller endpoint's (write-min
//	           CAS, no find chains);
//	compress — pointer-jump every edge endpoint one level toward its root;
//
// until a round changes nothing. Each worker sweeps only its own edge slab,
// so rounds are barrier-synchronized full-parallel passes with no locks.
//
// Convergence: every write strictly decreases one parent entry of a
// strictly-decreasing-parent forest, so the rounds terminate; at the fixed
// point hook guarantees both endpoints of every edge share a root and
// compress guarantees the trees are stars. The minimum label of a boundary
// component never acquires a parent (hook only writes smaller values and
// none exists), so every root is its component's minimum seed label —
// exactly the forest treeResolve builds, hence the same labeling.
//
// Link accounting: a node leaves the root state (parent 0 -> nonzero) at
// most once, and at convergence a boundary component of k distinct labels
// has exactly k-1 non-roots, so counting those first hooks per worker makes
// "strip components minus links" the final component count, same as the
// tree backend's unite-returned-true count.
func (e *Engine) svResolve(W int) {
	round := 0
	for {
		round++
		r := round
		e.parallelDo(W, func(w int) {
			e.checkFault("sv_round", w, r)
			edges := e.dirty[w]
			changed := false
			links := 0
			for k := 0; k+1 < len(edges); k += 2 {
				if k&8191 == 0 && e.cancelable && e.stop.Load() {
					return
				}
				a, b := e.uf.step(edges[k]), e.uf.step(edges[k+1])
				if a == b {
					continue
				}
				if a > b {
					a, b = b, a
				}
				if first, ok := e.uf.hookMin(b, a); ok {
					changed = true
					if first {
						links++
					}
				}
			}
			for k := 0; k < len(edges); k++ {
				if e.uf.shortcut(edges[k]) {
					changed = true
				}
			}
			e.links[w] += links
			e.svchanged[w] = changed
		})
		if e.cancelable && e.stop.Load() {
			return
		}
		any := false
		for w := 0; w < W; w++ {
			any = any || e.svchanged[w]
			e.svchanged[w] = false
		}
		if !any {
			break
		}
	}
	e.svRounds = round
}
