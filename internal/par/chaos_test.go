package par

import (
	"context"
	"errors"
	"flag"
	"strings"
	"testing"
	"time"

	"parimg/internal/errs"
	"parimg/internal/fault"
	"parimg/internal/fault/leakcheck"
	"parimg/internal/image"
	"parimg/internal/seq"
)

// chaosMergeFlag lets the chaos matrix re-run with a forced border-merge
// backend (the CI chaos job does one pass with -merge=sv), so both merge
// paths face the same injected panics, delays, no-shows and deadlines.
var chaosMergeFlag = flag.String("merge", "", "force this border-merge backend on chaos-test engines (tree or sv)")

// chaosEngine builds an engine for a chaos test, applying the -merge
// override when one was given on the test command line.
func chaosEngine(t *testing.T, workers int) *Engine {
	t.Helper()
	e := NewEngine(workers)
	if *chaosMergeFlag != "" {
		m, err := ParseMerge(*chaosMergeFlag)
		if err != nil {
			t.Fatalf("-merge flag: %v", err)
		}
		e.SetMerge(m)
	}
	return e
}

// requireCleanAfterFault re-runs the engine without faults and checks the
// labeling is pixel-identical to the sequential reference — the "no partial
// writes survive the error path" half of the chaos contract.
func requireCleanAfterFault(t *testing.T, e *Engine, im *image.Image) {
	t.Helper()
	e.SetFaultInjector(nil)
	got, err := e.LabelErr(im, image.Conn8, seq.Binary)
	if err != nil {
		t.Fatalf("clean run after fault: %v", err)
	}
	requireIdentical(t, got, seq.LabelBFS(im, image.Conn8, seq.Binary), "clean run after fault")
}

// TestInjectedPanicEveryPhase plants a deterministic panic in each
// instrumented phase of both labeling algorithms and the histogram: every
// one must come back as a typed ErrAborted wrapping the injected fault, with
// the engine immediately reusable.
func TestInjectedPanicEveryPhase(t *testing.T) {
	leakcheck.Check(t)
	im := image.Generate(image.DualSpiral, 64)
	grey := image.RandomGrey(64, 16, 1)
	cases := []struct {
		site  string
		algo  Algo
		merge Merge
		run   func(e *Engine) error
	}{
		{"strip_label", AlgoBFS, MergeAuto, nil},
		{"border_merge", AlgoBFS, MergeAuto, nil},
		{"relabel", AlgoBFS, MergeAuto, nil},
		{"strip_label", AlgoRuns, MergeAuto, nil},
		{"border_merge", AlgoRuns, MergeAuto, nil},
		{"relabel", AlgoRuns, MergeAuto, nil},
		// The extraction site fires for both merge backends; sv_round only
		// exists inside the Shiloach-Vishkin resolve loop.
		{"border_merge", AlgoRuns, MergeSV, nil},
		{"sv_round", AlgoBFS, MergeSV, nil},
		{"sv_round", AlgoRuns, MergeSV, nil},
		{"tally", AlgoAuto, MergeAuto, func(e *Engine) error {
			_, err := e.Histogram(grey, 16)
			return err
		}},
		{"tree_merge", AlgoAuto, MergeAuto, func(e *Engine) error {
			_, err := e.Histogram(grey, 16)
			return err
		}},
	}
	for _, c := range cases {
		t.Run(c.site+"/"+c.algo.String()+"/"+c.merge.String(), func(t *testing.T) {
			e := chaosEngine(t, 4)
			e.SetAlgo(c.algo)
			if c.merge != MergeAuto {
				e.SetMerge(c.merge)
			}
			e.SetFaultInjector(fault.New(1, fault.Panic, 1).At(c.site).OnRank(1))
			var err error
			if c.run != nil {
				err = c.run(e)
			} else {
				_, err = e.LabelErr(im, image.Conn8, seq.Binary)
			}
			if !errors.Is(err, errs.ErrAborted) {
				t.Fatalf("site %s: err = %v, want ErrAborted", c.site, err)
			}
			var inj *fault.Injected
			if !errors.As(err, &inj) {
				t.Fatalf("site %s: err %v does not wrap the injected fault", c.site, err)
			}
			if inj.Site.Name != c.site {
				t.Errorf("fault fired at %v, want site %s", inj.Site, c.site)
			}
			requireCleanAfterFault(t, e, im)
		})
	}
}

func TestLabelContextPreCanceled(t *testing.T) {
	leakcheck.Check(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e := chaosEngine(t, 4)
	im := image.Generate(image.Cross, 64)
	if _, err := e.LabelContext(ctx, im, image.Conn8, seq.Binary); !errors.Is(err, errs.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	requireCleanAfterFault(t, e, im)
}

// TestLabelContextDeadlineMidRun forces the deadline to land mid-run by
// planting a delay fault longer than the context timeout inside the first
// phase, so the remaining checkpoints must observe the expiry.
func TestLabelContextDeadlineMidRun(t *testing.T) {
	leakcheck.Check(t)
	im := image.Generate(image.DualSpiral, 128)
	for _, algo := range []Algo{AlgoBFS, AlgoRuns} {
		e := chaosEngine(t, 4)
		e.SetAlgo(algo)
		e.SetFaultInjector(fault.New(1, fault.Delay, 1).
			At("strip_label").OnRank(0).WithDelay(50 * time.Millisecond))
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
		_, err := e.LabelContext(ctx, im, image.Conn8, seq.Binary)
		cancel()
		if !errors.Is(err, errs.ErrDeadline) {
			t.Fatalf("%v: err = %v, want ErrDeadline", algo, err)
		}
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("%v: err = %v, want to match context.DeadlineExceeded", algo, err)
		}
		var re *errs.RunError
		if !errors.As(err, &re) || re.After <= 0 {
			t.Fatalf("%v: err %v lacks a positive After duration", algo, err)
		}
		requireCleanAfterFault(t, e, im)
	}
}

func TestHistogramContextDeadlineMidRun(t *testing.T) {
	leakcheck.Check(t)
	im := image.RandomGrey(128, 16, 2)
	e := chaosEngine(t, 4)
	e.SetFaultInjector(fault.New(1, fault.Delay, 1).
		At("tally").OnRank(0).WithDelay(50 * time.Millisecond))
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if _, err := e.HistogramContext(ctx, im, 16); !errors.Is(err, errs.ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	e.SetFaultInjector(nil)
	h, err := e.Histogram(im, 16)
	if err != nil {
		t.Fatalf("clean histogram after deadline: %v", err)
	}
	want, err := im.Histogram(16)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if h[i] != want[i] {
			t.Fatalf("bucket %d: got %d, want %d after aborted run", i, h[i], want[i])
		}
	}
}

// TestInjectedNoShowReleasedByContext parks one worker mid-phase; the
// caller's deadline must release it and the call must fail with ErrDeadline,
// not hang.
func TestInjectedNoShowReleasedByContext(t *testing.T) {
	leakcheck.Check(t)
	im := image.Generate(image.FourSquares, 128)
	e := chaosEngine(t, 4)
	e.SetFaultInjector(fault.New(1, fault.NoShow, 1).At("strip_label").OnRank(2))
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := e.LabelContext(ctx, im, image.Conn8, seq.Binary)
	if !errors.Is(err, errs.ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("no-show release took %v", elapsed)
	}
	requireCleanAfterFault(t, e, im)
}

// TestInjectedNoShowWithoutContextDegradesToPanic mirrors the bdm behavior:
// with no context, nothing could release a parked worker, so the injector
// must panic instead.
func TestInjectedNoShowWithoutContextDegradesToPanic(t *testing.T) {
	leakcheck.Check(t)
	im := image.Generate(image.Cross, 64)
	e := chaosEngine(t, 4)
	e.SetFaultInjector(fault.New(1, fault.NoShow, 1).At("strip_label").OnRank(1))
	_, err := e.LabelErr(im, image.Conn8, seq.Binary)
	if !errors.Is(err, errs.ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted", err)
	}
	if !strings.Contains(err.Error(), "no-show without context") {
		t.Errorf("error %q does not explain the degraded no-show", err)
	}
	requireCleanAfterFault(t, e, im)
}

// TestScrubRestoresUnionFind checks the "no partial writes" guarantee at its
// weakest point: a panic between border_merge and relabel leaves the
// concurrent union-find full of unites whose dirty lists are untrustworthy.
// The scrub must wipe it back to the all-zero ready state, or the next run
// inherits stale parents and mislabels.
func TestScrubRestoresUnionFind(t *testing.T) {
	leakcheck.Check(t)
	im := image.Generate(image.ConcentricCircles, 128)
	for _, algo := range []Algo{AlgoBFS, AlgoRuns} {
		e := chaosEngine(t, 4)
		e.SetAlgo(algo)
		e.SetFaultInjector(fault.New(1, fault.Panic, 1).At("relabel").OnRank(1))
		if _, err := e.LabelErr(im, image.Conn8, seq.Binary); !errors.Is(err, errs.ErrAborted) {
			t.Fatalf("%v: err = %v, want ErrAborted", algo, err)
		}
		for i, v := range e.uf.parent {
			if v != 0 {
				t.Fatalf("%v: uf.parent[%d] = %d after scrub, want 0", algo, i, v)
			}
		}
		requireCleanAfterFault(t, e, im)
	}
}

// TestProbabilisticChaosSweep runs a randomized (but seeded, hence
// reproducible) sweep: every run either succeeds with the exact sequential
// labeling or fails with a typed runtime error — never a wrong answer, never
// an unclassified error, never a leak.
func TestProbabilisticChaosSweep(t *testing.T) {
	leakcheck.Check(t)
	im := image.Generate(image.DualSpiral, 96)
	want := seq.LabelBFS(im, image.Conn8, seq.Binary)
	for seed := uint64(1); seed <= 20; seed++ {
		e := chaosEngine(t, 3)
		e.SetFaultInjector(fault.New(seed, fault.Panic, 0.3))
		got, err := e.LabelErr(im, image.Conn8, seq.Binary)
		if err != nil {
			if !errors.Is(err, errs.ErrAborted) {
				t.Fatalf("seed %d: untyped error %v", seed, err)
			}
			requireCleanAfterFault(t, e, im)
			continue
		}
		requireIdentical(t, got, want, "fault-free run in sweep")
	}
}
