package par

import (
	"fmt"
	"testing"

	"parimg/internal/image"
	"parimg/internal/seq"
)

// TestRunLabelMatchesSequentialCatalog checks the forced run engine
// against the sequential reference on all nine Figure 1 patterns x
// {Conn4, Conn8} at several worker counts — exact array compare.
func TestRunLabelMatchesSequentialCatalog(t *testing.T) {
	for _, id := range image.AllPatterns() {
		im := image.Generate(id, 64)
		for _, conn := range []image.Connectivity{image.Conn4, image.Conn8} {
			want := seq.LabelBFS(im, conn, seq.Binary)
			for _, w := range workerCounts {
				e := NewEngine(w)
				e.SetAlgo(AlgoRuns)
				got := e.Label(im, conn, seq.Binary)
				requireIdentical(t, got, want,
					fmt.Sprintf("runs/%v/%v/workers=%d", id, conn, w))
			}
		}
	}
}

// TestRunLabelMatchesSequentialDARPA checks the run engine on the DARPA
// benchmark scene in binary mode (every nonzero grey level is foreground),
// both connectivities.
func TestRunLabelMatchesSequentialDARPA(t *testing.T) {
	im := image.DARPASynthetic()
	for _, conn := range []image.Connectivity{image.Conn4, image.Conn8} {
		want := seq.LabelBFS(im, conn, seq.Binary)
		e := NewEngine(4)
		e.SetAlgo(AlgoRuns)
		got := e.Label(im, conn, seq.Binary)
		requireIdentical(t, got, want, fmt.Sprintf("runs/darpa/%v", conn))
	}
}

// TestAlgoDispatch pins the mode resolution table: Auto and Runs run the
// run engine for Binary; Grey always resolves to BFS (the run table
// carries no colors); BFS is never overridden.
func TestAlgoDispatch(t *testing.T) {
	cases := []struct {
		algo Algo
		mode seq.Mode
		want Algo
	}{
		{AlgoAuto, seq.Binary, AlgoRuns},
		{AlgoAuto, seq.Grey, AlgoBFS},
		{AlgoBFS, seq.Binary, AlgoBFS},
		{AlgoBFS, seq.Grey, AlgoBFS},
		{AlgoRuns, seq.Binary, AlgoRuns},
		{AlgoRuns, seq.Grey, AlgoBFS},
	}
	for _, c := range cases {
		if got := c.algo.effective(c.mode); got != c.want {
			t.Errorf("%v.effective(%v) = %v, want %v", c.algo, c.mode, got, c.want)
		}
	}
}

// TestGreyFallsBackToBFS proves the fallback behaviorally: forcing
// AlgoRuns on a grey image must still produce the grey BFS labeling. The
// run engine would merge differently-colored touching components (it only
// sees foreground bits), so correct grey output is only possible via the
// BFS path.
func TestGreyFallsBackToBFS(t *testing.T) {
	// Two touching bars of different colors: one binary component but two
	// grey components.
	im := image.New(8)
	for i := 0; i < 8; i++ {
		im.Set(i, 2, 1)
		im.Set(i, 3, 2)
	}
	e := NewEngine(3)
	e.SetAlgo(AlgoRuns)
	got := e.Label(im, image.Conn8, seq.Grey)
	want := seq.LabelBFS(im, image.Conn8, seq.Grey)
	requireIdentical(t, got, want, "grey fallback")
	if c := got.Components(); c != 2 {
		t.Fatalf("grey labeling found %d components, want 2", c)
	}

	// And the full DARPA scene, the acceptance case.
	darpa := image.DARPASynthetic()
	wantD := seq.LabelBFS(darpa, image.Conn8, seq.Grey)
	gotD := e.Label(darpa, image.Conn8, seq.Grey)
	requireIdentical(t, gotD, wantD, "grey fallback darpa")
}

// TestParseAlgo checks flag-value parsing and String round-trips.
func TestParseAlgo(t *testing.T) {
	for _, c := range []struct {
		s    string
		want Algo
	}{{"auto", AlgoAuto}, {"", AlgoAuto}, {"bfs", AlgoBFS}, {"runs", AlgoRuns}} {
		got, err := ParseAlgo(c.s)
		if err != nil || got != c.want {
			t.Errorf("ParseAlgo(%q) = %v, %v; want %v", c.s, got, err, c.want)
		}
	}
	if _, err := ParseAlgo("dfs"); err == nil {
		t.Error("ParseAlgo(dfs): want error")
	}
	for _, a := range []Algo{AlgoAuto, AlgoBFS, AlgoRuns} {
		back, err := ParseAlgo(a.String())
		if err != nil || back != a {
			t.Errorf("round-trip %v: got %v, %v", a, back, err)
		}
	}
}

// TestRunEngineReuseAndInto runs one engine across sizes, algorithms and
// dirty outputs to prove the run scratch (bitplane, run tables, union-find)
// resets correctly between calls.
func TestRunEngineReuseAndInto(t *testing.T) {
	e := NewEngine(4)
	e.SetAlgo(AlgoRuns)
	for i, n := range []int{64, 32, 65, 16, 64} {
		im := image.RandomBinary(n, 0.5, uint64(i+1))
		want := seq.LabelBFS(im, image.Conn8, seq.Binary)
		got := e.Label(im, image.Conn8, seq.Binary)
		requireIdentical(t, got, want, fmt.Sprintf("runs reuse case %d", i))

		out := image.NewLabels(n)
		for j := range out.Lab {
			out.Lab[j] = 12345
		}
		comps := e.LabelInto(im, image.Conn8, seq.Binary, out)
		requireIdentical(t, out, want, fmt.Sprintf("runs reuse into case %d", i))
		if wc := want.Components(); comps != wc {
			t.Fatalf("case %d: components = %d, want %d", i, comps, wc)
		}
	}
}

// TestLabelWithPooled exercises the pooled package-level entry point for
// both explicit algorithms.
func TestLabelWithPooled(t *testing.T) {
	im := image.Generate(image.DualSpiral, 96)
	want := seq.LabelBFS(im, image.Conn8, seq.Binary)
	for _, algo := range []Algo{AlgoAuto, AlgoBFS, AlgoRuns} {
		got := LabelWith(algo, im, image.Conn8, seq.Binary)
		requireIdentical(t, got, want, fmt.Sprintf("pooled %v", algo))
	}
}
