package par

import (
	"fmt"
	"testing"

	"parimg/internal/image"
	"parimg/internal/seq"
)

// TestRunLabelMatchesSequentialCatalog checks the forced run engine
// against the sequential reference on all nine Figure 1 patterns x
// {Conn4, Conn8} at several worker counts — exact array compare.
func TestRunLabelMatchesSequentialCatalog(t *testing.T) {
	for _, id := range image.AllPatterns() {
		im := image.Generate(id, 64)
		for _, conn := range []image.Connectivity{image.Conn4, image.Conn8} {
			want := seq.LabelBFS(im, conn, seq.Binary)
			for _, w := range workerCounts {
				e := NewEngine(w)
				e.SetAlgo(AlgoRuns)
				got := e.Label(im, conn, seq.Binary)
				requireIdentical(t, got, want,
					fmt.Sprintf("runs/%v/%v/workers=%d", id, conn, w))
			}
		}
	}
}

// TestRunLabelMatchesSequentialDARPA checks the run engine on the DARPA
// benchmark scene in binary mode (every nonzero grey level is foreground),
// both connectivities.
func TestRunLabelMatchesSequentialDARPA(t *testing.T) {
	im := image.DARPASynthetic()
	for _, conn := range []image.Connectivity{image.Conn4, image.Conn8} {
		want := seq.LabelBFS(im, conn, seq.Binary)
		e := NewEngine(4)
		e.SetAlgo(AlgoRuns)
		got := e.Label(im, conn, seq.Binary)
		requireIdentical(t, got, want, fmt.Sprintf("runs/darpa/%v", conn))
	}
}

// TestAlgoDispatch pins the resolution table: Auto resolves to the run
// engine for every mode — the grey run extractor retired the BFS fallback
// — and only an explicit BFS choice selects the per-pixel path.
func TestAlgoDispatch(t *testing.T) {
	cases := []struct {
		algo Algo
		want Algo
	}{
		{AlgoAuto, AlgoRuns},
		{AlgoBFS, AlgoBFS},
		{AlgoRuns, AlgoRuns},
	}
	for _, c := range cases {
		if got := c.algo.effective(); got != c.want {
			t.Errorf("%v.effective() = %v, want %v", c.algo, got, c.want)
		}
	}
}

// TestGreyRunsMatchesBFS proves the grey run engine behaviorally: touching
// bars of different colors are one binary component but two grey
// components, so correct grey output requires the run table to carry grey
// values through the vertical unites — and the result must still be the
// exact grey BFS labeling.
func TestGreyRunsMatchesBFS(t *testing.T) {
	// Two touching bars of different colors: one binary component but two
	// grey components.
	im := image.New(8)
	for i := 0; i < 8; i++ {
		im.Set(i, 2, 1)
		im.Set(i, 3, 2)
	}
	for _, algo := range []Algo{AlgoAuto, AlgoRuns} {
		e := NewEngine(3)
		e.SetAlgo(algo)
		got := e.Label(im, image.Conn8, seq.Grey)
		want := seq.LabelBFS(im, image.Conn8, seq.Grey)
		requireIdentical(t, got, want, fmt.Sprintf("grey runs %v", algo))
		if c := got.Components(); c != 2 {
			t.Fatalf("grey labeling found %d components, want 2", c)
		}
	}
}

// TestGreyRunsMatchesSequentialDARPA checks the grey run engine on the
// DARPA benchmark scene — the paper's flagship grey workload and the
// acceptance case for retiring the BFS fallback — under Algo auto, both
// connectivities, several worker counts, exact array compare.
func TestGreyRunsMatchesSequentialDARPA(t *testing.T) {
	im := image.DARPASynthetic()
	for _, conn := range []image.Connectivity{image.Conn4, image.Conn8} {
		want := seq.LabelBFS(im, conn, seq.Grey)
		for _, w := range []int{1, 3, 8} {
			e := NewEngine(w)
			got := e.Label(im, conn, seq.Grey)
			requireIdentical(t, got, want, fmt.Sprintf("grey runs darpa/%v/workers=%d", conn, w))
		}
	}
}

// TestGreyRunsMatchesSequentialRandom sweeps the grey run engine across
// random grey images — odd sides, several grey-level counts (including
// k=2, the densest unite case), worker counts spanning the strip-boundary
// cases — against the sequential grey BFS, exact.
func TestGreyRunsMatchesSequentialRandom(t *testing.T) {
	for _, n := range []int{1, 2, 3, 17, 64, 65, 127} {
		for _, k := range []int{2, 8, 256} {
			im := image.RandomGrey(n, k, uint64(n*k))
			want := seq.LabelBFS(im, image.Conn8, seq.Grey)
			for _, w := range workerCounts {
				e := NewEngine(w)
				got := e.Label(im, image.Conn8, seq.Grey)
				requireIdentical(t, got, want,
					fmt.Sprintf("grey runs n=%d k=%d workers=%d", n, k, w))
			}
		}
	}
}

// TestGreyRunsWideLevels covers the full-width fallback inside the grey
// run path: grey levels above 255 cannot be packed into the byte plane
// (they would truncate and alias), so those strips extract runs from the
// raw uint32 pixels. Values are chosen to collide modulo 256, which would
// merge distinct components if the packed bytes were trusted.
func TestGreyRunsWideLevels(t *testing.T) {
	im := image.New(16)
	for i := 0; i < 16; i++ {
		for j := 0; j < 8; j++ {
			im.Set(i, j, 7)
		}
		for j := 8; j < 16; j++ {
			im.Set(i, j, 7+256) // same low byte as 7, different grey level
		}
	}
	for _, w := range []int{1, 4} {
		e := NewEngine(w)
		got := e.Label(im, image.Conn8, seq.Grey)
		want := seq.LabelBFS(im, image.Conn8, seq.Grey)
		requireIdentical(t, got, want, fmt.Sprintf("wide grey workers=%d", w))
		if c := got.Components(); c != 2 {
			t.Fatalf("wide grey labeling found %d components, want 2", c)
		}
	}
}

// TestParseAlgo checks flag-value parsing and String round-trips.
func TestParseAlgo(t *testing.T) {
	for _, c := range []struct {
		s    string
		want Algo
	}{{"auto", AlgoAuto}, {"", AlgoAuto}, {"bfs", AlgoBFS}, {"runs", AlgoRuns}} {
		got, err := ParseAlgo(c.s)
		if err != nil || got != c.want {
			t.Errorf("ParseAlgo(%q) = %v, %v; want %v", c.s, got, err, c.want)
		}
	}
	if _, err := ParseAlgo("dfs"); err == nil {
		t.Error("ParseAlgo(dfs): want error")
	}
	for _, a := range []Algo{AlgoAuto, AlgoBFS, AlgoRuns} {
		back, err := ParseAlgo(a.String())
		if err != nil || back != a {
			t.Errorf("round-trip %v: got %v, %v", a, back, err)
		}
	}
}

// TestRunEngineReuseAndInto runs one engine across sizes, algorithms and
// dirty outputs to prove the run scratch (bitplane, run tables, union-find)
// resets correctly between calls.
func TestRunEngineReuseAndInto(t *testing.T) {
	e := NewEngine(4)
	e.SetAlgo(AlgoRuns)
	for i, n := range []int{64, 32, 65, 16, 64} {
		im := image.RandomBinary(n, 0.5, uint64(i+1))
		want := seq.LabelBFS(im, image.Conn8, seq.Binary)
		got := e.Label(im, image.Conn8, seq.Binary)
		requireIdentical(t, got, want, fmt.Sprintf("runs reuse case %d", i))

		out := image.NewLabels(n)
		for j := range out.Lab {
			out.Lab[j] = 12345
		}
		comps := e.LabelInto(im, image.Conn8, seq.Binary, out)
		requireIdentical(t, out, want, fmt.Sprintf("runs reuse into case %d", i))
		if wc := want.Components(); comps != wc {
			t.Fatalf("case %d: components = %d, want %d", i, comps, wc)
		}
	}
}

// TestLabelWithPooled exercises the pooled package-level entry point for
// both explicit algorithms.
func TestLabelWithPooled(t *testing.T) {
	im := image.Generate(image.DualSpiral, 96)
	want := seq.LabelBFS(im, image.Conn8, seq.Binary)
	for _, algo := range []Algo{AlgoAuto, AlgoBFS, AlgoRuns} {
		got := LabelWith(algo, MergeAuto, im, image.Conn8, seq.Binary)
		requireIdentical(t, got, want, fmt.Sprintf("pooled %v", algo))
	}
}
