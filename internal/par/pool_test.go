package par

import (
	"context"
	"errors"
	"testing"
	"time"

	"parimg/internal/errs"
	"parimg/internal/fault"
	"parimg/internal/fault/leakcheck"
	"parimg/internal/image"
	"parimg/internal/obs"
	"parimg/internal/seq"
)

// TestEngineCloseRejectsCalls checks the Close contract on an idle engine:
// every entry point fails with the typed ErrClosed afterwards, Closed
// reports it, and Close is idempotent.
func TestEngineCloseRejectsCalls(t *testing.T) {
	leakcheck.Check(t)
	im := image.Generate(image.DualSpiral, 32)
	e := NewEngine(2)
	if _, err := e.LabelErr(im, image.Conn8, seq.Binary); err != nil {
		t.Fatalf("label before Close: %v", err)
	}
	if e.Closed() {
		t.Fatal("Closed() true before Close")
	}
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if !e.Closed() {
		t.Fatal("Closed() false after Close")
	}
	if _, err := e.LabelErr(im, image.Conn8, seq.Binary); !errors.Is(err, errs.ErrClosed) {
		t.Fatalf("LabelErr after Close: got %v, want ErrClosed", err)
	}
	if _, err := e.LabelContext(context.Background(), im, image.Conn8, seq.Binary); !errors.Is(err, errs.ErrClosed) {
		t.Fatalf("LabelContext after Close: got %v, want ErrClosed", err)
	}
	if _, err := e.Histogram(im, 2); !errors.Is(err, errs.ErrClosed) {
		t.Fatalf("Histogram after Close: got %v, want ErrClosed", err)
	}
	var re *errs.RunError
	_, err := e.LabelErr(im, image.Conn8, seq.Binary)
	if !errors.As(err, &re) {
		t.Fatalf("post-Close error is %T, want *errs.RunError", err)
	}
}

// TestEngineCloseDrainsInFlight closes an engine while a slowed, cancelable
// run is in flight: the run must unwind at its next checkpoint with
// ErrClosed, and Close must not return before the call has retired (no
// goroutines left behind — leakcheck enforces the monitor joined).
func TestEngineCloseDrainsInFlight(t *testing.T) {
	leakcheck.Check(t)
	im := image.Generate(image.DualSpiral, 64)
	e := NewEngine(2)
	e.SetFaultInjector(fault.New(1, fault.Delay, 1).
		At("strip_label").OnRank(0).WithDelay(300 * time.Millisecond))
	errc := make(chan error, 1)
	go func() {
		_, err := e.LabelContext(context.Background(), im, image.Conn8, seq.Binary)
		errc <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the run enter the injected delay
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := <-errc; !errors.Is(err, errs.ErrClosed) {
		t.Fatalf("in-flight run after Close: got %v, want ErrClosed", err)
	}
}

// TestPoolRentReturn checks the rental cycle: a returned engine is reused,
// and Return scrubs every piece of per-renter configuration.
func TestPoolRentReturn(t *testing.T) {
	p := NewPool(2)
	if p.Workers() != 2 {
		t.Fatalf("Workers() = %d, want 2", p.Workers())
	}
	a, err := p.Rent()
	if err != nil {
		t.Fatalf("Rent: %v", err)
	}
	b, err := p.Rent()
	if err != nil {
		t.Fatalf("second Rent: %v", err)
	}
	if a == b {
		t.Fatal("two concurrent rentals returned the same engine")
	}
	// Dirty every per-renter knob, then return.
	a.SetAlgo(AlgoBFS)
	a.SetMerge(MergeSV)
	a.SetObserver(obs.NewRecorder())
	a.SetFaultInjector(fault.New(1, fault.Panic, 1))
	p.Return(a)
	p.Return(b)
	if p.Idle() != 2 {
		t.Fatalf("Idle() = %d after two returns, want 2", p.Idle())
	}
	c, err := p.Rent()
	if err != nil {
		t.Fatalf("Rent after Return: %v", err)
	}
	if c != a && c != b {
		t.Fatal("Rent after Return did not reuse a pooled engine")
	}
	if c.Algo() != AlgoAuto || c.Merge() != MergeAuto || c.Observer() != nil || c.fault != nil {
		t.Fatalf("rented engine not scrubbed: algo=%v merge=%v obs=%v fault=%v",
			c.Algo(), c.Merge(), c.Observer(), c.fault)
	}
	im := image.Generate(image.DualSpiral, 32)
	got, err := c.LabelErr(im, image.Conn8, seq.Binary)
	if err != nil {
		t.Fatalf("label on rented engine: %v", err)
	}
	requireIdentical(t, got, seq.LabelBFS(im, image.Conn8, seq.Binary), "rented engine")
}

// TestPoolClose checks pool shutdown: Rent fails typed, idle engines are
// closed, a late Return closes the straggler instead of pooling it, and a
// closed engine handed to Return is dropped rather than recycled.
func TestPoolClose(t *testing.T) {
	leakcheck.Check(t)
	p := NewPool(1)
	out, err := p.Rent() // still rented when the pool closes
	if err != nil {
		t.Fatalf("Rent: %v", err)
	}
	idle, err := p.Rent()
	if err != nil {
		t.Fatalf("second Rent: %v", err)
	}
	p.Return(idle)
	if err := p.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if !idle.Closed() {
		t.Fatal("idle engine not closed by pool Close")
	}
	if _, err := p.Rent(); !errors.Is(err, errs.ErrClosed) {
		t.Fatalf("Rent after Close: got %v, want ErrClosed", err)
	}
	if out.Closed() {
		t.Fatal("rented-out engine closed while still rented")
	}
	p.Return(out)
	if !out.Closed() {
		t.Fatal("Return after pool Close did not close the engine")
	}
	if p.Idle() != 0 {
		t.Fatalf("Idle() = %d after Close, want 0", p.Idle())
	}
	p.Return(out) // closed engine: must be dropped, not pooled
	if p.Idle() != 0 {
		t.Fatalf("closed engine was pooled: Idle() = %d", p.Idle())
	}
	p.Return(nil) // and nil must be a no-op
}
