package par

import (
	"context"
	"fmt"

	"parimg/internal/errs"
	"parimg/internal/image"
)

// Histogram computes the k-bucket histogram of im with the engine's
// workers: per-worker sharded tallies of one strip each, merged pairwise in
// a tree of log(workers) parallel rounds. Pixels with grey level >= k are
// an error, as in the sequential baseline.
func (e *Engine) Histogram(im *image.Image, k int) ([]int64, error) {
	return e.HistogramContext(nil, im, k)
}

// HistogramContext is Histogram with cooperative cancellation: when ctx is
// canceled or its deadline expires, the workers stop at their next
// checkpoint (inside the tally strips and between tree-merge rounds) and
// the call returns an error wrapping errs.ErrCanceled or errs.ErrDeadline.
// A nil ctx disables cancellation at no cost.
func (e *Engine) HistogramContext(ctx context.Context, im *image.Image, k int) ([]int64, error) {
	if k < 1 {
		return nil, errs.GreyRange("par.Histogram", k, "histogram needs at least 1 bucket, got %d", k)
	}
	h := make([]int64, k)
	if err := e.HistogramIntoContext(ctx, im, h); err != nil {
		return nil, err
	}
	return h, nil
}

// HistogramInto tallies im into h (len(h) buckets), overwriting it. A
// malformed image, an empty bucket slice or a pixel with grey level >=
// len(h) returns a typed error from the errs taxonomy.
func (e *Engine) HistogramInto(im *image.Image, h []int64) error {
	return e.HistogramIntoContext(nil, im, h)
}

// HistogramIntoContext is HistogramInto with cooperative cancellation; see
// HistogramContext for the error contract. On a run error the contents of
// h are undefined — callers must discard them.
func (e *Engine) HistogramIntoContext(ctx context.Context, im *image.Image, h []int64) error {
	k := len(h)
	if k < 1 {
		return errs.GreyRange("par.Histogram", k, "histogram needs at least 1 bucket")
	}
	if err := im.Check(); err != nil {
		return fmt.Errorf("par: %w", err)
	}
	if err := e.begin("par.Histogram", ctx); err != nil {
		return err
	}
	defer e.end()
	n := im.N
	W := e.stripCount(n)

	// Shard tally: each worker counts its strip into its own k buckets.
	e.phase("tally", func() {
		e.parallelDo(W, func(w int) {
			e.checkFault("tally", w, 1)
			shard := e.shards[w]
			if cap(shard) < k {
				shard = make([]int64, k)
				e.shards[w] = shard
			}
			shard = shard[:k]
			for i := range shard {
				shard[i] = 0
			}
			e.errs[w] = nil
			r0, r1 := stripBounds(w, W, n)
			for i, v := range im.Pix[r0*n : r1*n] {
				if i&16383 == 0 && e.cancelable && e.stop.Load() {
					return
				}
				if int(v) >= k {
					e.errs[w] = errs.GreyRange("par.Histogram", k,
						"grey level %d outside [0,%d)", v, k)
					return
				}
				shard[v]++
			}
		})
	})
	if err := e.runError(); err != nil {
		return err
	}
	for w := 0; w < W; w++ {
		if e.errs[w] != nil {
			return e.errs[w]
		}
	}

	// Tree merge: in round s, shard i absorbs shard i+s for every i that
	// is a multiple of 2s — log2(W) parallel rounds, the shared-memory
	// analogue of the paper's transpose+combine rearrangement. Each round
	// is a cancellation checkpoint: a round either completes on every
	// merger or the run stops on a round boundary, so partial sums never
	// mix into a returned histogram.
	e.phase("tree_merge", func() {
		round := 1
		for stride := 1; stride < W; stride *= 2 {
			if e.interrupted() {
				return
			}
			step := 2 * stride
			mergers := (W - stride + step - 1) / step
			r := round
			e.parallelDo(mergers, func(m int) {
				e.checkFault("tree_merge", m, r)
				lo := m * step
				hi := lo + stride
				dst, src := e.shards[lo][:k], e.shards[hi][:k]
				for i := range dst {
					dst[i] += src[i]
				}
			})
			round++
		}
	})
	if err := e.runError(); err != nil {
		return err
	}
	copy(h, e.shards[0][:k])
	return nil
}
