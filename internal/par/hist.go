package par

import (
	"fmt"

	"parimg/internal/errs"
	"parimg/internal/image"
)

// Histogram computes the k-bucket histogram of im with the engine's
// workers: per-worker sharded tallies of one strip each, merged pairwise in
// a tree of log(workers) parallel rounds. Pixels with grey level >= k are
// an error, as in the sequential baseline.
func (e *Engine) Histogram(im *image.Image, k int) ([]int64, error) {
	if k < 1 {
		return nil, errs.GreyRange("par.Histogram", k, "histogram needs at least 1 bucket, got %d", k)
	}
	h := make([]int64, k)
	if err := e.HistogramInto(im, h); err != nil {
		return nil, err
	}
	return h, nil
}

// HistogramInto tallies im into h (len(h) buckets), overwriting it. A
// malformed image, an empty bucket slice or a pixel with grey level >=
// len(h) returns a typed error from the errs taxonomy.
func (e *Engine) HistogramInto(im *image.Image, h []int64) error {
	k := len(h)
	if k < 1 {
		return errs.GreyRange("par.Histogram", k, "histogram needs at least 1 bucket")
	}
	if err := im.Check(); err != nil {
		return fmt.Errorf("par: %w", err)
	}
	n := im.N
	W := e.stripCount(n)

	// Shard tally: each worker counts its strip into its own k buckets.
	e.phase("tally", func() {
		parallelDo(W, func(w int) {
			shard := e.shards[w]
			if cap(shard) < k {
				shard = make([]int64, k)
				e.shards[w] = shard
			}
			shard = shard[:k]
			for i := range shard {
				shard[i] = 0
			}
			e.errs[w] = nil
			r0, r1 := stripBounds(w, W, n)
			for _, v := range im.Pix[r0*n : r1*n] {
				if int(v) >= k {
					e.errs[w] = errs.GreyRange("par.Histogram", k,
						"grey level %d outside [0,%d)", v, k)
					return
				}
				shard[v]++
			}
		})
	})
	for w := 0; w < W; w++ {
		if e.errs[w] != nil {
			return e.errs[w]
		}
	}

	// Tree merge: in round s, shard i absorbs shard i+s for every i that
	// is a multiple of 2s — log2(W) parallel rounds, the shared-memory
	// analogue of the paper's transpose+combine rearrangement.
	e.phase("tree_merge", func() {
		for stride := 1; stride < W; stride *= 2 {
			step := 2 * stride
			mergers := (W - stride + step - 1) / step
			parallelDo(mergers, func(m int) {
				lo := m * step
				hi := lo + stride
				dst, src := e.shards[lo][:k], e.shards[hi][:k]
				for i := range dst {
					dst[i] += src[i]
				}
			})
		}
	})
	copy(h, e.shards[0][:k])
	return nil
}
