package par

import (
	"math/rand"
	"sync"
	"testing"
)

// refDSU is a plain sequential disjoint-set used as the oracle for the
// concurrent structure's canonicality property.
type refDSU struct{ parent []uint32 }

func newRefDSU(size int) *refDSU {
	d := &refDSU{parent: make([]uint32, size)}
	for i := range d.parent {
		d.parent[i] = uint32(i)
	}
	return d
}

func (d *refDSU) find(x uint32) uint32 {
	for d.parent[x] != x {
		d.parent[x] = d.parent[d.parent[x]]
		x = d.parent[x]
	}
	return x
}

func (d *refDSU) unite(a, b uint32) {
	ra, rb := d.find(a), d.find(b)
	if ra > rb {
		ra, rb = rb, ra
	}
	d.parent[rb] = ra
}

// randomEdges builds m edges over labels 1..size-1 (label 0 is the cuf
// background sentinel and never participates).
func randomEdges(rng *rand.Rand, size, m int) []uint32 {
	edges := make([]uint32, 0, 2*m)
	for i := 0; i < m; i++ {
		a := uint32(1 + rng.Intn(size-1))
		b := uint32(1 + rng.Intn(size-1))
		edges = append(edges, a, b)
	}
	return edges
}

// checkCanonical asserts that for every label the concurrent structure's
// root equals the reference component minimum — the unite-by-minimum
// canonicality guarantee the relabel phase depends on.
func checkCanonical(t *testing.T, u *cuf, edges []uint32, size int, ctx string) {
	t.Helper()
	ref := newRefDSU(size)
	for k := 0; k+1 < len(edges); k += 2 {
		ref.unite(edges[k], edges[k+1])
	}
	for x := uint32(1); x < uint32(size); x++ {
		if got, want := u.find(x), ref.find(x); got != want {
			t.Fatalf("%s: find(%d) = %d, want component minimum %d", ctx, x, got, want)
		}
	}
}

// checkCleared drives the real cleanup contract: each worker clears exactly
// its own edge slab, after which the whole array must be back to all-zero —
// the endpoint-coverage invariant that lets the engine skip an O(n^2) reset.
func checkCleared(t *testing.T, u *cuf, slabs [][]uint32, ctx string) {
	t.Helper()
	var wg sync.WaitGroup
	for _, slab := range slabs {
		wg.Add(1)
		go func(s []uint32) {
			defer wg.Done()
			u.clear(s)
		}(slab)
	}
	wg.Wait()
	for i, p := range u.parent {
		if p != 0 {
			t.Fatalf("%s: parent[%d] = %d after concurrent clear, want all-zero", ctx, i, p)
		}
	}
}

// splitSlabs deals edges round-robin into w per-worker slabs, mirroring how
// the engine partitions boundary edges.
func splitSlabs(edges []uint32, w int) [][]uint32 {
	slabs := make([][]uint32, w)
	for k := 0; k+1 < len(edges); k += 2 {
		i := (k / 2) % w
		slabs[i] = append(slabs[i], edges[k], edges[k+1])
	}
	return slabs
}

// TestCufConcurrentUniteCanonical hammers unite from several goroutines and
// checks the roots against the sequential oracle, then the clear coverage.
// Run under -race this also proves the tree backend's memory safety.
func TestCufConcurrentUniteCanonical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		size := 64 + rng.Intn(512)
		edges := randomEdges(rng, size, size/2+rng.Intn(2*size))
		workers := 2 + rng.Intn(6)
		slabs := splitSlabs(edges, workers)

		var u cuf
		u.reset(size)
		var wg sync.WaitGroup
		for _, slab := range slabs {
			wg.Add(1)
			go func(s []uint32) {
				defer wg.Done()
				for k := 0; k+1 < len(s); k += 2 {
					u.Unite(s[k], s[k+1])
				}
			}(slab)
		}
		wg.Wait()
		checkCanonical(t, &u, edges, size, "unite")
		checkCleared(t, &u, slabs, "unite")
	}
}

// TestCufConcurrentHookShortcutCanonical runs the same property through the
// Shiloach-Vishkin primitives the sv backend composes: synchronized rounds
// of hookMin over each worker's slab followed by shortcut over its
// endpoints, until no worker changed anything. At convergence every label
// must resolve to its component minimum, and clearing the slabs must
// restore the all-zero state — the endpoint-coverage invariant for hooks
// and shortcuts.
func TestCufConcurrentHookShortcutCanonical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		size := 64 + rng.Intn(512)
		edges := randomEdges(rng, size, size/2+rng.Intn(2*size))
		workers := 2 + rng.Intn(6)
		slabs := splitSlabs(edges, workers)

		var u cuf
		u.reset(size)
		changed := make([]bool, workers)
		for round := 0; ; round++ {
			if round > size {
				t.Fatalf("no convergence after %d rounds", round)
			}
			var wg sync.WaitGroup
			for w, slab := range slabs {
				wg.Add(1)
				go func(w int, s []uint32) {
					defer wg.Done()
					ch := false
					for k := 0; k+1 < len(s); k += 2 {
						a, b := u.step(s[k]), u.step(s[k+1])
						if a == b {
							continue
						}
						if a > b {
							a, b = b, a
						}
						if _, ok := u.hookMin(b, a); ok {
							ch = true
						}
					}
					for _, x := range s {
						if u.shortcut(x) {
							ch = true
						}
					}
					changed[w] = ch
				}(w, slab)
			}
			wg.Wait()
			any := false
			for w := range changed {
				any = any || changed[w]
				changed[w] = false
			}
			if !any {
				break
			}
		}
		checkCanonical(t, &u, edges, size, "hook/shortcut")
		checkCleared(t, &u, slabs, "hook/shortcut")
	}
}

// TestCufMixedBackendsAgree interleaves both linking disciplines on the
// same instance — some workers running unite, others hook/shortcut rounds —
// and still requires canonical minima. The engine never mixes backends in
// one merge, but both preserve the strictly-decreasing-parents invariant,
// so their composition must too; this is the strongest cheap check that
// neither primitive depends on having the array to itself.
func TestCufMixedBackendsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 10; trial++ {
		size := 128 + rng.Intn(256)
		edges := randomEdges(rng, size, 2*size)
		slabs := splitSlabs(edges, 4)

		var u cuf
		u.reset(size)
		var wg sync.WaitGroup
		for w, slab := range slabs {
			wg.Add(1)
			go func(w int, s []uint32) {
				defer wg.Done()
				if w%2 == 0 {
					for k := 0; k+1 < len(s); k += 2 {
						u.Unite(s[k], s[k+1])
					}
					return
				}
				// Hook/shortcut workers loop rounds locally until their
				// slab stops changing; unite workers guarantee global
				// progress meanwhile.
				for {
					ch := false
					for k := 0; k+1 < len(s); k += 2 {
						a, b := u.step(s[k]), u.step(s[k+1])
						if a == b {
							continue
						}
						if a > b {
							a, b = b, a
						}
						if _, ok := u.hookMin(b, a); ok {
							ch = true
						}
					}
					for _, x := range s {
						if u.shortcut(x) {
							ch = true
						}
					}
					if !ch {
						return
					}
				}
			}(w, slab)
		}
		wg.Wait()
		// The mixed run may stop with hook workers converged relative to a
		// state unite workers then advanced; finish deterministically so
		// the oracle comparison is well-defined.
		for k := 0; k+1 < len(edges); k += 2 {
			u.Unite(edges[k], edges[k+1])
		}
		checkCanonical(t, &u, edges, size, "mixed")
		checkCleared(t, &u, slabs, "mixed")
	}
}
