package par

import (
	"fmt"
	"testing"

	"parimg/internal/image"
	"parimg/internal/obs"
	"parimg/internal/seq"
)

// TestParseMerge pins the -merge flag grammar and the String round trip.
func TestParseMerge(t *testing.T) {
	cases := []struct {
		in   string
		want Merge
	}{{"auto", MergeAuto}, {"", MergeAuto}, {"tree", MergeTree}, {"sv", MergeSV}}
	for _, c := range cases {
		got, err := ParseMerge(c.in)
		if err != nil || got != c.want {
			t.Fatalf("ParseMerge(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
	}
	if _, err := ParseMerge("bogus"); err == nil {
		t.Fatal("ParseMerge(bogus) succeeded")
	}
	for _, m := range []Merge{MergeAuto, MergeTree, MergeSV} {
		back, err := ParseMerge(m.String())
		if err != nil || back != m {
			t.Fatalf("round trip %v -> %q -> %v, %v", m, m.String(), back, err)
		}
	}
	if Merge(99).String() != "Merge(99)" {
		t.Fatalf("unknown merge String = %q", Merge(99).String())
	}
}

// TestMergeBackendsMatchSequentialCatalog is the pixel-identity pin of the
// merge axis: every merge backend x strip algorithm x connectivity x mode x
// worker split must reproduce seq.LabelBFS exactly on the nine Figure 1
// patterns.
func TestMergeBackendsMatchSequentialCatalog(t *testing.T) {
	for _, id := range image.AllPatterns() {
		im := image.Generate(id, 64)
		for _, conn := range []image.Connectivity{image.Conn4, image.Conn8} {
			for _, mode := range []seq.Mode{seq.Binary, seq.Grey} {
				want := seq.LabelBFS(im, conn, mode)
				for _, w := range []int{2, 3, 7, 64} {
					for _, merge := range []Merge{MergeTree, MergeSV, MergeAuto} {
						for _, algo := range []Algo{AlgoBFS, AlgoRuns} {
							e := NewEngine(w)
							e.SetAlgo(algo)
							e.SetMerge(merge)
							got := e.Label(im, conn, mode)
							requireIdentical(t, got, want, fmt.Sprintf(
								"%v/%v/%v/w=%d/%v/%v", id, conn, mode, w, merge, algo))
						}
					}
				}
			}
		}
	}
}

// TestMergeBackendsDARPA pins the merge axis on the grey benchmark scene in
// both modes.
func TestMergeBackendsDARPA(t *testing.T) {
	im := image.DARPASynthetic()
	for _, mode := range []seq.Mode{seq.Binary, seq.Grey} {
		want := seq.LabelBFS(im, image.Conn8, mode)
		for _, merge := range []Merge{MergeTree, MergeSV} {
			for _, algo := range []Algo{AlgoBFS, AlgoRuns} {
				e := NewEngine(4)
				e.SetAlgo(algo)
				e.SetMerge(merge)
				got := e.Label(im, image.Conn8, mode)
				requireIdentical(t, got, want, fmt.Sprintf("darpa/%v/%v/%v", mode, merge, algo))
			}
		}
	}
}

// stripedImage returns an n x n binary image of single-pixel vertical
// columns — the densest possible strip boundary: every other boundary
// pixel starts a cross-boundary edge.
func stripedImage(n int) *image.Image {
	im := image.New(n)
	for i := 0; i < n; i++ {
		for j := 1; j < n; j += 2 {
			im.Pix[i*n+j] = 1
		}
	}
	return im
}

// TestAutoMergePicksByDensity pins the MergeAuto heuristic through the
// sv_rounds counter: a boundary with an edge every other pixel resolves
// with the Shiloach-Vishkin rounds, a two-component blob boundary with the
// tree.
func TestAutoMergePicksByDensity(t *testing.T) {
	svCounter := func(im *image.Image) int64 {
		e := NewEngine(4)
		e.SetMerge(MergeAuto)
		rec := obs.NewRecorder()
		e.SetObserver(rec)
		out := image.NewLabels(im.N)
		e.LabelInto(im, image.Conn8, seq.Binary, out)
		if rec.Counter(obs.CtrBorderEdges) == 0 {
			t.Fatal("no boundary edges recorded")
		}
		return rec.Counter(obs.CtrSVRounds)
	}
	if rounds := svCounter(stripedImage(64)); rounds == 0 {
		t.Error("dense striped boundary resolved by the tree backend, want sv rounds")
	}
	// A filled disc crosses each boundary as one wide overlap: one edge
	// per boundary after dedup, far below the density threshold.
	if rounds := svCounter(image.Generate(image.FilledDisc, 64)); rounds != 0 {
		t.Errorf("sparse disc boundary ran %d sv rounds, want the tree backend", rounds)
	}
}

// TestMergeCountersAndCleanup pins the SV backend's accounting and its
// cleanup contract: forced MergeSV records at least one round and the same
// component count as the tree, and after the run the union-find is back in
// its all-zero ready state (the per-worker edge slabs double as the dirty
// lists, so every hooked or shortcut entry must be covered).
func TestMergeCountersAndCleanup(t *testing.T) {
	im := stripedImage(96)
	want := seq.LabelBFS(im, image.Conn8, seq.Binary)
	for _, merge := range []Merge{MergeTree, MergeSV} {
		e := NewEngine(5)
		e.SetMerge(merge)
		rec := obs.NewRecorder()
		e.SetObserver(rec)
		out := image.NewLabels(im.N)
		comps := e.LabelInto(im, image.Conn8, seq.Binary, out)
		requireIdentical(t, out, want, merge.String())
		if got := int(rec.Counter(obs.CtrStripComponents) - rec.Counter(obs.CtrBorderLinks)); got != comps {
			t.Errorf("%v: strip_components - border_links = %d, want %d", merge, got, comps)
		}
		rounds := rec.Counter(obs.CtrSVRounds)
		if merge == MergeSV && rounds == 0 {
			t.Errorf("forced sv recorded no rounds")
		}
		if merge == MergeTree && rounds != 0 {
			t.Errorf("tree backend recorded %d sv rounds", rounds)
		}
		if rec.Counter(obs.CtrBorderEdges) == 0 || rec.Counter(obs.CtrBorderPairs) < rec.Counter(obs.CtrBorderEdges) {
			t.Errorf("%v: pairs %d, edges %d — want pairs >= edges > 0", merge,
				rec.Counter(obs.CtrBorderPairs), rec.Counter(obs.CtrBorderEdges))
		}
		for i, p := range e.uf.parent {
			if p != 0 {
				t.Fatalf("%v: union-find entry %d = %d after the run, want the all-zero ready state", merge, i, p)
			}
		}
	}
}

// TestEngineReuseAcrossMergeBackends alternates backends on one engine to
// prove the merge scratch (edge slabs, changed flags, round counts) resets
// between runs.
func TestEngineReuseAcrossMergeBackends(t *testing.T) {
	e := NewEngine(4)
	for i, merge := range []Merge{MergeSV, MergeTree, MergeSV, MergeAuto, MergeTree} {
		n := 48 + 16*(i%2)
		im := image.Generate(image.DualSpiral, n)
		want := seq.LabelBFS(im, image.Conn8, seq.Binary)
		e.SetMerge(merge)
		got := e.Label(im, image.Conn8, seq.Binary)
		requireIdentical(t, got, want, fmt.Sprintf("reuse %d (%v)", i, merge))
	}
}
