package par

import (
	"fmt"
	"testing"

	"parimg/internal/image"
	"parimg/internal/obs"
	"parimg/internal/seq"
)

// TestLabelRecordsPhasesAndCounters verifies the measured side of the
// observability layer: with a recorder installed, LabelInto reports the
// wall-clock phases of the strip algorithm and operation counts consistent
// with the labeling it produced.
func TestLabelRecordsPhasesAndCounters(t *testing.T) {
	im := image.Generate(image.DualSpiral, 64)
	out := image.NewLabels(64)
	for _, algo := range []Algo{AlgoBFS, AlgoRuns} {
		for _, w := range []int{1, 4} {
			t.Run(fmt.Sprintf("%v/workers=%d", algo, w), func(t *testing.T) {
				e := NewEngine(w)
				e.SetAlgo(algo)
				r := obs.NewRecorder()
				e.SetObserver(r)
				comps := e.LabelInto(im, image.Conn8, seq.Binary, out)

				m := r.Snapshot()
				if err := m.Validate(); err != nil {
					t.Fatal(err)
				}
				want := []string{"strip_label"}
				if w > 1 {
					want = append(want, "border_merge", "relabel", "cleanup")
				}
				for _, name := range want {
					found := false
					for _, ph := range m.Phases {
						if ph.Name == name {
							found = true
							if ph.WallNS < 0 {
								t.Errorf("phase %s has negative wall time", name)
							}
						}
					}
					if !found {
						t.Errorf("phase %s not recorded (got %+v)", name, m.Phases)
					}
				}
				if got := m.Counters["strip_components"]; got < int64(comps) {
					t.Errorf("strip_components = %d, want >= %d", got, comps)
				}
				if w > 1 {
					stripComps := m.Counters["strip_components"]
					links := m.Counters["border_links"]
					if int(stripComps-links) != comps {
						t.Errorf("components: strips %d - links %d != %d",
							stripComps, links, comps)
					}
					if m.Counters["uf_finds"] == 0 {
						t.Error("uf_finds not counted")
					}
				}
				if algo == AlgoRuns && m.Counters["runs"] == 0 {
					t.Error("runs not counted on the run engine")
				}
			})
		}
	}
}

// TestGreyLabelCountsGreyRuns verifies the grey run engine tallies its
// extracted runs under the dedicated grey_runs counter — distinct from the
// binary runs counter, so a metrics reader can tell which extractor ran —
// and that the binary counter stays untouched in Grey mode.
func TestGreyLabelCountsGreyRuns(t *testing.T) {
	im := image.RandomGrey(64, 8, 5)
	out := image.NewLabels(64)
	for _, w := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
			e := NewEngine(w)
			r := obs.NewRecorder()
			e.SetObserver(r)
			e.LabelInto(im, image.Conn8, seq.Grey, out)
			m := r.Snapshot()
			if m.Counters["grey_runs"] == 0 {
				t.Errorf("grey_runs not counted: %+v", m.Counters)
			}
			if m.Counters["runs"] != 0 {
				t.Errorf("binary runs counter hit in grey mode: %+v", m.Counters)
			}
		})
	}
}

// TestHistogramRecordsPhases covers the histogram phase marks.
func TestHistogramRecordsPhases(t *testing.T) {
	im := image.RandomGrey(64, 16, 7)
	e := NewEngine(4)
	r := obs.NewRecorder()
	e.SetObserver(r)
	if _, err := e.Histogram(im, 16); err != nil {
		t.Fatal(err)
	}
	m := r.Snapshot()
	if got := m.WallPhaseNS("tally", "tree_merge"); got <= 0 {
		t.Fatalf("histogram phases not timed: %+v", m.Phases)
	}
}

// TestObserverOffLeavesNoTrace pins that running with the observer removed
// records nothing into a previously installed recorder.
func TestObserverOffLeavesNoTrace(t *testing.T) {
	im := image.Generate(image.Cross, 32)
	out := image.NewLabels(32)
	e := NewEngine(2)
	r := obs.NewRecorder()
	e.SetObserver(r)
	e.LabelInto(im, image.Conn8, seq.Binary, out)
	e.SetObserver(nil)
	r.Reset()
	e.LabelInto(im, image.Conn8, seq.Binary, out)
	m := r.Snapshot()
	if len(m.Phases) != 0 || len(m.Counters) != 0 {
		t.Fatalf("observer off still recorded: %+v", m)
	}
}
