package par

import (
	"errors"
	"testing"

	"parimg/internal/errs"
	"parimg/internal/image"
	"parimg/internal/seq"
)

// TestLabelErrRejectsOversizedImages pins the seed-label overflow guard: at
// n = 65536 the seed label of the last pixel, uint32(n*n-1)+1, wraps to 0,
// so LabelErr must refuse anything beyond image.MaxSide with
// ErrLabelOverflow instead of producing a silently corrupt labeling.
func TestLabelErrRejectsOversizedImages(t *testing.T) {
	im := &image.Image{N: image.MaxSide + 1} // nil Pix: never dereferenced
	e := NewEngine(2)
	if _, err := e.LabelErr(im, image.Conn8, seq.Binary); !errors.Is(err, errs.ErrLabelOverflow) {
		t.Fatalf("LabelErr(n=%d) = %v, want ErrLabelOverflow", im.N, err)
	}
	if _, err := LabelWithErr(AlgoAuto, MergeAuto, im, image.Conn8, seq.Binary); !errors.Is(err, errs.ErrLabelOverflow) {
		t.Fatalf("LabelWithErr(n=%d) = %v, want ErrLabelOverflow", im.N, err)
	}
}

func TestLabelErrInputValidation(t *testing.T) {
	e := NewEngine(2)
	good := image.GenCross(16)
	if _, err := e.LabelErr(nil, image.Conn8, seq.Binary); !errors.Is(err, errs.ErrBadInput) {
		t.Errorf("nil image: %v", err)
	}
	if _, err := e.LabelErr(&image.Image{N: 4, Pix: make([]uint32, 3)}, image.Conn8, seq.Binary); !errors.Is(err, errs.ErrGeometry) {
		t.Errorf("short buffer: %v", err)
	}
	if _, err := e.LabelErr(good, image.Connectivity(3), seq.Binary); !errors.Is(err, errs.ErrBadInput) {
		t.Errorf("bad connectivity: %v", err)
	}
	if _, err := e.LabelErr(good, image.Conn8, seq.Mode(9)); !errors.Is(err, errs.ErrBadInput) {
		t.Errorf("bad mode: %v", err)
	}
	if _, err := e.LabelIntoErr(good, image.Conn8, seq.Binary, image.NewLabels(8)); !errors.Is(err, errs.ErrGeometry) {
		t.Errorf("mismatched labeling side: %v", err)
	}
	out, err := e.LabelErr(good, image.Conn8, seq.Binary)
	if err != nil {
		t.Fatalf("valid input: %v", err)
	}
	want := seq.LabelBFS(good, image.Conn8, seq.Binary)
	for i := range want.Lab {
		if out.Lab[i] != want.Lab[i] {
			t.Fatalf("pixel %d: %d, want %d", i, out.Lab[i], want.Lab[i])
		}
	}
}

func TestHistogramTypedErrors(t *testing.T) {
	e := NewEngine(2)
	if _, err := e.Histogram(image.GenCross(16), 0); !errors.Is(err, errs.ErrGreyRange) {
		t.Errorf("k=0: %v", err)
	}
	if err := e.HistogramInto(nil, make([]int64, 4)); !errors.Is(err, errs.ErrBadInput) {
		t.Errorf("nil image: %v", err)
	}
	im := image.RandomGrey(16, 8, 1)
	if _, err := e.Histogram(im, 4); !errors.Is(err, errs.ErrGreyRange) {
		t.Errorf("grey out of range: %v", err)
	}
}
