package par

import (
	"testing"

	"parimg/internal/image"
	"parimg/internal/seq"
)

// FuzzRunLabelMatchesBFS asserts the run engine's labeling is byte-
// identical to seq.LabelBFS on arbitrary images in both modes, across
// Conn4/Conn8, worker counts 1-8 and both border-merge backends (the
// union-find tree and the Shiloach-Vishkin rounds run on every input). The image side, connectivity, worker
// count and mode are fuzzed alongside the pixel data. In binary mode the
// data is consumed one bit per pixel so the fuzzer controls the exact run
// structure (word-boundary runs, alternating columns, solid blocks); in
// grey mode it is consumed one byte per pixel so the fuzzer controls the
// grey-level boundaries the run extractor and the touching-run unite sweep
// must respect, and every 255 is lifted past a byte to also drive the
// wide-strip full-width fallback. The seeded corpus (f.Add plus
// testdata/fuzz) doubles as a regression test under plain `go test`; run
// `go test -fuzz FuzzRunLabelMatchesBFS ./internal/par` to explore.
func FuzzRunLabelMatchesBFS(f *testing.F) {
	f.Add(uint8(1), false, uint8(1), false, []byte{0x01})
	f.Add(uint8(8), true, uint8(3), false, []byte{0xff, 0x00, 0xaa, 0x55, 0x0f, 0xf0, 0x81, 0x7e})
	f.Add(uint8(16), false, uint8(4), false, []byte{0xde, 0xad, 0xbe, 0xef, 0x01, 0x80})
	f.Add(uint8(65), true, uint8(8), false, []byte{0xff})                   // side straddles a word boundary
	f.Add(uint8(33), true, uint8(2), false, []byte{0x55, 0x55, 0x55, 0x55}) // alternating columns
	f.Add(uint8(12), false, uint8(7), false, []byte{})
	// Grey seeds: touching runs of distinct levels, a word-boundary level
	// change, and a wide (255 -> 511) level next to its low-byte alias.
	f.Add(uint8(4), true, uint8(2), true, []byte{5, 5, 0, 0, 7, 7, 5, 5, 1, 2, 1, 2, 2, 2, 2, 2})
	f.Add(uint8(9), false, uint8(3), true, []byte{1, 1, 1, 1, 1, 1, 1, 1, 2})
	f.Add(uint8(2), true, uint8(1), true, []byte{255, 0, 255, 1})
	f.Fuzz(func(t *testing.T, side uint8, conn8 bool, workers uint8, grey bool, bits []byte) {
		n := int(side)%80 + 1
		w := int(workers)%8 + 1
		conn := image.Conn4
		if conn8 {
			conn = image.Conn8
		}
		mode := seq.Binary
		im := image.New(n)
		if grey {
			mode = seq.Grey
			if len(bits) > 0 {
				for i := range im.Pix {
					v := uint32(bits[i%len(bits)])
					if v == 255 {
						v += 256 // exceeds a byte: forces the wide fallback
					}
					im.Pix[i] = v
				}
			}
		} else if len(bits) > 0 {
			for i := range im.Pix {
				if bits[(i/8)%len(bits)]>>(uint(i)%8)&1 != 0 {
					im.Pix[i] = 1
				}
			}
		}
		want := seq.LabelBFS(im, conn, mode)
		for _, merge := range []Merge{MergeTree, MergeSV} {
			e := NewEngine(w)
			e.SetAlgo(AlgoRuns)
			e.SetMerge(merge)
			got := e.Label(im, conn, mode)
			for i := range want.Lab {
				if got.Lab[i] != want.Lab[i] {
					t.Fatalf("n=%d conn=%v workers=%d grey=%v merge=%v: pixel %d: got %d, want %d",
						n, conn, w, grey, merge, i, got.Lab[i], want.Lab[i])
				}
			}
		}
	})
}

// FuzzGreyRunLabelMatchesBFS is the grey-focused leg: every input is a
// grey image with one byte per pixel, so all fuzzing effort goes into
// grey-level boundaries — touching runs of distinct levels, diagonal
// adjacency across touching pairs under Conn8, word-boundary level changes
// — instead of splitting time with binary inputs. Zero bytes are
// background; a 255 is lifted past a byte so the wide-strip fallback stays
// under fuzz too.
func FuzzGreyRunLabelMatchesBFS(f *testing.F) {
	f.Add(uint8(3), true, uint8(1), []byte{5, 5, 0, 0, 7, 7, 5, 5, 1, 2, 1, 2, 2, 2, 2, 2})
	f.Add(uint8(7), false, uint8(4), []byte{1, 1, 1, 1, 1, 1, 1, 1, 2, 3})
	f.Add(uint8(64), true, uint8(8), []byte{255, 1, 255, 0})
	f.Add(uint8(16), true, uint8(2), []byte{})
	f.Fuzz(func(t *testing.T, side uint8, conn8 bool, workers uint8, greys []byte) {
		n := int(side)%80 + 1
		w := int(workers)%8 + 1
		conn := image.Conn4
		if conn8 {
			conn = image.Conn8
		}
		im := image.New(n)
		if len(greys) > 0 {
			for i := range im.Pix {
				v := uint32(greys[i%len(greys)])
				if v == 255 {
					v += 256 // exceeds a byte: forces the wide fallback
				}
				im.Pix[i] = v
			}
		}
		want := seq.LabelBFS(im, conn, seq.Grey)
		for _, merge := range []Merge{MergeTree, MergeSV} {
			e := NewEngine(w)
			e.SetAlgo(AlgoRuns)
			e.SetMerge(merge)
			got := e.Label(im, conn, seq.Grey)
			for i := range want.Lab {
				if got.Lab[i] != want.Lab[i] {
					t.Fatalf("n=%d conn=%v workers=%d merge=%v: pixel %d: got %d, want %d",
						n, conn, w, merge, i, got.Lab[i], want.Lab[i])
				}
			}
		}
	})
}
