package par

import (
	"testing"

	"parimg/internal/image"
	"parimg/internal/seq"
)

// FuzzRunLabelMatchesBFS asserts the run engine's labeling is byte-
// identical to seq.LabelBFS on arbitrary binary images, across Conn4/Conn8
// and worker counts 1-8. The image side, connectivity and worker count are
// fuzzed alongside the pixel data, which is consumed one bit per pixel so
// the fuzzer controls the exact run structure (word-boundary runs,
// alternating columns, solid blocks). The seeded corpus doubles as a
// regression test under plain `go test`; run `go test -fuzz
// FuzzRunLabelMatchesBFS ./internal/par` to explore.
func FuzzRunLabelMatchesBFS(f *testing.F) {
	f.Add(uint8(1), false, uint8(1), []byte{0x01})
	f.Add(uint8(8), true, uint8(3), []byte{0xff, 0x00, 0xaa, 0x55, 0x0f, 0xf0, 0x81, 0x7e})
	f.Add(uint8(16), false, uint8(4), []byte{0xde, 0xad, 0xbe, 0xef, 0x01, 0x80})
	f.Add(uint8(65), true, uint8(8), []byte{0xff})                   // side straddles a word boundary
	f.Add(uint8(33), true, uint8(2), []byte{0x55, 0x55, 0x55, 0x55}) // alternating columns
	f.Add(uint8(12), false, uint8(7), []byte{})
	f.Fuzz(func(t *testing.T, side uint8, conn8 bool, workers uint8, bits []byte) {
		n := int(side)%80 + 1
		w := int(workers)%8 + 1
		conn := image.Conn4
		if conn8 {
			conn = image.Conn8
		}
		im := image.New(n)
		if len(bits) > 0 {
			for i := range im.Pix {
				if bits[(i/8)%len(bits)]>>(uint(i)%8)&1 != 0 {
					im.Pix[i] = 1
				}
			}
		}
		want := seq.LabelBFS(im, conn, seq.Binary)
		e := NewEngine(w)
		e.SetAlgo(AlgoRuns)
		got := e.Label(im, conn, seq.Binary)
		for i := range want.Lab {
			if got.Lab[i] != want.Lab[i] {
				t.Fatalf("n=%d conn=%v workers=%d: pixel %d: got %d, want %d",
					n, conn, w, i, got.Lab[i], want.Lab[i])
			}
		}
	})
}
