package par

import (
	"parimg/internal/image"
	"parimg/internal/obs"
	"parimg/internal/seq"
)

// runLabelInto is the run-based strip engine (AlgoRuns, both modes): the
// hot per-pixel BFS of the bfs path is replaced by packed rows scanned
// word-at-a-time into maximal runs — foreground runs over the bit plane in
// Binary mode, equal-grey-level runs over the byte plane in Grey mode — a
// strip-local union-find over runs with unite-by-minimum, and span-write
// painting. Phases 2-4 (cross-strip border merge in the concurrent
// union-find, final update, cleanup) are shared with the BFS path, except
// that the final update walks the strip's run table — one find and one
// span write per run — instead of every pixel. The border merge already
// compares raw pixels under the mode, so cross-strip unification of grey
// runs needs no extra value plumbing: two runs unite across a strip
// boundary exactly when a pair of their pixels connects.
//
// Exactness: a run's seed label is the global row-major index of its first
// pixel plus one, and the minimum-index pixel of any component fragment
// starts a run (its left neighbor is background — or, in grey mode, a
// different grey level — or would precede it in the same run), so
// unite-by-minimum roots every fragment at exactly the label the row-major
// BFS assigns. The result is therefore pixel-for-pixel identical to
// seq.LabelBFS, not merely equivalent up to renaming.
func (e *Engine) runLabelInto(im *image.Image, conn image.Connectivity, mode seq.Mode,
	out *image.Labels, clear bool) int {
	n := im.N
	W := e.stripCount(n)
	grey := mode == seq.Grey
	if grey {
		e.bytep.Reset(n)
	} else {
		e.bp.Reset(n)
	}

	if W == 1 {
		// Single strip: no borders to merge, and no parallelDo closure
		// to allocate — the whole call is allocation-free at steady state
		// (the phase marks are nil-safe no-ops with metrics disabled).
		t0 := e.obs.StartPhase()
		var comps int
		if grey {
			comps = e.greyLabelStrip(im, 0, n, 0, conn, clear, out.Lab)
		} else {
			e.bp.SetRows(im, 0, n)
			comps = e.runners[0].LabelStrip(&e.bp, 0, n, conn, clear, out.Lab)
		}
		e.obs.EndPhase("strip_label", "", t0)
		e.obs.Add(obs.CtrStripComponents, int64(comps))
		e.obs.Add(runCounter(mode), int64(len(e.runners[0].Runs())/2))
		return comps
	}

	// Phase 1 — each worker packs its strip's rows into the shared packed
	// plane (bit plane for binary, byte plane for grey) and run-labels
	// them: extraction, vertical unites and the paint pass all happen
	// strip-locally with global seed labels.
	e.phase("strip_label", func() {
		e.parallelDo(W, func(w int) {
			e.checkFault("strip_label", w, 1)
			r0, r1 := stripBounds(w, W, n)
			if grey {
				e.comps[w] = e.greyLabelStrip(im, r0, r1, w, conn, clear,
					out.Lab[r0*n:r1*n])
				return
			}
			e.bp.SetRows(im, r0, r1)
			e.comps[w] = e.runners[w].LabelStrip(&e.bp, r0, r1-r0, conn, clear,
				out.Lab[r0*n:r1*n])
		})
	})
	if e.interrupted() {
		return 0
	}

	e.phase("border_merge", func() {
		e.borderMerge(im, out, conn, mode, W)
	})
	if e.interrupted() {
		return 0
	}

	// Phase 3 — final update over runs: a run is uniformly labeled, so one
	// find on its painted label and one span rewrite (only when the root
	// moved) replace the BFS path's per-pixel sweep. Background costs
	// nothing — it has no runs.
	e.phase("relabel", func() {
		e.parallelDo(W, func(w int) {
			e.checkFault("relabel", w, 1)
			r0, _ := stripBounds(w, W, n)
			runs := e.runners[w].Runs()
			rowOff := e.runners[w].RowOffsets()
			var finds, relab int64
			for i := 0; i+1 < len(rowOff); i++ {
				if i&63 == 0 && e.cancelable && e.stop.Load() {
					return
				}
				rowBase := (r0 + i) * n
				for k := rowOff[i]; k < rowOff[i+1]; k += 2 {
					s, end := runs[k], runs[k+1]
					l := out.Lab[rowBase+int(s)]
					finds++
					if r := e.uf.find(l); r != l {
						seq.Fill32(out.Lab[rowBase+int(s):rowBase+int(end)], r)
						relab += int64(end - s)
					}
				}
			}
			e.finds[w] = finds
			e.relab[w] = relab
		})
	})

	if e.interrupted() {
		return 0
	}
	comps := e.finish(W)
	if e.obs != nil {
		var runs int64
		for w := 0; w < W; w++ {
			runs += int64(len(e.runners[w].Runs()) / 2)
		}
		e.obs.Add(runCounter(mode), runs)
	}
	return comps
}

// greyLabelStrip packs rows [r0, r1) into the shared byte plane and grey-
// run-labels them with worker w's RunLabeler. Strips whose grey levels
// exceed a byte (SetRows reports the truncation) extract their runs from
// the raw uint32 pixels instead — same representation, full-width
// compares — so the fast path never trades correctness for speed.
func (e *Engine) greyLabelStrip(im *image.Image, r0, r1, w int, conn image.Connectivity,
	clear bool, lab []uint32) int {
	bp := &e.bytep
	if e.bytep.SetRows(im, r0, r1) {
		bp = nil
	}
	return e.runners[w].LabelGreyStrip(bp, im, r0, r1-r0, conn, clear, lab)
}

// runCounter returns the obs counter that tallies extracted runs for the
// mode: binary foreground runs and grey equal-level runs are reported
// separately so a metrics reader can tell which extractor ran.
func runCounter(mode seq.Mode) obs.Counter {
	if mode == seq.Grey {
		return obs.CtrGreyRuns
	}
	return obs.CtrRuns
}
