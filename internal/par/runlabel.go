package par

import (
	"parimg/internal/image"
	"parimg/internal/obs"
	"parimg/internal/seq"
)

// runLabelInto is the run-based strip engine (AlgoRuns, binary mode only):
// the hot per-pixel BFS of the bfs path is replaced by bit-packed rows
// scanned word-at-a-time into maximal foreground runs, a strip-local
// union-find over runs with unite-by-minimum, and span-write painting.
// Phases 2-4 (cross-strip border merge in the concurrent union-find, final
// update, cleanup) are shared with the BFS path, except that the final
// update walks the strip's run table — one find and one span write per run
// — instead of every pixel.
//
// Exactness: a run's seed label is the global row-major index of its first
// pixel plus one, and the minimum-index pixel of any component fragment
// starts a run (its left neighbor is background or would precede it in the
// same run), so unite-by-minimum roots every fragment at exactly the label
// the row-major BFS assigns. The result is therefore pixel-for-pixel
// identical to seq.LabelBFS, not merely equivalent up to renaming.
func (e *Engine) runLabelInto(im *image.Image, conn image.Connectivity, mode seq.Mode,
	out *image.Labels, clear bool) int {
	n := im.N
	W := e.stripCount(n)
	e.bp.Reset(n)

	if W == 1 {
		// Single strip: no borders to merge, and no parallelDo closure
		// to allocate — the whole call is allocation-free at steady state
		// (the phase marks are nil-safe no-ops with metrics disabled).
		t0 := e.obs.StartPhase()
		e.bp.SetRows(im, 0, n)
		comps := e.runners[0].LabelStrip(&e.bp, 0, n, conn, clear, out.Lab)
		e.obs.EndPhase("strip_label", "", t0)
		e.obs.Add(obs.CtrStripComponents, int64(comps))
		e.obs.Add(obs.CtrRuns, int64(len(e.runners[0].Runs())/2))
		return comps
	}

	// Phase 1 — each worker packs its strip's rows into the shared
	// bitplane and run-labels them: extraction, vertical unites and the
	// paint pass all happen strip-locally with global seed labels.
	e.phase("strip_label", func() {
		e.parallelDo(W, func(w int) {
			e.checkFault("strip_label", w, 1)
			r0, r1 := stripBounds(w, W, n)
			e.bp.SetRows(im, r0, r1)
			e.comps[w] = e.runners[w].LabelStrip(&e.bp, r0, r1-r0, conn, clear,
				out.Lab[r0*n:r1*n])
		})
	})
	if e.interrupted() {
		return 0
	}

	e.phase("border_merge", func() {
		e.borderMerge(im, out, conn, mode, W)
	})
	if e.interrupted() {
		return 0
	}

	// Phase 3 — final update over runs: a run is uniformly labeled, so one
	// find on its painted label and one span rewrite (only when the root
	// moved) replace the BFS path's per-pixel sweep. Background costs
	// nothing — it has no runs.
	e.phase("relabel", func() {
		e.parallelDo(W, func(w int) {
			e.checkFault("relabel", w, 1)
			r0, _ := stripBounds(w, W, n)
			runs := e.runners[w].Runs()
			rowOff := e.runners[w].RowOffsets()
			var finds, relab int64
			for i := 0; i+1 < len(rowOff); i++ {
				if i&63 == 0 && e.cancelable && e.stop.Load() {
					return
				}
				rowBase := (r0 + i) * n
				for k := rowOff[i]; k < rowOff[i+1]; k += 2 {
					s, end := runs[k], runs[k+1]
					l := out.Lab[rowBase+int(s)]
					finds++
					if r := e.uf.find(l); r != l {
						seq.Fill32(out.Lab[rowBase+int(s):rowBase+int(end)], r)
						relab += int64(end - s)
					}
				}
			}
			e.finds[w] = finds
			e.relab[w] = relab
		})
	})

	if e.interrupted() {
		return 0
	}
	comps := e.finish(W)
	if e.obs != nil {
		var runs int64
		for w := 0; w < W; w++ {
			runs += int64(len(e.runners[w].Runs()) / 2)
		}
		e.obs.Add(obs.CtrRuns, runs)
	}
	return comps
}
