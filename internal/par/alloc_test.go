package par

import (
	"fmt"
	"testing"

	"parimg/internal/image"
	"parimg/internal/seq"
)

// Allocation budgets for steady-state Engine.LabelInto calls after one
// warm-up. A single-worker engine reuses every piece of scratch and must
// stay allocation-free; multi-worker engines pay only the per-phase
// goroutine closures of parallelDo (a handful of small allocations per
// phase), so the budget is a small multiple of the worker count.
const (
	allocBudget1W = 0
	allocBudgetNW = 16 // per worker: 4 phases x closure + waitgroup slack
	svAllocRounds = 4  // extra parallelDo fan-outs the SV resolve loop may add
)

// TestLabelIntoAllocs pins the steady-state allocation cost of repeated
// labelings for both strip algorithms, mirroring the PR-1 simulator alloc
// work so the run engine cannot silently regress it.
func TestLabelIntoAllocs(t *testing.T) {
	im := image.Generate(image.DualSpiral, 128)
	out := image.NewLabels(128)
	for _, algo := range []Algo{AlgoBFS, AlgoRuns} {
		for _, w := range []int{1, 4} {
			for _, merge := range []Merge{MergeTree, MergeSV} {
				t.Run(fmt.Sprintf("%v/workers=%d/%v", algo, w, merge), func(t *testing.T) {
					e := NewEngine(w)
					e.SetAlgo(algo)
					e.SetMerge(merge)
					e.LabelInto(im, image.Conn8, seq.Binary, out) // warm scratch
					budget := float64(allocBudget1W)
					if w > 1 {
						budget = float64(allocBudgetNW * w)
						if merge == MergeSV {
							// Each Shiloach-Vishkin round is one more
							// parallelDo fan-out (closure + waitgroup per
							// worker per round); the spiral converges in a
							// few rounds, so a fixed multiple covers it.
							budget *= svAllocRounds
						}
					}
					avg := testing.AllocsPerRun(10, func() {
						e.LabelInto(im, image.Conn8, seq.Binary, out)
					})
					if avg > budget {
						t.Fatalf("%.1f allocs per LabelInto, budget %.0f", avg, budget)
					}
				})
			}
		}
	}
}

// TestGreyLabelIntoAllocs pins the steady-state allocation cost of Grey
// mode for both strip algorithms: the grey run path (the Algo auto default,
// byteplane packing plus grey run extraction) and the explicit per-pixel
// BFS must each stay allocation-free at one worker after warm-up.
func TestGreyLabelIntoAllocs(t *testing.T) {
	im := image.RandomGrey(128, 8, 3)
	out := image.NewLabels(128)
	for _, algo := range []Algo{AlgoBFS, AlgoRuns} {
		t.Run(algo.String(), func(t *testing.T) {
			e := NewEngine(1)
			e.SetAlgo(algo)
			e.LabelInto(im, image.Conn8, seq.Grey, out) // warm scratch
			avg := testing.AllocsPerRun(10, func() {
				e.LabelInto(im, image.Conn8, seq.Grey, out)
			})
			if avg > allocBudget1W {
				t.Fatalf("%.1f allocs per grey %v LabelInto, budget %d",
					avg, algo, allocBudget1W)
			}
		})
	}
}
