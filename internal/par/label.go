package par

import (
	"context"
	"fmt"

	"parimg/internal/errs"
	"parimg/internal/image"
	"parimg/internal/obs"
	"parimg/internal/seq"
)

// checkLabelInput validates the (image, connectivity, mode) triple shared by
// every labeling entry point. Image.Check enforces the structural invariants
// including the n <= MaxSide label-space bound: seed labels are the global
// row-major index + 1 in uint32, so a larger side would silently wrap
// (65536*65536 == 2^32) and collide labels across strips.
func checkLabelInput(op string, im *image.Image, conn image.Connectivity, mode seq.Mode) error {
	if err := im.Check(); err != nil {
		return fmt.Errorf("par: %w", err)
	}
	if !conn.Valid() {
		return errs.Bad(op, "invalid connectivity %d (want 4 or 8)", int(conn))
	}
	if mode != seq.Binary && mode != seq.Grey {
		return errs.Bad(op, "invalid mode %d", int(mode))
	}
	return nil
}

// Label labels im's connected components with the engine's workers and
// returns a fresh labeling, pixel-for-pixel identical to seq.LabelBFS.
// Invalid inputs panic; hostile inputs go through LabelErr.
func (e *Engine) Label(im *image.Image, conn image.Connectivity, mode seq.Mode) *image.Labels {
	out, err := e.LabelErr(im, conn, mode)
	if err != nil {
		// Invariant panic: trusted callers validate first; hostile inputs
		// go through LabelErr. Silently wrapping seed labels on oversized
		// images would corrupt the labeling, so fail loudly instead.
		panic(err.Error())
	}
	return out
}

// LabelErr is Label with typed input validation: a malformed image (nil,
// side outside (0, MaxSide], wrong buffer length), an unknown connectivity
// or an unknown mode returns an error from the errs taxonomy instead of
// panicking or silently wrapping 32-bit seed labels.
func (e *Engine) LabelErr(im *image.Image, conn image.Connectivity, mode seq.Mode) (*image.Labels, error) {
	return e.LabelContext(nil, im, conn, mode)
}

// LabelContext is LabelErr with cooperative cancellation: when ctx is
// canceled or its deadline expires, the workers stop at their next
// checkpoint (between phases, per merge round, and every few thousand
// pixels inside the strip loops) and the call returns an error wrapping
// errs.ErrCanceled or errs.ErrDeadline; no labeling is returned. A nil ctx
// disables cancellation at no cost.
func (e *Engine) LabelContext(ctx context.Context, im *image.Image,
	conn image.Connectivity, mode seq.Mode) (*image.Labels, error) {
	if err := checkLabelInput("par.Label", im, conn, mode); err != nil {
		return nil, err
	}
	out := image.NewLabels(im.N)
	if _, err := e.labelInto(ctx, "par.Label", im, conn, mode, out, false); err != nil {
		return nil, err
	}
	return out, nil
}

// LabelInto labels im into out (cleared first) and returns the number of
// components. out must have side im.N. Invalid inputs panic; hostile inputs
// go through LabelIntoErr.
func (e *Engine) LabelInto(im *image.Image, conn image.Connectivity, mode seq.Mode, out *image.Labels) int {
	comps, err := e.LabelIntoErr(im, conn, mode, out)
	if err != nil {
		// Invariant panic: trusted callers validate first; hostile inputs
		// go through LabelIntoErr.
		panic(err.Error())
	}
	return comps
}

// LabelIntoErr is LabelInto with typed input validation: it additionally
// checks that out is structurally valid and matches im's side.
func (e *Engine) LabelIntoErr(im *image.Image, conn image.Connectivity, mode seq.Mode,
	out *image.Labels) (int, error) {
	return e.LabelIntoContext(nil, im, conn, mode, out)
}

// LabelIntoContext is LabelIntoErr with cooperative cancellation; see
// LabelContext for the error contract. On a run error the contents of out
// are undefined (partially labeled) — callers must discard them.
func (e *Engine) LabelIntoContext(ctx context.Context, im *image.Image,
	conn image.Connectivity, mode seq.Mode, out *image.Labels) (int, error) {
	if err := checkLabelInput("par.LabelInto", im, conn, mode); err != nil {
		return 0, err
	}
	if err := out.Check(); err != nil {
		return 0, fmt.Errorf("par: %w", err)
	}
	if out.N != im.N {
		return 0, errs.Geometry("par.LabelInto", im.N, 0,
			"labeling side %d does not match image side %d", out.N, im.N)
	}
	return e.labelInto(ctx, "par.LabelInto", im, conn, mode, out, true)
}

// labelInto dispatches to the strip algorithm the engine's Algo resolves
// to: the run-based engine for both binary and grey images (unless BFS is
// forced). Both produce the exact labeling of seq.LabelBFS; only the
// strip-internal work differs. The border merge (Phase 2), final update
// (Phase 3) and union-find cleanup (Phase 4) are shared.
//
// It owns the call's cancellation lifecycle: begin/end bracket the phases,
// and a run error (worker panic, context expiry, injected fault) comes back
// as a typed RunError after the scratch has been scrubbed back to its
// ready state, so the engine is immediately reusable.
func (e *Engine) labelInto(ctx context.Context, op string, im *image.Image,
	conn image.Connectivity, mode seq.Mode, out *image.Labels, clear bool) (int, error) {
	if err := e.begin(op, ctx); err != nil {
		return 0, err
	}
	defer e.end()
	flag := e.stopFlag()
	for i := range e.labelers {
		e.labelers[i].Stop = flag
	}
	for i := range e.runners {
		e.runners[i].Stop = flag
	}
	var comps int
	// haveRuns tells the border merge whether Phase 1 is about to leave
	// usable boundary run tables in e.runners (the run engine fills them;
	// the BFS path leaves stale ones from an earlier call, if any).
	e.haveRuns = e.algo.effective() == AlgoRuns
	if e.haveRuns {
		comps = e.runLabelInto(im, conn, mode, out, clear)
	} else {
		comps = e.bfsLabelInto(im, conn, mode, out, clear)
	}
	if err := e.runError(); err != nil {
		e.scrub()
		return 0, err
	}
	return comps, nil
}

// scrub restores the engine's scratch to its ready state after an
// interrupted run. The per-worker dirty lists cannot be trusted (a worker
// may have panicked after uniting but before publishing its list), so the
// union-find is wiped wholesale back to the all-zero ready state instead of
// entry-by-entry. O(n^2), but only ever paid on the error path.
func (e *Engine) scrub() {
	for i := range e.uf.parent {
		e.uf.parent[i] = 0
	}
}

func (e *Engine) bfsLabelInto(im *image.Image, conn image.Connectivity, mode seq.Mode,
	out *image.Labels, clear bool) int {
	n := im.N
	W := e.stripCount(n)

	if W == 1 {
		// Single strip: one sequential labeling is the whole job. The
		// phase marks are nil-safe no-ops with metrics disabled, keeping
		// the path allocation-free.
		t0 := e.obs.StartPhase()
		if clear {
			for i := range out.Lab {
				out.Lab[i] = 0
			}
		}
		comps := e.labelers[0].LabelTile(im.Pix, n, n, conn, mode,
			func(i, j int) uint32 { return uint32(i*n+j) + 1 }, out.Lab)
		e.obs.EndPhase("strip_label", "", t0)
		e.obs.Add(obs.CtrStripComponents, int64(comps))
		return comps
	}

	// Phase 1 — strip initialization (Section 5.1 on a W x 1 grid): each
	// worker labels its horizontal strip in place with the sequential
	// row-major BFS. Seed labels are the global row-major index + 1, so
	// labels are globally unique with no coordination, and the strip's
	// fragment of a component carries the fragment's minimum global index.
	e.phase("strip_label", func() {
		e.parallelDo(W, func(w int) {
			e.checkFault("strip_label", w, 1)
			r0, r1 := stripBounds(w, W, n)
			lab := out.Lab[r0*n : r1*n]
			if clear {
				for i := range lab {
					lab[i] = 0
				}
			}
			e.comps[w] = e.labelers[w].LabelTile(im.Pix[r0*n:r1*n], r1-r0, n, conn, mode,
				func(i, j int) uint32 { return uint32((r0+i)*n+j) + 1 }, lab)
		})
	})
	if e.interrupted() {
		return 0
	}

	e.phase("border_merge", func() {
		e.borderMerge(im, out, conn, mode, W)
	})
	if e.interrupted() {
		return 0
	}

	// Phase 3 — final update: every pixel's label is replaced by its
	// set's root, the component's global minimum seed label. Interior
	// components take the fast path (no parent, one atomic load).
	e.phase("relabel", func() {
		e.parallelDo(W, func(w int) {
			e.checkFault("relabel", w, 1)
			r0, r1 := stripBounds(w, W, n)
			lab := out.Lab[r0*n : r1*n]
			var finds, relab int64
			for i, l := range lab {
				if i&8191 == 0 && e.cancelable && e.stop.Load() {
					return
				}
				if l == 0 {
					continue
				}
				finds++
				if r := e.uf.find(l); r != l {
					lab[i] = r
					relab++
				}
			}
			e.finds[w] = finds
			e.relab[w] = relab
		})
	})
	if e.interrupted() {
		return 0
	}

	return e.finish(W)
}

// borderMerge is Phase 2 — resolving the strip boundaries so that labels
// from different strips that belong to one component share a root in the
// concurrent union-find. It runs in two passes: an extraction pass in which
// worker w reduces the boundary between strips w-1 and w to a deduplicated
// union-edge list in its private append-only slab (intersecting the strips'
// boundary run lists when Phase 1 was the run engine, scanning pixels
// otherwise), and a resolution pass — the tree backend's one-shot unites or
// the Shiloach-Vishkin backend's hook-and-compress rounds, per the engine's
// Merge setting (MergeAuto decides from the measured edge density). Strip
// labels must already be painted into out; cross-border link counts land in
// e.links, raw adjacency counts in e.pairs.
func (e *Engine) borderMerge(im *image.Image, out *image.Labels,
	conn image.Connectivity, mode seq.Mode, W int) {
	n := im.N
	e.uf.reset(n*n + 1)
	e.svRounds = 0
	e.parallelDo(W, func(w int) {
		e.checkFault("border_merge", w, 1)
		e.links[w] = 0
		e.pairs[w] = 0
		e.dirty[w] = e.dirty[w][:0]
		if w == 0 {
			return
		}
		if e.haveRuns {
			e.extractRunEdges(out, conn, mode, w, W, n)
		} else {
			e.extractPixelEdges(im, out, conn, mode, w, W, n)
		}
	})
	if e.cancelable && e.stop.Load() {
		return
	}
	if e.resolveMerge(n, W) == MergeSV {
		e.svResolve(W)
	} else {
		e.treeResolve(W)
	}
}

// extractPixelEdges is the extraction pass of the BFS path (no run tables):
// scan the boundary pixel by pixel through the shared slab-merge seam,
// which appends one deduplicated union edge per adjacent like-pixel pair
// into the worker's private slab.
func (e *Engine) extractPixelEdges(im *image.Image, out *image.Labels,
	conn image.Connectivity, mode seq.Mode, w, W, n int) {
	c, _ := stripBounds(w, W, n)
	top, bot := (c-1)*n, c*n
	e.dirty[w], e.pairs[w] = AppendBoundaryEdges(e.dirty[w][:0],
		im.Pix[top:bot], im.Pix[bot:bot+n],
		out.Lab[top:bot], out.Lab[bot:bot+n],
		conn, mode, e.stopFlag())
}

// extractRunEdges is the extraction pass of the run path: instead of
// scanning boundary pixels it intersects the last-row run list of strip w-1
// with the first-row run list of strip w (both already sitting in the
// strips' RunLabelers) and emits exactly one union edge per adjacent run
// pair — a run's pixels all carry one label, so the pair's single edge is
// the full dedup. A sparse boundary therefore costs O(runs), not O(side).
// Adjacency under Conn8 widens each run's column interval by one; two runs
// connect when the widened intervals overlap and, in grey mode, their grey
// levels are equal (maximal grey runs can touch, so the sweep keeps a skip
// pointer and rescans forward per lower run, like seq's uniteRowsGrey —
// the binary two-pointer advance would drop Conn8 diagonals across
// touching pairs).
func (e *Engine) extractRunEdges(out *image.Labels,
	conn image.Connectivity, mode seq.Mode, w, W, n int) {
	c, _ := stripBounds(w, W, n)
	up, lo := &e.runners[w-1], &e.runners[w]
	upOff, loOff := up.RowOffsets(), lo.RowOffsets()
	aRuns, bRuns := up.Runs(), lo.Runs()
	aLo, aHi := int(upOff[len(upOff)-2]), int(upOff[len(upOff)-1])
	bLo, bHi := int(loOff[0]), int(loOff[1])
	top, bot := (c-1)*n, c*n
	var win int32
	if conn == image.Conn8 {
		win = 1
	}
	dirty := e.dirty[w][:0]
	var pairs int64
	if mode == seq.Grey {
		aVals, bVals := up.Values(), lo.Values()
		p := aLo
		for b := bLo; b < bHi; b += 2 {
			if b&1023 == 0 && e.cancelable && e.stop.Load() {
				break
			}
			b0, b1 := bRuns[b], bRuns[b+1]
			for p < aHi && aRuns[p+1]+win <= b0 {
				p += 2
			}
			lb := out.Lab[bot+int(b0)]
			for q := p; q < aHi && aRuns[q] < b1+win; q += 2 {
				if aVals[q/2] != bVals[b/2] {
					continue
				}
				pairs++
				dirty = append(dirty, out.Lab[top+int(aRuns[q])], lb)
			}
		}
	} else {
		p, q := aLo, bLo
		for p < aHi && q < bHi {
			if (p+q)&1023 == 0 && e.cancelable && e.stop.Load() {
				break
			}
			a0, a1 := aRuns[p], aRuns[p+1]
			b0, b1 := bRuns[q], bRuns[q+1]
			if a0 < b1+win && b0 < a1+win {
				pairs++
				dirty = append(dirty, out.Lab[top+int(a0)], out.Lab[bot+int(b0)])
			}
			if a1 <= b1 {
				p += 2
			} else {
				q += 2
			}
		}
	}
	e.pairs[w] = pairs
	e.dirty[w] = dirty
}

// finish is Phase 4 plus the component count: restore the union-find's
// all-zero ready state by clearing exactly the entries this run touched,
// then tally strip components minus cross-border merges. With a recorder
// installed it also aggregates the per-worker operation counts gathered by
// the earlier phases.
func (e *Engine) finish(W int) int {
	e.phase("cleanup", func() {
		e.parallelDo(W, func(w int) {
			e.uf.clear(e.dirty[w])
		})
	})
	total := 0
	for w := 0; w < W; w++ {
		total += e.comps[w] - e.links[w]
	}
	if e.obs != nil {
		var comps, links, pairs, edges, finds, relab int64
		for w := 0; w < W; w++ {
			comps += int64(e.comps[w])
			links += int64(e.links[w])
			pairs += e.pairs[w]
			edges += int64(len(e.dirty[w]) / 2)
			finds += e.finds[w]
			relab += e.relab[w]
		}
		e.obs.Add(obs.CtrStripComponents, comps)
		e.obs.Add(obs.CtrBorderLinks, links)
		e.obs.Add(obs.CtrBorderPairs, pairs)
		e.obs.Add(obs.CtrBorderEdges, edges)
		e.obs.Add(obs.CtrSVRounds, int64(e.svRounds))
		e.obs.Add(obs.CtrUFFinds, finds)
		e.obs.Add(obs.CtrRelabeledPixels, relab)
	}
	return total
}
