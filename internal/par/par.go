// Package par is the host-parallel execution engine: it runs the paper's
// two primitives — connected component labeling and histogramming — on real
// worker goroutines for actual wall-clock speedup, with no cost model and
// no simulated clock. It complements package cc and package hist, which run
// the same algorithms under the BDM simulator to reproduce the paper's
// modeled measurements.
//
// The decomposition mirrors the paper's divide and conquer, mapped onto
// shared memory the way modern multicore CCL work does (Gupta et al.;
// Liu-Tarjan):
//
//   - Labeling: the image is split into one horizontal strip per worker
//     (contiguous in the row-major pixel array, so strips are labeled in
//     place with no scatter/gather). Each worker runs the Section 5.1
//     row-major BFS on its strip with globally unique seed labels (global
//     row-major index + 1). The strip-boundary merge problem is then
//     resolved with a concurrent union-find over the border graph — each
//     worker unites the labels of adjacent like-colored pixels across one
//     boundary — and a final parallel sweep relabels every pixel to its
//     set's root. Unite-by-minimum makes the root the component's minimum
//     seed label, so the result is pixel-for-pixel identical to
//     seq.LabelBFS, not merely equivalent up to renaming.
//
//   - Histogramming: per-worker tallies of each strip into sharded k-bucket
//     arrays, merged pairwise in a tree of log(workers) parallel rounds,
//     the shared-memory analogue of the paper's Section 4 transpose+combine.
//
// An Engine owns all scratch (per-worker BFS queues, the union-find parent
// array, histogram shards) and reuses it across calls; the package-level
// Label and Histogram draw engines from a sync.Pool and are safe for
// concurrent use.
package par

import (
	"context"
	"fmt"
	"runtime"
	"runtime/pprof"
	"sync"

	"parimg/internal/image"
	"parimg/internal/obs"
	"parimg/internal/seq"
)

// Algo selects the labeling algorithm the engine runs inside each strip.
type Algo int

const (
	// AlgoAuto picks the fastest correct algorithm for the mode: the
	// run-based engine for Binary, the BFS engine for Grey (the run table
	// carries no colors, so δ/grey connectivity needs the BFS path).
	AlgoAuto Algo = iota
	// AlgoBFS forces the paper's per-pixel row-major BFS (Section 5.1).
	AlgoBFS
	// AlgoRuns forces the run-based two-pass engine (bit-packed rows,
	// word-at-a-time run extraction, union-find over runs, span paints).
	// Grey mode still falls back to BFS — the output contract is exact
	// equality with seq.LabelBFS in every case.
	AlgoRuns
)

// String returns the algorithm's flag spelling: "auto", "bfs" or "runs".
func (a Algo) String() string {
	switch a {
	case AlgoAuto:
		return "auto"
	case AlgoBFS:
		return "bfs"
	case AlgoRuns:
		return "runs"
	}
	return fmt.Sprintf("Algo(%d)", int(a))
}

// ParseAlgo resolves an -algo flag value: "auto", "bfs" or "runs".
func ParseAlgo(s string) (Algo, error) {
	switch s {
	case "auto", "":
		return AlgoAuto, nil
	case "bfs":
		return AlgoBFS, nil
	case "runs":
		return AlgoRuns, nil
	}
	return 0, fmt.Errorf("par: unknown algorithm %q (want auto, bfs or runs)", s)
}

// effective returns the algorithm actually executed for a mode: the run
// engine is binary-only, so Grey always resolves to BFS, and Auto resolves
// to runs for Binary.
func (a Algo) effective(mode seq.Mode) Algo {
	if mode == seq.Grey || a == AlgoBFS {
		return AlgoBFS
	}
	return AlgoRuns
}

// Engine is a reusable host-parallel executor with a fixed worker count and
// owned scratch. An Engine is not safe for concurrent use; the package
// functions Label and Histogram pool engines and are.
type Engine struct {
	workers  int
	algo     Algo
	obs      *obs.Recorder    // metrics recorder; nil disables all accounting
	labelers []seq.Labeler    // per-worker BFS scratch
	runners  []seq.RunLabeler // per-worker run-engine scratch
	bp       image.Bitplane   // shared bit-packed plane (strips filled per worker)
	uf       cuf              // border-merge union-find (labels -> roots)
	dirty    [][]uint32       // per-worker union-find entries to clear
	comps    []int            // per-worker strip component counts
	links    []int            // per-worker cross-border merge counts
	finds    []int64          // per-worker union-find find calls (final update)
	relab    []int64          // per-worker pixels rewritten in the final update
	shards   [][]int64        // per-worker histogram tallies
	errs     []error          // per-worker tally errors
}

// NewEngine returns an engine with the given number of workers; workers <= 0
// selects runtime.GOMAXPROCS(0). The engine starts in AlgoAuto.
func NewEngine(workers int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Engine{
		workers:  workers,
		labelers: make([]seq.Labeler, workers),
		runners:  make([]seq.RunLabeler, workers),
		dirty:    make([][]uint32, workers),
		comps:    make([]int, workers),
		links:    make([]int, workers),
		finds:    make([]int64, workers),
		relab:    make([]int64, workers),
		shards:   make([][]int64, workers),
		errs:     make([]error, workers),
	}
}

// Workers returns the engine's worker count.
func (e *Engine) Workers() int { return e.workers }

// SetAlgo selects the strip labeling algorithm for subsequent Label calls.
func (e *Engine) SetAlgo(a Algo) { e.algo = a }

// Algo returns the engine's configured (not mode-resolved) algorithm.
func (e *Engine) Algo() Algo { return e.algo }

// SetObserver installs (or, with nil, removes) the metrics recorder that
// receives per-phase wall-clock times and operation counters from
// subsequent Label/Histogram calls. With a recorder installed, worker
// goroutines also carry a "parimg_phase" pprof label so CPU profiles can be
// sliced by phase. With nil (the default) every accounting path is a no-op
// and the engine's steady-state allocation guarantees are unchanged.
func (e *Engine) SetObserver(r *obs.Recorder) { e.obs = r }

// Observer returns the installed metrics recorder (nil when disabled).
func (e *Engine) Observer() *obs.Recorder { return e.obs }

// stripCount clips the worker count to at most one strip per image row.
func (e *Engine) stripCount(n int) int {
	if e.workers < n {
		return e.workers
	}
	return n
}

// stripBounds returns the half-open row range of strip w of W over n rows.
func stripBounds(w, W, n int) (r0, r1 int) {
	return w * n / W, (w + 1) * n / W
}

// phase runs fn as one named wall-clock phase. With no recorder installed
// it is exactly fn() — no clock reads, no labels. With a recorder, the span
// is timed into a top-level phase and fn runs under a "parimg_phase" pprof
// label, which goroutines started inside fn (the phase's workers) inherit.
func (e *Engine) phase(name string, fn func()) {
	if e.obs == nil {
		fn()
		return
	}
	t0 := e.obs.StartPhase()
	pprof.Do(context.Background(), pprof.Labels("parimg_phase", name), func(context.Context) {
		fn()
	})
	e.obs.EndPhase(name, "", t0)
}

// parallelDo runs fn(0..w-1) on w goroutines and waits for all of them.
func parallelDo(w int, fn func(int)) {
	if w == 1 {
		fn(0)
		return
	}
	var wg sync.WaitGroup
	wg.Add(w)
	for i := 0; i < w; i++ {
		go func(i int) {
			defer wg.Done()
			fn(i)
		}(i)
	}
	wg.Wait()
}

var enginePool = sync.Pool{New: func() any { return NewEngine(0) }}

// Label labels im's connected components on a pooled engine with GOMAXPROCS
// workers and AlgoAuto dispatch. The result is identical to seq.LabelBFS.
// Safe for concurrent use.
func Label(im *image.Image, conn image.Connectivity, mode seq.Mode) *image.Labels {
	return LabelWith(AlgoAuto, im, conn, mode)
}

// LabelWith is Label with an explicit algorithm choice. The result is
// identical to seq.LabelBFS for every algorithm. Safe for concurrent use.
func LabelWith(algo Algo, im *image.Image, conn image.Connectivity, mode seq.Mode) *image.Labels {
	e := enginePool.Get().(*Engine)
	defer enginePool.Put(e)
	e.SetAlgo(algo)
	return e.Label(im, conn, mode)
}

// LabelWithErr is LabelWith with typed input validation instead of panics:
// malformed images (including sides beyond image.MaxSide, which would wrap
// the 32-bit seed labels), unknown connectivities and unknown modes return
// errors from the errs taxonomy. Safe for concurrent use.
func LabelWithErr(algo Algo, im *image.Image, conn image.Connectivity, mode seq.Mode) (*image.Labels, error) {
	e := enginePool.Get().(*Engine)
	defer enginePool.Put(e)
	e.SetAlgo(algo)
	return e.LabelErr(im, conn, mode)
}

// LabelObserved is LabelWith with a metrics recorder installed for the
// duration of the call (the pooled engine's observer is removed before the
// engine returns to the pool). Safe for concurrent use, but concurrent
// callers sharing one recorder interleave their phase records.
func LabelObserved(r *obs.Recorder, algo Algo, im *image.Image,
	conn image.Connectivity, mode seq.Mode) *image.Labels {
	e := enginePool.Get().(*Engine)
	defer enginePool.Put(e)
	e.SetAlgo(algo)
	e.SetObserver(r)
	defer e.SetObserver(nil)
	return e.Label(im, conn, mode)
}

// LabelObservedErr is LabelObserved with typed input validation instead of
// panics; see LabelWithErr for the rejected inputs. Safe for concurrent use.
func LabelObservedErr(r *obs.Recorder, algo Algo, im *image.Image,
	conn image.Connectivity, mode seq.Mode) (*image.Labels, error) {
	e := enginePool.Get().(*Engine)
	defer enginePool.Put(e)
	e.SetAlgo(algo)
	e.SetObserver(r)
	defer e.SetObserver(nil)
	return e.LabelErr(im, conn, mode)
}

// Histogram computes im's k-bucket histogram on a pooled engine with
// GOMAXPROCS workers. Safe for concurrent use.
func Histogram(im *image.Image, k int) ([]int64, error) {
	e := enginePool.Get().(*Engine)
	defer enginePool.Put(e)
	return e.Histogram(im, k)
}
