// Package par is the host-parallel execution engine: it runs the paper's
// two primitives — connected component labeling and histogramming — on real
// worker goroutines for actual wall-clock speedup, with no cost model and
// no simulated clock. It complements package cc and package hist, which run
// the same algorithms under the BDM simulator to reproduce the paper's
// modeled measurements.
//
// The decomposition mirrors the paper's divide and conquer, mapped onto
// shared memory the way modern multicore CCL work does (Gupta et al.;
// Liu-Tarjan):
//
//   - Labeling: the image is split into one horizontal strip per worker
//     (contiguous in the row-major pixel array, so strips are labeled in
//     place with no scatter/gather). Each worker runs the Section 5.1
//     row-major BFS on its strip with globally unique seed labels (global
//     row-major index + 1). The strip-boundary merge problem is then
//     resolved with a concurrent union-find over the border graph — each
//     worker unites the labels of adjacent like-colored pixels across one
//     boundary — and a final parallel sweep relabels every pixel to its
//     set's root. Unite-by-minimum makes the root the component's minimum
//     seed label, so the result is pixel-for-pixel identical to
//     seq.LabelBFS, not merely equivalent up to renaming.
//
//   - Histogramming: per-worker tallies of each strip into sharded k-bucket
//     arrays, merged pairwise in a tree of log(workers) parallel rounds,
//     the shared-memory analogue of the paper's Section 4 transpose+combine.
//
// An Engine owns all scratch (per-worker BFS queues, the union-find parent
// array, histogram shards) and reuses it across calls; the package-level
// Label and Histogram draw engines from a sync.Pool and are safe for
// concurrent use.
package par

import (
	"context"
	"fmt"
	"runtime"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"parimg/internal/errs"
	"parimg/internal/fault"
	"parimg/internal/image"
	"parimg/internal/obs"
	"parimg/internal/seq"
)

// Algo selects the labeling algorithm the engine runs inside each strip.
type Algo int

const (
	// AlgoAuto picks the fastest correct algorithm: the run-based engine
	// for both Binary and Grey mode (grey images are scanned into maximal
	// equal-grey-level runs that carry their grey value through the
	// vertical unites).
	AlgoAuto Algo = iota
	// AlgoBFS forces the paper's per-pixel row-major BFS (Section 5.1).
	AlgoBFS
	// AlgoRuns forces the run-based two-pass engine (packed rows,
	// word-at-a-time run extraction, union-find over runs, span paints) —
	// binary foreground runs over the bit plane, equal-grey-level runs
	// over the byte plane. The output contract is exact equality with
	// seq.LabelBFS in every case.
	AlgoRuns
)

// String returns the algorithm's flag spelling: "auto", "bfs" or "runs".
func (a Algo) String() string {
	switch a {
	case AlgoAuto:
		return "auto"
	case AlgoBFS:
		return "bfs"
	case AlgoRuns:
		return "runs"
	}
	return fmt.Sprintf("Algo(%d)", int(a))
}

// ParseAlgo resolves an -algo flag value: "auto" (the run engine, for
// binary and grey images alike), "bfs" or "runs".
func ParseAlgo(s string) (Algo, error) {
	switch s {
	case "auto", "":
		return AlgoAuto, nil
	case "bfs":
		return AlgoBFS, nil
	case "runs":
		return AlgoRuns, nil
	}
	return 0, fmt.Errorf("par: unknown algorithm %q (want auto, bfs or runs)", s)
}

// effective returns the algorithm actually executed: the run engine
// handles both Binary and Grey mode (grey runs carry their grey level), so
// Auto resolves to runs everywhere and only an explicit AlgoBFS selects
// the per-pixel BFS path.
func (a Algo) effective() Algo {
	if a == AlgoBFS {
		return AlgoBFS
	}
	return AlgoRuns
}

// Engine is a reusable host-parallel executor with a fixed worker count and
// owned scratch. An Engine is not safe for concurrent use; the package
// functions Label and Histogram pool engines and are.
type Engine struct {
	workers  int
	algo     Algo
	merge    Merge
	obs      *obs.Recorder    // metrics recorder; nil disables all accounting
	labelers []seq.Labeler    // per-worker BFS scratch
	runners  []seq.RunLabeler // per-worker run-engine scratch
	bp       image.Bitplane   // shared bit-packed plane (strips filled per worker)
	bytep    image.Byteplane  // shared byte-packed grey plane (strips filled per worker)
	uf       cuf              // border-merge union-find (labels -> roots)
	dirty    [][]uint32       // per-worker boundary edge slabs, doubling as union-find entries to clear
	comps    []int            // per-worker strip component counts
	links    []int            // per-worker cross-border merge counts
	pairs    []int64          // per-worker boundary adjacency counts (pre-dedup)
	finds    []int64          // per-worker union-find find calls (final update)
	relab    []int64          // per-worker pixels rewritten in the final update
	shards   [][]int64        // per-worker histogram tallies
	errs     []error          // per-worker tally errors

	// Per-call border-merge state: whether Phase 1 left usable boundary run
	// tables in e.runners, the per-worker changed flags of the SV rounds,
	// and the SV round count of the last run (0 when the tree backend ran).
	haveRuns  bool
	svchanged []bool
	svRounds  int

	// Lifecycle state. callMu is held for the duration of every
	// Label/Histogram call (begin locks it, end releases it), which is what
	// gives Close its drain semantics: closing waits on the mutex until the
	// in-flight call has retired. closed is checked under callMu by begin,
	// so a closed engine fails every subsequent call with errs.ErrClosed.
	callMu sync.Mutex
	closed atomic.Bool

	// Cancellation and fault-injection state. All of it is inert — one
	// atomic store and a nil check per call — unless the call carries a
	// context or the engine has an injector installed.
	stop       atomic.Bool     // raised by the context monitor or a worker panic
	cancelable bool            // this run can be interrupted (ctx or injector present)
	runCtx     context.Context // the active call's context; nil outside context calls
	runOp      string          // the active call's op name for error reporting
	t0         time.Time       // context-call start time, for RunError.After
	monitor    chan struct{}   // retires the context monitor goroutine
	monGone    chan struct{}   // closed when the monitor goroutine has exited
	wpanic     []error         // per-worker recovered panic, as ErrAborted run errors
	fault      *fault.Injector // nil disables fault injection (the production state)
}

// NewEngine returns an engine with the given number of workers; workers <= 0
// selects runtime.GOMAXPROCS(0). The engine starts in AlgoAuto.
func NewEngine(workers int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Engine{
		workers:   workers,
		labelers:  make([]seq.Labeler, workers),
		runners:   make([]seq.RunLabeler, workers),
		dirty:     make([][]uint32, workers),
		comps:     make([]int, workers),
		links:     make([]int, workers),
		pairs:     make([]int64, workers),
		finds:     make([]int64, workers),
		relab:     make([]int64, workers),
		shards:    make([][]int64, workers),
		errs:      make([]error, workers),
		wpanic:    make([]error, workers),
		svchanged: make([]bool, workers),
	}
}

// Workers returns the engine's worker count.
func (e *Engine) Workers() int { return e.workers }

// SetAlgo selects the strip labeling algorithm for subsequent Label calls.
func (e *Engine) SetAlgo(a Algo) { e.algo = a }

// Algo returns the engine's configured (not mode-resolved) algorithm.
func (e *Engine) Algo() Algo { return e.algo }

// SetMerge selects the border-merge backend for subsequent Label calls:
// the tree of one-shot concurrent unites, the Shiloach-Vishkin rounds, or
// (the default) a per-run choice by measured boundary-edge density.
func (e *Engine) SetMerge(m Merge) { e.merge = m }

// Merge returns the engine's configured (not density-resolved) merge
// backend.
func (e *Engine) Merge() Merge { return e.merge }

// SetFaultInjector installs (or, with nil, removes) a fault injector that
// every phase worker consults at its checkpoints. Testing only; must not be
// called while a Label/Histogram call is in flight.
func (e *Engine) SetFaultInjector(in *fault.Injector) { e.fault = in }

// SetObserver installs (or, with nil, removes) the metrics recorder that
// receives per-phase wall-clock times and operation counters from
// subsequent Label/Histogram calls. With a recorder installed, worker
// goroutines also carry a "parimg_phase" pprof label so CPU profiles can be
// sliced by phase. With nil (the default) every accounting path is a no-op
// and the engine's steady-state allocation guarantees are unchanged.
func (e *Engine) SetObserver(r *obs.Recorder) { e.obs = r }

// Observer returns the installed metrics recorder (nil when disabled).
func (e *Engine) Observer() *obs.Recorder { return e.obs }

// stripCount clips the worker count to at most one strip per image row.
func (e *Engine) stripCount(n int) int {
	if e.workers < n {
		return e.workers
	}
	return n
}

// stripBounds returns the half-open row range of strip w of W over n rows.
func stripBounds(w, W, n int) (r0, r1 int) {
	return w * n / W, (w + 1) * n / W
}

// phase runs fn as one named wall-clock phase. With no recorder installed
// it is exactly fn() — no clock reads, no labels. With a recorder, the span
// is timed into a top-level phase and fn runs under a "parimg_phase" pprof
// label, which goroutines started inside fn (the phase's workers) inherit.
func (e *Engine) phase(name string, fn func()) {
	if e.obs == nil {
		fn()
		return
	}
	t0 := e.obs.StartPhase()
	pprof.Do(context.Background(), pprof.Labels("parimg_phase", name), func(context.Context) {
		fn()
	})
	e.obs.EndPhase(name, "", t0)
}

// parallelDo runs fn(0..w-1) on w goroutines and waits for all of them.
// Each worker runs under guard, so a panicking worker (a bug, or an
// injected fault) is recorded and stops the run instead of crashing the
// process; parallelDo always returns with every worker goroutine finished,
// which is what makes the abort path leak-free.
func (e *Engine) parallelDo(w int, fn func(int)) {
	if w == 1 {
		e.guard(0, fn)
		return
	}
	var wg sync.WaitGroup
	wg.Add(w)
	for i := 0; i < w; i++ {
		go func(i int) {
			defer wg.Done()
			e.guard(i, fn)
		}(i)
	}
	wg.Wait()
}

// guard runs fn(i), converting a panic into a per-worker ErrAborted run
// error and raising the stop flag so sibling workers bail at their next
// checkpoint.
func (e *Engine) guard(i int, fn func(int)) {
	defer func() {
		if r := recover(); r != nil {
			cause, ok := r.(error)
			if !ok {
				cause = fmt.Errorf("panic: %v", r)
			}
			e.wpanic[i] = errs.Aborted(e.runOp, cause, "worker %d panicked: %v", i, r)
			e.stop.Store(true)
		}
	}()
	fn(i)
}

// begin prepares one Label/Histogram call: takes the call mutex (released
// by end, or here on the error paths), rejects calls on a closed engine,
// clears the previous call's cancellation state and, when the call carries
// a context, starts the monitor goroutine that turns context expiry into
// the stop flag. Returns the mapped context error if ctx is already done.
// The nil-context path allocates nothing.
func (e *Engine) begin(op string, ctx context.Context) error {
	e.callMu.Lock()
	if e.closed.Load() {
		e.callMu.Unlock()
		return errs.Closed(op)
	}
	e.runOp = op
	for i := range e.wpanic {
		e.wpanic[i] = nil
	}
	e.stop.Store(false)
	e.cancelable = ctx != nil || e.fault != nil
	if ctx == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		e.callMu.Unlock()
		return errs.FromContext(op, 0, err)
	}
	e.runCtx = ctx
	e.t0 = time.Now()
	if done := ctx.Done(); done != nil {
		e.monitor = make(chan struct{})
		e.monGone = make(chan struct{})
		mon, gone := e.monitor, e.monGone
		stop := &e.stop
		go func() {
			defer close(gone)
			select {
			case <-done:
				stop.Store(true)
			case <-mon:
			}
		}()
	}
	return nil
}

// end retires the context monitor started by begin and waits for it to
// exit: if the context expired as the call was finishing, the monitor may
// have committed to its stop.Store branch but not executed it yet, and
// without the join that late store would poison the engine's next call.
// Releasing the call mutex last is what lets Close observe a fully retired
// call. Always paired with a successful begin; safe when begin started no
// monitor.
func (e *Engine) end() {
	if e.monitor != nil {
		close(e.monitor)
		<-e.monGone
		e.monitor, e.monGone = nil, nil
	}
	e.runCtx = nil
	e.callMu.Unlock()
}

// interrupted reports whether the current call should stop: a worker
// panicked or the stop flag was raised (context expiry or an injected
// no-show). Called between phases, after parallelDo's barrier, so the
// wpanic reads are ordered.
func (e *Engine) interrupted() bool {
	if e.stop.Load() {
		return true
	}
	for _, err := range e.wpanic {
		if err != nil {
			return true
		}
	}
	return false
}

// runError resolves how an interrupted call failed, in blame order: a
// worker panic beats a context error (the panic is why the run died even if
// the context also expired while it was unwinding). Returns nil for clean
// runs. A non-nil result is also recorded on the observer so an aborted
// run's metrics say so.
func (e *Engine) runError() error {
	var err error
	for _, werr := range e.wpanic {
		if werr != nil {
			err = werr
			break
		}
	}
	if err == nil && e.runCtx != nil {
		if cerr := e.runCtx.Err(); cerr != nil {
			err = errs.FromContext(e.runOp, time.Since(e.t0), cerr)
		}
	}
	if err == nil && e.stop.Load() {
		if e.closed.Load() {
			// Close raised the stop flag under the caller's feet; the
			// in-flight run unwound at its next checkpoint.
			err = errs.Closed(e.runOp)
		} else {
			// The stop flag without a context error or panic means an
			// injected no-show was released; report it as an abort.
			err = errs.Aborted(e.runOp, nil, "run stopped by injected fault")
		}
	}
	if err != nil {
		e.obs.MarkAborted(err.Error())
	}
	return err
}

// checkFault is the fault-injection checkpoint of the host-parallel phase
// workers: site names the phase, w the worker, round the phase-internal
// round (1 for single-round phases). One nil check when no injector is
// installed.
func (e *Engine) checkFault(site string, w, round int) {
	if e.fault == nil {
		return
	}
	s := fault.Site{Name: site, Rank: w, Round: round}
	switch act := e.fault.Decide(s); act.Class {
	case fault.Panic:
		panic(&fault.Injected{Site: s})
	case fault.Delay:
		time.Sleep(act.Delay)
	case fault.NoShow:
		if e.runCtx == nil || e.runCtx.Done() == nil {
			// Nothing could ever release this worker; parking would
			// deadlock the test instead of exercising it.
			s.Name += " (no-show without context)"
			panic(&fault.Injected{Site: s})
		}
		// Sit out until the caller's context tears the run down, like a
		// stuck worker would; the sibling workers' checkpoints see the
		// stop flag and unwind.
		<-e.runCtx.Done()
		e.stop.Store(true)
	}
}

// stopFlag returns the flag strip labelers should poll for cooperative
// cancellation: the engine's stop flag for interruptible runs, nil (free)
// otherwise.
func (e *Engine) stopFlag() *atomic.Bool {
	if e.cancelable {
		return &e.stop
	}
	return nil
}

// Close shuts the engine down and waits for any in-flight call to retire:
// it marks the engine closed (every subsequent Label/Histogram call fails
// with an error wrapping errs.ErrClosed), raises the stop flag so an
// interruptible in-flight run unwinds at its next cancellation checkpoint
// and returns errs.ErrClosed to its caller, then blocks on the call mutex
// until that call has fully retired — including its context monitor
// goroutine, which is what lets a leak checker assert quiescence right
// after Close returns. A non-interruptible in-flight call (no context, no
// injector) never polls the flag and simply runs to completion; Close
// waits for it. While draining, the engine's heavy scratch (planes,
// union-find, per-worker labelers) is released to the collector.
// Idempotent and safe to call concurrently with Label/Histogram; always
// returns nil.
func (e *Engine) Close() error {
	if e.closed.Swap(true) {
		return nil // already closed; a prior Close did (or is doing) the drain
	}
	e.stop.Store(true)
	e.callMu.Lock()
	// Drop the arena-sized scratch while we hold the mutex: the engine can
	// never run again, so the planes, union-find and per-worker state are
	// dead weight a pooled deployment should not keep pinned.
	e.bp = image.Bitplane{}
	e.bytep = image.Byteplane{}
	e.uf = cuf{}
	for i := range e.labelers {
		e.labelers[i] = seq.Labeler{}
		e.runners[i] = seq.RunLabeler{}
		e.dirty[i] = nil
		e.shards[i] = nil
	}
	e.obs = nil
	e.fault = nil
	e.callMu.Unlock()
	return nil
}

// Closed reports whether Close has been called.
func (e *Engine) Closed() bool { return e.closed.Load() }

// defaultPool serves the package-level convenience functions: engines with
// GOMAXPROCS workers, rented per call. Unlike a sync.Pool it is never
// drained by the collector, which keeps the steady-state allocation
// guarantees of the package functions intact.
var defaultPool = NewPool(0)

// Label labels im's connected components on a pooled engine with GOMAXPROCS
// workers, AlgoAuto dispatch and MergeAuto border resolution. The result is
// identical to seq.LabelBFS. Safe for concurrent use.
func Label(im *image.Image, conn image.Connectivity, mode seq.Mode) *image.Labels {
	return LabelWith(AlgoAuto, MergeAuto, im, conn, mode)
}

// LabelWith is Label with explicit algorithm and merge-backend choices. The
// result is identical to seq.LabelBFS for every combination. Safe for
// concurrent use.
func LabelWith(algo Algo, merge Merge, im *image.Image, conn image.Connectivity, mode seq.Mode) *image.Labels {
	e := defaultPool.rent()
	defer defaultPool.Return(e)
	e.SetAlgo(algo)
	e.SetMerge(merge)
	return e.Label(im, conn, mode)
}

// LabelWithErr is LabelWith with typed input validation instead of panics:
// malformed images (including sides beyond image.MaxSide, which would wrap
// the 32-bit seed labels), unknown connectivities and unknown modes return
// errors from the errs taxonomy. Safe for concurrent use.
func LabelWithErr(algo Algo, merge Merge, im *image.Image, conn image.Connectivity, mode seq.Mode) (*image.Labels, error) {
	e := defaultPool.rent()
	defer defaultPool.Return(e)
	e.SetAlgo(algo)
	e.SetMerge(merge)
	return e.LabelErr(im, conn, mode)
}

// LabelObserved is LabelWith with a metrics recorder installed for the
// duration of the call (the pooled engine's observer is removed before the
// engine returns to the pool). Safe for concurrent use, but concurrent
// callers sharing one recorder interleave their phase records.
func LabelObserved(r *obs.Recorder, algo Algo, merge Merge, im *image.Image,
	conn image.Connectivity, mode seq.Mode) *image.Labels {
	e := defaultPool.rent()
	defer defaultPool.Return(e)
	e.SetAlgo(algo)
	e.SetMerge(merge)
	e.SetObserver(r)
	return e.Label(im, conn, mode)
}

// LabelObservedErr is LabelObserved with typed input validation instead of
// panics; see LabelWithErr for the rejected inputs. Safe for concurrent use.
func LabelObservedErr(r *obs.Recorder, algo Algo, merge Merge, im *image.Image,
	conn image.Connectivity, mode seq.Mode) (*image.Labels, error) {
	e := defaultPool.rent()
	defer defaultPool.Return(e)
	e.SetAlgo(algo)
	e.SetMerge(merge)
	e.SetObserver(r)
	return e.LabelErr(im, conn, mode)
}

// Histogram computes im's k-bucket histogram on a pooled engine with
// GOMAXPROCS workers. Safe for concurrent use.
func Histogram(im *image.Image, k int) ([]int64, error) {
	e := defaultPool.rent()
	defer defaultPool.Return(e)
	return e.Histogram(im, k)
}

// LabelContext is LabelWithErr with cooperative cancellation: when ctx is
// canceled or its deadline expires, the workers stop at their next
// checkpoint and the call returns an error wrapping errs.ErrCanceled or
// errs.ErrDeadline (no partial labeling is returned). Safe for concurrent
// use.
func LabelContext(ctx context.Context, algo Algo, merge Merge, im *image.Image,
	conn image.Connectivity, mode seq.Mode) (*image.Labels, error) {
	e := defaultPool.rent()
	defer defaultPool.Return(e)
	e.SetAlgo(algo)
	e.SetMerge(merge)
	return e.LabelContext(ctx, im, conn, mode)
}

// LabelObservedContext is LabelContext with a metrics recorder installed for
// the duration of the call (removed before the pooled engine is returned).
// On an aborted run the recorder holds the phases that completed plus the
// aborted marker, so metrics stay valid on failed runs. Safe for concurrent
// use, with the same recorder-sharing caveat as LabelObserved.
func LabelObservedContext(ctx context.Context, r *obs.Recorder, algo Algo, merge Merge, im *image.Image,
	conn image.Connectivity, mode seq.Mode) (*image.Labels, error) {
	e := defaultPool.rent()
	defer defaultPool.Return(e)
	e.SetAlgo(algo)
	e.SetMerge(merge)
	e.SetObserver(r)
	return e.LabelContext(ctx, im, conn, mode)
}

// HistogramContext is Histogram with cooperative cancellation; see
// LabelContext for the error contract. Safe for concurrent use.
func HistogramContext(ctx context.Context, im *image.Image, k int) ([]int64, error) {
	e := defaultPool.rent()
	defer defaultPool.Return(e)
	return e.HistogramContext(ctx, im, k)
}
