package seq

import "parimg/internal/image"

// DisjointSet is a union-find structure with union by size and path
// halving, used by the baseline labelers and by verification code.
type DisjointSet struct {
	parent []int32
	size   []int32
}

// NewDisjointSet returns n singleton sets.
func NewDisjointSet(n int) *DisjointSet {
	d := &DisjointSet{parent: make([]int32, n), size: make([]int32, n)}
	for i := range d.parent {
		d.parent[i] = int32(i)
		d.size[i] = 1
	}
	return d
}

// Find returns the representative of x's set.
func (d *DisjointSet) Find(x int32) int32 {
	for d.parent[x] != x {
		d.parent[x] = d.parent[d.parent[x]] // path halving
		x = d.parent[x]
	}
	return x
}

// Union merges the sets of a and b, returning the surviving root.
func (d *DisjointSet) Union(a, b int32) int32 {
	ra, rb := d.Find(a), d.Find(b)
	if ra == rb {
		return ra
	}
	if d.size[ra] < d.size[rb] {
		ra, rb = rb, ra
	}
	d.parent[rb] = ra
	d.size[ra] += d.size[rb]
	return ra
}

// forwardOffsets returns each undirected adjacency exactly once (the
// neighbor positions after the current pixel in row-major order).
func forwardOffsets(conn image.Connectivity) [][2]int {
	if conn == image.Conn4 {
		return [][2]int{{0, 1}, {1, 0}}
	}
	return [][2]int{{0, 1}, {1, -1}, {1, 0}, {1, 1}}
}

// LabelUnionFind labels an image by unioning every adjacent connected pixel
// pair, then canonicalizing each foreground pixel to the minimum global
// index in its set plus one — the same canonical labels as LabelBFS, so
// outputs are comparable with ==, not just up to renaming.
func LabelUnionFind(im *image.Image, conn image.Connectivity, mode Mode) *image.Labels {
	n := im.N
	d := NewDisjointSet(n * n)
	offs := forwardOffsets(conn)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			u := i*n + j
			if im.Pix[u] == 0 {
				continue
			}
			for _, dd := range offs {
				vi, vj := i+dd[0], j+dd[1]
				if vi < 0 || vi >= n || vj < 0 || vj >= n {
					continue
				}
				v := vi*n + vj
				if mode.Connected(im.Pix[u], im.Pix[v]) {
					d.Union(int32(u), int32(v))
				}
			}
		}
	}
	// Minimum global index per root; the first foreground pixel of each
	// set in row-major order is that minimum.
	min := make([]int32, n*n)
	for i := range min {
		min[i] = -1
	}
	for u := 0; u < n*n; u++ {
		if im.Pix[u] == 0 {
			continue
		}
		r := d.Find(int32(u))
		if min[r] < 0 {
			min[r] = int32(u)
		}
	}
	out := image.NewLabels(n)
	for u := 0; u < n*n; u++ {
		if im.Pix[u] != 0 {
			out.Lab[u] = uint32(min[d.Find(int32(u))]) + 1
		}
	}
	return out
}

// LabelTwoPass labels an image with the classic two-pass scanline algorithm
// (Rosenfeld-Pfaltz style): the first pass assigns provisional labels from
// already-scanned neighbors and records label equivalences; the second pass
// resolves equivalences with union-find. Labels are canonicalized to the
// minimum global index plus one, like LabelBFS. A third independent
// baseline for cross-checking.
func LabelTwoPass(im *image.Image, conn image.Connectivity, mode Mode) *image.Labels {
	n := im.N
	prov := make([]int32, n*n) // provisional label per pixel, 0 = background
	next := int32(1)
	var eqA, eqB []int32 // recorded equivalences

	// Backward neighbors (already scanned) for each connectivity.
	var offs [][2]int
	if conn == image.Conn4 {
		offs = [][2]int{{-1, 0}, {0, -1}}
	} else {
		offs = [][2]int{{-1, -1}, {-1, 0}, {-1, 1}, {0, -1}}
	}

	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			u := i*n + j
			if im.Pix[u] == 0 {
				continue
			}
			first := int32(0)
			for _, dd := range offs {
				vi, vj := i+dd[0], j+dd[1]
				if vi < 0 || vi >= n || vj < 0 || vj >= n {
					continue
				}
				v := vi*n + vj
				if !mode.Connected(im.Pix[u], im.Pix[v]) {
					continue
				}
				if first == 0 {
					first = prov[v]
				} else if prov[v] != first {
					eqA = append(eqA, first)
					eqB = append(eqB, prov[v])
				}
			}
			if first == 0 {
				first = next
				next++
			}
			prov[u] = first
		}
	}

	d := NewDisjointSet(int(next))
	for i := range eqA {
		d.Union(eqA[i], eqB[i])
	}

	// Canonical label: minimum global index per resolved class.
	min := make([]int32, next)
	for i := range min {
		min[i] = -1
	}
	for u := 0; u < n*n; u++ {
		if prov[u] == 0 {
			continue
		}
		r := d.Find(prov[u])
		if min[r] < 0 {
			min[r] = int32(u)
		}
	}
	out := image.NewLabels(n)
	for u := 0; u < n*n; u++ {
		if prov[u] != 0 {
			out.Lab[u] = uint32(min[d.Find(prov[u])]) + 1
		}
	}
	return out
}
