package seq

import (
	"sync/atomic"

	"parimg/internal/image"
)

// Labeler is a reusable sequential connected-components labeler: it owns the
// BFS scratch (the traversal queue and an epoch-stamped visited set) so that
// repeated labelings do no per-call scratch allocations. The zero value is
// ready to use. A Labeler is not safe for concurrent use; give each worker
// its own.
type Labeler struct {
	queue   []int32
	visited Visited

	// Stop, when non-nil, is a cooperative cancellation flag checked
	// periodically by LabelTile (see TileLabeler): once set, labeling
	// returns early with partial labels. The host-parallel engine points
	// every worker's Labeler at its run's stop flag; nil (the default)
	// costs nothing.
	Stop *atomic.Bool
}

// Label labels a whole image like LabelBFS, allocating only the result.
func (l *Labeler) Label(im *image.Image, conn image.Connectivity, mode Mode) *image.Labels {
	out := image.NewLabels(im.N)
	l.LabelInto(im, conn, mode, out)
	return out
}

// LabelInto labels im into out (which is cleared first) and returns the
// number of components. out must have side im.N.
func (l *Labeler) LabelInto(im *image.Image, conn image.Connectivity, mode Mode, out *image.Labels) int {
	n := im.N
	for i := range out.Lab {
		out.Lab[i] = 0
	}
	return l.LabelTile(im.Pix, n, n, conn, mode,
		func(i, j int) uint32 { return uint32(i*n+j) + 1 }, out.Lab)
}

// LabelTile runs TileLabeler with the Labeler's reusable queue. labels must
// be zeroed by the caller; returns the number of tile components.
func (l *Labeler) LabelTile(pix []uint32, rows, cols int, conn image.Connectivity, mode Mode,
	labelAt func(i, j int) uint32, labels []uint32) int {
	comps, queue := TileLabeler(pix, rows, cols, conn, mode, labelAt, labels, l.queue, l.Stop)
	l.queue = queue
	return comps
}

// Flood runs FloodRelabel with the Labeler's reusable queue and visited set,
// returning the number of pixels relabeled. ResetVisited must have been
// called for the current tile before the first Flood of an update pass.
func (l *Labeler) Flood(pix, labels []uint32, rows, cols int, conn image.Connectivity, mode Mode,
	seed int32, newLabel uint32) int {
	l.queue = FloodRelabel(pix, labels, rows, cols, conn, mode, seed, newLabel, &l.visited, l.queue)
	return len(l.queue)
}

// ResetVisited invalidates the visited marks for a tile of rows*cols pixels.
func (l *Labeler) ResetVisited(rows, cols int) { l.visited.Reset(rows * cols) }
