package seq

import (
	"testing"
	"testing/quick"

	"parimg/internal/image"
)

func TestModeConnected(t *testing.T) {
	cases := []struct {
		m    Mode
		a, b uint32
		want bool
	}{
		{Binary, 0, 0, false},
		{Binary, 1, 0, false},
		{Binary, 0, 1, false},
		{Binary, 1, 1, true},
		{Binary, 1, 7, true},
		{Grey, 1, 1, true},
		{Grey, 1, 2, false},
		{Grey, 0, 0, false},
		{Grey, 5, 5, true},
	}
	for _, c := range cases {
		if got := c.m.Connected(c.a, c.b); got != c.want {
			t.Errorf("%v.Connected(%d,%d) = %v, want %v", c.m, c.a, c.b, got, c.want)
		}
	}
}

func TestHistogramCountsEverything(t *testing.T) {
	pix := []uint32{0, 1, 1, 3, 3, 3, 7}
	h := make([]uint32, 8)
	if err := Histogram(pix, h); err != nil {
		t.Fatal(err)
	}
	want := []uint32{1, 2, 0, 3, 0, 0, 0, 1}
	for i := range want {
		if h[i] != want[i] {
			t.Errorf("h[%d] = %d, want %d", i, h[i], want[i])
		}
	}
}

func TestHistogramRejectsOutOfRange(t *testing.T) {
	h := make([]uint32, 4)
	if err := Histogram([]uint32{4}, h); err == nil {
		t.Error("want error for grey level == k")
	}
}

func TestHistogramAccumulates(t *testing.T) {
	h := make([]uint32, 2)
	if err := Histogram([]uint32{1, 1}, h); err != nil {
		t.Fatal(err)
	}
	if err := Histogram([]uint32{1, 0}, h); err != nil {
		t.Fatal(err)
	}
	if h[0] != 1 || h[1] != 3 {
		t.Errorf("h = %v, want [1 3]", h)
	}
}

func TestLabelBFSKnownShapes(t *testing.T) {
	// Two horizontal bars separated by background.
	im := image.New(8)
	for j := 0; j < 8; j++ {
		im.Set(0, j, 1)
		im.Set(4, j, 1)
	}
	lab := LabelBFS(im, image.Conn8, Binary)
	if lab.Components() != 2 {
		t.Fatalf("want 2 components, got %d", lab.Components())
	}
	// Canonical labels: seed global index + 1.
	if lab.At(0, 0) != 1 {
		t.Errorf("top bar label = %d, want 1", lab.At(0, 0))
	}
	if lab.At(4, 0) != uint32(4*8+0+1) {
		t.Errorf("bottom bar label = %d, want %d", lab.At(4, 0), 4*8+1)
	}
}

func TestLabelBFSDiagonalConnectivity(t *testing.T) {
	// Two diagonal pixels: joined under 8-conn, separate under 4-conn.
	im := image.New(4)
	im.Set(0, 0, 1)
	im.Set(1, 1, 1)
	if got := LabelBFS(im, image.Conn8, Binary).Components(); got != 1 {
		t.Errorf("8-conn: %d components, want 1", got)
	}
	if got := LabelBFS(im, image.Conn4, Binary).Components(); got != 2 {
		t.Errorf("4-conn: %d components, want 2", got)
	}
}

func TestLabelBFSGreyVsBinary(t *testing.T) {
	// Adjacent pixels with different nonzero greys: one binary
	// component, two grey components.
	im := image.New(4)
	im.Set(0, 0, 1)
	im.Set(0, 1, 2)
	if got := LabelBFS(im, image.Conn4, Binary).Components(); got != 1 {
		t.Errorf("binary: %d, want 1", got)
	}
	if got := LabelBFS(im, image.Conn4, Grey).Components(); got != 2 {
		t.Errorf("grey: %d, want 2", got)
	}
}

// TestThreeLabelersAgree is the core cross-check: BFS, union-find and
// two-pass labeling must produce identical canonical labels on random
// images across connectivities and modes.
func TestThreeLabelersAgree(t *testing.T) {
	for _, conn := range []image.Connectivity{image.Conn4, image.Conn8} {
		for _, mode := range []Mode{Binary, Grey} {
			for seed := uint64(0); seed < 6; seed++ {
				var im *image.Image
				if mode == Grey {
					im = image.RandomGrey(48, 4, seed)
				} else {
					im = image.RandomBinary(48, 0.55, seed)
				}
				a := LabelBFS(im, conn, mode)
				b := LabelUnionFind(im, conn, mode)
				c := LabelTwoPass(im, conn, mode)
				for idx := range a.Lab {
					if a.Lab[idx] != b.Lab[idx] {
						t.Fatalf("%v %v seed=%d: BFS vs union-find differ at %d: %d vs %d",
							conn, mode, seed, idx, a.Lab[idx], b.Lab[idx])
					}
					if a.Lab[idx] != c.Lab[idx] {
						t.Fatalf("%v %v seed=%d: BFS vs two-pass differ at %d: %d vs %d",
							conn, mode, seed, idx, a.Lab[idx], c.Lab[idx])
					}
				}
			}
		}
	}
}

func TestLabelersAgreeOnPatterns(t *testing.T) {
	for _, id := range image.AllPatterns() {
		im := image.Generate(id, 64)
		for _, conn := range []image.Connectivity{image.Conn4, image.Conn8} {
			a := LabelBFS(im, conn, Binary)
			b := LabelUnionFind(im, conn, Binary)
			for idx := range a.Lab {
				if a.Lab[idx] != b.Lab[idx] {
					t.Fatalf("%v %v: BFS vs union-find differ at %d", id, conn, idx)
				}
			}
		}
	}
}

func TestDisjointSetBasics(t *testing.T) {
	d := NewDisjointSet(5)
	for i := int32(0); i < 5; i++ {
		if d.Find(i) != i {
			t.Fatalf("fresh set: Find(%d) = %d", i, d.Find(i))
		}
	}
	d.Union(0, 1)
	d.Union(3, 4)
	if d.Find(0) != d.Find(1) {
		t.Error("0 and 1 not joined")
	}
	if d.Find(0) == d.Find(3) {
		t.Error("separate sets joined")
	}
	d.Union(1, 3)
	if d.Find(0) != d.Find(4) {
		t.Error("transitive union failed")
	}
	// Union of already-joined elements is a no-op.
	r := d.Find(0)
	if got := d.Union(0, 4); got != r {
		t.Errorf("redundant union returned %d, want %d", got, r)
	}
}

func TestDisjointSetPropertyEquivalence(t *testing.T) {
	// Union-find must realize exactly the transitive closure of the
	// union operations: model with an explicit relation matrix.
	f := func(ops []struct{ A, B uint8 }) bool {
		const n = 16
		d := NewDisjointSet(n)
		var rel [n][n]bool
		for i := 0; i < n; i++ {
			rel[i][i] = true
		}
		for _, op := range ops {
			a, b := int32(op.A%n), int32(op.B%n)
			d.Union(a, b)
			rel[a][b], rel[b][a] = true, true
		}
		// Transitive closure (Floyd-Warshall style).
		for k := 0; k < n; k++ {
			for i := 0; i < n; i++ {
				if !rel[i][k] {
					continue
				}
				for j := 0; j < n; j++ {
					if rel[k][j] {
						rel[i][j] = true
					}
				}
			}
		}
		for i := int32(0); i < n; i++ {
			for j := int32(0); j < n; j++ {
				if (d.Find(i) == d.Find(j)) != rel[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestTileLabelerPanicsOnSizeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic on size mismatch")
		}
	}()
	TileLabeler(make([]uint32, 4), 2, 3, image.Conn8, Binary,
		func(i, j int) uint32 { return 1 }, make([]uint32, 6), nil, nil)
}

func TestFloodRelabel(t *testing.T) {
	// A 4x4 tile with an L-shaped component.
	pix := []uint32{
		1, 1, 0, 0,
		1, 0, 0, 2,
		1, 0, 2, 2,
		0, 0, 0, 0,
	}
	labels := make([]uint32, 16)
	TileLabeler(pix, 4, 4, image.Conn4, Grey,
		func(i, j int) uint32 { return uint32(i*4+j) + 1 }, labels, nil, nil)
	var visited Visited
	visited.Reset(16)
	FloodRelabel(pix, labels, 4, 4, image.Conn4, Grey, 0, 999, &visited, nil)
	for _, idx := range []int{0, 1, 4, 8} {
		if labels[idx] != 999 {
			t.Errorf("pixel %d: label %d, want 999", idx, labels[idx])
		}
	}
	// The grey-2 component and background are untouched.
	if labels[7] == 999 || labels[15] != 0 {
		t.Error("flood leaked outside the component")
	}
	// A second flood of the same pass sees the earlier marks.
	if !visited.Seen(0) || visited.Seen(7) {
		t.Error("visited marks wrong after flood")
	}
	// Reset invalidates every mark without clearing.
	visited.Reset(16)
	if visited.Seen(0) {
		t.Error("Reset did not invalidate marks")
	}
}

func TestLabelerReuse(t *testing.T) {
	var l Labeler
	for _, n := range []int{16, 32, 16} {
		im := image.RandomBinary(n, 0.55, uint64(n))
		got := l.Label(im, image.Conn8, Binary)
		want := LabelBFS(im, image.Conn8, Binary)
		for i := range want.Lab {
			if got.Lab[i] != want.Lab[i] {
				t.Fatalf("n=%d: Labeler differs from LabelBFS at %d", n, i)
			}
		}
		out := image.NewLabels(n)
		out.Lab[0] = 7 // LabelInto must clear stale labels
		l.LabelInto(im, image.Conn8, Binary, out)
		for i := range want.Lab {
			if out.Lab[i] != want.Lab[i] {
				t.Fatalf("n=%d: LabelInto differs from LabelBFS at %d", n, i)
			}
		}
	}
}
