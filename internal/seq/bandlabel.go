package seq

import (
	"sync/atomic"

	"parimg/internal/image"
)

// BandLabeler labels rectangular rows x cols band windows with the
// run-based engine — the unit of work of the out-of-core streaming pipeline
// (internal/stream), which decodes one horizontal band of a taller-than-
// resident image at a time. It owns the packed plane and RunLabeler scratch
// and reuses them across bands, so a steady-state band loop allocates
// nothing; like the strip labelers, the zero value is ready to use and an
// instance is not safe for concurrent use.
//
// Seed labels are band-local: the band-row-major index plus one, exactly
// what LabelStrip assigns with r0 = 0. The caller lifts them into the
// 64-bit global label space by adding the band's global base offset — the
// band-local seed of a pixel plus the global index of the band's first
// pixel is the pixel's global row-major index plus one, so the lifted
// labeling is the one a (hypothetical) 64-bit whole-image run labeler
// would produce.
type BandLabeler struct {
	rl    RunLabeler
	bp    image.Bitplane
	bytep image.Byteplane
}

// SetStop installs (or, with nil, removes) the cooperative cancellation
// flag the band labeler's row loops poll; see RunLabeler.Stop.
func (b *BandLabeler) SetStop(stop *atomic.Bool) { b.rl.Stop = stop }

// Label run-labels the rows x cols band in pix into lab (background gaps
// are cleared as part of the paint pass; lab need not be pre-zeroed) and
// returns the number of components found within the band. Labels are
// band-local seeds: band-row-major index + 1, so rows*cols must stay well
// inside uint32 — the streaming pipeline's band budget guarantees it.
// Binary mode packs the band into the bit plane and takes the word-at-a-
// time run scan; grey mode packs the byte plane, falling back to full-width
// extraction over pix when any grey level exceeds a byte.
func (b *BandLabeler) Label(pix []uint32, rows, cols int, conn image.Connectivity,
	mode Mode, lab []uint32) int {
	if mode == Grey {
		b.bytep.ResetRect(rows, cols)
		bp := &b.bytep
		if b.bytep.SetRowsPix(pix, 0, rows) {
			bp = nil
		}
		// The grey strip labeler reads pixels through an *image.Image only
		// as a flat row-major buffer with stride N; a band-shaped view is a
		// valid trusted-path argument even though it is not square.
		view := image.Image{N: cols, Pix: pix}
		return b.rl.LabelGreyStrip(bp, &view, 0, rows, conn, true, lab)
	}
	b.bp.ResetRect(rows, cols)
	b.bp.SetRowsPix(pix, 0, rows)
	return b.rl.LabelStrip(&b.bp, 0, rows, conn, true, lab)
}

// Runs exposes the band's flat (start, end) run table, valid until the next
// Label call — the census accumulation of the streaming pipeline walks runs
// instead of pixels.
func (b *BandLabeler) Runs() []int32 { return b.rl.Runs() }

// RowOffsets exposes the per-row offsets into Runs(); see
// RunLabeler.RowOffsets.
func (b *BandLabeler) RowOffsets() []int32 { return b.rl.RowOffsets() }
