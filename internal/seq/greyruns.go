package seq

import (
	"parimg/internal/image"
)

// This file generalizes the run-based labeler of runs.go from binary
// foreground runs to maximal equal-grey-level runs, the representation
// Gupta et al.'s two-pass parallel CCL and Chen et al.'s coarse-to-fine
// extraction use for grey imagery: a run is a maximal horizontal span of
// pixels sharing one nonzero grey level, vertically adjacent runs are
// united only when their grey levels match, and painting is unchanged (a
// run is still uniformly labeled). Seed labels remain the global row-major
// index of the run's first pixel plus one, and the minimum-index pixel of
// any grey component fragment necessarily starts a run (its left neighbor
// is background or a different grey level — either way a run boundary), so
// unite-by-minimum again reproduces seq.LabelBFS in Grey mode pixel for
// pixel.

// splat8 has the low bit of every byte set; multiplying a byte value by it
// broadcasts the value into all eight byte lanes of a word.
const splat8 = 0x0101010101010101

// AppendGreyRuns appends the maximal equal-valued nonzero-byte runs of one
// byte-packed row (eight pixels per word, zero-padded past the row width —
// the Byteplane invariant) to dst as (start, end) half-open column pairs,
// with each run's grey level appended to vals. The coarse scan settles
// whole words in one comparison — a word equal to the open run's value
// splatted into every byte extends the run by eight pixels, an all-zero
// word skips eight background pixels — and only words containing a
// boundary pay the per-byte fine scan, so uniform imagery runs at word
// speed (Chen et al.'s coarse-to-fine strategy on an 8-pixel block).
func AppendGreyRuns(words []uint64, dst []int32, vals []uint32) ([]int32, []uint32) {
	var start int32
	var cur uint64 // open run's value splatted into every byte
	var curb byte  // open run's value
	open := false
	for wi, x := range words {
		if open {
			if x == cur {
				continue // run extends across the whole word
			}
		} else if x == 0 {
			continue // eight background pixels
		}
		base := int32(wi) * 8
		for k := int32(0); k < 8; k++ {
			b := byte(x >> (uint(k) * 8))
			if open {
				if b == curb {
					continue
				}
				dst = append(dst, start, base+k)
				vals = append(vals, uint32(curb))
				open = false
			}
			if b != 0 {
				start = base + k
				curb = b
				cur = uint64(b) * splat8
				open = true
			}
		}
	}
	if open {
		// The run reached the last byte of the last word; by the zero-
		// padding invariant this happens only when the row width is a
		// multiple of 8, so the end is exactly the row width.
		dst = append(dst, start, int32(len(words))*8)
		vals = append(vals, uint32(curb))
	}
	return dst, vals
}

// AppendGreyRunsPix is AppendGreyRuns over a raw uint32 pixel row, the
// full-width path for strips whose grey levels exceed a byte (the
// byteplane would truncate them). One load and compare per pixel instead
// of one per word, but the run representation and everything downstream
// are identical.
func AppendGreyRunsPix(row []uint32, dst []int32, vals []uint32) ([]int32, []uint32) {
	var start int32
	var cur uint32
	open := false
	for j, v := range row {
		if open {
			if v == cur {
				continue
			}
			dst = append(dst, start, int32(j))
			vals = append(vals, cur)
			open = false
		}
		if v != 0 {
			start = int32(j)
			cur = v
			open = true
		}
	}
	if open {
		dst = append(dst, start, int32(len(row)))
		vals = append(vals, cur)
	}
	return dst, vals
}

// LabelGreyStrip labels rows [r0, r0+rows) of im — Grey mode: adjacent
// pixels connect only when they share one nonzero grey level — into lab,
// the strip's rows*N slice of the output array, with the same seed-label,
// clear and return contracts as LabelStrip. Runs are extracted from bp
// when non-nil (the byte-packed fast path; the caller must have verified
// the packed rows are not truncated) and from im.Pix otherwise (the
// full-width fallback for grey levels above 255).
func (rl *RunLabeler) LabelGreyStrip(bp *image.Byteplane, im *image.Image, r0, rows int,
	conn image.Connectivity, clear bool, lab []uint32) int {
	n := im.N
	rl.runs = rl.runs[:0]
	rl.vals = rl.vals[:0]
	rl.seed = rl.seed[:0]
	rl.parent = rl.parent[:0]
	rl.rowOff = rl.rowOff[:0]

	// Pass one: extract each row's grey runs and unite them with the
	// like-colored adjacent runs of the row above.
	unites := 0
	prevLo := 0
	for i := 0; i < rows; i++ {
		if rl.Stop != nil && rl.Stop.Load() {
			rl.rowOff = append(rl.rowOff, int32(len(rl.runs)))
			return 0
		}
		rl.rowOff = append(rl.rowOff, int32(len(rl.runs)))
		curLo := len(rl.parent)
		if bp != nil {
			rl.runs, rl.vals = AppendGreyRuns(bp.Row(r0+i), rl.runs, rl.vals)
		} else {
			rl.runs, rl.vals = AppendGreyRunsPix(im.Pix[(r0+i)*n:(r0+i+1)*n], rl.runs, rl.vals)
		}
		base := uint32((r0+i)*n) + 1
		for k := curLo; k < len(rl.runs)/2; k++ {
			rl.seed = append(rl.seed, base+uint32(rl.runs[2*k]))
			rl.parent = append(rl.parent, int32(k))
		}
		if i > 0 {
			unites += rl.uniteRowsGrey(prevLo, curLo, len(rl.parent), conn)
		}
		prevLo = curLo
	}
	rl.rowOff = append(rl.rowOff, int32(len(rl.runs)))

	rl.paint(rows, n, clear, lab)
	return len(rl.parent) - unites
}

// uniteRowsGrey unites each run of the current row [curLo, curHi) with
// every run of the previous row [prevLo, curLo) that is both adjacent
// under the connectivity and of the same grey level. Unlike the binary
// sweep of uniteRows, maximal grey runs in a row may touch (a grey-level
// change is a run boundary with no background gap), so under Conn8 one
// current run can be diagonally adjacent to a previous run on either side
// of a touching pair — the simple advance-smaller-end two-pointer sweep
// would skip one of them. Each current run therefore rescans forward from
// a skip pointer: prev runs ending at or before b0-win can never matter
// again (current starts are nondecreasing), and the forward scan stops at
// the first prev run starting at or past b1+win. Every (prev, cur) pair
// examined is a genuine adjacency candidate, so the sweep stays linear in
// runs plus adjacent pairs. Returns the number of unites that merged two
// distinct sets.
func (rl *RunLabeler) uniteRowsGrey(prevLo, curLo, curHi int, conn image.Connectivity) int {
	var win int32
	if conn == image.Conn8 {
		win = 1
	}
	unites := 0
	p := prevLo
	for c := curLo; c < curHi; c++ {
		b0, b1 := rl.runs[2*c], rl.runs[2*c+1]
		for p < curLo && rl.runs[2*p+1]+win <= b0 {
			p++
		}
		for q := p; q < curLo && rl.runs[2*q] < b1+win; q++ {
			if rl.vals[q] == rl.vals[c] && rl.unite(int32(q), int32(c)) {
				unites++
			}
		}
	}
	return unites
}

// Values returns the strip's per-run grey levels, indexed like Runs()
// pairs and valid until the next Label*Strip call. Empty after a binary
// LabelStrip (binary runs carry no values).
func (rl *RunLabeler) Values() []uint32 { return rl.vals }

// LabelRunsGrey labels a whole grey image with the run-based two-pass
// algorithm. The result is pixel-for-pixel identical to LabelBFS with Grey
// mode. It is the sequential grey run-based baseline; hot paths should
// reuse a RunLabeler and Byteplane via the parallel engine instead.
func LabelRunsGrey(im *image.Image, conn image.Connectivity) *image.Labels {
	bp, wide := image.NewByteplane(im)
	if wide {
		bp = nil
	}
	out := image.NewLabels(im.N)
	var rl RunLabeler
	rl.LabelGreyStrip(bp, im, 0, im.N, conn, false, out.Lab)
	return out
}
