package seq

import (
	"fmt"
	"testing"

	"parimg/internal/image"
)

// runsOfRow extracts one row's runs the slow way, pixel by pixel.
func runsOfRow(row []uint32) []int32 {
	var out []int32
	in := false
	for j, v := range row {
		if v != 0 && !in {
			out = append(out, int32(j))
			in = true
		}
		if v == 0 && in {
			out = append(out, int32(j))
			in = false
		}
	}
	if in {
		out = append(out, int32(len(row)))
	}
	return out
}

// TestAppendRunsMatchesPixelScan checks word-at-a-time extraction against
// the per-pixel reference on random rows, with widths straddling word
// boundaries (including runs that cross words and runs ending at bit 63).
func TestAppendRunsMatchesPixelScan(t *testing.T) {
	for _, n := range []int{1, 7, 63, 64, 65, 128, 200, 256} {
		for seed := uint64(0); seed < 8; seed++ {
			im := image.RandomBinary(n, 0.3+0.05*float64(seed), seed+1)
			bp := image.NewBitplane(im)
			for i := 0; i < n; i++ {
				got := AppendRuns(bp.Row(i), nil)
				want := runsOfRow(im.Pix[i*n : (i+1)*n])
				if len(got) != len(want) {
					t.Fatalf("n=%d seed=%d row %d: %v runs, want %v", n, seed, i, got, want)
				}
				for k := range want {
					if got[k] != want[k] {
						t.Fatalf("n=%d seed=%d row %d: runs %v, want %v", n, seed, i, got, want)
					}
				}
			}
		}
	}
}

// TestAppendRunsWordSpanning pins the cross-word cases: a run covering
// several whole words, runs meeting word boundaries exactly, and an
// all-foreground row.
func TestAppendRunsWordSpanning(t *testing.T) {
	n := 192
	im := image.New(n)
	set := func(j0, j1 int) {
		for j := j0; j < j1; j++ {
			im.Set(0, j, 1)
		}
	}
	set(10, 150) // spans words 0,1,2
	set(160, 192)
	bp := image.NewBitplane(im)
	got := AppendRuns(bp.Row(0), nil)
	want := []int32{10, 150, 160, 192}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("runs = %v, want %v", got, want)
	}
}

// TestFill32 checks the doubling fill across the short-loop/copy cutover.
func TestFill32(t *testing.T) {
	for _, n := range []int{0, 1, 5, 31, 32, 33, 100, 1000} {
		s := make([]uint32, n)
		Fill32(s, 7)
		for i, v := range s {
			if v != 7 {
				t.Fatalf("len=%d: s[%d]=%d", n, i, v)
			}
		}
	}
}

// TestLabelRunsMatchesBFSCatalog checks the sequential run-based labeler
// against LabelBFS on the nine patterns, exactly, both connectivities.
func TestLabelRunsMatchesBFSCatalog(t *testing.T) {
	for _, id := range image.AllPatterns() {
		im := image.Generate(id, 64)
		for _, conn := range []image.Connectivity{image.Conn4, image.Conn8} {
			want := LabelBFS(im, conn, Binary)
			got := LabelRuns(im, conn)
			for i := range want.Lab {
				if got.Lab[i] != want.Lab[i] {
					t.Fatalf("%v/%v: pixel %d: got %d, want %d",
						id, conn, i, got.Lab[i], want.Lab[i])
				}
			}
		}
	}
}

// TestLabelRunsRandom sweeps random densities and odd sizes, exactly.
func TestLabelRunsRandom(t *testing.T) {
	for _, n := range []int{1, 2, 3, 17, 64, 65, 127} {
		for _, density := range []float64{0.1, 0.5, 0.9} {
			im := image.RandomBinary(n, density, uint64(n)+uint64(100*density))
			for _, conn := range []image.Connectivity{image.Conn4, image.Conn8} {
				want := LabelBFS(im, conn, Binary)
				got := LabelRuns(im, conn)
				for i := range want.Lab {
					if got.Lab[i] != want.Lab[i] {
						t.Fatalf("n=%d d=%g %v: pixel %d: got %d, want %d",
							n, density, conn, i, got.Lab[i], want.Lab[i])
					}
				}
			}
		}
	}
}

// TestRunLabelerStripComponents checks the strip component count against
// the BFS labeler over single-strip images.
func TestRunLabelerStripComponents(t *testing.T) {
	for _, n := range []int{8, 33, 64} {
		im := image.RandomBinary(n, 0.5, uint64(n))
		bp := image.NewBitplane(im)
		out := image.NewLabels(n)
		var rl RunLabeler
		comps := rl.LabelStrip(bp, 0, n, image.Conn8, true, out.Lab)
		want := LabelBFS(im, image.Conn8, Binary)
		if wc := want.Components(); comps != wc {
			t.Fatalf("n=%d: %d components, want %d", n, comps, wc)
		}
	}
}

// TestRunLabelerClearPaintsGaps checks that clear=true zeroes stale
// background without a separate clear pass.
func TestRunLabelerClearPaintsGaps(t *testing.T) {
	im := image.RandomBinary(40, 0.5, 11)
	bp := image.NewBitplane(im)
	out := image.NewLabels(40)
	for i := range out.Lab {
		out.Lab[i] = 0xdeadbeef
	}
	var rl RunLabeler
	rl.LabelStrip(bp, 0, 40, image.Conn4, true, out.Lab)
	want := LabelBFS(im, image.Conn4, Binary)
	for i := range want.Lab {
		if out.Lab[i] != want.Lab[i] {
			t.Fatalf("pixel %d: got %d, want %d", i, out.Lab[i], want.Lab[i])
		}
	}
}

func BenchmarkLabelRuns(b *testing.B) {
	for _, n := range []int{512, 1024} {
		im := image.Generate(image.DualSpiral, n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			bp := image.NewBitplane(im)
			out := image.NewLabels(n)
			var rl RunLabeler
			b.SetBytes(int64(n * n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rl.LabelStrip(bp, 0, n, image.Conn8, true, out.Lab)
			}
		})
	}
}
