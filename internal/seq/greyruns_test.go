package seq

import (
	"fmt"
	"testing"

	"parimg/internal/image"
)

// greyRunsOfRow extracts one row's equal-grey-level runs the slow way,
// pixel by pixel — the reference for both extractors.
func greyRunsOfRow(row []uint32) (runs []int32, vals []uint32) {
	open := false
	var cur uint32
	for j, v := range row {
		if open && v != cur {
			runs = append(runs, int32(j))
			vals = append(vals, cur)
			open = false
		}
		if !open && v != 0 {
			runs = append(runs, int32(j))
			cur = v
			open = true
		}
	}
	if open {
		runs = append(runs, int32(len(row)))
		vals = append(vals, cur)
	}
	return runs, vals
}

// greyRow builds a single-row image from vs and returns its packed words
// and raw pixels.
func greyRow(t *testing.T, vs []uint32) ([]uint64, []uint32) {
	t.Helper()
	n := len(vs)
	im := image.New(n)
	copy(im.Pix, vs)
	bp, wide := image.NewByteplane(im)
	if wide {
		t.Fatalf("greyRow: values exceed a byte: %v", vs)
	}
	return bp.Row(0), im.Pix
}

// TestAppendGreyRunsTable pins the extractor's edge cases: value changes
// exactly at 64-bit word boundaries (every 8th pixel in the byte plane),
// runs spanning whole words, single-pixel alternating rows, all-equal
// rows, and rows ending foreground at and off word boundaries.
func TestAppendGreyRunsTable(t *testing.T) {
	rep := func(v uint32, k int) []uint32 {
		s := make([]uint32, k)
		for i := range s {
			s[i] = v
		}
		return s
	}
	cat := func(parts ...[]uint32) []uint32 {
		var s []uint32
		for _, p := range parts {
			s = append(s, p...)
		}
		return s
	}
	cases := []struct {
		name string
		row  []uint32
	}{
		{"empty row", rep(0, 24)},
		{"all-equal row", rep(5, 24)},
		{"all-equal row, width % 8 != 0", rep(5, 21)},
		{"all-equal single word", rep(9, 8)},
		{"single pixel", rep(3, 1)},
		{"value change at word boundary", cat(rep(1, 8), rep(2, 8))},
		{"value change one before boundary", cat(rep(1, 7), rep(2, 9))},
		{"value change one after boundary", cat(rep(1, 9), rep(2, 7))},
		{"value to background at boundary", cat(rep(1, 8), rep(0, 8), rep(3, 8))},
		{"run spanning several words", cat(rep(0, 3), rep(4, 20), rep(0, 2), rep(6, 7))},
		{"single-pixel alternating", []uint32{1, 2, 1, 2, 1, 2, 1, 2, 1, 2, 1, 2, 1, 2, 1, 2, 1}},
		{"alternating with background", []uint32{1, 0, 2, 0, 1, 0, 2, 0, 1, 0, 2, 0, 1, 0, 2, 0}},
		{"foreground ends at row end, width % 8 != 0", cat(rep(0, 5), rep(8, 6))},
		{"255 and 1 levels", cat(rep(255, 9), rep(1, 9))},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			wantRuns, wantVals := greyRunsOfRow(c.row)
			words, pix := greyRow(t, c.row)

			gotRuns, gotVals := AppendGreyRuns(words, nil, nil)
			if fmt.Sprint(gotRuns) != fmt.Sprint(wantRuns) || fmt.Sprint(gotVals) != fmt.Sprint(wantVals) {
				t.Errorf("AppendGreyRuns = %v/%v, want %v/%v", gotRuns, gotVals, wantRuns, wantVals)
			}

			gotRuns, gotVals = AppendGreyRunsPix(pix, nil, nil)
			if fmt.Sprint(gotRuns) != fmt.Sprint(wantRuns) || fmt.Sprint(gotVals) != fmt.Sprint(wantVals) {
				t.Errorf("AppendGreyRunsPix = %v/%v, want %v/%v", gotRuns, gotVals, wantRuns, wantVals)
			}
		})
	}
}

// TestAppendGreyRunsMatchesPixelScan checks both extractors against the
// per-pixel reference on random grey rows, with widths straddling word
// boundaries and grey-level counts from near-binary to full 8-bit.
func TestAppendGreyRunsMatchesPixelScan(t *testing.T) {
	for _, n := range []int{1, 7, 8, 9, 63, 64, 65, 128, 200} {
		for _, k := range []int{2, 3, 16, 256} {
			im := image.RandomGrey(n, k, uint64(n*k+1))
			bp, wide := image.NewByteplane(im)
			if wide {
				t.Fatalf("n=%d k=%d: unexpected wide plane", n, k)
			}
			for i := 0; i < n; i++ {
				row := im.Pix[i*n : (i+1)*n]
				wantRuns, wantVals := greyRunsOfRow(row)
				gotRuns, gotVals := AppendGreyRuns(bp.Row(i), nil, nil)
				if fmt.Sprint(gotRuns) != fmt.Sprint(wantRuns) || fmt.Sprint(gotVals) != fmt.Sprint(wantVals) {
					t.Fatalf("n=%d k=%d row %d: runs %v/%v, want %v/%v",
						n, k, i, gotRuns, gotVals, wantRuns, wantVals)
				}
				gotRuns, gotVals = AppendGreyRunsPix(row, nil, nil)
				if fmt.Sprint(gotRuns) != fmt.Sprint(wantRuns) || fmt.Sprint(gotVals) != fmt.Sprint(wantVals) {
					t.Fatalf("n=%d k=%d row %d (pix): runs %v/%v, want %v/%v",
						n, k, i, gotRuns, gotVals, wantRuns, wantVals)
				}
			}
		}
	}
}

// TestLabelRunsGreyMatchesBFS checks the sequential grey run labeler
// against LabelBFS in Grey mode, exactly, across the catalog, the DARPA
// scene, and random grey sweeps, both connectivities.
func TestLabelRunsGreyMatchesBFS(t *testing.T) {
	var inputs []*image.Image
	for _, id := range image.AllPatterns() {
		inputs = append(inputs, image.Generate(id, 64))
	}
	inputs = append(inputs, image.DARPAScene(96, 16, 7))
	for _, n := range []int{1, 2, 3, 17, 65} {
		for _, k := range []int{2, 8, 256} {
			inputs = append(inputs, image.RandomGrey(n, k, uint64(n+k)))
		}
	}
	for ii, im := range inputs {
		for _, conn := range []image.Connectivity{image.Conn4, image.Conn8} {
			want := LabelBFS(im, conn, Grey)
			got := LabelRunsGrey(im, conn)
			for i := range want.Lab {
				if got.Lab[i] != want.Lab[i] {
					t.Fatalf("input %d %v: pixel %d: got %d, want %d",
						ii, conn, i, got.Lab[i], want.Lab[i])
				}
			}
		}
	}
}

// TestLabelRunsGreyWideLevels checks the full-width extraction fallback:
// grey levels that collide modulo 256 must stay distinct components, and
// the output must still match the grey BFS exactly.
func TestLabelRunsGreyWideLevels(t *testing.T) {
	im := image.New(12)
	for i := 0; i < 12; i++ {
		for j := 0; j < 6; j++ {
			im.Set(i, j, 300)
		}
		for j := 6; j < 12; j++ {
			im.Set(i, j, 300+256)
		}
	}
	for _, conn := range []image.Connectivity{image.Conn4, image.Conn8} {
		want := LabelBFS(im, conn, Grey)
		got := LabelRunsGrey(im, conn)
		for i := range want.Lab {
			if got.Lab[i] != want.Lab[i] {
				t.Fatalf("%v: pixel %d: got %d, want %d", conn, i, got.Lab[i], want.Lab[i])
			}
		}
		if c := got.Components(); c != 2 {
			t.Fatalf("%v: %d components, want 2", conn, c)
		}
	}
}

// TestGreyRunTouchingDiagonals pins the unite sweep's touching-run cases:
// maximal grey runs may abut with no background gap, so under Conn8 a run
// can be diagonally adjacent to the run on either side of a touching pair
// in the neighboring row — the case a naive advance-smaller-end sweep
// drops.
func TestGreyRunTouchingDiagonals(t *testing.T) {
	build := func(rows ...[]uint32) *image.Image {
		n := len(rows[0])
		im := image.New(n)
		for i, r := range rows {
			copy(im.Pix[i*n:(i+1)*n], r)
		}
		return im
	}
	cases := []struct {
		name string
		im   *image.Image
	}{
		// prev [0,2)=5; cur [0,2)=7 | [2,4)=5: 5s meet only diagonally,
		// across the touching boundary of the current row's pair.
		{"diagonal right of touching pair", build(
			[]uint32{5, 5, 0, 0},
			[]uint32{7, 7, 5, 5},
		)},
		// Mirror image: prev [0,2)=7 | [2,4)=5; cur [0,2)=5.
		{"diagonal left of touching pair", build(
			[]uint32{7, 7, 5, 5},
			[]uint32{5, 5, 7, 7},
		)},
		// Both diagonals live at once around one touching boundary.
		{"both diagonals at one boundary", build(
			[]uint32{5, 5, 6, 6},
			[]uint32{6, 6, 5, 5},
		)},
		// A long chain of touching single-pixel runs against a solid row.
		{"alternating against solid", build(
			[]uint32{1, 2, 1, 2, 1, 2, 1, 2},
			[]uint32{2, 2, 2, 2, 2, 2, 2, 2},
		)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			for _, conn := range []image.Connectivity{image.Conn4, image.Conn8} {
				want := LabelBFS(c.im, conn, Grey)
				got := LabelRunsGrey(c.im, conn)
				for i := range want.Lab {
					if got.Lab[i] != want.Lab[i] {
						t.Fatalf("%v: pixel %d: got %d, want %d", conn, i, got.Lab[i], want.Lab[i])
					}
				}
			}
		})
	}
}

func BenchmarkLabelRunsGrey(b *testing.B) {
	im := image.DARPAScene(1024, 256, 1994)
	bp, wide := image.NewByteplane(im)
	if wide {
		b.Fatal("darpa scene should pack into bytes")
	}
	out := image.NewLabels(im.N)
	var rl RunLabeler
	b.SetBytes(int64(im.N * im.N))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rl.LabelGreyStrip(bp, im, 0, im.N, image.Conn8, true, out.Lab)
	}
}
