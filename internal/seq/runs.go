package seq

import (
	"math/bits"
	"sync/atomic"

	"parimg/internal/image"
)

// This file implements the run-based (two-pass) connected components
// labeler over a bit-packed binary plane, in the lineage of Gupta et al.'s
// two-pass parallel CCL: rows are scanned word-at-a-time into maximal
// foreground runs, vertically adjacent runs are united in a union-find
// with unite-by-minimum, and a second pass paints each run with its root's
// seed label using span writes. Because a run's seed label is the global
// row-major index of its first pixel plus one — and the minimum-index
// pixel of any component necessarily starts a run — the root of a merged
// set carries exactly the label the row-major BFS labeler assigns, so the
// output is pixel-for-pixel identical to LabelBFS in Binary mode.
//
// The RunLabeler here labels one horizontal strip and is the unit of work
// the host-parallel engine runs per worker; LabelRuns wraps it over a
// whole image as the sequential run-based baseline.

// AppendRuns appends the maximal set-bit runs of one packed row to dst as
// (start, end) half-open column pairs, scanning whole 64-bit words with
// trailing-zero counts instead of per-pixel branches. Bits beyond the
// row's logical width must be zero (the Bitplane invariant), so runs never
// need end-of-row clipping.
func AppendRuns(words []uint64, dst []int32) []int32 {
	var start int32
	carry := false
	for wi, x := range words {
		base := int32(wi) * 64
		if carry {
			// A run is open across the word boundary: it ends at the
			// first zero bit of this word.
			if x == ^uint64(0) {
				continue
			}
			t := int32(bits.TrailingZeros64(^x))
			dst = append(dst, start, base+t)
			carry = false
			x &^= 1<<uint(t) - 1
		}
		for x != 0 {
			s := int32(bits.TrailingZeros64(x))
			ones := int32(bits.TrailingZeros64(^(x >> uint(s))))
			if s+ones == 64 {
				start = base + s
				carry = true
				break
			}
			dst = append(dst, base+s, base+s+ones)
			x &^= (1<<uint(ones) - 1) << uint(s)
		}
	}
	if carry {
		// The run reached the top bit of the last word; by the trailing-
		// zero-bits invariant this happens only when the row width is a
		// multiple of 64, so the end is exactly the row width.
		dst = append(dst, start, int32(len(words))*64)
	}
	return dst
}

// Fill32 sets every element of s to v. Long spans are filled with doubling
// copies (memmove under the hood), short ones with a plain loop — the
// "memset-style" span write of the run labeler's paint pass.
func Fill32(s []uint32, v uint32) {
	if len(s) < 32 {
		for i := range s {
			s[i] = v
		}
		return
	}
	s[0] = v
	for i := 1; i < len(s); i *= 2 {
		copy(s[i:], s[:i])
	}
}

// RunLabeler is a reusable run-based labeler for one horizontal strip of a
// binary or grey image. It owns all scratch (the flat run table, per-run
// grey values and seed labels, and the run union-find) and keeps the run
// table alive after LabelStrip/LabelGreyStrip so a caller can revisit the
// strip's runs (the parallel engine's final border-fixup pass does). The
// zero value is ready to use. A RunLabeler is not safe for concurrent use;
// give each worker its own.
type RunLabeler struct {
	runs   []int32  // flat (start, end) column pairs, rows concatenated
	rowOff []int32  // rowOff[i] = offset into runs of row i's pairs; len rows+1
	vals   []uint32 // per-run grey level (grey mode only; empty for binary)
	seed   []uint32
	parent []int32

	// Stop, when non-nil, is a cooperative cancellation flag checked once
	// per row by LabelStrip: once set, labeling returns early with the
	// strip partially written. nil (the default) costs nothing.
	Stop *atomic.Bool
}

// LabelStrip labels rows [r0, r0+rows) of bp — Binary mode: every set bit
// is foreground — into lab, the strip's rows*N slice of the output array.
// Seed labels are global (row r0+i of the full image), so strips labeled
// by different workers carry globally unique labels with no coordination.
// When clear is true, background gaps are zeroed as part of the paint pass
// (lab need not be pre-cleared); when false, lab must already be zero.
// Returns the number of components found within the strip.
func (rl *RunLabeler) LabelStrip(bp *image.Bitplane, r0, rows int, conn image.Connectivity,
	clear bool, lab []uint32) int {
	n := bp.N
	rl.runs = rl.runs[:0]
	rl.vals = rl.vals[:0]
	rl.seed = rl.seed[:0]
	rl.parent = rl.parent[:0]
	rl.rowOff = rl.rowOff[:0]

	// Pass one: extract each row's runs and unite them with the
	// overlapping runs of the row above.
	unites := 0
	prevLo := 0
	for i := 0; i < rows; i++ {
		if rl.Stop != nil && rl.Stop.Load() {
			rl.rowOff = append(rl.rowOff, int32(len(rl.runs)))
			return 0
		}
		rl.rowOff = append(rl.rowOff, int32(len(rl.runs)))
		curLo := len(rl.parent)
		rl.runs = AppendRuns(bp.Row(r0+i), rl.runs)
		base := uint32((r0+i)*n) + 1
		for k := curLo; k < len(rl.runs)/2; k++ {
			rl.seed = append(rl.seed, base+uint32(rl.runs[2*k]))
			rl.parent = append(rl.parent, int32(k))
		}
		if i > 0 {
			unites += rl.uniteRows(prevLo, curLo, len(rl.parent), conn)
		}
		prevLo = curLo
	}
	rl.rowOff = append(rl.rowOff, int32(len(rl.runs)))

	rl.paint(rows, n, clear, lab)
	return len(rl.parent) - unites
}

// paint is pass two of both the binary and grey strip labelers: every run
// is painted with its root's seed label, a span write per run instead of a
// store per pixel. When clear is true, background gaps are zeroed in the
// same sweep.
func (rl *RunLabeler) paint(rows, n int, clear bool, lab []uint32) {
	for i := 0; i < rows; i++ {
		row := lab[i*n : (i+1)*n]
		lo, hi := rl.rowOff[i]/2, rl.rowOff[i+1]/2
		col := int32(0)
		for k := lo; k < hi; k++ {
			s, e := rl.runs[2*k], rl.runs[2*k+1]
			if clear {
				zero32(row[col:s])
			}
			Fill32(row[s:e], rl.seed[rl.find(k)])
			col = e
		}
		if clear {
			zero32(row[col:])
		}
	}
}

// uniteRows unites each run of the current row [curLo, curHi) with every
// run of the previous row [prevLo, curLo) it is adjacent to, by a two-
// pointer sweep over the two sorted disjoint run lists. Under Conn4 two
// runs are adjacent when their column intervals overlap; under Conn8 the
// window widens by one column on each side (diagonal adjacency). Because
// maximal runs in a row are separated by at least one background column,
// advancing the run with the smaller end never skips an adjacency.
// Returns the number of unites that merged two distinct sets.
func (rl *RunLabeler) uniteRows(prevLo, curLo, curHi int, conn image.Connectivity) int {
	var win int32
	if conn == image.Conn8 {
		win = 1
	}
	unites := 0
	p, c := prevLo, curLo
	for p < curLo && c < curHi {
		a0, a1 := rl.runs[2*p], rl.runs[2*p+1]
		b0, b1 := rl.runs[2*c], rl.runs[2*c+1]
		if a0 < b1+win && b0 < a1+win {
			if rl.unite(int32(p), int32(c)) {
				unites++
			}
		}
		if a1 <= b1 {
			p++
		} else {
			c++
		}
	}
	return unites
}

// find returns the root of run x's set with path halving. Seed labels are
// strictly increasing in run index, so the minimum root index is also the
// minimum seed label.
func (rl *RunLabeler) find(x int32) int32 {
	for rl.parent[x] != x {
		rl.parent[x] = rl.parent[rl.parent[x]]
		x = rl.parent[x]
	}
	return x
}

// unite merges the sets of runs a and b, linking the larger root under the
// smaller (unite-by-minimum). Returns true when two sets became one.
func (rl *RunLabeler) unite(a, b int32) bool {
	ra, rb := rl.find(a), rl.find(b)
	if ra == rb {
		return false
	}
	if ra > rb {
		ra, rb = rb, ra
	}
	rl.parent[rb] = ra
	return true
}

// Runs returns the strip's flat (start, end) column pairs, valid until the
// next LabelStrip call.
func (rl *RunLabeler) Runs() []int32 { return rl.runs }

// RowOffsets returns, for each strip row, the offset of its first pair in
// Runs(); the extra final entry is len(Runs()).
func (rl *RunLabeler) RowOffsets() []int32 { return rl.rowOff }

// zero32 clears s; the compiler lowers this loop to a memclr.
func zero32(s []uint32) {
	for i := range s {
		s[i] = 0
	}
}

// LabelRuns labels a whole binary image with the run-based two-pass
// algorithm. The result is pixel-for-pixel identical to LabelBFS with
// Binary mode (every nonzero pixel is foreground). It is the sequential
// run-based baseline; hot paths should reuse a RunLabeler and Bitplane via
// the parallel engine instead.
func LabelRuns(im *image.Image, conn image.Connectivity) *image.Labels {
	bp := image.NewBitplane(im)
	out := image.NewLabels(im.N)
	var rl RunLabeler
	rl.LabelStrip(bp, 0, im.N, conn, false, out.Lab)
	return out
}
