// Package seq implements the sequential building blocks and baselines: the
// row-major breadth-first-search connected components labeler of Section
// 5.1 (which the parallel algorithm runs on each tile), a union-find
// labeler and a classic two-pass scanline labeler used as cross-checking
// baselines, and sequential histogramming.
package seq

import (
	"fmt"
	"sync/atomic"

	"parimg/internal/image"
)

// stopStride is how many BFS pops (or painted runs) a cancelable loop
// processes between looks at its stop flag: coarse enough that the atomic
// load vanishes in the per-pixel work, fine enough that cancellation lands
// within tens of microseconds.
const stopStride = 4096

// Mode selects which pixels are considered connected.
type Mode int

const (
	// Binary treats every nonzero pixel as foreground; two adjacent
	// foreground pixels are connected regardless of value (Section 5).
	Binary Mode = iota
	// Grey connects adjacent pixels only when they have the same
	// nonzero grey level (Section 6: each component is a set of
	// like-colored connected pixels).
	Grey
)

func (m Mode) String() string {
	if m == Binary {
		return "binary"
	}
	return "grey"
}

// Connected reports whether two foreground colors join under the mode.
func (m Mode) Connected(a, b uint32) bool {
	if a == 0 || b == 0 {
		return false
	}
	return m == Binary || a == b
}

// Histogram tallies pix into h (len k), adding to existing counts: the
// local step of the parallel algorithm. Pixels >= k wrap an error.
func Histogram(pix []uint32, h []uint32) error {
	k := uint32(len(h))
	for _, v := range pix {
		if v >= k {
			return fmt.Errorf("seq: grey level %d outside [0,%d)", v, k)
		}
		h[v]++
	}
	return nil
}

// TileLabeler runs the paper's initialization on one q x r tile: pixels are
// examined in row-major order, and each unmarked colored pixel starts a BFS
// that labels its connected like-colored pixels within the tile. The label
// comes from labelAt(i, j) evaluated at the BFS seed, which the parallel
// algorithm sets to the globally unique (I*q+i)*n + (J*r+j) + 1. The seed
// is the component's row-major-first pixel, so with that formula the label
// is min(global index)+1 over the tile component.
//
// pix and labels are row-major with rows*cols elements; labels must be
// zeroed. Returns the number of components found in the tile.
//
// stop, when non-nil, is a cooperative cancellation flag: the scan checks
// it once per row and the BFS drain every stopStride pops, returning early
// (with labels partially written) once it is set. Callers that cancel are
// responsible for discarding the partial labels. A nil stop costs nothing.
//
// Following Section 5.1, the scan only needs to look at forward neighbors,
// but the BFS itself explores all neighbors of the connectivity.
func TileLabeler(pix []uint32, rows, cols int, conn image.Connectivity, mode Mode,
	labelAt func(i, j int) uint32, labels []uint32, queue []int32, stop *atomic.Bool) (int, []int32) {
	if len(pix) != rows*cols || len(labels) != rows*cols {
		// Invariant panic: the tile buffers are sized by the backends from
		// the same layout; a mismatch is a bug, not caller input.
		panic(fmt.Sprintf("seq: TileLabeler size mismatch: %d pixels, %d labels, want %d",
			len(pix), len(labels), rows*cols))
	}
	offs := conn.Offsets()
	comps := 0
	if queue == nil {
		queue = make([]int32, 0, rows*cols)
	}
	pops := 0
	for i := 0; i < rows; i++ {
		if stop != nil && stop.Load() {
			return comps, queue
		}
		for j := 0; j < cols; j++ {
			idx := i*cols + j
			if pix[idx] == 0 || labels[idx] != 0 {
				continue
			}
			lab := labelAt(i, j)
			if lab == 0 {
				// Invariant panic: labelAt is supplied by the backends
				// and always derives labels as global index + 1 > 0.
				panic("seq: labelAt returned 0, which is reserved for background")
			}
			comps++
			labels[idx] = lab
			queue = append(queue[:0], int32(idx))
			for len(queue) > 0 {
				if stop != nil {
					// One giant component can cover the whole tile, so
					// per-row checks alone are not responsive enough.
					if pops++; pops%stopStride == 0 && stop.Load() {
						return comps, queue
					}
				}
				u := int(queue[len(queue)-1])
				queue = queue[:len(queue)-1]
				ui, uj := u/cols, u%cols
				for _, d := range offs {
					vi, vj := ui+d[0], uj+d[1]
					if vi < 0 || vi >= rows || vj < 0 || vj >= cols {
						continue
					}
					v := vi*cols + vj
					if labels[v] != 0 || !mode.Connected(pix[u], pix[v]) {
						continue
					}
					labels[v] = lab
					queue = append(queue, int32(v))
				}
			}
		}
	}
	return comps, queue
}

// LabelBFS labels a whole image with the paper's sequential algorithm
// (Section 5.1 applied to a single tile covering the image): the label of
// each component is the global row-major index of its first pixel plus one.
// This is the reference labeling that the parallel algorithm must
// reproduce exactly when merges pick minimum representatives.
// It is a thin wrapper over a one-shot Labeler; hot paths that label
// repeatedly should hold a Labeler and reuse its scratch.
func LabelBFS(im *image.Image, conn image.Connectivity, mode Mode) *image.Labels {
	var l Labeler
	return l.Label(im, conn, mode)
}

// Visited is an epoch-stamped visited set over a fixed index range: marking
// writes the current generation number, and advancing the generation with
// Reset invalidates every mark in O(1) instead of re-clearing the array.
// Repeated BFS passes over the same tile therefore do no large clears and,
// once grown, no allocations.
type Visited struct {
	gen []uint32
	cur uint32
}

// Reset prepares the set for n indices with all of them unvisited. The
// backing array is reused when large enough; the generation counter wrap
// (once per 2^32 resets) triggers one full clear.
func (v *Visited) Reset(n int) {
	if cap(v.gen) < n {
		v.gen = make([]uint32, n)
		v.cur = 0
	}
	v.gen = v.gen[:n]
	v.cur++
	if v.cur == 0 { // generation wrapped: old stamps become ambiguous
		for i := range v.gen {
			v.gen[i] = 0
		}
		v.cur = 1
	}
}

// Seen reports whether index i has been marked since the last Reset.
func (v *Visited) Seen(i int32) bool { return v.gen[i] == v.cur }

// Mark marks index i as visited.
func (v *Visited) Mark(i int32) { v.gen[i] = v.cur }

// FloodRelabel relabels, within one tile, the connected like-colored
// component containing seed to newLabel, using BFS over colors (not over
// old labels, so it is correct whether or not border pixels were already
// relabeled). visited must cover rows*cols indices with seed unvisited;
// marks from earlier floods of the same final update stay set, so a
// component is never flooded twice. This is the final interior update of
// Section 5.3.
func FloodRelabel(pix, labels []uint32, rows, cols int, conn image.Connectivity, mode Mode,
	seed int32, newLabel uint32, visited *Visited, queue []int32) []int32 {
	offs := conn.Offsets()
	if queue == nil {
		queue = make([]int32, 0, 64)
	}
	queue = append(queue[:0], seed)
	visited.Mark(seed)
	labels[seed] = newLabel
	head := 0
	for head < len(queue) {
		u := int(queue[head])
		head++
		ui, uj := u/cols, u%cols
		for _, d := range offs {
			vi, vj := ui+d[0], uj+d[1]
			if vi < 0 || vi >= rows || vj < 0 || vj >= cols {
				continue
			}
			v := vi*cols + vj
			if visited.Seen(int32(v)) || !mode.Connected(pix[u], pix[v]) {
				continue
			}
			visited.Mark(int32(v))
			labels[v] = newLabel
			queue = append(queue, int32(v))
		}
	}
	return queue
}
