// Package seq implements the sequential building blocks and baselines: the
// row-major breadth-first-search connected components labeler of Section
// 5.1 (which the parallel algorithm runs on each tile), a union-find
// labeler and a classic two-pass scanline labeler used as cross-checking
// baselines, and sequential histogramming.
package seq

import (
	"fmt"

	"parimg/internal/image"
)

// Mode selects which pixels are considered connected.
type Mode int

const (
	// Binary treats every nonzero pixel as foreground; two adjacent
	// foreground pixels are connected regardless of value (Section 5).
	Binary Mode = iota
	// Grey connects adjacent pixels only when they have the same
	// nonzero grey level (Section 6: each component is a set of
	// like-colored connected pixels).
	Grey
)

func (m Mode) String() string {
	if m == Binary {
		return "binary"
	}
	return "grey"
}

// Connected reports whether two foreground colors join under the mode.
func (m Mode) Connected(a, b uint32) bool {
	if a == 0 || b == 0 {
		return false
	}
	return m == Binary || a == b
}

// Histogram tallies pix into h (len k), adding to existing counts: the
// local step of the parallel algorithm. Pixels >= k wrap an error.
func Histogram(pix []uint32, h []uint32) error {
	k := uint32(len(h))
	for _, v := range pix {
		if v >= k {
			return fmt.Errorf("seq: grey level %d outside [0,%d)", v, k)
		}
		h[v]++
	}
	return nil
}

// TileLabeler runs the paper's initialization on one q x r tile: pixels are
// examined in row-major order, and each unmarked colored pixel starts a BFS
// that labels its connected like-colored pixels within the tile. The label
// comes from labelAt(i, j) evaluated at the BFS seed, which the parallel
// algorithm sets to the globally unique (I*q+i)*n + (J*r+j) + 1. The seed
// is the component's row-major-first pixel, so with that formula the label
// is min(global index)+1 over the tile component.
//
// pix and labels are row-major with rows*cols elements; labels must be
// zeroed. Returns the number of components found in the tile.
//
// Following Section 5.1, the scan only needs to look at forward neighbors,
// but the BFS itself explores all neighbors of the connectivity.
func TileLabeler(pix []uint32, rows, cols int, conn image.Connectivity, mode Mode,
	labelAt func(i, j int) uint32, labels []uint32, queue []int32) (int, []int32) {
	if len(pix) != rows*cols || len(labels) != rows*cols {
		panic(fmt.Sprintf("seq: TileLabeler size mismatch: %d pixels, %d labels, want %d",
			len(pix), len(labels), rows*cols))
	}
	offs := conn.Offsets()
	comps := 0
	if queue == nil {
		queue = make([]int32, 0, rows*cols)
	}
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			idx := i*cols + j
			if pix[idx] == 0 || labels[idx] != 0 {
				continue
			}
			lab := labelAt(i, j)
			if lab == 0 {
				panic("seq: labelAt returned 0, which is reserved for background")
			}
			comps++
			labels[idx] = lab
			queue = append(queue[:0], int32(idx))
			for len(queue) > 0 {
				u := int(queue[len(queue)-1])
				queue = queue[:len(queue)-1]
				ui, uj := u/cols, u%cols
				for _, d := range offs {
					vi, vj := ui+d[0], uj+d[1]
					if vi < 0 || vi >= rows || vj < 0 || vj >= cols {
						continue
					}
					v := vi*cols + vj
					if labels[v] != 0 || !mode.Connected(pix[u], pix[v]) {
						continue
					}
					labels[v] = lab
					queue = append(queue, int32(v))
				}
			}
		}
	}
	return comps, queue
}

// LabelBFS labels a whole image with the paper's sequential algorithm
// (Section 5.1 applied to a single tile covering the image): the label of
// each component is the global row-major index of its first pixel plus one.
// This is the reference labeling that the parallel algorithm must
// reproduce exactly when merges pick minimum representatives.
func LabelBFS(im *image.Image, conn image.Connectivity, mode Mode) *image.Labels {
	out := image.NewLabels(im.N)
	n := im.N
	TileLabeler(im.Pix, n, n, conn, mode,
		func(i, j int) uint32 { return uint32(i*n+j) + 1 }, out.Lab, nil)
	return out
}

// FloodRelabel relabels, within one tile, the connected like-colored
// component containing seed to newLabel, using BFS over colors (not over
// old labels, so it is correct whether or not border pixels were already
// relabeled). visited must be a zeroed scratch bitmap of rows*cols bools;
// it is cleaned up before returning. This is the final interior update of
// Section 5.3.
func FloodRelabel(pix, labels []uint32, rows, cols int, conn image.Connectivity, mode Mode,
	seed int32, newLabel uint32, visited []bool, queue []int32) []int32 {
	offs := conn.Offsets()
	if queue == nil {
		queue = make([]int32, 0, 64)
	}
	queue = append(queue[:0], seed)
	visited[seed] = true
	labels[seed] = newLabel
	head := 0
	for head < len(queue) {
		u := int(queue[head])
		head++
		ui, uj := u/cols, u%cols
		for _, d := range offs {
			vi, vj := ui+d[0], uj+d[1]
			if vi < 0 || vi >= rows || vj < 0 || vj >= cols {
				continue
			}
			v := vi*cols + vj
			if visited[v] || !mode.Connected(pix[u], pix[v]) {
				continue
			}
			visited[v] = true
			labels[v] = newLabel
			queue = append(queue, int32(v))
		}
	}
	// Restore the scratch bitmap for the next flood.
	for _, u := range queue {
		visited[u] = false
	}
	return queue
}
