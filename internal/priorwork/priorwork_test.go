package priorwork

import (
	"math"
	"strings"
	"testing"
)

// TestWorkPerPixelMatchesPaper verifies our normalization against the
// work-per-pixel column printed in the paper for this paper's rows.
func TestWorkPerPixelMatchesPaper(t *testing.T) {
	within := func(got, want float64) bool {
		return math.Abs(got-want)/want < 0.02
	}
	// Table 1 (Section 1): CM-5 732 ns, SP-1 562 ns, SP-2 1.22 us,
	// Paragon 635 ns, CS-2 231 ns.
	wantT1 := map[string]float64{
		"TMC CM-5":      732e-9,
		"IBM SP-1":      562e-9,
		"IBM SP-2":      1.22e-6,
		"Intel Paragon": 635e-9,
		"Meiko CS-2":    231e-9,
	}
	for _, r := range Table1() {
		if !r.ThisPaper {
			continue
		}
		if w, ok := wantT1[r.Machine]; ok {
			if !within(r.WorkPerPixel(), w) {
				t.Errorf("Table1 %s: work/pixel %.3g, paper says %.3g", r.Machine, r.WorkPerPixel(), w)
			}
		}
	}
	// Spot checks in Table 2: CM-5 p=32 DARPA II 44.9 us; SP-2 p=4
	// DARPA II 3.71 us; CS-2 p=32 36.7 us.
	checks := []struct {
		machine string
		secs    float64
		want    float64
	}{
		{"TMC CM-5", 368e-3, 44.9e-6},
		{"IBM SP-2", 243e-3, 3.71e-6},
		{"Meiko CS-2", 301e-3, 36.7e-6},
	}
	for _, c := range checks {
		found := false
		for _, r := range Table2() {
			if r.ThisPaper && r.Machine == c.machine && r.Seconds == c.secs {
				found = true
				if !within(r.WorkPerPixel(), c.want) {
					t.Errorf("Table2 %s %.3gs: work/pixel %.3g, paper says %.3g",
						c.machine, c.secs, r.WorkPerPixel(), c.want)
				}
			}
		}
		if !found {
			t.Errorf("Table2 row %s %.3gs missing", c.machine, c.secs)
		}
	}
}

func TestFineGrainedNormalization(t *testing.T) {
	// Marks 1980: 17.25 ms on a 1024-PE DAP over a 32x32 image is
	// 539 us/pixel after the divide-by-32 rule.
	r := Table1()[0]
	if !r.FineGrained {
		t.Fatal("DAP should be fine-grained")
	}
	if got := r.WorkPerPixel(); math.Abs(got-539e-6)/539e-6 > 0.01 {
		t.Errorf("Marks work/pixel = %.4g, want 539 us", got)
	}
}

func TestTablesWellFormed(t *testing.T) {
	for name, rows := range map[string][]Row{"Table1": Table1(), "Table2": Table2()} {
		thisPaper := 0
		for i, r := range rows {
			if r.Year < 1980 || r.Year > 1994 {
				t.Errorf("%s[%d]: implausible year %d", name, i, r.Year)
			}
			if r.PEs <= 0 || r.ImageSize <= 0 || r.Seconds <= 0 {
				t.Errorf("%s[%d]: non-positive numeric field %+v", name, i, r)
			}
			if r.ThisPaper {
				thisPaper++
			}
			if r.String() == "" {
				t.Errorf("%s[%d]: empty String()", name, i)
			}
		}
		if name == "Table1" && thisPaper != 5 {
			t.Errorf("Table1 has %d this-paper rows, want 5", thisPaper)
		}
		if name == "Table2" && thisPaper != 11 {
			t.Errorf("Table2 has %d this-paper rows, want 11", thisPaper)
		}
	}
}

func TestFormatSeconds(t *testing.T) {
	cases := []struct {
		s    float64
		want string
	}{
		{0, "0"},
		{2.5, "2.5 s"},
		{12e-3, "12 ms"},
		{732e-9, "732 ns"},
		{44.9e-6, "44.9 us"},
	}
	for _, c := range cases {
		if got := FormatSeconds(c.s); got != c.want {
			t.Errorf("FormatSeconds(%g) = %q, want %q", c.s, got, c.want)
		}
	}
	if !strings.Contains(FormatSeconds(1.5e-3), "ms") {
		t.Error("1.5e-3 should be in ms")
	}
}
