// Package priorwork records the published results surveyed in Tables 1 and
// 2 of the paper, so the benchmark harness can print the same comparison
// tables with our reproduced rows alongside.
//
// The work-per-pixel normalization follows the paper: total work is
// execution time times the number of processors, and fine-grained machines
// (bit-serial SIMD arrays) have their processor counts divided by 32 before
// normalizing, to make fine- and coarse-grained machines comparable.
//
// Table 2 in the source text of the extended abstract interleaves several
// columns; rows whose attribution could be cross-checked are included here,
// and the set is marked representative rather than exhaustive. Every row of
// this paper's own results (the "Bader and JaJa (This paper)" rows) is
// present and was verified against the work-per-pixel column.
package priorwork

import "fmt"

// Row is one line of a results survey table.
type Row struct {
	Year        int
	Researchers string
	Machine     string
	PEs         int
	// FineGrained marks bit-serial SIMD arrays whose PE count is
	// divided by 32 in the work normalization.
	FineGrained bool
	// ImageSize is the image side n (images are n x n).
	ImageSize int
	// Seconds is the reported execution time.
	Seconds float64
	// ThisPaper marks the rows contributed by the paper under
	// reproduction.
	ThisPaper bool
	// Notes carries the table's qualifier (algorithm, test image).
	Notes string
}

// WorkPerPixel returns the normalized work per pixel site in seconds:
// time * effective PEs / pixels.
func (r Row) WorkPerPixel() float64 {
	pe := float64(r.PEs)
	if r.FineGrained {
		pe /= 32
	}
	return r.Seconds * pe / float64(r.ImageSize*r.ImageSize)
}

func (r Row) String() string {
	return fmt.Sprintf("%d %-28s %-22s %6d  %4dx%-4d %10s  %9s  %s",
		r.Year, r.Researchers, r.Machine, r.PEs, r.ImageSize, r.ImageSize,
		FormatSeconds(r.Seconds), FormatSeconds(r.WorkPerPixel()), r.Notes)
}

// FormatSeconds renders a duration the way the paper's tables do (s, ms,
// us, ns with three significant digits).
func FormatSeconds(s float64) string {
	switch {
	case s <= 0:
		return "0"
	case s >= 1:
		return fmt.Sprintf("%.3g s", s)
	case s >= 1e-3:
		return fmt.Sprintf("%.3g ms", s*1e3)
	case s >= 1e-6:
		return fmt.Sprintf("%.3g us", s*1e6)
	default:
		return fmt.Sprintf("%.3g ns", s*1e9)
	}
}

// Table1 returns the histogramming survey (Table 1): all prior rows and
// this paper's five rows, in the paper's order.
func Table1() []Row {
	return []Row{
		{1980, "Marks", "AMT DAP", 1024, true, 32, 17.25e-3, false, ""},
		{1983, "Potter", "Goodyear MPP", 16384, true, 128, 16.4e-3, false, ""},
		{1984, "Grinberg, Nudd, and Etchells", "3-D machine", 16384, true, 256, 1.7e-3, false, ""},
		{1987, "Ibrahim, Kender, and Shaw", "NON-VON 3", 16384, true, 128, 2.16e-3, false, ""},
		// The Warwick Pyramid has a 16K-PE base plus the upper pyramid
		// layers (about 16384*4/3 PEs total), which is what reproduces
		// the paper's 2.47 us/pixel normalization.
		{1990, "Nudd, et al.", "Warwick Pyramid", 21845, true, 256, 237e-6, false, "16K base"},
		{1991, "Jesshope", "AMT DAP 510", 1024, true, 512, 86e-3, false, ""},
		{1994, "Bader and JaJa (This paper)", "TMC CM-5", 16, false, 512, 12.0e-3, true, ""},
		{1994, "Bader and JaJa (This paper)", "IBM SP-1", 16, false, 512, 9.20e-3, true, ""},
		{1994, "Bader and JaJa (This paper)", "IBM SP-2", 16, false, 512, 20.0e-3, true, ""},
		{1994, "Bader and JaJa (This paper)", "Intel Paragon", 8, false, 512, 20.8e-3, true, ""},
		{1994, "Bader and JaJa (This paper)", "Meiko CS-2", 4, false, 512, 15.2e-3, true, ""},
	}
}

// Table2 returns the connected components survey (Table 2):
// cross-checkable prior rows plus all eleven of this paper's rows.
func Table2() []Row {
	return []Row{
		{1986, "Little", "TMC Connection Machine", 65536, true, 512, 450e-3, false, "Scanning alg., DARPA I"},
		{1986, "Hummel", "NYU Ultracomputer", 4096, false, 512, 725e-3, false, "Shiloach/Vishkin alg."},
		{1987, "Ibrahim, Kender, and Shaw", "Columbia NON-VON 3", 16384, true, 128, 5.074, false, ""},
		{1987, "Rosenfeld (survey)", "TMC CM-1", 65536, true, 512, 400e-3, false, "DARPA I"},
		{1989, "Manohar and Ramapriyan", "Goodyear MPP", 16384, true, 512, 97.3e-3, false, ""},
		{1991, "Parkinson", "AMT DAP 510", 1024, true, 512, 140e-3, false, ""},
		{1992, "Choudhary and Thakur", "Intel iPSC/2", 32, false, 512, 1.914, false, "multi-dim. D+C (partitioned input), DARPA II"},
		{1992, "Choudhary and Thakur", "Intel iPSC/2", 32, false, 512, 1.649, false, "multi-dim. D+C (complete im./PE), DARPA II"},
		{1992, "Choudhary and Thakur", "Intel iPSC/2", 32, false, 512, 2.290, false, "multi-dim. D+C (cmplt. + collect. comm.), DARPA II"},
		{1992, "Choudhary and Thakur", "Intel iPSC/860", 32, false, 512, 1.351, false, "multi-dim. D+C (partitioned input), DARPA II"},
		{1992, "Choudhary and Thakur", "Intel iPSC/860", 32, false, 512, 1.031, false, "multi-dim. D+C (complete im./PE), DARPA II"},
		{1992, "Choudhary and Thakur", "Intel iPSC/860", 32, false, 512, 947e-3, false, "multi-dim. D+C (cmplt. + collect. comm.), DARPA II"},
		{1994, "Choudhary and Thakur", "Encore Multimax", 16, false, 512, 521e-3, false, "divide & conquer, DARPA II"},
		{1994, "Choudhary and Thakur", "Intel iPSC/2", 16, false, 512, 360e-3, false, "multi-dim. D+C (partitioned input), DARPA II"},
		{1994, "Choudhary and Thakur", "TMC CM-5", 32, false, 512, 456e-3, false, "multi-dim. D+C (partitioned input), DARPA II"},
		{1994, "Choudhary and Thakur", "TMC CM-5", 32, false, 512, 398e-3, false, "multi-dim. D+C (complete im./PE), DARPA II"},
		{1994, "Choudhary and Thakur", "TMC CM-5", 32, false, 512, 452e-3, false, "multi-dim. D+C (cmplt. + collect. comm.), DARPA II"},
		{1994, "Ziavras and Meer", "TMC CM-2", 16384, true, 128, 35.4, false, ""},

		{1994, "Bader and JaJa (This paper)", "TMC CM-5", 32, false, 512, 368e-3, true, "DARPA II Image"},
		{1994, "Bader and JaJa (This paper)", "TMC CM-5", 32, false, 512, 292e-3, true, "mean of test images"},
		{1994, "Bader and JaJa (This paper)", "TMC CM-5", 32, false, 1024, 852e-3, true, "mean of test images"},
		{1994, "Bader and JaJa (This paper)", "IBM SP-1", 4, false, 512, 370e-3, true, "DARPA II Image"},
		{1994, "Bader and JaJa (This paper)", "IBM SP-1", 32, false, 512, 412e-3, true, "mean of test images"},
		{1994, "Bader and JaJa (This paper)", "IBM SP-1", 32, false, 1024, 863e-3, true, "mean of test images"},
		{1994, "Bader and JaJa (This paper)", "IBM SP-2", 4, false, 512, 243e-3, true, "DARPA II Image"},
		{1994, "Bader and JaJa (This paper)", "IBM SP-2", 32, false, 512, 284e-3, true, "mean of test images"},
		{1994, "Bader and JaJa (This paper)", "IBM SP-2", 32, false, 1024, 585e-3, true, "mean of test images"},
		{1994, "Bader and JaJa (This paper)", "Meiko CS-2", 2, false, 512, 809e-3, true, "DARPA II Image"},
		{1994, "Bader and JaJa (This paper)", "Meiko CS-2", 32, false, 512, 301e-3, true, "DARPA II Image"},
	}
}
