package machine

import (
	"math"
	"testing"

	"parimg/internal/bdm"
)

func TestAllProfilesValid(t *testing.T) {
	for _, c := range append(All(), Ideal, LatencyBound) {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
		if c.Name == "" {
			t.Error("profile without a name")
		}
	}
	if len(All()) != 5 {
		t.Errorf("All() has %d machines, want the paper's 5", len(All()))
	}
}

func TestBandwidthsMatchPaper(t *testing.T) {
	// Section 2.2 reports the attained transpose bandwidths our
	// SecPerWord values are calibrated from.
	cases := []struct {
		spec bdm.CostParams
		mbps float64
	}{
		{SP2, 24.8},     // "greater than 24.8 MB/s per processor"
		{CS2, 10.7},     // "greater than 10.7 MB/s per processor"
		{Paragon, 88.6}, // "greater than 88.6 MB/s per processor"
	}
	for _, c := range cases {
		got := c.spec.BandwidthMBps()
		if math.Abs(got-c.mbps)/c.mbps > 0.01 {
			t.Errorf("%s: bandwidth %.2f MB/s, want %.2f", c.spec.Name, got, c.mbps)
		}
	}
	// The CM-5 profile sits between the attained 7.62 and the 12 MB/s
	// payload ceiling.
	if bw := CM5.BandwidthMBps(); bw < 7.62 || bw > 12 {
		t.Errorf("CM-5 bandwidth %.2f outside [7.62, 12]", bw)
	}
}

func TestByName(t *testing.T) {
	for name, want := range map[string]string{
		"cm5":     "TMC CM-5",
		"CM-5":    "TMC CM-5",
		"sp1":     "IBM SP-1",
		"SP-2":    "IBM SP-2",
		" cs2 ":   "Meiko CS-2",
		"PARAGON": "Intel Paragon",
		"ideal":   "Ideal (zero comm)",
	} {
		got, err := ByName(name)
		if err != nil {
			t.Errorf("ByName(%q): %v", name, err)
			continue
		}
		if got.Name != want {
			t.Errorf("ByName(%q) = %s, want %s", name, got.Name, want)
		}
	}
	if _, err := ByName("t3d"); err == nil {
		t.Error("unknown machine should error")
	}
}

func TestRelativeMachineOrdering(t *testing.T) {
	// The paper's data implies: the Paragon has the highest
	// per-processor bandwidth, the CM-5 the lowest of the five; the
	// SP-2 computes faster per op than the SP-1.
	if !(Paragon.SecPerWord < SP2.SecPerWord && SP2.SecPerWord < CS2.SecPerWord) {
		t.Error("bandwidth ordering Paragon > SP-2 > CS-2 violated")
	}
	if CM5.SecPerWord < SP2.SecPerWord {
		t.Error("CM-5 should have lower bandwidth than SP-2")
	}
	if SP2.SecPerOp > SP1.SecPerOp {
		t.Error("SP-2 nodes should be faster than SP-1 nodes")
	}
}

func TestIdealIsFree(t *testing.T) {
	if Ideal.Tau != 0 || Ideal.SecPerWord != 0 || Ideal.BarrierCost != 0 {
		t.Error("Ideal profile must have zero communication cost")
	}
	if LatencyBound.Tau == 0 {
		t.Error("LatencyBound must have nonzero latency")
	}
}
