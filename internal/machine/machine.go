// Package machine provides BDM cost profiles for the parallel machines used
// in the paper's experimental study: the Thinking Machines CM-5, IBM SP-1
// and SP-2, Meiko CS-2, and Intel Paragon, plus synthetic profiles for
// methodological experiments.
//
// Calibration. The profiles are built from constants the paper itself
// reports (Sections 2.2, 4.1 and Tables 1-2):
//
//   - per-processor bandwidth: the attained transpose bandwidths of Section
//     2.2 (CM-5 7.62 MB/s of a 12 MB/s payload ceiling, SP-2 24.8 MB/s of
//     40 MB/s peak, CS-2 10.7 MB/s, Paragon 88.6 MB/s of 135 MB/s
//     application peak) determine SecPerWord (one 32-bit word per
//     word-time);
//   - local operation cost: calibrated so that the simulated histogramming
//     of a 512x512, 256 grey-level image reproduces the work-per-pixel
//     column of Table 1 (e.g. CM-5: 732 ns/pixel at three charged
//     operations per pixel tally);
//   - latency tau and barrier cost: published message latencies of the era
//     for each interconnect (order 10-100 us).
//
// Absolute seconds are therefore of the right order but approximate; the
// reproduction targets the paper's shapes (scaling in n, p, and k, the
// comp/comm split, machine ranking), as recorded in EXPERIMENTS.md.
package machine

import (
	"fmt"
	"sort"
	"strings"

	"parimg/internal/bdm"
)

// Profiles for the machines in the paper. Times in seconds.
var (
	// CM5 models the Thinking Machines CM-5 (32 MHz SPARC nodes, fat-tree
	// network, 12 MB/s user-payload bandwidth per processor, hardware
	// barriers). The paper's primary experimental platform.
	CM5 = bdm.CostParams{
		Name:        "TMC CM-5",
		Tau:         15e-6,
		SecPerWord:  4.0 / (8.0e6), // ~8 MB/s sustained per processor
		SecPerOp:    244e-9,        // 732 ns/pixel at 3 ops/pixel (Table 1)
		BarrierCost: 5e-6,          // hardware barrier network
	}

	// SP1 models the IBM SP-1 (62.5 MHz POWER1 nodes, MPL over the
	// high-performance switch).
	SP1 = bdm.CostParams{
		Name:        "IBM SP-1",
		Tau:         75e-6,
		SecPerWord:  4.0 / (7.0e6),
		SecPerOp:    187e-9, // 562 ns/pixel at 3 ops/pixel (Table 1)
		BarrierCost: 120e-6,
	}

	// SP2 models the IBM SP-2 with wide nodes (66.7 MHz POWER2, MPL,
	// vendor-rated 40 MB/s peak node-to-node; the paper attains 24.8).
	SP2 = bdm.CostParams{
		Name:        "IBM SP-2",
		Tau:         50e-6,
		SecPerWord:  4.0 / (24.8e6),
		SecPerOp:    120e-9,
		BarrierCost: 80e-6,
	}

	// CS2 models the Meiko CS-2 (SuperSPARC nodes, Elan network; the
	// paper's Split-C port does not use the communications coprocessor,
	// attaining 10.7 of 50 MB/s).
	CS2 = bdm.CostParams{
		Name:        "Meiko CS-2",
		Tau:         40e-6,
		SecPerWord:  4.0 / (10.7e6),
		SecPerOp:    77e-9, // 231 ns/pixel at 3 ops/pixel (Table 1)
		BarrierCost: 20e-6,
	}

	// Paragon models the Intel Paragon (50 MHz i860XP nodes, 2-D mesh,
	// PAM active messages; the paper attains 88.6 of 135 MB/s).
	Paragon = bdm.CostParams{
		Name:        "Intel Paragon",
		Tau:         30e-6,
		SecPerWord:  4.0 / (88.6e6),
		SecPerOp:    212e-9, // 635 ns/pixel at 3 ops/pixel (Table 1)
		BarrierCost: 50e-6,
	}

	// Ideal is a zero-communication-cost machine: it isolates Tcomp and
	// is used for efficiency and ablation studies.
	Ideal = bdm.CostParams{
		Name:        "Ideal (zero comm)",
		Tau:         0,
		SecPerWord:  0,
		SecPerOp:    100e-9,
		BarrierCost: 0,
	}

	// LatencyBound is a machine with enormous latency and infinite
	// bandwidth; it isolates the (4 log p) tau latency term of the
	// connected components complexity, Eq. (11).
	LatencyBound = bdm.CostParams{
		Name:        "Latency-bound",
		Tau:         10e-3,
		SecPerWord:  0,
		SecPerOp:    100e-9,
		BarrierCost: 0,
	}
)

// All returns the five machines of the paper's study, in the paper's order.
func All() []bdm.CostParams {
	return []bdm.CostParams{CM5, SP1, SP2, CS2, Paragon}
}

// names maps lookup keys to profiles.
var names = map[string]bdm.CostParams{
	"cm5":     CM5,
	"cm-5":    CM5,
	"sp1":     SP1,
	"sp-1":    SP1,
	"sp2":     SP2,
	"sp-2":    SP2,
	"cs2":     CS2,
	"cs-2":    CS2,
	"paragon": Paragon,
	"ideal":   Ideal,
}

// ByName looks a profile up by a case-insensitive short name: cm5, sp1,
// sp2, cs2, paragon, ideal.
func ByName(name string) (bdm.CostParams, error) {
	c, ok := names[strings.ToLower(strings.TrimSpace(name))]
	if !ok {
		keys := make([]string, 0, len(names))
		for k := range names {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		return bdm.CostParams{}, fmt.Errorf("machine: unknown machine %q (have %s)", name, strings.Join(keys, ", "))
	}
	return c, nil
}
