package parimg

import (
	"errors"
	"strings"
	"testing"
)

// TestErrorTaxonomy drives every public validation path with hostile input
// and asserts the returned error matches the advertised sentinel under
// errors.Is (and always the ErrBadInput root).
func TestErrorTaxonomy(t *testing.T) {
	newSim := func(p int) func() error {
		return func() error { _, err := NewSimulator(p, CM5); return err }
	}
	oversized := &Image{N: MaxSide + 1} // nil Pix: validation must fire first
	cases := []struct {
		name string
		fn   func() error
		kind error
	}{
		{"p zero", newSim(0), ErrGeometry},
		{"p negative", newSim(-8), ErrGeometry},
		{"p not power of two", newSim(12), ErrGeometry},
		{"image side zero", func() error { _, err := NewImageErr(0); return err }, ErrGeometry},
		{"image side negative", func() error { _, err := NewImageErr(-4); return err }, ErrGeometry},
		{"image side overflow", func() error { _, err := NewImageErr(MaxSide + 1); return err }, ErrLabelOverflow},
		{"pattern unknown", func() error { _, err := GeneratePatternErr(PatternID(42), 64); return err }, ErrBadInput},
		{"random density over 1", func() error { _, err := RandomBinaryErr(64, 1.01, 1); return err }, ErrBadInput},
		{"random grey k under 2", func() error { _, err := RandomGreyErr(64, 1, 1); return err }, ErrGreyRange},
		{"sequential hist k zero", func() error { _, err := HistogramSequential(GenCrossImage(32), 0); return err }, ErrGreyRange},
		{"sequential hist grey over k", func() error { _, err := HistogramSequential(RandomGrey(32, 16, 1), 4); return err }, ErrGreyRange},
		{"parallel hist k zero", func() error { _, err := HistogramParallel(GenCrossImage(32), 0); return err }, ErrGreyRange},
		{"parallel hist nil image", func() error { _, err := HistogramParallel(nil, 8); return err }, ErrBadInput},
		{"non-square PGM", func() error { _, err := ReadPGM(strings.NewReader("P5\n2 3\n255\n......")); return err }, ErrGeometry},
		{"zero-side PGM", func() error { _, err := ReadPGM(strings.NewReader("P5\n0 0\n255\n")); return err }, ErrGeometry},
		{"truncated PGM", func() error { _, err := ReadPGM(strings.NewReader("P5\n4 4\n255\nxy")); return err }, ErrBadInput},
		{"oversized PGM header", func() error { _, err := ReadPGM(strings.NewReader("P5\n999999 999999\n255\n")); return err }, ErrLabelOverflow},
		{"census mismatched sides", func() error { _, err := CensusErr(NewLabels(8), GenCrossImage(16)); return err }, ErrGeometry},
		{"threshold malformed image", func() error { _, err := ThresholdErr(&Image{N: 4, Pix: nil}, 1); return err }, ErrGeometry},
		{"seq oversized image", func() error { _, err := LabelSequentialErr(oversized, Conn8, Binary); return err }, ErrLabelOverflow},
		{"par oversized image", func() error { _, err := LabelParallelErr(oversized, LabelOptions{}); return err }, ErrLabelOverflow},
		{"par bad connectivity", func() error {
			_, err := LabelParallelErr(GenCrossImage(16), LabelOptions{Conn: Connectivity(5)})
			return err
		}, ErrBadInput},
		{"par bad mode", func() error { _, err := LabelParallelErr(GenCrossImage(16), LabelOptions{Mode: Mode(7)}); return err }, ErrBadInput},
	}
	cases = append(cases, simCases(t, oversized)...)
	for _, c := range cases {
		err := c.fn()
		if err == nil {
			t.Errorf("%s: want error, got nil", c.name)
			continue
		}
		if !errors.Is(err, c.kind) {
			t.Errorf("%s: error %q is not %v", c.name, err, c.kind)
		}
		if !errors.Is(err, ErrBadInput) {
			t.Errorf("%s: error %q is outside the taxonomy (not ErrBadInput)", c.name, err)
		}
	}
}

// simCases are the taxonomy cases that need a live simulator.
func simCases(t *testing.T, oversized *Image) []struct {
	name string
	fn   func() error
	kind error
} {
	t.Helper()
	sim, err := NewSimulator(4, Ideal)
	if err != nil {
		t.Fatal(err)
	}
	return []struct {
		name string
		fn   func() error
		kind error
	}{
		{"sim oversized image", func() error { _, err := sim.Label(oversized, LabelOptions{}); return err }, ErrLabelOverflow},
		{"sim bad connectivity", func() error { _, err := sim.Label(GenCrossImage(16), LabelOptions{Conn: Connectivity(5)}); return err }, ErrBadInput},
		{"sim hist k not power of two", func() error { _, err := sim.Histogram(GenCrossImage(16), 3); return err }, ErrGreyRange},
		{"sim hist grey over k", func() error { _, err := sim.Histogram(RandomGrey(16, 16, 1), 4); return err }, ErrGreyRange},
		{"sim equalize bad k", func() error { _, err := sim.Equalize(GenCrossImage(16), 0); return err }, ErrGreyRange},
		{"sim census mismatch", func() error { _, err := sim.Census(GenCrossImage(16), NewLabels(8)); return err }, ErrGeometry},
	}
}

// GenCrossImage is a tiny helper for the error tables: a valid cross
// pattern at side n.
func GenCrossImage(n int) *Image { return GeneratePattern(Cross, n) }

// TestInputErrorContext asserts the concrete *InputError is retrievable
// with errors.As and carries the offending parameters.
func TestInputErrorContext(t *testing.T) {
	_, err := NewSimulator(12, CM5)
	var ie *InputError
	if !errors.As(err, &ie) {
		t.Fatalf("error %v does not unwrap to *InputError", err)
	}
	if ie.P != 12 {
		t.Errorf("InputError.P = %d, want 12", ie.P)
	}
	_, err = LabelParallelErr(&Image{N: MaxSide + 1}, LabelOptions{})
	if !errors.As(err, &ie) {
		t.Fatalf("error %v does not unwrap to *InputError", err)
	}
	if ie.N != MaxSide+1 {
		t.Errorf("InputError.N = %d, want %d", ie.N, MaxSide+1)
	}
}

// TestCommentPGMAccepted pins the '#'-comment fix at the public boundary.
func TestCommentPGMAccepted(t *testing.T) {
	data := "P5\n# made by hand\n2 2\n255\n" + string([]byte{1, 2, 3, 4})
	im, err := ReadPGM(strings.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if im.N != 2 || im.Pix[3] != 4 {
		t.Errorf("parsed %v", im)
	}
}

// TestValidInputsStillExact pins the non-regression half of the contract:
// after all the validation work, valid inputs still produce results that
// are pixel-identical across backends.
func TestValidInputsStillExact(t *testing.T) {
	im := GeneratePattern(DualSpiral, 64)
	want := LabelSequential(im, Conn8, Binary)
	got, err := LabelParallelErr(im, LabelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Lab {
		if got.Lab[i] != want.Lab[i] {
			t.Fatalf("par pixel %d: %d, want %d", i, got.Lab[i], want.Lab[i])
		}
	}
	sim, err := NewSimulator(4, Ideal)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Label(im, LabelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Lab {
		if res.Labels.Lab[i] != want.Lab[i] {
			t.Fatalf("sim pixel %d: %d, want %d", i, res.Labels.Lab[i], want.Lab[i])
		}
	}
}
