package parimg

import (
	"bytes"
	"encoding/json"
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"

	"parimg/internal/serve"
)

// The end-to-end contract of the labeling service on the benchmark scene:
// POSTing darpa_before.pgm must return the exact census of the sequential
// reference labeling, byte-for-byte stable across runs (census order is
// size-descending with label tie-breaks, and the JSON field order is
// fixed), so the golden file doubles as the CI serve-smoke expectation.

var updateGolden = flag.Bool("update", false, "rewrite golden files under testdata/")

const serveCensusGolden = "testdata/serve_darpa_census.json"

// TestServeDarpaCensusGolden drives the full HTTP path — PGM decode,
// scheduler, pooled engine, census — on the DARPA benchmark image and pins
// the response body against the committed golden. Regenerate with
// `go test -run TestServeDarpaCensusGolden -update .` after an intentional
// census or response-format change.
func TestServeDarpaCensusGolden(t *testing.T) {
	pgm, err := os.ReadFile("darpa_before.pgm")
	if err != nil {
		t.Fatalf("reading benchmark image: %v", err)
	}

	s, err := serve.New(serve.Config{Engines: 2, EngineWorkers: 1, Oversubscribe: 64})
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/label?mode=grey&census=1", "image/x-portable-graymap", bytes.NewReader(pgm))
	if err != nil {
		t.Fatalf("POST /label: %v", err)
	}
	defer resp.Body.Close()
	var body bytes.Buffer
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatalf("reading response: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body.Bytes())
	}

	// Semantic check first: the served census must equal the census of the
	// sequential reference labeling, independent of the golden's freshness.
	var lr serve.LabelResponse
	if err := json.Unmarshal(body.Bytes(), &lr); err != nil {
		t.Fatalf("response is not LabelResponse JSON: %v", err)
	}
	im, err := ReadPGM(bytes.NewReader(pgm))
	if err != nil {
		t.Fatalf("re-reading benchmark image: %v", err)
	}
	want := Census(LabelSequential(im, Conn8, Grey), im)
	if lr.Components != len(want) {
		t.Fatalf("components = %d, want %d", lr.Components, len(want))
	}
	if len(lr.Census) != len(want) {
		t.Fatalf("census has %d entries, want %d", len(lr.Census), len(want))
	}
	for i := range want {
		if lr.Census[i] != want[i] {
			t.Fatalf("census[%d] = %+v, want %+v", i, lr.Census[i], want[i])
		}
	}

	if *updateGolden {
		if err := os.WriteFile(serveCensusGolden, body.Bytes(), 0o644); err != nil {
			t.Fatalf("writing golden: %v", err)
		}
		t.Logf("rewrote %s (%d bytes)", serveCensusGolden, body.Len())
		return
	}
	golden, err := os.ReadFile(serveCensusGolden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create it): %v", err)
	}
	if !bytes.Equal(body.Bytes(), golden) {
		t.Fatalf("response differs from %s (%d vs %d bytes); rerun with -update if the change is intentional",
			serveCensusGolden, body.Len(), len(golden))
	}
}
