package parimg_test

import (
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"parimg"
	"parimg/internal/obs"
)

// TestParMetricsPhasesCoverTotal pins the headline acceptance property of
// the measured side: the recorded top-level phase wall times of one
// host-parallel labeling sum to within 5% of the end-to-end wall time.
// Wall clocks on shared machines are noisy, so one clean attempt out of
// five passes.
func TestParMetricsPhasesCoverTotal(t *testing.T) {
	im := parimg.GeneratePattern(parimg.DualSpiral, 512)
	eng := parimg.NewParallelEngine(4)
	eng.SetAlgo(parimg.AlgoRuns)
	rec := parimg.NewMetricsRecorder()
	eng.SetObserver(rec)
	out := parimg.NewLabels(im.N)

	var best float64
	for attempt := 0; attempt < 5; attempt++ {
		rec.Reset()
		start := time.Now()
		eng.LabelInto(im, parimg.Conn8, parimg.Binary, out)
		total := time.Since(start).Nanoseconds()
		m := rec.Snapshot()
		m.TotalNS = total
		if err := m.Validate(); err != nil {
			t.Fatal(err)
		}
		covered := float64(m.WallPhaseNS()) / float64(total)
		if covered > best {
			best = covered
		}
		if covered >= 0.95 && covered <= 1.0 {
			for _, name := range []string{"strip_label", "border_merge", "relabel", "cleanup"} {
				if m.WallPhaseNS(name) <= 0 {
					t.Errorf("phase %q not recorded", name)
				}
			}
			return
		}
	}
	t.Errorf("phase wall times cover %.1f%% of the end-to-end time, want >= 95%%", 100*best)
}

// TestSimMetricsModelPhasesAndComm pins the modeled side: the top-level
// modeled phases of a simulated labeling sum to the run's SimTime exactly
// (rank-0 barrier marks partition the run), and the communication volume
// is attributed to the labeling's primitives.
func TestSimMetricsModelPhasesAndComm(t *testing.T) {
	sim, err := parimg.NewSimulator(16, parimg.CM5)
	if err != nil {
		t.Fatal(err)
	}
	rec := parimg.NewMetricsRecorder()
	sim.SetObserver(rec)
	im := parimg.GeneratePattern(parimg.DualSpiral, 256)
	res, err := sim.Label(im, parimg.LabelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m := rec.Snapshot()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	sum := m.ModelPhaseS()
	if rel := math.Abs(sum-res.Report.SimTime) / res.Report.SimTime; rel > 1e-6 {
		t.Errorf("modeled phases sum to %.9f s, SimTime is %.9f s (rel err %.2g)",
			sum, res.Report.SimTime, rel)
	}
	for _, name := range []string{"init", "merge", "final_update"} {
		if m.ModelPhaseS(name) <= 0 {
			t.Errorf("modeled phase %q not recorded", name)
		}
	}
	comm := make(map[string]parimg.CommStat, len(m.Comm))
	for _, c := range m.Comm {
		comm[c.Name] = c
	}
	for _, name := range []string{"border_fetch", "change_dist"} {
		c, ok := comm[name]
		if !ok || c.Taus <= 0 || c.Words <= 0 {
			t.Errorf("comm primitive %q missing or empty: %+v", name, c)
		}
	}
}

// TestSimHistogramMetrics checks the histogram pipeline's modeled phases
// and its transpose/collect communication attribution.
func TestSimHistogramMetrics(t *testing.T) {
	sim, err := parimg.NewSimulator(16, parimg.CM5)
	if err != nil {
		t.Fatal(err)
	}
	rec := parimg.NewMetricsRecorder()
	sim.SetObserver(rec)
	im := parimg.RandomGrey(128, 256, 1)
	res, err := sim.Histogram(im, 256)
	if err != nil {
		t.Fatal(err)
	}
	m := rec.Snapshot()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	sum := m.ModelPhaseS()
	if rel := math.Abs(sum-res.Report.SimTime) / res.Report.SimTime; rel > 1e-6 {
		t.Errorf("modeled phases sum to %.9f s, SimTime is %.9f s", sum, res.Report.SimTime)
	}
	for _, name := range []string{"tally", "rearrange_combine", "collect"} {
		if m.ModelPhaseS(name) <= 0 {
			t.Errorf("modeled phase %q not recorded", name)
		}
	}
	var sawTranspose, sawCollect bool
	for _, c := range m.Comm {
		switch c.Name {
		case "transpose", "truncated_transpose":
			sawTranspose = true
		case "collect":
			sawCollect = true
		}
	}
	if !sawTranspose || !sawCollect {
		t.Errorf("histogram comm attribution incomplete: %+v", m.Comm)
	}
}

// TestMetricsFlagSmoke is the CI smoke test for the -metrics flag: run the
// actual imgcc binary on a small pattern for both host-parallel and
// simulator backends and validate the emitted JSON against the schema
// (obs.ReadFile validates on read).
func TestMetricsFlagSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds cmd/imgcc; skipped in -short mode")
	}
	dir := t.TempDir()

	parPath := filepath.Join(dir, "par.json")
	runImgcc(t, "-pattern", "four-squares", "-n", "128", "-backend", "par",
		"-algo", "runs", "-workers", "2", "-top", "0", "-metrics", parPath)
	m, err := obs.ReadFile(parPath)
	if err != nil {
		t.Fatal(err)
	}
	if m.Backend != "par" || m.Algo != "runs" || m.Workers != 2 ||
		m.N != 128 || m.Image != "four-squares" {
		t.Errorf("par metrics context fields wrong: %+v", m)
	}
	if len(m.Phases) == 0 || m.TotalNS <= 0 || m.Counters["runs"] == 0 {
		t.Errorf("par metrics measurements missing: %+v", m)
	}

	simPath := filepath.Join(dir, "sim.json")
	runImgcc(t, "-pattern", "four-squares", "-n", "128", "-backend", "sim",
		"-p", "4", "-top", "0", "-metrics", simPath)
	m, err = obs.ReadFile(simPath)
	if err != nil {
		t.Fatal(err)
	}
	if m.Backend != "sim" || m.Procs != 4 || m.SimTimeS <= 0 {
		t.Errorf("sim metrics context fields wrong: %+v", m)
	}
	if len(m.Phases) == 0 || len(m.Comm) == 0 {
		t.Errorf("sim metrics measurements missing: %+v", m)
	}
}

func runImgcc(t *testing.T, args ...string) {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run", "./cmd/imgcc"}, args...)...)
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("imgcc %v: %v", args, err)
	}
}
