package parimg_test

import (
	"fmt"

	"parimg"
)

// Example labels the four-squares catalog image on a simulated 16-processor
// CM-5 and prints the component census.
func Example() {
	im := parimg.GeneratePattern(parimg.FourSquares, 64)
	sim, err := parimg.NewSimulator(16, parimg.CM5)
	if err != nil {
		panic(err)
	}
	res, err := sim.Label(im, parimg.LabelOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Println("components:", res.Components)
	for _, s := range parimg.Census(res.Labels, im) {
		fmt.Printf("label %d: %d pixels\n", s.Label, s.Size)
	}
	// Output:
	// components: 4
	// label 521: 256 pixels
	// label 553: 256 pixels
	// label 2569: 256 pixels
	// label 2601: 256 pixels
}

// ExampleSimulator_Histogram computes a histogram and checks the paper's
// correctness invariant, sum H[i] = n^2.
func ExampleSimulator_Histogram() {
	im := parimg.GeneratePattern(parimg.Cross, 64)
	sim, err := parimg.NewSimulator(4, parimg.SP2)
	if err != nil {
		panic(err)
	}
	res, err := sim.Histogram(im, 2)
	if err != nil {
		panic(err)
	}
	fmt.Println("background:", res.H[0])
	fmt.Println("foreground:", res.H[1])
	fmt.Println("total:", res.H[0]+res.H[1])
	// Output:
	// background: 3136
	// foreground: 960
	// total: 4096
}

// ExampleSimulator_Label shows connectivity semantics: diagonal contacts
// join components under 8-connectivity only.
func ExampleSimulator_Label() {
	im := parimg.NewImage(8)
	im.Set(1, 1, 1)
	im.Set(2, 2, 1) // diagonal neighbor
	sim, err := parimg.NewSimulator(4, parimg.CM5)
	if err != nil {
		panic(err)
	}
	r8, _ := sim.Label(im, parimg.LabelOptions{Conn: parimg.Conn8})
	r4, _ := sim.Label(im, parimg.LabelOptions{Conn: parimg.Conn4})
	fmt.Println("8-connectivity:", r8.Components)
	fmt.Println("4-connectivity:", r4.Components)
	// Output:
	// 8-connectivity: 1
	// 4-connectivity: 2
}

// ExampleLabelOptions labels on the host-parallel backend with a metrics
// recorder installed and reads the run's phase and counter record. The run
// count (maximal foreground runs) is a property of the image alone, so it
// is stable across worker counts; phase wall times vary per host and are
// only checked for presence.
func ExampleLabelOptions() {
	im := parimg.GeneratePattern(parimg.FourSquares, 64)
	rec := parimg.NewMetricsRecorder()
	labels := parimg.LabelParallel(im, parimg.LabelOptions{
		Conn:    parimg.Conn8,
		Algo:    parimg.AlgoRuns,
		Metrics: rec,
	})
	m := rec.Snapshot()
	fmt.Println("components:", labels.Components())
	fmt.Println("phases recorded:", len(m.Phases) > 0)
	fmt.Println("runs extracted:", m.Counters["runs"])
	// Output:
	// components: 4
	// phases recorded: true
	// runs extracted: 64
}

// ExampleOtsuThreshold segments a bimodal histogram.
func ExampleOtsuThreshold() {
	h := make([]int64, 16)
	h[2], h[3] = 500, 400 // dark mode
	h[12], h[13] = 300, 350
	fmt.Println("threshold:", parimg.OtsuThreshold(h))
	// Output:
	// threshold: 4
}
