package parimg

import "testing"

// TestPublicParallelMatchesSequential checks the exported host-parallel
// entry points against the exported sequential baseline: labelings must be
// pixel-for-pixel identical and histograms equal.
func TestPublicParallelMatchesSequential(t *testing.T) {
	for _, id := range AllPatterns() {
		im := GeneratePattern(id, 96)
		for _, conn := range []Connectivity{Conn4, Conn8} {
			want := LabelSequential(im, conn, Binary)
			got := LabelParallel(im, LabelOptions{Conn: conn})
			for i := range want.Lab {
				if got.Lab[i] != want.Lab[i] {
					t.Fatalf("%v/%v: label mismatch at pixel %d: got %d, want %d",
						id, conn, i, got.Lab[i], want.Lab[i])
				}
			}
		}
	}

	im := DARPAImage()
	hseq, err := HistogramSequential(im, 256)
	if err != nil {
		t.Fatal(err)
	}
	hpar, err := HistogramParallel(im, 256)
	if err != nil {
		t.Fatal(err)
	}
	for i := range hseq {
		if hseq[i] != hpar[i] {
			t.Fatalf("H[%d] = %d, want %d", i, hpar[i], hseq[i])
		}
	}
}

// TestPublicParallelEngineReuse drives the pinned-engine API through
// LabelInto across sizes, verifying component counts against the labeling.
func TestPublicParallelEngineReuse(t *testing.T) {
	eng := NewParallelEngine(4)
	for i, n := range []int{32, 96, 64} {
		im := RandomBinary(n, 0.6, uint64(i+1))
		want := LabelSequential(im, Conn8, Binary)
		out := NewLabels(n)
		ncomp := eng.LabelInto(im, Conn8, Binary, out)
		if ncomp != want.Components() {
			t.Fatalf("n=%d: components = %d, want %d", n, ncomp, want.Components())
		}
		for j := range want.Lab {
			if out.Lab[j] != want.Lab[j] {
				t.Fatalf("n=%d: mismatch at %d", n, j)
			}
		}
	}
}
