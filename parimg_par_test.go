package parimg

import "testing"

// TestPublicParallelMatchesSequential checks the exported host-parallel
// entry points against the exported sequential baseline: labelings must be
// pixel-for-pixel identical and histograms equal.
func TestPublicParallelMatchesSequential(t *testing.T) {
	for _, id := range AllPatterns() {
		im := GeneratePattern(id, 96)
		for _, conn := range []Connectivity{Conn4, Conn8} {
			want := LabelSequential(im, conn, Binary)
			got := LabelParallel(im, LabelOptions{Conn: conn})
			for i := range want.Lab {
				if got.Lab[i] != want.Lab[i] {
					t.Fatalf("%v/%v: label mismatch at pixel %d: got %d, want %d",
						id, conn, i, got.Lab[i], want.Lab[i])
				}
			}
		}
	}

	im := DARPAImage()
	hseq, err := HistogramSequential(im, 256)
	if err != nil {
		t.Fatal(err)
	}
	hpar, err := HistogramParallel(im, 256)
	if err != nil {
		t.Fatal(err)
	}
	for i := range hseq {
		if hseq[i] != hpar[i] {
			t.Fatalf("H[%d] = %d, want %d", i, hpar[i], hseq[i])
		}
	}
}

// TestPublicParallelEngineReuse drives the pinned-engine API through
// LabelInto across sizes, verifying component counts against the labeling.
func TestPublicParallelEngineReuse(t *testing.T) {
	eng := NewParallelEngine(4)
	for i, n := range []int{32, 96, 64} {
		im := RandomBinary(n, 0.6, uint64(i+1))
		want := LabelSequential(im, Conn8, Binary)
		out := NewLabels(n)
		ncomp := eng.LabelInto(im, Conn8, Binary, out)
		if ncomp != want.Components() {
			t.Fatalf("n=%d: components = %d, want %d", n, ncomp, want.Components())
		}
		for j := range want.Lab {
			if out.Lab[j] != want.Lab[j] {
				t.Fatalf("n=%d: mismatch at %d", n, j)
			}
		}
	}
}

// TestPublicAlgoOption drives every exported Algo through LabelParallel
// and a pinned engine: all choices must reproduce the sequential labeling
// exactly, including the grey-mode fallback from the run engine to BFS.
func TestPublicAlgoOption(t *testing.T) {
	im := GeneratePattern(DualSpiral, 96)
	want := LabelSequential(im, Conn8, Binary)
	for _, algo := range []Algo{AlgoAuto, AlgoBFS, AlgoRuns} {
		got := LabelParallel(im, LabelOptions{Conn: Conn8, Algo: algo})
		for i := range want.Lab {
			if got.Lab[i] != want.Lab[i] {
				t.Fatalf("algo=%v: label mismatch at pixel %d: got %d, want %d",
					algo, i, got.Lab[i], want.Lab[i])
			}
		}

		eng := NewParallelEngine(3)
		eng.SetAlgo(algo)
		out := NewLabels(96)
		eng.LabelInto(im, Conn8, Binary, out)
		for i := range want.Lab {
			if out.Lab[i] != want.Lab[i] {
				t.Fatalf("engine algo=%v: mismatch at pixel %d", algo, i)
			}
		}
	}

	// Grey mode with a forced run algorithm must fall back to BFS and
	// still match the grey sequential reference.
	grey := RandomGrey(64, 8, 9)
	wantG := LabelSequential(grey, Conn8, Grey)
	gotG := LabelParallel(grey, LabelOptions{Conn: Conn8, Mode: Grey, Algo: AlgoRuns})
	for i := range wantG.Lab {
		if gotG.Lab[i] != wantG.Lab[i] {
			t.Fatalf("grey fallback: mismatch at pixel %d: got %d, want %d",
				i, gotG.Lab[i], wantG.Lab[i])
		}
	}
}

// TestParseAlgoPublic checks the exported flag-value parser.
func TestParseAlgoPublic(t *testing.T) {
	for s, want := range map[string]Algo{"auto": AlgoAuto, "bfs": AlgoBFS, "runs": AlgoRuns} {
		got, err := ParseAlgo(s)
		if err != nil || got != want {
			t.Errorf("ParseAlgo(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseAlgo("nope"); err == nil {
		t.Error("ParseAlgo(nope): want error")
	}
}
