package parimg

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
)

// FuzzReadPGM feeds arbitrary bytes to the PGM parser. The contract under
// test: ReadPGM returns either a typed error or a well-formed square image
// — it never panics, and it never returns an image that fails Check (which
// would let a hostile file smuggle a malformed struct past every
// downstream validation).
func FuzzReadPGM(f *testing.F) {
	f.Add([]byte("P5\n2 2\n255\n\x01\x02\x03\x04"))
	f.Add([]byte("P5\n# comment line\n2 2\n255\n\x01\x02\x03\x04"))
	f.Add([]byte("P5\n0 0\n255\n"))
	f.Add([]byte("P5\n65535 65535\n255\n"))
	f.Add([]byte("P5\n2 3\n255\n......"))
	f.Add([]byte("P5\n4 4\n255\nxy"))
	f.Add([]byte("P2\n2 2\n255\n1 2 3 4"))
	f.Add([]byte("P5\n" + strings.Repeat("9", 64) + " 2\n255\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		im, err := ReadPGM(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrBadInput) {
				t.Fatalf("ReadPGM error %q is outside the taxonomy", err)
			}
			return
		}
		if im == nil {
			t.Fatal("ReadPGM returned nil image and nil error")
		}
		if im.N <= 0 || im.N > MaxSide || len(im.Pix) != im.N*im.N {
			t.Fatalf("ReadPGM returned malformed image: N=%d len(Pix)=%d", im.N, len(im.Pix))
		}
	})
}

// FuzzPublicAPI drives the whole public surface — image construction,
// histogramming and labeling on the seq, par and sim backends — with
// arbitrary parameters. Every call must return a typed error or a correct
// result; when a backend accepts the input, its labeling must be
// pixel-identical to the sequential baseline.
//
// Parameters are plain ints so corpus entries stay hand-writable. Sizes
// are used directly when small enough to materialize (1..64); anything
// else exercises the validators through a hostile header-only struct, so
// the harness covers n = MaxSide+1 without allocating 17 GB.
func FuzzPublicAPI(f *testing.F) {
	f.Add(16, 4, 8, 8, 0, 0, uint64(1))
	f.Add(0, 3, 0, 3, 0, 0, uint64(1))         // everything invalid
	f.Add(-5, -8, -2, 9, 7, 3, uint64(2))      // negative sizes, bad conn/mode
	f.Add(MaxSide+1, 4, 8, 8, 0, 0, uint64(1)) // seed-label overflow bound
	f.Add(70000, 2, 256, 4, 1, 1, uint64(9))   // far past the bound
	f.Add(MaxSide, 1, 2, 8, 0, 2, uint64(3))   // boundary side, header-only
	f.Add(33, 8, 4, 4, 1, 2, uint64(7))        // odd side, grey mode
	f.Add(32, 4, 16, 8, 1, 1, uint64(11))      // canceled-context leg, grey mode
	f.Fuzz(func(t *testing.T, n, p, k, conn, mode, algo int, seed uint64) {
		var im *Image
		if n >= 1 && n <= 64 {
			im = RandomGrey(n, 4, seed)
		} else {
			// Hostile struct: arbitrary N with no backing pixels. Every
			// entry point must reject it, not index into it.
			im = &Image{N: n}
		}
		opt := LabelOptions{
			Conn: Connectivity(conn),
			Mode: Mode(mode),
			Algo: Algo(((algo % 3) + 3) % 3),
			// The merge backend rides the same fuzzed int (higher trits),
			// so existing corpus entries stay valid and still pick a
			// deterministic backend: auto, tree or sv.
			Merge: Merge(((algo / 3 % 3) + 3) % 3),
		}

		// Canceled-context leg: however hostile the rest of the input, a
		// pre-canceled context must yield a typed error — either the
		// cancellation itself or the input rejection that beat it to the
		// boundary — and never a panic or a nil-error result.
		canceledCtx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := LabelContext(canceledCtx, im, opt); err == nil {
			t.Fatal("LabelContext accepted a pre-canceled context")
		} else if !errors.Is(err, ErrCanceled) && !errors.Is(err, ErrBadInput) {
			t.Fatalf("LabelContext(canceled): error %q is outside the taxonomy", err)
		}
		if _, err := HistogramContext(canceledCtx, im, k); err == nil {
			t.Fatal("HistogramContext accepted a pre-canceled context")
		} else if !errors.Is(err, ErrCanceled) && !errors.Is(err, ErrBadInput) {
			t.Fatalf("HistogramContext(canceled): error %q is outside the taxonomy", err)
		}

		seqLabels, seqErr := LabelSequentialErr(im, opt.Conn, opt.Mode)
		checkTyped(t, "LabelSequentialErr", seqErr)

		parLabels, parErr := LabelParallelErr(im, opt)
		checkTyped(t, "LabelParallelErr", parErr)
		// Conn 0 means "default to Conn8" on the parallel path only, so
		// error parity is asserted for explicitly-set connectivity.
		if conn != 0 && mode == 0 {
			if (seqErr == nil) != (parErr == nil) {
				t.Fatalf("backend error disagreement: seq=%v par=%v", seqErr, parErr)
			}
		}
		if seqErr == nil && parErr == nil && conn != 0 {
			comparePixels(t, "par", seqLabels, parLabels)
		}

		if _, err := HistogramSequential(im, k); err != nil {
			checkTyped(t, "HistogramSequential", err)
		}
		if _, err := HistogramParallel(im, k); err != nil {
			checkTyped(t, "HistogramParallel", err)
		}

		sim, err := NewSimulator(p, CM5)
		if err != nil {
			checkTyped(t, "NewSimulator", err)
			return
		}
		res, err := sim.Label(im, opt)
		checkTyped(t, "Simulator.Label", err)
		if err == nil && seqErr == nil && conn != 0 {
			comparePixels(t, "sim", seqLabels, res.Labels)
		}
		if _, err := sim.Histogram(im, k); err != nil {
			checkTyped(t, "Simulator.Histogram", err)
		}
	})
}

// checkTyped asserts an error (if any) belongs to the taxonomy.
func checkTyped(t *testing.T, op string, err error) {
	t.Helper()
	if err != nil && !errors.Is(err, ErrBadInput) {
		t.Fatalf("%s: error %q is outside the taxonomy", op, err)
	}
}

// comparePixels asserts two labelings agree pixel-for-pixel.
func comparePixels(t *testing.T, backend string, want, got *Labels) {
	t.Helper()
	if got.N != want.N {
		t.Fatalf("%s: labeling side %d, want %d", backend, got.N, want.N)
	}
	for i := range want.Lab {
		if got.Lab[i] != want.Lab[i] {
			t.Fatalf("%s: pixel %d labeled %d, want %d", backend, i, got.Lab[i], want.Lab[i])
		}
	}
}

// TestNoPanic is the recover-asserting boundary test: each public entry
// point is hit with the most hostile input that historically panicked (or
// silently corrupted results), and the test fails naming the entry point
// if a panic escapes instead of a returned error.
func TestNoPanic(t *testing.T) {
	sim, err := NewSimulator(4, CM5)
	if err != nil {
		t.Fatal(err)
	}
	oversized := &Image{N: MaxSide + 1}
	ragged := &Image{N: 8, Pix: make([]uint32, 3)}
	hotGrey := &Image{N: 2, Pix: []uint32{0, 1, 1 << 30, 1}}
	entries := []struct {
		name string
		call func() error
	}{
		{"ReadPGM/garbage", func() error { _, err := ReadPGM(strings.NewReader("P5\n\xff\xff")); return err }},
		{"ReadPGM/huge header", func() error { _, err := ReadPGM(strings.NewReader("P5\n1000000 1000000\n255\n")); return err }},
		{"NewImageErr/negative", func() error { _, err := NewImageErr(-1); return err }},
		{"NewSimulator/zero", func() error { _, err := NewSimulator(0, CM5); return err }},
		{"LabelSequentialErr/oversized", func() error { _, err := LabelSequentialErr(oversized, Conn8, Binary); return err }},
		{"LabelSequentialErr/ragged", func() error { _, err := LabelSequentialErr(ragged, Conn8, Binary); return err }},
		{"LabelParallelErr/oversized", func() error { _, err := LabelParallelErr(oversized, LabelOptions{}); return err }},
		{"LabelParallelErr/ragged", func() error { _, err := LabelParallelErr(ragged, LabelOptions{}); return err }},
		{"LabelParallelErr/bad conn", func() error {
			_, err := LabelParallelErr(GenCrossImage(8), LabelOptions{Conn: Connectivity(99)})
			return err
		}},
		{"Simulator.Label/oversized", func() error { _, err := sim.Label(oversized, LabelOptions{}); return err }},
		{"Simulator.Label/ragged", func() error { _, err := sim.Label(ragged, LabelOptions{}); return err }},
		{"Simulator.Histogram/hot grey", func() error { _, err := sim.Histogram(hotGrey, 4); return err }},
		{"Simulator.Equalize/bad k", func() error { _, err := sim.Equalize(GenCrossImage(8), -3); return err }},
		{"Simulator.Census/mismatch", func() error { _, err := sim.Census(GenCrossImage(16), NewLabels(4)); return err }},
		{"HistogramSequential/hot grey", func() error { _, err := HistogramSequential(hotGrey, 4); return err }},
		{"HistogramParallel/hot grey", func() error { _, err := HistogramParallel(hotGrey, 4); return err }},
		{"HistogramParallel/nil", func() error { _, err := HistogramParallel(nil, 4); return err }},
		{"ThresholdErr/ragged", func() error { _, err := ThresholdErr(ragged, 1); return err }},
		{"CensusErr/mismatch", func() error { _, err := CensusErr(NewLabels(4), GenCrossImage(16)); return err }},
		{"GeneratePatternErr/unknown", func() error { _, err := GeneratePatternErr(PatternID(-1), 16); return err }},
		{"RandomBinaryErr/NaN-ish density", func() error { _, err := RandomBinaryErr(16, -0.01, 1); return err }},
		{"RandomGreyErr/k=1", func() error { _, err := RandomGreyErr(16, 1, 1); return err }},
	}
	for _, e := range entries {
		err := func() (err error) {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("%s: panicked: %v", e.name, r)
					err = fmt.Errorf("panic: %v", r)
				}
			}()
			return e.call()
		}()
		if err == nil {
			t.Errorf("%s: hostile input accepted (nil error)", e.name)
		} else if !errors.Is(err, ErrBadInput) && !strings.HasPrefix(err.Error(), "panic:") {
			t.Errorf("%s: error %q is outside the taxonomy", e.name, err)
		}
	}
}
