module parimg

go 1.22
