// Benchmarks for the host-parallel engine (real wall-clock, no cost model)
// and for the zero-allocation claims of the reworked simulator hot paths.
//
// BenchmarkParallelCC and BenchmarkParallelHistogram report throughput:
// SetBytes is given one unit per pixel, so the harness's MB/s column reads
// directly as MPix/s. BenchmarkRepeatedLabel measures the steady-state
// allocation cost of calling Simulator.Label in a loop (run with -benchmem;
// the seed did ~4500 allocs and ~1.6 MB per call at p=16, n=256).
package parimg

import (
	"fmt"
	"runtime"
	"testing"
)

// BenchmarkParallelCC measures host-parallel labeling throughput on the
// dual-spiral pattern (the catalog's hardest) across strip algorithms,
// sizes and worker counts; the workers=1 rows are the sequential anchor
// for speedup, and the bfs-vs-runs pairs are the in-tree form of the
// BENCH_runs.json matrix.
func BenchmarkParallelCC(b *testing.B) {
	for _, algo := range []Algo{AlgoBFS, AlgoRuns} {
		for _, n := range []int{512, 1024} {
			im := GeneratePattern(DualSpiral, n)
			for _, w := range []int{1, runtime.GOMAXPROCS(0)} {
				b.Run(fmt.Sprintf("algo=%v/n=%d/workers=%d", algo, n, w), func(b *testing.B) {
					e := NewParallelEngine(w)
					e.SetAlgo(algo)
					out := NewLabels(n)
					b.SetBytes(int64(n * n)) // MB/s column == MPix/s
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						e.LabelInto(im, Conn8, Binary, out)
					}
				})
			}
		}
	}
}

// BenchmarkParallelHistogram measures host-parallel histogram throughput
// (k=256) against the single-worker anchor.
func BenchmarkParallelHistogram(b *testing.B) {
	for _, n := range []int{512, 1024} {
		im := RandomGrey(n, 256, uint64(n))
		for _, w := range []int{1, runtime.GOMAXPROCS(0)} {
			b.Run(fmt.Sprintf("n=%d/workers=%d", n, w), func(b *testing.B) {
				e := NewParallelEngine(w)
				h := make([]int64, 256)
				b.SetBytes(int64(n * n))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := e.HistogramInto(im, h); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkSequentialCC is the LabelSequential anchor for the speedup
// reported in BENCH_parallel.json.
func BenchmarkSequentialCC(b *testing.B) {
	for _, n := range []int{512, 1024} {
		im := GeneratePattern(DualSpiral, n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.SetBytes(int64(n * n))
			for i := 0; i < b.N; i++ {
				LabelSequential(im, Conn8, Binary)
			}
		})
	}
}

// BenchmarkRepeatedLabel measures the steady-state cost of repeated
// simulator labelings on one Simulator: the persistent goroutine pool and
// the sync.Pool scratch arena make every run after the first reuse the ~15
// spread arrays and all per-processor scratch.
func BenchmarkRepeatedLabel(b *testing.B) {
	im := GeneratePattern(DualSpiral, 256)
	sim, err := NewSimulator(16, CM5)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := sim.Label(im, LabelOptions{}); err != nil {
		b.Fatal(err) // warm the arena
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Label(im, LabelOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRepeatedHistogram is the histogramming analogue of
// BenchmarkRepeatedLabel.
func BenchmarkRepeatedHistogram(b *testing.B) {
	im := RandomGrey(256, 256, 5)
	sim, err := NewSimulator(16, CM5)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := sim.Histogram(im, 256); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Histogram(im, 256); err != nil {
			b.Fatal(err)
		}
	}
}
