// Quickstart: histogram an image and label its connected components on a
// simulated 32-processor CM-5, then check the results against the
// sequential baselines. This is the smallest end-to-end use of the public
// API.
package main

import (
	"fmt"
	"log"

	"parimg"
)

func main() {
	// One of the paper's nine scalable test patterns: concentric
	// circles with thickness (Figure 1, image 7).
	im := parimg.GeneratePattern(parimg.ConcentricCircles, 512)

	sim, err := parimg.NewSimulator(32, parimg.CM5)
	if err != nil {
		log.Fatal(err)
	}

	// Histogramming (Section 4 of the paper).
	h, err := sim.Histogram(im, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("histogram: %d background, %d foreground pixels (of %d)\n",
		h.H[0], h.H[1], im.N*im.N)
	fmt.Printf("  simulated %.3g s on %s (comp %.3g s, comm %.3g s)\n",
		h.Report.SimTime, h.Report.Cost.Name, h.Report.CompTime, h.Report.CommTime)

	// Connected components (Section 5).
	res, err := sim.Label(im, parimg.LabelOptions{Conn: parimg.Conn8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("connected components: %d rings found in %d merge phases\n",
		res.Components, res.MergePhases)
	fmt.Printf("  simulated %.3g s (comp %.3g s, comm %.3g s)\n",
		res.Report.SimTime, res.Report.CompTime, res.Report.CommTime)

	// The parallel labeling is canonical: it equals the sequential
	// row-major BFS labeling exactly.
	want := parimg.LabelSequential(im, parimg.Conn8, parimg.Binary)
	for i := range want.Lab {
		if res.Labels.Lab[i] != want.Lab[i] {
			log.Fatalf("parallel and sequential labels differ at pixel %d", i)
		}
	}
	fmt.Println("verified: parallel labeling identical to the sequential baseline")
}
