// Percolation: the paper's Section 1 motivates connected components with
// computational physics problems such as percolation. This example runs a
// site-percolation study: for occupation probabilities around the 2-D site
// percolation threshold (p_c ~ 0.5927 under 4-connectivity), it labels
// random lattices with the parallel algorithm and reports whether a
// spanning cluster (touching both the top and bottom row) exists, the
// largest cluster fraction, and the cluster count.
package main

import (
	"fmt"
	"log"

	"parimg"
)

func main() {
	const (
		n     = 512
		procs = 16
		runs  = 3
	)
	sim, err := parimg.NewSimulator(procs, parimg.CM5)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("site percolation on a %dx%d lattice, 4-connectivity, %d runs per point\n", n, n, runs)
	fmt.Printf("%8s  %10s  %14s  %10s  %12s\n", "density", "clusters", "largest frac", "spanning", "sim time")
	for _, density := range []float64{0.50, 0.55, 0.58, 0.5927, 0.61, 0.65, 0.70} {
		var clusters, spanning int
		var largestFrac, simTime float64
		for run := 0; run < runs; run++ {
			im := parimg.RandomBinary(n, density, uint64(run)*7919+uint64(density*1e4))
			res, err := sim.Label(im, parimg.LabelOptions{Conn: parimg.Conn4})
			if err != nil {
				log.Fatal(err)
			}
			clusters += res.Components
			simTime += res.Report.SimTime

			sizes := res.Labels.ComponentSizes()
			occupied := 0
			largest := 0
			for _, s := range sizes {
				occupied += s
				if s > largest {
					largest = s
				}
			}
			if occupied > 0 {
				largestFrac += float64(largest) / float64(occupied)
			}
			if spans(res.Labels) {
				spanning++
			}
		}
		fmt.Printf("%8.4f  %10.1f  %13.1f%%  %6d/%-3d  %10.4gs\n",
			density, float64(clusters)/runs, 100*largestFrac/runs, spanning, runs, simTime/runs)
	}
	fmt.Println("\nbelow p_c~0.593 no run spans; above it the largest cluster dominates")
}

// spans reports whether some cluster touches both the top and bottom rows.
func spans(l *parimg.Labels) bool {
	top := map[uint32]bool{}
	for j := 0; j < l.N; j++ {
		if v := l.At(0, j); v != 0 {
			top[v] = true
		}
	}
	for j := 0; j < l.N; j++ {
		if v := l.At(l.N-1, j); v != 0 && top[v] {
			return true
		}
	}
	return false
}
