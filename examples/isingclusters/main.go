// Ising clusters: Section 1 cites "various cluster Monte Carlo algorithms
// for computing the spin models of magnets such as the two-dimensional
// Ising spin model" as an application of connected component labeling. This
// example runs a small Metropolis simulation of the 2-D Ising model at
// temperatures around the critical point T_c = 2/ln(1+sqrt(2)) ~ 2.269,
// then uses grey-scale connected components (spins +1 and -1 as two grey
// levels) to identify the geometric spin clusters — the identification step
// of Swendsen-Wang-style cluster algorithms.
package main

import (
	"fmt"
	"log"
	"math"

	"parimg"
)

const (
	n      = 256
	sweeps = 60
	procs  = 16
)

func main() {
	sim, err := parimg.NewSimulator(procs, parimg.CM5)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("2-D Ising model, %dx%d lattice, %d Metropolis sweeps per point\n", n, n, sweeps)
	fmt.Printf("%6s  %9s  %10s  %14s  %12s\n", "T", "|m|", "clusters", "largest frac", "label time")
	for _, T := range []float64{1.8, 2.1, 2.269, 2.5, 3.0} {
		spins := simulate(T, uint64(T*1000))

		// Spins as grey levels: +1 -> 1, -1 -> 2. Grey-mode
		// components are exactly the like-spin clusters.
		im := parimg.NewImage(n)
		mag := 0
		for i, s := range spins {
			mag += s
			if s > 0 {
				im.Pix[i] = 1
			} else {
				im.Pix[i] = 2
			}
		}
		res, err := sim.Label(im, parimg.LabelOptions{Conn: parimg.Conn4, Mode: parimg.Grey})
		if err != nil {
			log.Fatal(err)
		}
		largest := 0
		for _, s := range res.Labels.ComponentSizes() {
			if s > largest {
				largest = s
			}
		}
		fmt.Printf("%6.3f  %9.4f  %10d  %13.1f%%  %10.4gs\n",
			T, math.Abs(float64(mag))/float64(n*n), res.Components,
			100*float64(largest)/float64(n*n), res.Report.SimTime)
	}
	fmt.Println("\nbelow T_c one spin phase percolates (few clusters, one dominant);")
	fmt.Println("above T_c the lattice fragments into many small clusters")
}

// simulate runs Metropolis sweeps at temperature T and returns the spin
// field (+1/-1), deterministically from seed.
func simulate(T float64, seed uint64) []int {
	spins := make([]int, n*n)
	rng := seed
	next := func() uint64 {
		rng ^= rng >> 12
		rng ^= rng << 25
		rng ^= rng >> 27
		return rng * 0x2545f4914f6cdd1d
	}
	rand01 := func() float64 { return float64(next()>>11) / float64(1<<53) }
	// Cold start (all spins up): below T_c the system stays in the
	// ordered phase; above T_c it disorders within a few sweeps.
	for i := range spins {
		spins[i] = 1
	}
	beta := 1 / T
	// Precomputed acceptance for the five possible energy deltas.
	acc := map[int]float64{}
	for _, d := range []int{-8, -4, 0, 4, 8} {
		acc[d] = math.Exp(-beta * float64(d))
	}
	for sweep := 0; sweep < sweeps; sweep++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				idx := i*n + j
				nb := spins[((i+1)%n)*n+j] + spins[((i-1+n)%n)*n+j] +
					spins[i*n+(j+1)%n] + spins[i*n+(j-1+n)%n]
				dE := 2 * spins[idx] * nb
				if dE <= 0 || rand01() < acc[dE] {
					spins[idx] = -spins[idx]
				}
			}
		}
	}
	return spins
}
