// Equalization: Section 4 of the paper motivates histogramming with
// histogram normalization (equalization), "a technique that flattens the
// histogram and improves the contrast of an image". This example computes
// the histogram of the synthetic DARPA benchmark scene with the parallel
// algorithm, builds the classic cumulative-distribution equalization map,
// applies it, and writes before/after PGM files. Re-histogramming the
// output shows the flattened distribution.
package main

import (
	"fmt"
	"log"
	"os"

	"parimg"
)

func main() {
	const k = 256
	// A low-contrast version of the benchmark scene: all foreground
	// greys squeezed into the band 96..159, the kind of "clumped
	// together" histogram Section 4 says equalization spreads out.
	im := parimg.DARPAImage()
	for i, v := range im.Pix {
		if v != 0 {
			im.Pix[i] = 96 + v/4
		}
	}

	sim, err := parimg.NewSimulator(32, parimg.SP2)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Histogram(im, k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("histogrammed %dx%d scene in %.3g simulated s on %s\n",
		im.N, im.N, res.Report.SimTime, res.Report.Cost.Name)

	// Equalize over the foreground greys (0 stays background, as
	// everywhere in the paper).
	var fg int64
	for g := 1; g < k; g++ {
		fg += res.H[g]
	}
	out := parimg.Equalize(im, res.H)

	// Re-histogram the equalized image (parallel again) and compare
	// spread: the occupied range should stretch across the full scale.
	res2, err := sim.Histogram(out, k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("foreground grey span before: %d..%d, after: %d..%d\n",
		lo(res.H), hi(res.H), lo(res2.H), hi(res2.H))
	fmt.Printf("max CDF distance from a flat histogram: before %.3f, after %.3f\n",
		cdfDistance(res.H, fg, k), cdfDistance(res2.H, fg, k))

	for _, f := range []struct {
		name string
		im   *parimg.Image
	}{{"darpa_before.pgm", im}, {"darpa_after.pgm", out}} {
		w, err := os.Create(f.name)
		if err != nil {
			log.Fatal(err)
		}
		if err := parimg.WritePGM(w, f.im, 255); err != nil {
			log.Fatal(err)
		}
		if err := w.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", f.name)
	}
}

func lo(h []int64) int {
	for g := 1; g < len(h); g++ {
		if h[g] > 0 {
			return g
		}
	}
	return -1
}

func hi(h []int64) int {
	for g := len(h) - 1; g >= 1; g-- {
		if h[g] > 0 {
			return g
		}
	}
	return -1
}

// cdfDistance is the Kolmogorov-Smirnov style distance between the
// foreground grey-level CDF and the uniform CDF; equalization drives it
// toward zero.
func cdfDistance(h []int64, fg int64, k int) float64 {
	var cum int64
	var worst float64
	for g := 1; g < k; g++ {
		cum += h[g]
		got := float64(cum) / float64(fg)
		want := float64(g) / float64(k-1)
		if d := got - want; d > worst {
			worst = d
		} else if -d > worst {
			worst = -d
		}
	}
	return worst
}
