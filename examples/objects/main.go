// Objects: connected component labeling "is cited as an important object
// recognition problem in the DARPA Image Understanding benchmarks"
// (Section 1). This example runs the full recognition front end on the
// synthetic benchmark scene: grey-scale connected components on a
// simulated 64-processor machine, then a census of the labeled objects —
// area, bounding box, centroid and grey level per component — and prints
// the largest detected objects, the kind of measurement the benchmark's
// "2.5-D mobile" task starts from.
package main

import (
	"fmt"
	"log"

	"parimg"
)

func main() {
	im := parimg.DARPAImage()

	sim, err := parimg.NewSimulator(64, parimg.CM5)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Label(im, parimg.LabelOptions{
		Conn: parimg.Conn8,
		Mode: parimg.Grey,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("labeled %dx%d scene: %d objects in %.3g simulated s on %s\n",
		im.N, im.N, res.Components, res.Report.SimTime, res.Report.Cost.Name)

	// The census itself also runs on the simulated machine.
	census, err := sim.Census(im, res.Labels)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parallel census in %.3g simulated s\n\n", census.Report.SimTime)

	objs := parimg.ClassifyObjects(res.Labels, im)
	fmt.Printf("%4s  %-9s  %7s  %-17s  %-14s  %5s\n",
		"#", "class", "pixels", "bbox (r0,c0-r1,c1)", "centroid", "grey")
	for i, o := range objs {
		if i >= 12 {
			fmt.Printf("... and %d smaller objects\n", len(objs)-i)
			break
		}
		fmt.Printf("%4d  %-9v  %7d  (%3d,%3d-%3d,%3d)  (%6.1f,%6.1f)  %5d\n",
			i+1, o.Class, o.Size, o.MinRow, o.MinCol, o.MaxRow, o.MaxCol,
			o.CentroidRow, o.CentroidCol, o.Grey)
	}

	// Class summary, as a recognition pipeline would compute before
	// matching the mobile's parts.
	counts := map[parimg.ObjectClass]int{}
	for _, o := range objs {
		counts[o.Class]++
	}
	fmt.Printf("\n%d objects:", len(objs))
	for _, c := range []parimg.ObjectClass{
		parimg.ClassBar, parimg.ClassRectangle, parimg.ClassDisc,
		parimg.ClassRing, parimg.ClassBlob, parimg.ClassSpeck,
	} {
		if counts[c] > 0 {
			fmt.Printf(" %d %vs", counts[c], c)
		}
	}
	fmt.Println()
}
