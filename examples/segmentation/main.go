// Segmentation: the full classical pipeline built from both of the paper's
// primitives — histogram the scene in parallel, pick an automatic (Otsu)
// threshold from the histogram, binarize, label the binary components in
// parallel, and report the segment census. It also demonstrates the
// per-stage time breakdown of the labeling run (initialization, each of
// the log p merge iterations, final update).
package main

import (
	"fmt"
	"log"

	"parimg"
)

func main() {
	// A low-contrast scene: the benchmark mobile compressed into a
	// narrow grey band over noise speckle.
	im := parimg.DARPAImage()
	for i, v := range im.Pix {
		if v != 0 {
			im.Pix[i] = 120 + v/8 // band 120..151
		}
	}

	sim, err := parimg.NewSimulator(32, parimg.CM5)
	if err != nil {
		log.Fatal(err)
	}

	// Stage 1: parallel histogram and automatic threshold.
	h, err := sim.Histogram(im, 256)
	if err != nil {
		log.Fatal(err)
	}
	t := parimg.OtsuThreshold(h.H)
	fmt.Printf("histogram in %.3g simulated s; Otsu threshold = %d\n",
		h.Report.SimTime, t)

	// Stage 2: binarize and label in parallel.
	bin := parimg.Threshold(im, uint32(t))
	res, err := sim.Label(bin, parimg.LabelOptions{Conn: parimg.Conn8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("labeling in %.3g simulated s: %d segments above threshold\n",
		res.Report.SimTime, res.Components)

	// Stage 3: census of the segments.
	stats := parimg.Census(res.Labels, im)
	big := 0
	for _, s := range stats {
		if s.Size >= 64 {
			big++
		}
	}
	fmt.Printf("%d segments of at least 64 pixels; largest is %d pixels at (%.0f,%.0f)\n",
		big, stats[0].Size, stats[0].CentroidRow, stats[0].CentroidCol)

	// The labeling run's stage breakdown: initialization, log p merge
	// iterations, final update.
	fmt.Printf("\nstage breakdown of the labeling run (simulated):\n")
	fmt.Printf("  %-12s %.3g s\n", "init", res.Stages.Init)
	for i, ph := range res.Stages.Merge {
		fmt.Printf("  merge %-6d %.3g s\n", i+1, ph)
	}
	fmt.Printf("  %-12s %.3g s\n", "final", res.Stages.Final)
}
