package parimg

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"parimg/internal/fault"
	"parimg/internal/fault/leakcheck"
	"parimg/internal/serve"
	"parimg/internal/stream"
)

// The chaos matrix: every fault class (panic, delay, no-show, cancel,
// deadline) against both backends (the bdm simulator and the host-parallel
// engine). Each cell asserts the documented sentinel and that a subsequent
// fault-free call is pixel-identical to the sequential reference — injected
// faults must never corrupt reusable state.

// requireSimCleanAfterFault runs a fault-free Label on the simulator and
// compares it against the sequential reference.
func requireSimCleanAfterFault(t *testing.T, sim *Simulator, im *Image) {
	t.Helper()
	sim.m.SetFaultInjector(nil)
	res, err := sim.Label(im, LabelOptions{})
	if err != nil {
		t.Fatalf("clean sim run after fault: %v", err)
	}
	want := LabelSequential(im, Conn8, Binary)
	for i := range want.Lab {
		if res.Labels.Lab[i] != want.Lab[i] {
			t.Fatalf("pixel %d: sim label %d, want %d after aborted run", i, res.Labels.Lab[i], want.Lab[i])
		}
	}
}

// requireParCleanAfterFault does the same for a host-parallel engine.
func requireParCleanAfterFault(t *testing.T, eng *ParallelEngine, im *Image) {
	t.Helper()
	eng.SetFaultInjector(nil)
	got, err := LabelParallelErr(im, LabelOptions{})
	if err != nil {
		t.Fatalf("clean par run after fault: %v", err)
	}
	want := LabelSequential(im, Conn8, Binary)
	for i := range want.Lab {
		if got.Lab[i] != want.Lab[i] {
			t.Fatalf("pixel %d: par label %d, want %d after aborted run", i, got.Lab[i], want.Lab[i])
		}
	}
}

func TestChaosMatrixSimulator(t *testing.T) {
	leakcheck.Check(t)
	im := GeneratePattern(DualSpiral, 64)
	sim, err := NewSimulator(4, CM5)
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()

	t.Run("panic", func(t *testing.T) {
		sim.m.SetFaultInjector(fault.New(1, fault.Panic, 1).At("sync").OnRank(1))
		_, err := sim.Label(im, LabelOptions{})
		if !errors.Is(err, ErrAborted) {
			t.Fatalf("err = %v, want ErrAborted", err)
		}
		var inj *fault.Injected
		if !errors.As(err, &inj) {
			t.Fatalf("err %v does not wrap the injected fault", err)
		}
		requireSimCleanAfterFault(t, sim, im)
	})

	t.Run("delay", func(t *testing.T) {
		// A delay is a perturbation, not a failure: the run must succeed
		// and the labeling must still be exact.
		in := fault.New(1, fault.Delay, 1).At("sync").OnRank(0).OnRound(1).
			WithDelay(2 * time.Millisecond)
		sim.m.SetFaultInjector(in)
		res, err := sim.Label(im, LabelOptions{})
		sim.m.SetFaultInjector(nil)
		if err != nil {
			t.Fatalf("delay fault must not fail the run: %v", err)
		}
		if in.Injections() == 0 {
			t.Error("delay fault never fired")
		}
		want := LabelSequential(im, Conn8, Binary)
		for i := range want.Lab {
			if res.Labels.Lab[i] != want.Lab[i] {
				t.Fatalf("pixel %d differs under delay fault", i)
			}
		}
	})

	t.Run("no-show", func(t *testing.T) {
		// A simulated processor that never reaches the barrier is the
		// watchdog's case: the run must abort with ErrDeadline naming the
		// missing rank instead of hanging.
		sim.SetWatchdog(50 * time.Millisecond)
		defer sim.SetWatchdog(0)
		sim.m.SetFaultInjector(fault.New(1, fault.NoShow, 1).At("barrier").OnRank(2))
		_, err := sim.Label(im, LabelOptions{})
		if !errors.Is(err, ErrDeadline) {
			t.Fatalf("err = %v, want ErrDeadline from the watchdog", err)
		}
		requireSimCleanAfterFault(t, sim, im)
	})

	t.Run("cancel", func(t *testing.T) {
		// One long injected delay gives the asynchronous cancel a window
		// to land mid-run.
		sim.m.SetFaultInjector(fault.New(1, fault.Delay, 1).
			At("sync").OnRank(0).OnRound(1).WithDelay(50 * time.Millisecond))
		ctx, cancel := context.WithCancel(context.Background())
		timer := time.AfterFunc(5*time.Millisecond, cancel)
		defer timer.Stop()
		defer cancel()
		_, err := sim.LabelContext(ctx, im, LabelOptions{})
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("err = %v, want ErrCanceled", err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want to match context.Canceled too", err)
		}
		requireSimCleanAfterFault(t, sim, im)
	})

	t.Run("deadline", func(t *testing.T) {
		sim.m.SetFaultInjector(fault.New(1, fault.Delay, 1).
			At("sync").OnRank(0).OnRound(1).WithDelay(50 * time.Millisecond))
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
		defer cancel()
		_, err := sim.LabelContext(ctx, im, LabelOptions{})
		if !errors.Is(err, ErrDeadline) {
			t.Fatalf("err = %v, want ErrDeadline", err)
		}
		var re *RunError
		if !errors.As(err, &re) || re.After <= 0 {
			t.Fatalf("err %v lacks a positive After duration", err)
		}
		requireSimCleanAfterFault(t, sim, im)
	})
}

func TestChaosMatrixParallel(t *testing.T) {
	leakcheck.Check(t)
	im := GeneratePattern(DualSpiral, 64)

	t.Run("panic", func(t *testing.T) {
		eng := NewParallelEngine(4)
		eng.SetFaultInjector(fault.New(1, fault.Panic, 1).At("strip_label").OnRank(1))
		out := NewLabels(im.N)
		_, err := eng.LabelIntoErr(im, Conn8, Binary, out)
		if !errors.Is(err, ErrAborted) {
			t.Fatalf("err = %v, want ErrAborted", err)
		}
		var inj *fault.Injected
		if !errors.As(err, &inj) {
			t.Fatalf("err %v does not wrap the injected fault", err)
		}
		requireParCleanAfterFault(t, eng, im)
	})

	t.Run("delay", func(t *testing.T) {
		eng := NewParallelEngine(4)
		in := fault.New(1, fault.Delay, 1).At("strip_label").OnRank(0).
			WithDelay(2 * time.Millisecond)
		eng.SetFaultInjector(in)
		out := NewLabels(im.N)
		if _, err := eng.LabelIntoErr(im, Conn8, Binary, out); err != nil {
			t.Fatalf("delay fault must not fail the run: %v", err)
		}
		if in.Injections() == 0 {
			t.Error("delay fault never fired")
		}
		want := LabelSequential(im, Conn8, Binary)
		for i := range want.Lab {
			if out.Lab[i] != want.Lab[i] {
				t.Fatalf("pixel %d differs under delay fault", i)
			}
		}
	})

	t.Run("no-show", func(t *testing.T) {
		// A parked worker has no barrier watchdog on the host-parallel
		// backend; the caller's deadline is what releases it.
		eng := NewParallelEngine(4)
		eng.SetFaultInjector(fault.New(1, fault.NoShow, 1).At("strip_label").OnRank(2))
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
		defer cancel()
		out := NewLabels(im.N)
		if _, err := eng.LabelIntoContext(ctx, im, Conn8, Binary, out); !errors.Is(err, ErrDeadline) {
			t.Fatalf("err = %v, want ErrDeadline", err)
		}
		requireParCleanAfterFault(t, eng, im)
	})

	t.Run("cancel", func(t *testing.T) {
		eng := NewParallelEngine(4)
		eng.SetFaultInjector(fault.New(1, fault.Delay, 1).
			At("strip_label").OnRank(0).WithDelay(50 * time.Millisecond))
		ctx, cancel := context.WithCancel(context.Background())
		timer := time.AfterFunc(5*time.Millisecond, cancel)
		defer timer.Stop()
		defer cancel()
		out := NewLabels(im.N)
		_, err := eng.LabelIntoContext(ctx, im, Conn8, Binary, out)
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("err = %v, want ErrCanceled", err)
		}
		requireParCleanAfterFault(t, eng, im)
	})

	t.Run("deadline", func(t *testing.T) {
		eng := NewParallelEngine(4)
		eng.SetFaultInjector(fault.New(1, fault.Delay, 1).
			At("strip_label").OnRank(0).WithDelay(50 * time.Millisecond))
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
		defer cancel()
		out := NewLabels(im.N)
		_, err := eng.LabelIntoContext(ctx, im, Conn8, Binary, out)
		if !errors.Is(err, ErrDeadline) {
			t.Fatalf("err = %v, want ErrDeadline", err)
		}
		var re *RunError
		if !errors.As(err, &re) || re.After <= 0 {
			t.Fatalf("err %v lacks a positive After duration", err)
		}
		requireParCleanAfterFault(t, eng, im)
	})
}

// TestChaosMatrixServer is the serving-runtime row of the chaos matrix:
// every fault class lands on an engine rented by a serve.Server runner, and
// each cell asserts the documented sentinel plus that the server keeps
// serving pixel-exact labelings afterwards — a panicking worker must cost
// one request, never the process or the pool.
func TestChaosMatrixServer(t *testing.T) {
	leakcheck.Check(t)
	im := GeneratePattern(DualSpiral, 64)
	want := LabelSequential(im, Conn8, Binary)
	// One runner, two strip workers (the fault sites only exist on
	// multi-worker engines), oversubscribed so the config passes the core
	// budget policy on any host.
	srv, err := serve.New(serve.Config{Engines: 1, EngineWorkers: 2, Oversubscribe: 64, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	requireServerHealthy := func(t *testing.T) {
		t.Helper()
		res, err := srv.Do(context.Background(), serve.Job{Image: im})
		if err != nil {
			t.Fatalf("clean request after fault: %v", err)
		}
		for i := range want.Lab {
			if res.Labels.Lab[i] != want.Lab[i] {
				t.Fatalf("pixel %d: served label %d, want %d after fault", i, res.Labels.Lab[i], want.Lab[i])
			}
		}
	}

	t.Run("panic", func(t *testing.T) {
		inj := fault.New(1, fault.Panic, 1).At("strip_label").OnRank(1)
		_, err := srv.Do(context.Background(), serve.Job{Image: im, Fault: inj})
		if !errors.Is(err, ErrAborted) {
			t.Fatalf("err = %v, want ErrAborted", err)
		}
		var injected *fault.Injected
		if !errors.As(err, &injected) {
			t.Fatalf("err %v does not wrap the injected fault", err)
		}
		requireServerHealthy(t)
	})

	t.Run("delay", func(t *testing.T) {
		inj := fault.New(1, fault.Delay, 1).At("strip_label").OnRank(0).
			WithDelay(2 * time.Millisecond)
		res, err := srv.Do(context.Background(), serve.Job{Image: im, Fault: inj})
		if err != nil {
			t.Fatalf("delay fault must not fail the request: %v", err)
		}
		if inj.Injections() == 0 {
			t.Error("delay fault never fired")
		}
		for i := range want.Lab {
			if res.Labels.Lab[i] != want.Lab[i] {
				t.Fatalf("pixel %d differs under delay fault", i)
			}
		}
	})

	t.Run("no-show", func(t *testing.T) {
		inj := fault.New(1, fault.NoShow, 1).At("strip_label").OnRank(1)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
		defer cancel()
		if _, err := srv.Do(ctx, serve.Job{Image: im, Fault: inj}); !errors.Is(err, ErrDeadline) {
			t.Fatalf("err = %v, want ErrDeadline", err)
		}
		requireServerHealthy(t)
	})

	t.Run("cancel", func(t *testing.T) {
		inj := fault.New(1, fault.Delay, 1).At("strip_label").OnRank(0).
			WithDelay(50 * time.Millisecond)
		ctx, cancel := context.WithCancel(context.Background())
		timer := time.AfterFunc(5*time.Millisecond, cancel)
		defer timer.Stop()
		defer cancel()
		if _, err := srv.Do(ctx, serve.Job{Image: im, Fault: inj}); !errors.Is(err, ErrCanceled) {
			t.Fatalf("err = %v, want ErrCanceled", err)
		}
		requireServerHealthy(t)
	})

	t.Run("deadline", func(t *testing.T) {
		inj := fault.New(1, fault.Delay, 1).At("strip_label").OnRank(0).
			WithDelay(50 * time.Millisecond)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
		defer cancel()
		if _, err := srv.Do(ctx, serve.Job{Image: im, Fault: inj}); !errors.Is(err, ErrDeadline) {
			t.Fatalf("err = %v, want ErrDeadline", err)
		}
		requireServerHealthy(t)
	})
}

// TestChaosMatrixStream is the out-of-core row of the chaos matrix: an
// injected crash at a band commit, resume from the surviving checkpoint,
// and a torn checkpoint record — the streaming pipeline's documented
// fault classes, each asserted against its typed sentinel, with the
// resumed output compared byte for byte against an uninterrupted run.
func TestChaosMatrixStream(t *testing.T) {
	leakcheck.Check(t)
	im := GeneratePattern(DualSpiral, 64)
	var pgm bytes.Buffer
	fmt.Fprintf(&pgm, "P5\n%d %d\n255\n", im.N, im.N)
	for _, v := range im.Pix {
		pgm.WriteByte(byte(v))
	}
	base := stream.Options{BandRows: 7, TopK: 5}

	var refOut bytes.Buffer
	ref, err := stream.Label(bytes.NewReader(pgm.Bytes()), &refOut, base)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("crash-resume", func(t *testing.T) {
		ckpt := filepath.Join(t.TempDir(), "run.ckpt")
		crash := base
		crash.Checkpoint = ckpt
		crash.CheckpointEvery = 2
		crash.Fault = fault.New(1, fault.Crash, 1).At("band_commit").OnRound(6)
		_, err := stream.Label(bytes.NewReader(pgm.Bytes()), nil, crash)
		if !errors.Is(err, ErrAborted) {
			t.Fatalf("err = %v, want ErrAborted", err)
		}
		var injected *fault.Injected
		if !errors.As(err, &injected) {
			t.Fatalf("err %v does not wrap the injected fault", err)
		}

		resume := base
		resume.Checkpoint = ckpt
		resume.Resume = true
		var out bytes.Buffer
		res, err := stream.Label(bytes.NewReader(pgm.Bytes()), &out, resume)
		if err != nil {
			t.Fatalf("resume after crash: %v", err)
		}
		if res.Components != ref.Components || res.Foreground != ref.Foreground {
			t.Fatalf("resumed census %d/%d, want %d/%d",
				res.Components, res.Foreground, ref.Components, ref.Foreground)
		}
		if !bytes.Equal(out.Bytes(), refOut.Bytes()) {
			t.Fatal("resumed label PGM differs from the uninterrupted run")
		}
	})

	t.Run("torn-checkpoint", func(t *testing.T) {
		ckpt := filepath.Join(t.TempDir(), "run.ckpt")
		full := base
		full.Checkpoint = ckpt
		if _, err := stream.Label(bytes.NewReader(pgm.Bytes()), nil, full); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(ckpt)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(ckpt, data[:len(data)*2/3], 0o644); err != nil {
			t.Fatal(err)
		}
		resume := base
		resume.Checkpoint = ckpt
		resume.Resume = true
		if _, err := stream.Label(bytes.NewReader(pgm.Bytes()), nil, resume); !errors.Is(err, ErrCheckpointCorrupt) {
			t.Fatalf("err = %v, want ErrCheckpointCorrupt", err)
		}
	})

	t.Run("foreign-checkpoint", func(t *testing.T) {
		ckpt := filepath.Join(t.TempDir(), "run.ckpt")
		full := base
		full.Checkpoint = ckpt
		if _, err := stream.Label(bytes.NewReader(pgm.Bytes()), nil, full); err != nil {
			t.Fatal(err)
		}
		resume := base
		resume.BandRows = 9 // a different decomposition than the record's
		resume.Checkpoint = ckpt
		resume.Resume = true
		if _, err := stream.Label(bytes.NewReader(pgm.Bytes()), nil, resume); !errors.Is(err, ErrCheckpointMismatch) {
			t.Fatalf("err = %v, want ErrCheckpointMismatch", err)
		}
	})
}

// TestLabelContextThroughPublicAPI exercises the package-level context entry
// points end to end: pre-canceled contexts must fail fast with ErrCanceled
// on both backends, without running any labeling work.
func TestLabelContextThroughPublicAPI(t *testing.T) {
	leakcheck.Check(t)
	im := GeneratePattern(Cross, 64)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := LabelContext(ctx, im, LabelOptions{}); !errors.Is(err, ErrCanceled) {
		t.Fatalf("LabelContext: err = %v, want ErrCanceled", err)
	}
	if _, err := HistogramContext(ctx, RandomGrey(64, 16, 1), 16); !errors.Is(err, ErrCanceled) {
		t.Fatalf("HistogramContext: err = %v, want ErrCanceled", err)
	}
	sim, err := NewSimulator(4, CM5)
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	if _, err := sim.LabelContext(ctx, im, LabelOptions{}); !errors.Is(err, ErrCanceled) {
		t.Fatalf("Simulator.LabelContext: err = %v, want ErrCanceled", err)
	}
	if _, err := sim.HistogramContext(ctx, RandomGrey(64, 16, 1), 16); !errors.Is(err, ErrCanceled) {
		t.Fatalf("Simulator.HistogramContext: err = %v, want ErrCanceled", err)
	}
	// LabelOptions.Context is the same contract spelled as an option.
	if _, err := LabelParallelErr(im, LabelOptions{Context: ctx}); !errors.Is(err, ErrCanceled) {
		t.Fatalf("LabelParallelErr with canceled Context: err = %v, want ErrCanceled", err)
	}
}
