#!/usr/bin/env bash
# End-to-end smoke test of the out-of-core streaming pipeline, used by
# `make stream-smoke` and the CI stream-smoke job:
#
#   1. generate a 64x70000 striped PGM bandwise (genimages -stream) — an
#      image taller than the resident engines' 65535-side ceiling, with a
#      known component count (32 stripes x 140 segments = 4480),
#   2. label it out of core (imgcc -stream) and check the component
#      count, writing the dense-renumbered label PGM and a metrics doc,
#   3. validate the metrics document through the schema checker
#      (cmd/metricscheck) and check the streaming band phases are there,
#   4. re-stream the 16-bit label PGM in grey mode — every dense label is
#      one flat component, so the count must come back unchanged — which
#      exercises the 2-byte big-endian streaming decode path end to end.
#
# Needs: go. Exits non-zero on the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

WORKDIR="$(mktemp -d)"
cleanup() { rm -rf "$WORKDIR"; }
trap cleanup EXIT

echo "stream-smoke: building imgcc, genimages, metricscheck"
go build -o "$WORKDIR/imgcc" ./cmd/imgcc
go build -o "$WORKDIR/genimages" ./cmd/genimages
go build -o "$WORKDIR/metricscheck" ./cmd/metricscheck

echo "stream-smoke: generating a 64x70000 striped PGM"
"$WORKDIR/genimages" -stream -rows 70000 -cols 64 -period 500 \
    -out "$WORKDIR/tall.pgm" | tee "$WORKDIR/gen.out"
grep -q '4480 components' "$WORKDIR/gen.out" || {
    echo "stream-smoke: generator expected 4480 components" >&2
    exit 1
}

echo "stream-smoke: labeling it out of core"
"$WORKDIR/imgcc" -stream -in "$WORKDIR/tall.pgm" -band-rows 4096 -top 3 \
    -metrics "$WORKDIR/metrics.json" -out "$WORKDIR/labels.pgm" \
    | tee "$WORKDIR/label.out"
grep -q '4480 connected components' "$WORKDIR/label.out" || {
    echo "stream-smoke: expected 4480 connected components" >&2
    exit 1
}

echo "stream-smoke: validating the metrics document"
"$WORKDIR/metricscheck" "$WORKDIR/metrics.json"
for phase in band_decode band_label band_merge band_write; do
    grep -q "\"$phase\"" "$WORKDIR/metrics.json" || {
        echo "stream-smoke: metrics document is missing phase $phase" >&2
        exit 1
    }
done

echo "stream-smoke: re-streaming the 16-bit label PGM in grey mode"
head -c 16 "$WORKDIR/labels.pgm" | grep -q '4480' || {
    echo "stream-smoke: label PGM header should carry maxval 4480 (16-bit samples)" >&2
    exit 1
}
"$WORKDIR/imgcc" -stream -in "$WORKDIR/labels.pgm" -grey -conn 4 -top 0 \
    -band-rows 3000 | tee "$WORKDIR/relabel.out"
grep -q '4480 connected components' "$WORKDIR/relabel.out" || {
    echo "stream-smoke: re-streamed label PGM should have 4480 components" >&2
    exit 1
}

echo "stream-smoke: PASS"
