#!/usr/bin/env bash
# End-to-end smoke test of the labeling service, used by `make serve-smoke`
# and the CI serve-smoke job:
#
#   1. build and start imgccd on a local port,
#   2. wait for /healthz to answer ok,
#   3. POST darpa_before.pgm (mode=grey&census=1) and diff the response
#      against the committed golden testdata/serve_darpa_census.json,
#   4. exercise the backpressure path's headers are sane (a plain request
#      must NOT carry Retry-After),
#   5. scrape /metrics and validate every document through the schema
#      checker (cmd/metricscheck),
#   6. send SIGTERM while a slow-upload /label request is in flight: the
#      request must still complete 200 with the correct census (graceful
#      drain), and the process must exit 0 within its drain window.
#
# Needs: go, curl. Exits non-zero on the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR="${IMGCCD_ADDR:-127.0.0.1:18080}"
WORKDIR="$(mktemp -d)"
SERVER_PID=""
cleanup() {
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
    [ -n "$SERVER_PID" ] && wait "$SERVER_PID" 2>/dev/null || true
    rm -rf "$WORKDIR"
}
trap cleanup EXIT

echo "serve-smoke: building imgccd"
go build -o "$WORKDIR/imgccd" ./cmd/imgccd

echo "serve-smoke: starting imgccd on $ADDR"
"$WORKDIR/imgccd" -addr "$ADDR" -engines 2 -oversub 64 >"$WORKDIR/imgccd.log" 2>&1 &
SERVER_PID=$!

echo "serve-smoke: waiting for /healthz"
for i in $(seq 1 100); do
    if curl -sf "http://$ADDR/healthz" >"$WORKDIR/healthz.json" 2>/dev/null; then
        break
    fi
    if ! kill -0 "$SERVER_PID" 2>/dev/null; then
        echo "serve-smoke: imgccd died during startup:" >&2
        cat "$WORKDIR/imgccd.log" >&2
        exit 1
    fi
    sleep 0.1
done
grep -q '"status":"ok"' "$WORKDIR/healthz.json" || {
    echo "serve-smoke: /healthz did not answer ok: $(cat "$WORKDIR/healthz.json")" >&2
    exit 1
}

echo "serve-smoke: labeling darpa_before.pgm"
curl -sf --data-binary @darpa_before.pgm \
    "http://$ADDR/label?mode=grey&census=1" >"$WORKDIR/census.json"
diff -u testdata/serve_darpa_census.json "$WORKDIR/census.json" || {
    echo "serve-smoke: census response differs from the committed golden" >&2
    exit 1
}

echo "serve-smoke: checking a clean response carries no Retry-After"
curl -sf -D "$WORKDIR/headers.txt" --data-binary @darpa_before.pgm \
    "http://$ADDR/label?mode=grey" >/dev/null
if grep -qi '^retry-after:' "$WORKDIR/headers.txt"; then
    echo "serve-smoke: 200 response unexpectedly carries Retry-After" >&2
    exit 1
fi

echo "serve-smoke: validating /metrics through the schema checker"
curl -sf "http://$ADDR/metrics" >"$WORKDIR/metrics.json"
go run ./cmd/metricscheck "$WORKDIR/metrics.json"

echo "serve-smoke: SIGTERM graceful drain with an in-flight request"
# Trickle the upload so the request is still in flight when SIGTERM lands
# (~256KB at 64KB/s spends ~4s inside the server's 10s drain window).
curl -sf --limit-rate 64K --data-binary @darpa_before.pgm \
    "http://$ADDR/label?mode=grey&census=1" >"$WORKDIR/drain.json" &
CURL_PID=$!
sleep 0.5 # let the request reach the server before the signal
kill -TERM "$SERVER_PID"
wait "$CURL_PID" || {
    echo "serve-smoke: in-flight request failed during graceful drain" >&2
    exit 1
}
diff -u testdata/serve_darpa_census.json "$WORKDIR/drain.json" || {
    echo "serve-smoke: drained request returned a wrong census" >&2
    exit 1
}
DRAIN_STATUS=0
wait "$SERVER_PID" || DRAIN_STATUS=$?
SERVER_PID=""
if [ "$DRAIN_STATUS" -ne 0 ]; then
    echo "serve-smoke: imgccd exited $DRAIN_STATUS after SIGTERM (want 0):" >&2
    cat "$WORKDIR/imgccd.log" >&2
    exit 1
fi

echo "serve-smoke: PASS"
