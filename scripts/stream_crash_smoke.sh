#!/usr/bin/env bash
# End-to-end crash/resume smoke test of the out-of-core streaming
# pipeline's checkpointing, used by `make crash-smoke` and the CI
# crash-smoke job:
#
#   1. generate the 64x70000 striped PGM the stream smoke uses (a known
#      4480-component answer),
#   2. reference run: label it uninterrupted, keeping the label PGM and
#      the deterministic census JSON,
#   3. crashed run: the same labeling with -checkpoint, paced by the
#      IMGCC_STREAM_STALL_BAND hook so the census pass parks at a known
#      band, then kill -9 the process mid-run once a checkpoint record
#      exists — and assert the interrupted run left no partial -out or
#      -census-json at the target paths,
#   4. resume run: -resume from the surviving checkpoint, assert it
#      reports the resumed band, and byte-compare its census JSON and
#      label PGM against the reference — crash recovery must be exact,
#      not approximate.
#
# Needs: go. Exits non-zero on the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

WORKDIR="$(mktemp -d)"
cleanup() { rm -rf "$WORKDIR"; }
trap cleanup EXIT

echo "crash-smoke: building imgcc and genimages"
go build -o "$WORKDIR/imgcc" ./cmd/imgcc
go build -o "$WORKDIR/genimages" ./cmd/genimages

echo "crash-smoke: generating a 64x70000 striped PGM"
"$WORKDIR/genimages" -stream -rows 70000 -cols 64 -period 500 \
    -out "$WORKDIR/tall.pgm" >/dev/null

echo "crash-smoke: reference (uninterrupted) run"
"$WORKDIR/imgcc" -stream -in "$WORKDIR/tall.pgm" -band-rows 4096 -top 3 \
    -out "$WORKDIR/ref.pgm" -census-json "$WORKDIR/ref.json" >/dev/null

echo "crash-smoke: starting a checkpointed run paced to stall at band 12"
CKPT="$WORKDIR/run.ckpt"
IMGCC_STREAM_STALL_BAND=12 IMGCC_STREAM_STALL_MS=60000 \
    "$WORKDIR/imgcc" -stream -in "$WORKDIR/tall.pgm" -band-rows 4096 -top 3 \
    -checkpoint "$CKPT" -checkpoint-every 4 \
    -out "$WORKDIR/crashed.pgm" -census-json "$WORKDIR/crashed.json" \
    >/dev/null 2>&1 &
PID=$!

# Wait for a checkpoint record to land (the run itself is parked at band
# 12 for 60s, far longer than this loop), then kill -9 mid-run.
for _ in $(seq 1 400); do
    [ -f "$CKPT" ] && break
    kill -0 "$PID" 2>/dev/null || { echo "crash-smoke: run died before checkpointing" >&2; exit 1; }
    sleep 0.05
done
[ -f "$CKPT" ] || { echo "crash-smoke: no checkpoint record appeared" >&2; exit 1; }
sleep 0.2 # let the cadence advance past the first record
echo "crash-smoke: kill -9 the streaming run"
kill -9 "$PID" 2>/dev/null || true
wait "$PID" 2>/dev/null || true

for f in "$WORKDIR/crashed.pgm" "$WORKDIR/crashed.json"; do
    if [ -e "$f" ]; then
        echo "crash-smoke: killed run left a file at the target path $f" >&2
        exit 1
    fi
done

echo "crash-smoke: resuming from the checkpoint"
"$WORKDIR/imgcc" -stream -in "$WORKDIR/tall.pgm" -band-rows 4096 -top 3 \
    -checkpoint "$CKPT" -resume \
    -out "$WORKDIR/resumed.pgm" -census-json "$WORKDIR/resumed.json" \
    | tee "$WORKDIR/resume.out"
grep -q 'resumed from band' "$WORKDIR/resume.out" || {
    echo "crash-smoke: resume did not report its resumed band" >&2
    exit 1
}
grep -q '4480 connected components' "$WORKDIR/resume.out" || {
    echo "crash-smoke: resumed run expected 4480 connected components" >&2
    exit 1
}

echo "crash-smoke: byte-comparing resumed artifacts against the reference"
cmp "$WORKDIR/ref.json" "$WORKDIR/resumed.json" || {
    echo "crash-smoke: resumed census JSON differs from the reference" >&2
    exit 1
}
cmp "$WORKDIR/ref.pgm" "$WORKDIR/resumed.pgm" || {
    echo "crash-smoke: resumed label PGM differs from the reference" >&2
    exit 1
}

echo "crash-smoke: PASS"
