package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"time"

	"parimg"
	"parimg/internal/atomicio"
	"parimg/internal/cli"
	"parimg/internal/fault"
	"parimg/internal/image"
	"parimg/internal/seq"
	"parimg/internal/stream"
)

// streamConfig is the parsed flag state the -stream path consumes.
type streamConfig struct {
	inFile, outFile string
	bandRows        int
	conn            int
	top             int
	grey            bool
	metricsPath     string
	timeout         time.Duration
	checkpoint      string
	checkpointEvery int
	resume          bool
	censusJSON      string
}

// censusDoc is the deterministic JSON census the -census-json flag emits:
// only run-invariant fields, so a resumed run's document is byte-identical
// to an uninterrupted one and smoke tests can diff the two.
type censusDoc struct {
	Width      int                `json:"width"`
	Height     int                `json:"height"`
	Components int64              `json:"components"`
	Foreground int64              `json:"foreground"`
	Bands      int                `json:"bands"`
	BandRows   int                `json:"band_rows"`
	Links      int64              `json:"links"`
	Top        []stream.Component `json:"top,omitempty"`
}

// stallInjector builds the kill-window pacing hook the crash smoke test
// uses: with IMGCC_STREAM_STALL_BAND=k the census pass sleeps at band k's
// commit point (IMGCC_STREAM_STALL_MS milliseconds, default 60000), long
// enough for the harness to kill -9 the process in a known state. Unset,
// it returns nil and the pipeline runs at full speed.
func stallInjector() *fault.Injector {
	bandEnv := os.Getenv("IMGCC_STREAM_STALL_BAND")
	if bandEnv == "" {
		return nil
	}
	band, err := strconv.Atoi(bandEnv)
	if err != nil || band < 0 {
		return nil
	}
	ms := 60000
	if msEnv := os.Getenv("IMGCC_STREAM_STALL_MS"); msEnv != "" {
		if v, err := strconv.Atoi(msEnv); err == nil && v >= 0 {
			ms = v
		}
	}
	return fault.New(1, fault.Delay, 1).At("band_commit").OnRound(band + 1).
		WithDelay(time.Duration(ms) * time.Millisecond)
}

// runStream is the -stream path: out-of-core labeling of an on-disk PGM
// in band windows. Unlike the resident backends it reads straight from
// the file (only -in selects the image), accepts rectangular images, and
// has no 65535-side ceiling — the 64-bit streaming label space covers
// images whose pixel count exceeds uint32. All file artifacts (-out,
// -census-json, -checkpoint) are written atomically: a run killed or
// failing at any instant leaves either nothing or a previous complete
// file at those paths, never a torn prefix.
func runStream(cfg streamConfig) error {
	if cfg.inFile == "" {
		return fmt.Errorf("-stream reads from disk: give it -in FILE")
	}
	f, err := os.Open(cfg.inFile)
	if err != nil {
		return err
	}
	defer f.Close()

	ctx, cancel := cli.TimeoutContext(cfg.timeout)
	defer cancel()
	var rec *parimg.MetricsRecorder
	if cfg.metricsPath != "" {
		rec = parimg.NewMetricsRecorder()
	}
	if cfg.checkpointEvery < 0 {
		cfg.checkpointEvery = 0 // flag contract: <= 0 selects the default cadence
	}
	opt := stream.Options{
		Conn:            image.Connectivity(cfg.conn),
		BandRows:        cfg.bandRows,
		TopK:            cfg.top,
		Context:         ctx,
		Obs:             rec,
		Checkpoint:      cfg.checkpoint,
		CheckpointEvery: cfg.checkpointEvery,
		Resume:          cfg.resume,
		Fault:           stallInjector(),
	}
	if cfg.grey {
		opt.Mode = seq.Grey
	}

	var out *atomicio.File
	if cfg.outFile != "" {
		if out, err = atomicio.Create(cfg.outFile); err != nil {
			return err
		}
		defer out.Abort() // no-op once committed; otherwise removes the partial
	}
	start := time.Now()
	var res *stream.Result
	if out != nil {
		res, err = stream.Label(f, out, opt)
	} else {
		res, err = stream.Label(f, nil, opt)
	}
	elapsed := time.Since(start)
	if err != nil {
		return err
	}
	if out != nil {
		if err := out.Commit(); err != nil {
			return err
		}
	}

	fmt.Printf("out-of-core stream, %dx%d image (%d bands of up to %d rows), %v, %v mode\n",
		res.Width, res.Height, res.Bands, res.BandRows, opt.Conn, opt.Mode)
	if res.ResumedFrom > 0 {
		fmt.Printf("resumed from band %d of %d\n", res.ResumedFrom, res.Bands)
	}
	fmt.Printf("%d connected components, %d foreground pixels, wall time %v\n",
		res.Components, res.Foreground, elapsed)
	for i, c := range res.Top {
		fmt.Printf("  #%-2d label %-12d %d pixels\n", i+1, c.Label, c.Size)
	}
	if cfg.censusJSON != "" {
		if err := writeCensusJSON(cfg.censusJSON, res); err != nil {
			return err
		}
	}
	if cfg.metricsPath != "" {
		m := rec.Snapshot()
		m.Command, m.Backend = "imgcc", "stream"
		m.Image, m.N = cfg.inFile, res.Width
		m.TotalNS = elapsed.Nanoseconds()
		if err := cli.WriteMetrics(cfg.metricsPath, m); err != nil {
			return err
		}
	}
	return nil
}

// writeCensusJSON writes the run-invariant census document atomically.
func writeCensusJSON(path string, res *stream.Result) error {
	doc := censusDoc{
		Width:      res.Width,
		Height:     res.Height,
		Components: res.Components,
		Foreground: res.Foreground,
		Bands:      res.Bands,
		BandRows:   res.BandRows,
		Links:      res.Links,
		Top:        res.Top,
	}
	return atomicio.WriteFile(path, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(doc)
	})
}
