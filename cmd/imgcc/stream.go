package main

import (
	"fmt"
	"os"
	"time"

	"parimg"
	"parimg/internal/cli"
	"parimg/internal/image"
	"parimg/internal/seq"
	"parimg/internal/stream"
)

// runStream is the -stream path: out-of-core labeling of an on-disk PGM
// in band windows. Unlike the resident backends it reads straight from
// the file (only -in selects the image), accepts rectangular images, and
// has no 65535-side ceiling — the 64-bit streaming label space covers
// images whose pixel count exceeds uint32.
func runStream(inFile, outFile string, bandRows, conn, top int, grey bool,
	metricsPath string, timeout time.Duration) error {
	if inFile == "" {
		return fmt.Errorf("-stream reads from disk: give it -in FILE")
	}
	f, err := os.Open(inFile)
	if err != nil {
		return err
	}
	defer f.Close()

	ctx, cancel := cli.TimeoutContext(timeout)
	defer cancel()
	var rec *parimg.MetricsRecorder
	if metricsPath != "" {
		rec = parimg.NewMetricsRecorder()
	}
	opt := stream.Options{
		Conn:     image.Connectivity(conn),
		BandRows: bandRows,
		TopK:     top,
		Context:  ctx,
		Obs:      rec,
	}
	if grey {
		opt.Mode = seq.Grey
	}

	var out *os.File
	if outFile != "" {
		if out, err = os.Create(outFile); err != nil {
			return err
		}
	}
	start := time.Now()
	var res *stream.Result
	if out != nil {
		res, err = stream.Label(f, out, opt)
	} else {
		res, err = stream.Label(f, nil, opt)
	}
	elapsed := time.Since(start)
	if out != nil {
		if cerr := out.Close(); err == nil && cerr != nil {
			err = cerr
		}
	}
	if err != nil {
		return err
	}

	fmt.Printf("out-of-core stream, %dx%d image (%d bands of up to %d rows), %v, %v mode\n",
		res.Width, res.Height, res.Bands, res.BandRows, opt.Conn, opt.Mode)
	fmt.Printf("%d connected components, %d foreground pixels, wall time %v\n",
		res.Components, res.Foreground, elapsed)
	for i, c := range res.Top {
		fmt.Printf("  #%-2d label %-12d %d pixels\n", i+1, c.Label, c.Size)
	}
	if metricsPath != "" {
		m := rec.Snapshot()
		m.Command, m.Backend = "imgcc", "stream"
		m.Image, m.N = inFile, res.Width
		m.TotalNS = elapsed.Nanoseconds()
		if err := cli.WriteMetrics(metricsPath, m); err != nil {
			return err
		}
	}
	return nil
}
