package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"parimg/internal/atomicio"
)

// writeCheckerPGM writes an n x n binary checkerboard PGM to dir — under
// 4-connectivity every foreground pixel is an isolated component, so a
// large n overflows the 16-bit label-PGM sample space and makes the
// stream write pass fail deterministically after a successful census.
func writeCheckerPGM(t *testing.T, dir string, n int) string {
	t.Helper()
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "P5\n%d %d\n255\n", n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if (i+j)%2 == 0 {
				buf.WriteByte(255)
			} else {
				buf.WriteByte(0)
			}
		}
	}
	path := filepath.Join(dir, "checker.pgm")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestStreamFailedRunLeavesNoPartialOut is the -out atomicity regression:
// a run that fails after streaming has begun must leave neither the target
// file nor the in-flight ".partial" sibling behind. Before -out went
// through the atomic writer, this scenario left a zero-byte or torn PGM at
// the target path.
func TestStreamFailedRunLeavesNoPartialOut(t *testing.T) {
	dir := t.TempDir()
	in := writeCheckerPGM(t, dir, 400) // 80000 components > 65535
	out := filepath.Join(dir, "labels.pgm")
	err := runStream(streamConfig{inFile: in, outFile: out, bandRows: 64, conn: 4, top: 0})
	if err == nil {
		t.Fatal("overflowing run did not fail")
	}
	for _, p := range []string{out, out + atomicio.PartialSuffix} {
		if _, serr := os.Stat(p); !os.IsNotExist(serr) {
			t.Errorf("failed run left %s behind (stat: %v)", p, serr)
		}
	}
}

// TestStreamSuccessWritesArtifacts covers the success side of the same
// contract: -out and -census-json land complete, and the partial siblings
// are gone.
func TestStreamSuccessWritesArtifacts(t *testing.T) {
	dir := t.TempDir()
	in := writeCheckerPGM(t, dir, 64)
	out := filepath.Join(dir, "labels.pgm")
	census := filepath.Join(dir, "census.json")
	err := runStream(streamConfig{
		inFile: in, outFile: out, bandRows: 16, conn: 8, top: 3, censusJSON: census})
	if err != nil {
		t.Fatalf("runStream: %v", err)
	}
	pgm, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("no label PGM: %v", err)
	}
	if !bytes.HasPrefix(pgm, []byte("P5\n64 64\n")) {
		t.Fatalf("label PGM header = %q", pgm[:min(16, len(pgm))])
	}
	doc, err := os.ReadFile(census)
	if err != nil {
		t.Fatalf("no census JSON: %v", err)
	}
	if !bytes.Contains(doc, []byte(`"components"`)) {
		t.Fatalf("census JSON lacks a components field: %s", doc)
	}
	for _, p := range []string{out + atomicio.PartialSuffix, census + atomicio.PartialSuffix} {
		if _, serr := os.Stat(p); !os.IsNotExist(serr) {
			t.Errorf("partial sibling %s survived success", p)
		}
	}
}

// TestStreamCheckpointAndResumeEndToEnd drives the full CLI path: a
// checkpointed run, then a -resume run against the same artifacts, whose
// label PGM and census JSON must be byte-identical.
func TestStreamCheckpointAndResumeEndToEnd(t *testing.T) {
	dir := t.TempDir()
	in := writeCheckerPGM(t, dir, 64)
	ckpt := filepath.Join(dir, "run.ckpt")
	base := streamConfig{
		inFile: in, bandRows: 8, conn: 8, top: 3, checkpoint: ckpt, checkpointEvery: 2}

	first := base
	first.outFile = filepath.Join(dir, "labels1.pgm")
	first.censusJSON = filepath.Join(dir, "census1.json")
	if err := runStream(first); err != nil {
		t.Fatalf("checkpointed run: %v", err)
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("no checkpoint written: %v", err)
	}

	second := base
	second.resume = true
	second.outFile = filepath.Join(dir, "labels2.pgm")
	second.censusJSON = filepath.Join(dir, "census2.json")
	if err := runStream(second); err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	for _, pair := range [][2]string{
		{first.outFile, second.outFile},
		{first.censusJSON, second.censusJSON},
	} {
		a, err := os.ReadFile(pair[0])
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(pair[1])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("%s and %s differ", pair[0], pair[1])
		}
	}
}
