// Command imgcc labels the connected components of an image and prints the
// component census. Three backends are available: the BDM simulator
// (-backend sim, the default, which also reports modeled execution costs),
// the host-parallel engine (-backend par, real goroutines, real wall
// clock), and the sequential baseline (-backend seq).
//
// Examples:
//
//	imgcc -pattern concentric-circles -n 512 -machine cm5 -p 32
//	imgcc -darpa -grey -machine sp2 -p 64
//	imgcc -random 0.593 -n 1024 -conn 4
//	imgcc -pattern dual-spiral -n 1024 -backend par
//	imgcc -stream -in huge.pgm -band-rows 4096 -out labels.pgm
//
// Every failure — a malformed flag, an unreadable or hostile PGM file, an
// invalid geometry — exits with code 1 and a one-line "imgcc: ..." message
// on stderr, never a panic trace.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"parimg"
	"parimg/internal/cli"
)

func main() { os.Exit(cli.Run("imgcc", run)) }

func run() error {
	var (
		patternName = cli.PatternFlag(flag.CommandLine)
		random      = cli.RandomFlag(flag.CommandLine)
		darpa       = cli.DarpaFlag(flag.CommandLine)
		inFile      = cli.InFlag(flag.CommandLine)
		n           = cli.NFlag(flag.CommandLine)
		p           = cli.PFlag(flag.CommandLine)
		machineName = cli.MachineFlag(flag.CommandLine)
		conn        = flag.Int("conn", 8, "connectivity: 4 or 8")
		grey        = flag.Bool("grey", false, "grey-scale components (like-colored pixels connect)")
		seed        = cli.SeedFlag(flag.CommandLine)
		top         = flag.Int("top", 10, "print the sizes of the largest components")
		direct      = flag.Bool("direct-dist", false, "use the unimproved direct change distribution")
		noShadow    = flag.Bool("no-shadow", false, "disable shadow managers")
		fullRelabel = flag.Bool("full-relabel", false, "relabel whole tiles every merge (disable limited updating)")
		compare     = flag.Bool("compare", false, "run all three parallel algorithms and compare")
		backend     = cli.BackendFlag(flag.CommandLine)
		algoName    = cli.AlgoFlag(flag.CommandLine)
		mergeName   = cli.MergeFlag(flag.CommandLine)
		workers     = cli.WorkersFlag(flag.CommandLine)
		metricsPath = cli.MetricsFlag(flag.CommandLine)
		timeout     = cli.TimeoutFlag(flag.CommandLine)
		streaming   = cli.StreamFlag(flag.CommandLine)
		bandRows    = cli.BandRowsFlag(flag.CommandLine)
		outFile     = cli.OutFlag(flag.CommandLine)
		checkpoint  = cli.CheckpointFlag(flag.CommandLine)
		ckptEvery   = cli.CheckpointEveryFlag(flag.CommandLine)
		resume      = cli.ResumeFlag(flag.CommandLine)
		censusJSON  = cli.CensusJSONFlag(flag.CommandLine)
	)
	flag.Parse()

	if *streaming {
		return runStream(streamConfig{
			inFile: *inFile, outFile: *outFile, bandRows: *bandRows,
			conn: *conn, top: *top, grey: *grey,
			metricsPath: *metricsPath, timeout: *timeout,
			checkpoint: *checkpoint, checkpointEvery: *ckptEvery,
			resume: *resume, censusJSON: *censusJSON,
		})
	}

	algo, err := parimg.ParseAlgo(*algoName)
	if err != nil {
		return err
	}
	merge, err := parimg.ParseMerge(*mergeName)
	if err != nil {
		return err
	}

	im, err := loadImage(*patternName, *random, *darpa, *inFile, *n, *seed)
	if err != nil {
		return err
	}
	ctx, cancel := cli.TimeoutContext(*timeout)
	defer cancel()
	opt0 := parimg.LabelOptions{
		Conn:               parimg.Connectivity(*conn),
		DirectDistribution: *direct,
		NoShadowManager:    *noShadow,
		FullRelabel:        *fullRelabel,
		Context:            ctx,
	}
	if *grey {
		opt0.Mode = parimg.Grey
	}
	switch *backend {
	case "sim":
		// fall through to the simulator below
	case "par", "seq":
		opt0.Algo = algo
		opt0.Merge = merge
		return runHost(*backend, im, opt0, *workers, *top,
			*metricsPath, cli.ImageName(*patternName, *darpa, *inFile))
	default:
		return fmt.Errorf("unknown backend %q (want sim, par or seq)", *backend)
	}
	spec, err := parimg.MachineByName(*machineName)
	if err != nil {
		return err
	}
	sim, err := parimg.NewSimulator(*p, spec)
	if err != nil {
		return err
	}
	opt := opt0
	if *compare {
		return compareAlgorithms(sim, im, opt, spec.Name, *p)
	}
	rec := parimg.NewMetricsRecorder()
	if *metricsPath != "" {
		sim.SetObserver(rec)
	}
	res, err := sim.Label(im, opt)
	if err != nil {
		return err
	}
	if *metricsPath != "" {
		m := rec.Snapshot()
		m.Command, m.Backend, m.Machine = "imgcc", "sim", spec.Name
		m.Procs, m.N = *p, im.N
		m.Image = cli.ImageName(*patternName, *darpa, *inFile)
		m.SimTimeS = res.Report.SimTime
		m.CompTimeS = res.Report.CompTime
		m.CommTimeS = res.Report.CommTime
		m.TotalNS = res.Report.Wall.Nanoseconds()
		if err := cli.WriteMetrics(*metricsPath, m); err != nil {
			return err
		}
	}

	fmt.Printf("%s, p=%d, %dx%d image, %v, %v mode\n",
		spec.Name, *p, im.N, im.N, opt.Conn, opt.Mode)
	fmt.Printf("%d connected components in %d merge phases\n", res.Components, res.MergePhases)
	printTop(res.Labels, *top)
	r := res.Report
	fmt.Printf("simulated time %.6g s (computation %.6g s, communication %.6g s)\n",
		r.SimTime, r.CompTime, r.CommTime)
	fmt.Printf("work per pixel %.4g us, %d words moved, host wall time %v\n",
		r.WorkPerPixel(im.N*im.N)*1e6, r.Words, r.Wall)
	return nil
}

// runHost labels on the host itself — the parallel engine or the
// sequential baseline — and reports real wall-clock time instead of the
// simulator's modeled costs. The labels buffer is allocated before the
// timed region, so the wall time (and metrics TotalNS) covers exactly the
// labeling work the recorded phases decompose.
func runHost(backend string, im *parimg.Image, opt parimg.LabelOptions,
	workers, top int, metricsPath, imageName string) error {
	labels := parimg.NewLabels(im.N)
	rec := parimg.NewMetricsRecorder()
	var elapsed time.Duration
	if backend == "par" {
		workers = cli.Workers(workers)
		eng := parimg.NewParallelEngine(workers)
		eng.SetAlgo(opt.Algo)
		eng.SetMerge(opt.Merge)
		if metricsPath != "" {
			eng.SetObserver(rec)
		}
		start := time.Now()
		_, err := eng.LabelIntoContext(opt.Context, im, connOf(opt), opt.Mode, labels)
		elapsed = time.Since(start)
		if err != nil {
			return err
		}
		fmt.Printf("host-parallel, workers=%d (GOMAXPROCS=%d), algo=%v, merge=%v, %dx%d image, %v, %v mode\n",
			workers, runtime.GOMAXPROCS(0), opt.Algo, opt.Merge, im.N, im.N, connOf(opt), opt.Mode)
		fmt.Printf("%d connected components, wall time %v\n", labels.Components(), elapsed)
	} else {
		start := time.Now()
		var err error
		labels, err = parimg.LabelSequentialErr(im, connOf(opt), opt.Mode)
		elapsed = time.Since(start)
		if err != nil {
			return err
		}
		fmt.Printf("sequential baseline, %dx%d image, %v, %v mode\n", im.N, im.N, connOf(opt), opt.Mode)
		fmt.Printf("%d connected components, wall time %v\n", labels.Components(), elapsed)
	}
	printTop(labels, top)
	if metricsPath != "" {
		m := rec.Snapshot()
		m.Command, m.Backend, m.Algo = "imgcc", backend, opt.Algo.String()
		if backend == "par" {
			m.Workers = workers
			m.Merge = opt.Merge.String()
		}
		m.Image, m.N = imageName, im.N
		m.TotalNS = elapsed.Nanoseconds()
		if err := cli.WriteMetrics(metricsPath, m); err != nil {
			return err
		}
	}
	return nil
}

func connOf(opt parimg.LabelOptions) parimg.Connectivity {
	if opt.Conn == 0 {
		return parimg.Conn8
	}
	return opt.Conn
}

// printTop prints the sizes of the largest components, biggest first.
func printTop(labels *parimg.Labels, top int) {
	if top <= 0 {
		return
	}
	sizes := labels.ComponentSizes()
	type comp struct {
		label uint32
		size  int
	}
	all := make([]comp, 0, len(sizes))
	for l, s := range sizes {
		all = append(all, comp{l, s})
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].size != all[b].size {
			return all[a].size > all[b].size
		}
		return all[a].label < all[b].label
	})
	if len(all) > top {
		all = all[:top]
	}
	for i, c := range all {
		fmt.Printf("  #%-2d label %-8d %d pixels\n", i+1, c.label, c.size)
	}
}

// compareAlgorithms runs the paper's merge algorithm and the two baselines
// (label diffusion and pointer jumping) on the same input, verifies they
// agree, and prints a comparison table.
func compareAlgorithms(sim *parimg.Simulator, im *parimg.Image, opt parimg.LabelOptions, machineName string, p int) error {
	type row struct {
		name string
		run  func() (*parimg.CCResult, error)
	}
	rows := []row{
		{"merge (this paper)", func() (*parimg.CCResult, error) { return sim.Label(im, opt) }},
		{"label diffusion", func() (*parimg.CCResult, error) { return sim.LabelByPropagation(im, opt) }},
		{"pointer jumping", func() (*parimg.CCResult, error) { return sim.LabelByPointerJumping(im, opt) }},
	}
	fmt.Printf("%s, p=%d, %dx%d image, %v, %v mode\n\n",
		machineName, p, im.N, im.N, opt.Conn, opt.Mode)
	fmt.Printf("%-20s  %10s  %8s  %12s  %10s\n", "algorithm", "sim time", "rounds", "words moved", "components")
	var first *parimg.CCResult
	for _, r := range rows {
		res, err := r.run()
		if err != nil {
			return fmt.Errorf("%s: %w", r.name, err)
		}
		if first == nil {
			first = res
		} else {
			for i := range first.Labels.Lab {
				if first.Labels.Lab[i] != res.Labels.Lab[i] {
					return fmt.Errorf("%s disagrees with the merge algorithm at pixel %d", r.name, i)
				}
			}
		}
		fmt.Printf("%-20s  %9.4gs  %8d  %12d  %10d\n",
			r.name, res.Report.SimTime, res.MergePhases, res.Report.Words, res.Components)
	}
	fmt.Println("\nall three algorithms produced identical labelings")
	return nil
}

func loadImage(pattern string, density float64, darpa bool, inFile string, n int, seed uint64) (*parimg.Image, error) {
	switch {
	case inFile != "":
		f, err := os.Open(inFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return parimg.ReadPGM(f)
	case darpa:
		return parimg.DARPAImage(), nil
	case pattern != "":
		for _, id := range parimg.AllPatterns() {
			if id.String() == pattern {
				return parimg.GeneratePatternErr(id, n)
			}
		}
		return nil, fmt.Errorf("unknown pattern %q (try dual-spiral, filled-disc, cross, ...)", pattern)
	case density >= 0:
		return parimg.RandomBinaryErr(n, density, seed)
	default:
		return parimg.RandomBinaryErr(n, 0.5, seed)
	}
}
