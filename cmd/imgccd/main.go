// Command imgccd is the labeling-as-a-service daemon: a long-lived HTTP
// server that accepts PGM images and returns their connected-component
// labelings (as JSON label arrays, per-component census statistics, or a
// densely renumbered PGM), built on the pooled-engine work-stealing
// runtime of internal/serve.
//
// Endpoints:
//
//	POST /label    label the posted PGM (query: mode, conn, algo, merge,
//	               census=1, labels=1, out=json|pgm, deadline_ms)
//	GET  /metrics  parimg-metrics/v1 documents: aggregate + recent requests
//	GET  /healthz  16x16 label round-trip through the full scheduler path
//
// Sizing: -engines runner goroutines each drive an -engine-workers-wide
// engine rented from a pool; engines x engine-workers must fit within
// ceil(GOMAXPROCS x -oversub). The -queue flag bounds admitted-but-waiting
// requests — beyond it the server answers 429 + Retry-After instead of
// queueing unbounded latency.
//
// Examples:
//
//	imgccd -addr :8080
//	imgccd -addr :8080 -engines 4 -engine-workers 2 -oversub 2 -queue 64
//	curl -s --data-binary @darpa_before.pgm 'localhost:8080/label?mode=grey&census=1'
//
// The server shuts down cleanly on SIGINT/SIGTERM: the listener stops, and
// in-flight requests finish (bounded by their own deadlines).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"parimg/internal/cli"
	"parimg/internal/serve"
)

func main() { os.Exit(cli.Run("imgccd", run)) }

func run() error {
	var (
		addr     = cli.AddrFlag(flag.CommandLine)
		engines  = cli.EnginesFlag(flag.CommandLine)
		workers  = cli.EngineWorkersFlag(flag.CommandLine)
		oversub  = cli.OversubFlag(flag.CommandLine)
		queue    = cli.QueueFlag(flag.CommandLine)
		deadline = cli.RequestDeadlineFlag(flag.CommandLine)
	)
	flag.Parse()

	s, err := serve.New(serve.Config{
		Engines:         *engines,
		EngineWorkers:   *workers,
		Oversubscribe:   *oversub,
		QueueDepth:      *queue,
		DefaultDeadline: *deadline,
	})
	if err != nil {
		return err
	}
	defer s.Close()
	cfg := s.Config()
	fmt.Printf("imgccd: listening on %s (engines=%d workers/engine=%d queue=%d)\n",
		*addr, cfg.Engines, cfg.EngineWorkers, cfg.QueueDepth)

	httpSrv := &http.Server{Addr: *addr, Handler: s.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.ListenAndServe() }()

	select {
	case err := <-serveErr:
		// The listener died on its own (bad address, port in use).
		return err
	case <-ctx.Done():
	}
	fmt.Println("imgccd: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
