// Command experiments regenerates the tables and figures of the paper's
// evaluation on the simulated machines. Each experiment is a subcommand:
//
//	experiments table1      histogramming survey (Table 1)
//	experiments table2      connected components survey (Table 2)
//	experiments fig3        CM-5 scalability summary
//	experiments fig6..fig9  transpose/broadcast time and bandwidth
//	experiments fig10       DARPA benchmark scene across machines
//	experiments fig11       histogram computation vs communication split
//	experiments fig12..14   CM-5 histogramming detail (p=16/32/64)
//	experiments fig15..17   CM-5 connected components detail (p=16/32/64)
//	experiments fig18..19   SP-1 histogramming / connected components
//	experiments fig20..21   SP-2 histogramming / connected components
//	experiments all         everything above, in order
package main

import (
	"fmt"
	"io"
	"os"

	"parimg/internal/bench"
	"parimg/internal/machine"
)

type experiment struct {
	name string
	desc string
	run  func(io.Writer) error
}

func experiments() []experiment {
	return []experiment{
		{"table1", "Table 1: parallel histogramming survey + reproduction", bench.Table1},
		{"table2", "Table 2: parallel connected components survey + reproduction", bench.Table2},
		{"fig3", "Figure 3: histogramming and connected components scalability (CM-5)", bench.Fig3},
		{"fig6", "Figure 6: transpose/broadcast on the CM-5 (p=32)", func(w io.Writer) error {
			return bench.FigTranspose(w, machine.CM5, 32)
		}},
		{"fig7", "Figure 7: transpose/broadcast on the SP-2 (p=32)", func(w io.Writer) error {
			return bench.FigTranspose(w, machine.SP2, 32)
		}},
		{"fig8", "Figure 8: transpose/broadcast on the CS-2 (p=32)", func(w io.Writer) error {
			return bench.FigTranspose(w, machine.CS2, 32)
		}},
		{"fig9", "Figure 9: transpose/broadcast on the Paragon (p=8)", func(w io.Writer) error {
			return bench.FigTranspose(w, machine.Paragon, 8)
		}},
		{"fig10", "Figure 10: DARPA benchmark scene across machines", bench.Fig10},
		{"fig11", "Figure 11: histogramming computation vs communication", bench.Fig11},
		{"fig12", "Figure 12: CM-5 histogramming detail (p=16)", func(w io.Writer) error {
			return bench.FigHistDetail(w, machine.CM5, 16)
		}},
		{"fig13", "Figure 13: CM-5 histogramming detail (p=32)", func(w io.Writer) error {
			return bench.FigHistDetail(w, machine.CM5, 32)
		}},
		{"fig14", "Figure 14: CM-5 histogramming detail (p=64)", func(w io.Writer) error {
			return bench.FigHistDetail(w, machine.CM5, 64)
		}},
		{"fig15", "Figure 15: CM-5 connected components detail (p=16)", func(w io.Writer) error {
			return bench.FigCCDetail(w, machine.CM5, 16, []int{512, 1024})
		}},
		{"fig16", "Figure 16: CM-5 connected components detail (p=32)", func(w io.Writer) error {
			return bench.FigCCDetail(w, machine.CM5, 32, []int{512, 1024})
		}},
		{"fig17", "Figure 17: CM-5 connected components detail (p=64)", func(w io.Writer) error {
			return bench.FigCCDetail(w, machine.CM5, 64, []int{512, 1024})
		}},
		{"fig18", "Figure 18: SP-1 histogramming detail (p=16)", func(w io.Writer) error {
			return bench.FigHistDetail(w, machine.SP1, 16)
		}},
		{"fig19", "Figure 19: SP-1 connected components detail (p=16)", func(w io.Writer) error {
			return bench.FigCCDetail(w, machine.SP1, 16, []int{512, 1024})
		}},
		{"fig20", "Figure 20: SP-2 histogramming detail (p=16)", func(w io.Writer) error {
			return bench.FigHistDetail(w, machine.SP2, 16)
		}},
		{"fig21", "Figure 21: SP-2 connected components detail (p=32)", func(w io.Writer) error {
			return bench.FigCCDetail(w, machine.SP2, 32, []int{128, 256, 512, 1024})
		}},
		{"baseline", "Extra: log p merging vs iterative label diffusion", bench.Baseline},
		{"efficiency", "Extra: speedup and efficiency vs p=1", bench.Efficiency},
		{"phases", "Extra: per-stage breakdown of the merge algorithm", bench.Phases},
		{"utilization", "Extra: per-processor computation/communication/wait split", bench.Utilization},
		{"ablations", "Extra: design-choice ablations (updating, shadows, distribution, collectives)", bench.Ablations},
		{"gantt", "Extra: per-processor activity timeline of one labeling run", bench.Gantt},
	}
}

func usage(w io.Writer) {
	fmt.Fprintln(w, "usage: experiments [-csv] <name>|all")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "  -csv     emit tables as CSV instead of aligned text")
	fmt.Fprintln(w)
	for _, e := range experiments() {
		fmt.Fprintf(w, "  %-8s %s\n", e.name, e.desc)
	}
	fmt.Fprintf(w, "  %-8s run every experiment in order\n", "all")
}

func main() {
	args := os.Args[1:]
	if len(args) > 0 && args[0] == "-csv" {
		bench.Style = bench.StyleCSV
		args = args[1:]
	}
	if len(args) != 1 {
		usage(os.Stderr)
		os.Exit(2)
	}
	name := args[0]
	if name == "all" {
		for _, e := range experiments() {
			fmt.Printf("==== %s: %s ====\n\n", e.name, e.desc)
			if err := e.run(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.name, err)
				os.Exit(1)
			}
			fmt.Println()
		}
		return
	}
	for _, e := range experiments() {
		if e.name == name {
			if err := e.run(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				os.Exit(1)
			}
			return
		}
	}
	fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n\n", name)
	usage(os.Stderr)
	os.Exit(2)
}
