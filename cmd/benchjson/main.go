// Command benchjson measures the wall-clock speedup of the host-parallel
// labeling engine over the sequential baseline and writes the result as
// JSON (default BENCH_parallel.json) for tracking across commits.
//
// Each measurement labels the dual-spiral pattern — the catalog's
// worst case for border merging — repeatedly for at least -mintime per
// backend and keeps the fastest iteration, the usual go-bench style
// floor of scheduling noise. GOMAXPROCS and NumCPU are recorded so a
// reader can tell a 1-core container (speedup ~1x is the best possible)
// from a real multicore host.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"parimg"
)

type sizeResult struct {
	N            int     `json:"n"`
	Pattern      string  `json:"pattern"`
	SeqNS        int64   `json:"sequential_ns"`
	ParNS        int64   `json:"parallel_ns"`
	Speedup      float64 `json:"speedup"`
	ParMPixPerS  float64 `json:"parallel_mpix_per_s"`
	SeqMPixPerS  float64 `json:"sequential_mpix_per_s"`
	Components   int     `json:"components"`
	LabelsAgreed bool    `json:"labels_identical"`
}

type report struct {
	Benchmark  string       `json:"benchmark"`
	GoMaxProcs int          `json:"gomaxprocs"`
	NumCPU     int          `json:"numcpu"`
	Workers    int          `json:"workers"`
	Conn       string       `json:"connectivity"`
	Sizes      []sizeResult `json:"sizes"`
}

func main() {
	var (
		out     = flag.String("o", "BENCH_parallel.json", "output file")
		workers = flag.Int("workers", 0, "parallel engine workers (0 = GOMAXPROCS)")
		minTime = flag.Duration("mintime", 300*time.Millisecond, "minimum measuring time per backend per size")
	)
	flag.Parse()

	w := *workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	rep := report{
		Benchmark:  "LabelParallel vs LabelSequential, dual-spiral, Conn8, binary",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Workers:    w,
		Conn:       parimg.Conn8.String(),
	}

	for _, n := range []int{512, 1024} {
		im := parimg.GeneratePattern(parimg.DualSpiral, n)
		eng := parimg.NewParallelEngine(w)
		parOut := parimg.NewLabels(n)

		seqNS := best(*minTime, func() {
			parimg.LabelSequential(im, parimg.Conn8, parimg.Binary)
		})
		var comps int
		parNS := best(*minTime, func() {
			comps = eng.LabelInto(im, parimg.Conn8, parimg.Binary, parOut)
		})

		want := parimg.LabelSequential(im, parimg.Conn8, parimg.Binary)
		agree := true
		for i := range want.Lab {
			if want.Lab[i] != parOut.Lab[i] {
				agree = false
				break
			}
		}

		pix := float64(n * n)
		rep.Sizes = append(rep.Sizes, sizeResult{
			N:            n,
			Pattern:      "dual-spiral",
			SeqNS:        seqNS,
			ParNS:        parNS,
			Speedup:      float64(seqNS) / float64(parNS),
			SeqMPixPerS:  pix / (float64(seqNS) / 1e9) / 1e6,
			ParMPixPerS:  pix / (float64(parNS) / 1e9) / 1e6,
			Components:   comps,
			LabelsAgreed: agree,
		})
		fmt.Printf("n=%d: seq %v, par %v (workers=%d), speedup %.2fx, identical=%v\n",
			n, time.Duration(seqNS), time.Duration(parNS), w,
			float64(seqNS)/float64(parNS), agree)
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&rep); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (gomaxprocs=%d, numcpu=%d)\n", *out, rep.GoMaxProcs, rep.NumCPU)
}

// best runs fn repeatedly for at least minTime and returns the fastest
// single-iteration wall time in nanoseconds.
func best(minTime time.Duration, fn func()) int64 {
	var fastest int64 = 1<<63 - 1
	deadline := time.Now().Add(minTime)
	for time.Now().Before(deadline) {
		start := time.Now()
		fn()
		if d := time.Since(start).Nanoseconds(); d < fastest {
			fastest = d
		}
	}
	return fastest
}
