// Command benchjson measures the wall-clock labeling throughput of every
// backend x algorithm x merge x mode combination — the sequential BFS
// baseline and the host-parallel engine running either per-pixel BFS
// ("bfs") or the run-based two-pass engine ("runs"), at one worker and at
// a multi-worker count, with the border merge resolved by the union-find
// tree ("tree") and by the Shiloach-Vishkin rounds ("sv"), in binary and
// in grey connectivity — and writes the matrix as JSON (default
// BENCH_runs.json) for tracking across commits.
//
// The multi-worker count is GOMAXPROCS when that is more than one, and an
// oversubscribed 4 otherwise: the merge axis only exists with at least two
// strips, so a 1-CPU container still measures tree vs sv (concurrency
// effects are then simulated by the scheduler, but the per-phase algorithmic
// costs — edge extraction, find chains vs hook rounds — are real). One-
// worker rows have no boundary and are recorded as merge "tree", matching
// the keys of baselines written before the merge axis existed. -merge
// restricts the multi-worker sweep to one backend; the default "auto"
// sweeps both.
//
// Unlike the first-generation harness, which benchmarked only the
// dual-spiral pattern, every run covers all nine Figure 1 catalog patterns
// plus the synthetic DARPA scene, so the report reflects worst-case inputs
// (single-pixel-wide features, dense small components) as well as
// spiral-friendly ones; each input is labeled in both modes, so the DARPA
// scene — the paper's flagship grey workload — exercises the grey run
// extractor over the byte plane, not just binary foreground runs. Each
// measurement labels its image repeatedly for at least -mintime and keeps
// the fastest iteration, the usual go-bench floor of scheduling noise.
// Every configuration's output is verified pixel-for-pixel against the
// sequential reference, and the summary records the geometric-mean
// single-worker speedup of runs over bfs on the 1024^2 catalog patterns,
// per mode. GOMAXPROCS and NumCPU are recorded so a reader can tell a
// 1-core container from a real multicore host.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"parimg"
	"parimg/internal/benchfmt"
	"parimg/internal/cli"
	"parimg/internal/errs"
)

func main() { os.Exit(cli.Run("benchjson", run)) }

func run() error {
	var (
		out         = flag.String("o", "BENCH_runs.json", "output file")
		workers     = cli.WorkersFlag(flag.CommandLine)
		mergeName   = cli.MergeFlag(flag.CommandLine)
		minTime     = flag.Duration("mintime", 200*time.Millisecond, "minimum measuring time per configuration")
		metricsPath = cli.MetricsFlag(flag.CommandLine)
		timeout     = cli.TimeoutFlag(flag.CommandLine)
	)
	flag.Parse()

	ctx, cancel := cli.TimeoutContext(*timeout)
	defer cancel()
	start := time.Now()

	mergeSel, err := parimg.ParseMerge(*mergeName)
	if err != nil {
		return err
	}
	maxW := cli.Workers(*workers)
	multiW := maxW
	if multiW < 2 {
		multiW = 4
	}
	workerCounts := []int{1, multiW}
	merges := []parimg.Merge{parimg.MergeTree, parimg.MergeSV}
	if mergeSel != parimg.MergeAuto {
		merges = []parimg.Merge{mergeSel}
	}

	rep := benchfmt.Report{
		Benchmark:  "label backend x algo x merge x mode matrix, nine catalog patterns + DARPA, binary and grey",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Conn:       parimg.Conn8.String(),
		Modes:      parimg.Binary.String() + "," + parimg.Grey.String(),
		MinTimeMS:  minTime.Milliseconds(),
	}

	type input struct {
		name string
		im   *parimg.Image
	}
	var inputs []input
	for _, n := range []int{512, 1024} {
		for _, id := range parimg.AllPatterns() {
			inputs = append(inputs, input{id.String(), parimg.GeneratePattern(id, n)})
		}
	}
	inputs = append(inputs, input{"darpa", parimg.DARPAImage()})

	// logSpeedupSum/logSpeedupN accumulate, per mode, the workers=1
	// log-speedups of the 1024^2 catalog patterns for the geometric-mean
	// summaries.
	logSpeedupSum := map[parimg.Mode]float64{}
	logSpeedupN := map[parimg.Mode]int{}
	// logSVSum/logSVN accumulate the multi-worker tree/sv end-to-end
	// log-speedups of the runs engine on the 1024^2 catalog patterns.
	logSVSum := map[parimg.Mode]float64{}
	logSVN := map[parimg.Mode]int{}

	// With -metrics, every host-parallel configuration gets one extra
	// instrumented labeling (outside the timed loop) and the per-phase
	// documents are written as one JSON array.
	var metricsDocs []*parimg.Metrics
	rec := parimg.NewMetricsRecorder()

	for _, in := range inputs {
		for _, mode := range []parimg.Mode{parimg.Binary, parimg.Grey} {
			// The sequential baseline and the timed loops below run minutes
			// in total; the per-input check keeps -timeout honest between
			// configurations, and LabelIntoContext enforces it inside them.
			if err := ctx.Err(); err != nil {
				return errs.FromContext("benchjson", time.Since(start), err)
			}
			n := in.im.N
			pix := float64(n * n)
			want := parimg.LabelSequential(in.im, parimg.Conn8, mode)

			record := func(backend, algo, merge string, w int, ns int64, got *parimg.Labels, comps int) {
				agree := true
				for i := range want.Lab {
					if want.Lab[i] != got.Lab[i] {
						agree = false
						break
					}
				}
				rep.Rows = append(rep.Rows, benchfmt.Row{
					Pattern: in.name, N: n, Backend: backend, Algo: algo,
					Mode: mode.String(), Merge: merge, Workers: w,
					NS: ns, MPixPerS: pix / (float64(ns) / 1e9) / 1e6,
					Components: comps, LabelsAgreed: agree,
				})
				fmt.Printf("%-18s n=%-5d %-6s %-3s %-4s %-4s w=%-2d  %10v  %8.1f MPix/s  identical=%v\n",
					in.name, n, mode, backend, algo, merge, w, time.Duration(ns), pix/(float64(ns)/1e9)/1e6, agree)
			}

			// Sequential baseline (backend seq, the paper's Section 5.1 BFS).
			seqOut := parimg.NewLabels(n)
			var seqNS int64
			{
				var l *parimg.Labels
				seqNS = best(*minTime, func() { l = parimg.LabelSequential(in.im, parimg.Conn8, mode) })
				copy(seqOut.Lab, l.Lab)
				record("seq", "bfs", "", 1, seqNS, seqOut, seqOut.Components())
			}

			// Host-parallel backend: algo x workers x merge. One worker has
			// no strip boundary, so its single cell is recorded as "tree"
			// (the old baselines' implicit value); the merge axis proper is
			// measured at the multi-worker count.
			var bfs1, runs1 int64
			mergeNS := map[parimg.Merge]int64{}
			for _, algoName := range []string{"bfs", "runs"} {
				algo, err := parimg.ParseAlgo(algoName)
				if err != nil {
					return err
				}
				for _, w := range workerCounts {
					wMerges := merges
					if w == 1 {
						wMerges = []parimg.Merge{parimg.MergeTree}
					}
					for _, merge := range wMerges {
						eng := parimg.NewParallelEngine(w)
						eng.SetAlgo(algo)
						eng.SetMerge(merge)
						got := parimg.NewLabels(n)
						var comps int
						var runErr error
						ns := best(*minTime, func() {
							if runErr != nil {
								return
							}
							comps, runErr = eng.LabelIntoContext(ctx, in.im, parimg.Conn8, mode, got)
						})
						if runErr != nil {
							return runErr
						}
						record("par", algoName, merge.String(), w, ns, got, comps)
						if *metricsPath != "" {
							rec.Reset()
							eng.SetObserver(rec)
							t0 := time.Now()
							eng.LabelInto(in.im, parimg.Conn8, mode, got)
							instrNS := time.Since(t0).Nanoseconds()
							eng.SetObserver(nil)
							m := rec.Snapshot()
							m.Command, m.Backend, m.Algo = "benchjson", "par", algoName
							m.Merge = merge.String()
							m.Workers, m.Image, m.N = w, in.name, n
							m.TotalNS = instrNS
							metricsDocs = append(metricsDocs, m)
						}
						if w == 1 {
							if algoName == "bfs" {
								bfs1 = ns
							} else {
								runs1 = ns
							}
						}
						if w == multiW && algoName == "runs" {
							mergeNS[merge] = ns
						}
					}
				}
			}
			if n == 1024 && in.name != "darpa" && bfs1 > 0 && runs1 > 0 {
				logSpeedupSum[mode] += math.Log(float64(bfs1) / float64(runs1))
				logSpeedupN[mode]++
			}
			if n == 1024 && in.name != "darpa" && mergeNS[parimg.MergeTree] > 0 && mergeNS[parimg.MergeSV] > 0 {
				logSVSum[mode] += math.Log(float64(mergeNS[parimg.MergeTree]) / float64(mergeNS[parimg.MergeSV]))
				logSVN[mode]++
			}
		}
	}

	if n := logSpeedupN[parimg.Binary]; n > 0 {
		rep.GeomeanRunsOverBFS1W1024 = math.Exp(logSpeedupSum[parimg.Binary] / float64(n))
	}
	if n := logSpeedupN[parimg.Grey]; n > 0 {
		rep.GeomeanGreyRunsOverBFS1W1024 = math.Exp(logSpeedupSum[parimg.Grey] / float64(n))
	}
	if n := logSVN[parimg.Binary]; n > 0 {
		rep.GeomeanSVOverTreeMW1024 = math.Exp(logSVSum[parimg.Binary] / float64(n))
	}
	if n := logSVN[parimg.Grey]; n > 0 {
		rep.GeomeanGreySVOverTreeMW1024 = math.Exp(logSVSum[parimg.Grey] / float64(n))
	}

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if *metricsPath != "" {
		if err := cli.WriteMetricsList(*metricsPath, metricsDocs); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d per-configuration metrics documents)\n", *metricsPath, len(metricsDocs))
	}
	fmt.Printf("wrote %s (gomaxprocs=%d, numcpu=%d, geomean runs/bfs @1w/1024 = %.2fx binary, %.2fx grey; "+
		"geomean tree/sv @%dw/1024 runs = %.2fx binary, %.2fx grey)\n",
		*out, rep.GoMaxProcs, rep.NumCPU,
		rep.GeomeanRunsOverBFS1W1024, rep.GeomeanGreyRunsOverBFS1W1024,
		multiW, rep.GeomeanSVOverTreeMW1024, rep.GeomeanGreySVOverTreeMW1024)
	return nil
}

// best runs fn repeatedly for at least minTime and returns the fastest
// single-iteration wall time in nanoseconds.
func best(minTime time.Duration, fn func()) int64 {
	var fastest int64 = 1<<63 - 1
	deadline := time.Now().Add(minTime)
	for time.Now().Before(deadline) {
		start := time.Now()
		fn()
		if d := time.Since(start).Nanoseconds(); d < fastest {
			fastest = d
		}
	}
	return fastest
}
