// Command benchdiff compares a freshly measured benchjson report against a
// committed baseline (default BENCH_runs.json) cell by cell — a cell is one
// pattern x size x mode x backend x algo x workers configuration — and
// exits nonzero when any cell slowed down beyond -tolerance, when any cell
// of the baseline disappeared, or when any new cell's labeling disagreed
// with the sequential reference. `make bench-diff` measures and diffs in
// one step.
//
// Timing on shared hardware is noisy and the committed baseline was
// usually measured on a different machine, so the default tolerance is
// generous (50%); tighten it with -tolerance when baseline and fresh run
// share a quiet host. Reports written before the grey sweep carry no mode
// field; those cells are compared as binary.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"parimg/internal/benchfmt"
	"parimg/internal/cli"
	"parimg/internal/errs"
)

func main() { os.Exit(cli.Run("benchdiff", run)) }

func run() error {
	var (
		base      = flag.String("base", "BENCH_runs.json", "baseline benchjson report")
		fresh     = flag.String("new", "", "freshly measured benchjson report to compare (required)")
		tolerance = flag.Float64("tolerance", 0.5, "per-cell relative slowdown allowed before a cell counts as a regression")
		verbose   = flag.Bool("v", false, "print every matched cell, not just regressions")
	)
	flag.Parse()
	if *fresh == "" {
		return errs.Bad("benchdiff", "missing -new: the report to compare against -base")
	}
	if *tolerance < 0 {
		return errs.Bad("benchdiff", "negative -tolerance %v", *tolerance)
	}

	baseRep, err := benchfmt.ReadFile(*base)
	if err != nil {
		return err
	}
	newRep, err := benchfmt.ReadFile(*fresh)
	if err != nil {
		return err
	}

	deltas, onlyBase, onlyNew := benchfmt.Diff(baseRep, newRep, *tolerance)

	bad := 0
	for _, d := range deltas {
		if d.Regress {
			bad++
			fmt.Printf("REGRESS %-45s %10v -> %10v  (%.2fx, tolerance %.2fx)\n",
				d.Key, time.Duration(d.BaseNS), time.Duration(d.NewNS), d.Ratio, 1+*tolerance)
		} else if *verbose {
			fmt.Printf("ok      %-45s %10v -> %10v  (%.2fx)\n",
				d.Key, time.Duration(d.BaseNS), time.Duration(d.NewNS), d.Ratio)
		}
	}
	for _, k := range onlyBase {
		fmt.Printf("MISSING %s (in %s but not in %s)\n", k, *base, *fresh)
	}
	for _, k := range onlyNew {
		fmt.Printf("new     %s (not in baseline)\n", k)
	}
	disagree := benchfmt.Disagreements(newRep)
	for _, k := range disagree {
		fmt.Printf("WRONG   %s: labeling disagreed with the sequential reference\n", k)
	}

	fmt.Printf("%d cells compared, %d regressions, %d missing, %d new, %d label disagreements\n",
		len(deltas), bad, len(onlyBase), len(onlyNew), len(disagree))
	if bad > 0 || len(onlyBase) > 0 || len(disagree) > 0 {
		return fmt.Errorf("%d regressions, %d missing cells, %d disagreements vs %s",
			bad, len(onlyBase), len(disagree), *base)
	}
	return nil
}
