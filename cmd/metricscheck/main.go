// Command metricscheck validates parimg-metrics/v1 JSON files: each
// argument must be a single metrics document or an array of them (the
// forms written by the -metrics flags and served by imgccd's /metrics),
// and every document must pass the schema validator. It is the CI
// serve-smoke job's scraper check:
//
//	curl -s localhost:8080/metrics > metrics.json
//	go run ./cmd/metricscheck metrics.json
//
// Exit code 0 means every file validated; any failure prints a one-line
// "metricscheck: ..." error and exits 1.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"

	"parimg/internal/cli"
	"parimg/internal/errs"
	"parimg/internal/obs"
)

func main() { os.Exit(cli.Run("metricscheck", run)) }

func run() error {
	flag.Parse()
	if flag.NArg() == 0 {
		return errs.Bad("metricscheck", "usage: metricscheck FILE.json [FILE.json ...]")
	}
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		// Sniff the form so a validation failure inside an array is
		// reported as such, not as a failed fallback parse.
		if trimmed := bytes.TrimLeft(data, " \t\r\n"); len(trimmed) > 0 && trimmed[0] == '[' {
			ms, err := obs.ReadFileList(path)
			if err != nil {
				return err
			}
			fmt.Printf("%s: ok (%d documents)\n", path, len(ms))
			continue
		}
		if _, err := obs.ReadFile(path); err != nil {
			return err
		}
		fmt.Printf("%s: ok (1 document)\n", path)
	}
	return nil
}
