// Command imghist histograms an image and prints the histogram. Three
// backends are available: the BDM simulator (-backend sim, the default,
// which also reports modeled execution costs), the host-parallel engine
// (-backend par, real goroutines, real wall clock), and the sequential
// baseline (-backend seq).
//
// The image is either a generated test image (-pattern, -random, -darpa) or
// a PGM file (-in). Examples:
//
//	imghist -pattern dual-spiral -n 512 -k 2 -machine cm5 -p 32
//	imghist -darpa -k 256 -machine sp2 -p 64
//	imghist -in scene.pgm -k 256
//	imghist -darpa -k 256 -backend par
//
// Every failure — a malformed flag, an unreadable or hostile PGM file, a
// grey level outside [0, k) — exits with code 1 and a one-line
// "imghist: ..." message on stderr, never a panic trace.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"parimg"
	"parimg/internal/cli"
)

func main() { os.Exit(cli.Run("imghist", run)) }

func run() error {
	var (
		patternName = cli.PatternFlag(flag.CommandLine)
		random      = cli.RandomFlag(flag.CommandLine)
		randomGrey  = flag.Bool("random-grey", false, "random grey image with k levels")
		darpa       = cli.DarpaFlag(flag.CommandLine)
		inFile      = cli.InFlag(flag.CommandLine)
		n           = cli.NFlag(flag.CommandLine)
		k           = flag.Int("k", 256, "number of grey levels (power of two)")
		p           = cli.PFlag(flag.CommandLine)
		machineName = cli.MachineFlag(flag.CommandLine)
		seed        = cli.SeedFlag(flag.CommandLine)
		quiet       = flag.Bool("quiet", false, "print only the timing summary")
		backend     = cli.BackendFlag(flag.CommandLine)
		workers     = cli.WorkersFlag(flag.CommandLine)
		metricsPath = cli.MetricsFlag(flag.CommandLine)
		timeout     = cli.TimeoutFlag(flag.CommandLine)
	)
	flag.Parse()

	im, err := loadImage(*patternName, *random, *randomGrey, *darpa, *inFile, *n, *k, *seed)
	if err != nil {
		return err
	}
	ctx, cancel := cli.TimeoutContext(*timeout)
	defer cancel()
	imageName := cli.ImageName(*patternName, *darpa, *inFile)
	switch *backend {
	case "sim":
		// fall through to the simulator below
	case "par", "seq":
		return runHost(ctx, *backend, im, *k, *workers, *quiet, *metricsPath, imageName)
	default:
		return fmt.Errorf("unknown backend %q (want sim, par or seq)", *backend)
	}
	spec, err := parimg.MachineByName(*machineName)
	if err != nil {
		return err
	}
	sim, err := parimg.NewSimulator(*p, spec)
	if err != nil {
		return err
	}
	rec := parimg.NewMetricsRecorder()
	if *metricsPath != "" {
		sim.SetObserver(rec)
	}
	res, err := sim.HistogramContext(ctx, im, *k)
	if err != nil {
		return err
	}
	if *metricsPath != "" {
		m := rec.Snapshot()
		m.Command, m.Backend, m.Machine = "imghist", "sim", spec.Name
		m.Procs, m.Image, m.N, m.K = *p, imageName, im.N, *k
		m.SimTimeS = res.Report.SimTime
		m.CompTimeS = res.Report.CompTime
		m.CommTimeS = res.Report.CommTime
		m.TotalNS = res.Report.Wall.Nanoseconds()
		if err := cli.WriteMetrics(*metricsPath, m); err != nil {
			return err
		}
	}

	if !*quiet {
		for g, c := range res.H {
			if c != 0 {
				fmt.Printf("H[%3d] = %d\n", g, c)
			}
		}
	}
	r := res.Report
	fmt.Printf("%s, p=%d, %dx%d image, k=%d\n", spec.Name, *p, im.N, im.N, *k)
	fmt.Printf("simulated time %.6g s (computation %.6g s, communication %.6g s)\n",
		r.SimTime, r.CompTime, r.CommTime)
	fmt.Printf("work per pixel %.4g ns, %d words moved, host wall time %v\n",
		r.WorkPerPixel(im.N*im.N)*1e9, r.Words, r.Wall)
	return nil
}

// runHost histograms on the host itself — the parallel engine or the
// sequential baseline — and reports real wall-clock time instead of the
// simulator's modeled costs.
func runHost(ctx context.Context, backend string, im *parimg.Image, k, workers int, quiet bool,
	metricsPath, imageName string) error {
	var (
		h   []int64
		err error
		rec = parimg.NewMetricsRecorder()
	)
	start := time.Now()
	if backend == "par" {
		workers = cli.Workers(workers)
		eng := parimg.NewParallelEngine(workers)
		if metricsPath != "" {
			eng.SetObserver(rec)
		}
		h, err = eng.HistogramContext(ctx, im, k)
	} else {
		h, err = parimg.HistogramSequential(im, k)
	}
	elapsed := time.Since(start)
	if err != nil {
		return err
	}
	if !quiet {
		for g, c := range h {
			if c != 0 {
				fmt.Printf("H[%3d] = %d\n", g, c)
			}
		}
	}
	if backend == "par" {
		fmt.Printf("host-parallel, workers=%d (GOMAXPROCS=%d), %dx%d image, k=%d\n",
			workers, runtime.GOMAXPROCS(0), im.N, im.N, k)
	} else {
		fmt.Printf("sequential baseline, %dx%d image, k=%d\n", im.N, im.N, k)
	}
	fmt.Printf("wall time %v\n", elapsed)
	if metricsPath != "" {
		m := rec.Snapshot()
		m.Command, m.Backend = "imghist", backend
		if backend == "par" {
			m.Workers = workers
		}
		m.Image, m.N, m.K = imageName, im.N, k
		m.TotalNS = elapsed.Nanoseconds()
		if err := cli.WriteMetrics(metricsPath, m); err != nil {
			return err
		}
	}
	return nil
}

func loadImage(pattern string, density float64, grey, darpa bool, inFile string, n, k int, seed uint64) (*parimg.Image, error) {
	switch {
	case inFile != "":
		f, err := os.Open(inFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return parimg.ReadPGM(f)
	case darpa:
		return parimg.DARPAImage(), nil
	case pattern != "":
		for _, id := range parimg.AllPatterns() {
			if id.String() == pattern {
				return parimg.GeneratePatternErr(id, n)
			}
		}
		return nil, fmt.Errorf("unknown pattern %q (try dual-spiral, filled-disc, cross, ...)", pattern)
	case density >= 0:
		return parimg.RandomBinaryErr(n, density, seed)
	case grey:
		return parimg.RandomGreyErr(n, k, seed)
	default:
		return parimg.RandomGreyErr(n, k, seed)
	}
}
