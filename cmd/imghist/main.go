// Command imghist histograms an image and prints the histogram. Three
// backends are available: the BDM simulator (-backend sim, the default,
// which also reports modeled execution costs), the host-parallel engine
// (-backend par, real goroutines, real wall clock), and the sequential
// baseline (-backend seq).
//
// The image is either a generated test image (-pattern, -random, -darpa) or
// a PGM file (-in). Examples:
//
//	imghist -pattern dual-spiral -n 512 -k 2 -machine cm5 -p 32
//	imghist -darpa -k 256 -machine sp2 -p 64
//	imghist -in scene.pgm -k 256
//	imghist -darpa -k 256 -backend par
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"parimg"
	"parimg/internal/cli"
)

func main() {
	var (
		patternName = flag.String("pattern", "", "catalog test image name (e.g. dual-spiral, filled-disc)")
		random      = flag.Float64("random", -1, "random binary image with this foreground density")
		randomGrey  = flag.Bool("random-grey", false, "random grey image with k levels")
		darpa       = flag.Bool("darpa", false, "use the synthetic DARPA benchmark scene (512x512, 256 greys)")
		inFile      = flag.String("in", "", "read a PGM image from this file")
		n           = flag.Int("n", 512, "image side for generated images")
		k           = flag.Int("k", 256, "number of grey levels (power of two)")
		p           = flag.Int("p", 32, "number of simulated processors (power of two)")
		machineName = flag.String("machine", "cm5", "machine profile: cm5, sp1, sp2, cs2, paragon, ideal")
		seed        = flag.Uint64("seed", 1, "seed for random images")
		quiet       = flag.Bool("quiet", false, "print only the timing summary")
		backend     = flag.String("backend", "sim", "execution backend: sim (BDM simulator), par (host-parallel), seq (sequential)")
		workers     = cli.WorkersFlag(flag.CommandLine)
	)
	flag.Parse()

	im, err := loadImage(*patternName, *random, *randomGrey, *darpa, *inFile, *n, *k, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "imghist: %v\n", err)
		os.Exit(1)
	}
	switch *backend {
	case "sim":
		// fall through to the simulator below
	case "par", "seq":
		runHost(*backend, im, *k, *workers, *quiet)
		return
	default:
		fmt.Fprintf(os.Stderr, "imghist: unknown backend %q (want sim, par or seq)\n", *backend)
		os.Exit(1)
	}
	spec, err := parimg.MachineByName(*machineName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "imghist: %v\n", err)
		os.Exit(1)
	}
	sim, err := parimg.NewSimulator(*p, spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "imghist: %v\n", err)
		os.Exit(1)
	}
	res, err := sim.Histogram(im, *k)
	if err != nil {
		fmt.Fprintf(os.Stderr, "imghist: %v\n", err)
		os.Exit(1)
	}

	if !*quiet {
		for g, c := range res.H {
			if c != 0 {
				fmt.Printf("H[%3d] = %d\n", g, c)
			}
		}
	}
	r := res.Report
	fmt.Printf("%s, p=%d, %dx%d image, k=%d\n", spec.Name, *p, im.N, im.N, *k)
	fmt.Printf("simulated time %.6g s (computation %.6g s, communication %.6g s)\n",
		r.SimTime, r.CompTime, r.CommTime)
	fmt.Printf("work per pixel %.4g ns, %d words moved, host wall time %v\n",
		r.WorkPerPixel(im.N*im.N)*1e9, r.Words, r.Wall)
}

// runHost histograms on the host itself — the parallel engine or the
// sequential baseline — and reports real wall-clock time instead of the
// simulator's modeled costs.
func runHost(backend string, im *parimg.Image, k, workers int, quiet bool) {
	var (
		h     []int64
		err   error
		start = time.Now()
	)
	if backend == "par" {
		workers = cli.Workers(workers)
		h, err = parimg.NewParallelEngine(workers).Histogram(im, k)
	} else {
		h, err = parimg.HistogramSequential(im, k)
	}
	elapsed := time.Since(start)
	if err != nil {
		fmt.Fprintf(os.Stderr, "imghist: %v\n", err)
		os.Exit(1)
	}
	if !quiet {
		for g, c := range h {
			if c != 0 {
				fmt.Printf("H[%3d] = %d\n", g, c)
			}
		}
	}
	if backend == "par" {
		fmt.Printf("host-parallel, workers=%d (GOMAXPROCS=%d), %dx%d image, k=%d\n",
			workers, runtime.GOMAXPROCS(0), im.N, im.N, k)
	} else {
		fmt.Printf("sequential baseline, %dx%d image, k=%d\n", im.N, im.N, k)
	}
	fmt.Printf("wall time %v\n", elapsed)
}

func loadImage(pattern string, density float64, grey, darpa bool, inFile string, n, k int, seed uint64) (*parimg.Image, error) {
	switch {
	case inFile != "":
		f, err := os.Open(inFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return parimg.ReadPGM(f)
	case darpa:
		return parimg.DARPAImage(), nil
	case pattern != "":
		for _, id := range parimg.AllPatterns() {
			if id.String() == pattern {
				return parimg.GeneratePattern(id, n), nil
			}
		}
		return nil, fmt.Errorf("unknown pattern %q (try dual-spiral, filled-disc, cross, ...)", pattern)
	case density >= 0:
		return parimg.RandomBinary(n, density, seed), nil
	case grey:
		return parimg.RandomGrey(n, k, seed), nil
	default:
		return parimg.RandomGrey(n, k, seed), nil
	}
}
