// Command genimages renders the paper's test-image catalog to PGM files:
// the nine scalable binary patterns of Figure 1 and the synthetic DARPA
// benchmark scene of Figure 2. With -labels it also writes a visualization
// of each image's connected component labeling (component labels folded
// into grey levels), which makes the catalog's component structure easy to
// eyeball.
//
//	genimages -n 512 -out ./images
//	genimages -n 256 -labels -out ./images
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"parimg"
)

func main() {
	var (
		n      = flag.Int("n", 512, "image side for the catalog patterns")
		out    = flag.String("out", ".", "output directory (created if missing)")
		labels = flag.Bool("labels", false, "also write component-label visualizations")
		darpa  = flag.Bool("darpa", true, "include the synthetic DARPA scene")
	)
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fail(err)
	}
	for _, id := range parimg.AllPatterns() {
		im := parimg.GeneratePattern(id, *n)
		name := fmt.Sprintf("%s_%d.pgm", id, *n)
		if err := writePGM(filepath.Join(*out, name), im, 1); err != nil {
			fail(err)
		}
		fmt.Println("wrote", filepath.Join(*out, name))
		if *labels {
			if err := writeLabelViz(*out, fmt.Sprintf("%s_%d_labels.pgm", id, *n), im); err != nil {
				fail(err)
			}
		}
	}
	if *darpa {
		im := parimg.DARPAImage()
		path := filepath.Join(*out, "darpa_512.pgm")
		if err := writePGM(path, im, 255); err != nil {
			fail(err)
		}
		fmt.Println("wrote", path)
		if *labels {
			if err := writeLabelViz(*out, "darpa_512_labels.pgm", im); err != nil {
				fail(err)
			}
		}
	}
}

// writeLabelViz labels the image sequentially and folds the labels into
// visually distinct grey levels (background black).
func writeLabelViz(dir, name string, im *parimg.Image) error {
	mode := parimg.Binary
	if im.MaxGrey() > 1 {
		mode = parimg.Grey
	}
	lab := parimg.LabelSequential(im, parimg.Conn8, mode)
	viz := parimg.NewImage(im.N)
	for i, l := range lab.Lab {
		if l != 0 {
			// Spread labels over 64..255 so neighbors differ.
			viz.Pix[i] = 64 + (l*2654435761)%192
		}
	}
	path := filepath.Join(dir, name)
	if err := writePGM(path, viz, 255); err != nil {
		return err
	}
	fmt.Println("wrote", path)
	return nil
}

func writePGM(path string, im *parimg.Image, maxVal int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := parimg.WritePGM(f, im, maxVal); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "genimages: %v\n", err)
	os.Exit(1)
}
