// Command genimages renders the paper's test-image catalog to PGM files:
// the nine scalable binary patterns of Figure 1 and the synthetic DARPA
// benchmark scene of Figure 2. With -labels it also writes a visualization
// of each image's connected component labeling (component labels folded
// into grey levels), which makes the catalog's component structure easy to
// eyeball.
//
// With -stream it instead writes a single tall striped PGM bandwise —
// never holding the full image in memory — sized by -rows/-cols, for
// exercising the out-of-core labeling path (imgcc -stream) on images far
// taller than the resident engines' 65535-side ceiling:
//
//	genimages -n 512 -out ./images
//	genimages -n 256 -labels -out ./images
//	genimages -stream -rows 70000 -cols 64 -period 500 -out tall.pgm
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"parimg"
)

func main() {
	var (
		n      = flag.Int("n", 512, "image side for the catalog patterns")
		out    = flag.String("out", ".", "output directory (created if missing); with -stream, the output FILE")
		labels = flag.Bool("labels", false, "also write component-label visualizations")
		darpa  = flag.Bool("darpa", true, "include the synthetic DARPA scene")
		stream = flag.Bool("stream", false, "write one tall striped PGM bandwise to the -out file instead of the catalog")
		rows   = flag.Int("rows", 70000, "image height for -stream")
		cols   = flag.Int("cols", 64, "image width for -stream")
		period = flag.Int("period", 500, "with -stream, blank every period-th row, cutting the stripes into segments")
	)
	flag.Parse()

	if *stream {
		count, err := writeStriped(*out, *rows, *cols, *period)
		if err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s: %dx%d, %d components\n", *out, *cols, *rows, count)
		return
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fail(err)
	}
	for _, id := range parimg.AllPatterns() {
		im := parimg.GeneratePattern(id, *n)
		name := fmt.Sprintf("%s_%d.pgm", id, *n)
		if err := writePGM(filepath.Join(*out, name), im, 1); err != nil {
			fail(err)
		}
		fmt.Println("wrote", filepath.Join(*out, name))
		if *labels {
			if err := writeLabelViz(*out, fmt.Sprintf("%s_%d_labels.pgm", id, *n), im); err != nil {
				fail(err)
			}
		}
	}
	if *darpa {
		im := parimg.DARPAImage()
		path := filepath.Join(*out, "darpa_512.pgm")
		if err := writePGM(path, im, 255); err != nil {
			fail(err)
		}
		fmt.Println("wrote", path)
		if *labels {
			if err := writeLabelViz(*out, "darpa_512_labels.pgm", im); err != nil {
				fail(err)
			}
		}
	}
}

// writeLabelViz labels the image sequentially and folds the labels into
// visually distinct grey levels (background black).
func writeLabelViz(dir, name string, im *parimg.Image) error {
	mode := parimg.Binary
	if im.MaxGrey() > 1 {
		mode = parimg.Grey
	}
	lab := parimg.LabelSequential(im, parimg.Conn8, mode)
	viz := parimg.NewImage(im.N)
	for i, l := range lab.Lab {
		if l != 0 {
			// Spread labels over 64..255 so neighbors differ.
			viz.Pix[i] = 64 + (l*2654435761)%192
		}
	}
	path := filepath.Join(dir, name)
	if err := writePGM(path, viz, 255); err != nil {
		return err
	}
	fmt.Println("wrote", path)
	return nil
}

// writeStriped streams a rows×cols binary PGM to path one row at a time:
// foreground stripes down the even columns, with every period-th row left
// blank so the stripes break into vertical segments. The 1-column gaps
// mean 4- and 8-connectivity agree; the component count it returns is
// ceil(cols/2) stripes × the number of row segments. The row-at-a-time
// writer keeps memory at O(cols) no matter how tall the image is.
func writeStriped(path string, rows, cols, period int) (int, error) {
	if rows < 1 || cols < 1 || period < 2 {
		return 0, fmt.Errorf("bad stream geometry %dx%d period %d (want rows, cols >= 1, period >= 2)", cols, rows, period)
	}
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	w := bufio.NewWriterSize(f, 1<<16)
	fmt.Fprintf(w, "P5\n%d %d\n1\n", cols, rows)
	stripes := make([]byte, cols)
	for j := 0; j < cols; j += 2 {
		stripes[j] = 1
	}
	blank := make([]byte, cols)
	segments := 0
	inSegment := false
	for r := 0; r < rows; r++ {
		row := stripes
		if (r+1)%period == 0 {
			row = blank
			inSegment = false
		} else if !inSegment {
			segments++
			inSegment = true
		}
		if _, err := w.Write(row); err != nil {
			f.Close()
			return 0, err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return 0, err
	}
	return (cols + 1) / 2 * segments, f.Close()
}

func writePGM(path string, im *parimg.Image, maxVal int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := parimg.WritePGM(f, im, maxVal); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "genimages: %v\n", err)
	os.Exit(1)
}
