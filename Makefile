# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test race cover bench bench-short bench-json experiments examples clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# One iteration of every benchmark: a fast smoke test that the benchmark
# code itself still runs (used by CI).
bench-short:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# Regenerate BENCH_parallel.json (host-parallel vs sequential wall clock).
bench-json:
	$(GO) run ./cmd/benchjson

experiments:
	$(GO) run ./cmd/experiments all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/percolation
	$(GO) run ./examples/isingclusters
	$(GO) run ./examples/objects
	$(GO) run ./examples/segmentation

clean:
	$(GO) clean ./...
