# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test race cover bench experiments examples clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem ./...

experiments:
	$(GO) run ./cmd/experiments all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/percolation
	$(GO) run ./examples/isingclusters
	$(GO) run ./examples/objects
	$(GO) run ./examples/segmentation

clean:
	$(GO) clean ./...
