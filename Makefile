# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test race cover bench bench-short bench-json fuzz-short chaos-short experiments examples clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# One iteration of every benchmark: a fast smoke test that the benchmark
# code itself still runs (used by CI).
bench-short:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# Regenerate BENCH_runs.json (backend x algo wall-clock matrix over the
# full pattern catalog).
bench-json:
	$(GO) run ./cmd/benchjson

# Quick fuzz pass: the run engine against the sequential BFS reference,
# the PGM parser on arbitrary bytes, and the whole public API on
# arbitrary parameters (error-or-correct-result, never a panic).
fuzz-short:
	$(GO) test -fuzz FuzzRunLabelMatchesBFS -fuzztime 30s ./internal/par/
	$(GO) test -run '^$$' -fuzz FuzzReadPGM -fuzztime 30s .
	$(GO) test -run '^$$' -fuzz FuzzPublicAPI -fuzztime 30s .

# Chaos suite under the race detector: injected panics, delays and
# barrier no-shows, cooperative cancellation, the barrier watchdog, and
# the goroutine leak checks — across the simulator and host-parallel
# backends (used by the CI chaos job).
chaos-short:
	$(GO) test -race -timeout 5m -run 'Chaos|Injected|Watchdog|RunContext|LabelContext|HistogramContext|Abort|Timeout|Checkpoint' . ./internal/bdm/ ./internal/par/ ./internal/hist/ ./internal/cc/ ./internal/cli/ ./internal/fault/...

# Regenerate the committed experiment artifacts: the captured
# cmd/experiments output and the phasereport tables in EXPERIMENTS.md
# (the section between the phasereport:begin/end markers).
experiments:
	$(GO) run ./cmd/experiments all | tee experiments_output.txt
	$(GO) run ./cmd/phasereport -update EXPERIMENTS.md

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/percolation
	$(GO) run ./examples/isingclusters
	$(GO) run ./examples/objects
	$(GO) run ./examples/segmentation

clean:
	$(GO) clean ./...
