# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test race cover bench bench-short bench-json bench-diff fuzz-short chaos-short serve-smoke stream-smoke crash-smoke experiments examples clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# One iteration of every benchmark: a fast smoke test that the benchmark
# code itself still runs (used by CI).
bench-short:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# Regenerate BENCH_runs.json (backend x algo x mode wall-clock matrix over
# the full pattern catalog plus DARPA, binary and grey).
bench-json:
	$(GO) run ./cmd/benchjson

# Measure a fresh (fast) matrix and diff it cell-by-cell against the
# committed BENCH_runs.json; fails on per-cell slowdowns beyond the
# tolerance, lost cells, or labelings that disagree with the sequential
# reference. The committed baseline was measured on different hardware, so
# the default tolerance is generous — see cmd/benchdiff.
bench-diff:
	$(GO) run ./cmd/benchjson -mintime 50ms -o /tmp/parimg_bench_new.json
	$(GO) run ./cmd/benchdiff -new /tmp/parimg_bench_new.json -tolerance 2

# Quick fuzz pass: the run engine against the sequential BFS reference
# (mixed binary/grey, then a grey-only leg so grey-level boundary cases get
# undiluted fuzz time), the PGM parser on arbitrary bytes, and the whole
# public API on arbitrary parameters (error-or-correct-result, never a
# panic).
fuzz-short:
	$(GO) test -run '^$$' -fuzz FuzzRunLabelMatchesBFS -fuzztime 30s ./internal/par/
	$(GO) test -run '^$$' -fuzz FuzzGreyRunLabelMatchesBFS -fuzztime 30s ./internal/par/
	$(GO) test -run '^$$' -fuzz FuzzReadPGM -fuzztime 30s .
	$(GO) test -run '^$$' -fuzz FuzzPublicAPI -fuzztime 30s .
	$(GO) test -run '^$$' -fuzz FuzzStreamPGM -fuzztime 30s ./internal/stream/

# Chaos suite under the race detector: injected panics, delays and
# barrier no-shows, cooperative cancellation, the barrier watchdog, and
# the goroutine leak checks — across the simulator and host-parallel
# backends (used by the CI chaos job). The second pass re-runs the
# host-parallel matrix with the Shiloach-Vishkin border merge forced, so
# both merge backends face the same fault schedule.
chaos-short:
	$(GO) test -race -timeout 5m -run 'Chaos|Injected|Watchdog|RunContext|LabelContext|HistogramContext|Abort|Timeout|Checkpoint|Resume|Corrupt|Mismatch|Deadline|Saturation|Shutdown' . ./internal/bdm/ ./internal/par/ ./internal/hist/ ./internal/cc/ ./internal/cli/ ./internal/fault/... ./internal/serve/ ./internal/stream/
	$(GO) test -race -timeout 5m -run 'Chaos|Injected|Scrub|LabelContext|HistogramContext' ./internal/par/ -merge=sv

# End-to-end smoke test of the labeling service: build and start imgccd,
# wait for /healthz, POST the DARPA benchmark scene, diff the census
# response against the committed golden, and validate the scraped /metrics
# through the schema checker (used by the CI serve-smoke job).
serve-smoke:
	./scripts/serve_smoke.sh

# End-to-end smoke test of the out-of-core streaming pipeline: generate a
# 64x70000 striped PGM bandwise, label it with imgcc -stream, check the
# known component count, validate the metrics document, and re-stream the
# 16-bit label PGM in grey mode (used by the CI stream-smoke job).
stream-smoke:
	./scripts/stream_smoke.sh

# End-to-end crash/resume smoke test of streaming checkpointing: start a
# checkpointed run paced to stall mid-image, kill -9 it, resume from the
# surviving record, and byte-compare the census JSON and label PGM against
# an uninterrupted reference run (used by the CI crash-smoke job).
crash-smoke:
	./scripts/stream_crash_smoke.sh

# Regenerate the committed experiment artifacts: the captured
# cmd/experiments output and the phasereport tables in EXPERIMENTS.md
# (the section between the phasereport:begin/end markers).
experiments:
	$(GO) run ./cmd/experiments all | tee experiments_output.txt
	$(GO) run ./cmd/phasereport -update EXPERIMENTS.md

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/percolation
	$(GO) run ./examples/isingclusters
	$(GO) run ./examples/objects
	$(GO) run ./examples/segmentation

clean:
	$(GO) clean ./...
