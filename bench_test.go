// Benchmarks that regenerate every table and figure of the paper's
// evaluation (one benchmark per exhibit) plus the ablation studies of the
// design choices called out in DESIGN.md.
//
// Each benchmark measures the host cost of the simulation and additionally
// reports the simulated execution time of the modeled machine as the custom
// metric "sim-ms" (and, where the paper reports it, bandwidth or work per
// pixel). The simulated metrics are the reproduction targets; host ns/op
// only says how fast the simulator itself runs. cmd/experiments prints the
// full tables; these benchmarks are the `go test -bench` entry points for
// the same code paths.
package parimg

import (
	"fmt"
	"testing"

	"parimg/internal/bdm"
	"parimg/internal/cc"
	"parimg/internal/comm"
	"parimg/internal/hist"
	"parimg/internal/image"
	"parimg/internal/machine"
	"parimg/internal/seq"
)

// paperMachines are the five platforms of the study.
var paperMachines = []bdm.CostParams{
	machine.CM5, machine.SP1, machine.SP2, machine.CS2, machine.Paragon,
}

func benchHist(b *testing.B, spec bdm.CostParams, p, n, k int) {
	im := image.RandomGrey(n, k, uint64(n+k))
	m, err := bdm.NewMachine(p, spec)
	if err != nil {
		b.Fatal(err)
	}
	var sim float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := hist.Run(m, im, k)
		if err != nil {
			b.Fatal(err)
		}
		sim = res.Report.SimTime
	}
	b.ReportMetric(sim*1e3, "sim-ms")
	b.ReportMetric(sim*float64(p)/float64(n*n)*1e9, "sim-ns/pixel")
}

func benchCC(b *testing.B, spec bdm.CostParams, p int, im *image.Image, opt cc.Options) {
	m, err := bdm.NewMachine(p, spec)
	if err != nil {
		b.Fatal(err)
	}
	var sim float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := cc.Run(m, im, opt)
		if err != nil {
			b.Fatal(err)
		}
		sim = res.Report.SimTime
	}
	n := im.N
	b.ReportMetric(sim*1e3, "sim-ms")
	b.ReportMetric(sim*float64(p)/float64(n*n)*1e6, "sim-us/pixel")
}

// BenchmarkTable1Histogram reproduces this paper's rows of Table 1:
// histogramming a 512x512, 256 grey-level image on each machine at the
// paper's processor count.
func BenchmarkTable1Histogram(b *testing.B) {
	rows := []struct {
		spec bdm.CostParams
		p    int
	}{
		{machine.CM5, 16}, {machine.SP1, 16}, {machine.SP2, 16},
		{machine.Paragon, 8}, {machine.CS2, 4},
	}
	for _, r := range rows {
		b.Run(fmt.Sprintf("%s/p=%d", r.spec.Name, r.p), func(b *testing.B) {
			benchHist(b, r.spec, r.p, 512, 256)
		})
	}
}

// BenchmarkTable2CC reproduces this paper's DARPA rows of Table 2:
// grey-scale connected components of the 512x512 benchmark scene.
func BenchmarkTable2CC(b *testing.B) {
	darpa := image.DARPASynthetic()
	rows := []struct {
		spec bdm.CostParams
		p    int
	}{
		{machine.CM5, 32}, {machine.SP1, 4}, {machine.SP2, 4},
		{machine.CS2, 2}, {machine.CS2, 32},
	}
	for _, r := range rows {
		b.Run(fmt.Sprintf("%s/p=%d", r.spec.Name, r.p), func(b *testing.B) {
			benchCC(b, r.spec, r.p, darpa, cc.Options{Conn: image.Conn8, Mode: seq.Grey})
		})
	}
}

// BenchmarkFig3Histogram reproduces the left panel of Figure 3:
// histogramming scalability on the CM-5, k=256, across processor counts.
func BenchmarkFig3Histogram(b *testing.B) {
	for _, p := range []int{16, 32, 64, 128} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			benchHist(b, machine.CM5, p, 1024, 256)
		})
	}
}

// BenchmarkFig3CC reproduces the right panel of Figure 3: connected
// components scalability on the CM-5 (dual-spiral test image, the
// "difficult" catalog entry).
func BenchmarkFig3CC(b *testing.B) {
	im := image.Generate(image.DualSpiral, 512)
	for _, p := range []int{16, 32, 64, 128} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			benchCC(b, machine.CM5, p, im, cc.Options{})
		})
	}
}

// BenchmarkFig6to9Transpose reproduces the transpose halves of Figures 6-9:
// the matrix transposition on each machine at the paper's processor count,
// with the attained per-processor bandwidth as a reported metric.
func BenchmarkFig6to9Transpose(b *testing.B) {
	const q = 1 << 18
	for _, spec := range paperMachines {
		p := 32
		if spec.Name == machine.Paragon.Name {
			p = 8 // the paper's Paragon had 8 nodes (Figure 9)
		}
		b.Run(spec.Name, func(b *testing.B) {
			m, err := bdm.NewMachine(p, spec)
			if err != nil {
				b.Fatal(err)
			}
			in := bdm.NewSpread[uint32](m, q)
			out := bdm.NewSpread[uint32](m, q)
			var sim, bw float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Reset()
				rep, err := m.Run(func(pr *bdm.Proc) { comm.Transpose(pr, out, in, q) })
				if err != nil {
					b.Fatal(err)
				}
				sim = rep.SimTime
				bw = float64(q-q/p) * 4 / rep.CommTime / 1e6
			}
			b.ReportMetric(sim*1e3, "sim-ms")
			b.ReportMetric(bw, "sim-MB/s/proc")
		})
	}
}

// BenchmarkFig6to9Broadcast reproduces the broadcast halves of Figures 6-9.
func BenchmarkFig6to9Broadcast(b *testing.B) {
	const q = 1 << 18
	for _, spec := range paperMachines {
		p := 32
		if spec.Name == machine.Paragon.Name {
			p = 8
		}
		b.Run(spec.Name, func(b *testing.B) {
			m, err := bdm.NewMachine(p, spec)
			if err != nil {
				b.Fatal(err)
			}
			buf := bdm.NewSpread[uint32](m, q)
			scratch := bdm.NewSpread[uint32](m, q)
			var sim float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Reset()
				rep, err := m.Run(func(pr *bdm.Proc) { comm.Broadcast(pr, buf, scratch, q, 0) })
				if err != nil {
					b.Fatal(err)
				}
				sim = rep.SimTime
			}
			b.ReportMetric(sim*1e3, "sim-ms")
		})
	}
}

// BenchmarkFig10DARPA reproduces Figure 10: connected components of the
// 512x512 DARPA benchmark scene on every machine, p=32.
func BenchmarkFig10DARPA(b *testing.B) {
	darpa := image.DARPASynthetic()
	for _, spec := range paperMachines {
		b.Run(spec.Name, func(b *testing.B) {
			benchCC(b, spec, 32, darpa, cc.Options{Conn: image.Conn8, Mode: seq.Grey})
		})
	}
}

// BenchmarkFig11CompComm reproduces Figure 11: the computation and
// communication split of histogramming for 32 and 256 grey levels.
func BenchmarkFig11CompComm(b *testing.B) {
	for _, k := range []int{32, 256} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			im := image.RandomGrey(512, k, uint64(k))
			m, err := bdm.NewMachine(32, machine.CM5)
			if err != nil {
				b.Fatal(err)
			}
			var comp, comm float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := hist.Run(m, im, k)
				if err != nil {
					b.Fatal(err)
				}
				comp, comm = res.Report.CompTime, res.Report.CommTime
			}
			b.ReportMetric(comp*1e3, "sim-comp-ms")
			b.ReportMetric(comm*1e3, "sim-comm-ms")
		})
	}
}

// BenchmarkFig12to14HistDetail reproduces Figures 12-14: CM-5 histogramming
// detail across processor counts (512x512 image, 256 grey levels).
func BenchmarkFig12to14HistDetail(b *testing.B) {
	for _, p := range []int{16, 32, 64} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			benchHist(b, machine.CM5, p, 512, 256)
		})
	}
}

// BenchmarkFig15to17CCDetail reproduces Figures 15-17: CM-5 connected
// components detail across processor counts on each catalog test image
// (512x512).
func BenchmarkFig15to17CCDetail(b *testing.B) {
	for _, p := range []int{16, 32, 64} {
		for _, id := range image.AllPatterns() {
			b.Run(fmt.Sprintf("p=%d/%s", p, id), func(b *testing.B) {
				benchCC(b, machine.CM5, p, image.Generate(id, 512), cc.Options{})
			})
		}
	}
}

// BenchmarkFig18SP1Hist reproduces Figure 18: SP-1 histogramming (p=16).
func BenchmarkFig18SP1Hist(b *testing.B) {
	benchHist(b, machine.SP1, 16, 512, 256)
}

// BenchmarkFig19SP1CC reproduces Figure 19: SP-1 connected components
// (p=16) on the dual-spiral image.
func BenchmarkFig19SP1CC(b *testing.B) {
	benchCC(b, machine.SP1, 16, image.Generate(image.DualSpiral, 512), cc.Options{})
}

// BenchmarkFig20SP2Hist reproduces Figure 20: SP-2 histogramming (p=16).
func BenchmarkFig20SP2Hist(b *testing.B) {
	benchHist(b, machine.SP2, 16, 512, 256)
}

// BenchmarkFig21SP2CC reproduces Figure 21: SP-2 connected components
// (p=32) across image sizes.
func BenchmarkFig21SP2CC(b *testing.B) {
	for _, n := range []int{128, 256, 512, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchCC(b, machine.SP2, 32, image.Generate(image.DualSpiral, n), cc.Options{})
		})
	}
}

// --- Ablation benchmarks for the design choices in DESIGN.md. ---

// BenchmarkAblationChangeDist compares the paper's transpose-based change
// distribution (Section 5.4, Eq. (10)) against the naive every-client-pulls
// scheme (Eq. (8)). The simulated gap grows with p.
func BenchmarkAblationChangeDist(b *testing.B) {
	im := image.Generate(image.DualSpiral, 512)
	for _, p := range []int{16, 64} {
		for _, dist := range []cc.Dist{cc.DistTranspose, cc.DistDirect} {
			b.Run(fmt.Sprintf("p=%d/%v", p, dist), func(b *testing.B) {
				benchCC(b, machine.CM5, p, im, cc.Options{ChangeDist: dist})
			})
		}
	}
}

// BenchmarkAblationNoShadow compares merges with and without shadow
// managers (the second processor that prefetches and sorts the far border
// side concurrently with the group manager).
func BenchmarkAblationNoShadow(b *testing.B) {
	im := image.Generate(image.DualSpiral, 512)
	for _, noShadow := range []bool{false, true} {
		name := "shadow"
		if noShadow {
			name = "no-shadow"
		}
		b.Run(name, func(b *testing.B) {
			benchCC(b, machine.CM5, 32, im, cc.Options{NoShadow: noShadow})
		})
	}
}

// BenchmarkAblationFullRelabel quantifies the paper's novelty claim: the
// "drastically limited updating" of border pixels and hooks per merge
// versus relabeling every tile pixel per merge.
func BenchmarkAblationFullRelabel(b *testing.B) {
	im := image.Generate(image.DualSpiral, 512)
	for _, full := range []bool{false, true} {
		name := "limited-updating"
		if full {
			name = "full-relabel"
		}
		b.Run(name, func(b *testing.B) {
			benchCC(b, machine.CM5, 32, im, cc.Options{FullRelabel: full})
		})
	}
}

// BenchmarkAblationHistCollect compares the paper's transpose-based
// histogram rearrangement (communication independent of p) against a naive
// fan-in of whole histograms to processor 0 (communication linear in p).
func BenchmarkAblationHistCollect(b *testing.B) {
	im := image.RandomGrey(512, 256, 7)
	for _, naive := range []bool{false, true} {
		name := "transpose"
		if naive {
			name = "naive-fan-in"
		}
		b.Run(name, func(b *testing.B) {
			m, err := bdm.NewMachine(64, machine.CM5)
			if err != nil {
				b.Fatal(err)
			}
			var sim, commT float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var res *hist.Result
				if naive {
					res, err = hist.RunNaive(m, im, 256)
				} else {
					res, err = hist.Run(m, im, 256)
				}
				if err != nil {
					b.Fatal(err)
				}
				sim, commT = res.Report.SimTime, res.Report.CommTime
			}
			b.ReportMetric(sim*1e3, "sim-ms")
			b.ReportMetric(commT*1e3, "sim-comm-ms")
		})
	}
}

// BenchmarkAblationBroadcast compares Algorithm 2 against the naive
// root-serves-everyone broadcast.
func BenchmarkAblationBroadcast(b *testing.B) {
	const q = 1 << 16
	for _, naive := range []bool{false, true} {
		name := "algorithm2"
		if naive {
			name = "naive-fan-out"
		}
		b.Run(name, func(b *testing.B) {
			m, err := bdm.NewMachine(32, machine.CM5)
			if err != nil {
				b.Fatal(err)
			}
			buf := bdm.NewSpread[uint32](m, q)
			scratch := bdm.NewSpread[uint32](m, q)
			var sim float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Reset()
				var rep bdm.Report
				if naive {
					rep, err = m.Run(func(pr *bdm.Proc) { comm.BroadcastNaive(pr, buf, q, 0) })
				} else {
					rep, err = m.Run(func(pr *bdm.Proc) { comm.Broadcast(pr, buf, scratch, q, 0) })
				}
				if err != nil {
					b.Fatal(err)
				}
				sim = rep.SimTime
			}
			b.ReportMetric(sim*1e3, "sim-ms")
		})
	}
}

// BenchmarkBaselinePropagation compares the paper's algorithm against the
// iterative label-diffusion baseline on the dual spiral (see
// cc.RunPropagation): merging is bounded by log p rounds, diffusion by the
// component diameter in tiles.
func BenchmarkBaselinePropagation(b *testing.B) {
	im := image.Generate(image.DualSpiral, 512)
	b.Run("merge", func(b *testing.B) {
		benchCC(b, machine.CM5, 64, im, cc.Options{})
	})
	b.Run("diffusion", func(b *testing.B) {
		m, err := bdm.NewMachine(64, machine.CM5)
		if err != nil {
			b.Fatal(err)
		}
		var sim float64
		rounds := 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := cc.RunPropagation(m, im, cc.Options{})
			if err != nil {
				b.Fatal(err)
			}
			sim = res.Report.SimTime
			rounds = res.Phases
		}
		b.ReportMetric(sim*1e3, "sim-ms")
		b.ReportMetric(float64(rounds), "rounds")
	})
}

// BenchmarkBaselineSV compares the paper's algorithm against the
// PRAM-style pointer-jumping baseline (Shiloach-Vishkin family): the
// data-dependent remote read per pixel per round is what makes PRAM ports
// uncompetitive on distributed memory.
func BenchmarkBaselineSV(b *testing.B) {
	im := image.Generate(image.DualSpiral, 128)
	b.Run("merge", func(b *testing.B) {
		benchCC(b, machine.CM5, 16, im, cc.Options{})
	})
	b.Run("pointer-jumping", func(b *testing.B) {
		m, err := bdm.NewMachine(16, machine.CM5)
		if err != nil {
			b.Fatal(err)
		}
		var sim float64
		var words int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := cc.RunShiloachVishkin(m, im, cc.Options{})
			if err != nil {
				b.Fatal(err)
			}
			sim = res.Report.SimTime
			words = res.Report.Words
		}
		b.ReportMetric(sim*1e3, "sim-ms")
		b.ReportMetric(float64(words), "sim-words")
	})
}

// BenchmarkHostSequentialBaselines measures the host-native sequential
// labelers, the p=1 anchors for efficiency computations.
func BenchmarkHostSequentialBaselines(b *testing.B) {
	im := image.RandomBinary(512, 0.55, 77)
	b.Run("bfs", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			seq.LabelBFS(im, image.Conn8, seq.Binary)
		}
	})
	b.Run("union-find", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			seq.LabelUnionFind(im, image.Conn8, seq.Binary)
		}
	})
	b.Run("two-pass", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			seq.LabelTwoPass(im, image.Conn8, seq.Binary)
		}
	})
}
